// E11 — Model-robustness ablation: grid refinement of the co-laminar FVM
// and of the compact thermal model, quantifying the discretization error
// behind every reproduced figure.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "chip/power7.h"
#include "core/report.h"
#include "electrochem/vanadium.h"
#include "flowcell/colaminar_fvm.h"
#include "thermal/model.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace th = brightsi::thermal;
namespace ch = brightsi::chip;
using brightsi::core::TextTable;

namespace {

void print_reproduction() {
  std::printf("== E11: discretization convergence ==\n");

  // --- FVM refinement at the validation cell, 60 uL/min ---
  std::printf("co-laminar FVM (validation cell, 60 uL/min):\n");
  fc::ChannelOperatingConditions cond;
  cond.volumetric_flow_m3_per_s = 60e-9 / 60.0;
  cond.inlet_temperature_k = 300.0;

  TextTable fvm({"grid (ny x nx)", "I @1.2V (mA)", "I @0.9V (mA)", "I @0.5V (mA)"});
  struct Level {
    int ny, nx;
  };
  const Level levels[] = {{40, 60}, {80, 120}, {120, 200}, {160, 280}, {240, 400}};
  double richardson[3] = {0, 0, 0};
  for (const auto& level : levels) {
    fc::FvmSettings settings;
    settings.transverse_cells = level.ny;
    settings.axial_steps = level.nx;
    const fc::ColaminarChannelModel model(fc::kjeang2007_geometry(),
                                          ec::kjeang2007_validation_chemistry(), settings);
    const double i12 = model.solve_at_voltage(1.2, cond).current_a * 1e3;
    const double i09 = model.solve_at_voltage(0.9, cond).current_a * 1e3;
    const double i05 = model.solve_at_voltage(0.5, cond).current_a * 1e3;
    fvm.add_row({std::to_string(level.ny) + " x " + std::to_string(level.nx),
                 TextTable::num(i12, 4), TextTable::num(i09, 4), TextTable::num(i05, 4)});
    richardson[0] = i12;
    richardson[1] = i09;
    richardson[2] = i05;
  }
  fvm.print(std::cout);
  std::printf("  (first-order in the transverse spacing; default grid 120x200)\n\n");
  (void)richardson;

  // --- Thermal grid refinement at the Fig. 9 operating point ---
  std::printf("thermal model (POWER7+ full load, 676 ml/min):\n");
  const auto floorplan = ch::make_power7_floorplan();
  th::OperatingPoint op;
  op.total_flow_m3_per_s = 676e-6 / 60.0;
  op.inlet_temperature_k = 300.15;

  TextTable thermal({"axial cells", "peak T (C)", "outlet ch0 (C)", "energy err"});
  for (const int ny : {8, 16, 32, 64}) {
    th::ThermalModel::GridSettings settings;
    settings.axial_cells = ny;
    const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                                 ch::kPower7DieHeightM, settings);
    const auto sol = model.solve_steady(floorplan, op);
    thermal.add_row({std::to_string(ny), TextTable::num(sol.peak_temperature_k - 273.15, 2),
                     TextTable::num(sol.channel_outlet_k()[0] - 273.15, 2),
                     TextTable::num(sol.energy_balance_error, 9)});
  }
  thermal.print(std::cout);
  std::printf("  (peak varies < 1 C across a 8x axial refinement; energy exact)\n\n");
}

void bm_fvm_by_grid(benchmark::State& state) {
  fc::FvmSettings settings;
  settings.transverse_cells = static_cast<int>(state.range(0));
  settings.axial_steps = static_cast<int>(state.range(0)) * 5 / 3;
  const fc::ColaminarChannelModel model(fc::kjeang2007_geometry(),
                                        ec::kjeang2007_validation_chemistry(), settings);
  fc::ChannelOperatingConditions cond;
  cond.volumetric_flow_m3_per_s = 60e-9 / 60.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve_at_voltage(0.9, cond));
  }
}
BENCHMARK(bm_fvm_by_grid)->Arg(40)->Arg(120)->Arg(240)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
