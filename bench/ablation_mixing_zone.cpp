// E14 — Membrane-less feasibility ablation (paper Section II / Fig. 2):
// co-laminar flow keeps the fuel and oxidant streams separated without a
// membrane because at low Reynolds number the only mixing channel is
// transverse interdiffusion. This bench measures the interdiffusion /
// self-discharge zone at the channel outlet versus flow rate and electrode
// gap, verifying the sqrt(D L / v) scaling and quantifying the fuel lost
// to crossover — the numbers behind "no membrane is needed".
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/report.h"
#include "electrochem/vanadium.h"
#include "flowcell/colaminar_fvm.h"
#include "hydraulics/dimensionless.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
using brightsi::core::TextTable;

namespace {

/// Width of the outlet band where both streams' reactants have been
/// annihilated (fuel and oxidant each below `threshold` of their inlet
/// concentration) — the interdiffusion zone of Fig. 2.
double mixing_zone_width_m(const fc::ChannelSolution& sol, const fc::CellGeometry& geometry,
                           double fuel_inlet, double oxidant_inlet,
                           double threshold = 0.02) {
  const auto& fuel = sol.outlet_concentration_mol_per_m3[fc::kAnodeReduced];
  const auto& oxidant = sol.outlet_concentration_mol_per_m3[fc::kCathodeOxidized];
  const int ny = static_cast<int>(fuel.size());
  const double dy = geometry.electrode_gap_m / ny;
  int depleted = 0;
  for (int j = 0; j < ny; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    if (fuel[idx] < threshold * fuel_inlet && oxidant[idx] < threshold * oxidant_inlet) {
      ++depleted;
    }
  }
  return depleted * dy;
}

void print_reproduction() {
  std::printf("== E14: co-laminar interdiffusion (membrane-less operation) ==\n");
  const auto chemistry = ec::kjeang2007_validation_chemistry();
  const double fuel_inlet = chemistry.anode.reduced_inlet_concentration_mol_per_m3;
  const double oxidant_inlet = chemistry.cathode.oxidized_inlet_concentration_mol_per_m3;

  // Near-OCV so electrode consumption does not mask the interface physics.
  const double probe_v = 1.35;

  std::printf("validation-cell geometry, zone measured at the outlet (x = 33 mm):\n");
  TextTable table({"flow (uL/min)", "v (mm/s)", "Re", "Pe", "zone width (um)",
                   "width/sqrt(DL/v)", "crossover (uA)", "fuel lost (%)"});
  fc::FvmSettings fine;
  fine.transverse_cells = 240;
  fine.axial_steps = 200;
  const auto geometry = fc::kjeang2007_geometry();
  const fc::ColaminarChannelModel model(geometry, chemistry, fine);
  for (const double ul : {2.5, 10.0, 60.0, 300.0}) {
    fc::ChannelOperatingConditions cond;
    cond.volumetric_flow_m3_per_s = ul * 1e-9 / 60.0;
    cond.inlet_temperature_k = 300.0;
    const auto sol = model.solve_at_voltage(probe_v, cond);
    const double v = cond.volumetric_flow_m3_per_s / geometry.cross_section_area_m2();
    const double d_mean = 1.5e-10;  // between the two diffusivities
    const double diffusion_scale =
        std::sqrt(d_mean * geometry.channel_length_m / v);
    const double width = mixing_zone_width_m(sol, geometry, fuel_inlet, oxidant_inlet);
    const double duct_dh = geometry.duct().hydraulic_diameter();
    const double re = 1260.0 * v * duct_dh / 2.53e-3;
    const double pe = brightsi::hydraulics::peclet_mass(v, duct_dh, d_mean);
    // Fuel molar flow for the loss percentage.
    const double fuel_flow =
        fuel_inlet * cond.volumetric_flow_m3_per_s / 2.0;  // mol/s
    const double fuel_lost =
        sol.crossover_current_a / 96485.0 / std::max(fuel_flow, 1e-30);
    table.add_row({TextTable::num(ul, 1), TextTable::num(v * 1e3, 2),
                   TextTable::num(re, 3), TextTable::num(pe, 0),
                   TextTable::num(width * 1e6, 1),
                   TextTable::num(width / diffusion_scale, 2),
                   TextTable::num(sol.crossover_current_a * 1e6, 1),
                   TextTable::num(fuel_lost * 100.0, 2)});
  }
  table.print(std::cout);
  std::printf(
      "\nshapes: the zone collapses as sqrt(D L / v) (constant width/sqrt(DL/v)\n"
      "column); Re stays deep-laminar so no convective mixing exists; even at\n"
      "2.5 uL/min the zone occupies a small fraction of the 2 mm gap -> the\n"
      "membrane-less design of Fig. 2 holds across the whole Fig. 3 flow range.\n\n");
}

void bm_fine_grid_solve(benchmark::State& state) {
  fc::FvmSettings fine;
  fine.transverse_cells = 240;
  fine.axial_steps = 200;
  const fc::ColaminarChannelModel model(fc::kjeang2007_geometry(),
                                        ec::kjeang2007_validation_chemistry(), fine);
  fc::ChannelOperatingConditions cond;
  cond.volumetric_flow_m3_per_s = 60e-9 / 60.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve_at_voltage(1.35, cond));
  }
}
BENCHMARK(bm_fine_grid_solve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
