// Sweep execution-service throughput: the operating_grid plan driven
// through the shard backend against a fresh and then a warm
// content-addressed result store, plus a 3-shard cooperative fill of one
// store directory.
//
// Reports rows/second cold (every row evaluated + appended) and warm
// (every row resolved from the store without evaluation), the warm-run
// store hit fraction (the resume guarantee: a re-run against a complete
// store skips all evaluations) and the lease steals observed during the
// sharded fill.
//
// Prints a human-readable summary and writes a machine-readable
// BENCH_sweep_service.json uploaded by the CI release-bench job next to
// BENCH_opt.json and friends. A non-flag first argument overrides the
// JSON path.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <benchmark/benchmark.h>

#include "sweep/execution.h"
#include "sweep/registry.h"
#include "sweep/runner.h"
#include "sweep/scenario_hash.h"

namespace sw = brightsi::sweep;

namespace {

constexpr const char* kPlanName = "operating_grid";

struct Measurement {
  long long rows = 0;
  double cold_wall_s = 0.0;
  double warm_wall_s = 0.0;
  long long warm_store_hits = 0;
  long long warm_evaluated = 0;
  long long shard_evaluated = 0;  // across the 3-shard cooperative fill
  long long lease_steals = 0;

  [[nodiscard]] double cold_rows_per_s() const {
    return cold_wall_s > 0.0 ? static_cast<double>(rows) / cold_wall_s : 0.0;
  }
  [[nodiscard]] double warm_rows_per_s() const {
    return warm_wall_s > 0.0 ? static_cast<double>(rows) / warm_wall_s : 0.0;
  }
  [[nodiscard]] double warm_hit_fraction() const {
    return rows > 0 ? static_cast<double>(warm_store_hits) / static_cast<double>(rows)
                    : 0.0;
  }
};

/// A fresh store directory under the system temp dir.
std::string fresh_store_dir(const char* tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / (std::string("brightsi_bench_store_") + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

sw::SweepResult run_against_store(const sw::SweepPlan& plan, const std::string& dir,
                                  int shard_index, int shard_count) {
  sw::ShardOptions options;
  options.store_dir = dir;
  options.scope = plan.name;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  const sw::SweepRunner runner(sw::make_shard_backend(options));
  return runner.run(plan);
}

Measurement measure_service() {
  const sw::SweepPlan plan = sw::make_registered_plan(kPlanName);
  Measurement m;
  m.rows = static_cast<long long>(plan.scenarios.size());

  // Cold: every row evaluated and appended (store created on the fly).
  const std::string dir = fresh_store_dir("main");
  auto start = std::chrono::steady_clock::now();
  const sw::SweepResult cold = run_against_store(plan, dir, 0, 1);
  m.cold_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Warm: a second process (conceptually) re-running the same sweep must
  // resolve every row from the store.
  start = std::chrono::steady_clock::now();
  const sw::SweepResult warm = run_against_store(plan, dir, 0, 1);
  m.warm_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  m.warm_store_hits = warm.exec.store_hits;
  m.warm_evaluated = warm.exec.evaluated;

  // Sharded fill of a fresh store: three cooperating instances, then a
  // merge — the distributed quick start in one process.
  const std::string sharded = fresh_store_dir("sharded");
  long long steals = 0;
  long long evaluated = 0;
  for (int index = 0; index < 3; ++index) {
    const sw::SweepResult partial = run_against_store(plan, sharded, index, 3);
    steals += partial.exec.leases_stolen;
    evaluated += partial.exec.evaluated;
  }
  m.lease_steals = steals;
  m.shard_evaluated = evaluated;
  (void)cold;

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(sharded);
  return m;
}

void write_json(const char* path, const Measurement& m) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"sweep_service\",\n"
               "  \"plan\": \"%s\",\n"
               "  \"rows\": %lld,\n"
               "  \"cold_wall_s\": %.6f,\n"
               "  \"cold_rows_per_s\": %.4f,\n"
               "  \"warm_wall_s\": %.6f,\n"
               "  \"warm_rows_per_s\": %.4f,\n"
               "  \"warm_store_hits\": %lld,\n"
               "  \"warm_evaluated\": %lld,\n"
               "  \"warm_store_hit_rate\": %.4f,\n"
               "  \"shard_evaluated\": %lld,\n"
               "  \"lease_steals\": %lld\n"
               "}\n",
               kPlanName, m.rows, m.cold_wall_s, m.cold_rows_per_s(), m.warm_wall_s,
               m.warm_rows_per_s(), m.warm_store_hits, m.warm_evaluated,
               m.warm_hit_fraction(), m.shard_evaluated, m.lease_steals);
  std::fclose(file);
  std::printf("wrote %s\n", path);
}

void print_reproduction(const char* json_path) {
  const Measurement m = measure_service();
  std::printf("== sweep service: %s through the shard backend ==\n", kPlanName);
  std::printf("cold: %lld rows in %.3f s -> %.2f rows/s (evaluate + append)\n", m.rows,
              m.cold_wall_s, m.cold_rows_per_s());
  std::printf("warm: %lld rows in %.3f s -> %.2f rows/s (%lld store hits, %lld "
              "evaluated, %.0f%% hit rate)\n",
              m.rows, m.warm_wall_s, m.warm_rows_per_s(), m.warm_store_hits,
              m.warm_evaluated, 100.0 * m.warm_hit_fraction());
  std::printf("3-shard fill: %lld rows evaluated across shards, %lld lease steals\n\n",
              m.shard_evaluated, m.lease_steals);
  write_json(json_path, m);
}

/// Content-hash throughput: the per-row identity cost the store adds to
/// every scheduled scenario (canonical bytes + two FNV-1a passes).
void bm_hash_scenario(benchmark::State& state) {
  const sw::SweepPlan plan = sw::make_registered_plan(kPlanName);
  const std::uint64_t salt =
      sw::store_salt(plan.name, plan.evaluator.name, plan.evaluator.metrics);
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::hash_scenario(plan.scenarios[index], salt));
    index = (index + 1) % plan.scenarios.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_hash_scenario);

/// Warm-store row resolution: execute() against a complete store — the
/// pure cache path every resumed or re-run sweep takes.
void bm_warm_execute(benchmark::State& state) {
  const sw::SweepPlan plan = sw::make_registered_plan(kPlanName);
  const std::string dir = fresh_store_dir("bm_warm");
  (void)run_against_store(plan, dir, 0, 1);  // fill once
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_against_store(plan, dir, 0, 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(plan.scenarios.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(bm_warm_execute)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_sweep_service.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      argv[i] = argv[i + 1];
    }
    --argc;
  }
  print_reproduction(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
