// E5 — Reproduction of Fig. 8: voltage distribution in the power grid that
// feeds the L2/L3 cache rail of the POWER7+ from the microfluidic supply
// through distributed in-package VRMs. Paper window: ~0.96 to ~0.995 V at
// the ~5 A cache load.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "chip/power7.h"
#include "core/report.h"
#include "pdn/power_grid.h"
#include "repro/figures.h"

namespace pd = brightsi::pdn;
namespace ch = brightsi::chip;
namespace re = brightsi::repro;
using brightsi::core::TextTable;
using brightsi::core::print_ascii_map;

namespace {

void print_reproduction() {
  const auto floorplan = ch::make_power7_floorplan();
  const pd::PowerGridSpec spec;
  // The solution the golden regression suite pins (tests/golden/fig8.csv).
  const pd::PowerGridSolution sol = re::fig8_voltage_solution();

  std::printf("== E5: Fig. 8 cache-rail voltage map ==\n");
  std::printf("mesh %d x %d nodes, sheet %.0f mohm/sq, 4x4 VRM taps @ %0.0f mohm\n",
              spec.nodes_x, spec.nodes_y, spec.sheet_resistance_ohm_per_sq * 1e3, 25.0);
  TextTable table({"quantity", "model", "paper", "unit"});
  table.add_row({"cache rail load", TextTable::num(sol.total_load_current_a, 2), "5.0", "A"});
  table.add_row({"min node voltage", TextTable::num(sol.min_voltage_v, 4), "~0.960", "V"});
  table.add_row({"max node voltage", TextTable::num(sol.max_voltage_v, 4), "~0.995", "V"});
  table.add_row({"mean node voltage", TextTable::num(sol.mean_voltage_v, 4), "-", "V"});
  table.add_row({"worst IR drop", TextTable::num(sol.worst_drop_v * 1e3, 1), "~40", "mV"});
  table.add_row({"grid + VRM ohmic loss", TextTable::num(sol.ohmic_loss_w, 3), "-", "W"});
  table.print(std::cout);

  std::printf("\n");
  print_ascii_map(std::cout, sol.node_voltage_v, "rail voltage map (die coordinates)", "V");

  const bool window_ok = sol.min_voltage_v > 0.955 && sol.min_voltage_v < 0.972 &&
                         sol.max_voltage_v > 0.99 && sol.max_voltage_v < 1.0;
  std::printf("\nreproduced (0.96-0.995 V window at ~5 A): %s\n", window_ok ? "YES" : "NO");

  const std::string path = brightsi::core::write_results_file(
      "fig8_voltage_map.csv", [&](std::ostream& os) {
        brightsi::core::write_field_csv(os, sol.node_voltage_v, floorplan.die_width(),
                                        floorplan.die_height());
      });
  if (!path.empty()) {
    std::printf("field written to %s\n", path.c_str());
  }
  std::printf("\n");
}

void bm_grid_solve(benchmark::State& state) {
  const auto floorplan = ch::make_power7_floorplan();
  pd::PowerGridSpec spec;
  spec.nodes_x = static_cast<int>(state.range(0));
  spec.nodes_y = static_cast<int>(state.range(0)) * 4 / 5;
  const pd::PowerGrid grid(spec, floorplan);
  const auto taps = pd::make_vrm_grid(4, 4, floorplan.die_width(), floorplan.die_height(),
                                      1.0, 25e-3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.solve(taps));
  }
}
BENCHMARK(bm_grid_solve)->Arg(50)->Arg(107)->Arg(160)->Unit(benchmark::kMillisecond);

void bm_grid_constant_power(benchmark::State& state) {
  const auto floorplan = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, floorplan);
  const auto taps = pd::make_vrm_grid(4, 4, floorplan.die_width(), floorplan.die_height(),
                                      1.0, 25e-3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.solve_constant_power(taps));
  }
}
BENCHMARK(bm_grid_constant_power)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
