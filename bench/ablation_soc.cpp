// E13 — Flow-battery dimension ablation (paper Section II): redox flow
// cells store energy in the electrolyte, so reservoir size and state of
// charge are design axes independent of the cell's power density. This
// bench sweeps the array output across the SOC window and sizes reservoirs
// for target autonomy at the cache-rail load.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/report.h"
#include "electrochem/reservoir.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
using brightsi::core::TextTable;

namespace {

void print_reproduction() {
  std::printf("== E13: state of charge and reservoir sizing ==\n");

  ec::ReservoirSpec spec;
  spec.tank_volume_m3 = 1e-3;  // 1 liter per side
  spec.total_vanadium_mol_per_m3 = 2001.0;  // Table II total (2000 + 1)
  spec.chemistry = ec::power7_array_chemistry();
  const ec::ElectrolyteReservoir reservoir(spec, 0.95);

  std::printf("array output vs state of charge (Table II cell, 676 ml/min):\n");
  TextTable soc_table({"SOC", "OCV (V)", "I@1V (A)", "P@1V (W)"});
  for (const double soc : {0.95, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05}) {
    const auto chem = reservoir.chemistry_at(soc);
    const fc::FlowCellArray array(fc::power7_array_spec(), chem);
    const double ocv = array.open_circuit_voltage();
    const double current = (ocv > 1.05) ? array.current_at_voltage(1.0) : 0.0;
    soc_table.add_row({TextTable::num(soc, 2), TextTable::num(ocv, 3),
                       TextTable::num(current, 2), TextTable::num(current, 2)});
  }
  soc_table.print(std::cout);
  std::printf("  (output is steady over most of the discharge — the paper's 'continuous\n"
              "   flow ensures a steady energy supply' — then collapses near depletion)\n\n");

  std::printf("reservoir sizing for the 5.8 W cache-rail demand (5.8 A bus current):\n");
  TextTable tank_table({"tank volume (L/side)", "capacity (Ah)", "runtime to SOC 0.1 (h)",
                        "ideal energy (Wh)"});
  for (const double liters : {0.1, 0.5, 1.0, 5.0, 20.0}) {
    ec::ReservoirSpec s = spec;
    s.tank_volume_m3 = liters * 1e-3;
    const ec::ElectrolyteReservoir r(s, 0.95);
    tank_table.add_row({TextTable::num(liters, 1), TextTable::num(s.capacity_ah(), 1),
                        TextTable::num(r.runtime_to_floor_s(5.8, 0.1) / 3600.0, 2),
                        TextTable::num(r.ideal_energy_to_floor_j(0.1) / 3600.0, 1)});
  }
  tank_table.print(std::cout);
  std::printf("\nshape: power density (cell design) and energy capacity (tank size) are\n"
              "independent axes — a liter-scale tank already buys hours of cache supply.\n\n");
}

void bm_soc_chemistry(benchmark::State& state) {
  ec::ReservoirSpec spec;
  spec.chemistry = ec::power7_array_chemistry();
  const ec::ElectrolyteReservoir reservoir(spec, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reservoir.chemistry_at(0.5));
  }
}
BENCHMARK(bm_soc_chemistry)->Unit(benchmark::kNanosecond);

void bm_energy_integral(benchmark::State& state) {
  ec::ReservoirSpec spec;
  spec.chemistry = ec::power7_array_chemistry();
  const ec::ElectrolyteReservoir reservoir(spec, 0.95);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reservoir.ideal_energy_to_floor_j(0.05));
  }
}
BENCHMARK(bm_energy_integral)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
