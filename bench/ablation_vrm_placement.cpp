// E12 — VRM architecture ablation (Section III-A design space): rail
// integrity versus the number, placement and output resistance of the
// in-package regulators, including the conventional edge-fed baseline.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "chip/power7.h"
#include "core/report.h"
#include "pdn/power_grid.h"

namespace pd = brightsi::pdn;
namespace ch = brightsi::chip;
using brightsi::core::TextTable;

namespace {

void print_reproduction() {
  const auto floorplan = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, floorplan);

  std::printf("== E12: VRM count/placement vs cache-rail integrity ==\n");
  TextTable table({"taps", "placement", "R_out (mohm)", "min V", "max V", "loss (W)"});

  for (const int n : {1, 2, 3, 4, 6, 8}) {
    const auto taps = pd::make_vrm_grid(n, n, floorplan.die_width(), floorplan.die_height(),
                                        1.0, 25e-3);
    const auto sol = grid.solve(taps);
    table.add_row({std::to_string(n * n), "distributed grid", "25",
                   TextTable::num(sol.min_voltage_v, 4), TextTable::num(sol.max_voltage_v, 4),
                   TextTable::num(sol.ohmic_loss_w, 3)});
  }
  for (const int per_edge : {4, 8, 16}) {
    const auto taps = pd::make_edge_taps(per_edge, floorplan.die_width(),
                                         floorplan.die_height(), 1.0, 25e-3);
    const auto sol = grid.solve(taps);
    table.add_row({std::to_string(2 * per_edge), "edge-fed", "25",
                   TextTable::num(sol.min_voltage_v, 4), TextTable::num(sol.max_voltage_v, 4),
                   TextTable::num(sol.ohmic_loss_w, 3)});
  }
  for (const double r_mohm : {5.0, 25.0, 100.0}) {
    const auto taps = pd::make_vrm_grid(4, 4, floorplan.die_width(), floorplan.die_height(),
                                        1.0, r_mohm * 1e-3);
    const auto sol = grid.solve(taps);
    table.add_row({"16", "distributed grid", TextTable::num(r_mohm, 0),
                   TextTable::num(sol.min_voltage_v, 4), TextTable::num(sol.max_voltage_v, 4),
                   TextTable::num(sol.ohmic_loss_w, 3)});
  }
  table.print(std::cout);

  std::printf(
      "\nshape: distributed in-package taps dominate edge feeding at equal tap\n"
      "count (the paper's architectural argument for supply through the\n"
      "microfluidic layer); diminishing returns beyond ~4x4 taps.\n\n");
}

void bm_tap_sweep(benchmark::State& state) {
  const auto floorplan = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, floorplan);
  const int n = static_cast<int>(state.range(0));
  const auto taps = pd::make_vrm_grid(n, n, floorplan.die_width(), floorplan.die_height(),
                                      1.0, 25e-3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.solve(taps));
  }
}
BENCHMARK(bm_tap_sweep)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
