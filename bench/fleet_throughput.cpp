// Fleet-level rack throughput: repeated solves of an 8-chip heterogeneous
// rack on two shared coolant loops (fleet/rack.h) — the unit of work of
// every fleet_rack sweep scenario and rack_topology optimizer candidate.
//
// Two sections: the steady rack solve (racks/s) and the staggered
// workload-trace replay, whose headline metric is chip-steps/s — chips x
// transient steps per wall-clock second, the number that says how big a
// fleet mission the machinery can replay.
//
// Prints a human-readable summary and writes a machine-readable
// BENCH_fleet.json (schema in docs/BENCHMARKS.md) that the CI Release job
// uploads as an artifact: rack shape, per-chip segment inlet temperatures
// (monotonically rising along every serial loop segment), steady racks/s
// and replay chip-steps/s. A non-flag first argument overrides the JSON
// path.
#include <chrono>
#include <cstdio>
#include <cstring>

#include <benchmark/benchmark.h>

#include "chip/workload.h"
#include "core/system_config.h"
#include "fleet/rack.h"

namespace co = brightsi::core;
namespace fl = brightsi::fleet;

namespace {

constexpr int kChips = 8;
constexpr int kLoops = 2;
constexpr int kSegmentsPerLoop = 2;
constexpr int kReplaySteps = 10;
constexpr double kReplayDt = 0.05;

/// The benched rack: 8 chips on 2 loops x 2 serial segments, mixed one- and
/// two-die stacks, temperature-dependent coolant, staggered duty cycles.
fl::RackSpec bench_rack() {
  co::SystemConfig base = co::power7_system_config();
  base.thermal_grid.axial_cells = 8;  // the fleet plans' resolution
  fl::RackSpec rack = fl::make_demo_rack(base, kChips, kLoops, kSegmentsPerLoop,
                                         /*heterogeneous=*/true);
  rack.coolant_laws.temperature_dependent = true;
  rack.coolant_laws.reference_temperature_k = rack.loop_inlet_temperature_k;
  for (std::size_t i = 0; i < rack.chips.size(); ++i) {
    rack.chips[i].workload_offset_s = 0.5 * static_cast<double>(i);
  }
  return rack;
}

struct SteadyMeasurement {
  int runs = 0;
  double wall_s = 0.0;
  fl::RackSolveResult last;

  [[nodiscard]] double runs_per_s() const { return wall_s > 0.0 ? runs / wall_s : 0.0; }
};

SteadyMeasurement measure_steady(const fl::RackSpec& rack) {
  (void)fl::solve_rack_steady(rack);  // warm-up: first-touch allocations
  SteadyMeasurement m;
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    m.last = fl::solve_rack_steady(rack);
    ++m.runs;
    m.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if ((m.wall_s >= 2.0 && m.runs >= 5) || m.runs >= 64) {
      return m;
    }
  }
}

struct ReplayMeasurement {
  int runs = 0;
  double wall_s = 0.0;
  fl::FleetReplayResult last;

  /// The headline: chips x transient steps per second across the runs.
  [[nodiscard]] double chip_steps_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(runs) * kChips * kReplaySteps / wall_s : 0.0;
  }
};

ReplayMeasurement measure_replay(const fl::RackSpec& rack) {
  fl::FleetReplayOptions options;
  options.trace = brightsi::chip::burst_trace(1);
  options.dt_s = kReplayDt;
  options.steps = kReplaySteps;
  (void)fl::replay_fleet_trace(rack, options);  // warm-up
  ReplayMeasurement m;
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    m.last = fl::replay_fleet_trace(rack, options);
    ++m.runs;
    m.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if ((m.wall_s >= 2.0 && m.runs >= 3) || m.runs >= 32) {
      return m;
    }
  }
}

void write_json(const char* path, const fl::RackSpec& rack, const SteadyMeasurement& steady,
                const ReplayMeasurement& replay) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"fleet_throughput\",\n"
               "  \"chips\": %d,\n"
               "  \"loops\": %d,\n"
               "  \"segments_per_loop\": %d,\n"
               "  \"heterogeneous\": true,\n"
               "  \"coolant_temp_dep\": true,\n"
               "  \"inlet_monotonic\": %s,\n"
               "  \"max_inlet_rise_k\": %.6f,\n"
               "  \"energy_balance_rel_error\": %.3e,\n",
               kChips, kLoops, kSegmentsPerLoop, steady.last.inlet_monotonic ? "true" : "false",
               steady.last.max_inlet_rise_k, steady.last.energy_balance_rel_error);
  std::fprintf(file, "  \"chip_inlets_k\": {\n");
  for (std::size_t i = 0; i < steady.last.chips.size(); ++i) {
    const fl::RackChipResult& c = steady.last.chips[i];
    std::fprintf(file, "    \"%s\": %.6f%s\n", c.name.c_str(), c.inlet_temperature_k,
                 i + 1 < steady.last.chips.size() ? "," : "");
  }
  std::fprintf(file,
               "  },\n"
               "  \"steady\": {\n"
               "    \"runs\": %d,\n"
               "    \"wall_s\": %.6f,\n"
               "    \"racks_per_s\": %.4f,\n"
               "    \"peak_t_c\": %.4f,\n"
               "    \"pump_w\": %.6f,\n"
               "    \"fluid_heat_w\": %.4f\n"
               "  },\n",
               steady.runs, steady.wall_s, steady.runs_per_s(),
               steady.last.peak_temperature_k - 273.15, steady.last.pump_power_w,
               steady.last.heat_absorbed_w);
  std::fprintf(file,
               "  \"replay\": {\n"
               "    \"steps_per_run\": %d,\n"
               "    \"dt_s\": %.3f,\n"
               "    \"runs\": %d,\n"
               "    \"wall_s\": %.6f,\n"
               "    \"chip_steps_per_s\": %.4f,\n"
               "    \"max_peak_t_c\": %.4f,\n"
               "    \"mean_pump_w\": %.6f,\n"
               "    \"heat_absorbed_j\": %.4f\n"
               "  }\n"
               "}\n",
               kReplaySteps, kReplayDt, replay.runs, replay.wall_s,
               replay.chip_steps_per_s(), replay.last.max_peak_temperature_k - 273.15,
               replay.last.mean_pump_power_w, replay.last.heat_absorbed_j);
  std::fclose(file);
  std::printf("wrote %s\n", path);
  (void)rack;
}

void print_reproduction(const char* json_path) {
  const fl::RackSpec rack = bench_rack();

  std::printf("== fleet throughput: %d chips, %d loops x %d serial segments,"
              " heterogeneous, temp-dependent coolant ==\n",
              kChips, kLoops, kSegmentsPerLoop);
  const SteadyMeasurement steady = measure_steady(rack);
  std::printf("steady: %d rack solves in %.3f s -> %.3f racks/s\n", steady.runs,
              steady.wall_s, steady.runs_per_s());
  std::printf("peak %.2f C, pump %.3f W, heat %.1f W, energy balance %.1e\n",
              steady.last.peak_temperature_k - 273.15, steady.last.pump_power_w,
              steady.last.heat_absorbed_w, steady.last.energy_balance_rel_error);
  for (const fl::RackChipResult& c : steady.last.chips) {
    std::printf("  %-6s loop %d seg %d  inlet %.3f K  flow %.3f  peak %.2f C\n",
                c.name.c_str(), c.loop, c.segment, c.inlet_temperature_k, c.flow_fraction,
                c.peak_temperature_k - 273.15);
  }
  std::printf("inlet rise along loops: %.3f K, monotonic: %s\n",
              steady.last.max_inlet_rise_k, steady.last.inlet_monotonic ? "yes" : "NO");

  const ReplayMeasurement replay = measure_replay(rack);
  std::printf("\nreplay: %d runs x %d steps x %d chips in %.3f s -> %.1f chip-steps/s\n",
              replay.runs, kReplaySteps, kChips, replay.wall_s, replay.chip_steps_per_s());
  std::printf("max peak %.2f C, mean pump %.3f W, heat %.1f J\n\n",
              replay.last.max_peak_temperature_k - 273.15, replay.last.mean_pump_power_w,
              replay.last.heat_absorbed_j);

  write_json(json_path, rack, steady, replay);
}

void bm_fleet_steady(benchmark::State& state) {
  const fl::RackSpec rack = bench_rack();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::solve_rack_steady(rack));
  }
}
BENCHMARK(bm_fleet_steady)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_fleet.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      argv[i] = argv[i + 1];
    }
    --argc;
  }
  print_reproduction(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
