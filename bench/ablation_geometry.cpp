// E9 — Ablation from the paper's outlook (Section IV): "assessment of the
// power density as function of channel dimensions, flow rate and
// temperature". Sweeps the array-channel geometry and operating point and
// reports deliverable power density per electrode area, plus the pumping
// cost of each design point.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/report.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "hydraulics/pump.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace hy = brightsi::hydraulics;
using brightsi::core::TextTable;

namespace {

struct DesignPoint {
  double gap_um;
  double height_um;
  double flow_ml_min;
  double inlet_c;
};

void evaluate(const DesignPoint& d, TextTable* table) {
  auto spec = fc::power7_array_spec();
  spec.geometry.electrode_gap_m = d.gap_um * 1e-6;
  spec.geometry.channel_height_m = d.height_um * 1e-6;
  spec.total_flow_m3_per_s = d.flow_ml_min * 1e-6 / 60.0;
  spec.inlet_temperature_k = d.inlet_c + 273.15;

  const fc::FlowCellArray array(spec, ec::power7_array_chemistry());
  const double area_cm2 =
      spec.geometry.projected_electrode_area_m2() * spec.channel_count * 1e4;
  const double current = array.current_at_voltage(1.0, {spec.inlet_temperature_k});
  const auto h = array.hydraulics_at_spec_flow();
  const double pump = hy::pumping_power_w(h.pressure_drop_pa, spec.total_flow_m3_per_s, 0.5);

  table->add_row({TextTable::num(d.gap_um, 0), TextTable::num(d.height_um, 0),
                  TextTable::num(d.flow_ml_min, 0), TextTable::num(d.inlet_c, 0),
                  TextTable::num(current, 2), TextTable::num(current / area_cm2, 3),
                  TextTable::num(h.pressure_drop_pa / 1e5, 3), TextTable::num(pump, 3),
                  TextTable::num(current - pump, 2)});
}

void print_reproduction() {
  std::printf("== E9: power density vs channel dimensions, flow rate, temperature ==\n");
  TextTable table({"gap (um)", "height (um)", "flow (ml/min)", "inlet (C)", "I@1V (A)",
                   "P density (W/cm2)", "dp (bar)", "pump (W)", "net (W)"});

  // Geometry sweep at the nominal flow/temperature.
  for (const double gap : {100.0, 200.0, 400.0}) {
    evaluate({gap, 400.0, 676.0, 27.0}, &table);
  }
  for (const double height : {200.0, 400.0, 800.0}) {
    evaluate({200.0, height, 676.0, 27.0}, &table);
  }
  // Flow sweep at the Table II geometry.
  for (const double flow : {48.0, 200.0, 676.0, 2000.0}) {
    evaluate({200.0, 400.0, flow, 27.0}, &table);
  }
  // Temperature sweep.
  for (const double t : {27.0, 37.0, 47.0, 60.0}) {
    evaluate({200.0, 400.0, 676.0, t}, &table);
  }
  table.print(std::cout);
  std::printf(
      "\nshapes: wider gaps raise ohmic loss (lower density); taller channels raise\n"
      "area faster than current (density falls, total rises); temperature helps\n"
      "everywhere; pumping cost explodes for narrow/tall high-flow designs.\n\n");
}

void bm_design_point(benchmark::State& state) {
  auto spec = fc::power7_array_spec();
  const fc::FlowCellArray array(spec, ec::power7_array_chemistry());
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.current_at_voltage(1.0));
  }
}
BENCHMARK(bm_design_point)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
