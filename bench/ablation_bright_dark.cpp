// E10 — Bright-vs-dark ablation (the paper's Section I motivation): how
// much core activity can each platform sustain under thermal and rail-
// integrity constraints?
//   * integrated: microchannel flow-cell cooling + distributed in-package
//     VRMs on the cache rail;
//   * conventional: air-cooled package + edge-fed rails.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "chip/power7.h"
#include "core/report.h"
#include "core/system_config.h"
#include "core/throttling.h"
#include "pdn/power_grid.h"
#include "thermal/model.h"

namespace co = brightsi::core;
namespace ch = brightsi::chip;
namespace th = brightsi::thermal;
namespace pd = brightsi::pdn;
using brightsi::core::TextTable;

namespace {

void print_reproduction() {
  const auto config = co::power7_system_config();
  co::ThrottleConstraints constraints;  // 85 C, 0.95 V

  // Integrated microfluidic platform.
  th::ThermalModel::GridSettings grid;
  grid.axial_cells = 16;
  th::ThermalModel liquid(config.stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM, grid);
  co::ThrottleEnvironment integrated;
  integrated.thermal_model = &liquid;
  integrated.thermal_op.total_flow_m3_per_s = config.array_spec.total_flow_m3_per_s;
  integrated.thermal_op.inlet_temperature_k = config.array_spec.inlet_temperature_k;
  integrated.grid_spec = &config.grid_spec;
  integrated.taps = pd::make_vrm_grid(4, 4, ch::kPower7DieWidthM, ch::kPower7DieHeightM,
                                      1.0, 25e-3);
  integrated.power_spec = config.power_spec;
  integrated.rail_filter = [](const ch::Block& b) { return ch::is_cache(b.type); };
  const auto bright = co::find_max_core_activity(integrated, constraints);

  // Conventional air-cooled platform, edge-fed primary rail over all blocks.
  pd::PowerGridSpec core_rail;
  core_rail.sheet_resistance_ohm_per_sq = 5e-3;
  th::ThermalModel air(th::power7_conventional_stack(1200.0, 318.15), ch::kPower7DieWidthM,
                       ch::kPower7DieHeightM, grid);
  co::ThrottleEnvironment conventional;
  conventional.thermal_model = &air;
  conventional.grid_spec = &core_rail;
  conventional.taps =
      pd::make_edge_taps(20, ch::kPower7DieWidthM, ch::kPower7DieHeightM, 1.0, 2e-3);
  conventional.power_spec = config.power_spec;
  const auto dark = co::find_max_core_activity(conventional, constraints);

  std::printf("== E10: bright vs dark silicon ==\n");
  TextTable table({"platform", "max core activity", "peak T (C)", "min rail (V)",
                   "binding constraint", "chip power (W)"});
  auto constraint_name = [](const co::ThrottleResult& r) {
    if (r.thermally_limited && r.voltage_limited) {
      return "thermal+voltage";
    }
    if (r.thermally_limited) {
      return "thermal";
    }
    if (r.voltage_limited) {
      return "voltage";
    }
    return "none";
  };
  table.add_row({"integrated microfluidic", TextTable::num(bright.max_activity, 2),
                 TextTable::num(bright.peak_temperature_c, 1),
                 TextTable::num(bright.min_rail_voltage_v, 3), constraint_name(bright),
                 TextTable::num(bright.bright_power_w, 1)});
  table.add_row({"conventional air-cooled", TextTable::num(dark.max_activity, 2),
                 TextTable::num(dark.peak_temperature_c, 1),
                 TextTable::num(dark.min_rail_voltage_v, 3), constraint_name(dark),
                 TextTable::num(dark.bright_power_w, 1)});
  table.print(std::cout);

  std::printf("\nbright fraction gain: %.1fx more sustained core activity\n",
              bright.max_activity / std::max(dark.max_activity, 1e-3));
  std::printf("reproduced (integrated runs all cores, conventional throttles): %s\n\n",
              (bright.max_activity >= 0.99 && dark.max_activity < 0.9) ? "YES" : "NO");
}

void bm_activity_search(benchmark::State& state) {
  const auto config = co::power7_system_config();
  th::ThermalModel::GridSettings grid;
  grid.axial_cells = 8;
  th::ThermalModel air(th::power7_conventional_stack(1200.0, 318.15), ch::kPower7DieWidthM,
                       ch::kPower7DieHeightM, grid);
  pd::PowerGridSpec core_rail;
  core_rail.sheet_resistance_ohm_per_sq = 5e-3;
  co::ThrottleEnvironment env;
  env.thermal_model = &air;
  env.grid_spec = &core_rail;
  env.taps = pd::make_edge_taps(20, ch::kPower7DieWidthM, ch::kPower7DieHeightM, 1.0, 2e-3);
  env.power_spec = config.power_spec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(co::find_max_core_activity(env, co::ThrottleConstraints{}, 0.05));
  }
}
BENCHMARK(bm_activity_search)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
