// E1/E2 — Reproduction of Fig. 3 (+ Table I echo): polarization curves of
// the Kjeang-2007 validation cell at 2.5 / 10 / 60 / 300 uL/min, compared
// point-by-point against the embedded reference dataset, mirroring the
// paper's "model within 10 % of experiment" validation claim.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/report.h"
#include "electrochem/nernst.h"
#include "electrochem/vanadium.h"
#include "flowcell/colaminar_fvm.h"
#include "flowcell/polarization.h"
#include "flowcell/reference_data.h"
#include "repro/figures.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace re = brightsi::repro;
using brightsi::core::TextTable;

namespace {

fc::ChannelOperatingConditions conditions_for(double ul_per_min) {
  fc::ChannelOperatingConditions c;
  c.volumetric_flow_m3_per_s = ul_per_min * 1e-9 / 60.0;
  c.inlet_temperature_k = 300.0;
  return c;
}

void print_reproduction() {
  const auto geometry = fc::kjeang2007_geometry();
  const auto chemistry = ec::kjeang2007_validation_chemistry();
  const fc::ColaminarChannelModel model(geometry, chemistry);

  std::printf("== E2: Table I echo (validation cell) ==\n");
  TextTable params({"parameter", "anode", "cathode", "unit"});
  params.add_row({"standard potential E0",
                  TextTable::num(chemistry.anode.couple.standard_potential_v),
                  TextTable::num(chemistry.cathode.couple.standard_potential_v), "V"});
  params.add_row({"oxidized inlet C*_Ox",
                  TextTable::num(chemistry.anode.oxidized_inlet_concentration_mol_per_m3, 0),
                  TextTable::num(chemistry.cathode.oxidized_inlet_concentration_mol_per_m3, 0),
                  "mol/m3"});
  params.add_row({"reduced inlet C*_Red",
                  TextTable::num(chemistry.anode.reduced_inlet_concentration_mol_per_m3, 0),
                  TextTable::num(chemistry.cathode.reduced_inlet_concentration_mol_per_m3, 0),
                  "mol/m3"});
  params.add_row({"diffusivity D x1e10",
                  TextTable::num(chemistry.anode.diffusivity_m2_per_s.reference_value * 1e10, 2),
                  TextTable::num(chemistry.cathode.diffusivity_m2_per_s.reference_value * 1e10, 2),
                  "m2/s"});
  params.add_row({"rate constant k0 x1e5",
                  TextTable::num(chemistry.anode.kinetic_rate_m_per_s.reference_value * 1e5, 2),
                  TextTable::num(chemistry.cathode.kinetic_rate_m_per_s.reference_value * 1e5, 2),
                  "m/s"});
  params.print(std::cout);
  std::printf("  cell: %.0f mm x %.0f mm x %.0f um, Nernst OCV %.3f V\n\n",
              geometry.channel_length_m * 1e3, geometry.electrode_gap_m * 1e3,
              geometry.channel_height_m * 1e6,
              ec::open_circuit_voltage(chemistry, 300.0));

  std::printf("== E1: Fig. 3 polarization curves (model vs reference) ==\n");
  // The rows the golden regression suite pins (tests/golden/fig3.csv).
  const re::FigureTable fig3 = re::fig3_polarization_table();
  double current_flow = -1.0;
  double worst_flow = 0.0;
  double worst_error_pct = 0.0;
  TextTable table({"V (V)", "i_model (mA/cm2)", "i_reference (mA/cm2)", "error (%)"});
  for (const auto& row : fig3.rows) {
    if (row[0] != current_flow) {
      if (current_flow >= 0.0) {
        table.print(std::cout);
        table = TextTable({"V (V)", "i_model (mA/cm2)", "i_reference (mA/cm2)", "error (%)"});
      }
      current_flow = row[0];
      std::printf("-- flow rate %.1f uL/min --\n", current_flow);
    }
    if (std::abs(row[4]) > worst_error_pct) {
      worst_error_pct = std::abs(row[4]);
      worst_flow = row[0];
    }
    table.add_row({TextTable::num(row[1], 2), TextTable::num(row[2], 2),
                   TextTable::num(row[3], 2), TextTable::num(row[4], 1)});
  }
  table.print(std::cout);
  std::printf(
      "\nmax |error| across all curves: %.1f %% (at %.1f uL/min)"
      "  [paper claim: within 10 %%]\n",
      worst_error_pct, worst_flow);
  std::printf("reproduced: %s\n", re::fig3_worst_error_pct(fig3) < 10.0 ? "YES" : "NO");

  // CSV artifact: dense model curves for plotting against the reference.
  const std::string path = brightsi::core::write_results_file(
      "fig3_polarization.csv", [&](std::ostream& os) {
        os << "flow_ul_per_min,cell_voltage_v,current_density_ma_per_cm2\n";
        for (const auto& curve : fc::fig3_reference_curves()) {
          const auto cond = conditions_for(curve.flow_rate_ul_per_min);
          for (double v = 1.40; v >= 0.2; v -= 0.05) {
            const auto sol = model.solve_at_voltage(v, cond);
            os << curve.flow_rate_ul_per_min << "," << v << ","
               << sol.mean_current_density_a_per_m2 / 10.0 << "\n";
          }
        }
      });
  if (!path.empty()) {
    std::printf("series written to %s\n", path.c_str());
  }
  std::printf("\n");
}

void bm_channel_solve(benchmark::State& state) {
  const fc::ColaminarChannelModel model(fc::kjeang2007_geometry(),
                                        ec::kjeang2007_validation_chemistry());
  const auto cond = conditions_for(60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve_at_voltage(0.9, cond));
  }
}
BENCHMARK(bm_channel_solve)->Unit(benchmark::kMillisecond);

void bm_polarization_sweep(benchmark::State& state) {
  const fc::ColaminarChannelModel model(fc::kjeang2007_geometry(),
                                        ec::kjeang2007_validation_chemistry());
  const auto cond = conditions_for(60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fc::sweep_polarization(model, cond, 0.3, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(bm_polarization_sweep)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
