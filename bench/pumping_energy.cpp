// E7 — Reproduction of the Section III-B pumping/energy-balance claims:
// pressure drop (paper: 1.5 bar/cm), pumping power (paper: 4.4 W at 50 %
// pump efficiency) and the headline that generation (~6 W) exceeds the
// pumping cost. The paper's two numbers are mutually inconsistent and both
// exceed straight-channel Darcy-Weisbach for the Table II geometry; this
// bench prints our physics, the paper's figures, and the inversion showing
// what pressure their own pumping equation implies. The reproduced *shape*
// is the positive net energy balance, which holds under every variant.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/report.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "hydraulics/pump.h"
#include "repro/figures.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace hy = brightsi::hydraulics;
using brightsi::core::TextTable;

namespace {

void print_reproduction() {
  const auto spec = fc::power7_array_spec();
  const fc::FlowCellArray array(spec, ec::power7_array_chemistry());
  const auto h = array.hydraulics_at_spec_flow();
  const double flow = spec.total_flow_m3_per_s;
  const double eta_pump = 0.5;  // paper

  const double pump_model = hy::pumping_power_w(h.pressure_drop_pa, flow, eta_pump);
  const double generated = array.current_at_voltage(1.0) * 1.0;

  // Inversions of the paper's own numbers.
  const double paper_pump_w = 4.4;
  const double paper_dp_implied = paper_pump_w * eta_pump / flow;          // from P = dp V / eta
  const double paper_dp_quoted = 1.5e5 * spec.geometry.channel_length_m * 100.0;  // 1.5 bar/cm

  std::printf("== E7: pumping power and energy balance ==\n");
  TextTable table({"quantity", "model", "paper", "unit"});
  table.add_row({"mean channel velocity", TextTable::num(h.mean_velocity_m_per_s, 2), "1.4",
                 "m/s"});
  table.add_row({"Reynolds number", TextTable::num(h.reynolds, 0), "(laminar)", "-"});
  table.add_row({"pressure gradient", TextTable::num(h.pressure_gradient_pa_per_m / 1e7, 3),
                 "1.5", "bar/cm"});
  table.add_row({"pressure drop (22 mm)", TextTable::num(h.pressure_drop_pa / 1e5, 3),
                 TextTable::num(paper_dp_quoted / 1e5, 1) + " (quoted)", "bar"});
  table.add_row({"dp implied by paper's 4.4 W", "-",
                 TextTable::num(paper_dp_implied / 1e5, 2), "bar"});
  table.add_row({"pumping power (eta=0.5)", TextTable::num(pump_model, 2), "4.4", "W"});
  table.add_row({"generated power at 1 V", TextTable::num(generated, 2), "6.0", "W"});
  table.add_row({"net power (model dp)", TextTable::num(generated - pump_model, 2), "1.6",
                 "W"});
  table.add_row({"net power (paper dp)", TextTable::num(generated - paper_pump_w, 2), "1.6",
                 "W"});
  table.print(std::cout);

  std::printf("\nenergy-balance shape (generation > pumping): model %s, paper-dp variant %s\n",
              generated > pump_model ? "YES" : "NO",
              generated > paper_pump_w ? "YES" : "NO");

  // Flow sweep: where would pumping eat the generation? Printed from the
  // shared figure table (repro/figures.h) pinned by tests/golden/pumping.csv
  // so this bench and the golden regression can never drift apart.
  std::printf("\nflow sweep (net power vs flow, model physics):\n");
  const brightsi::repro::FigureTable figure = brightsi::repro::pumping_energy_table();
  TextTable sweep({"flow (ml/min)", "dp (bar)", "pump (W)", "I@1V (A)", "net (W)"});
  for (const std::vector<double>& row : figure.rows) {
    sweep.add_row({TextTable::num(row[0], 0), TextTable::num(row[3], 3),
                   TextTable::num(row[4], 3), TextTable::num(row[5], 2),
                   TextTable::num(row[6], 2)});
  }
  sweep.print(std::cout);
  std::printf("\n");
}

void bm_hydraulics_eval(benchmark::State& state) {
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.hydraulics_at_spec_flow());
  }
}
BENCHMARK(bm_hydraulics_eval)->Unit(benchmark::kNanosecond);

void bm_net_power_point(benchmark::State& state) {
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  for (auto _ : state) {
    const auto h = array.hydraulics_at_spec_flow();
    const double pump = hy::pumping_power_w(
        h.pressure_drop_pa, fc::power7_array_spec().total_flow_m3_per_s, 0.5);
    benchmark::DoNotOptimize(array.current_at_voltage(1.0) - pump);
  }
}
BENCHMARK(bm_net_power_point)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
