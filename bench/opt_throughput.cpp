// Optimizer throughput: the channel-geometry study driven through the
// batch-evaluation session — the unit of work of every optimization
// generation. Measures candidate evaluations per second and the
// structure-cache hit split (candidates that reused a worker's assembled
// thermal model vs fresh builds).
//
// Prints a human-readable summary and writes a machine-readable
// BENCH_opt.json uploaded by the CI release-bench job next to
// BENCH_cosim.json and BENCH_mission.json. A non-flag first argument
// overrides the JSON path.
#include <chrono>
#include <cstdio>
#include <cstring>

#include <benchmark/benchmark.h>

#include "opt/studies.h"

namespace op = brightsi::opt;
namespace sw = brightsi::sweep;

namespace {

struct Measurement {
  long long evaluations = 0;
  double wall_s = 0.0;
  int model_builds = 0;
  int passes = 0;
  double best_net_w = 0.0;
  double best_peak_t_c = 0.0;

  [[nodiscard]] double evaluations_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(evaluations) / wall_s : 0.0;
  }
  [[nodiscard]] double cache_hit_fraction() const {
    return evaluations > 0
               ? static_cast<double>(evaluations - model_builds) /
                     static_cast<double>(evaluations)
               : 0.0;
  }
};

Measurement measure_study(int budget) {
  const op::Study study = op::make_registered_study("channel_geometry");
  op::OptimizerOptions options;
  options.budget = budget;

  const auto start = std::chrono::steady_clock::now();
  const op::OptResult result = op::optimize(study, options);
  Measurement m;
  m.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  m.evaluations = result.evaluations();
  m.model_builds = result.model_builds;
  m.passes = result.passes;
  if (const sw::ScenarioResult* best = result.best()) {
    m.best_net_w = best->metrics[4];     // net_w
    m.best_peak_t_c = best->metrics[5];  // peak_t_c
  }
  return m;
}

void write_json(const char* path, const Measurement& m) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"opt_throughput\",\n"
               "  \"study\": \"channel_geometry\",\n"
               "  \"evaluations\": %lld,\n"
               "  \"wall_s\": %.6f,\n"
               "  \"evaluations_per_s\": %.4f,\n"
               "  \"model_builds\": %d,\n"
               "  \"cache_hits\": %lld,\n"
               "  \"cache_hit_fraction\": %.4f,\n"
               "  \"refinement_passes\": %d,\n"
               "  \"best_net_w\": %.6f,\n"
               "  \"best_peak_t_c\": %.6f\n"
               "}\n",
               m.evaluations, m.wall_s, m.evaluations_per_s(), m.model_builds,
               m.evaluations - m.model_builds, m.cache_hit_fraction(), m.passes,
               m.best_net_w, m.best_peak_t_c);
  std::fclose(file);
  std::printf("wrote %s\n", path);
}

void print_reproduction(const char* json_path) {
  const Measurement m = measure_study(/*budget=*/48);
  std::printf("== opt throughput: channel_geometry study, budget 48 ==\n");
  std::printf("%lld evaluations in %.3f s -> %.2f evaluations/s (%d refinement passes)\n",
              m.evaluations, m.wall_s, m.evaluations_per_s(), m.passes);
  std::printf("structure cache: %d builds, %lld hits (%.0f%% hit rate)\n",
              m.model_builds, m.evaluations - m.model_builds,
              100.0 * m.cache_hit_fraction());
  std::printf("best design: net %.3f W at peak %.2f C\n\n", m.best_net_w, m.best_peak_t_c);
  write_json(json_path, m);
}

void bm_batch_generation(benchmark::State& state) {
  const op::Study study = op::make_registered_study("channel_geometry");
  sw::BatchEvaluationSession session(study.base, study.evaluator,
                                     {static_cast<int>(state.range(0)), true});
  // One axis generation: 8 flow candidates around the center point.
  std::vector<sw::ScenarioSpec> candidates;
  for (int i = 0; i < 8; ++i) {
    sw::ScenarioSpec spec;
    spec.name = "candidate " + std::to_string(i);
    spec.set("channel_gap_um", 250.0);
    spec.set("channel_height_um", 500.0);
    spec.set("flow_ml_min", 100.0 + 200.0 * i);
    spec.set("inlet_c", 40.0);
    candidates.push_back(std::move(spec));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.evaluate(candidates));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(candidates.size()));
}
BENCHMARK(bm_batch_generation)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_opt.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      argv[i] = argv[i + 1];
    }
    --argc;
  }
  print_reproduction(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
