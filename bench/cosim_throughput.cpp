// Co-simulation throughput: repeated IntegratedMpsocSystem::run() on the
// paper's POWER7+ configuration — the unit of work of every cosim sweep
// scenario, and the path the stateful solve contexts accelerate
// (assemble-once operator, reusable ILU(0), warm starts across the
// fixed-point iterations).
//
// Prints a human-readable summary and writes a machine-readable
// BENCH_cosim.json (runs/s, mean BiCGSTAB iterations per run, assembly vs
// solve time split) that starts the repo's perf trajectory; the CI Release
// job uploads it as an artifact. A non-flag first argument overrides the
// JSON path.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include <benchmark/benchmark.h>

#include "core/cosim.h"

namespace co = brightsi::core;

namespace {

struct Measurement {
  int runs = 0;
  double wall_s = 0.0;
  long long thermal_solves = 0;
  long long thermal_iterations = 0;
  double thermal_assembly_s = 0.0;
  double thermal_setup_s = 0.0;
  double thermal_solve_s = 0.0;

  [[nodiscard]] double runs_per_s() const { return wall_s > 0.0 ? runs / wall_s : 0.0; }
};

/// Repeated run() on one system until the measurement is stable (>= 2 s of
/// wall time), after a warm-up run.
Measurement measure_repeated_runs(const co::IntegratedMpsocSystem& system) {
  (void)system.run();  // warm-up: first-touch allocations, cache warming
  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    const co::CoSimReport report = system.run();
    ++m.runs;
    m.thermal_solves += report.thermal_solves;
    m.thermal_iterations += report.thermal_iterations;
    m.thermal_assembly_s += report.thermal_assembly_time_s;
    m.thermal_setup_s += report.thermal_setup_time_s;
    m.thermal_solve_s += report.thermal_solve_time_s;
    m.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if ((m.wall_s >= 2.0 && m.runs >= 5) || m.runs >= 64) {
      return m;
    }
  }
}

void write_json(const char* path, const Measurement& m) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"cosim_throughput\",\n"
               "  \"runs\": %d,\n"
               "  \"wall_s\": %.6f,\n"
               "  \"runs_per_s\": %.4f,\n"
               "  \"mean_run_s\": %.6f,\n"
               "  \"mean_thermal_solves_per_run\": %.3f,\n"
               "  \"mean_bicgstab_iterations_per_run\": %.3f,\n"
               "  \"thermal_assembly_s_per_run\": %.6f,\n"
               "  \"thermal_setup_s_per_run\": %.6f,\n"
               "  \"thermal_solve_s_per_run\": %.6f,\n"
               "  \"thermal_assembly_fraction\": %.4f,\n"
               "  \"thermal_solve_fraction\": %.4f\n"
               "}\n",
               m.runs, m.wall_s, m.runs_per_s(), m.wall_s / m.runs,
               static_cast<double>(m.thermal_solves) / m.runs,
               static_cast<double>(m.thermal_iterations) / m.runs,
               m.thermal_assembly_s / m.runs, m.thermal_setup_s / m.runs,
               m.thermal_solve_s / m.runs,
               m.thermal_assembly_s / m.wall_s, m.thermal_solve_s / m.wall_s);
  std::fclose(file);
  std::printf("wrote %s\n", path);
}

void print_reproduction(const char* json_path) {
  const co::SystemConfig config = co::power7_system_config();
  const co::IntegratedMpsocSystem system(config);
  const Measurement m = measure_repeated_runs(system);

  std::printf("== cosim throughput: repeated IntegratedMpsocSystem::run() ==\n");
  std::printf("%d runs in %.3f s -> %.3f runs/s (mean %.3f s/run)\n", m.runs, m.wall_s,
              m.runs_per_s(), m.wall_s / m.runs);
  std::printf("thermal: %.1f solves/run, %.1f BiCGSTAB iterations/run (warm starts"
              " collapse the re-check solve)\n",
              static_cast<double>(m.thermal_solves) / m.runs,
              static_cast<double>(m.thermal_iterations) / m.runs);
  std::printf("time split per run: assembly %.1f ms (%.0f%%), setup %.1f ms, krylov"
              " %.1f ms (%.0f%%), electrochem/pdn/other %.1f ms (%.0f%%)\n\n",
              1e3 * m.thermal_assembly_s / m.runs, 100.0 * m.thermal_assembly_s / m.wall_s,
              1e3 * m.thermal_setup_s / m.runs,
              1e3 * m.thermal_solve_s / m.runs, 100.0 * m.thermal_solve_s / m.wall_s,
              1e3 * (m.wall_s - m.thermal_assembly_s - m.thermal_setup_s -
                     m.thermal_solve_s) / m.runs,
              100.0 * (m.wall_s - m.thermal_assembly_s - m.thermal_setup_s -
                       m.thermal_solve_s) / m.wall_s);
  write_json(json_path, m);
}

void bm_cosim_run(benchmark::State& state) {
  const co::SystemConfig config = co::power7_system_config();
  const co::IntegratedMpsocSystem system(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_cosim_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_cosim.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      argv[i] = argv[i + 1];
    }
    --argc;
  }
  print_reproduction(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
