// Mission stepping throughput: repeated core::run_mission on the paper's
// POWER7+ configuration — the unit of work of every mission sweep scenario
// and the loop the shared transient engine owns (phase-aligned schedule,
// one solve context across the mission, in-place state hand-off instead of
// a per-step full-grid copy).
//
// Prints a human-readable summary and writes a machine-readable
// BENCH_mission.json (steps/s, thermal-solve vs bus/electrochem time
// split) next to BENCH_cosim.json in the CI Release job's artifacts. A
// non-flag first argument overrides the JSON path.
#include <chrono>
#include <cstdio>
#include <cstring>

#include <benchmark/benchmark.h>

#include "core/mission.h"

namespace co = brightsi::core;
namespace ch = brightsi::chip;

namespace {

co::MissionConfig bench_mission() {
  co::MissionConfig config;
  config.system = co::power7_system_config();
  config.system.thermal_grid.axial_cells = 16;
  config.system.fvm.axial_steps = 60;
  config.workload = ch::burst_trace(1);  // 3 s of idle | burst | sustain
  config.reservoir.tank_volume_m3 = 5e-6;
  config.reservoir.total_vanadium_mol_per_m3 = 2001.0;
  config.reservoir.chemistry = config.system.chemistry;
  config.dt_s = 0.05;  // 60 steps per mission
  return config;
}

struct Measurement {
  int missions = 0;
  long long steps = 0;
  double wall_s = 0.0;
  long long thermal_iterations = 0;
  double thermal_assembly_s = 0.0;
  double thermal_setup_s = 0.0;
  double thermal_solve_s = 0.0;

  [[nodiscard]] double steps_per_s() const { return wall_s > 0.0 ? steps / wall_s : 0.0; }
  [[nodiscard]] double bus_s() const {
    return wall_s - thermal_assembly_s - thermal_setup_s - thermal_solve_s;
  }
};

/// Repeated missions until the measurement is stable (>= 2 s of wall
/// time), after a warm-up run.
Measurement measure_repeated_missions(const co::MissionConfig& config) {
  (void)co::run_mission(config);  // warm-up: first-touch allocations
  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    const co::MissionResult result = co::run_mission(config);
    ++m.missions;
    m.steps += result.steps;
    m.thermal_iterations += result.thermal_iterations;
    m.thermal_assembly_s += result.thermal_assembly_time_s;
    m.thermal_setup_s += result.thermal_setup_time_s;
    m.thermal_solve_s += result.thermal_solve_time_s;
    m.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if ((m.wall_s >= 2.0 && m.missions >= 3) || m.missions >= 64) {
      return m;
    }
  }
}

void write_json(const char* path, const Measurement& m) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"mission_throughput\",\n"
               "  \"missions\": %d,\n"
               "  \"steps\": %lld,\n"
               "  \"wall_s\": %.6f,\n"
               "  \"steps_per_s\": %.4f,\n"
               "  \"mean_step_ms\": %.6f,\n"
               "  \"mean_bicgstab_iterations_per_step\": %.3f,\n"
               "  \"thermal_assembly_s_per_step\": %.8f,\n"
               "  \"thermal_setup_s_per_step\": %.8f,\n"
               "  \"thermal_solve_s_per_step\": %.8f,\n"
               "  \"thermal_assembly_fraction\": %.4f,\n"
               "  \"thermal_solve_fraction\": %.4f,\n"
               "  \"bus_electrochem_fraction\": %.4f\n"
               "}\n",
               m.missions, m.steps, m.wall_s, m.steps_per_s(), 1e3 * m.wall_s / m.steps,
               static_cast<double>(m.thermal_iterations) / m.steps,
               m.thermal_assembly_s / m.steps, m.thermal_setup_s / m.steps,
               m.thermal_solve_s / m.steps,
               m.thermal_assembly_s / m.wall_s, m.thermal_solve_s / m.wall_s,
               m.bus_s() / m.wall_s);
  std::fclose(file);
  std::printf("wrote %s\n", path);
}

void print_reproduction(const char* json_path) {
  const co::MissionConfig config = bench_mission();
  const Measurement m = measure_repeated_missions(config);

  std::printf("== mission throughput: repeated core::run_mission() ==\n");
  std::printf("%d missions (%lld steps) in %.3f s -> %.1f steps/s (mean %.2f ms/step)\n",
              m.missions, m.steps, m.wall_s, m.steps_per_s(), 1e3 * m.wall_s / m.steps);
  std::printf("thermal: %.1f BiCGSTAB iterations/step\n",
              static_cast<double>(m.thermal_iterations) / m.steps);
  std::printf("time split per step: assembly %.2f ms (%.0f%%), krylov %.2f ms (%.0f%%),"
              " bus/electrochem %.2f ms (%.0f%%)\n\n",
              1e3 * m.thermal_assembly_s / m.steps, 100.0 * m.thermal_assembly_s / m.wall_s,
              1e3 * m.thermal_solve_s / m.steps, 100.0 * m.thermal_solve_s / m.wall_s,
              1e3 * m.bus_s() / m.steps, 100.0 * m.bus_s() / m.wall_s);
  write_json(json_path, m);
}

void bm_mission_run(benchmark::State& state) {
  const co::MissionConfig config = bench_mission();
  for (auto _ : state) {
    benchmark::DoNotOptimize(co::run_mission(config));
  }
}
BENCHMARK(bm_mission_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_mission.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      argv[i] = argv[i + 1];
    }
    --argc;
  }
  print_reproduction(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
