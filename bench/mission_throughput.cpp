// Mission stepping throughput: repeated core::run_mission on the paper's
// POWER7+ configuration — the unit of work of every mission sweep scenario
// and the loop the shared transient engine owns (phase-aligned schedule,
// one solve context across the mission, in-place state hand-off instead of
// a per-step full-grid copy).
//
// A second section ("endurance_engine") runs a paired backend comparison
// of the thermal stepping itself: the same endurance-shaped workload (the
// burst trace repeated long enough to amortize the reduced basis build)
// stepped once through the full-grid TransientEngine and once through the
// certified reduced-order backend, reporting both arms plus the
// steps-per-second speedup and the reduced arm's certificate trail.
//
// Prints a human-readable summary and writes a machine-readable
// BENCH_mission.json (steps/s, thermal-solve vs bus/electrochem time
// split) next to BENCH_cosim.json in the CI Release job's artifacts. A
// non-flag first argument overrides the JSON path; --transient full|rom
// selects the main mission section's stepping backend.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <benchmark/benchmark.h>

#include "chip/power7.h"
#include "core/mission.h"
#include "thermal/transient.h"

namespace co = brightsi::core;
namespace ch = brightsi::chip;
namespace th = brightsi::thermal;

namespace {

co::MissionConfig bench_mission(th::TransientBackend backend) {
  co::MissionConfig config;
  config.system = co::power7_system_config();
  config.system.thermal_grid.axial_cells = 16;
  config.system.fvm.axial_steps = 60;
  config.workload = ch::burst_trace(1);  // 3 s of idle | burst | sustain
  config.reservoir.tank_volume_m3 = 5e-6;
  config.reservoir.total_vanadium_mol_per_m3 = 2001.0;
  config.reservoir.chemistry = config.system.chemistry;
  config.dt_s = 0.05;  // 60 steps per mission
  config.transient_backend = backend;
  return config;
}

struct Measurement {
  int missions = 0;
  long long steps = 0;
  double wall_s = 0.0;
  long long thermal_iterations = 0;
  double thermal_assembly_s = 0.0;
  double thermal_setup_s = 0.0;
  double thermal_solve_s = 0.0;
  // Reduced-backend counters (zero on the full backend), summed over
  // missions except the per-mission maxima, which take the worst mission.
  long long rom_steps = 0;
  long long rom_fallbacks = 0;
  int rom_basis_size = 0;
  double rom_build_s = 0.0;
  double rom_max_bound_k = 0.0;
  double rom_cumulative_bound_k = 0.0;

  [[nodiscard]] double steps_per_s() const { return wall_s > 0.0 ? steps / wall_s : 0.0; }
  [[nodiscard]] double bus_s() const {
    return wall_s - thermal_assembly_s - thermal_setup_s - thermal_solve_s;
  }
};

/// Repeated missions until the measurement is stable (>= 2 s of wall
/// time), after a warm-up run.
Measurement measure_repeated_missions(const co::MissionConfig& config) {
  (void)co::run_mission(config);  // warm-up: first-touch allocations
  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    const co::MissionResult result = co::run_mission(config);
    ++m.missions;
    m.steps += result.steps;
    m.thermal_iterations += result.thermal_iterations;
    m.thermal_assembly_s += result.thermal_assembly_time_s;
    m.thermal_setup_s += result.thermal_setup_time_s;
    m.thermal_solve_s += result.thermal_solve_time_s;
    m.rom_steps += result.rom_steps;
    m.rom_fallbacks += result.rom_fallbacks;
    m.rom_basis_size = std::max(m.rom_basis_size, result.rom_basis_size);
    m.rom_build_s += result.rom_build_time_s;
    m.rom_max_bound_k = std::max(m.rom_max_bound_k, result.rom_max_bound_k);
    m.rom_cumulative_bound_k = std::max(m.rom_cumulative_bound_k, result.rom_cumulative_bound_k);
    m.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if ((m.wall_s >= 2.0 && m.missions >= 3) || m.missions >= 64) {
      return m;
    }
  }
}

/// One arm of the rom-vs-full comparison: the TransientEngine stepped
/// directly on an endurance-shaped workload (the 3 s burst trace repeated,
/// so the reduced basis build amortizes the way a long mission amortizes
/// it). Wall time includes engine construction and, for the reduced arm,
/// every basis build and fallback solve.
struct EngineMeasurement {
  const char* backend = "full";
  int repeats = 0;
  long long steps = 0;
  double wall_s = 0.0;
  th::RomStats rom;  ///< zero-initialized on the full arm

  [[nodiscard]] double steps_per_s() const { return wall_s > 0.0 ? steps / wall_s : 0.0; }
};

EngineMeasurement measure_endurance_engine(th::TransientBackend backend, int repeats) {
  const co::SystemConfig sys = [] {
    co::SystemConfig config = co::power7_system_config();
    config.thermal_grid.axial_cells = 8;
    return config;
  }();
  const ch::Floorplan floorplan = ch::make_power7_floorplan(sys.power_spec);
  const th::ThermalModel model(sys.stack, floorplan.die_width(), floorplan.die_height(),
                               sys.thermal_grid);
  const ch::WorkloadTrace trace(ch::burst_trace(1).phases(), repeats);

  EngineMeasurement m;
  m.backend = th::transient_backend_name(backend);
  m.repeats = repeats;
  const auto start = std::chrono::steady_clock::now();
  th::TransientEngineOptions options;
  options.schedule.dt_s = 0.07;
  options.backend = backend;
  th::TransientEngine engine(model, sys.thermal_operating_point(), options);
  engine.run(trace, sys.power_spec, [](const th::TransientEngine::StepView&) {});
  m.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  m.steps = engine.steps_taken();
  if (engine.rom() != nullptr) {
    m.rom = engine.rom()->stats();
  }
  return m;
}

void write_engine_json(std::FILE* file, const EngineMeasurement& m) {
  std::fprintf(file,
               "      \"repeats\": %d,\n"
               "      \"steps\": %lld,\n"
               "      \"wall_s\": %.6f,\n"
               "      \"steps_per_s\": %.4f,\n"
               "      \"rom_steps\": %lld,\n"
               "      \"rom_fallbacks\": %lld,\n"
               "      \"rom_basis_size\": %d,\n"
               "      \"rom_build_time_s\": %.6f,\n"
               "      \"rom_max_bound_k\": %.6f,\n"
               "      \"rom_cumulative_bound_k\": %.6f",
               m.repeats, m.steps, m.wall_s, m.steps_per_s(), m.rom.rom_steps,
               m.rom.full_steps, m.rom.basis_size, m.rom.build_time_s,
               m.rom.max_accepted_bound_k, m.rom.cumulative_bound_k);
}

void write_json(const char* path, const char* backend, const Measurement& m,
                const EngineMeasurement& engine_full, const EngineMeasurement& engine_rom) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"mission_throughput\",\n"
               "  \"transient\": \"%s\",\n"
               "  \"missions\": %d,\n"
               "  \"steps\": %lld,\n"
               "  \"wall_s\": %.6f,\n"
               "  \"steps_per_s\": %.4f,\n"
               "  \"mean_step_ms\": %.6f,\n"
               "  \"mean_bicgstab_iterations_per_step\": %.3f,\n"
               "  \"thermal_assembly_s_per_step\": %.8f,\n"
               "  \"thermal_setup_s_per_step\": %.8f,\n"
               "  \"thermal_solve_s_per_step\": %.8f,\n"
               "  \"thermal_assembly_fraction\": %.4f,\n"
               "  \"thermal_solve_fraction\": %.4f,\n"
               "  \"bus_electrochem_fraction\": %.4f,\n"
               "  \"rom_steps\": %lld,\n"
               "  \"rom_fallbacks\": %lld,\n"
               "  \"rom_basis_size\": %d,\n"
               "  \"rom_build_time_s\": %.6f,\n"
               "  \"rom_max_bound_k\": %.6f,\n"
               "  \"rom_cumulative_bound_k\": %.6f,\n",
               backend, m.missions, m.steps, m.wall_s, m.steps_per_s(),
               1e3 * m.wall_s / m.steps,
               static_cast<double>(m.thermal_iterations) / m.steps,
               m.thermal_assembly_s / m.steps, m.thermal_setup_s / m.steps,
               m.thermal_solve_s / m.steps,
               m.thermal_assembly_s / m.wall_s, m.thermal_solve_s / m.wall_s,
               m.bus_s() / m.wall_s, m.rom_steps, m.rom_fallbacks, m.rom_basis_size,
               m.rom_build_s, m.rom_max_bound_k, m.rom_cumulative_bound_k);
  std::fprintf(file, "  \"endurance_engine\": {\n    \"full\": {\n");
  write_engine_json(file, engine_full);
  std::fprintf(file, "\n    },\n    \"rom\": {\n");
  write_engine_json(file, engine_rom);
  std::fprintf(file,
               "\n    },\n"
               "    \"speedup_rom_over_full\": %.3f\n"
               "  }\n"
               "}\n",
               engine_rom.steps_per_s() / engine_full.steps_per_s());
  std::fclose(file);
  std::printf("wrote %s\n", path);
}

void print_engine_measurement(const EngineMeasurement& m) {
  std::printf("-- %s --\n", m.backend);
  std::printf("%lld steps (burst trace x%d) in %.3f s -> %.1f steps/s (mean %.3f ms/step)\n",
              m.steps, m.repeats, m.wall_s, m.steps_per_s(), 1e3 * m.wall_s / m.steps);
  if (m.rom.rom_steps + m.rom.full_steps > 0) {
    std::printf("reduced: %lld rom steps (%.4f ms each), %lld fallbacks, basis %d,"
                " build %.3f s, max bound %.4f K, cumulative %.4f K\n",
                m.rom.rom_steps, 1e3 * m.rom.step_time_s / m.rom.rom_steps,
                m.rom.full_steps, m.rom.basis_size, m.rom.build_time_s,
                m.rom.max_accepted_bound_k, m.rom.cumulative_bound_k);
  }
}

void print_reproduction(const char* json_path, th::TransientBackend backend) {
  const co::MissionConfig config = bench_mission(backend);
  const Measurement m = measure_repeated_missions(config);

  std::printf("== mission throughput: repeated core::run_mission() [%s] ==\n",
              th::transient_backend_name(backend));
  std::printf("%d missions (%lld steps) in %.3f s -> %.1f steps/s (mean %.2f ms/step)\n",
              m.missions, m.steps, m.wall_s, m.steps_per_s(), 1e3 * m.wall_s / m.steps);
  std::printf("thermal: %.1f BiCGSTAB iterations/step\n",
              static_cast<double>(m.thermal_iterations) / m.steps);
  std::printf("time split per step: assembly %.2f ms (%.0f%%), krylov %.2f ms (%.0f%%),"
              " bus/electrochem %.2f ms (%.0f%%)\n",
              1e3 * m.thermal_assembly_s / m.steps, 100.0 * m.thermal_assembly_s / m.wall_s,
              1e3 * m.thermal_solve_s / m.steps, 100.0 * m.thermal_solve_s / m.wall_s,
              1e3 * m.bus_s() / m.steps, 100.0 * m.bus_s() / m.wall_s);
  if (m.rom_steps + m.rom_fallbacks > 0) {
    std::printf("reduced: %lld rom steps, %lld fallbacks, basis %d,"
                " max bound %.4f K, cumulative %.4f K\n",
                m.rom_steps, m.rom_fallbacks, m.rom_basis_size, m.rom_max_bound_k,
                m.rom_cumulative_bound_k);
  }

  // Thermal stepping alone, endurance-shaped: the reduced arm runs the
  // trace long enough to amortize its basis build, the full arm long
  // enough for a stable per-step time.
  std::printf("\n== endurance engine stepping: full vs rom ==\n");
  const EngineMeasurement engine_full =
      measure_endurance_engine(th::TransientBackend::kFull, /*repeats=*/2);
  print_engine_measurement(engine_full);
  const EngineMeasurement engine_rom =
      measure_endurance_engine(th::TransientBackend::kRom, /*repeats=*/96);
  print_engine_measurement(engine_rom);
  std::printf("steps/s rom/full: %.2fx\n\n",
              engine_rom.steps_per_s() / engine_full.steps_per_s());

  write_json(json_path, th::transient_backend_name(backend), m, engine_full, engine_rom);
}

void bm_mission_run(benchmark::State& state) {
  const co::MissionConfig config = bench_mission(th::TransientBackend::kFull);
  for (auto _ : state) {
    benchmark::DoNotOptimize(co::run_mission(config));
  }
}
BENCHMARK(bm_mission_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_mission.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      argv[i] = argv[i + 1];
    }
    --argc;
  }
  th::TransientBackend backend = th::TransientBackend::kFull;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transient") == 0 && i + 1 < argc) {
      backend = th::parse_transient_backend(argv[i + 1]);
      for (int j = i; j + 2 < argc; ++j) {
        argv[j] = argv[j + 2];
      }
      argc -= 2;
      break;
    }
  }
  print_reproduction(json_path, backend);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
