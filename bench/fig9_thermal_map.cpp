// E6 — Reproduction of Fig. 9: thermal map of the POWER7+ at full load
// cooled by the electrolyte flow at 676 ml/min, 27 C inlet. Paper: 41 C
// peak; our reconstruction lands in the upper 30s (see EXPERIMENTS.md for
// the documented power-map uncertainty).
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "chip/power7.h"
#include "core/report.h"
#include "repro/figures.h"
#include "thermal/model.h"

namespace th = brightsi::thermal;
namespace ch = brightsi::chip;
namespace re = brightsi::repro;
using brightsi::core::TextTable;
using brightsi::core::print_ascii_map;

namespace {

th::OperatingPoint paper_operating_point() {
  th::OperatingPoint op;
  op.total_flow_m3_per_s = 676e-6 / 60.0;  // Table II
  op.inlet_temperature_k = 300.15;         // 27 C
  return op;
}

void print_reproduction() {
  const auto floorplan = ch::make_power7_floorplan();
  // The solution the golden regression suite pins (tests/golden/fig9_*.csv).
  const th::ThermalSolution sol = re::fig9_thermal_solution();
  const re::FigureTable summary = re::fig9_thermal_summary(sol);

  std::printf("== E6: Fig. 9 full-load thermal map ==\n");
  std::printf("grid %d x %d x %d cells, total power %.1f W, coolant 676 ml/min @ 27 C\n",
              sol.temperature_k.nx(), sol.temperature_k.ny(), sol.temperature_k.nz(),
              floorplan.total_power());

  const std::vector<double>& stats = summary.rows.front();
  TextTable table({"quantity", "model", "paper", "unit"});
  table.add_row({"peak temperature", TextTable::num(stats[1], 1), "41", "C"});
  table.add_row({"fluid heat absorbed", TextTable::num(stats[2], 1), "(all)", "W"});
  table.add_row({"energy balance error", TextTable::num(stats[3], 4), "-", "%"});
  table.add_row({"mean outlet temperature", TextTable::num(stats[4], 2), "-", "C"});
  table.print(std::cout);

  std::printf("\nper-block temperatures (C):\n");
  const re::FigureTable block_table = re::fig9_block_table(sol);
  TextTable blocks({"block", "mean", "max"});
  for (std::size_t b = 0; b < block_table.rows.size(); ++b) {
    blocks.add_row({block_table.labels[b], TextTable::num(block_table.rows[b][0], 1),
                    TextTable::num(block_table.rows[b][1], 1)});
  }
  blocks.print(std::cout);

  // Celsius map for display.
  auto map_c = sol.source_layer_map_k();
  for (double& v : map_c.data()) {
    v -= 273.15;
  }
  std::printf("\n");
  print_ascii_map(std::cout, map_c, "die temperature map (active layer)", "C");

  const double peak_c = sol.peak_temperature_k - 273.15;
  std::printf("\nreproduced (peak in the 34-43 C liquid-cooled band, cores hottest near"
              " outlet): %s\n",
              (peak_c > 34.0 && peak_c < 43.0 && sol.peak_iz == 0) ? "YES" : "NO");

  const std::string path = brightsi::core::write_results_file(
      "fig9_thermal_map.csv", [&](std::ostream& os) {
        brightsi::core::write_field_csv(os, map_c, ch::kPower7DieWidthM,
                                        ch::kPower7DieHeightM);
      });
  if (!path.empty()) {
    std::printf("field written to %s\n", path.c_str());
  }
  std::printf("\n");
}

void bm_thermal_steady(benchmark::State& state) {
  const auto floorplan = ch::make_power7_floorplan();
  th::ThermalModel::GridSettings settings;
  settings.axial_cells = static_cast<int>(state.range(0));
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, settings);
  const auto op = paper_operating_point();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve_steady(floorplan, op));
  }
}
BENCHMARK(bm_thermal_steady)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void bm_thermal_transient_step(benchmark::State& state) {
  const auto floorplan = ch::make_power7_floorplan();
  th::ThermalModel::GridSettings settings;
  settings.axial_cells = 16;
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, settings);
  const auto op = paper_operating_point();
  auto state_grid = model.uniform_state(op.inlet_temperature_k);
  for (auto _ : state) {
    auto sol = model.step_transient(state_grid, floorplan, op, 0.05);
    benchmark::DoNotOptimize(sol.peak_temperature_k);
  }
}
BENCHMARK(bm_thermal_transient_step)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
