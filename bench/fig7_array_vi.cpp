// E3/E4 — Reproduction of Fig. 7 (+ Table II echo): voltage-current
// characteristic of the 88-channel microfluidic flow-cell array on the
// POWER7+. Headline: the array sources 6 A at a 1 V bus, adequate for the
// 5 A cache rail.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/report.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "repro/figures.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace re = brightsi::repro;
using brightsi::core::TextTable;

namespace {

void print_reproduction() {
  const auto spec = fc::power7_array_spec();
  const auto chemistry = ec::power7_array_chemistry();
  const fc::FlowCellArray array(spec, chemistry);

  std::printf("== E4: Table II echo (POWER7+ array) ==\n");
  TextTable params({"parameter", "value", "unit"});
  params.add_row({"channels", std::to_string(spec.channel_count), "-"});
  params.add_row({"channel width", TextTable::num(spec.geometry.electrode_gap_m * 1e6, 0), "um"});
  params.add_row({"channel height", TextTable::num(spec.geometry.channel_height_m * 1e6, 0), "um"});
  params.add_row({"channel length", TextTable::num(spec.geometry.channel_length_m * 1e3, 0), "mm"});
  params.add_row({"total flow", TextTable::num(spec.total_flow_m3_per_s * 60e6, 0), "ml/min"});
  params.add_row({"inlet temperature", TextTable::num(spec.inlet_temperature_k, 0), "K"});
  const auto h = array.hydraulics_at_spec_flow();
  params.add_row({"mean velocity", TextTable::num(h.mean_velocity_m_per_s, 2), "m/s"});
  params.add_row({"Reynolds", TextTable::num(h.reynolds, 0), "-"});
  params.add_row({"array OCV", TextTable::num(array.open_circuit_voltage(), 3), "V"});
  params.print(std::cout);

  std::printf("\n== E3: Fig. 7 array V-I characteristic ==\n");
  // The rows the golden regression suite pins (tests/golden/fig7.csv).
  TextTable table({"V (V)", "I (A)", "P (W)", "i (A/cm2)"});
  const double area_cm2 =
      spec.geometry.projected_electrode_area_m2() * spec.channel_count * 1e4;
  for (const auto& row : re::fig7_array_vi_table().rows) {
    table.add_row({TextTable::num(row[0], 2), TextTable::num(row[1], 2),
                   TextTable::num(row[2], 2), TextTable::num(row[3], 3)});
  }
  table.print(std::cout);

  const double i_at_1v = array.current_at_voltage(1.0);
  std::printf("\ncurrent at 1.0 V: %.2f A  [paper: 6 A; cache rail demand: 5 A]\n", i_at_1v);
  std::printf("power density at 1.0 V: %.3f W/cm2  [paper cites 0.7 W/cm2 state of the art]\n",
              i_at_1v * 1.0 / area_cm2);
  std::printf("reproduced (6 A +/- 10%%, >= 5 A rail): %s\n",
              (std::abs(i_at_1v - 6.0) < 0.6 && i_at_1v >= 5.0) ? "YES" : "NO");

  const std::string path = brightsi::core::write_results_file(
      "fig7_array_vi.csv", [&](std::ostream& os) {
        os << "cell_voltage_v,current_a,power_w\n";
        for (double v = 1.64; v >= 0.1; v -= 0.02) {
          const double current = array.current_at_voltage(v);
          os << v << "," << current << "," << current * v << "\n";
        }
      });
  if (!path.empty()) {
    std::printf("series written to %s\n", path.c_str());
  }
  std::printf("\n");
}

void bm_array_current(benchmark::State& state) {
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.current_at_voltage(1.0));
  }
}
BENCHMARK(bm_array_current)->Unit(benchmark::kMicrosecond);

void bm_array_voltage_solve(benchmark::State& state) {
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.voltage_at_current(6.0));
  }
}
BENCHMARK(bm_array_voltage_solve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
