// Sweep-engine throughput baseline: scenarios/second of the SweepRunner at
// 1, 4 and hardware_concurrency threads, on the fast isothermal array
// evaluator (so the numbers measure the engine, not one heavyweight
// scenario). Future PRs that touch the runner or the evaluators compare
// against this.
#include <cstdio>
#include <iostream>
#include <thread>

#include <benchmark/benchmark.h>

#include "core/report.h"
#include "sweep/registry.h"
#include "sweep/runner.h"

namespace sw = brightsi::sweep;
using brightsi::core::TextTable;

namespace {

sw::SweepPlan throughput_plan() {
  // The 14-point geometry ablation, tiled 4x for a stable measurement.
  sw::SweepPlan plan = sw::make_registered_plan("ablation_geometry");
  const std::vector<sw::ScenarioSpec> base_points = plan.scenarios;
  for (int copy = 1; copy < 4; ++copy) {
    for (sw::ScenarioSpec scenario : base_points) {
      scenario.name += " #" + std::to_string(copy);
      plan.add(std::move(scenario));
    }
  }
  return plan;
}

void print_reproduction() {
  const sw::SweepPlan plan = throughput_plan();
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());

  std::printf("== sweep throughput: %zu array scenarios per run ==\n",
              plan.scenarios.size());
  TextTable table({"threads", "wall (s)", "scenarios/s", "speedup vs 1"});
  std::vector<int> thread_counts = {1, 4};
  if (hardware != 1 && hardware != 4) {
    thread_counts.push_back(static_cast<int>(hardware));
  }
  double serial_rate = 0.0;
  for (const int threads : thread_counts) {
    const sw::SweepRunner runner({threads});
    // Warm-up run, then the measured run.
    (void)runner.run(plan);
    const sw::SweepResult result = runner.run(plan);
    const double rate = result.scenarios_per_second();
    if (threads == 1) {
      serial_rate = rate;
    }
    table.add_row({std::to_string(threads), TextTable::num(result.wall_time_s, 3),
                   TextTable::num(rate, 1),
                   TextTable::num(serial_rate > 0.0 ? rate / serial_rate : 0.0, 2)});
  }
  table.print(std::cout);
  std::printf("\n(hardware_concurrency = %u; per-scenario results are identical at\n"
              "every thread count — see sweep_test determinism checks)\n\n",
              hardware);
}

void bm_sweep(benchmark::State& state) {
  const sw::SweepPlan plan = throughput_plan();
  const sw::SweepRunner runner({static_cast<int>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(plan));
  }
  state.counters["scenarios/s"] = benchmark::Counter(
      static_cast<double>(plan.scenarios.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(bm_sweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
