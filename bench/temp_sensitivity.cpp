// E8 — Reproduction of the Section III-B temperature-sensitivity findings:
//  * at the nominal 676 ml/min flow, chip heating changes the generated
//    current at fixed potential by at most ~4 %;
//  * at 48 ml/min (hot coolant) or with a 37 C inlet, the generated power
//    rises by up to ~23 % through the combined enhancement of the kinetic
//    rate, diffusivity and electrolyte conductivity.
// Runs the full electro-thermal co-simulation for the coupled cases.
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/cosim.h"
#include "core/report.h"
#include "core/system_config.h"

namespace co = brightsi::core;
using brightsi::core::TextTable;

namespace {

co::SystemConfig config_with(double flow_ml_min, double inlet_c) {
  co::SystemConfig config = co::power7_system_config();
  config.array_spec.total_flow_m3_per_s = flow_ml_min * 1e-6 / 60.0;
  config.array_spec.inlet_temperature_k = inlet_c + 273.15;
  config.thermal_grid.axial_cells = 16;
  return config;
}

void print_reproduction() {
  std::printf("== E8: temperature sensitivity of the generated power ==\n");

  // Baseline: isothermal array at 27 C (the polarization the paper's Fig. 7
  // characterizes).
  const co::IntegratedMpsocSystem nominal(config_with(676.0, 27.0));
  const double i_iso = nominal.array().current_at_voltage(1.0);

  TextTable table({"case", "I@1V (A)", "P@1V (W)", "gain vs isothermal (%)", "peak T (C)"});
  table.add_row({"isothermal 27 C (baseline)", TextTable::num(i_iso, 3),
                 TextTable::num(i_iso, 3), "0.0", "-"});

  struct Case {
    const char* name;
    double flow_ml_min;
    double inlet_c;
  };
  const Case cases[] = {
      {"coupled, 676 ml/min, 27 C inlet", 676.0, 27.0},
      {"coupled, 48 ml/min, 27 C inlet", 48.0, 27.0},
      {"coupled, 676 ml/min, 37 C inlet", 676.0, 37.0},
  };

  double nominal_gain = 0.0;
  double max_hot_gain = 0.0;
  for (const Case& c : cases) {
    const co::IntegratedMpsocSystem system(config_with(c.flow_ml_min, c.inlet_c));
    const auto report = system.run();
    const double gain = report.coupled_current_a / i_iso - 1.0;
    table.add_row({c.name, TextTable::num(report.coupled_current_a, 3),
                   TextTable::num(report.coupled_current_a * 1.0, 3),
                   TextTable::num(gain * 100.0, 1),
                   TextTable::num(report.peak_temperature_c, 1)});
    if (c.flow_ml_min == 676.0 && c.inlet_c == 27.0) {
      nominal_gain = gain;
    } else {
      max_hot_gain = std::max(max_hot_gain, gain);
    }
  }
  table.print(std::cout);

  std::printf("\nnominal-flow gain: %.1f %%   [paper: at most ~4 %%]\n",
              nominal_gain * 100.0);
  std::printf("hot-coolant gain (48 ml/min or 37 C inlet): up to %.1f %%   [paper: up to 23 %%]\n",
              max_hot_gain * 100.0);
  std::printf("reproduced (nominal <= 4 %%, hot within 23 +/- 6 %%): %s\n\n",
              (nominal_gain <= 0.04 && std::abs(max_hot_gain - 0.23) < 0.06) ? "YES" : "NO");
}

void bm_cosim_run(benchmark::State& state) {
  const co::IntegratedMpsocSystem system(config_with(676.0, 27.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_cosim_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
