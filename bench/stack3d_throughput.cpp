// 3D-stack co-simulation throughput: repeated IntegratedMpsocSystem::run()
// on the two-die interlayer-cooled configuration — the unit of work of
// every stack_3d sweep scenario and stack_depth optimizer candidate. The
// stacked operator is roughly twice the single-die system's, so this bench
// tracks how the solve-context machinery (assemble-once pattern, ILU(0)
// refactor, warm starts) scales with stack depth.
//
// Prints a human-readable summary and writes a machine-readable
// BENCH_stack3d.json (runs/s, per-die split, BiCGSTAB iterations, assembly
// vs solve time) that the CI Release job uploads as an artifact. A
// non-flag first argument overrides the JSON path.
#include <chrono>
#include <cstdio>
#include <cstring>

#include <benchmark/benchmark.h>

#include "core/cosim.h"

namespace co = brightsi::core;

namespace {

struct Measurement {
  int runs = 0;
  double wall_s = 0.0;
  long long thermal_solves = 0;
  long long thermal_iterations = 0;
  double thermal_assembly_s = 0.0;
  double thermal_solve_s = 0.0;
  int dies = 0;
  int channel_layers = 0;
  double bottom_flow_fraction = 0.0;

  [[nodiscard]] double runs_per_s() const { return wall_s > 0.0 ? runs / wall_s : 0.0; }
};

Measurement measure_repeated_runs(const co::IntegratedMpsocSystem& system) {
  (void)system.run();  // warm-up: first-touch allocations, cache warming
  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    const co::CoSimReport report = system.run();
    ++m.runs;
    m.thermal_solves += report.thermal_solves;
    m.thermal_iterations += report.thermal_iterations;
    m.thermal_assembly_s += report.thermal_assembly_time_s;
    m.thermal_solve_s += report.thermal_solve_time_s;
    m.dies = report.die_count;
    m.channel_layers = static_cast<int>(report.layer_flows.size());
    m.bottom_flow_fraction =
        report.layer_flows.empty() ? 0.0 : report.layer_flows.front().fraction;
    m.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if ((m.wall_s >= 2.0 && m.runs >= 5) || m.runs >= 64) {
      return m;
    }
  }
}

void write_json(const char* path, const Measurement& m) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"stack3d_throughput\",\n"
               "  \"dies\": %d,\n"
               "  \"channel_layers\": %d,\n"
               "  \"bottom_flow_fraction\": %.6f,\n"
               "  \"runs\": %d,\n"
               "  \"wall_s\": %.6f,\n"
               "  \"runs_per_s\": %.4f,\n"
               "  \"mean_run_s\": %.6f,\n"
               "  \"mean_thermal_solves_per_run\": %.3f,\n"
               "  \"mean_bicgstab_iterations_per_run\": %.3f,\n"
               "  \"thermal_assembly_s_per_run\": %.6f,\n"
               "  \"thermal_solve_s_per_run\": %.6f\n"
               "}\n",
               m.dies, m.channel_layers, m.bottom_flow_fraction, m.runs, m.wall_s,
               m.runs_per_s(), m.wall_s / m.runs,
               static_cast<double>(m.thermal_solves) / m.runs,
               static_cast<double>(m.thermal_iterations) / m.runs,
               m.thermal_assembly_s / m.runs, m.thermal_solve_s / m.runs);
  std::fclose(file);
  std::printf("wrote %s\n", path);
}

void print_reproduction(const char* json_path) {
  co::SystemConfig config = co::two_die_system_config();
  config.thermal_grid.axial_cells = 16;  // the sweep plans' stacked resolution
  const co::IntegratedMpsocSystem system(config);
  const Measurement m = measure_repeated_runs(system);

  std::printf("== stack3d throughput: repeated two-die IntegratedMpsocSystem::run() ==\n");
  std::printf("%d dies, %d cooling layers, bottom-layer flow fraction %.3f\n", m.dies,
              m.channel_layers, m.bottom_flow_fraction);
  std::printf("%d runs in %.3f s -> %.3f runs/s (mean %.3f s/run)\n", m.runs, m.wall_s,
              m.runs_per_s(), m.wall_s / m.runs);
  std::printf("thermal: %.1f solves/run, %.1f BiCGSTAB iterations/run\n",
              static_cast<double>(m.thermal_solves) / m.runs,
              static_cast<double>(m.thermal_iterations) / m.runs);
  std::printf("time split per run: assembly %.1f ms, krylov %.1f ms, other %.1f ms\n\n",
              1e3 * m.thermal_assembly_s / m.runs, 1e3 * m.thermal_solve_s / m.runs,
              1e3 * (m.wall_s - m.thermal_assembly_s - m.thermal_solve_s) / m.runs);
  write_json(json_path, m);
}

void bm_stack3d_run(benchmark::State& state) {
  co::SystemConfig config = co::two_die_system_config();
  config.thermal_grid.axial_cells = 16;
  const co::IntegratedMpsocSystem system(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_stack3d_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_stack3d.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      argv[i] = argv[i + 1];
    }
    --argc;
  }
  print_reproduction(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
