// 3D-stack co-simulation throughput: repeated IntegratedMpsocSystem::run()
// on the two-die interlayer-cooled configuration — the unit of work of
// every stack_3d sweep scenario and stack_depth optimizer candidate. The
// stacked operator is roughly twice the single-die system's, so this bench
// tracks how the solve-context machinery (assemble-once pattern,
// preconditioner refactor, warm starts) scales with stack depth.
//
// A second section runs a paired solver comparison on an 8-die stack with
// roughly 8x the two-die system's z-cell count (the regime multigrid
// targets): the same system is measured with --solver ilu0 and with
// --solver mg, and the JSON reports both arms plus iteration and
// thermal-time ratios.
//
// Prints a human-readable summary and writes a machine-readable
// BENCH_stack3d.json (runs/s, per-die split, BiCGSTAB iterations, assembly
// vs setup vs solve time — schema in docs/BENCHMARKS.md) that the CI
// Release job uploads as an artifact. A non-flag first argument overrides
// the JSON path; --solver ilu0|mg selects the main section's
// preconditioner.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include <benchmark/benchmark.h>

#include "chip/power7.h"
#include "core/cosim.h"

namespace co = brightsi::core;
namespace th = brightsi::thermal;

namespace {

struct Measurement {
  int runs = 0;
  double wall_s = 0.0;
  long long thermal_solves = 0;
  long long thermal_iterations = 0;
  double thermal_assembly_s = 0.0;
  double thermal_setup_s = 0.0;
  double thermal_solve_s = 0.0;
  int dies = 0;
  int channel_layers = 0;
  double bottom_flow_fraction = 0.0;

  [[nodiscard]] double runs_per_s() const { return wall_s > 0.0 ? runs / wall_s : 0.0; }
  /// Preconditioner setup + Krylov iteration time per run — the solver
  /// cost the ilu0-vs-mg comparison is about.
  [[nodiscard]] double thermal_time_per_run_s() const {
    return (thermal_setup_s + thermal_solve_s) / runs;
  }
  [[nodiscard]] double iterations_per_run() const {
    return static_cast<double>(thermal_iterations) / runs;
  }
};

Measurement measure_repeated_runs(const co::IntegratedMpsocSystem& system) {
  (void)system.run();  // warm-up: first-touch allocations, cache warming
  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    const co::CoSimReport report = system.run();
    ++m.runs;
    m.thermal_solves += report.thermal_solves;
    m.thermal_iterations += report.thermal_iterations;
    m.thermal_assembly_s += report.thermal_assembly_time_s;
    m.thermal_setup_s += report.thermal_setup_time_s;
    m.thermal_solve_s += report.thermal_solve_time_s;
    m.dies = report.die_count;
    m.channel_layers = static_cast<int>(report.layer_flows.size());
    m.bottom_flow_fraction =
        report.layer_flows.empty() ? 0.0 : report.layer_flows.front().fraction;
    m.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if ((m.wall_s >= 2.0 && m.runs >= 5) || m.runs >= 64) {
      return m;
    }
  }
}

/// The multigrid target regime: an 8-die interlayer-cooled stack whose
/// operator has ~8x the z-cells of the default two-die system. Here
/// ILU(0)'s iteration count has grown ~3x over the two-die system while
/// the multigrid count stays flat, so mg wins both metrics.
co::SystemConfig tall_stack_config(th::SolverKind kind) {
  co::SystemConfig config = co::two_die_system_config();
  config.thermal_grid.axial_cells = 16;
  config.stack = th::multi_die_stack(/*die_count=*/8, /*interlayer_cooling=*/true,
                                     /*bulk_z_cells=*/16);
  config.upper_die_power.assign(7, brightsi::chip::memory_die_power_spec());
  config.thermal_grid.solver_config.kind = kind;
  config.validate();
  return config;
}

Measurement measure_tall_stack(th::SolverKind kind) {
  const co::IntegratedMpsocSystem system(tall_stack_config(kind));
  return measure_repeated_runs(system);
}

void print_measurement(const Measurement& m) {
  std::printf("%d runs in %.3f s -> %.3f runs/s (mean %.3f s/run)\n", m.runs, m.wall_s,
              m.runs_per_s(), m.wall_s / m.runs);
  std::printf("thermal: %.1f solves/run, %.1f BiCGSTAB iterations/run\n",
              static_cast<double>(m.thermal_solves) / m.runs, m.iterations_per_run());
  std::printf("time split per run: assembly %.1f ms, setup %.1f ms, krylov %.1f ms,"
              " other %.1f ms\n",
              1e3 * m.thermal_assembly_s / m.runs, 1e3 * m.thermal_setup_s / m.runs,
              1e3 * m.thermal_solve_s / m.runs,
              1e3 * (m.wall_s - m.thermal_assembly_s - m.thermal_setup_s - m.thermal_solve_s) /
                  m.runs);
}

void write_measurement_json(std::FILE* file, const char* indent, const Measurement& m) {
  std::fprintf(file,
               "%s\"runs\": %d,\n"
               "%s\"wall_s\": %.6f,\n"
               "%s\"runs_per_s\": %.4f,\n"
               "%s\"mean_run_s\": %.6f,\n"
               "%s\"mean_thermal_solves_per_run\": %.3f,\n"
               "%s\"mean_bicgstab_iterations_per_run\": %.3f,\n"
               "%s\"thermal_assembly_s_per_run\": %.6f,\n"
               "%s\"thermal_setup_s_per_run\": %.6f,\n"
               "%s\"thermal_solve_s_per_run\": %.6f",
               indent, m.runs, indent, m.wall_s, indent, m.runs_per_s(), indent,
               m.wall_s / m.runs, indent, static_cast<double>(m.thermal_solves) / m.runs,
               indent, m.iterations_per_run(), indent, m.thermal_assembly_s / m.runs, indent,
               m.thermal_setup_s / m.runs, indent, m.thermal_solve_s / m.runs);
}

void write_json(const char* path, const char* solver, const Measurement& m,
                const Measurement& tall_ilu0, const Measurement& tall_mg) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"stack3d_throughput\",\n"
               "  \"solver\": \"%s\",\n"
               "  \"dies\": %d,\n"
               "  \"channel_layers\": %d,\n"
               "  \"bottom_flow_fraction\": %.6f,\n",
               solver, m.dies, m.channel_layers, m.bottom_flow_fraction);
  write_measurement_json(file, "  ", m);
  std::fprintf(file,
               ",\n"
               "  \"tall_stack\": {\n"
               "    \"dies\": %d,\n"
               "    \"channel_layers\": %d,\n"
               "    \"ilu0\": {\n",
               tall_ilu0.dies, tall_ilu0.channel_layers);
  write_measurement_json(file, "      ", tall_ilu0);
  std::fprintf(file, "\n    },\n    \"mg\": {\n");
  write_measurement_json(file, "      ", tall_mg);
  std::fprintf(file,
               "\n    },\n"
               "    \"iteration_ratio_ilu0_over_mg\": %.3f,\n"
               "    \"thermal_time_speedup_ilu0_over_mg\": %.3f\n"
               "  }\n"
               "}\n",
               tall_ilu0.iterations_per_run() / tall_mg.iterations_per_run(),
               tall_ilu0.thermal_time_per_run_s() / tall_mg.thermal_time_per_run_s());
  std::fclose(file);
  std::printf("wrote %s\n", path);
}

void print_reproduction(const char* json_path, th::SolverKind kind) {
  co::SystemConfig config = co::two_die_system_config();
  config.thermal_grid.axial_cells = 16;  // the sweep plans' stacked resolution
  config.thermal_grid.solver_config.kind = kind;
  const co::IntegratedMpsocSystem system(config);
  const Measurement m = measure_repeated_runs(system);

  std::printf("== stack3d throughput: repeated two-die IntegratedMpsocSystem::run()"
              " [%s] ==\n",
              th::solver_kind_name(kind));
  std::printf("%d dies, %d cooling layers, bottom-layer flow fraction %.3f\n", m.dies,
              m.channel_layers, m.bottom_flow_fraction);
  print_measurement(m);

  std::printf("\n== tall stack (8 dies, 16-cell bulk): ilu0 vs mg ==\n");
  const Measurement tall_ilu0 = measure_tall_stack(th::SolverKind::kIlu0);
  std::printf("-- ilu0 --\n");
  print_measurement(tall_ilu0);
  const Measurement tall_mg = measure_tall_stack(th::SolverKind::kMultigrid);
  std::printf("-- mg --\n");
  print_measurement(tall_mg);
  std::printf("iterations ilu0/mg: %.2fx, thermal time ilu0/mg: %.2fx\n\n",
              tall_ilu0.iterations_per_run() / tall_mg.iterations_per_run(),
              tall_ilu0.thermal_time_per_run_s() / tall_mg.thermal_time_per_run_s());

  write_json(json_path, th::solver_kind_name(kind), m, tall_ilu0, tall_mg);
}

void bm_stack3d_run(benchmark::State& state) {
  co::SystemConfig config = co::two_die_system_config();
  config.thermal_grid.axial_cells = 16;
  const co::IntegratedMpsocSystem system(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
}
BENCHMARK(bm_stack3d_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_stack3d.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      argv[i] = argv[i + 1];
    }
    --argc;
  }
  th::SolverKind kind = th::SolverKind::kIlu0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--solver") == 0 && i + 1 < argc) {
      kind = th::parse_solver_kind(argv[i + 1]);
      for (int j = i; j + 2 < argc; ++j) {
        argv[j] = argv[j + 2];
      }
      argc -= 2;
      break;
    }
  }
  print_reproduction(json_path, kind);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
