// Multi-objective optimizer throughput and quality: the evolutionary
// nsga2 search against the grid optimizer on the stack_pareto study at an
// equal real-evaluation budget. Measures candidate evaluations per
// second, the surrogate pre-screen rate (offspring rejected before a real
// co-simulation), and the 2-D hypervolume of each algorithm's feasible
// Pareto front — the acceptance gate is hypervolume_ratio >= 1, i.e. the
// evolutionary front dominates or matches the grid front.
//
// Prints a human-readable summary and writes a machine-readable
// BENCH_moo.json uploaded by the CI release-bench job (schema:
// docs/BENCHMARKS.md). A non-flag first argument overrides the JSON path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "opt/nsga2.h"
#include "opt/studies.h"
#include "opt/surrogate.h"

namespace op = brightsi::opt;

namespace {

constexpr int kBudget = 24;

int metric_index(const op::OptResult& result, const std::string& name) {
  const auto& names = result.archive.metric_names;
  return static_cast<int>(std::find(names.begin(), names.end(), name) - names.begin());
}

/// The feasible Pareto front as (net_w, peak_t_c) points.
std::vector<std::pair<double, double>> front_points(const op::OptResult& result) {
  const int max_index = metric_index(result, "net_w");
  const int min_index = metric_index(result, "peak_t_c");
  std::vector<std::pair<double, double>> points;
  for (const int index : result.pareto_indices) {
    const auto& metrics = result.archive.rows[static_cast<std::size_t>(index)].metrics;
    points.emplace_back(metrics[static_cast<std::size_t>(max_index)],
                        metrics[static_cast<std::size_t>(min_index)]);
  }
  return points;
}

struct Measurement {
  op::OptResult result;
  double wall_s = 0.0;

  [[nodiscard]] double evaluations_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(result.evaluations()) / wall_s : 0.0;
  }
};

Measurement run_nsga2(const op::Study& study) {
  op::Nsga2Options options;
  options.budget = kBudget;
  options.population = 6;
  const auto start = std::chrono::steady_clock::now();
  Measurement m{op::optimize_nsga2(study, options), 0.0};
  m.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return m;
}

Measurement run_grid(const op::Study& study) {
  op::OptimizerOptions options;
  options.budget = kBudget;
  const auto start = std::chrono::steady_clock::now();
  Measurement m{op::optimize(study, options), 0.0};
  m.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return m;
}

void print_reproduction(const char* json_path) {
  const op::Study study = op::make_registered_study("stack_pareto");
  const Measurement moo = run_nsga2(study);
  const Measurement grid = run_grid(study);

  // One shared reference corner, just outside the union of both fronts,
  // so each front's hypervolume is measured against the same yardstick.
  const std::vector<std::pair<double, double>> moo_front = front_points(moo.result);
  const std::vector<std::pair<double, double>> grid_front = front_points(grid.result);
  double ref_maximize = 0.0;
  double ref_minimize = 0.0;
  for (const auto& [f, g] : moo_front) {
    ref_maximize = std::min(ref_maximize, f);
    ref_minimize = std::max(ref_minimize, g);
  }
  for (const auto& [f, g] : grid_front) {
    ref_maximize = std::min(ref_maximize, f);
    ref_minimize = std::max(ref_minimize, g);
  }
  ref_maximize -= 1.0;  // W below the worst front point
  ref_minimize += 1.0;  // C above the hottest front point
  const double hv_moo = op::hypervolume_2d(moo_front, ref_maximize, ref_minimize);
  const double hv_grid = op::hypervolume_2d(grid_front, ref_maximize, ref_minimize);
  const double ratio = hv_grid > 0.0 ? hv_moo / hv_grid : (hv_moo > 0.0 ? 2.0 : 1.0);
  const double screen_rate =
      moo.result.surrogate_candidates > 0
          ? static_cast<double>(moo.result.surrogate_screened) /
                static_cast<double>(moo.result.surrogate_candidates)
          : 0.0;

  std::printf("== moo throughput: stack_pareto study, budget %d ==\n", kBudget);
  std::printf("nsga2: %lld evaluations in %.3f s -> %.2f evaluations/s "
              "(%d generations)\n",
              moo.result.evaluations(), moo.wall_s, moo.evaluations_per_s(),
              moo.result.generations);
  std::printf("surrogate: %lld proposed, %lld screened out (%.0f%% screen rate)\n",
              moo.result.surrogate_candidates, moo.result.surrogate_screened,
              100.0 * screen_rate);
  std::printf("front: nsga2 %zu designs (hv %.4f) vs grid %zu designs (hv %.4f) "
              "-> ratio %.3f\n\n",
              moo_front.size(), hv_moo, grid_front.size(), hv_grid, ratio);

  std::FILE* file = std::fopen(json_path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"moo_throughput\",\n"
               "  \"study\": \"stack_pareto\",\n"
               "  \"budget\": %d,\n"
               "  \"nsga2\": {\n"
               "    \"evaluations\": %lld,\n"
               "    \"wall_s\": %.6f,\n"
               "    \"evaluations_per_s\": %.4f,\n"
               "    \"generations\": %d,\n"
               "    \"surrogate_candidates\": %lld,\n"
               "    \"surrogate_screened\": %lld,\n"
               "    \"surrogate_screen_rate\": %.4f,\n"
               "    \"front_size\": %zu,\n"
               "    \"hypervolume\": %.6f\n"
               "  },\n"
               "  \"grid\": {\n"
               "    \"evaluations\": %lld,\n"
               "    \"wall_s\": %.6f,\n"
               "    \"evaluations_per_s\": %.4f,\n"
               "    \"front_size\": %zu,\n"
               "    \"hypervolume\": %.6f\n"
               "  },\n"
               "  \"hypervolume_ratio\": %.6f,\n"
               "  \"dominates_or_matches\": %s\n"
               "}\n",
               kBudget, moo.result.evaluations(), moo.wall_s, moo.evaluations_per_s(),
               moo.result.generations, moo.result.surrogate_candidates,
               moo.result.surrogate_screened, screen_rate, moo_front.size(), hv_moo,
               grid.result.evaluations(), grid.wall_s, grid.evaluations_per_s(),
               grid_front.size(), hv_grid, ratio, ratio >= 1.0 ? "true" : "false");
  std::fclose(file);
  std::printf("wrote %s\n", json_path);
}

/// Surrogate train + full-pool predict: the per-generation overhead the
/// screen adds on top of the real evaluations it saves.
void bm_surrogate_screen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> points;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < n; ++i) {
    // A deterministic low-discrepancy-ish scatter; values are irrelevant,
    // the kernel solve cost is what is measured.
    const double x = static_cast<double>((i * 17) % n) / static_cast<double>(n);
    const double y = static_cast<double>((i * 29) % n) / static_cast<double>(n);
    points.push_back({x, y, 0.5});
    targets.push_back({x + y, x - y});
  }
  for (auto _ : state) {
    op::RbfSurrogate surrogate;
    benchmark::DoNotOptimize(surrogate.train(points, targets));
    for (int i = 0; i < 3 * n; ++i) {
      benchmark::DoNotOptimize(
          surrogate.predict({static_cast<double>(i) / static_cast<double>(3 * n), 0.5, 0.25}));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(3 * n));
}
BENCHMARK(bm_surrogate_screen)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_moo.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) {
      argv[i] = argv[i + 1];
    }
    --argc;
  }
  print_reproduction(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
