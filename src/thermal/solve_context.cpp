#include "thermal/solve_context.h"

#include <chrono>
#include <stdexcept>
#include <string>

#include "numerics/contracts.h"

namespace brightsi::thermal {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

ThermalSolveContext::ThermalSolveContext(const ThermalModel& model)
    : model_(&model), matrix_(model.operator_pattern()) {}

void ThermalSolveContext::reset() { warm_ = false; }

void ThermalSolveContext::check_floorplans(
    std::span<const chip::Floorplan* const> floorplans) const {
  ensure(static_cast<int>(floorplans.size()) == model_->die_count(),
         "thermal solve needs one floorplan per heat-source layer: got " +
             std::to_string(floorplans.size()) + " for " +
             std::to_string(model_->die_count()) + " dies");
  for (const chip::Floorplan* floorplan : floorplans) {
    ensure(floorplan != nullptr, "thermal solve: null floorplan");
    ensure(floorplan->die_width() == model_->die_width_m() &&
               floorplan->die_height() == model_->die_height_m(),
           "thermal solve: floorplan outline does not match the model's die");
  }
}

ThermalSolution ThermalSolveContext::solve_steady(const chip::Floorplan& floorplan,
                                                  const OperatingPoint& op) {
  const chip::Floorplan* floorplans[] = {&floorplan};
  return solve_steady(floorplans, op);
}

ThermalSolution ThermalSolveContext::solve_steady(
    std::span<const chip::Floorplan* const> floorplans, const OperatingPoint& op) {
  const StackSpec& stack = model_->stack();
  op.validate(stack.has_channels());
  check_floorplans(floorplans);
  ensure(!stack.has_channels() || stack.top_heat_transfer_w_per_m2_k > 0.0 ||
             op.total_flow_m3_per_s > 0.0,
         "steady solve needs a heat sink (coolant flow or top film)");
  ensure(stack.has_channels() || stack.top_heat_transfer_w_per_m2_k > 0.0,
         "solid stack needs a top film coefficient for a steady solution");
  return solve(floorplans, op, 0.0, nullptr, &steady_scatter_, "ThermalModel::solve_steady");
}

ThermalSolution ThermalSolveContext::step_transient(const numerics::Grid3<double>& state,
                                                    const chip::Floorplan& floorplan,
                                                    const OperatingPoint& op, double dt_s) {
  const chip::Floorplan* floorplans[] = {&floorplan};
  return step_transient(state, floorplans, op, dt_s);
}

ThermalSolution ThermalSolveContext::step_transient(
    const numerics::Grid3<double>& state, std::span<const chip::Floorplan* const> floorplans,
    const OperatingPoint& op, double dt_s) {
  op.validate(model_->stack().has_channels());
  check_floorplans(floorplans);
  ensure_positive(dt_s, "transient step");
  ensure(state.nx() == model_->nx() && state.ny() == model_->ny() && state.nz() == model_->nz(),
         "transient state has the wrong shape");
  // The step's own previous state is the best initial guess.
  temperatures_ = state.data();
  warm_ = true;
  return solve(floorplans, op, 1.0 / dt_s, &state, &transient_scatter_,
               "ThermalModel::step_transient");
}

ThermalSolution ThermalSolveContext::solve(std::span<const chip::Floorplan* const> floorplans,
                                           const OperatingPoint& op, double capacity_over_dt,
                                           const numerics::Grid3<double>* previous,
                                           std::vector<int>* scatter_plan, const char* what) {
  const auto assembly_start = std::chrono::steady_clock::now();
  // One equal-pressure split per solve, shared by the operator fill and
  // the solution packaging.
  const std::vector<double> layer_flows = model_->layer_flow_split(op);
  model_->fill_operator(floorplans, op, layer_flows, capacity_over_dt, previous,
                        &triplets_, &rhs_);
  matrix_.refill_from_triplets(triplets_, scatter_plan);
  stats_.assembly_time_s += seconds_since(assembly_start);

  // Preconditioner setup (timed separately from assembly): numeric
  // refactorization on the fixed pattern, or a first-call build.
  const auto setup_start = std::chrono::steady_clock::now();
  const numerics::Preconditioner* preconditioner = nullptr;
  if (model_->settings().solver_config.kind == SolverKind::kMultigrid) {
    if (multigrid_ != nullptr) {
      multigrid_->refactor(matrix_);
    } else {
      multigrid_ = std::make_unique<numerics::MultigridPreconditioner>(
          matrix_, model_->nx() * model_->ny(), model_->z_cell_thicknesses(),
          model_->settings().solver_config.multigrid);
    }
    preconditioner = multigrid_.get();
  } else {
    if (ilu_ != nullptr) {
      ilu_->refactor(matrix_);
    } else {
      ilu_ = std::make_unique<numerics::Ilu0Preconditioner>(matrix_);
    }
    preconditioner = ilu_.get();
  }
  const double setup_time_s = seconds_since(setup_start);
  stats_.precond_setup_time_s += setup_time_s;

  if (!warm_) {
    temperatures_.assign(rhs_.size(), op.inlet_temperature_k);
  }
  numerics::SolverReport report = numerics::solve_bicgstab(
      matrix_, rhs_, temperatures_, preconditioner, model_->settings().solver,
      &workspace_);
  report.setup_time_s = setup_time_s;
  stats_.solves += 1;
  stats_.iterations += report.iterations;
  stats_.solve_time_s += report.solve_time_s;
  if (!report.converged) {
    warm_ = false;  // never warm-start from a diverged iterate
    throw std::runtime_error(std::string(what) + ": BiCGSTAB did not converge (residual " +
                             std::to_string(report.residual_norm) + " after " +
                             std::to_string(report.iterations) + " iterations)");
  }
  warm_ = true;
  return model_->package_solution(temperatures_, floorplans, op, layer_flows, report);
}

}  // namespace brightsi::thermal
