#include "thermal/stack.h"

#include "numerics/contracts.h"

namespace brightsi::thermal {

namespace {

void check_solid_layer(const SolidLayerSpec& layer) {
  ensure(!layer.name.empty(), "stack layer must be named");
  ensure_positive(layer.thickness_m, "layer thickness (" + layer.name + ")");
  ensure(layer.z_cells >= 1, "layer z_cells (" + layer.name + ") must be >= 1");
  ensure_positive(layer.material.thermal_conductivity_w_per_m_k,
                  "layer conductivity (" + layer.name + ")");
  ensure_positive(layer.material.volumetric_heat_capacity_j_per_m3_k,
                  "layer heat capacity (" + layer.name + ")");
}

void check_channel_layer(const MicrochannelLayerSpec& layer) {
  ensure(!layer.name.empty(), "channel layer must be named");
  ensure(layer.channel_count > 0, "channel count (" + layer.name + ") must be positive");
  ensure_positive(layer.channel_width_m, "channel width (" + layer.name + ")");
  ensure(layer.interior_wall_width_m > 0.0 &&
             layer.channel_width_m < layer.pitch_m(),
         "channel wider than pitch (" + layer.name +
             "): interior wall width must be positive");
  ensure_positive(layer.layer_height_m, "channel layer height (" + layer.name + ")");
  ensure(layer.z_cells >= 1, "channel layer z_cells (" + layer.name + ") must be >= 1");
  ensure_positive(layer.wall_material.thermal_conductivity_w_per_m_k,
                  "channel wall conductivity (" + layer.name + ")");
  ensure_positive(layer.wall_material.volumetric_heat_capacity_j_per_m3_k,
                  "channel wall heat capacity (" + layer.name + ")");
  ensure_non_negative(layer.nusselt_override, "nusselt override (" + layer.name + ")");
}

}  // namespace

void StackSpec::validate() const {
  ensure(!layers.empty(), "stack needs at least one layer");
  bool any_source = false;
  const MicrochannelLayerSpec* previous_channel = nullptr;  // immediately-previous layer
  const MicrochannelLayerSpec* reference_channel = nullptr;  // bottom channel layer
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (const auto* solid = std::get_if<SolidLayerSpec>(&layers[i])) {
      check_solid_layer(*solid);
      any_source = any_source || solid->has_heat_source;
      previous_channel = nullptr;
      continue;
    }
    const auto& channel = std::get<MicrochannelLayerSpec>(layers[i]);
    check_channel_layer(channel);
    ensure(i > 0, "channel layer '" + channel.name +
                      "' cannot be the bottom layer (a solid die must sit below it)");
    if (previous_channel != nullptr) {
      throw std::invalid_argument("adjacent channel layers '" + previous_channel->name +
                                  "' and '" + channel.name +
                                  "' need a solid layer between them");
    }
    if (reference_channel != nullptr &&
        (channel.channel_count != reference_channel->channel_count ||
         channel.channel_width_m != reference_channel->channel_width_m ||
         channel.interior_wall_width_m != reference_channel->interior_wall_width_m)) {
      throw std::invalid_argument(
          "channel layer '" + channel.name + "' does not match the channel pattern of '" +
          reference_channel->name + "' (channel columns must align across layers)");
    }
    if (reference_channel == nullptr) {
      reference_channel = &channel;
    }
    previous_channel = &channel;
  }
  ensure(any_source, "no layer carries the heat sources");
  ensure_non_negative(top_heat_transfer_w_per_m2_k, "top heat transfer coefficient");
  ensure_positive(ambient_temperature_k, "ambient temperature");
}

int StackSpec::channel_layer_count() const {
  int count = 0;
  for (const StackLayer& layer : layers) {
    count += std::holds_alternative<MicrochannelLayerSpec>(layer) ? 1 : 0;
  }
  return count;
}

int StackSpec::source_layer_count() const {
  int count = 0;
  for (const StackLayer& layer : layers) {
    if (const auto* solid = std::get_if<SolidLayerSpec>(&layer)) {
      count += solid->has_heat_source ? 1 : 0;
    }
  }
  return count;
}

std::vector<const MicrochannelLayerSpec*> StackSpec::channel_layers() const {
  std::vector<const MicrochannelLayerSpec*> channels;
  for (const StackLayer& layer : layers) {
    if (const auto* channel = std::get_if<MicrochannelLayerSpec>(&layer)) {
      channels.push_back(channel);
    }
  }
  return channels;
}

const MicrochannelLayerSpec* StackSpec::bottom_channel_layer() const {
  for (const StackLayer& layer : layers) {
    if (const auto* channel = std::get_if<MicrochannelLayerSpec>(&layer)) {
      return channel;
    }
  }
  return nullptr;
}

MicrochannelLayerSpec* StackSpec::bottom_channel_layer() {
  for (StackLayer& layer : layers) {
    if (auto* channel = std::get_if<MicrochannelLayerSpec>(&layer)) {
      return channel;
    }
  }
  return nullptr;
}

StackSpec power7_microchannel_stack() {
  StackSpec stack;
  stack.add(SolidLayerSpec{"active", 10e-6, 1, silicon(), /*has_heat_source=*/true});
  stack.add(SolidLayerSpec{"bulk_si", 650e-6, 3, silicon(), false});
  MicrochannelLayerSpec channel;
  channel.nusselt_override = 3.54;  // three heated walls, H1
  stack.add(channel);
  stack.add(SolidLayerSpec{"cap_si", 100e-6, 1, silicon(), false});
  stack.validate();
  return stack;
}

StackSpec power7_conventional_stack(double effective_sink_h_w_per_m2_k, double ambient_k) {
  StackSpec stack;
  stack.add(SolidLayerSpec{"active", 10e-6, 1, silicon(), /*has_heat_source=*/true});
  stack.add(SolidLayerSpec{"bulk_si", 750e-6, 3, silicon(), false});
  stack.add(SolidLayerSpec{"tim", 50e-6, 1, thermal_interface(), false});
  stack.add(SolidLayerSpec{"spreader", 2e-3, 2, copper(), false});
  stack.top_heat_transfer_w_per_m2_k = effective_sink_h_w_per_m2_k;
  stack.ambient_temperature_k = ambient_k;
  stack.validate();
  return stack;
}

StackSpec multi_die_stack(int die_count, bool interlayer_cooling, int bulk_z_cells) {
  ensure(die_count >= 1, "multi_die_stack: die count must be >= 1");
  ensure(bulk_z_cells >= 1, "multi_die_stack: bulk z_cells must be >= 1");
  StackSpec stack;
  for (int die = 0; die < die_count; ++die) {
    const std::string prefix = "die" + std::to_string(die);
    stack.add(SolidLayerSpec{prefix + "_active", 10e-6, 1, silicon(),
                             /*has_heat_source=*/true});
    stack.add(SolidLayerSpec{prefix + "_bulk", 650e-6, bulk_z_cells, silicon(), false});
    if (interlayer_cooling || die + 1 == die_count) {
      MicrochannelLayerSpec channel;
      channel.name = "cool" + std::to_string(die);
      channel.nusselt_override = 3.54;  // back-side-etched, cap side adiabatic
      stack.add(channel);
    }
  }
  stack.add(SolidLayerSpec{"cap_si", 100e-6, 1, silicon(), false});
  stack.validate();
  return stack;
}

StackSpec two_die_stack() { return multi_die_stack(2); }

}  // namespace brightsi::thermal
