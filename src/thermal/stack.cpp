#include "thermal/stack.h"

#include "numerics/contracts.h"

namespace brightsi::thermal {

void StackSpec::validate() const {
  ensure(!layers_below.empty(), "stack needs at least one layer below the channel layer");
  bool any_source = false;
  auto check_layer = [&](const SolidLayerSpec& layer) {
    ensure(!layer.name.empty(), "stack layer must be named");
    ensure_positive(layer.thickness_m, "layer thickness (" + layer.name + ")");
    ensure(layer.z_cells >= 1, "layer z_cells (" + layer.name + ")");
    ensure_positive(layer.material.thermal_conductivity_w_per_m_k,
                    "layer conductivity (" + layer.name + ")");
    ensure_positive(layer.material.volumetric_heat_capacity_j_per_m3_k,
                    "layer heat capacity (" + layer.name + ")");
    any_source = any_source || layer.has_heat_source;
  };
  for (const auto& layer : layers_below) {
    check_layer(layer);
  }
  for (const auto& layer : layers_above) {
    check_layer(layer);
  }
  ensure(any_source, "no layer carries the heat sources");
  if (channel_layer) {
    ensure(channel_layer->channel_count > 0, "channel count");
    ensure_positive(channel_layer->channel_width_m, "channel width");
    ensure_positive(channel_layer->interior_wall_width_m, "interior wall width");
    ensure_positive(channel_layer->layer_height_m, "channel layer height");
    ensure(channel_layer->z_cells >= 1, "channel layer z_cells");
  }
  ensure_non_negative(top_heat_transfer_w_per_m2_k, "top heat transfer coefficient");
  ensure_positive(ambient_temperature_k, "ambient temperature");
}

StackSpec power7_microchannel_stack() {
  StackSpec stack;
  stack.layers_below = {
      {"active", 10e-6, 1, silicon(), /*has_heat_source=*/true},
      {"bulk_si", 650e-6, 3, silicon(), false},
  };
  stack.channel_layer = MicrochannelLayerSpec{};
  stack.channel_layer->nusselt_override = 3.54;  // three heated walls, H1
  stack.layers_above = {
      {"cap_si", 100e-6, 1, silicon(), false},
  };
  stack.validate();
  return stack;
}

StackSpec power7_conventional_stack(double effective_sink_h_w_per_m2_k, double ambient_k) {
  StackSpec stack;
  stack.layers_below = {
      {"active", 10e-6, 1, silicon(), /*has_heat_source=*/true},
      {"bulk_si", 750e-6, 3, silicon(), false},
      {"tim", 50e-6, 1, thermal_interface(), false},
      {"spreader", 2e-3, 2, copper(), false},
  };
  stack.channel_layer.reset();
  stack.top_heat_transfer_w_per_m2_k = effective_sink_h_w_per_m2_k;
  stack.ambient_temperature_k = ambient_k;
  stack.validate();
  return stack;
}

}  // namespace brightsi::thermal
