// Transient trace runner: steps a WorkloadTrace through the thermal model
// and records the thermal time series (peak, per-channel outlet, block
// maxima), for governor studies and the transient example. A thin wrapper
// over the shared TransientEngine (thermal/transient.h): steps are
// phase-boundary aligned and always cover the full trace duration — the
// final sample's time_s equals trace.total_duration_s() exactly.
#ifndef BRIGHTSI_THERMAL_TRACE_RUNNER_H
#define BRIGHTSI_THERMAL_TRACE_RUNNER_H

#include <vector>

#include "chip/workload.h"
#include "thermal/model.h"

namespace brightsi::thermal {

/// One recorded sample of a transient run.
struct TraceSample {
  double time_s = 0.0;
  double dt_s = 0.0;  ///< this step's actual length (residual steps are shorter)
  std::string phase;
  double peak_temperature_k = 0.0;
  double mean_outlet_k = 0.0;  ///< inlet temperature when the stack has no channels
  double total_power_w = 0.0;
};

/// Result of a transient run: sampled series plus the final state (which
/// can seed a follow-up run).
struct TraceResult {
  std::vector<TraceSample> samples;
  numerics::Grid3<double> final_state;
  double max_peak_temperature_k = 0.0;  ///< over every step, sampled or not
};

/// Steps `trace` through `model` with backward-Euler steps of nominal
/// `dt_s`, starting from a uniform field at the coolant inlet temperature
/// (or from `initial_state` when provided). Records every
/// `sample_stride`th step (the final step is always recorded).
[[nodiscard]] TraceResult run_thermal_trace(const ThermalModel& model,
                                            const chip::Power7PowerSpec& power_spec,
                                            const chip::WorkloadTrace& trace,
                                            const OperatingPoint& operating_point, double dt_s,
                                            const numerics::Grid3<double>* initial_state = nullptr,
                                            int sample_stride = 1);

}  // namespace brightsi::thermal

#endif  // BRIGHTSI_THERMAL_TRACE_RUNNER_H
