#include "thermal/materials.h"

#include <cmath>

#include "numerics/contracts.h"

namespace brightsi::thermal {

namespace {

constexpr double kGasConstantJPerMolK = 8.314462618;

}  // namespace

CoolantProperties CoolantPropertyLaws::at(const CoolantProperties& reference,
                                          double temperature_k) const {
  if (!temperature_dependent) {
    return reference;
  }
  ensure_positive(temperature_k, "coolant temperature");
  ensure_positive(reference_temperature_k, "coolant reference temperature");
  CoolantProperties coolant = reference;
  // mu(T) = mu_ref * exp(+(Ea/R) (1/T - 1/T_ref)): decreases with T for
  // positive Ea (same convention as electrochem::ViscosityLaw).
  coolant.dynamic_viscosity_pa_s =
      reference.dynamic_viscosity_pa_s *
      std::exp(viscosity_activation_j_per_mol / kGasConstantJPerMolK *
               (1.0 / temperature_k - 1.0 / reference_temperature_k));
  coolant.thermal_conductivity_w_per_m_k =
      reference.thermal_conductivity_w_per_m_k *
      (1.0 + conductivity_coeff_per_k * (temperature_k - reference_temperature_k));
  ensure_positive(coolant.thermal_conductivity_w_per_m_k, "coolant thermal conductivity");
  return coolant;
}

}  // namespace brightsi::thermal
