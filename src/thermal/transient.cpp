#include "thermal/transient.h"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "numerics/contracts.h"

namespace brightsi::thermal {

const char* transient_backend_name(TransientBackend backend) {
  return backend == TransientBackend::kRom ? "rom" : "full";
}

TransientBackend parse_transient_backend(const std::string& name) {
  if (name == "full") {
    return TransientBackend::kFull;
  }
  if (name == "rom") {
    return TransientBackend::kRom;
  }
  throw std::invalid_argument("unknown transient backend '" + name +
                              "' (expected full or rom)");
}

namespace {

/// Steps covering one segment [a, b] of a single phase. When dt divides
/// the segment length (to within rounding), the segment gets round(L/dt)
/// equal steps; otherwise floor(L/dt) full steps plus one residual short
/// step. The last step always ends at exactly `b`.
void schedule_segment(double a, double b, double dt_s, const chip::WorkloadPhase* phase,
                      std::vector<TransientStep>* schedule) {
  const double length = b - a;
  if (length <= 0.0) {
    return;
  }
  const double exact = length / dt_s;
  const double rounded = std::round(exact);
  int count = 0;
  bool equal_steps = false;
  if (rounded >= 1.0 && std::abs(exact - rounded) <= 1e-9 * std::max(1.0, exact)) {
    count = static_cast<int>(rounded);
    equal_steps = true;  // dt divides the segment: count equal steps
  } else {
    const int full = static_cast<int>(exact);  // floor for positive values
    count = full + 1;                          // full steps + residual closer
  }
  double t_begin = a;
  for (int k = 1; k <= count; ++k) {
    TransientStep step;
    step.t_begin_s = t_begin;
    step.t_end_s = (k == count) ? b
                   : equal_steps ? a + length * (static_cast<double>(k) / count)
                                 : a + k * dt_s;
    step.phase = phase;
    t_begin = step.t_end_s;
    schedule->push_back(step);
  }
}

}  // namespace

std::vector<TransientStep> make_transient_schedule(const chip::WorkloadTrace& trace,
                                                   const TransientScheduleOptions& options) {
  ensure_positive(options.dt_s, "transient step");
  const double total = trace.total_duration_s();
  ensure_positive(total, "trace duration");

  std::vector<TransientStep> schedule;
  schedule.reserve(static_cast<std::size_t>(total / options.dt_s) + trace.phases().size() *
                                                                        trace.repeats() +
                   1);
  if (options.align_phase_boundaries) {
    double t = 0.0;
    const int segments = trace.repeats() * static_cast<int>(trace.phases().size());
    int segment = 0;
    for (int repeat = 0; repeat < trace.repeats(); ++repeat) {
      for (const chip::WorkloadPhase& phase : trace.phases()) {
        ++segment;
        // Close the final segment on the exact total so the schedule end
        // never drifts from total_duration_s() by accumulated rounding.
        const double end = (segment == segments) ? total : t + phase.duration_s;
        schedule_segment(t, end, options.dt_s, &phase, &schedule);
        t = end;
      }
    }
  } else {
    schedule_segment(0.0, total, options.dt_s, nullptr, &schedule);
    for (TransientStep& step : schedule) {
      step.phase = &trace.phase_at(0.5 * (step.t_begin_s + step.t_end_s));
    }
  }
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    schedule[i].index = static_cast<int>(i);
  }
  ensure(!schedule.empty() && schedule.back().t_end_s == total,
         "transient schedule must cover the trace exactly");
  return schedule;
}

TransientEngine::TransientEngine(const ThermalModel& model,
                                 const OperatingPoint& operating_point,
                                 const TransientEngineOptions& options)
    : model_(&model), operating_point_(operating_point), options_(options), context_(model) {
  ensure(options_.sample_stride >= 1, "sample stride must be >= 1");
  ensure(static_cast<int>(options_.upper_die_floorplans.size()) == model.die_count() - 1,
         "transient engine needs one upper-die floorplan per heat-source layer above "
         "the primary die");
  state_ = options_.initial_state != nullptr
               ? *options_.initial_state
               : model.uniform_state(operating_point.inlet_temperature_k);
  options_.initial_state = nullptr;  // consumed; the engine owns state_ now
  if (options_.backend == TransientBackend::kRom) {
    rom_ = std::make_unique<ReducedThermalModel>(model, operating_point_, options_.rom);
  }
}

void TransientEngine::run(const chip::WorkloadTrace& trace,
                          const chip::Power7PowerSpec& power_spec, const StepFn& on_step) {
  run(trace,
      [&power_spec](const chip::WorkloadPhase& phase, const TransientStep&) {
        return chip::apply_phase(power_spec, phase);
      },
      on_step);
}

void TransientEngine::run(const chip::WorkloadTrace& trace, const FloorplanFn& floorplan_for,
                          const StepFn& on_step) {
  ensure(static_cast<bool>(floorplan_for), "transient engine needs a floorplan function");
  const std::vector<TransientStep> schedule =
      make_transient_schedule(trace, options_.schedule);
  const int last = schedule.back().index;
  // The workload drives the bottom die; upper dies keep their static maps.
  std::vector<const chip::Floorplan*> floorplans(options_.upper_die_floorplans.size() + 1,
                                                 nullptr);
  for (std::size_t die = 0; die < options_.upper_die_floorplans.size(); ++die) {
    floorplans[die + 1] = &options_.upper_die_floorplans[die];
  }
  for (const TransientStep& step : schedule) {
    const chip::WorkloadPhase& phase = *step.phase;
    const chip::Floorplan floorplan = floorplan_for(phase, step);
    floorplans.front() = &floorplan;
    ThermalSolution solution;
    bool reduced = false;
    if (rom_ != nullptr) {
      if (std::optional<ThermalSolution> attempt =
              rom_->try_step(state_, floorplans, step.dt_s())) {
        solution = std::move(*attempt);
        reduced = true;
      }
    }
    if (!reduced) {
      solution = context_.step_transient(state_, floorplans, operating_point_, step.dt_s());
      if (rom_ != nullptr) {
        // Certified fallback: the full snapshot (taken from the state the
        // engine still holds) enriches the basis for this step length.
        rom_->enrich(step.dt_s(), floorplans, solution, state_);
      }
    }
    ++steps_taken_;

    const double mean_outlet_k =
        solution.mean_outlet_k(operating_point_.inlet_temperature_k);

    if (on_step) {
      StepView view{step, phase, solution, mean_outlet_k,
                    ((step.index + 1) % options_.sample_stride == 0) || step.index == last};
      on_step(view);
    }
    // In-place hand-off: the solution is about to die, so its field becomes
    // the next step's state without a full-grid copy.
    state_ = std::move(solution.temperature_k);
  }
}

}  // namespace brightsi::thermal
