#include "thermal/rom.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "chip/power_map.h"
#include "numerics/contracts.h"
#include "numerics/dense_matrix.h"
#include "numerics/linear_solvers.h"
#include "numerics/model_reduction.h"
#include "numerics/sparse_matrix.h"

namespace brightsi::thermal {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

}  // namespace

void RomOptions::validate() const {
  ensure_positive(tolerance_k, "rom tolerance");
  ensure(max_basis >= 4, "rom basis cap must be >= 4");
  ensure(enrichment_moments >= 0, "rom enrichment moments must be >= 0");
  ensure(drop_tolerance > 0.0, "rom drop tolerance must be positive");
  ensure(dt_match_rel > 0.0, "rom dt match tolerance must be positive");
  ensure(roundoff_floor_k >= 0.0, "rom roundoff floor must be >= 0");
}

/// Everything specific to one step length: the assembled operator, its
/// dominance margin, the shift-invert machinery, the basis and the dense
/// reduced system (all of which are invalid for any other dt).
struct ReducedThermalModel::DtModel {
  double dt_s = 0.0;
  numerics::CsrMatrix a;             // C/dt + K, coefficients fixed per mission
  std::vector<double> c_over_dt;     // diag(C)/dt = diag(a) - diag(K)
  double margin = 0.0;               // Varah: min_i (a_ii - sum_{j!=i} |a_ij|)
  std::unique_ptr<numerics::Ilu0Preconditioner> ilu;
  numerics::KrylovWorkspace krylov;

  numerics::OrthonormalBasis basis;
  std::vector<std::vector<double>> a_columns;  // A * V_j, cached per column
  numerics::DenseMatrix a_reduced;             // V' A V, LU-factored below
  numerics::DenseMatrix c_reduced;             // V' (C/dt) V (symmetric)
  std::vector<double> b_zero_reduced;          // V' b_zero
  std::unique_ptr<numerics::LuFactorization> lu;
  bool seeded_inputs = false;  // steady input response already appended

  // The last state this model produced (or was enriched with): when the
  // engine hands the same field back, the previous state's reduced
  // coordinates are exact and the O(nk) projection is skipped.
  std::vector<double> last_lift;
  std::vector<double> last_coefficients;
  bool have_last = false;
};

ReducedThermalModel::ReducedThermalModel(const ThermalModel& model,
                                         const OperatingPoint& operating_point,
                                         RomOptions options)
    : model_(&model), operating_point_(operating_point), options_(options) {
  options_.validate();
  operating_point_.validate(model.stack().has_channels());
  layer_flows_ = model.layer_flow_split(operating_point_);

  y_edges_.resize(static_cast<std::size_t>(model.ny()) + 1);
  for (int i = 0; i <= model.ny(); ++i) {
    y_edges_[static_cast<std::size_t>(i)] = model.die_height_m() * i / model.ny();
  }
  die_source_iz_.assign(static_cast<std::size_t>(model.die_count()), 0);
  for (int iz = 0; iz < model.nz(); ++iz) {
    const int die = model.z_slices_[static_cast<std::size_t>(iz)].die;
    if (die >= 0) {
      die_source_iz_[static_cast<std::size_t>(die)] = iz;
    }
  }

  // One zero-power steady assembly isolates (a) the state- and
  // power-independent RHS b_zero (inlet advection + ambient film) and (b)
  // the steady diagonal, which each DtModel subtracts from its own
  // diagonal to recover C/dt exactly.
  const chip::Floorplan empty(model.die_width_m(), model.die_height_m());
  std::vector<const chip::Floorplan*> zero_power(
      static_cast<std::size_t>(model.die_count()), &empty);
  model.fill_operator(zero_power, operating_point_, layer_flows_,
                      /*capacity_over_dt=*/0.0, nullptr, &triplets_, &assembly_rhs_);
  numerics::CsrMatrix steady = model.operator_pattern();
  steady.refill_from_triplets(triplets_);
  steady_diagonal_ = steady.diagonal();
  b_zero_ = assembly_rhs_;
}

ReducedThermalModel::~ReducedThermalModel() = default;

ReducedThermalModel::DtModel* ReducedThermalModel::find_dt_model(double dt_s) {
  for (const std::unique_ptr<DtModel>& candidate : dt_models_) {
    if (std::abs(candidate->dt_s - dt_s) <=
        options_.dt_match_rel * std::max(candidate->dt_s, dt_s)) {
      return candidate.get();
    }
  }
  return nullptr;
}

ReducedThermalModel::DtModel& ReducedThermalModel::dt_model_for(double dt_s) {
  ensure_positive(dt_s, "rom step");
  if (DtModel* existing = find_dt_model(dt_s)) {
    return *existing;
  }
  auto dt_model = std::make_unique<DtModel>();
  dt_model->dt_s = dt_s;
  dt_model->a = model_->operator_pattern();
  const chip::Floorplan empty(model_->die_width_m(), model_->die_height_m());
  std::vector<const chip::Floorplan*> zero_power(
      static_cast<std::size_t>(model_->die_count()), &empty);
  const numerics::Grid3<double> zero_state(model_->nx(), model_->ny(), model_->nz(), 0.0);
  model_->fill_operator(zero_power, operating_point_, layer_flows_, 1.0 / dt_s,
                        &zero_state, &triplets_, &assembly_rhs_);
  dt_model->a.refill_from_triplets(triplets_);

  dt_model->c_over_dt = dt_model->a.diagonal();
  for (std::size_t i = 0; i < dt_model->c_over_dt.size(); ++i) {
    dt_model->c_over_dt[i] -= steady_diagonal_[i];
  }

  // Varah margin: for strictly row-diagonally dominant A (which the
  // backward-Euler operator is, by at least c_i/dt), ||A^{-1}||_inf <=
  // 1 / margin — the certificate's only model-dependent constant.
  const std::vector<int>& offsets = dt_model->a.row_offsets();
  const std::vector<int>& columns = dt_model->a.column_indices();
  const std::vector<double>& values = dt_model->a.values();
  double margin = 0.0;
  for (int row = 0; row < dt_model->a.rows(); ++row) {
    double excess = 0.0;
    for (int slot = offsets[static_cast<std::size_t>(row)];
         slot < offsets[static_cast<std::size_t>(row) + 1]; ++slot) {
      excess += columns[static_cast<std::size_t>(slot)] == row
                    ? values[static_cast<std::size_t>(slot)]
                    : -std::abs(values[static_cast<std::size_t>(slot)]);
    }
    margin = (row == 0) ? excess : std::min(margin, excess);
  }
  ensure(margin > 0.0,
         "reduced thermal backend needs a strictly diagonally dominant operator");
  dt_model->margin = margin;

  dt_model->ilu = std::make_unique<numerics::Ilu0Preconditioner>(dt_model->a);
  dt_model->basis =
      numerics::OrthonormalBasis(static_cast<std::size_t>(dt_model->a.rows()));
  dt_model->a_reduced = numerics::DenseMatrix();
  dt_models_.push_back(std::move(dt_model));
  stats_.dt_models = static_cast<int>(dt_models_.size());
  return *dt_models_.back();
}

void ReducedThermalModel::apply_shift_invert(DtModel& dt_model,
                                             std::span<const double> rhs,
                                             std::vector<double>& out) {
  out.assign(rhs.size(), 0.0);
  // Basis directions only need to roughly span the operator's response —
  // the per-step certificate guards solution accuracy — so the shift-invert
  // applies run at a much looser tolerance than production solves, which
  // roughly halves the basis build cost.
  numerics::SolverOptions options = model_->settings().solver;
  options.relative_tolerance = std::max(options.relative_tolerance, 1e-6);
  const numerics::SolverReport report = numerics::solve_bicgstab(
      dt_model.a, rhs, out, dt_model.ilu.get(), options, &dt_model.krylov);
  ensure(report.converged, "rom shift-invert solve did not converge");
}

void ReducedThermalModel::extend_reduced_system(DtModel& dt_model, int previous_size) {
  const int k = dt_model.basis.size();
  if (k == previous_size) {
    return;
  }
  const std::size_t n = dt_model.basis.dimension();
  for (int j = previous_size; j < k; ++j) {
    std::vector<double> image(n, 0.0);
    dt_model.a.multiply(dt_model.basis.column(j), image);
    dt_model.a_columns.push_back(std::move(image));
    dt_model.b_zero_reduced.push_back(dot(dt_model.basis.column(j), b_zero_));
  }
  numerics::DenseMatrix a_reduced(k, k);
  numerics::DenseMatrix c_reduced(k, k);
  for (int r = 0; r < previous_size; ++r) {
    for (int c = 0; c < previous_size; ++c) {
      a_reduced.at(r, c) = dt_model.a_reduced.at(r, c);
      c_reduced.at(r, c) = dt_model.c_reduced.at(r, c);
    }
  }
  scratch_.resize(n);
  for (int j = previous_size; j < k; ++j) {
    const std::vector<double>& column = dt_model.basis.column(j);
    // New column of V'AV and (via A-column caching) its new row; V'CV is
    // symmetric because C is diagonal, so one weighted column fills both.
    for (std::size_t i = 0; i < n; ++i) {
      scratch_[i] = dt_model.c_over_dt[i] * column[i];
    }
    for (int r = 0; r < k; ++r) {
      a_reduced.at(r, j) = dot(dt_model.basis.column(r), dt_model.a_columns[static_cast<std::size_t>(j)]);
      const double weighted = dot(dt_model.basis.column(r), scratch_);
      c_reduced.at(r, j) = weighted;
      c_reduced.at(j, r) = weighted;
      if (r < previous_size) {
        a_reduced.at(j, r) =
            dot(column, dt_model.a_columns[static_cast<std::size_t>(r)]);
      }
    }
  }
  dt_model.a_reduced = std::move(a_reduced);
  dt_model.c_reduced = std::move(c_reduced);
  dt_model.lu = std::make_unique<numerics::LuFactorization>(dt_model.a_reduced);
}

void ReducedThermalModel::rasterize_power(
    std::span<const chip::Floorplan* const> floorplans) {
  ensure(static_cast<int>(floorplans.size()) == model_->die_count(),
         "rom step needs one floorplan per heat-source layer");
  const bool cache_primed = power_.size() == floorplans.size() &&
                            cached_power_keys_.size() == floorplans.size();
  if (!cache_primed) {
    power_.clear();
    power_.resize(floorplans.size());
    cached_power_keys_.assign(floorplans.size(), PowerKey{});
  }
  for (std::size_t die = 0; die < floorplans.size(); ++die) {
    const chip::Floorplan* floorplan = floorplans[die];
    ensure(floorplan != nullptr, "rom step: null floorplan");
    const std::vector<chip::Block>& blocks = floorplan->blocks();
    PowerKey& key = cached_power_keys_[die];
    bool same = cache_primed && key.footprints.size() == blocks.size() &&
                key.background == floorplan->background_power_density();
    for (std::size_t b = 0; same && b < blocks.size(); ++b) {
      const chip::Rect& cached = key.footprints[b];
      const chip::Rect& footprint = blocks[b].footprint;
      same = cached.x == footprint.x && cached.y == footprint.y &&
             cached.width == footprint.width && cached.height == footprint.height &&
             key.densities[b] == blocks[b].power_density_w_per_m2;
    }
    if (same) {
      continue;
    }
    power_[die] =
        chip::rasterize_power_w_on_edges(*floorplan, model_->x_edges(), y_edges_);
    key.footprints.resize(blocks.size());
    key.densities.resize(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      key.footprints[b] = blocks[b].footprint;
      key.densities[b] = blocks[b].power_density_w_per_m2;
    }
    key.background = floorplan->background_power_density();
  }
}

void ReducedThermalModel::assemble_rhs(const DtModel& dt_model,
                                       std::span<const double> previous,
                                       std::vector<double>& rhs) const {
  rhs = b_zero_;
  const std::size_t plane = static_cast<std::size_t>(model_->nx()) * model_->ny();
  for (std::size_t die = 0; die < power_.size(); ++die) {
    const std::size_t base = static_cast<std::size_t>(die_source_iz_[die]) * plane;
    const std::vector<double>& p = power_[die].data();
    for (std::size_t cell = 0; cell < plane; ++cell) {
      rhs[base + cell] += p[cell];
    }
  }
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    rhs[i] += dt_model.c_over_dt[i] * previous[i];
  }
}

double ReducedThermalModel::certified_bound_k(const DtModel& dt_model,
                                              std::span<const double> rhs,
                                              std::span<const double> solution) {
  residual_.resize(rhs.size());
  (void)dt_model.a.residual(rhs, solution, residual_);
  double linf = 0.0;
  for (const double r : residual_) {
    linf = std::max(linf, std::abs(r));
  }
  return linf / dt_model.margin + options_.roundoff_floor_k;
}

std::optional<ThermalSolution> ReducedThermalModel::try_step(
    const numerics::Grid3<double>& state,
    std::span<const chip::Floorplan* const> floorplans, double dt_s) {
  DtModel* dt_model = find_dt_model(dt_s);
  if (dt_model == nullptr || dt_model->basis.size() == 0) {
    return std::nullopt;  // nothing learned for this step length yet
  }
  const auto start = std::chrono::steady_clock::now();
  const int k = dt_model->basis.size();
  rasterize_power(floorplans);
  const std::vector<double>& previous = state.data();

  const bool matched = dt_model->have_last && previous == dt_model->last_lift;
  reduced_rhs_.assign(static_cast<std::size_t>(k), 0.0);
  assemble_rhs(*dt_model, previous, rhs_full_);
  if (matched) {
    // The previous state is exactly V * last_coefficients, so the reduced
    // RHS assembles from cached projections in O(k^2 + k * die cells)
    // instead of a full O(nk) projection.
    const std::size_t plane = static_cast<std::size_t>(model_->nx()) * model_->ny();
    for (int j = 0; j < k; ++j) {
      reduced_rhs_[static_cast<std::size_t>(j)] =
          dt_model->b_zero_reduced[static_cast<std::size_t>(j)];
    }
    for (std::size_t die = 0; die < power_.size(); ++die) {
      const std::size_t base = static_cast<std::size_t>(die_source_iz_[die]) * plane;
      const std::vector<double>& p = power_[die].data();
      for (std::size_t cell = 0; cell < plane; ++cell) {
        const double power = p[cell];
        if (power == 0.0) {
          continue;
        }
        const std::span<const double> row = dt_model->basis.packed_row(base + cell);
        for (int j = 0; j < k; ++j) {
          reduced_rhs_[static_cast<std::size_t>(j)] +=
              power * row[static_cast<std::size_t>(j)];
        }
      }
    }
    scratch_.assign(static_cast<std::size_t>(k), 0.0);
    dt_model->c_reduced.multiply(dt_model->last_coefficients, scratch_);
    for (int j = 0; j < k; ++j) {
      reduced_rhs_[static_cast<std::size_t>(j)] += scratch_[static_cast<std::size_t>(j)];
    }
  } else {
    dt_model->basis.project(rhs_full_, reduced_rhs_);
  }

  coefficients_.resize(static_cast<std::size_t>(k));
  dt_model->lu->solve(reduced_rhs_, coefficients_);
  lifted_.resize(previous.size());
  dt_model->basis.lift(coefficients_, lifted_);

  const double bound_k = certified_bound_k(*dt_model, rhs_full_, lifted_);
  if (bound_k > options_.tolerance_k) {
    stats_.max_rejected_bound_k = std::max(stats_.max_rejected_bound_k, bound_k);
    stats_.step_time_s += seconds_since(start);
    return std::nullopt;  // the engine falls back to the full solve
  }

  ++stats_.rom_steps;
  stats_.last_bound_k = bound_k;
  stats_.max_accepted_bound_k = std::max(stats_.max_accepted_bound_k, bound_k);
  stats_.cumulative_bound_k += bound_k;
  dt_model->last_lift = lifted_;
  dt_model->last_coefficients = coefficients_;
  dt_model->have_last = true;

  double residual_linf = 0.0;
  for (const double r : residual_) {
    residual_linf = std::max(residual_linf, std::abs(r));
  }
  std::vector<double> temperatures = lifted_;
  ThermalSolution solution = package(std::move(temperatures), floorplans, residual_linf);
  stats_.step_time_s += seconds_since(start);
  return solution;
}

void ReducedThermalModel::enrich(double dt_s,
                                 std::span<const chip::Floorplan* const> floorplans,
                                 const ThermalSolution& full_solution,
                                 const numerics::Grid3<double>& previous_state) {
  const auto start = std::chrono::steady_clock::now();
  DtModel& dt_model = dt_model_for(dt_s);
  ++stats_.full_steps;

  // The full step still contributes its (Krylov-converged, tiny) residual
  // bound to the trajectory certificate.
  rasterize_power(floorplans);
  assemble_rhs(dt_model, previous_state.data(), rhs_full_);
  stats_.cumulative_bound_k +=
      certified_bound_k(dt_model, rhs_full_, full_solution.temperature_k.data());

  std::vector<std::vector<double>> seeds;
  seeds.push_back(full_solution.temperature_k.data());
  if (!dt_model.seeded_inputs && dt_model.basis.size() < options_.max_basis) {
    std::vector<double> response;
    apply_shift_invert(dt_model, b_zero_, response);
    seeds.push_back(std::move(response));
    dt_model.seeded_inputs = true;
  }
  std::vector<double> injection(rhs_full_.size(), 0.0);
  const std::size_t plane = static_cast<std::size_t>(model_->nx()) * model_->ny();
  bool any_power = false;
  for (std::size_t die = 0; die < power_.size(); ++die) {
    const std::size_t base = static_cast<std::size_t>(die_source_iz_[die]) * plane;
    const std::vector<double>& p = power_[die].data();
    for (std::size_t cell = 0; cell < plane; ++cell) {
      injection[base + cell] += p[cell];
      any_power = any_power || p[cell] != 0.0;
    }
  }
  if (any_power && dt_model.basis.size() < options_.max_basis) {
    std::vector<double> response;
    apply_shift_invert(dt_model, injection, response);
    seeds.push_back(std::move(response));
  }

  // Block-Arnoldi growth: the snapshot plus shift-invert moments of the
  // one-step propagator u -> A^{-1} (C/dt) u, which is what maps a state
  // into the next step's RHS contribution.
  const int previous_size = dt_model.basis.size();
  std::vector<double> weighted(rhs_full_.size(), 0.0);
  numerics::block_arnoldi_expand(
      dt_model.basis, seeds, options_.enrichment_moments, options_.max_basis,
      options_.drop_tolerance,
      [&](std::span<const double> in, std::span<double> out) {
        for (std::size_t i = 0; i < weighted.size(); ++i) {
          weighted[i] = dt_model.c_over_dt[i] * in[i];
        }
        std::vector<double> solved;
        apply_shift_invert(dt_model, weighted, solved);
        for (std::size_t i = 0; i < solved.size(); ++i) {
          out[i] = solved[i];
        }
      });
  extend_reduced_system(dt_model, previous_size);

  if (dt_model.basis.size() > 0) {
    dt_model.last_lift = full_solution.temperature_k.data();
    dt_model.last_coefficients.resize(static_cast<std::size_t>(dt_model.basis.size()));
    dt_model.basis.project(dt_model.last_lift, dt_model.last_coefficients);
    dt_model.have_last = true;
  }
  stats_.basis_size = std::max(stats_.basis_size, dt_model.basis.size());
  stats_.build_time_s += seconds_since(start);
}

void ReducedThermalModel::refresh_block_weights(
    std::span<const chip::Floorplan* const> floorplans) {
  const ThermalModel& m = *model_;
  bool fresh = cached_footprints_.size() == floorplans.size();
  for (std::size_t die = 0; fresh && die < floorplans.size(); ++die) {
    const std::vector<chip::Block>& blocks = floorplans[die]->blocks();
    const std::vector<chip::Rect>& cached = cached_footprints_[die];
    fresh = cached.size() == blocks.size();
    for (std::size_t b = 0; fresh && b < blocks.size(); ++b) {
      const chip::Rect& f = blocks[b].footprint;
      fresh = cached[b].x == f.x && cached[b].y == f.y && cached[b].width == f.width &&
              cached[b].height == f.height;
    }
  }
  if (fresh) {
    return;
  }
  block_weights_.assign(floorplans.size(), {});
  cached_footprints_.assign(floorplans.size(), {});
  for (std::size_t die = 0; die < floorplans.size(); ++die) {
    const std::vector<chip::Block>& blocks = floorplans[die]->blocks();
    block_weights_[die].resize(blocks.size());
    cached_footprints_[die].reserve(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      cached_footprints_[die].push_back(blocks[b].footprint);
      BlockWeights& weights = block_weights_[die][b];
      // Same traversal order as ThermalModel::package_solution, so the
      // weighted mean accumulates in the identical sequence.
      for (int iy = 0; iy < m.ny(); ++iy) {
        for (int ix = 0; ix < m.nx(); ++ix) {
          const chip::Rect cell{m.x_edges_[static_cast<std::size_t>(ix)], m.dy_ * iy,
                                m.dx_[static_cast<std::size_t>(ix)], m.dy_};
          const double overlap = cell.intersection_area(blocks[b].footprint);
          if (overlap > 0.0) {
            weights.cells.push_back(
                {static_cast<std::size_t>(iy) * static_cast<std::size_t>(m.nx()) +
                     static_cast<std::size_t>(ix),
                 overlap});
            weights.area += overlap;
          }
        }
      }
    }
  }
}

ThermalSolution ReducedThermalModel::package(
    std::vector<double> temperatures, std::span<const chip::Floorplan* const> floorplans,
    double residual_linf_k) {
  const ThermalModel& m = *model_;
  const int nx = m.nx();
  const int ny = m.ny();
  const int nz = m.nz();
  refresh_block_weights(floorplans);

  ThermalSolution out;
  out.solver_report.converged = true;
  out.solver_report.iterations = 0;
  out.solver_report.residual_norm = residual_linf_k;
  out.temperature_k = numerics::Grid3<double>(nx, ny, nz, 0.0);
  out.temperature_k.data() = std::move(temperatures);

  out.peak_temperature_k = -1.0;
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const double t = out.temperature_k(ix, iy, iz);
        if (t > out.peak_temperature_k) {
          out.peak_temperature_k = t;
          out.peak_ix = ix;
          out.peak_iy = iy;
          out.peak_iz = iz;
        }
      }
    }
  }

  out.die_maps_k.reserve(floorplans.size());
  out.total_power_w = 0.0;
  for (std::size_t die = 0; die < floorplans.size(); ++die) {
    const int iz = die_source_iz_[die];
    numerics::Grid2<double> map(nx, ny, 0.0);
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        map(ix, iy) = out.temperature_k(ix, iy, iz);
      }
    }
    const chip::Floorplan& floorplan = *floorplans[die];
    out.total_power_w += floorplan.total_power();
    const std::string prefix = die == 0 ? "" : "die" + std::to_string(die) + ":";
    const std::vector<double>& flat = map.data();
    for (std::size_t b = 0; b < floorplan.blocks().size(); ++b) {
      const BlockWeights& weights = block_weights_[die][b];
      BlockTemperature bt;
      bt.name = prefix + floorplan.blocks()[b].name;
      double weighted = 0.0;
      bt.max_k = 0.0;
      for (const BlockWeight& w : weights.cells) {
        weighted += flat[w.cell] * w.overlap;
        bt.max_k = std::max(bt.max_k, flat[w.cell]);
      }
      bt.mean_k = weights.area > 0.0 ? weighted / weights.area : 0.0;
      out.block_temperatures.push_back(std::move(bt));
    }
    out.die_maps_k.push_back(std::move(map));
  }

  if (m.stack().has_channels()) {
    const int n_channels = m.channel_count();
    out.channel_layers.resize(m.channel_specs_.size());
    for (std::size_t layer = 0; layer < m.channel_specs_.size(); ++layer) {
      ChannelLayerSolution& layer_out = out.channel_layers[layer];
      layer_out.flow_m3_per_s = layer_flows_[layer];
      layer_out.flow_fraction = operating_point_.total_flow_m3_per_s > 0.0
                                    ? layer_flows_[layer] / operating_point_.total_flow_m3_per_s
                                    : 0.0;
      layer_out.fluid_axial_k.assign(static_cast<std::size_t>(n_channels),
                                     std::vector<double>(static_cast<std::size_t>(ny), 0.0));
      layer_out.outlet_k.assign(static_cast<std::size_t>(n_channels), 0.0);
      const double per_channel_flow = layer_flows_[layer] / n_channels;

      std::vector<int> fluid_z;
      for (int iz = 0; iz < nz; ++iz) {
        if (m.z_slices_[static_cast<std::size_t>(iz)].channel_layer ==
            static_cast<int>(layer)) {
          fluid_z.push_back(iz);
        }
      }
      for (int ix = 0; ix < nx; ++ix) {
        const int c = m.column_channel_[static_cast<std::size_t>(ix)];
        if (c < 0) {
          continue;
        }
        for (int iy = 0; iy < ny; ++iy) {
          double sum = 0.0;
          for (const int iz : fluid_z) {
            sum += out.temperature_k(ix, iy, iz);
          }
          layer_out.fluid_axial_k[static_cast<std::size_t>(c)][static_cast<std::size_t>(iy)] =
              sum / static_cast<double>(fluid_z.size());
        }
        layer_out.outlet_k[static_cast<std::size_t>(c)] =
            layer_out.fluid_axial_k[static_cast<std::size_t>(c)].back();

        for (const int iz : fluid_z) {
          const double flow_fraction = m.z_slices_[static_cast<std::size_t>(iz)].dz /
                                       m.channel_specs_[layer].layer_height_m;
          const double c_adv = operating_point_.coolant.volumetric_heat_capacity_j_per_m3_k *
                               per_channel_flow * flow_fraction;
          layer_out.heat_absorbed_w +=
              c_adv * (out.temperature_k(ix, ny - 1, iz) -
                       operating_point_.inlet_temperature_k);
        }
      }
      out.fluid_heat_absorbed_w += layer_out.heat_absorbed_w;
    }
  }
  if (m.stack().top_heat_transfer_w_per_m2_k > 0.0) {
    const int iz = nz - 1;
    const auto& slice = m.z_slices_[static_cast<std::size_t>(iz)];
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        if (m.is_fluid(ix, iz)) {
          continue;
        }
        const double area = m.dx_[static_cast<std::size_t>(ix)] * m.dy_;
        const double resistance =
            slice.dz / 2.0 / slice.material.thermal_conductivity_w_per_m_k +
            1.0 / m.stack().top_heat_transfer_w_per_m2_k;
        out.top_heat_rejected_w +=
            area / resistance *
            (out.temperature_k(ix, iy, iz) - m.stack().ambient_temperature_k);
      }
    }
  }
  if (out.total_power_w > 0.0) {
    out.energy_balance_error =
        std::abs(out.total_power_w - out.fluid_heat_absorbed_w - out.top_heat_rejected_w) /
        out.total_power_w;
  }
  return out;
}

}  // namespace brightsi::thermal
