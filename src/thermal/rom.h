// Reduced-order transient thermal backend: a Galerkin projection of the
// backward-Euler operator onto a block-Krylov subspace, with a certified
// per-step error bound.
//
// The full transient step solves A x = b with A = C/dt + K (capacity plus
// conduction/advection/film), an M-matrix that is strictly row-diagonally
// dominant by at least the capacity excess c_i/dt. The reduced model keeps
// an orthonormal basis V (numerics/model_reduction.h) per distinct step
// length and steps the k-dimensional system (V'AV) y = V'b instead —
// a dense LU solve of size k (tens) in place of a preconditioned BiCGSTAB
// solve of size n (tens of thousands). The lifted iterate x = V y feeds the
// same solution packaging as the full path (peak, block temperatures,
// outlet temperatures, energy bookkeeping), with the block overlap weights
// precomputed once per floorplan geometry.
//
// The certificate: with r = b - A (V y) the true error satisfies
//   ||x_exact - V y||_inf  <=  ||r||_inf / margin,
// where margin = min_i (a_ii - sum_{j != i} |a_ij|) > 0 is the Varah bound
// on ||A^{-1}||_inf for strictly diagonally dominant A. The residual is
// evaluated against the exactly assembled b, so the bound is rigorous up
// to floating-point roundoff (covered by a configurable floor). When the
// bound exceeds the tolerance, the caller (the transient engine) falls
// back to the full solve and hands the snapshot back via enrich(), which
// grows the basis with the snapshot plus shift-invert moments
// A^{-1} (C/dt ·) of it — the propagator that maps one step's state into
// the next step's right-hand side. Because A^{-1} >= 0 and A·1 >= c/dt
// imply ||A^{-1} C/dt||_inf <= 1, per-step bounds accumulate into a valid
// bound on the whole trajectory (`cumulative_bound_k`).
//
// A ReducedThermalModel is single-threaded state owned by one
// TransientEngine — never shared across engines or sweep scenarios, which
// is what keeps rom sweep rows byte-identical at any thread count.
#ifndef BRIGHTSI_THERMAL_ROM_H
#define BRIGHTSI_THERMAL_ROM_H

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "chip/floorplan.h"
#include "numerics/grid.h"
#include "thermal/model.h"

namespace brightsi::thermal {

/// Tuning knobs of the reduced-order backend. The defaults certify every
/// accepted step to 0.5 K against the full backward-Euler solution.
struct RomOptions {
  /// Reject a reduced step whose certified bound exceeds this (kelvin);
  /// the engine then falls back to the full solve and enriches the basis.
  double tolerance_k = 0.5;
  /// Basis size cap per step length. Past it enrichment stops growing the
  /// basis and persistent fallbacks show up in the stats instead.
  int max_basis = 48;
  /// Shift-invert moments A^{-1}(C/dt ·) appended per enrichment snapshot.
  int enrichment_moments = 1;
  /// Orthogonalization drop tolerance (relative): candidates this close to
  /// the current span are rejected (numerics/model_reduction.h).
  double drop_tolerance = 1e-10;
  /// Relative tolerance for treating two step lengths as the same reduced
  /// operator (the scheduler emits bit-jittered nominal steps plus short
  /// residual closers; each distinct length gets its own basis).
  double dt_match_rel = 1e-9;
  /// Added to every certified bound to absorb the floating-point roundoff
  /// of the residual evaluation itself (kelvin).
  double roundoff_floor_k = 1e-9;

  void validate() const;
};

/// Work counters and certificate trail of one ReducedThermalModel.
struct RomStats {
  long long rom_steps = 0;   ///< steps served by the reduced solve
  long long full_steps = 0;  ///< fallbacks to the full solve (enrichments)
  int basis_size = 0;        ///< largest basis across step lengths
  int dt_models = 0;         ///< distinct step lengths seen
  double build_time_s = 0.0; ///< operator assembly + basis enrichment
  double step_time_s = 0.0;  ///< time inside accepted + rejected try_step
  double last_bound_k = 0.0;          ///< certificate of the latest accepted step
  double max_accepted_bound_k = 0.0;  ///< worst certificate ever accepted
  double max_rejected_bound_k = 0.0;  ///< worst certificate that tripped a fallback
  /// Running sum of per-step bounds (full-solve steps contribute their own
  /// Krylov residual bound): a valid bound on the accumulated trajectory
  /// error versus an exact-arithmetic full run.
  double cumulative_bound_k = 0.0;
};

/// Projection-based reduced model of a ThermalModel at one operating
/// point. Borrows the model (which must outlive it); owns per-step-length
/// operators, bases and dense reduced systems.
class ReducedThermalModel {
 public:
  ReducedThermalModel(const ThermalModel& model, const OperatingPoint& operating_point,
                      RomOptions options = RomOptions());
  ~ReducedThermalModel();

  ReducedThermalModel(const ReducedThermalModel&) = delete;
  ReducedThermalModel& operator=(const ReducedThermalModel&) = delete;

  /// Attempts one backward-Euler step of length `dt_s` from `state` with
  /// the reduced system. Returns the packaged solution when the certified
  /// bound stays within options().tolerance_k; std::nullopt when no basis
  /// exists for this step length yet or the bound trips — the caller then
  /// runs the full solve and feeds it back through enrich().
  [[nodiscard]] std::optional<ThermalSolution> try_step(
      const numerics::Grid3<double>& state,
      std::span<const chip::Floorplan* const> floorplans, double dt_s);

  /// Grows the basis for `dt_s` from a full-solve snapshot: appends the
  /// solution field, the steady input response (once) and the current
  /// power-injection response, plus shift-invert moments of each. Also
  /// accounts the full step's own residual bound into the cumulative
  /// certificate. `previous_state` is the field the full step started from.
  void enrich(double dt_s, std::span<const chip::Floorplan* const> floorplans,
              const ThermalSolution& full_solution,
              const numerics::Grid3<double>& previous_state);

  [[nodiscard]] const RomStats& stats() const { return stats_; }
  [[nodiscard]] const RomOptions& options() const { return options_; }
  [[nodiscard]] const ThermalModel& model() const { return *model_; }

 private:
  struct DtModel;

  [[nodiscard]] DtModel* find_dt_model(double dt_s);
  DtModel& dt_model_for(double dt_s);
  void apply_shift_invert(DtModel& dt_model, std::span<const double> rhs,
                          std::vector<double>& out);
  void extend_reduced_system(DtModel& dt_model, int previous_size);
  void rasterize_power(std::span<const chip::Floorplan* const> floorplans);
  void assemble_rhs(const DtModel& dt_model, std::span<const double> previous,
                    std::vector<double>& rhs) const;
  [[nodiscard]] double certified_bound_k(const DtModel& dt_model,
                                         std::span<const double> rhs,
                                         std::span<const double> solution);
  void refresh_block_weights(std::span<const chip::Floorplan* const> floorplans);
  [[nodiscard]] ThermalSolution package(std::vector<double> temperatures,
                                        std::span<const chip::Floorplan* const> floorplans,
                                        double residual_linf_k);

  const ThermalModel* model_;
  OperatingPoint operating_point_;
  RomOptions options_;
  RomStats stats_;

  std::vector<double> layer_flows_;      // layer_flow_split(op), fixed per mission
  std::vector<double> steady_diagonal_;  // diag(K): isolates C/dt per step length
  std::vector<double> b_zero_;           // state/power-independent RHS (inlet + ambient)
  std::vector<double> y_edges_;          // rasterization grid, shared with the model
  std::vector<int> die_source_iz_;       // z-slice of each die's heat injection

  std::vector<std::unique_ptr<DtModel>> dt_models_;

  // Per-(die, block) solution-packaging weights: the overlap list of every
  // floorplan block, rebuilt only when a die's block footprints change.
  struct BlockWeight {
    std::size_t cell = 0;  // iy * nx + ix into the die map
    double overlap = 0.0;  // m^2
  };
  struct BlockWeights {
    std::vector<BlockWeight> cells;
    double area = 0.0;
  };
  std::vector<std::vector<BlockWeights>> block_weights_;     // [die][block]
  std::vector<std::vector<chip::Rect>> cached_footprints_;   // [die][block]

  // Power-map rasterization cache: within a workload phase the per-step
  // floorplans repeat (apply_phase rebuilds value-identical blocks), so
  // the rasterized maps in power_ are reused until a die's block geometry,
  // a power density, or the background density changes.
  struct PowerKey {
    std::vector<chip::Rect> footprints;
    std::vector<double> densities;
    double background = 0.0;
  };
  std::vector<PowerKey> cached_power_keys_;  // one per die; empty = no cache

  // Reusable scratch (single-threaded by contract).
  numerics::TripletList triplets_;
  std::vector<double> assembly_rhs_;
  std::vector<numerics::Grid2<double>> power_;  // rasterized maps, one per die
  std::vector<double> rhs_full_;
  std::vector<double> residual_;
  std::vector<double> reduced_rhs_;
  std::vector<double> coefficients_;
  std::vector<double> lifted_;
  std::vector<double> scratch_;
};

}  // namespace brightsi::thermal

#endif  // BRIGHTSI_THERMAL_ROM_H
