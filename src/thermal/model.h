// Compact finite-volume thermal model of the die + microchannel package
// (3D-ICE-style; DESIGN.md substitution table), generalized to N-layer 3D
// stacks: any number of heat-source (die) layers, each with its own power
// map, and any number of microchannel layers (interlayer cooling).
//
// The stack is discretized into a 3-D grid: x columns follow the shared
// channel/wall pattern of the microchannel layers exactly (validate()
// guarantees all channel layers align; columns are uniform for solid
// stacks), y runs along the flow direction, z through the layer stack.
// Solid cells exchange heat by conduction (harmonic-mean conductances);
// coolant cells exchange with their four walls through a per-layer
// Nusselt-correlation film coefficient and advect enthalpy downstream with
// first-order upwinding; each channel layer's inlet enters at the common
// inlet temperature and its outlet is free. The pump's total flow splits
// across parallel channel layers at equal pressure drop
// (hydraulics::split_equal_pressure); a single channel layer receives the
// total exactly, so the one-die model reproduces the pre-3D results
// bit-for-bit. Steady solves use ILU(0)-preconditioned BiCGSTAB;
// transients use backward Euler on the same operator.
//
// The sparsity pattern of the assembled operator depends only on the grid,
// never on the operating point, so it is built once at construction
// (`operator_pattern`) and per-solve work reduces to an in-place coefficient
// fill. `solve_steady`/`step_transient` remain the simple one-shot entry
// points; repeated solves should go through a ThermalSolveContext
// (thermal/solve_context.h), which reuses the matrix, the ILU(0)
// factorization, the Krylov workspace and the previous temperature field
// across calls.
#ifndef BRIGHTSI_THERMAL_MODEL_H
#define BRIGHTSI_THERMAL_MODEL_H

#include <span>
#include <string>
#include <vector>

#include "chip/floorplan.h"
#include "numerics/grid.h"
#include "numerics/linear_solvers.h"
#include "numerics/multigrid.h"
#include "thermal/stack.h"

namespace brightsi::thermal {

/// Coolant flow and inlet state for one solve.
struct OperatingPoint {
  double total_flow_m3_per_s = 0.0;   ///< pump total, across all channel layers;
                                      ///< ignored for solid stacks
  double inlet_temperature_k = 300.0; ///< Table II: 300 K (27 C)
  CoolantProperties coolant;

  void validate(bool has_channels) const;
};

/// Per-block temperature summary. Blocks of dies above the bottom one are
/// reported with a "die<k>:" name prefix.
struct BlockTemperature {
  std::string name;
  double mean_k = 0.0;
  double max_k = 0.0;
};

/// Fluid-side outputs of one microchannel layer.
struct ChannelLayerSolution {
  /// Axial coolant temperature per channel (inlet->outlet), averaged over
  /// the channel's z-cells.
  std::vector<std::vector<double>> fluid_axial_k;
  std::vector<double> outlet_k;
  double flow_m3_per_s = 0.0;    ///< this layer's share of the pump total
  double flow_fraction = 1.0;    ///< flow_m3_per_s / pump total
  double heat_absorbed_w = 0.0;  ///< advected out minus advected in

  [[nodiscard]] double mean_outlet_k(double fallback_k) const {
    if (outlet_k.empty()) {
      return fallback_k;
    }
    double sum = 0.0;
    for (const double outlet : outlet_k) {
      sum += outlet;
    }
    return sum / static_cast<double>(outlet_k.size());
  }
};

/// Result of a steady (or one transient step) thermal solve.
struct ThermalSolution {
  numerics::Grid3<double> temperature_k;       ///< full field
  /// Active-layer temperature map of every die, bottom to top.
  std::vector<numerics::Grid2<double>> die_maps_k;
  double peak_temperature_k = 0.0;
  int peak_ix = 0, peak_iy = 0, peak_iz = 0;
  std::vector<BlockTemperature> block_temperatures;

  /// Per-channel-layer fluid outputs, bottom to top (empty for solid stacks).
  std::vector<ChannelLayerSolution> channel_layers;

  /// Bottom die active-layer map — the legacy single-die view of
  /// die_maps_k (a reference, not a copy; solid fallback for a
  /// default-constructed solution).
  [[nodiscard]] const numerics::Grid2<double>& source_layer_map_k() const {
    static const numerics::Grid2<double> empty;
    return die_maps_k.empty() ? empty : die_maps_k.front();
  }

  /// Bottom channel layer's axial coolant profiles (inlet->outlet) — the
  /// layer that feeds the flow-cell electrochemistry; empty for solid
  /// stacks. Layer-resolved profiles live in `channel_layers`.
  [[nodiscard]] const std::vector<std::vector<double>>& channel_fluid_axial_k() const {
    static const std::vector<std::vector<double>> empty;
    return channel_layers.empty() ? empty : channel_layers.front().fluid_axial_k;
  }
  [[nodiscard]] const std::vector<double>& channel_outlet_k() const {
    static const std::vector<double> empty;
    return channel_layers.empty() ? empty : channel_layers.front().outlet_k;
  }

  double total_power_w = 0.0;
  double fluid_heat_absorbed_w = 0.0;  ///< advected out minus in, all layers
  double top_heat_rejected_w = 0.0;    ///< through the optional top film
  /// |power - absorbed - rejected| / power; rounding-level when converged.
  double energy_balance_error = 0.0;

  numerics::SolverReport solver_report;

  /// Mean of channel_outlet_k() (bottom channel layer), or `fallback_k`
  /// (typically the inlet temperature) on a channel-less stack — the
  /// uniform fallback every outlet consumer must apply, so 0 K outlets
  /// cannot reappear.
  [[nodiscard]] double mean_outlet_k(double fallback_k) const {
    return channel_layers.empty() ? fallback_k
                                  : channel_layers.front().mean_outlet_k(fallback_k);
  }
};

/// Which preconditioner backs the BiCGSTAB solve (docs/SOLVERS.md).
enum class SolverKind {
  kIlu0,       ///< ILU(0)-preconditioned BiCGSTAB — the default, bit-stable path
  kMultigrid,  ///< z-semicoarsening geometric multigrid V-cycle preconditioner
};

/// Name of a solver kind ("ilu0" / "mg"), for CLIs and bench JSON.
[[nodiscard]] const char* solver_kind_name(SolverKind kind);

/// Parses "ilu0" / "mg" (the CLI vocabulary). Throws std::invalid_argument
/// on anything else, listing the accepted names.
[[nodiscard]] SolverKind parse_solver_kind(const std::string& name);

/// Preconditioner selection, threaded from SystemConfig.thermal_grid down to
/// every ThermalSolveContext (and hence transient engines, sweeps and CLIs).
/// The default reproduces the seed's ILU(0) path bit-for-bit.
struct SolverConfig {
  SolverKind kind = SolverKind::kIlu0;
  numerics::MultigridOptions multigrid;  ///< used only when kind == kMultigrid

  friend bool operator==(const SolverConfig&, const SolverConfig&) = default;
};

/// Discretization and solver controls of a ThermalModel.
struct ThermalGridSettings {
  int axial_cells = 32;          ///< y-cells along the flow direction
  int solid_stack_x_cells = 64;  ///< x-columns when the stack has no channels
  numerics::SolverOptions solver;
  SolverConfig solver_config;    ///< preconditioner choice (default: ILU(0))

  friend bool operator==(const ThermalGridSettings&, const ThermalGridSettings&) = default;
};

class ThermalSolveContext;

class ThermalModel {
 public:
  using GridSettings = ThermalGridSettings;

  /// Builds the static grid for `stack` over a die of the given outline,
  /// including the operator sparsity pattern (assemble-once).
  ThermalModel(StackSpec stack, double die_width_m, double die_height_m,
               GridSettings settings = GridSettings());

  /// Steady solve under the floorplan's current power densities. One-shot
  /// convenience wrapper over a fresh ThermalSolveContext (cold start).
  /// Requires a single-die stack; multi-die stacks use the span overload.
  [[nodiscard]] ThermalSolution solve_steady(const chip::Floorplan& floorplan,
                                             const OperatingPoint& operating_point) const;

  /// Steady solve of a multi-die stack: one floorplan per heat-source
  /// layer, bottom to top (all sharing the model's die outline).
  [[nodiscard]] ThermalSolution solve_steady(
      std::span<const chip::Floorplan* const> floorplans,
      const OperatingPoint& operating_point) const;

  /// One backward-Euler step of length `dt_s` from `state` (a full
  /// temperature field, e.g. the previous solution). Returns the new state
  /// with the same diagnostics as a steady solve. One-shot wrapper over a
  /// fresh ThermalSolveContext; step loops should hold their own context.
  [[nodiscard]] ThermalSolution step_transient(const numerics::Grid3<double>& state,
                                               const chip::Floorplan& floorplan,
                                               const OperatingPoint& operating_point,
                                               double dt_s) const;

  /// Multi-die transient step: one floorplan per heat-source layer.
  [[nodiscard]] ThermalSolution step_transient(
      const numerics::Grid3<double>& state,
      std::span<const chip::Floorplan* const> floorplans,
      const OperatingPoint& operating_point, double dt_s) const;

  /// Uniform-temperature initial state.
  [[nodiscard]] numerics::Grid3<double> uniform_state(double temperature_k) const;

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  /// Channels per channel layer (all layers share the pattern); 0 for a
  /// solid stack.
  [[nodiscard]] int channel_count() const;
  [[nodiscard]] int channel_layer_count() const {
    return static_cast<int>(channel_specs_.size());
  }
  /// Heat-source layers (dies) in the stack.
  [[nodiscard]] int die_count() const { return source_count_; }
  [[nodiscard]] const StackSpec& stack() const { return stack_; }
  [[nodiscard]] const GridSettings& settings() const { return settings_; }
  [[nodiscard]] double die_width_m() const { return die_width_m_; }
  [[nodiscard]] double die_height_m() const { return die_height_m_; }
  [[nodiscard]] const std::vector<double>& x_edges() const { return x_edges_; }

  /// Physical thickness of each z-cell, bottom to top (nz entries) — the
  /// layer structure the multigrid preconditioner semicoarsens along.
  [[nodiscard]] std::vector<double> z_cell_thicknesses() const;

  /// Per-channel-layer share of the pump's total flow, bottom to top:
  /// equal-pressure-drop split over the layers' laminar conductances. A
  /// single channel layer receives op.total_flow_m3_per_s exactly (no
  /// round trip through the root finder), which keeps single-die solves
  /// bit-identical to the pre-3D model. Empty for solid stacks.
  [[nodiscard]] std::vector<double> layer_flow_split(const OperatingPoint& op) const;

  /// The structural sparsity pattern of the assembled operator (values are
  /// meaningless). Identical for every operating point, steady or
  /// transient; solve contexts copy it once and refill coefficients in
  /// place per solve.
  [[nodiscard]] const numerics::CsrMatrix& operator_pattern() const { return pattern_; }

 private:
  friend class ThermalSolveContext;
  // The reduced-order backend (thermal/rom.h) assembles the same operator
  // through fill_operator and mirrors package_solution with cached block
  // weights, so it shares the private grid internals.
  friend class ReducedThermalModel;

  struct ZSlice {
    double dz = 0.0;
    Material material;        // solid material (walls for channel layers)
    int channel_layer = -1;   // channel-layer index, or -1 for solid slices
    int die = -1;             // heat-source (die) index, or -1
  };

  StackSpec stack_;
  double die_width_m_;
  double die_height_m_;
  GridSettings settings_;

  int nx_ = 0, ny_ = 0, nz_ = 0;
  int source_count_ = 0;
  numerics::CsrMatrix pattern_;        // structural operator pattern
  std::vector<double> x_edges_;        // nx+1
  std::vector<double> dx_;             // per column
  double dy_ = 0.0;
  std::vector<ZSlice> z_slices_;       // nz entries
  std::vector<int> column_channel_;    // per column: channel index or -1 (wall)
  std::vector<MicrochannelLayerSpec> channel_specs_;  // bottom to top

  void build_grid();
  [[nodiscard]] std::size_t index(int ix, int iy, int iz) const {
    return (static_cast<std::size_t>(iz) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(iy)) *
               static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(ix);
  }
  [[nodiscard]] bool is_fluid(int ix, int iz) const {
    return z_slices_[static_cast<std::size_t>(iz)].channel_layer >= 0 &&
           column_channel_[static_cast<std::size_t>(ix)] >= 0;
  }

  /// Stamps the operator coefficients and RHS for one solve into reusable
  /// buffers (`triplets` is cleared first); `capacity_over_dt` adds the
  /// backward-Euler mass term when positive (with `previous` as the old
  /// state). `floorplans` holds one power map per heat-source layer,
  /// bottom to top; `layer_flows` is layer_flow_split(op), computed once
  /// per solve by the caller and shared with package_solution. The
  /// (row, col) stamp sequence is deterministic and identical for every
  /// operating point at a fixed mode (steady vs transient), which is what
  /// makes the solve contexts' scatter-plan caching valid.
  void fill_operator(std::span<const chip::Floorplan* const> floorplans,
                     const OperatingPoint& op, const std::vector<double>& layer_flows,
                     double capacity_over_dt, const numerics::Grid3<double>* previous,
                     numerics::TripletList* triplets, std::vector<double>* rhs) const;

  void build_operator_pattern();

  [[nodiscard]] ThermalSolution package_solution(
      std::vector<double> temperatures, std::span<const chip::Floorplan* const> floorplans,
      const OperatingPoint& op, const std::vector<double>& layer_flows,
      numerics::SolverReport report) const;

  /// Film coefficient of one channel layer at the operating point.
  [[nodiscard]] double film_coefficient(const OperatingPoint& op, int channel_layer) const;
};

}  // namespace brightsi::thermal

#endif  // BRIGHTSI_THERMAL_MODEL_H
