#include "thermal/trace_runner.h"

#include "numerics/contracts.h"
#include "thermal/solve_context.h"

namespace brightsi::thermal {

TraceResult run_thermal_trace(const ThermalModel& model,
                              const chip::Power7PowerSpec& power_spec,
                              const chip::WorkloadTrace& trace,
                              const OperatingPoint& operating_point, double dt_s,
                              const numerics::Grid3<double>* initial_state) {
  ensure_positive(dt_s, "trace step");
  TraceResult result;
  numerics::Grid3<double> state =
      initial_state ? *initial_state : model.uniform_state(operating_point.inlet_temperature_k);

  const double total = trace.total_duration_s();
  const int steps = static_cast<int>(total / dt_s);
  result.samples.reserve(static_cast<std::size_t>(steps));

  // One solve context across all backward-Euler steps: assemble-once,
  // per-step coefficient refill + ILU(0) refactor.
  ThermalSolveContext context(model);
  for (int step = 0; step < steps; ++step) {
    const double t = (step + 0.5) * dt_s;
    const chip::WorkloadPhase& phase = trace.phase_at(t);
    const chip::Floorplan floorplan = chip::apply_phase(power_spec, phase);
    const ThermalSolution sol = context.step_transient(state, floorplan, operating_point, dt_s);
    state = sol.temperature_k;

    TraceSample sample;
    sample.time_s = (step + 1) * dt_s;
    sample.phase = phase.name;
    sample.peak_temperature_k = sol.peak_temperature_k;
    sample.total_power_w = floorplan.total_power();
    if (!sol.channel_outlet_k.empty()) {
      double sum = 0.0;
      for (const double v : sol.channel_outlet_k) {
        sum += v;
      }
      sample.mean_outlet_k = sum / static_cast<double>(sol.channel_outlet_k.size());
    }
    result.max_peak_temperature_k =
        std::max(result.max_peak_temperature_k, sol.peak_temperature_k);
    result.samples.push_back(std::move(sample));
  }
  result.final_state = std::move(state);
  return result;
}

}  // namespace brightsi::thermal
