#include "thermal/trace_runner.h"

#include <algorithm>

#include "numerics/contracts.h"
#include "thermal/transient.h"

namespace brightsi::thermal {

TraceResult run_thermal_trace(const ThermalModel& model,
                              const chip::Power7PowerSpec& power_spec,
                              const chip::WorkloadTrace& trace,
                              const OperatingPoint& operating_point, double dt_s,
                              const numerics::Grid3<double>* initial_state,
                              int sample_stride) {
  ensure_positive(dt_s, "trace step");
  ensure(sample_stride >= 1, "sample stride must be >= 1");
  TransientEngineOptions options;
  options.schedule.dt_s = dt_s;
  options.sample_stride = sample_stride;
  options.initial_state = initial_state;
  TransientEngine engine(model, operating_point, options);

  TraceResult result;
  result.samples.reserve(static_cast<std::size_t>(trace.total_duration_s() / dt_s) /
                             static_cast<std::size_t>(sample_stride) +
                         2);
  engine.run(trace, power_spec, [&](const TransientEngine::StepView& view) {
    result.max_peak_temperature_k =
        std::max(result.max_peak_temperature_k, view.solution.peak_temperature_k);
    if (!view.sampled) {
      return;
    }
    TraceSample sample;
    sample.time_s = view.step.t_end_s;
    sample.dt_s = view.step.dt_s();
    sample.phase = view.phase.name;
    sample.peak_temperature_k = view.solution.peak_temperature_k;
    sample.mean_outlet_k = view.mean_outlet_k;
    sample.total_power_w = view.solution.total_power_w;
    result.samples.push_back(std::move(sample));
  });
  result.final_state = engine.take_state();
  return result;
}

}  // namespace brightsi::thermal
