// Shared transient time-stepping engine: one loop that owns step
// scheduling, phase lookup, the per-loop ThermalSolveContext, in-place
// state hand-off and sample decimation for every transient driver in the
// repo (thermal/trace_runner, core/mission, the throttling example).
//
// The scheduler is phase-boundary aligned: steps land exactly on workload
// phase edges and on the trace end, so the whole trace duration is always
// covered — the `static_cast<int>(total / dt)` truncation bug class (a
// 10 s trace at dt = 0.1 losing its final step to floating point) is
// structurally impossible. Within a segment the nominal dt is kept when it
// divides the segment (round to nearest); otherwise full steps are
// followed by one residual short step that closes the segment exactly.
//
// The engine owns the evolving temperature field and moves each solve's
// field back into it (no per-step full-grid copy), carries one
// ThermalSolveContext across all steps (assemble-once, ILU(0) refactor,
// warm starts), and hands a checkpointable `state()` back for resumable
// runs (see docs/ARCHITECTURE.md, "Transient engine").
#ifndef BRIGHTSI_THERMAL_TRANSIENT_H
#define BRIGHTSI_THERMAL_TRANSIENT_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chip/workload.h"
#include "thermal/model.h"
#include "thermal/rom.h"
#include "thermal/solve_context.h"

namespace brightsi::thermal {

/// Which backend steps the trace (docs/SOLVERS.md).
enum class TransientBackend {
  kFull,  ///< full-grid backward-Euler solve every step — the default, bit-stable path
  kRom,   ///< reduced-order projection with certified fallback (thermal/rom.h)
};

/// Name of a transient backend ("full" / "rom"), for CLIs and bench JSON.
[[nodiscard]] const char* transient_backend_name(TransientBackend backend);

/// Parses "full" / "rom" (the CLI vocabulary). Throws std::invalid_argument
/// on anything else, listing the accepted names.
[[nodiscard]] TransientBackend parse_transient_backend(const std::string& name);

/// One scheduled backward-Euler step: the interval (t_begin, t_end].
/// `phase` borrows from the WorkloadTrace the schedule was built from,
/// which must outlive the schedule.
struct TransientStep {
  int index = 0;
  double t_begin_s = 0.0;
  double t_end_s = 0.0;
  const chip::WorkloadPhase* phase = nullptr;

  [[nodiscard]] double dt_s() const { return t_end_s - t_begin_s; }
};

struct TransientScheduleOptions {
  double dt_s = 0.1;  ///< nominal step length
  /// Snap steps to workload phase edges (every step then lies inside
  /// exactly one phase). When false, steps of dt_s run straight through
  /// phase boundaries — a step straddling an edge is attributed to the
  /// phase at its midpoint — but the trace end is still covered exactly.
  bool align_phase_boundaries = true;
};

/// Builds the step schedule for `trace`. Guarantees: the schedule is
/// non-empty, steps tile [0, total_duration_s] gaplessly, and the final
/// step's t_end_s equals trace.total_duration_s() exactly.
[[nodiscard]] std::vector<TransientStep> make_transient_schedule(
    const chip::WorkloadTrace& trace, const TransientScheduleOptions& options);

struct TransientEngineOptions {
  TransientScheduleOptions schedule;
  /// Record every Nth step (the final step is always sampled so the series
  /// tail is never dropped). 1 = every step.
  int sample_stride = 1;
  /// Starting temperature field; nullptr = uniform at the operating
  /// point's inlet temperature. Copied at construction (borrowed only for
  /// the constructor call).
  const numerics::Grid3<double>* initial_state = nullptr;
  /// Power maps of the dies stacked above the workload-driven primary die
  /// (static across the trace), bottom to top. Size must equal the model's
  /// die_count() - 1; leave empty for single-die stacks.
  std::vector<chip::Floorplan> upper_die_floorplans;
  /// Stepping backend. kFull reproduces the seed path bit-for-bit; kRom
  /// serves steps from the reduced model whenever its certified error
  /// bound stays within rom.tolerance_k, falling back (and enriching the
  /// basis) on the steps where it does not.
  TransientBackend backend = TransientBackend::kFull;
  RomOptions rom;  ///< used only when backend == kRom
};

/// Drives a WorkloadTrace through a ThermalModel with backward-Euler
/// steps. The engine is resumable: after run() returns, `state()` holds
/// the final temperature field and a further run() continues from it (the
/// solve context, with its assembled operator and warm-start field, is
/// carried along as well).
class TransientEngine {
 public:
  /// What a step callback sees: the scheduled step, its workload phase,
  /// the fresh thermal solution, the channel-averaged outlet temperature
  /// (falling back to the inlet temperature for channel-less stacks) and
  /// whether this step passes the sample decimation stride.
  struct StepView {
    const TransientStep& step;
    const chip::WorkloadPhase& phase;
    const ThermalSolution& solution;
    double mean_outlet_k = 0.0;
    bool sampled = true;
  };

  /// Maps a phase to the floorplan driving the step's power map — the hook
  /// for governors that modulate activity on top of the workload.
  using FloorplanFn =
      std::function<chip::Floorplan(const chip::WorkloadPhase&, const TransientStep&)>;
  using StepFn = std::function<void(const StepView&)>;

  TransientEngine(const ThermalModel& model, const OperatingPoint& operating_point,
                  const TransientEngineOptions& options = {});

  /// Steps the whole trace, invoking `on_step` after every solve.
  void run(const chip::WorkloadTrace& trace, const FloorplanFn& floorplan_for,
           const StepFn& on_step);

  /// Convenience: floorplans are chip::apply_phase(power_spec, phase).
  void run(const chip::WorkloadTrace& trace, const chip::Power7PowerSpec& power_spec,
           const StepFn& on_step);

  /// The evolving temperature field — after run(), the checkpoint that
  /// seeds a resumed run.
  [[nodiscard]] const numerics::Grid3<double>& state() const { return state_; }
  /// Moves the field out (the engine is done after this).
  [[nodiscard]] numerics::Grid3<double> take_state() { return std::move(state_); }

  [[nodiscard]] const ThermalModel& model() const { return *model_; }
  [[nodiscard]] const ThermalSolveContext::Stats& thermal_stats() const {
    return context_.stats();
  }
  /// The reduced backend's work counters and certificate trail; nullptr
  /// when the engine runs the full backend.
  [[nodiscard]] const ReducedThermalModel* rom() const { return rom_.get(); }
  /// Steps taken across every run() of this engine's lifetime.
  [[nodiscard]] long long steps_taken() const { return steps_taken_; }

 private:
  const ThermalModel* model_;
  OperatingPoint operating_point_;
  TransientEngineOptions options_;
  ThermalSolveContext context_;
  std::unique_ptr<ReducedThermalModel> rom_;  // live only for kRom
  numerics::Grid3<double> state_;
  long long steps_taken_ = 0;
};

}  // namespace brightsi::thermal

#endif  // BRIGHTSI_THERMAL_TRANSIENT_H
