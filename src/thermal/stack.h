// Layer-stack description of the chip + microchannel package, bottom to
// top, in the 3D-ICE style: an ordered sequence of solid layers (any of
// which may carry a die's floorplan heat sources) and microchannel layers
// whose columns alternate between silicon walls and coolant channels.
//
// The sequence is fully general: a 3D stack interleaves several
// heat-source dies with interlayer cooling layers (Ao & Ramiere-style
// through-chip channels), while the paper's single-die POWER7+ package is
// just the three-layer special case. Constraints enforced by validate():
//  * at least one solid layer carries heat sources;
//  * the bottom layer is solid (channels are etched between/above dies);
//  * no two channel layers are adjacent (a solid wall separates them);
//  * every channel layer shares one x-pattern (channel count, width,
//    interior wall width), so the channel columns align vertically and the
//    thermal grid stays a tensor product.
#ifndef BRIGHTSI_THERMAL_STACK_H
#define BRIGHTSI_THERMAL_STACK_H

#include <string>
#include <variant>
#include <vector>

#include "thermal/materials.h"

namespace brightsi::thermal {

/// A homogeneous solid layer.
struct SolidLayerSpec {
  std::string name;
  double thickness_m = 0.0;
  int z_cells = 1;              ///< vertical discretization of this layer
  Material material;
  bool has_heat_source = false; ///< floorplan power is injected into the
                                ///< bottom-most z-cell of this layer

  friend bool operator==(const SolidLayerSpec&, const SolidLayerSpec&) = default;
};

/// A microchannel layer: `channel_count` channels of `channel_width_m`
/// separated by `interior_wall_width_m` walls; the leftover die width is
/// split between two edge walls. Flow runs along the die height (y).
struct MicrochannelLayerSpec {
  std::string name = "microchannel";
  int channel_count = 88;                 ///< Table II
  double channel_width_m = 200e-6;        ///< Table II
  double interior_wall_width_m = 100e-6;  ///< 300 um pitch - 200 um width
  double layer_height_m = 400e-6;         ///< Table II channel height
  int z_cells = 2;
  Material wall_material = silicon();
  /// Nusselt number override; 0 selects the four-wall H1 correlation by
  /// aspect ratio. The POWER7+ stack uses the three-heated-wall value
  /// (3.54 at aspect 0.5, cap side adiabatic), matching the 4RM convention
  /// of 3D-ICE for back-side-etched channels.
  double nusselt_override = 0.0;

  /// Channel pitch (one channel + one interior wall).
  [[nodiscard]] double pitch_m() const { return channel_width_m + interior_wall_width_m; }

  friend bool operator==(const MicrochannelLayerSpec&, const MicrochannelLayerSpec&) = default;
};

/// One stack entry: solid or microchannel.
using StackLayer = std::variant<SolidLayerSpec, MicrochannelLayerSpec>;

/// Whole-stack description: layers bottom to top.
struct StackSpec {
  std::vector<StackLayer> layers;
  /// Optional convective boundary on the top surface (air cooler /
  /// conventional heat-sink baseline); 0 = adiabatic.
  double top_heat_transfer_w_per_m2_k = 0.0;
  double ambient_temperature_k = 300.0;

  void add(SolidLayerSpec layer) { layers.emplace_back(std::move(layer)); }
  void add(MicrochannelLayerSpec layer) { layers.emplace_back(std::move(layer)); }

  void validate() const;

  [[nodiscard]] bool has_channels() const { return channel_layer_count() > 0; }
  /// Microchannel layers in the stack.
  [[nodiscard]] int channel_layer_count() const;
  /// Heat-source (die) layers in the stack.
  [[nodiscard]] int source_layer_count() const;
  /// Channel layers bottom to top (borrowed pointers into `layers`).
  [[nodiscard]] std::vector<const MicrochannelLayerSpec*> channel_layers() const;
  /// The bottom-most channel layer — the one coupled to the flow-cell
  /// electrochemistry — or nullptr for a solid stack.
  [[nodiscard]] const MicrochannelLayerSpec* bottom_channel_layer() const;
  [[nodiscard]] MicrochannelLayerSpec* bottom_channel_layer();

  /// Structural identity — lets solve-context sharers verify a model was
  /// built from exactly this stack.
  friend bool operator==(const StackSpec&, const StackSpec&) = default;
};

/// The paper's POWER7+ package: 10 um active source plane + 650 um bulk
/// silicon below the 400 um microchannel layer (etched into the die back
/// side), closed by a 100 um silicon cap. Adiabatic except for the coolant.
[[nodiscard]] StackSpec power7_microchannel_stack();

/// Conventional baseline: same die without channels; TIM + copper spreader
/// on top with an effective air-cooler film coefficient.
[[nodiscard]] StackSpec power7_conventional_stack(double effective_sink_h_w_per_m2_k = 2500.0,
                                                  double ambient_k = 318.15);

/// A vertically integrated stack of `die_count` dies (each a 10 um active
/// source plane over `bulk_z_cells`-cell bulk silicon), with a Table II
/// microchannel layer above every die when `interlayer_cooling` is true, or
/// only above the topmost die when false, closed by a 100 um silicon cap.
/// Layer names are die0_active, die0_bulk, cool0, ..., cap_si.
[[nodiscard]] StackSpec multi_die_stack(int die_count, bool interlayer_cooling = true,
                                        int bulk_z_cells = 3);

/// The two-die interlayer-cooled stack (POWER7+ core die under a
/// cache/DRAM die): multi_die_stack(2).
[[nodiscard]] StackSpec two_die_stack();

}  // namespace brightsi::thermal

#endif  // BRIGHTSI_THERMAL_STACK_H
