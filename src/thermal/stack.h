// Layer-stack description of the chip + microchannel package, bottom to
// top, in the 3D-ICE style: solid layers (one of which carries the
// floorplan heat sources) and one microchannel layer whose columns
// alternate between silicon walls and coolant channels.
#ifndef BRIGHTSI_THERMAL_STACK_H
#define BRIGHTSI_THERMAL_STACK_H

#include <optional>
#include <string>
#include <vector>

#include "thermal/materials.h"

namespace brightsi::thermal {

/// A homogeneous solid layer.
struct SolidLayerSpec {
  std::string name;
  double thickness_m = 0.0;
  int z_cells = 1;              ///< vertical discretization of this layer
  Material material;
  bool has_heat_source = false; ///< floorplan power is injected into the
                                ///< bottom-most z-cell of this layer

  friend bool operator==(const SolidLayerSpec&, const SolidLayerSpec&) = default;
};

/// The microchannel layer: `channel_count` channels of `channel_width_m`
/// separated by `interior_wall_width_m` walls; the leftover die width is
/// split between two edge walls. Flow runs along the die height (y).
struct MicrochannelLayerSpec {
  int channel_count = 88;                 ///< Table II
  double channel_width_m = 200e-6;        ///< Table II
  double interior_wall_width_m = 100e-6;  ///< 300 um pitch - 200 um width
  double layer_height_m = 400e-6;         ///< Table II channel height
  int z_cells = 2;
  Material wall_material = silicon();
  /// Nusselt number override; 0 selects the four-wall H1 correlation by
  /// aspect ratio. The POWER7+ stack uses the three-heated-wall value
  /// (3.54 at aspect 0.5, cap side adiabatic), matching the 4RM convention
  /// of 3D-ICE for back-side-etched channels.
  double nusselt_override = 0.0;

  friend bool operator==(const MicrochannelLayerSpec&, const MicrochannelLayerSpec&) = default;
};

/// Whole-stack description.
struct StackSpec {
  std::vector<SolidLayerSpec> layers_below;           ///< bottom -> channel layer
  std::optional<MicrochannelLayerSpec> channel_layer; ///< absent = solid stack
  std::vector<SolidLayerSpec> layers_above;           ///< channel layer -> top
  /// Optional convective boundary on the top surface (air cooler /
  /// conventional heat-sink baseline); 0 = adiabatic.
  double top_heat_transfer_w_per_m2_k = 0.0;
  double ambient_temperature_k = 300.0;

  void validate() const;
  [[nodiscard]] bool has_channels() const { return channel_layer.has_value(); }

  /// Structural identity — lets solve-context sharers verify a model was
  /// built from exactly this stack.
  friend bool operator==(const StackSpec&, const StackSpec&) = default;
};

/// The paper's POWER7+ package: 10 um active source plane + 450 um bulk
/// silicon below the 400 um microchannel layer (etched into the die back
/// side), closed by a 100 um silicon cap. Adiabatic except for the coolant.
[[nodiscard]] StackSpec power7_microchannel_stack();

/// Conventional baseline: same die without channels; TIM + copper spreader
/// on top with an effective air-cooler film coefficient.
[[nodiscard]] StackSpec power7_conventional_stack(double effective_sink_h_w_per_m2_k = 2500.0,
                                                  double ambient_k = 318.15);

}  // namespace brightsi::thermal

#endif  // BRIGHTSI_THERMAL_STACK_H
