#include "thermal/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "chip/power_map.h"
#include "hydraulics/duct.h"
#include "hydraulics/manifold.h"
#include "numerics/contracts.h"
#include "thermal/solve_context.h"

namespace brightsi::thermal {

const char* solver_kind_name(SolverKind kind) {
  return kind == SolverKind::kMultigrid ? "mg" : "ilu0";
}

SolverKind parse_solver_kind(const std::string& name) {
  if (name == "ilu0") {
    return SolverKind::kIlu0;
  }
  if (name == "mg") {
    return SolverKind::kMultigrid;
  }
  throw std::invalid_argument("unknown solver '" + name + "' (expected ilu0 or mg)");
}

void OperatingPoint::validate(bool has_channels) const {
  if (has_channels) {
    ensure_positive(total_flow_m3_per_s, "coolant flow");
    ensure_positive(inlet_temperature_k, "inlet temperature");
    ensure_positive(coolant.thermal_conductivity_w_per_m_k, "coolant conductivity");
    ensure_positive(coolant.volumetric_heat_capacity_j_per_m3_k, "coolant heat capacity");
    ensure_positive(coolant.density_kg_per_m3, "coolant density");
    ensure_positive(coolant.dynamic_viscosity_pa_s, "coolant viscosity");
  }
}

ThermalModel::ThermalModel(StackSpec stack, double die_width_m, double die_height_m,
                           GridSettings settings)
    : stack_(std::move(stack)), die_width_m_(die_width_m), die_height_m_(die_height_m),
      settings_(settings) {
  ensure_positive(die_width_m, "die width");
  ensure_positive(die_height_m, "die height");
  ensure(settings_.axial_cells >= 2, "need at least 2 axial cells");
  ensure(settings_.solid_stack_x_cells >= 2, "need at least 2 x cells");
  stack_.validate();
  build_grid();
  build_operator_pattern();
}

void ThermalModel::build_operator_pattern() {
  // Any valid operating point stamps the same (row, col) positions — only
  // the coefficient values differ — so a synthetic operating point and
  // empty floorplans suffice. capacity_over_dt = 1 includes the
  // backward-Euler mass diagonal, making the pattern shared between steady
  // and transient solves.
  OperatingPoint op;
  op.total_flow_m3_per_s = 1e-6;
  const chip::Floorplan empty(die_width_m_, die_height_m_);
  std::vector<const chip::Floorplan*> floorplans(static_cast<std::size_t>(source_count_),
                                                 &empty);
  const numerics::Grid3<double> previous(nx_, ny_, nz_, 0.0);
  numerics::TripletList triplets;
  std::vector<double> rhs;
  fill_operator(floorplans, op, layer_flow_split(op), 1.0, &previous, &triplets, &rhs);
  const auto n = static_cast<int>(rhs.size());
  pattern_ = numerics::CsrMatrix::from_triplets(n, n, triplets);
}

void ThermalModel::build_grid() {
  channel_specs_.clear();
  for (const MicrochannelLayerSpec* channel : stack_.channel_layers()) {
    channel_specs_.push_back(*channel);
  }
  source_count_ = stack_.source_layer_count();

  // --- x discretization ---
  // validate() guarantees every channel layer shares one x-pattern, so the
  // bottom layer defines the columns for the whole stack.
  x_edges_.clear();
  column_channel_.clear();
  if (stack_.has_channels()) {
    const MicrochannelLayerSpec& ch = channel_specs_.front();
    const int n = ch.channel_count;
    const double pattern_width = n * ch.channel_width_m + (n - 1) * ch.interior_wall_width_m;
    const double edge_wall = (die_width_m_ - pattern_width) / 2.0;
    ensure(edge_wall > 0.0,
           "channel pattern wider than the die: " + std::to_string(pattern_width));
    x_edges_.push_back(0.0);
    // edge wall | (channel | wall)*(n-1) | channel | edge wall
    auto push_column = [&](double width, int channel_index) {
      x_edges_.push_back(x_edges_.back() + width);
      column_channel_.push_back(channel_index);
    };
    push_column(edge_wall, -1);
    for (int c = 0; c < n; ++c) {
      push_column(ch.channel_width_m, c);
      if (c + 1 < n) {
        push_column(ch.interior_wall_width_m, -1);
      }
    }
    push_column(edge_wall, -1);
  } else {
    const int n = settings_.solid_stack_x_cells;
    for (int i = 0; i <= n; ++i) {
      x_edges_.push_back(die_width_m_ * i / n);
    }
    column_channel_.assign(static_cast<std::size_t>(n), -1);
  }
  nx_ = static_cast<int>(column_channel_.size());
  dx_.resize(static_cast<std::size_t>(nx_));
  for (int i = 0; i < nx_; ++i) {
    dx_[static_cast<std::size_t>(i)] =
        x_edges_[static_cast<std::size_t>(i) + 1] - x_edges_[static_cast<std::size_t>(i)];
  }

  // --- y discretization ---
  ny_ = settings_.axial_cells;
  dy_ = die_height_m_ / ny_;

  // --- z discretization ---
  z_slices_.clear();
  int die_index = 0;
  int channel_index = 0;
  for (const StackLayer& layer : stack_.layers) {
    if (const auto* solid = std::get_if<SolidLayerSpec>(&layer)) {
      for (int k = 0; k < solid->z_cells; ++k) {
        ZSlice slice;
        slice.dz = solid->thickness_m / solid->z_cells;
        slice.material = solid->material;
        slice.channel_layer = -1;
        // Power enters the bottom cell of a heat-source layer.
        slice.die = (solid->has_heat_source && k == 0) ? die_index : -1;
        z_slices_.push_back(slice);
      }
      die_index += std::get<SolidLayerSpec>(layer).has_heat_source ? 1 : 0;
      continue;
    }
    const auto& ch = std::get<MicrochannelLayerSpec>(layer);
    for (int k = 0; k < ch.z_cells; ++k) {
      ZSlice slice;
      slice.dz = ch.layer_height_m / ch.z_cells;
      slice.material = ch.wall_material;
      slice.channel_layer = channel_index;
      slice.die = -1;
      z_slices_.push_back(slice);
    }
    ++channel_index;
  }
  nz_ = static_cast<int>(z_slices_.size());
}

int ThermalModel::channel_count() const {
  return channel_specs_.empty() ? 0 : channel_specs_.front().channel_count;
}

std::vector<double> ThermalModel::z_cell_thicknesses() const {
  std::vector<double> dz;
  dz.reserve(z_slices_.size());
  for (const ZSlice& slice : z_slices_) {
    dz.push_back(slice.dz);
  }
  return dz;
}

double ThermalModel::film_coefficient(const OperatingPoint& op, int channel_layer) const {
  const MicrochannelLayerSpec& ch = channel_specs_[static_cast<std::size_t>(channel_layer)];
  const hydraulics::RectangularDuct duct(ch.channel_width_m, ch.layer_height_m, die_height_m_);
  const double nusselt =
      (ch.nusselt_override > 0.0) ? ch.nusselt_override : duct.nusselt_h1();
  return nusselt * op.coolant.thermal_conductivity_w_per_m_k / duct.hydraulic_diameter();
}

std::vector<double> ThermalModel::layer_flow_split(const OperatingPoint& op) const {
  const std::size_t layers = channel_specs_.size();
  if (layers == 0) {
    return {};
  }
  if (layers == 1) {
    // Exact single-layer path: hands the pump total through untouched, so
    // one-die solves are bit-identical to the pre-3D model.
    return {op.total_flow_m3_per_s};
  }
  std::vector<hydraulics::ParallelChannelGroup> groups;
  groups.reserve(layers);
  for (const MicrochannelLayerSpec& ch : channel_specs_) {
    groups.push_back({hydraulics::RectangularDuct(ch.channel_width_m, ch.layer_height_m,
                                                  die_height_m_),
                      ch.channel_count, ch.name});
  }
  return hydraulics::split_equal_pressure(op.total_flow_m3_per_s, groups,
                                          op.coolant.dynamic_viscosity_pa_s)
      .per_group_flow_m3_per_s;
}

void ThermalModel::fill_operator(std::span<const chip::Floorplan* const> floorplans,
                                 const OperatingPoint& op,
                                 const std::vector<double>& layer_flows,
                                 double capacity_over_dt,
                                 const numerics::Grid3<double>* previous,
                                 numerics::TripletList* triplets,
                                 std::vector<double>* rhs) const {
  const auto cell_count =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) * static_cast<std::size_t>(nz_);
  rhs->assign(cell_count, 0.0);
  triplets->clear();

  // Per-channel-layer film coefficients and per-channel flows.
  std::vector<double> h_film(channel_specs_.size(), 0.0);
  std::vector<double> per_channel_flow(channel_specs_.size(), 0.0);
  for (std::size_t layer = 0; layer < channel_specs_.size(); ++layer) {
    h_film[layer] = film_coefficient(op, static_cast<int>(layer));
    per_channel_flow[layer] = layer_flows[layer] / channel_count();
  }

  // Heat sources on the (non-uniform) column grid, one map per die.
  std::vector<double> y_edges(static_cast<std::size_t>(ny_) + 1);
  for (int i = 0; i <= ny_; ++i) {
    y_edges[static_cast<std::size_t>(i)] = die_height_m_ * i / ny_;
  }
  std::vector<numerics::Grid2<double>> power;
  power.reserve(floorplans.size());
  for (const chip::Floorplan* floorplan : floorplans) {
    power.push_back(chip::rasterize_power_w_on_edges(*floorplan, x_edges_, y_edges));
  }

  auto stamp_pair = [&](std::size_t a, std::size_t b, double conductance) {
    triplets->add(static_cast<int>(a), static_cast<int>(a), conductance);
    triplets->add(static_cast<int>(b), static_cast<int>(b), conductance);
    triplets->add(static_cast<int>(a), static_cast<int>(b), -conductance);
    triplets->add(static_cast<int>(b), static_cast<int>(a), -conductance);
  };

  // Face conductance between neighboring cells. A solid-solid face uses
  // harmonic half-cell resistances; a fluid-solid face uses the solid
  // half-cell plus the film resistance 1/h of the fluid cell's layer.
  auto face_conductance = [&](int ixa, int iza, int ixb, int izb, double area, double half_a,
                              double half_b) {
    const bool fa = is_fluid(ixa, iza);
    const bool fb = is_fluid(ixb, izb);
    double resistance = 0.0;
    if (!fa) {
      resistance += half_a / z_slices_[static_cast<std::size_t>(iza)]
                                 .material.thermal_conductivity_w_per_m_k;
    }
    if (!fb) {
      resistance += half_b / z_slices_[static_cast<std::size_t>(izb)]
                                 .material.thermal_conductivity_w_per_m_k;
    }
    if (fa != fb) {
      const int layer = fa ? z_slices_[static_cast<std::size_t>(iza)].channel_layer
                           : z_slices_[static_cast<std::size_t>(izb)].channel_layer;
      resistance += 1.0 / h_film[static_cast<std::size_t>(layer)];
    }
    if (fa && fb) {
      // Fluid-fluid contact (stacked z-cells of one channel): molecular
      // conduction through the coolant. validate() forbids adjacent
      // channel layers, so both cells belong to the same layer.
      resistance = (half_a + half_b) / op.coolant.thermal_conductivity_w_per_m_k;
    }
    return area / resistance;
  };

  // Every geometric coefficient is invariant along y, so each z-slice's
  // conductances are computed once into flat batch arrays (simple
  // vectorizable loops over x) and the ny-fold inner loop reduces to pure
  // triplet scatter. The stamp sequence is identical to stamping per cell
  // — same expressions, same order — so results (and the scatter-plan
  // caching contract) are bit-for-bit unchanged.
  std::vector<double> g_x(static_cast<std::size_t>(nx_), 0.0);    // +x face per column
  std::vector<double> g_y(static_cast<std::size_t>(nx_), 0.0);    // +y face (solid only)
  std::vector<double> g_z(static_cast<std::size_t>(nx_), 0.0);    // +z face per column
  std::vector<double> g_top(static_cast<std::size_t>(nx_), 0.0);  // top film per column
  std::vector<double> c_dt(static_cast<std::size_t>(nx_), 0.0);   // mass term per column

  for (int iz = 0; iz < nz_; ++iz) {
    const ZSlice& slice = z_slices_[static_cast<std::size_t>(iz)];

    // --- batch coefficient fill for this slice ---
    for (int ix = 0; ix + 1 < nx_; ++ix) {
      g_x[static_cast<std::size_t>(ix)] =
          face_conductance(ix, iz, ix + 1, iz, dy_ * slice.dz,
                           dx_[static_cast<std::size_t>(ix)] / 2.0,
                           dx_[static_cast<std::size_t>(ix) + 1] / 2.0);
    }
    for (int ix = 0; ix < nx_; ++ix) {
      g_y[static_cast<std::size_t>(ix)] =
          is_fluid(ix, iz) ? 0.0
                           : face_conductance(ix, iz, ix, iz,
                                              dx_[static_cast<std::size_t>(ix)] * slice.dz,
                                              dy_ / 2.0, dy_ / 2.0);
    }
    if (iz + 1 < nz_) {
      for (int ix = 0; ix < nx_; ++ix) {
        g_z[static_cast<std::size_t>(ix)] =
            face_conductance(ix, iz, ix, iz + 1, dx_[static_cast<std::size_t>(ix)] * dy_,
                             slice.dz / 2.0,
                             z_slices_[static_cast<std::size_t>(iz) + 1].dz / 2.0);
      }
    }
    // Advection coefficient: upwind from -y, with this layer's share of the
    // pump flow; constant across the slice's fluid cells.
    double c_adv = 0.0;
    if (slice.channel_layer >= 0) {
      const auto layer = static_cast<std::size_t>(slice.channel_layer);
      const double flow_fraction = slice.dz / channel_specs_[layer].layer_height_m;
      c_adv = op.coolant.volumetric_heat_capacity_j_per_m3_k * per_channel_flow[layer] *
              flow_fraction;
    }
    const bool top_boundary = iz == nz_ - 1 && stack_.top_heat_transfer_w_per_m2_k > 0.0;
    if (top_boundary) {
      const double resistance =
          slice.dz / 2.0 / slice.material.thermal_conductivity_w_per_m_k +
          1.0 / stack_.top_heat_transfer_w_per_m2_k;
      for (int ix = 0; ix < nx_; ++ix) {
        g_top[static_cast<std::size_t>(ix)] =
            is_fluid(ix, iz) ? 0.0 : dx_[static_cast<std::size_t>(ix)] * dy_ / resistance;
      }
    }
    if (capacity_over_dt > 0.0) {
      for (int ix = 0; ix < nx_; ++ix) {
        const double cap = is_fluid(ix, iz)
                               ? op.coolant.volumetric_heat_capacity_j_per_m3_k
                               : slice.material.volumetric_heat_capacity_j_per_m3_k;
        c_dt[static_cast<std::size_t>(ix)] =
            cap * dx_[static_cast<std::size_t>(ix)] * dy_ * slice.dz * capacity_over_dt;
      }
    }

    // --- scatter the batches, cell by cell in the original stamp order ---
    for (int iy = 0; iy < ny_; ++iy) {
      for (int ix = 0; ix < nx_; ++ix) {
        const std::size_t me = index(ix, iy, iz);
        const bool fluid = is_fluid(ix, iz);

        // +x neighbor.
        if (ix + 1 < nx_) {
          stamp_pair(me, index(ix + 1, iy, iz), g_x[static_cast<std::size_t>(ix)]);
        }
        // +y neighbor: conduction for solids; fluid handles y by advection.
        if (iy + 1 < ny_ && !fluid) {
          stamp_pair(me, index(ix, iy + 1, iz), g_y[static_cast<std::size_t>(ix)]);
        }
        // +z neighbor.
        if (iz + 1 < nz_) {
          stamp_pair(me, index(ix, iy, iz + 1), g_z[static_cast<std::size_t>(ix)]);
        }

        // Advection for fluid cells.
        if (fluid) {
          triplets->add(static_cast<int>(me), static_cast<int>(me), c_adv);
          if (iy == 0) {
            (*rhs)[me] += c_adv * op.inlet_temperature_k;
          } else {
            triplets->add(static_cast<int>(me), static_cast<int>(index(ix, iy - 1, iz)), -c_adv);
          }
        }

        // Top convective boundary.
        if (top_boundary && !fluid) {
          const double g = g_top[static_cast<std::size_t>(ix)];
          triplets->add(static_cast<int>(me), static_cast<int>(me), g);
          (*rhs)[me] += g * stack_.ambient_temperature_k;
        }

        // Heat sources: this slice's die injects its own power map.
        if (slice.die >= 0) {
          (*rhs)[me] += power[static_cast<std::size_t>(slice.die)](ix, iy);
        }

        // Backward-Euler mass term.
        if (capacity_over_dt > 0.0) {
          const double c = c_dt[static_cast<std::size_t>(ix)];
          triplets->add(static_cast<int>(me), static_cast<int>(me), c);
          (*rhs)[me] += c * (*previous)(ix, iy, iz);
        }
      }
    }
  }

}

ThermalSolution ThermalModel::solve_steady(const chip::Floorplan& floorplan,
                                           const OperatingPoint& op) const {
  ThermalSolveContext context(*this);
  return context.solve_steady(floorplan, op);
}

ThermalSolution ThermalModel::solve_steady(std::span<const chip::Floorplan* const> floorplans,
                                           const OperatingPoint& op) const {
  ThermalSolveContext context(*this);
  return context.solve_steady(floorplans, op);
}

ThermalSolution ThermalModel::step_transient(const numerics::Grid3<double>& state,
                                             const chip::Floorplan& floorplan,
                                             const OperatingPoint& op, double dt_s) const {
  ThermalSolveContext context(*this);
  return context.step_transient(state, floorplan, op, dt_s);
}

ThermalSolution ThermalModel::step_transient(const numerics::Grid3<double>& state,
                                             std::span<const chip::Floorplan* const> floorplans,
                                             const OperatingPoint& op, double dt_s) const {
  ThermalSolveContext context(*this);
  return context.step_transient(state, floorplans, op, dt_s);
}

numerics::Grid3<double> ThermalModel::uniform_state(double temperature_k) const {
  return numerics::Grid3<double>(nx_, ny_, nz_, temperature_k);
}

ThermalSolution ThermalModel::package_solution(
    std::vector<double> temperatures, std::span<const chip::Floorplan* const> floorplans,
    const OperatingPoint& op, const std::vector<double>& layer_flows,
    numerics::SolverReport report) const {
  ThermalSolution out;
  out.solver_report = report;
  out.temperature_k = numerics::Grid3<double>(nx_, ny_, nz_, 0.0);
  out.temperature_k.data() = std::move(temperatures);

  // Peak.
  out.peak_temperature_k = -1.0;
  for (int iz = 0; iz < nz_; ++iz) {
    for (int iy = 0; iy < ny_; ++iy) {
      for (int ix = 0; ix < nx_; ++ix) {
        const double t = out.temperature_k(ix, iy, iz);
        if (t > out.peak_temperature_k) {
          out.peak_temperature_k = t;
          out.peak_ix = ix;
          out.peak_iy = iy;
          out.peak_iz = iz;
        }
      }
    }
  }

  // Per-die source-layer maps and block summaries. Dies above the bottom
  // one report blocks under a "die<k>:" prefix so rows stay unambiguous.
  std::vector<int> source_iz(static_cast<std::size_t>(source_count_), 0);
  for (int iz = 0; iz < nz_; ++iz) {
    const int die = z_slices_[static_cast<std::size_t>(iz)].die;
    if (die >= 0) {
      source_iz[static_cast<std::size_t>(die)] = iz;
    }
  }
  out.die_maps_k.reserve(static_cast<std::size_t>(source_count_));
  out.total_power_w = 0.0;
  for (int die = 0; die < source_count_; ++die) {
    const int iz = source_iz[static_cast<std::size_t>(die)];
    numerics::Grid2<double> map(nx_, ny_, 0.0);
    for (int iy = 0; iy < ny_; ++iy) {
      for (int ix = 0; ix < nx_; ++ix) {
        map(ix, iy) = out.temperature_k(ix, iy, iz);
      }
    }
    const chip::Floorplan& floorplan = *floorplans[static_cast<std::size_t>(die)];
    out.total_power_w += floorplan.total_power();
    const std::string prefix = die == 0 ? "" : "die" + std::to_string(die) + ":";
    for (const chip::Block& block : floorplan.blocks()) {
      BlockTemperature bt;
      bt.name = prefix + block.name;
      double weighted = 0.0;
      double area = 0.0;
      bt.max_k = 0.0;
      for (int iy = 0; iy < ny_; ++iy) {
        for (int ix = 0; ix < nx_; ++ix) {
          const chip::Rect cell{x_edges_[static_cast<std::size_t>(ix)], dy_ * iy,
                                dx_[static_cast<std::size_t>(ix)], dy_};
          const double overlap = cell.intersection_area(block.footprint);
          if (overlap > 0.0) {
            weighted += map(ix, iy) * overlap;
            area += overlap;
            bt.max_k = std::max(bt.max_k, map(ix, iy));
          }
        }
      }
      bt.mean_k = (area > 0.0) ? weighted / area : 0.0;
      out.block_temperatures.push_back(bt);
    }
    out.die_maps_k.push_back(std::move(map));
  }

  // Channel fluid profiles + energy bookkeeping, one block per layer.
  if (stack_.has_channels()) {
    const int n_channels = channel_count();
    out.channel_layers.resize(channel_specs_.size());
    for (std::size_t layer = 0; layer < channel_specs_.size(); ++layer) {
      ChannelLayerSolution& layer_out = out.channel_layers[layer];
      layer_out.flow_m3_per_s = layer_flows[layer];
      layer_out.flow_fraction =
          op.total_flow_m3_per_s > 0.0 ? layer_flows[layer] / op.total_flow_m3_per_s : 0.0;
      layer_out.fluid_axial_k.assign(static_cast<std::size_t>(n_channels),
                                     std::vector<double>(static_cast<std::size_t>(ny_), 0.0));
      layer_out.outlet_k.assign(static_cast<std::size_t>(n_channels), 0.0);
      const double per_channel_flow = layer_flows[layer] / n_channels;

      std::vector<int> fluid_z;
      for (int iz = 0; iz < nz_; ++iz) {
        if (z_slices_[static_cast<std::size_t>(iz)].channel_layer ==
            static_cast<int>(layer)) {
          fluid_z.push_back(iz);
        }
      }
      for (int ix = 0; ix < nx_; ++ix) {
        const int c = column_channel_[static_cast<std::size_t>(ix)];
        if (c < 0) {
          continue;
        }
        for (int iy = 0; iy < ny_; ++iy) {
          double sum = 0.0;
          for (const int iz : fluid_z) {
            sum += out.temperature_k(ix, iy, iz);
          }
          layer_out.fluid_axial_k[static_cast<std::size_t>(c)][static_cast<std::size_t>(iy)] =
              sum / static_cast<double>(fluid_z.size());
        }
        layer_out.outlet_k[static_cast<std::size_t>(c)] =
            layer_out.fluid_axial_k[static_cast<std::size_t>(c)].back();

        // Advected heat: per z-cell flow share times the outlet/inlet delta.
        for (const int iz : fluid_z) {
          const double flow_fraction = z_slices_[static_cast<std::size_t>(iz)].dz /
                                       channel_specs_[layer].layer_height_m;
          const double c_adv = op.coolant.volumetric_heat_capacity_j_per_m3_k *
                               per_channel_flow * flow_fraction;
          layer_out.heat_absorbed_w +=
              c_adv * (out.temperature_k(ix, ny_ - 1, iz) - op.inlet_temperature_k);
        }
      }
      out.fluid_heat_absorbed_w += layer_out.heat_absorbed_w;
    }
  }
  if (stack_.top_heat_transfer_w_per_m2_k > 0.0) {
    const int iz = nz_ - 1;
    const ZSlice& slice = z_slices_[static_cast<std::size_t>(iz)];
    for (int iy = 0; iy < ny_; ++iy) {
      for (int ix = 0; ix < nx_; ++ix) {
        if (is_fluid(ix, iz)) {
          continue;
        }
        const double area = dx_[static_cast<std::size_t>(ix)] * dy_;
        const double resistance =
            slice.dz / 2.0 / slice.material.thermal_conductivity_w_per_m_k +
            1.0 / stack_.top_heat_transfer_w_per_m2_k;
        out.top_heat_rejected_w += area / resistance *
                                   (out.temperature_k(ix, iy, iz) - stack_.ambient_temperature_k);
      }
    }
  }
  if (out.total_power_w > 0.0) {
    out.energy_balance_error =
        std::abs(out.total_power_w - out.fluid_heat_absorbed_w - out.top_heat_rejected_w) /
        out.total_power_w;
  }
  return out;
}

}  // namespace brightsi::thermal
