// Stateful solve context for the compact thermal model: separates the
// one-time symbolic setup (sparsity pattern, scatter plans, ILU(0)
// structure, Krylov workspace) from the per-solve numeric work (coefficient
// fill, numeric refactorization, preconditioned BiCGSTAB), and warm-starts
// each solve from the previous temperature field.
//
// Ownership and lifecycle rules (see docs/ARCHITECTURE.md):
//  * The context borrows the ThermalModel, which must outlive it.
//  * A context is single-threaded state — one per thread, never shared.
//  * Results are deterministic: a given call sequence on a fresh (or
//    reset()) context always produces the same fields. Warm starts change
//    iterates only within the solver tolerance of the cold-start result.
//  * `reset()` restores cold-start behavior without dropping allocations;
//    callers that must be reproducible across repeated runs (e.g.
//    IntegratedMpsocSystem::run) reset at the start of each run.
//  * Multi-die stacks pass one floorplan per heat-source layer (bottom to
//    top); the single-floorplan overloads require a single-die stack.
#ifndef BRIGHTSI_THERMAL_SOLVE_CONTEXT_H
#define BRIGHTSI_THERMAL_SOLVE_CONTEXT_H

#include <memory>
#include <span>
#include <vector>

#include "thermal/model.h"

namespace brightsi::thermal {

class ThermalSolveContext {
 public:
  /// Cumulative work counters across the context's lifetime (reset() does
  /// not clear them), for perf reporting — bench/cosim_throughput.
  struct Stats {
    int solves = 0;
    long long iterations = 0;      ///< BiCGSTAB iterations, summed
    double assembly_time_s = 0.0;  ///< coefficient fill + in-place CSR refill
    /// Preconditioner setup: ILU(0) (re)factorization or multigrid
    /// hierarchy build/refresh. Split from assembly so benches can separate
    /// stamping cost from solver setup cost (docs/BENCHMARKS.md).
    double precond_setup_time_s = 0.0;
    double solve_time_s = 0.0;     ///< time iterating inside the Krylov solver
  };

  /// Copies the model's operator pattern; no factorization happens until
  /// the first solve.
  explicit ThermalSolveContext(const ThermalModel& model);

  /// Steady solve; warm-starts from the previous solve's field when one
  /// exists. Same contract and diagnostics as ThermalModel::solve_steady.
  [[nodiscard]] ThermalSolution solve_steady(const chip::Floorplan& floorplan,
                                             const OperatingPoint& operating_point);

  /// Multi-die steady solve: one floorplan per heat-source layer, bottom
  /// to top, all sharing the model's die outline.
  [[nodiscard]] ThermalSolution solve_steady(
      std::span<const chip::Floorplan* const> floorplans,
      const OperatingPoint& operating_point);

  /// One backward-Euler step from `state`; the step itself is the warm
  /// start. Same contract as ThermalModel::step_transient.
  [[nodiscard]] ThermalSolution step_transient(const numerics::Grid3<double>& state,
                                               const chip::Floorplan& floorplan,
                                               const OperatingPoint& operating_point,
                                               double dt_s);

  /// Multi-die transient step: one floorplan per heat-source layer.
  [[nodiscard]] ThermalSolution step_transient(
      const numerics::Grid3<double>& state,
      std::span<const chip::Floorplan* const> floorplans,
      const OperatingPoint& operating_point, double dt_s);

  /// Drops the warm-start field so the next steady solve starts cold (from
  /// a uniform inlet-temperature guess). Keeps the matrix, preconditioner,
  /// workspace and scatter plans.
  void reset();

  [[nodiscard]] const ThermalModel& model() const { return *model_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] ThermalSolution solve(std::span<const chip::Floorplan* const> floorplans,
                                      const OperatingPoint& op, double capacity_over_dt,
                                      const numerics::Grid3<double>* previous,
                                      std::vector<int>* scatter_plan, const char* what);

  void check_floorplans(std::span<const chip::Floorplan* const> floorplans) const;

  const ThermalModel* model_;
  numerics::CsrMatrix matrix_;         // model pattern, refilled per solve
  numerics::TripletList triplets_;     // reusable stamping buffer
  std::vector<double> rhs_;
  std::vector<int> steady_scatter_;    // triplet -> CSR slot plans per mode
  std::vector<int> transient_scatter_;
  // Exactly one of these is live, per settings().solver_config.kind: the
  // default ILU(0) factorization or the multigrid hierarchy (multigrid.h).
  std::unique_ptr<numerics::Ilu0Preconditioner> ilu_;
  std::unique_ptr<numerics::MultigridPreconditioner> multigrid_;
  numerics::KrylovWorkspace workspace_;
  std::vector<double> temperatures_;   // last iterate = warm-start field
  bool warm_ = false;
  Stats stats_;
};

}  // namespace brightsi::thermal

#endif  // BRIGHTSI_THERMAL_SOLVE_CONTEXT_H
