// Material properties for the compact thermal model.
#ifndef BRIGHTSI_THERMAL_MATERIALS_H
#define BRIGHTSI_THERMAL_MATERIALS_H

namespace brightsi::thermal {

/// Homogeneous solid material.
struct Material {
  double thermal_conductivity_w_per_m_k = 0.0;
  double volumetric_heat_capacity_j_per_m3_k = 0.0;

  friend bool operator==(const Material&, const Material&) = default;
};

/// Bulk silicon near operating temperature (~320-340 K); the 3D-ICE
/// convention of a constant conductivity is kept (the +/-10 % variation of
/// k_Si over the 27-70 C window is far below floorplan/power uncertainty).
[[nodiscard]] inline Material silicon() { return {130.0, 1.628e6}; }

/// SiO2 / BEOL-like dielectric.
[[nodiscard]] inline Material silicon_dioxide() { return {1.38, 1.64e6}; }

/// Copper (spreaders, collectors).
[[nodiscard]] inline Material copper() { return {398.0, 3.45e6}; }

/// Thermal interface material between die and spreader.
[[nodiscard]] inline Material thermal_interface() { return {4.0, 2.0e6}; }

/// Coolant bulk properties as seen by the thermal model. For the
/// vanadium-electrolyte coolant these are Table II values.
struct CoolantProperties {
  double thermal_conductivity_w_per_m_k = 0.67;          ///< Table II
  double volumetric_heat_capacity_j_per_m3_k = 4.187e6;  ///< Table II
  double density_kg_per_m3 = 1260.0;
  double dynamic_viscosity_pa_s = 2.53e-3;

  friend bool operator==(const CoolantProperties&, const CoolantProperties&) = default;
};

/// Temperature dependence of the coolant transport properties, for
/// shared-loop (rack) solves where the inlet temperature rises chip to
/// chip along a serial loop segment: Andrade (Arrhenius) viscosity decrease
/// and a linear conductivity rise about the reference state. Density and
/// volumetric heat capacity stay at their reference values (their variation
/// over the 27–70 C window is ~1 %, far below the viscosity's ~2 %/K).
///
/// Disabled — the default — `at()` returns `reference` unchanged, bit for
/// bit, so every single-chip path and golden table is unaffected.
struct CoolantPropertyLaws {
  bool temperature_dependent = false;
  /// Andrade activation energy; the electrolyte's default 16 kJ/mol gives
  /// the ~2 %/K decrease of aqueous vanadium electrolytes.
  double viscosity_activation_j_per_mol = 16000.0;
  /// Linear conductivity coefficient (water-like: ~ +0.24 %/K near 300 K).
  double conductivity_coeff_per_k = 2.4e-3;
  double reference_temperature_k = 300.0;

  /// `reference` re-priced at `temperature_k`; `reference` itself when the
  /// laws are disabled.
  [[nodiscard]] CoolantProperties at(const CoolantProperties& reference,
                                     double temperature_k) const;
};

}  // namespace brightsi::thermal

#endif  // BRIGHTSI_THERMAL_MATERIALS_H
