// Material properties for the compact thermal model.
#ifndef BRIGHTSI_THERMAL_MATERIALS_H
#define BRIGHTSI_THERMAL_MATERIALS_H

namespace brightsi::thermal {

/// Homogeneous solid material.
struct Material {
  double thermal_conductivity_w_per_m_k = 0.0;
  double volumetric_heat_capacity_j_per_m3_k = 0.0;

  friend bool operator==(const Material&, const Material&) = default;
};

/// Bulk silicon near operating temperature (~320-340 K); the 3D-ICE
/// convention of a constant conductivity is kept (the +/-10 % variation of
/// k_Si over the 27-70 C window is far below floorplan/power uncertainty).
[[nodiscard]] inline Material silicon() { return {130.0, 1.628e6}; }

/// SiO2 / BEOL-like dielectric.
[[nodiscard]] inline Material silicon_dioxide() { return {1.38, 1.64e6}; }

/// Copper (spreaders, collectors).
[[nodiscard]] inline Material copper() { return {398.0, 3.45e6}; }

/// Thermal interface material between die and spreader.
[[nodiscard]] inline Material thermal_interface() { return {4.0, 2.0e6}; }

/// Coolant bulk properties as seen by the thermal model. For the
/// vanadium-electrolyte coolant these are Table II values.
struct CoolantProperties {
  double thermal_conductivity_w_per_m_k = 0.67;          ///< Table II
  double volumetric_heat_capacity_j_per_m3_k = 4.187e6;  ///< Table II
  double density_kg_per_m3 = 1260.0;
  double dynamic_viscosity_pa_s = 2.53e-3;
};

}  // namespace brightsi::thermal

#endif  // BRIGHTSI_THERMAL_MATERIALS_H
