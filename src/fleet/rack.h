// Fleet layer: a rack of N heterogeneous MPSoC chips sharing manifolded
// coolant loops — the production-scale regime the paper's outlook implies.
//
// Topology. A RackSpec holds chips, each placed on one coolant loop at one
// serial segment position. Chips of the same (loop, segment) are parallel
// branches off common supply/return plena: the loop flow splits across
// them at equal plenum-to-plenum pressure drop
// (hydraulics::split_equal_pressure over ParallelBranch — the
// layers-within-a-stack split generalized to chips-within-a-rack, each
// chip's cooling layers collapsing to one branch conductance). Segments
// are serial: segment s+1's inlet temperature is segment s's flow-mixed
// outlet, so the per-chip inlet rises monotonically along every loop while
// the loop's pressure drops add up.
//
// Coolant. Every loop carries one fluid (validate() enforces identical
// per-chip references). CoolantPropertyLaws (thermal/materials.h) re-price
// viscosity and conductivity at each segment's inlet temperature, feeding
// both the manifold split / pump-power pricing (mu falls as the loop
// heats, so downstream segments cost less pressure) and the film
// coefficients (k rises). The laws default to disabled: constant
// properties, bit-identical to the single-chip paths.
//
// Blocked branches. A blocked chip (valve closed, failure injection) takes
// exactly zero flow — its live neighbors inherit its share — and is
// treated as powered off (no solve). An all-blocked segment throws the
// named-branch manifold error.
//
// Workloads. replay_fleet_trace steps every chip's transient thermal state
// under one workload trace replayed cyclically with a per-chip time
// offset (staggered duty cycles), re-walking the loop coupling every step.
#ifndef BRIGHTSI_FLEET_RACK_H
#define BRIGHTSI_FLEET_RACK_H

#include <string>
#include <vector>

#include "chip/workload.h"
#include "core/system_config.h"
#include "thermal/materials.h"

namespace brightsi::fleet {

/// One chip of a rack: a full single-chip system configuration plus its
/// loop placement and workload stagger.
struct RackChip {
  std::string name;
  core::SystemConfig system;
  int loop = 0;                  ///< coolant loop index
  int segment = 0;               ///< serial position along the loop; 0 is coldest
  double workload_offset_s = 0.0;///< stagger of the replayed trace
  bool blocked = false;          ///< branch valve closed: zero flow, powered off
};

/// A rack: chips on shared coolant loops. Every loop receives
/// `loop_flow_m3_per_s` at `loop_inlet_temperature_k` from its pump.
struct RackSpec {
  std::string name = "rack";
  std::vector<RackChip> chips;
  double loop_flow_m3_per_s = 676e-6 / 60.0;   ///< Table II spec flow per loop
  double loop_inlet_temperature_k = 300.0;     ///< Table II inlet
  thermal::CoolantPropertyLaws coolant_laws;   ///< default: constant properties
  double pump_efficiency = 0.5;                ///< paper Section III-B

  /// Throws std::invalid_argument on an empty rack, duplicate/empty chip
  /// names, negative loop/segment indices, a loop with a gap in its
  /// serial segment sequence, a non-blocked chip without cooling
  /// channels, chips whose coolant references differ (a loop carries one
  /// fluid), or invalid flow/inlet/pump values.
  void validate() const;

  [[nodiscard]] int loop_count() const;
  [[nodiscard]] int segment_count(int loop) const;

  /// The loops' shared coolant at the reference state: the (common)
  /// config-implied coolant of the chips. The laws re-price it per segment.
  [[nodiscard]] thermal::CoolantProperties coolant_reference() const;
};

/// Per-chip outputs of a rack solve (steady, or the final replay step).
struct RackChipResult {
  std::string name;
  int loop = 0;
  int segment = 0;
  bool blocked = false;
  double inlet_temperature_k = 0.0;   ///< the segment's plenum inlet
  double flow_m3_per_s = 0.0;         ///< equal-dp share of the loop flow
  double flow_fraction = 0.0;         ///< share of the loop flow within the segment
  double heat_absorbed_w = 0.0;       ///< coolant heat pickup of this chip
  double outlet_temperature_k = 0.0;  ///< enthalpy-consistent branch outlet
  double peak_temperature_k = 0.0;
};

/// Per-loop outputs of a rack solve.
struct RackLoopResult {
  double inlet_temperature_k = 0.0;
  double outlet_temperature_k = 0.0;      ///< final segment's mixed outlet
  double pressure_drop_pa = 0.0;          ///< serial sum over segments
  double pump_power_w = 0.0;              ///< dp * Q / eta for this loop
  double heat_absorbed_w = 0.0;
  std::vector<double> segment_inlet_k;    ///< plenum inlet per serial segment
};

/// Result of one steady rack solve.
struct RackSolveResult {
  std::vector<RackChipResult> chips;  ///< rack order
  std::vector<RackLoopResult> loops;
  double pump_power_w = 0.0;          ///< all loops
  double heat_absorbed_w = 0.0;       ///< all chips
  double peak_temperature_k = 0.0;    ///< hottest junction across the fleet
  double max_inlet_rise_k = 0.0;      ///< max over loops: last segment inlet - loop inlet
  bool inlet_monotonic = true;        ///< segment inlets nondecreasing along every loop
  /// Max over loops of |sum of chip heat pickups - loop enthalpy rise|
  /// relative to the pickup total — rounding-level by construction.
  double energy_balance_rel_error = 0.0;
};

/// Steady solve of the whole rack: walks every loop's serial segments,
/// splitting flow at equal pressure drop per segment and carrying the
/// mixed outlet forward as the next segment's inlet. Deterministic.
[[nodiscard]] RackSolveResult solve_rack_steady(const RackSpec& rack);

/// Staggered workload replay controls. The trace cycles (modulo its total
/// duration), so any horizon is valid.
struct FleetReplayOptions {
  chip::WorkloadTrace trace;
  double dt_s = 0.05;
  int steps = 40;
};

/// Result of a staggered fleet trace replay.
struct FleetReplayResult {
  int steps = 0;
  double sim_time_s = 0.0;
  double max_peak_temperature_k = 0.0;   ///< across all chips and steps
  double mean_pump_power_w = 0.0;        ///< averaged over steps
  double heat_absorbed_j = 0.0;          ///< integrated coolant pickup
  double max_inlet_rise_k = 0.0;         ///< final step
  bool inlet_monotonic = true;           ///< final step
  std::vector<RackChipResult> final_chips;  ///< final-step snapshot, rack order
};

/// Transient replay of `options.trace` across the fleet: every step
/// re-walks the loop coupling (segment inlets from the upstream chips'
/// states of the same step) and advances each live chip by one
/// backward-Euler step under its offset phase of the trace. Deterministic.
[[nodiscard]] FleetReplayResult replay_fleet_trace(const RackSpec& rack,
                                                   const FleetReplayOptions& options);

/// A demo rack of `chip_count` chips derived from `base`: chips
/// round-robin across `loop_count` loops, loop positions round-robin
/// across `segments_per_loop` serial segments (so segments hold parallel
/// chip sets when chips outnumber segments). With `heterogeneous`, chips
/// of every odd pass over the segment sequence become the two-die
/// interlayer-cooled stack — a segment's parallel chips come from
/// different passes, so mixed segments split their flow unequally; the
/// first `blocked_count` chips are blocked.
/// Flow, inlet, laws and staggers stay at RackSpec defaults for the
/// caller to override.
[[nodiscard]] RackSpec make_demo_rack(const core::SystemConfig& base, int chip_count,
                                      int loop_count, int segments_per_loop,
                                      bool heterogeneous = false, int blocked_count = 0);

}  // namespace brightsi::fleet

#endif  // BRIGHTSI_FLEET_RACK_H
