#include "fleet/rack.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "chip/power7.h"
#include "hydraulics/manifold.h"
#include "hydraulics/pump.h"
#include "numerics/contracts.h"
#include "thermal/solve_context.h"

namespace brightsi::fleet {

namespace {

/// Per-chip solve machinery: the assembled thermal model (shared between
/// structurally identical chips), the die floorplans (stable addresses —
/// replay reassigns them in place per step), and the chip's manifold
/// branch as seen from the rack plena.
struct ChipEngine {
  const RackChip* chip = nullptr;
  std::shared_ptr<const thermal::ThermalModel> model;
  std::vector<chip::Floorplan> floorplans;           ///< primary + upper dies
  std::vector<const chip::Floorplan*> pointers;      ///< span view of the above
  hydraulics::ParallelBranch branch;
};

std::vector<ChipEngine> build_engines(const RackSpec& rack) {
  std::vector<ChipEngine> engines;
  engines.reserve(rack.chips.size());
  for (const RackChip& c : rack.chips) {
    ChipEngine staged;
    staged.chip = &c;
    staged.floorplans.push_back(chip::make_power7_floorplan(c.system.power_spec));
    for (const chip::Power7PowerSpec& upper : c.system.upper_die_power) {
      staged.floorplans.push_back(chip::make_power7_floorplan(upper));
    }
    engines.push_back(std::move(staged));
    ChipEngine& engine = engines.back();
    engine.pointers.reserve(engine.floorplans.size());
    for (const chip::Floorplan& floorplan : engine.floorplans) {
      engine.pointers.push_back(&floorplan);
    }

    const chip::Floorplan& primary = engine.floorplans.front();
    // Structurally identical chips (same stack, grid settings and die
    // outline) share one assembled model — the fleet analog of the sweep
    // worker's structure cache; results are bitwise unaffected.
    for (std::size_t prior = 0; prior + 1 < engines.size(); ++prior) {
      const ChipEngine& other = engines[prior];
      if (other.model != nullptr && other.chip->system.stack == c.system.stack &&
          other.chip->system.thermal_grid == c.system.thermal_grid &&
          other.model->die_width_m() == primary.die_width() &&
          other.model->die_height_m() == primary.die_height()) {
        engine.model = other.model;
        break;
      }
    }
    if (engine.model == nullptr) {
      engine.model = std::make_shared<const thermal::ThermalModel>(
          c.system.stack, primary.die_width(), primary.die_height(),
          c.system.thermal_grid);
    }

    engine.branch.name = c.name;
    if (!c.blocked) {
      for (const thermal::MicrochannelLayerSpec* layer : c.system.stack.channel_layers()) {
        engine.branch.groups.push_back(
            {hydraulics::RectangularDuct(layer->channel_width_m, layer->layer_height_m,
                                         primary.die_height()),
             layer->channel_count, layer->name});
      }
    }
  }
  return engines;
}

/// One pass over every loop's serial segments: splits each segment's flow
/// at equal pressure drop, prices the coolant at the segment inlet through
/// the rack's laws, calls `solve_chip` (engine index, operating point) ->
/// (heat pickup W, peak K) for every live chip, and carries the mixed
/// outlet forward. Shared by the steady solve and every replay step.
RackSolveResult walk_rack(
    const RackSpec& rack, const std::vector<ChipEngine>& engines,
    const std::function<std::pair<double, double>(std::size_t,
                                                  const thermal::OperatingPoint&)>&
        solve_chip) {
  RackSolveResult result;
  result.chips.resize(engines.size());
  const thermal::CoolantProperties reference = rack.coolant_reference();
  const int loops = rack.loop_count();
  result.loops.resize(static_cast<std::size_t>(loops));
  for (int l = 0; l < loops; ++l) {
    RackLoopResult& loop = result.loops[static_cast<std::size_t>(l)];
    loop.inlet_temperature_k = rack.loop_inlet_temperature_k;
    double t_in = rack.loop_inlet_temperature_k;
    const int segments = rack.segment_count(l);
    for (int s = 0; s < segments; ++s) {
      loop.segment_inlet_k.push_back(t_in);
      std::vector<hydraulics::ParallelBranch> branches;
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < engines.size(); ++i) {
        if (engines[i].chip->loop == l && engines[i].chip->segment == s) {
          members.push_back(i);
          branches.push_back(engines[i].branch);
        }
      }
      const thermal::CoolantProperties coolant = rack.coolant_laws.at(reference, t_in);
      const hydraulics::GroupSplit split = hydraulics::split_equal_pressure(
          rack.loop_flow_m3_per_s, branches, coolant.dynamic_viscosity_pa_s);
      loop.pressure_drop_pa += split.common_pressure_drop_pa;

      double segment_heat_w = 0.0;
      for (std::size_t m = 0; m < members.size(); ++m) {
        const std::size_t index = members[m];
        const RackChip& c = *engines[index].chip;
        RackChipResult& chip_result = result.chips[index];
        chip_result.name = c.name;
        chip_result.loop = l;
        chip_result.segment = s;
        chip_result.blocked = c.blocked;
        chip_result.inlet_temperature_k = t_in;
        chip_result.flow_m3_per_s = split.per_group_flow_m3_per_s[m];
        chip_result.flow_fraction = split.fraction[m];
        chip_result.outlet_temperature_k = t_in;
        if (c.blocked) {
          continue;  // valve closed and powered off: no flow, no solve
        }
        const thermal::OperatingPoint op = c.system.loop_operating_point(
            chip_result.flow_m3_per_s, t_in, rack.coolant_laws);
        const auto [heat_w, peak_k] = solve_chip(index, op);
        chip_result.heat_absorbed_w = heat_w;
        chip_result.peak_temperature_k = peak_k;
        if (chip_result.flow_m3_per_s > 0.0) {
          chip_result.outlet_temperature_k =
              t_in + heat_w / (coolant.volumetric_heat_capacity_j_per_m3_k *
                               chip_result.flow_m3_per_s);
        }
        segment_heat_w += heat_w;
        result.peak_temperature_k = std::max(result.peak_temperature_k, peak_k);
      }
      loop.heat_absorbed_w += segment_heat_w;
      // Flow-weighted enthalpy mix of the segment's branch outlets — the
      // next serial segment's plenum inlet.
      t_in += segment_heat_w /
              (coolant.volumetric_heat_capacity_j_per_m3_k * rack.loop_flow_m3_per_s);
    }
    loop.outlet_temperature_k = t_in;
    loop.pump_power_w = hydraulics::pumping_power_w(
        loop.pressure_drop_pa, rack.loop_flow_m3_per_s, rack.pump_efficiency);
    result.pump_power_w += loop.pump_power_w;
    result.heat_absorbed_w += loop.heat_absorbed_w;

    for (std::size_t s = 1; s < loop.segment_inlet_k.size(); ++s) {
      if (loop.segment_inlet_k[s] < loop.segment_inlet_k[s - 1]) {
        result.inlet_monotonic = false;
      }
    }
    result.max_inlet_rise_k =
        std::max(result.max_inlet_rise_k,
                 loop.segment_inlet_k.back() - loop.inlet_temperature_k);

    const double enthalpy_rise_w = reference.volumetric_heat_capacity_j_per_m3_k *
                                   rack.loop_flow_m3_per_s *
                                   (loop.outlet_temperature_k - loop.inlet_temperature_k);
    const double scale = std::max(std::abs(loop.heat_absorbed_w), 1e-12);
    result.energy_balance_rel_error =
        std::max(result.energy_balance_rel_error,
                 std::abs(loop.heat_absorbed_w - enthalpy_rise_w) / scale);
  }
  return result;
}

}  // namespace

void RackSpec::validate() const {
  ensure(!chips.empty(), "rack '" + name + "' has no chips");
  ensure_positive(loop_flow_m3_per_s, "loop flow");
  ensure_positive(loop_inlet_temperature_k, "loop inlet temperature");
  ensure(pump_efficiency > 0.0 && pump_efficiency <= 1.0, "pump efficiency in (0, 1]");

  std::set<std::string> names;
  for (const RackChip& c : chips) {
    ensure(!c.name.empty(), "rack chip with empty name");
    ensure(names.insert(c.name).second, "duplicate rack chip name: " + c.name);
    ensure(c.loop >= 0 && c.segment >= 0,
           "chip '" + c.name + "' has a negative loop or segment index");
    ensure_non_negative(c.workload_offset_s, "workload offset of chip '" + c.name + "'");
    c.system.validate();
    ensure(c.blocked || c.system.stack.has_channels(),
           "non-blocked chip '" + c.name + "' has no cooling channels");
  }

  // One fluid per rack: every chip's config-implied coolant reference must
  // agree, or the shared-loop mixing arithmetic would be ill-defined.
  const thermal::CoolantProperties reference =
      chips.front().system.thermal_operating_point().coolant;
  for (const RackChip& c : chips) {
    ensure(c.system.thermal_operating_point().coolant == reference,
           "chip '" + c.name + "' carries a different coolant than '" +
               chips.front().name + "' (a rack's loops share one fluid)");
  }

  // Loops and each loop's serial segments must be contiguous from 0 —
  // a gap would mean a plenum pair with no chips attached.
  const int loops = loop_count();
  for (int l = 0; l < loops; ++l) {
    bool loop_seen = false;
    int max_segment = 0;
    for (const RackChip& c : chips) {
      if (c.loop == l) {
        loop_seen = true;
        max_segment = std::max(max_segment, c.segment);
      }
    }
    ensure(loop_seen, "rack loop " + std::to_string(l) + " has no chips");
    for (int s = 0; s <= max_segment; ++s) {
      bool segment_seen = false;
      for (const RackChip& c : chips) {
        segment_seen = segment_seen || (c.loop == l && c.segment == s);
      }
      ensure(segment_seen, "rack loop " + std::to_string(l) + " segment " +
                               std::to_string(s) + " has no chips");
    }
  }
}

int RackSpec::loop_count() const {
  int max_loop = 0;
  for (const RackChip& c : chips) {
    max_loop = std::max(max_loop, c.loop);
  }
  return max_loop + 1;
}

int RackSpec::segment_count(int loop) const {
  int max_segment = -1;
  for (const RackChip& c : chips) {
    if (c.loop == loop) {
      max_segment = std::max(max_segment, c.segment);
    }
  }
  ensure(max_segment >= 0, "rack has no loop " + std::to_string(loop));
  return max_segment + 1;
}

thermal::CoolantProperties RackSpec::coolant_reference() const {
  ensure(!chips.empty(), "rack '" + name + "' has no chips");
  return chips.front().system.thermal_operating_point().coolant;
}

RackSolveResult solve_rack_steady(const RackSpec& rack) {
  rack.validate();
  const std::vector<ChipEngine> engines = build_engines(rack);
  return walk_rack(rack, engines,
                   [&](std::size_t index, const thermal::OperatingPoint& op) {
                     const thermal::ThermalSolution sol =
                         engines[index].model->solve_steady(engines[index].pointers, op);
                     return std::pair{sol.fluid_heat_absorbed_w, sol.peak_temperature_k};
                   });
}

FleetReplayResult replay_fleet_trace(const RackSpec& rack,
                                     const FleetReplayOptions& options) {
  rack.validate();
  ensure_positive(options.dt_s, "replay dt");
  ensure(options.steps > 0, "replay steps must be positive");
  const double trace_duration_s = options.trace.total_duration_s();
  ensure_positive(trace_duration_s, "workload trace duration");

  std::vector<ChipEngine> engines = build_engines(rack);
  std::vector<std::unique_ptr<thermal::ThermalSolveContext>> contexts;
  std::vector<numerics::Grid3<double>> states;
  contexts.reserve(engines.size());
  states.reserve(engines.size());
  for (const ChipEngine& engine : engines) {
    contexts.push_back(std::make_unique<thermal::ThermalSolveContext>(*engine.model));
    states.push_back(engine.model->uniform_state(rack.loop_inlet_temperature_k));
  }

  FleetReplayResult result;
  result.steps = options.steps;
  result.sim_time_s = options.steps * options.dt_s;
  RackSolveResult last_step;
  for (int step = 0; step < options.steps; ++step) {
    const double t_s = step * options.dt_s;
    // Each live chip sees its own offset phase of the (cyclic) trace.
    for (ChipEngine& engine : engines) {
      if (engine.chip->blocked) {
        continue;
      }
      const double phase_time_s =
          std::fmod(t_s + engine.chip->workload_offset_s, trace_duration_s);
      const chip::WorkloadPhase& phase = options.trace.phase_at(phase_time_s);
      engine.floorplans.front() = chip::apply_phase(engine.chip->system.power_spec, phase);
      for (std::size_t upper = 0; upper < engine.chip->system.upper_die_power.size();
           ++upper) {
        engine.floorplans[upper + 1] =
            chip::apply_phase(engine.chip->system.upper_die_power[upper], phase);
      }
    }
    last_step = walk_rack(
        rack, engines, [&](std::size_t index, const thermal::OperatingPoint& op) {
          thermal::ThermalSolution sol = contexts[index]->step_transient(
              states[index], engines[index].pointers, op, options.dt_s);
          const std::pair<double, double> observables{sol.fluid_heat_absorbed_w,
                                                      sol.peak_temperature_k};
          states[index] = std::move(sol.temperature_k);
          return observables;
        });
    result.max_peak_temperature_k =
        std::max(result.max_peak_temperature_k, last_step.peak_temperature_k);
    result.mean_pump_power_w += last_step.pump_power_w;
    result.heat_absorbed_j += last_step.heat_absorbed_w * options.dt_s;
  }
  result.mean_pump_power_w /= options.steps;
  result.max_inlet_rise_k = last_step.max_inlet_rise_k;
  result.inlet_monotonic = last_step.inlet_monotonic;
  result.final_chips = std::move(last_step.chips);
  return result;
}

RackSpec make_demo_rack(const core::SystemConfig& base, int chip_count, int loop_count,
                        int segments_per_loop, bool heterogeneous, int blocked_count) {
  ensure(chip_count > 0, "demo rack needs at least one chip");
  ensure(loop_count > 0 && loop_count <= chip_count,
         "demo rack loop count must be in [1, chip count]");
  ensure(segments_per_loop > 0, "demo rack needs at least one segment per loop");
  ensure(blocked_count >= 0 && blocked_count <= chip_count,
         "demo rack blocked count must be in [0, chip count]");

  RackSpec rack;
  rack.name = "rack" + std::to_string(chip_count);
  for (int i = 0; i < chip_count; ++i) {
    RackChip c;
    c.name = "chip" + std::to_string(i);
    c.system = base;
    c.loop = i % loop_count;
    const int position = i / loop_count;
    c.segment = position % segments_per_loop;
    if (heterogeneous && (position / segments_per_loop) % 2 == 1) {
      // Chips of every odd pass over the segment sequence are the two-die
      // interlayer-cooled stack. A segment's parallel chips come from
      // different passes, so mixed segments hold both stack kinds and
      // split their flow genuinely unequally at equal pressure drop.
      c.system.stack = thermal::two_die_stack();
      c.system.upper_die_power = {chip::memory_die_power_spec()};
    }
    c.blocked = i < blocked_count;
    rack.chips.push_back(std::move(c));
  }
  rack.validate();
  return rack;
}

}  // namespace brightsi::fleet
