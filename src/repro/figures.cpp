#include "repro/figures.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "chip/power7.h"
#include "core/report.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "flowcell/colaminar_fvm.h"
#include "flowcell/reference_data.h"
#include "hydraulics/pump.h"

namespace brightsi::repro {

namespace fc = flowcell;
namespace ec = electrochem;
namespace th = thermal;
namespace pd = pdn;
namespace ch = chip;

FigureTable fig3_polarization_table() {
  const fc::ColaminarChannelModel model(fc::kjeang2007_geometry(),
                                        ec::kjeang2007_validation_chemistry());
  FigureTable table;
  table.columns = {"flow_ul_per_min", "cell_voltage_v", "model_ma_per_cm2",
                   "reference_ma_per_cm2", "error_pct"};
  for (const fc::ReferenceCurve& curve : fc::fig3_reference_curves()) {
    fc::ChannelOperatingConditions conditions;
    conditions.volumetric_flow_m3_per_s = curve.flow_rate_ul_per_min * 1e-9 / 60.0;
    conditions.inlet_temperature_k = 300.0;
    for (const fc::ReferencePoint& point : curve.points) {
      const auto solution = model.solve_at_voltage(point.cell_voltage_v, conditions);
      const double model_ma_per_cm2 = solution.mean_current_density_a_per_m2 / 10.0;
      const double error_pct = 100.0 *
                               (model_ma_per_cm2 - point.current_density_ma_per_cm2) /
                               point.current_density_ma_per_cm2;
      table.rows.push_back({curve.flow_rate_ul_per_min, point.cell_voltage_v,
                            model_ma_per_cm2, point.current_density_ma_per_cm2, error_pct});
    }
  }
  return table;
}

double fig3_worst_error_pct(const FigureTable& table) {
  double worst = 0.0;
  for (const std::vector<double>& row : table.rows) {
    worst = std::max(worst, std::abs(row.back()));
  }
  return worst;
}

FigureTable fig7_array_vi_table() {
  const fc::ArraySpec spec = fc::power7_array_spec();
  const fc::FlowCellArray array(spec, ec::power7_array_chemistry());
  const double area_cm2 =
      spec.geometry.projected_electrode_area_m2() * spec.channel_count * 1e4;
  FigureTable table;
  table.columns = {"cell_voltage_v", "current_a", "power_w", "current_density_a_per_cm2"};
  for (int i = 0; i <= 14; ++i) {
    const double v = 1.6 - 0.1 * i;  // 1.6 V down to 0.2 V, the Fig. 7 axis
    const double current = array.current_at_voltage(v);
    table.rows.push_back({v, current, current * v, current / area_cm2});
  }
  return table;
}

pdn::PowerGridSolution fig8_voltage_solution() {
  const ch::Floorplan floorplan = ch::make_power7_floorplan();
  const pd::PowerGrid grid(pd::PowerGridSpec{}, floorplan);
  const auto taps = pd::make_vrm_grid(4, 4, floorplan.die_width(), floorplan.die_height(),
                                      1.0, 25e-3);
  return grid.solve(taps);
}

FigureTable fig8_voltage_summary(const pdn::PowerGridSolution& solution) {
  FigureTable table;
  table.columns = {"total_load_a", "total_supply_a", "min_v",       "max_v",
                   "mean_v",       "worst_drop_v",   "ohmic_loss_w"};
  table.rows.push_back({solution.total_load_current_a, solution.total_supply_current_a,
                        solution.min_voltage_v, solution.max_voltage_v,
                        solution.mean_voltage_v, solution.worst_drop_v,
                        solution.ohmic_loss_w});
  return table;
}

FigureTable fig8_voltage_summary_table() {
  return fig8_voltage_summary(fig8_voltage_solution());
}

/// The Fig. 9 operating point: Table II flow at a 27 C inlet.
constexpr double kFig9InletK = 300.15;

thermal::ThermalSolution fig9_thermal_solution() {
  const ch::Floorplan floorplan = ch::make_power7_floorplan();
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM);
  th::OperatingPoint operating_point;
  operating_point.total_flow_m3_per_s = 676e-6 / 60.0;  // Table II
  operating_point.inlet_temperature_k = kFig9InletK;
  return model.solve_steady(floorplan, operating_point);
}

FigureTable fig9_thermal_summary(const thermal::ThermalSolution& solution) {
  FigureTable table;
  table.columns = {"total_power_w", "peak_c", "fluid_heat_w", "energy_balance_pct",
                   "outlet_mean_c"};
  table.rows.push_back({ch::make_power7_floorplan().total_power(),
                        solution.peak_temperature_k - 273.15,
                        solution.fluid_heat_absorbed_w,
                        solution.energy_balance_error * 100.0,
                        solution.mean_outlet_k(kFig9InletK) - 273.15});
  return table;
}

FigureTable fig9_block_table(const thermal::ThermalSolution& solution) {
  FigureTable table;
  table.label_column = "block";
  table.columns = {"mean_c", "max_c"};
  for (const th::BlockTemperature& block : solution.block_temperatures) {
    table.labels.push_back(block.name);
    table.rows.push_back({block.mean_k - 273.15, block.max_k - 273.15});
  }
  return table;
}

FigureTable pumping_energy_table(double channel_height_scale) {
  FigureTable table;
  table.columns = {"flow_ml_min", "velocity_m_per_s", "reynolds", "dp_bar",
                   "pump_w",      "current_1v_a",     "net_w"};
  const double eta_pump = 0.5;  // paper Section III-B
  for (const double ml : {48.0, 150.0, 300.0, 676.0, 1500.0, 3000.0, 6000.0}) {
    fc::ArraySpec spec = fc::power7_array_spec();
    spec.geometry.channel_height_m *= channel_height_scale;
    spec.total_flow_m3_per_s = ml * 1e-6 / 60.0;
    const fc::FlowCellArray array(spec, ec::power7_array_chemistry());
    const auto hydraulics = array.hydraulics_at_spec_flow();
    const double pump_w = hydraulics::pumping_power_w(
        hydraulics.pressure_drop_pa, spec.total_flow_m3_per_s, eta_pump);
    const double current = array.current_at_voltage(1.0);
    table.rows.push_back({ml, hydraulics.mean_velocity_m_per_s, hydraulics.reynolds,
                          hydraulics.pressure_drop_pa / 1e5, pump_w, current,
                          current - pump_w});
  }
  return table;
}

void write_figure_csv(std::ostream& os, const FigureTable& table) {
  std::vector<std::string> headers;
  if (!table.label_column.empty()) {
    headers.push_back(table.label_column);
  }
  headers.insert(headers.end(), table.columns.begin(), table.columns.end());
  std::vector<std::vector<std::string>> rows;
  rows.reserve(table.rows.size());
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    std::vector<std::string> cells;
    if (!table.label_column.empty()) {
      cells.push_back(table.labels[r]);
    }
    for (const double value : table.rows[r]) {
      cells.push_back(core::format_shortest(value));
    }
    rows.push_back(std::move(cells));
  }
  core::write_table_csv(os, headers, rows);
}

FigureTable read_figure_csv(std::istream& is, bool has_label_column) {
  // RFC-4180-aware split, mirroring write_table_csv's quoting: a cell
  // starting with '"' runs to the closing quote, with "" as an escaped
  // quote — so a label containing commas or quotes round-trips.
  const auto split = [](const std::string& line) {
    std::vector<std::string> cells;
    std::size_t i = 0;
    while (true) {
      std::string cell;
      if (i < line.size() && line[i] == '"') {
        ++i;
        while (i < line.size()) {
          if (line[i] == '"' && i + 1 < line.size() && line[i + 1] == '"') {
            cell += '"';
            i += 2;
          } else if (line[i] == '"') {
            ++i;
            break;
          } else {
            cell += line[i++];
          }
        }
      } else {
        while (i < line.size() && line[i] != ',') {
          cell += line[i++];
        }
      }
      cells.push_back(std::move(cell));
      if (i >= line.size()) {
        break;
      }
      ++i;  // skip the comma
    }
    return cells;
  };

  FigureTable table;
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("figure CSV: empty input");
  }
  std::vector<std::string> headers = split(line);
  if (headers.empty() || (has_label_column && headers.size() < 2)) {
    throw std::runtime_error("figure CSV: missing header columns");
  }
  if (has_label_column) {
    table.label_column = headers.front();
    headers.erase(headers.begin());
  }
  table.columns = headers;

  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> cells = split(line);
    if (cells.size() != table.columns.size() + (has_label_column ? 1 : 0)) {
      throw std::runtime_error("figure CSV: ragged row: " + line);
    }
    if (has_label_column) {
      table.labels.push_back(cells.front());
      cells.erase(cells.begin());
    }
    std::vector<double> row;
    for (const std::string& cell : cells) {
      try {
        std::size_t consumed = 0;
        row.push_back(std::stod(cell, &consumed));
        if (consumed != cell.size()) {
          throw std::invalid_argument(cell);
        }
      } catch (const std::exception&) {
        throw std::runtime_error("figure CSV: non-numeric cell '" + cell + "' in: " + line);
      }
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace brightsi::repro
