// Library-level reproductions of the paper's figure computations, shared
// by the bench/ reproduction programs and the golden regression suite
// (tests/golden_test.cpp). Each helper returns a FigureTable — a numeric
// table with named columns — whose values are exactly what the benches
// print and what tests/golden/*.csv pins with per-column tolerances, so a
// physics regression fails ctest instead of drifting silently in bench
// output.
#ifndef BRIGHTSI_REPRO_FIGURES_H
#define BRIGHTSI_REPRO_FIGURES_H

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "pdn/power_grid.h"
#include "thermal/model.h"

namespace brightsi::repro {

/// A numeric table with named columns and an optional leading label
/// column — the unit of the golden regression suite.
struct FigureTable {
  std::string label_column;          ///< header of the label column; empty = none
  std::vector<std::string> columns;  ///< numeric column names
  std::vector<std::string> labels;   ///< one per row when label_column is set
  std::vector<std::vector<double>> rows;
};

/// Fig. 3: the Kjeang-2007 validation cell's polarization curves against
/// the embedded reference dataset. One row per reference point:
/// flow_ul_per_min, cell_voltage_v, model_ma_per_cm2, reference_ma_per_cm2,
/// error_pct.
[[nodiscard]] FigureTable fig3_polarization_table();

/// Largest |error_pct| of a fig3 table, in percent — the paper's
/// "within 10 %" validation claim.
[[nodiscard]] double fig3_worst_error_pct(const FigureTable& table);

/// Fig. 7: V-I characteristic of the 88-channel POWER7+ array, 1.6 V down
/// to 0.2 V in 0.1 V steps: cell_voltage_v, current_a, power_w,
/// current_density_a_per_cm2.
[[nodiscard]] FigureTable fig7_array_vi_table();

/// Fig. 8: the cache-rail voltage map at the paper's 4x4 VRM population
/// (25 mohm taps, 1 V set point).
[[nodiscard]] pdn::PowerGridSolution fig8_voltage_solution();
/// Single-row summary of a fig8 solution: total_load_a, total_supply_a,
/// min_v, max_v, mean_v, worst_drop_v, ohmic_loss_w.
[[nodiscard]] FigureTable fig8_voltage_summary(const pdn::PowerGridSolution& solution);
[[nodiscard]] FigureTable fig8_voltage_summary_table();

/// Fig. 9: the full-load thermal map at 676 ml/min, 27 C inlet (the
/// paper's Table II operating point). The solve is the most expensive
/// computation here, so callers run it once and hand the solution to the
/// two table extractors.
[[nodiscard]] thermal::ThermalSolution fig9_thermal_solution();
/// Single-row summary of a fig9 solution: total_power_w, peak_c,
/// fluid_heat_w, energy_balance_pct, outlet_mean_c.
[[nodiscard]] FigureTable fig9_thermal_summary(const thermal::ThermalSolution& solution);
/// Per-floorplan-block temperatures of a fig9 solution: label column
/// "block", columns mean_c, max_c.
[[nodiscard]] FigureTable fig9_block_table(const thermal::ThermalSolution& solution);

/// Section III-B pumping power / energy balance: the bench/pumping_energy
/// flow sweep as a pinned table. One row per flow rate (48 to 6000 ml/min
/// around the Table II 676 ml/min point): flow_ml_min, velocity_m_per_s,
/// reynolds, dp_bar, pump_w (eta = 0.5), current_1v_a, net_w. The
/// reproduced shape is the positive net energy balance at the spec flow.
/// `channel_height_scale` shrinks/stretches the channel etch depth — a
/// deliberate hydraulic-resistance perturbation the golden suite uses to
/// prove the pinned dp/pumping columns actually constrain the hydraulics.
[[nodiscard]] FigureTable pumping_energy_table(double channel_height_scale = 1.0);

/// Writes the table as CSV: header row (label column first when present),
/// then one row per entry, numeric cells in shortest-round-trip form.
void write_figure_csv(std::ostream& os, const FigureTable& table);

/// Parses a CSV written by write_figure_csv. `has_label_column` tells the
/// reader whether the first column holds labels. Throws std::runtime_error
/// on a malformed table (ragged rows, non-numeric cells, empty input).
[[nodiscard]] FigureTable read_figure_csv(std::istream& is, bool has_label_column);

}  // namespace brightsi::repro

#endif  // BRIGHTSI_REPRO_FIGURES_H
