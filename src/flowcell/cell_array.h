// Electrically-parallel microchannel flow-cell array (paper Section III:
// 88 channels on the POWER7+ die, Fig. 7).
//
// All channels share the cell voltage (parallel electrical connection) and
// the manifold splits the total electrolyte flow between them. Channels may
// run under different axial temperature profiles (they sit above different
// parts of the floorplan), in which case each group is solved separately
// and the currents summed.
#ifndef BRIGHTSI_FLOWCELL_CELL_ARRAY_H
#define BRIGHTSI_FLOWCELL_CELL_ARRAY_H

#include <memory>
#include <vector>

#include "flowcell/channel_model.h"
#include "flowcell/polarization.h"

namespace brightsi::flowcell {

/// Static description of the array.
struct ArraySpec {
  int channel_count = 88;                  ///< Table II
  CellGeometry geometry;                   ///< per channel
  double total_flow_m3_per_s = 0.0;        ///< across all channels
  double inlet_temperature_k = 300.0;      ///< Table II: 300 K
  double parasitic_current_density_a_per_m2 = 0.0;

  void validate() const;
  /// Flow through one channel (uniform manifold split).
  [[nodiscard]] double per_channel_flow() const {
    return total_flow_m3_per_s / channel_count;
  }
};

/// Table II array: 88 channels of power7_channel_geometry() fed with
/// 676 ml/min total at 300 K.
[[nodiscard]] ArraySpec power7_array_spec();

class FlowCellArray {
 public:
  FlowCellArray(ArraySpec spec, electrochem::FlowCellChemistry chemistry,
                FvmSettings settings = {});

  /// Uniform conditions: every channel is isothermal at the spec inlet
  /// temperature (or follows `temperature_profile` when given, shared by
  /// all channels). Returns the array current at `cell_voltage_v`.
  [[nodiscard]] double current_at_voltage(
      double cell_voltage_v,
      const std::vector<double>& shared_temperature_profile = {}) const;

  /// Per-channel temperature profiles (size must equal channel_count);
  /// solves each channel and sums.
  [[nodiscard]] double current_at_voltage_per_channel(
      double cell_voltage_v, const std::vector<std::vector<double>>& per_channel_profiles) const;

  /// Array polarization sweep (uniform conditions).
  [[nodiscard]] PolarizationCurve sweep(double min_voltage_v, int point_count,
                                        const std::vector<double>& shared_temperature_profile = {}) const;

  /// Voltage at which the array sources `target_current_a` (Brent solve on
  /// the monotone V->I map). Throws when the target exceeds the array's
  /// capability above `min_voltage_v`.
  [[nodiscard]] double voltage_at_current(double target_current_a, double min_voltage_v = 0.05,
                                          const std::vector<double>& shared_temperature_profile = {}) const;

  [[nodiscard]] double open_circuit_voltage() const;
  [[nodiscard]] const ArraySpec& spec() const { return spec_; }
  [[nodiscard]] const ChannelModel& channel_model() const { return *channel_model_; }

  /// Hydraulics of the array at the spec flow: per-channel pressure drop
  /// (Pa) and mean velocity (m/s).
  struct Hydraulics {
    double mean_velocity_m_per_s = 0.0;
    double pressure_drop_pa = 0.0;
    double pressure_gradient_pa_per_m = 0.0;
    double reynolds = 0.0;
  };
  [[nodiscard]] Hydraulics hydraulics_at_spec_flow() const;

 private:
  ArraySpec spec_;
  std::unique_ptr<ChannelModel> channel_model_;

  [[nodiscard]] ChannelOperatingConditions make_conditions(
      const std::vector<double>& temperature_profile) const;
};

}  // namespace brightsi::flowcell

#endif  // BRIGHTSI_FLOWCELL_CELL_ARRAY_H
