#include "flowcell/colaminar_fvm.h"

#include <algorithm>
#include <cmath>

#include "electrochem/butler_volmer.h"
#include "electrochem/constants.h"
#include "electrochem/nernst.h"
#include "flowcell/wall_closure.h"
#include "numerics/contracts.h"
#include "numerics/tridiagonal.h"

namespace brightsi::flowcell {
namespace {

namespace ec = brightsi::electrochem;

/// Applies the three pairwise comproportionation reactions of crossover
/// vanadium species (instantaneous, diffusion-limited):
///   V2+ + V^V  -> V3+ + V^IV
///   V2+ + V^IV -> 2 V3+
///   V3+ + V^V  -> 2 V^IV
/// Returns the moles/m^3 of electron-equivalents annihilated in this cell
/// (the first two reactions consume fuel-side charge, the third oxidant-side;
/// each 1:1 event destroys one electron of capacity).
double annihilate(std::array<double, kSpeciesCount>& c) {
  double equivalents = 0.0;
  // V2+ + V^V
  {
    const double r = std::min(c[kAnodeReduced], c[kCathodeOxidized]);
    c[kAnodeReduced] -= r;
    c[kCathodeOxidized] -= r;
    c[kAnodeOxidized] += r;
    c[kCathodeReduced] += r;
    equivalents += 2.0 * r;  // both a fuel and an oxidant electron vanish
  }
  // V2+ + V^IV -> 2 V3+
  {
    const double r = std::min(c[kAnodeReduced], c[kCathodeReduced]);
    c[kAnodeReduced] -= r;
    c[kCathodeReduced] -= r;
    c[kAnodeOxidized] += 2.0 * r;
    equivalents += r;
  }
  // V3+ + V^V -> 2 V^IV
  {
    const double r = std::min(c[kAnodeOxidized], c[kCathodeOxidized]);
    c[kAnodeOxidized] -= r;
    c[kCathodeOxidized] -= r;
    c[kCathodeReduced] += 2.0 * r;
    equivalents += r;
  }
  return equivalents;
}

}  // namespace

ColaminarChannelModel::ColaminarChannelModel(CellGeometry geometry,
                                             electrochem::FlowCellChemistry chemistry,
                                             FvmSettings settings)
    : geometry_(geometry), chemistry_(std::move(chemistry)), settings_(settings) {
  geometry_.validate();
  ensure(geometry_.electrode_mode == ElectrodeMode::kPlanarWall,
         "ColaminarChannelModel handles planar-wall electrodes; use "
         "make_channel_model for flow-through geometries");
  chemistry_.validate();
  settings_.validate();
  build_velocity_shape();
}

void ColaminarChannelModel::build_velocity_shape() {
  const int ny = settings_.transverse_cells;
  const double gap = geometry_.electrode_gap_m;
  const double dy = gap / ny;
  const hydraulics::RectangularDuct duct = geometry_.duct();
  const hydraulics::DuctVelocityProfile profile(duct);

  velocity_shape_.resize(static_cast<std::size_t>(ny));
  double mean = 0.0;
  for (int j = 0; j < ny; ++j) {
    const double y = (j + 0.5) * dy;
    velocity_shape_[static_cast<std::size_t>(j)] = profile.depth_averaged(y);
    mean += velocity_shape_[static_cast<std::size_t>(j)];
  }
  mean /= ny;
  ensure(mean > 0.0, "velocity shape degenerate");
  for (double& v : velocity_shape_) {
    v /= mean;
    // Guard: strictly positive axial velocity is required by the marching
    // scheme; the exact profile is ~0 only exactly at the wall, and cell
    // centers are offset by dy/2, but protect against pathological grids.
    v = std::max(v, 1e-6);
  }
}

double ColaminarChannelModel::open_circuit_voltage(
    const ChannelOperatingConditions& conditions) const {
  return ec::open_circuit_voltage(chemistry_, conditions.inlet_temperature_k);
}

ChannelSolution ColaminarChannelModel::solve_at_voltage(
    double cell_voltage_v, const ChannelOperatingConditions& conditions) const {
  ensure_finite(cell_voltage_v, "cell voltage");
  conditions.validate();

  const int ny = settings_.transverse_cells;
  const int nx = settings_.axial_steps;
  const double gap = geometry_.electrode_gap_m;
  const double height = geometry_.channel_height_m;
  const double length = geometry_.channel_length_m;
  const double dy = gap / ny;
  const double dx = length / nx;
  const double area_factor = geometry_.electrode_area_factor;
  const double n_f = ec::constants::faraday_c_per_mol;

  const double mean_velocity = conditions.volumetric_flow_m3_per_s /
                               geometry_.cross_section_area_m2();
  ensure_positive(mean_velocity, "mean velocity");

  // Concentration fields: C[species][j].
  std::array<std::vector<double>, kSpeciesCount> c;
  for (auto& field : c) {
    field.assign(static_cast<std::size_t>(ny), 0.0);
  }
  // Anolyte occupies y < gap/2, catholyte y > gap/2 at the inlet.
  for (int j = 0; j < ny; ++j) {
    const double y = (j + 0.5) * dy;
    const auto idx = static_cast<std::size_t>(j);
    if (y < gap / 2.0) {
      c[kAnodeReduced][idx] = chemistry_.anode.reduced_inlet_concentration_mol_per_m3;
      c[kAnodeOxidized][idx] = chemistry_.anode.oxidized_inlet_concentration_mol_per_m3;
    } else {
      c[kCathodeOxidized][idx] = chemistry_.cathode.oxidized_inlet_concentration_mol_per_m3;
      c[kCathodeReduced][idx] = chemistry_.cathode.reduced_inlet_concentration_mol_per_m3;
    }
  }

  // Inlet molar flows for conservation/utilization bookkeeping. The molar
  // flow of species s is sum_j u_j * C_s[j] * dy * height.
  auto molar_flow = [&](const std::vector<double>& field) {
    double sum = 0.0;
    for (int j = 0; j < ny; ++j) {
      sum += velocity_shape_[static_cast<std::size_t>(j)] * field[static_cast<std::size_t>(j)];
    }
    return sum * mean_velocity * dy * height;
  };
  const double inlet_fuel_flow = molar_flow(c[kAnodeReduced]);
  double inlet_vanadium_flow = 0.0;
  for (const auto& field : c) {
    inlet_vanadium_flow += molar_flow(field);
  }

  ChannelSolution solution;
  solution.cell_voltage_v = cell_voltage_v;
  solution.axial_position_m.reserve(static_cast<std::size_t>(nx));
  solution.axial_current_density_a_per_m2.reserve(static_cast<std::size_t>(nx));

  numerics::TridiagonalSolver tridiag(static_cast<std::size_t>(ny));
  std::vector<double> lower(static_cast<std::size_t>(ny));
  std::vector<double> diag(static_cast<std::size_t>(ny));
  std::vector<double> upper(static_cast<std::size_t>(ny));
  std::vector<double> rhs(static_cast<std::size_t>(ny));

  double total_external_current = 0.0;
  double total_parasitic_current = 0.0;
  double annihilated_current = 0.0;
  int clamped_stations = 0;

  for (int step = 0; step < nx; ++step) {
    const double x_mid = (step + 0.5) * dx;
    const double temperature = conditions.temperature_at(x_mid / length);

    // Station-local, temperature-dependent parameters.
    const double d_an = chemistry_.anode.diffusivity_m2_per_s.at(temperature);
    const double d_cat = chemistry_.cathode.diffusivity_m2_per_s.at(temperature);
    const double sigma = chemistry_.electrolyte.ionic_conductivity_s_per_m.at(temperature);

    ClosureParameters closure;
    closure.temperature_k = temperature;
    closure.anode_alpha = chemistry_.anode.couple.anodic_transfer_coefficient;
    closure.cathode_alpha = chemistry_.cathode.couple.anodic_transfer_coefficient;
    closure.anode_standard_potential_v = chemistry_.anode.couple.standard_potential_v;
    closure.cathode_standard_potential_v = chemistry_.cathode.couple.standard_potential_v;
    closure.anode_wall_mass_transfer_m_per_s = area_factor * d_an / (dy / 2.0);
    closure.cathode_wall_mass_transfer_m_per_s = area_factor * d_cat / (dy / 2.0);
    const double sigma_ref = chemistry_.electrolyte.ionic_conductivity_s_per_m.reference_value;
    const double series_r = geometry_.series_resistance_is_ionic
                                ? geometry_.series_resistance_ohm_m2 * sigma_ref / sigma
                                : geometry_.series_resistance_ohm_m2;
    closure.area_specific_resistance_ohm_m2 = gap / sigma + series_r;
    closure.parasitic_current_density_a_per_m2 = conditions.parasitic_current_density_a_per_m2;

    WallConcentrations wall;
    wall.anode_reduced = c[kAnodeReduced].front();
    wall.anode_oxidized = c[kAnodeOxidized].front();
    wall.cathode_oxidized = c[kCathodeOxidized].back();
    wall.cathode_reduced = c[kCathodeReduced].back();

    // Exchange current densities on the projected-area basis, at local
    // wall composition and temperature.
    closure.anode_exchange_current_a_per_m2 =
        area_factor * ec::exchange_current_density(chemistry_.anode, wall.anode_oxidized,
                                                   wall.anode_reduced, temperature);
    closure.cathode_exchange_current_a_per_m2 =
        area_factor * ec::exchange_current_density(chemistry_.cathode, wall.cathode_oxidized,
                                                   wall.cathode_reduced, temperature);

    // Per-step mass availability: the wall cell cannot lose more moles than
    // it carries through the station.
    const double u_wall_an = velocity_shape_.front() * mean_velocity;
    const double u_wall_cat = velocity_shape_.back() * mean_velocity;
    closure.anodic_mass_cap_a_per_m2 =
        0.95 * n_f * dy * u_wall_an / dx *
        std::min(wall.anode_reduced, wall.cathode_oxidized * u_wall_cat / u_wall_an);
    closure.cathodic_mass_cap_a_per_m2 =
        0.95 * n_f * dy * u_wall_an / dx *
        std::min(wall.anode_oxidized, wall.cathode_reduced * u_wall_cat / u_wall_an);

    const ClosureResult local = solve_wall_current(closure, wall, cell_voltage_v);
    if (local.clamped) {
      ++clamped_stations;
    }

    const double i_total = local.total_current_density;
    const double station_area = dx * height;  // projected
    total_external_current += local.external_current_density * station_area;
    total_parasitic_current += closure.parasitic_current_density_a_per_m2 * station_area;

    // March each species with backward-Euler diffusion; the electrode flux
    // enters the wall cells as a source on this step.
    for (int s = 0; s < kSpeciesCount; ++s) {
      const double d_s = (s == kAnodeReduced || s == kAnodeOxidized) ? d_an : d_cat;
      const double lambda = d_s / (dy * dy);
      auto& field = c[static_cast<std::size_t>(s)];

      for (int j = 0; j < ny; ++j) {
        const auto idx = static_cast<std::size_t>(j);
        const double advect = velocity_shape_[idx] * mean_velocity / dx;
        const double west = (j > 0) ? lambda : 0.0;
        const double east = (j < ny - 1) ? lambda : 0.0;
        lower[idx] = -west;
        upper[idx] = -east;
        diag[idx] = advect + west + east;
        rhs[idx] = advect * field[idx];
      }
      // Electrode sources (mol per m^3 per station): flux i/(nF) over the
      // wall face, volumetric in the wall cell.
      const double source_scale = i_total / (n_f * dy);
      if (s == kAnodeReduced) {
        rhs.front() -= source_scale;
      } else if (s == kAnodeOxidized) {
        rhs.front() += source_scale;
      } else if (s == kCathodeOxidized) {
        rhs.back() -= source_scale;
      } else {
        rhs.back() += source_scale;
      }

      tridiag.solve(lower, diag, upper, rhs);
      for (int j = 0; j < ny; ++j) {
        const auto idx = static_cast<std::size_t>(j);
        field[idx] = std::max(0.0, rhs[idx]);
      }
    }

    // Interfacial annihilation of crossover species, cell by cell.
    std::array<double, kSpeciesCount> cell_values{};
    for (int j = 0; j < ny; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      for (int s = 0; s < kSpeciesCount; ++s) {
        cell_values[static_cast<std::size_t>(s)] = c[static_cast<std::size_t>(s)][idx];
      }
      const double equivalents = annihilate(cell_values);
      if (equivalents > 0.0) {
        for (int s = 0; s < kSpeciesCount; ++s) {
          c[static_cast<std::size_t>(s)][idx] = cell_values[static_cast<std::size_t>(s)];
        }
        // The concentration change applies to the fluid passing this cell;
        // the destroyed molar rate is equiv * u_j * dy * height (mol/s).
        // Weights in `annihilate` count fuel+oxidant electrons, so halve
        // for the symmetric capacity loss.
        annihilated_current += 0.5 * equivalents * n_f * velocity_shape_[idx] * mean_velocity *
                               dy * height;
      }
    }

    solution.axial_position_m.push_back(x_mid);
    solution.axial_current_density_a_per_m2.push_back(local.external_current_density);
  }

  // Outlet bookkeeping.
  double outlet_vanadium_flow = 0.0;
  for (int s = 0; s < kSpeciesCount; ++s) {
    outlet_vanadium_flow += molar_flow(c[static_cast<std::size_t>(s)]);
    solution.outlet_concentration_mol_per_m3[static_cast<std::size_t>(s)] =
        c[static_cast<std::size_t>(s)];
  }
  const double outlet_fuel_flow = molar_flow(c[kAnodeReduced]);

  solution.current_a = total_external_current;
  solution.power_w = total_external_current * cell_voltage_v;
  solution.mean_current_density_a_per_m2 =
      total_external_current / geometry_.projected_electrode_area_m2();
  solution.crossover_current_a = annihilated_current + total_parasitic_current;
  solution.fuel_utilization =
      (inlet_fuel_flow > 0.0) ? (inlet_fuel_flow - outlet_fuel_flow) / inlet_fuel_flow : 0.0;
  solution.vanadium_balance_error =
      std::abs(outlet_vanadium_flow - inlet_vanadium_flow) /
      std::max(inlet_vanadium_flow, 1e-30);
  solution.clamped_station_fraction = static_cast<double>(clamped_stations) / nx;
  return solution;
}

}  // namespace brightsi::flowcell
