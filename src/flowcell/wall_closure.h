// Local electrode closure of the co-laminar FVM.
//
// At each axial station the two electrodes are equipotential metal, the
// ionic current crosses the electrode gap, and the local current density
// i(x) must satisfy the cell-voltage constraint
//
//   V_cell = [E_eq,cat(C_wall) + eta_cat(i)] - [E_eq,an(C_wall) + eta_an(i)]
//            - i * ASR
//
// where the overpotentials come from Butler-Volmer kinetics evaluated with
// surface concentrations tied to the diffusive wall flux
// (i/nF = k_wall (C_wall - C_surface)). The equation is strictly monotone
// in i, solved by Brent iteration within physical brackets (surface
// depletion and per-step mass availability).
#ifndef BRIGHTSI_FLOWCELL_WALL_CLOSURE_H
#define BRIGHTSI_FLOWCELL_WALL_CLOSURE_H

namespace brightsi::flowcell {

/// Wall-adjacent concentrations at one axial station (mol/m^3).
struct WallConcentrations {
  double anode_reduced = 0.0;    ///< V2+ beside the anode
  double anode_oxidized = 0.0;   ///< V3+ beside the anode
  double cathode_oxidized = 0.0; ///< VO2+ (V^V) beside the cathode
  double cathode_reduced = 0.0;  ///< VO^2+ (V^IV) beside the cathode
};

/// Station-local parameters (already on the projected-electrode-area basis:
/// i0 and the wall mass-transfer coefficients include the electrode area
/// factor).
struct ClosureParameters {
  double temperature_k = 300.0;
  double anode_exchange_current_a_per_m2 = 0.0;
  double cathode_exchange_current_a_per_m2 = 0.0;
  double anode_alpha = 0.5;
  double cathode_alpha = 0.5;
  double anode_standard_potential_v = 0.0;
  double cathode_standard_potential_v = 0.0;
  double anode_wall_mass_transfer_m_per_s = 0.0;    ///< k_wall = factor * D / (dy/2)
  double cathode_wall_mass_transfer_m_per_s = 0.0;
  double area_specific_resistance_ohm_m2 = 0.0;     ///< electrolyte gap / sigma
  double parasitic_current_density_a_per_m2 = 0.0;  ///< internal self-discharge
  /// Per-step mass availability cap on |i| (A/m^2); the marching scheme
  /// cannot consume more than the wall cell holds in one step. <= 0 : none.
  double anodic_mass_cap_a_per_m2 = 0.0;
  double cathodic_mass_cap_a_per_m2 = 0.0;
};

/// Result of the local solve.
struct ClosureResult {
  double total_current_density = 0.0;     ///< through the electrodes (incl. parasitic)
  double external_current_density = 0.0;  ///< collected current, total - parasitic
  double anode_overpotential_v = 0.0;
  double cathode_overpotential_v = 0.0;
  double local_open_circuit_v = 0.0;      ///< Nernst at the wall concentrations
  bool clamped = false;                   ///< hit a transport/mass bracket
};

/// Solves the station closure for cell voltage `cell_voltage_v`. Positive
/// current = discharge. Returns zero current when the station is fully
/// depleted.
[[nodiscard]] ClosureResult solve_wall_current(const ClosureParameters& params,
                                               const WallConcentrations& wall,
                                               double cell_voltage_v);

}  // namespace brightsi::flowcell

#endif  // BRIGHTSI_FLOWCELL_WALL_CLOSURE_H
