// Species indexing and the per-solve result record shared by all channel
// transport models.
#ifndef BRIGHTSI_FLOWCELL_CHANNEL_SOLUTION_H
#define BRIGHTSI_FLOWCELL_CHANNEL_SOLUTION_H

#include <array>
#include <vector>

namespace brightsi::flowcell {

/// Transported species indices.
enum Species : int {
  kAnodeReduced = 0,    ///< V2+  (fuel)
  kAnodeOxidized = 1,   ///< V3+
  kCathodeOxidized = 2, ///< VO2+ (V^V, oxidant)
  kCathodeReduced = 3,  ///< VO^2+ (V^IV)
};
inline constexpr int kSpeciesCount = 4;

/// Solution of one channel at one cell voltage.
struct ChannelSolution {
  double cell_voltage_v = 0.0;
  double current_a = 0.0;            ///< external (collected) current
  double power_w = 0.0;              ///< V * I
  double mean_current_density_a_per_m2 = 0.0;  ///< I / projected electrode area

  std::vector<double> axial_position_m;                 ///< station centers
  std::vector<double> axial_current_density_a_per_m2;   ///< external, per station

  /// Charge lost to interfacial annihilation + parasitic electrode
  /// self-discharge, expressed as a current (A).
  double crossover_current_a = 0.0;
  /// Fraction of the inlet fuel (V2+) molar flow converted in the channel.
  double fuel_utilization = 0.0;
  /// Relative error of total-vanadium molar flow between inlet and outlet
  /// (conservation diagnostic; should be at rounding level).
  double vanadium_balance_error = 0.0;
  /// Outlet concentration profile per species (transverse cells, mol/m^3).
  /// Only filled by models that resolve the transverse direction.
  std::array<std::vector<double>, kSpeciesCount> outlet_concentration_mol_per_m3;
  /// Fraction of stations pinned at a transport/mass bracket.
  double clamped_station_fraction = 0.0;
};

}  // namespace brightsi::flowcell

#endif  // BRIGHTSI_FLOWCELL_CHANNEL_SOLUTION_H
