#include "flowcell/channel_spec.h"

#include <algorithm>
#include <cmath>

#include "numerics/contracts.h"

namespace brightsi::flowcell {

void CellGeometry::validate() const {
  ensure_positive(electrode_gap_m, "electrode gap");
  ensure_positive(channel_height_m, "channel height");
  ensure_positive(channel_length_m, "channel length");
  ensure_positive(electrode_area_factor, "electrode area factor");
  ensure_non_negative(series_resistance_ohm_m2, "series resistance");
  if (electrode_mode == ElectrodeMode::kFlowThrough) {
    ensure_positive(flow_through_mass_transfer_m_per_s, "flow-through mass transfer");
  }
}

CellGeometry kjeang2007_geometry() {
  CellGeometry g;
  g.electrode_gap_m = 2.0e-3;
  g.channel_height_m = 150e-6;
  g.channel_length_m = 33e-3;
  g.electrode_mode = ElectrodeMode::kPlanarWall;
  g.electrode_area_factor = 2.5;  // graphite-rod exposed surface vs flat wall
  // Rod contact + lateral current-path resistance of the experimental cell
  // (calibrated against the Fig. 3 slopes; the paper does not tabulate it).
  g.series_resistance_ohm_m2 = 1.2e-3;  // 12 ohm.cm^2
  g.validate();
  return g;
}

CellGeometry power7_channel_geometry() {
  CellGeometry g;
  g.electrode_gap_m = 200e-6;
  g.channel_height_m = 400e-6;
  g.channel_length_m = 22e-3;
  // Porous flow-through electrodes along the channel walls: required to
  // reach the Fig. 7 current levels (see EXPERIMENTS.md E3 discussion).
  g.electrode_mode = ElectrodeMode::kFlowThrough;
  g.electrode_area_factor = 1.0;        // kinetics on the projected-area basis
  g.series_resistance_ohm_m2 = 3.15e-5; // collector network, calibrated to 6 A @ 1 V
  g.flow_through_mass_transfer_m_per_s = 2e-3;
  g.validate();
  return g;
}

void ChannelOperatingConditions::validate() const {
  ensure_positive(volumetric_flow_m3_per_s, "volumetric flow");
  ensure_positive(inlet_temperature_k, "inlet temperature");
  ensure_non_negative(parasitic_current_density_a_per_m2, "parasitic current density");
  for (const double t : axial_temperature_k) {
    ensure_positive(t, "axial temperature sample");
  }
}

double ChannelOperatingConditions::temperature_at(double normalized_position) const {
  if (axial_temperature_k.empty()) {
    return inlet_temperature_k;
  }
  if (axial_temperature_k.size() == 1) {
    return axial_temperature_k.front();
  }
  const double s = std::clamp(normalized_position, 0.0, 1.0);
  const double pos = s * static_cast<double>(axial_temperature_k.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, axial_temperature_k.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return axial_temperature_k[lo] + frac * (axial_temperature_k[hi] - axial_temperature_k[lo]);
}

void FvmSettings::validate() const {
  ensure(transverse_cells >= 8, "FVM needs at least 8 transverse cells");
  ensure(axial_steps >= 4, "FVM needs at least 4 axial steps");
}

}  // namespace brightsi::flowcell
