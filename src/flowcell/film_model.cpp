#include "flowcell/film_model.h"

#include <algorithm>
#include <cmath>

#include "electrochem/butler_volmer.h"
#include "electrochem/constants.h"
#include "electrochem/nernst.h"
#include "flowcell/wall_closure.h"
#include "hydraulics/dimensionless.h"
#include "numerics/contracts.h"

namespace brightsi::flowcell {

namespace ec = brightsi::electrochem;

FilmChannelModel::FilmChannelModel(CellGeometry geometry,
                                   electrochem::FlowCellChemistry chemistry, int axial_steps)
    : geometry_(geometry), chemistry_(std::move(chemistry)), axial_steps_(axial_steps) {
  geometry_.validate();
  chemistry_.validate();
  ensure(axial_steps >= 4, "film model needs at least 4 axial steps");
}

double FilmChannelModel::open_circuit_voltage(
    const ChannelOperatingConditions& conditions) const {
  return ec::open_circuit_voltage(chemistry_, conditions.inlet_temperature_k);
}

ChannelSolution FilmChannelModel::solve_at_voltage(
    double cell_voltage_v, const ChannelOperatingConditions& conditions) const {
  conditions.validate();
  const double n_f = ec::constants::faraday_c_per_mol;
  const double gap = geometry_.electrode_gap_m;
  const double height = geometry_.channel_height_m;
  const double length = geometry_.channel_length_m;
  const double dx = length / axial_steps_;
  const double area_factor = geometry_.electrode_area_factor;

  const double mean_velocity =
      conditions.volumetric_flow_m3_per_s / geometry_.cross_section_area_m2();
  // Each stream carries half the channel flow.
  const double half_flow = conditions.volumetric_flow_m3_per_s / 2.0;

  // Bulk (plug) concentrations per stream.
  double an_red = chemistry_.anode.reduced_inlet_concentration_mol_per_m3;
  double an_ox = chemistry_.anode.oxidized_inlet_concentration_mol_per_m3;
  double cat_ox = chemistry_.cathode.oxidized_inlet_concentration_mol_per_m3;
  double cat_red = chemistry_.cathode.reduced_inlet_concentration_mol_per_m3;

  ChannelSolution solution;
  solution.cell_voltage_v = cell_voltage_v;
  solution.axial_position_m.reserve(static_cast<std::size_t>(axial_steps_));
  solution.axial_current_density_a_per_m2.reserve(static_cast<std::size_t>(axial_steps_));

  double total_current = 0.0;
  double parasitic_total = 0.0;
  int clamped = 0;
  const double inlet_fuel_flow = an_red * half_flow;

  for (int step = 0; step < axial_steps_; ++step) {
    const double x = (step + 0.5) * dx;
    const double temperature = conditions.temperature_at(x / length);
    const double d_an = chemistry_.anode.diffusivity_m2_per_s.at(temperature);
    const double d_cat = chemistry_.cathode.diffusivity_m2_per_s.at(temperature);
    const double sigma = chemistry_.electrolyte.ionic_conductivity_s_per_m.at(temperature);

    // Mass-transfer coefficients: Leveque film for planar walls, effective
    // porous-medium coefficient for flow-through electrodes.
    double k_an;
    double k_cat;
    if (geometry_.electrode_mode == ElectrodeMode::kFlowThrough) {
      k_an = geometry_.flow_through_mass_transfer_m_per_s;
      k_cat = geometry_.flow_through_mass_transfer_m_per_s;
    } else {
      const double delta_an =
          std::max(hydraulics::film_boundary_layer_thickness(d_an, x, mean_velocity), 1e-9);
      const double delta_cat =
          std::max(hydraulics::film_boundary_layer_thickness(d_cat, x, mean_velocity), 1e-9);
      k_an = d_an / delta_an;
      k_cat = d_cat / delta_cat;
    }

    ClosureParameters closure;
    closure.temperature_k = temperature;
    closure.anode_alpha = chemistry_.anode.couple.anodic_transfer_coefficient;
    closure.cathode_alpha = chemistry_.cathode.couple.anodic_transfer_coefficient;
    closure.anode_standard_potential_v = chemistry_.anode.couple.standard_potential_v;
    closure.cathode_standard_potential_v = chemistry_.cathode.couple.standard_potential_v;
    closure.anode_wall_mass_transfer_m_per_s = area_factor * k_an;
    closure.cathode_wall_mass_transfer_m_per_s = area_factor * k_cat;
    const double sigma_ref = chemistry_.electrolyte.ionic_conductivity_s_per_m.reference_value;
    const double series_r = geometry_.series_resistance_is_ionic
                                ? geometry_.series_resistance_ohm_m2 * sigma_ref / sigma
                                : geometry_.series_resistance_ohm_m2;
    closure.area_specific_resistance_ohm_m2 = gap / sigma + series_r;
    closure.parasitic_current_density_a_per_m2 = conditions.parasitic_current_density_a_per_m2;
    // Per-station utilization caps: a station cannot convert more than the
    // stream carries past it.
    const double station_area = dx * height;
    const double cap_scale = 0.9 * n_f * half_flow / station_area;
    closure.anodic_mass_cap_a_per_m2 = cap_scale * std::min(an_red, cat_ox);
    closure.cathodic_mass_cap_a_per_m2 = cap_scale * std::min(an_ox, cat_red);
    closure.anode_exchange_current_a_per_m2 =
        area_factor * ec::exchange_current_density(chemistry_.anode, an_ox, an_red, temperature);
    closure.cathode_exchange_current_a_per_m2 =
        area_factor *
        ec::exchange_current_density(chemistry_.cathode, cat_ox, cat_red, temperature);

    WallConcentrations wall{an_red, an_ox, cat_ox, cat_red};
    const ClosureResult local = solve_wall_current(closure, wall, cell_voltage_v);
    if (local.clamped) {
      ++clamped;
    }

    const double i_total = local.total_current_density;
    total_current += local.external_current_density * station_area;
    parasitic_total += closure.parasitic_current_density_a_per_m2 * station_area;

    // Bulk depletion: molar rate = i/(nF) * electrode width element.
    const double molar_rate = i_total * station_area / n_f;  // mol/s this station
    const double d_conc = molar_rate / half_flow;            // mol/m^3 change of the stream
    an_red = std::max(0.0, an_red - d_conc);
    an_ox += d_conc;
    cat_ox = std::max(0.0, cat_ox - d_conc);
    cat_red += d_conc;

    solution.axial_position_m.push_back(x);
    solution.axial_current_density_a_per_m2.push_back(local.external_current_density);
  }

  solution.current_a = total_current;
  solution.power_w = total_current * cell_voltage_v;
  solution.mean_current_density_a_per_m2 =
      total_current / geometry_.projected_electrode_area_m2();
  solution.crossover_current_a = parasitic_total;
  const double outlet_fuel_flow = an_red * half_flow;
  solution.fuel_utilization =
      (inlet_fuel_flow > 0.0) ? (inlet_fuel_flow - outlet_fuel_flow) / inlet_fuel_flow : 0.0;
  solution.vanadium_balance_error = 0.0;  // conserved exactly by construction
  solution.clamped_station_fraction = static_cast<double>(clamped) / axial_steps_;
  return solution;
}

}  // namespace brightsi::flowcell
