#include "flowcell/wall_closure.h"

#include <algorithm>
#include <cmath>

#include "electrochem/butler_volmer.h"
#include "electrochem/constants.h"
#include "electrochem/nernst.h"
#include "numerics/contracts.h"
#include "numerics/root_finding.h"

namespace brightsi::flowcell {
namespace {

namespace ec = brightsi::electrochem;

constexpr double kFloor = ec::kConcentrationFloorMolPerM3;
constexpr double kBracketSafety = 0.999;

/// Everything needed to evaluate V_model(i_total) at one station.
struct StationModel {
  const ClosureParameters& p;
  const WallConcentrations& w;
  double n_f;  // n F (single-electron couples here, n = 1)

  [[nodiscard]] double cell_voltage_at(double i_total) const {
    // Surface concentrations from the wall flux balance.
    const double d_an = i_total / (n_f * p.anode_wall_mass_transfer_m_per_s);
    const double d_cat = i_total / (n_f * p.cathode_wall_mass_transfer_m_per_s);
    const double an_red_s = std::max(w.anode_reduced - d_an, kFloor);
    const double an_ox_s = std::max(w.anode_oxidized + d_an, kFloor);
    const double cat_ox_s = std::max(w.cathode_oxidized - d_cat, kFloor);
    const double cat_red_s = std::max(w.cathode_reduced + d_cat, kFloor);

    const double an_red_b = std::max(w.anode_reduced, kFloor);
    const double an_ox_b = std::max(w.anode_oxidized, kFloor);
    const double cat_ox_b = std::max(w.cathode_oxidized, kFloor);
    const double cat_red_b = std::max(w.cathode_reduced, kFloor);

    // Anode runs anodically at +i_total.
    ec::ButlerVolmerState an_state;
    an_state.exchange_current_density_a_per_m2 = p.anode_exchange_current_a_per_m2;
    an_state.anodic_transfer_coefficient = p.anode_alpha;
    an_state.temperature_k = p.temperature_k;
    an_state.reduced_surface_ratio = an_red_s / an_red_b;
    an_state.oxidized_surface_ratio = an_ox_s / an_ox_b;
    const double eta_an = ec::overpotential_for_current(an_state, i_total);

    // Cathode runs cathodically at -i_total.
    ec::ButlerVolmerState cat_state;
    cat_state.exchange_current_density_a_per_m2 = p.cathode_exchange_current_a_per_m2;
    cat_state.anodic_transfer_coefficient = p.cathode_alpha;
    cat_state.temperature_k = p.temperature_k;
    cat_state.reduced_surface_ratio = cat_red_s / cat_red_b;
    cat_state.oxidized_surface_ratio = cat_ox_s / cat_ox_b;
    const double eta_cat = ec::overpotential_for_current(cat_state, -i_total);

    const ec::RedoxCouple an_couple{"", p.anode_standard_potential_v, 1, p.anode_alpha};
    const ec::RedoxCouple cat_couple{"", p.cathode_standard_potential_v, 1, p.cathode_alpha};
    const double e_an = ec::nernst_potential(an_couple, an_ox_b, an_red_b, p.temperature_k);
    const double e_cat = ec::nernst_potential(cat_couple, cat_ox_b, cat_red_b, p.temperature_k);

    return (e_cat + eta_cat) - (e_an + eta_an) -
           i_total * p.area_specific_resistance_ohm_m2;
  }

  void overpotentials(double i_total, double* eta_an, double* eta_cat,
                      double* local_ocv) const {
    // Re-evaluates the pieces for reporting (same algebra as above).
    const double an_red_b = std::max(w.anode_reduced, kFloor);
    const double an_ox_b = std::max(w.anode_oxidized, kFloor);
    const double cat_ox_b = std::max(w.cathode_oxidized, kFloor);
    const double cat_red_b = std::max(w.cathode_reduced, kFloor);
    const ec::RedoxCouple an_couple{"", p.anode_standard_potential_v, 1, p.anode_alpha};
    const ec::RedoxCouple cat_couple{"", p.cathode_standard_potential_v, 1, p.cathode_alpha};
    const double e_an = ec::nernst_potential(an_couple, an_ox_b, an_red_b, p.temperature_k);
    const double e_cat = ec::nernst_potential(cat_couple, cat_ox_b, cat_red_b, p.temperature_k);
    *local_ocv = e_cat - e_an;

    const double d_an = i_total / (n_f * p.anode_wall_mass_transfer_m_per_s);
    const double d_cat = i_total / (n_f * p.cathode_wall_mass_transfer_m_per_s);
    ec::ButlerVolmerState an_state;
    an_state.exchange_current_density_a_per_m2 = p.anode_exchange_current_a_per_m2;
    an_state.anodic_transfer_coefficient = p.anode_alpha;
    an_state.temperature_k = p.temperature_k;
    an_state.reduced_surface_ratio = std::max(w.anode_reduced - d_an, kFloor) / an_red_b;
    an_state.oxidized_surface_ratio = std::max(w.anode_oxidized + d_an, kFloor) / an_ox_b;
    *eta_an = ec::overpotential_for_current(an_state, i_total);

    ec::ButlerVolmerState cat_state;
    cat_state.exchange_current_density_a_per_m2 = p.cathode_exchange_current_a_per_m2;
    cat_state.anodic_transfer_coefficient = p.cathode_alpha;
    cat_state.temperature_k = p.temperature_k;
    cat_state.oxidized_surface_ratio = std::max(w.cathode_oxidized - d_cat, kFloor) / cat_ox_b;
    cat_state.reduced_surface_ratio = std::max(w.cathode_reduced + d_cat, kFloor) / cat_red_b;
    *eta_cat = ec::overpotential_for_current(cat_state, -i_total);
  }
};

}  // namespace

ClosureResult solve_wall_current(const ClosureParameters& params, const WallConcentrations& wall,
                                 double cell_voltage_v) {
  ensure_positive(params.temperature_k, "closure temperature");
  ensure_positive(params.anode_wall_mass_transfer_m_per_s, "anode wall mass transfer");
  ensure_positive(params.cathode_wall_mass_transfer_m_per_s, "cathode wall mass transfer");
  ensure_non_negative(params.area_specific_resistance_ohm_m2, "area specific resistance");

  const double n_f = ec::constants::faraday_c_per_mol;  // single-electron couples

  ClosureResult result;

  // Discharge bracket: surface depletion of the consumed species on either
  // electrode, then the per-step mass caps.
  double i_hi = kBracketSafety * n_f *
                std::min(params.anode_wall_mass_transfer_m_per_s * wall.anode_reduced,
                         params.cathode_wall_mass_transfer_m_per_s * wall.cathode_oxidized);
  if (params.anodic_mass_cap_a_per_m2 > 0.0) {
    i_hi = std::min(i_hi, params.anodic_mass_cap_a_per_m2);
  }
  // Charge bracket (negative current): the other two species deplete.
  double i_lo = -kBracketSafety * n_f *
                std::min(params.anode_wall_mass_transfer_m_per_s * wall.anode_oxidized,
                         params.cathode_wall_mass_transfer_m_per_s * wall.cathode_reduced);
  if (params.cathodic_mass_cap_a_per_m2 > 0.0) {
    i_lo = std::max(i_lo, -params.cathodic_mass_cap_a_per_m2);
  }

  if (!(i_hi > 0.0) && !(i_lo < 0.0)) {
    // Station fully depleted in both directions; nothing can flow.
    return result;
  }

  // Exchange currents can be zero when a wall concentration is zero (the
  // closed-circuit current is then bracketed to ~0 anyway); floor them so
  // the kinetics stay evaluable.
  const double i0_floor = 1e-12;
  ClosureParameters p = params;
  p.anode_exchange_current_a_per_m2 =
      std::max(p.anode_exchange_current_a_per_m2, i0_floor);
  p.cathode_exchange_current_a_per_m2 =
      std::max(p.cathode_exchange_current_a_per_m2, i0_floor);
  StationModel floored{p, wall, n_f};

  auto g = [&](double i_total) { return floored.cell_voltage_at(i_total) - cell_voltage_v; };

  double i_solution;
  const double g_lo = g(i_lo);
  const double g_hi = g(i_hi);
  if (g_hi >= 0.0) {
    // Even at the transport limit the cell voltage exceeds the demand:
    // the station is pinned at its limiting current.
    i_solution = i_hi;
    result.clamped = true;
  } else if (g_lo <= 0.0) {
    // Even maximal charging cannot raise the voltage to V_cell (deeply
    // depleted station asked to charge): pin at the bracket.
    i_solution = i_lo;
    result.clamped = true;
  } else {
    const auto root = numerics::find_root_brent(g, i_lo, i_hi, 1e-10, 1e-9);
    i_solution = root.root;
  }

  result.total_current_density = i_solution;
  result.external_current_density = i_solution - p.parasitic_current_density_a_per_m2;
  floored.overpotentials(i_solution, &result.anode_overpotential_v,
                         &result.cathode_overpotential_v, &result.local_open_circuit_v);
  return result;
}

}  // namespace brightsi::flowcell
