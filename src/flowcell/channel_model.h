// Abstract interface of a single-channel flow-cell model plus the factory
// that picks the right implementation for a geometry:
//   * kPlanarWall  -> ColaminarChannelModel (depth-averaged marching FVM)
//   * kFlowThrough -> FilmChannelModel (plug streams through porous
//                     electrodes; boundary layers do not apply)
#ifndef BRIGHTSI_FLOWCELL_CHANNEL_MODEL_H
#define BRIGHTSI_FLOWCELL_CHANNEL_MODEL_H

#include <memory>

#include "electrochem/species.h"
#include "flowcell/channel_solution.h"
#include "flowcell/channel_spec.h"

namespace brightsi::flowcell {

/// Interface shared by the transport models.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  [[nodiscard]] virtual ChannelSolution solve_at_voltage(
      double cell_voltage_v, const ChannelOperatingConditions& conditions) const = 0;
  [[nodiscard]] virtual double open_circuit_voltage(
      const ChannelOperatingConditions& conditions) const = 0;
  [[nodiscard]] virtual const CellGeometry& geometry() const = 0;
  [[nodiscard]] virtual const electrochem::FlowCellChemistry& chemistry() const = 0;
};

/// Builds the model matching `geometry.electrode_mode`.
[[nodiscard]] std::unique_ptr<ChannelModel> make_channel_model(
    const CellGeometry& geometry, const electrochem::FlowCellChemistry& chemistry,
    const FvmSettings& settings = {});

}  // namespace brightsi::flowcell

#endif  // BRIGHTSI_FLOWCELL_CHANNEL_MODEL_H
