// Reference polarization data for the Fig. 3 validation.
//
// PROVENANCE. The paper validates its COMSOL model against experimental
// polarization measurements of Kjeang et al. 2007 (planar graphite-rod
// co-laminar cell) at four flow rates. We do not have the original
// measurement files; the points below were digitized approximately from
// Fig. 3 of the DATE-14 paper (axis range 0-50 mA/cm^2, 0.1-1.3 V), with
// the curve shapes constrained by the cell physics the paper documents
// (Table I parameters). Digitization precision is limited; the validation
// bench therefore reports per-point model-vs-reference errors exactly like
// the paper's "within 10 %" claim rather than asserting point equality.
// See DESIGN.md, substitution table.
#ifndef BRIGHTSI_FLOWCELL_REFERENCE_DATA_H
#define BRIGHTSI_FLOWCELL_REFERENCE_DATA_H

#include <span>
#include <vector>

namespace brightsi::flowcell {

/// One digitized reference sample.
struct ReferencePoint {
  double current_density_ma_per_cm2 = 0.0;
  double cell_voltage_v = 0.0;
};

/// One experimental polarization curve at a fixed flow rate.
struct ReferenceCurve {
  double flow_rate_ul_per_min = 0.0;
  std::vector<ReferencePoint> points;  ///< ascending current density
};

/// The four Fig. 3 curves: 2.5, 10, 60 and 300 uL/min.
[[nodiscard]] const std::vector<ReferenceCurve>& fig3_reference_curves();

}  // namespace brightsi::flowcell

#endif  // BRIGHTSI_FLOWCELL_REFERENCE_DATA_H
