// Polarization curves (cell voltage vs current) and operating-point queries
// on top of any channel model. This is the quantity the paper validates in
// Fig. 3 and reports for the array in Fig. 7.
#ifndef BRIGHTSI_FLOWCELL_POLARIZATION_H
#define BRIGHTSI_FLOWCELL_POLARIZATION_H

#include <vector>

#include "flowcell/channel_model.h"

namespace brightsi::flowcell {

/// One (V, I) sample of a polarization sweep.
struct PolarizationPoint {
  double cell_voltage_v = 0.0;
  double current_a = 0.0;
  double current_density_a_per_m2 = 0.0;  ///< per projected electrode area
  double power_w = 0.0;
};

/// A swept polarization curve, stored with descending voltage (ascending
/// current).
class PolarizationCurve {
 public:
  PolarizationCurve() = default;
  explicit PolarizationCurve(std::vector<PolarizationPoint> points);

  [[nodiscard]] const std::vector<PolarizationPoint>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Linear interpolation of current at a voltage inside the sweep range.
  [[nodiscard]] double current_at_voltage(double v) const;
  /// Linear interpolation of voltage at a current inside the sweep range.
  [[nodiscard]] double voltage_at_current(double current_a) const;
  /// The maximum-power sample of the sweep.
  [[nodiscard]] PolarizationPoint max_power_point() const;
  /// Highest swept voltage (lowest-current end of the curve).
  [[nodiscard]] double open_circuit_estimate_v() const;

 private:
  std::vector<PolarizationPoint> points_;
};

/// Sweeps `model` from just below OCV down to `min_voltage_v` in
/// `point_count` evenly spaced voltages.
[[nodiscard]] PolarizationCurve sweep_polarization(const ChannelModel& model,
                                                   const ChannelOperatingConditions& conditions,
                                                   double min_voltage_v, int point_count);

}  // namespace brightsi::flowcell

#endif  // BRIGHTSI_FLOWCELL_POLARIZATION_H
