// Geometry and operating conditions of one co-laminar flow-cell channel.
//
// The abstraction (paper Fig. 2): fuel (anolyte) and oxidant (catholyte)
// enter side by side and flow down the channel; the anode wall is at y = 0,
// the cathode wall at y = gap; the co-laminar interface sits at y = gap/2.
// The electrode area seen by the reaction is length x height, optionally
// multiplied by `electrode_area_factor` for non-planar electrodes (the
// validation cell of Kjeang 2007 uses graphite rods whose exposed surface
// exceeds the flat side-wall area).
#ifndef BRIGHTSI_FLOWCELL_CHANNEL_SPEC_H
#define BRIGHTSI_FLOWCELL_CHANNEL_SPEC_H

#include <vector>

#include "hydraulics/duct.h"

namespace brightsi::flowcell {

/// Electrode construction of the cell.
enum class ElectrodeMode {
  /// Solid electrode walls; species reach them by transverse diffusion
  /// (Leveque-type transport limit). The validation cell of Fig. 3.
  kPlanarWall,
  /// Porous flow-through electrodes: the stream passes through the
  /// electrode volume, so transport is utilization-limited instead of
  /// boundary-layer-limited. This is the only electrode construction that
  /// reaches the paper's Fig. 7 array magnitudes (tens of amperes; see
  /// EXPERIMENTS.md discussion) and matches the high-power flow-through
  /// literature the paper cites ([15], Lee et al. 2013).
  kFlowThrough,
};

/// Channel geometry. Widths/heights/lengths in meters.
struct CellGeometry {
  double electrode_gap_m = 0.0;    ///< anode-to-cathode distance (channel width)
  double channel_height_m = 0.0;   ///< etch depth (electrode height)
  double channel_length_m = 0.0;   ///< flow length
  double electrode_area_factor = 1.0;  ///< true-to-projected electrode area ratio
  ElectrodeMode electrode_mode = ElectrodeMode::kPlanarWall;
  /// Extra series resistance per projected electrode area (ohm.m^2) on top
  /// of the plain gap/sigma term: porous-electrode ionic paths, lateral
  /// electrolyte paths, contacts.
  double series_resistance_ohm_m2 = 0.0;
  /// When true (default) the series resistance is ionic and scales with
  /// the electrolyte conductivity law sigma(T) — the dominant resistance
  /// in membrane-less flow cells is electrolytic, which is what makes the
  /// generated power rise when the coolant runs hot (paper Section III-B).
  bool series_resistance_is_ionic = true;
  /// Effective mass-transfer coefficient of flow-through electrodes
  /// (m/s); only used in kFlowThrough mode.
  double flow_through_mass_transfer_m_per_s = 2e-3;

  /// Projected electrode area (per electrode): length x height.
  [[nodiscard]] double projected_electrode_area_m2() const {
    return channel_length_m * channel_height_m;
  }
  /// Flow cross-section gap x height.
  [[nodiscard]] double cross_section_area_m2() const {
    return electrode_gap_m * channel_height_m;
  }
  /// Equivalent hydraulic duct (width = electrode gap).
  [[nodiscard]] hydraulics::RectangularDuct duct() const {
    return hydraulics::RectangularDuct(electrode_gap_m, channel_height_m, channel_length_m);
  }

  void validate() const;
};

/// Paper Table I validation-cell geometry (Kjeang 2007): 33 mm x 2 mm x
/// 150 um. The area factor accounts for the cylindrical graphite-rod
/// electrodes exposing more surface than a flat 150 um side wall
/// (calibrated; see DESIGN.md substitutions).
[[nodiscard]] CellGeometry kjeang2007_geometry();

/// Paper Table II array-channel geometry: 22 mm long, 200 um electrode gap,
/// 400 um height.
[[nodiscard]] CellGeometry power7_channel_geometry();

/// Per-channel operating conditions.
struct ChannelOperatingConditions {
  /// Total volumetric flow through the channel (both streams), m^3/s.
  double volumetric_flow_m3_per_s = 0.0;
  double inlet_temperature_k = 300.0;
  /// Optional axial fluid temperature profile (uniformly sampled over the
  /// channel length, inlet to outlet). Empty means isothermal at
  /// `inlet_temperature_k`. Produced by the thermal model in co-simulation.
  std::vector<double> axial_temperature_k;
  /// Internal self-discharge (crossover/mixed-potential) current density in
  /// A/m^2 of projected electrode area; both electrode reactions run this
  /// much faster than the external current. Zero disables.
  double parasitic_current_density_a_per_m2 = 0.0;

  void validate() const;

  /// Temperature at normalized axial position s in [0, 1].
  [[nodiscard]] double temperature_at(double normalized_position) const;
};

/// Discretization controls for the marching FVM.
struct FvmSettings {
  int transverse_cells = 120;  ///< cells across the electrode gap
  int axial_steps = 200;       ///< implicit marching steps along the channel
  void validate() const;
};

}  // namespace brightsi::flowcell

#endif  // BRIGHTSI_FLOWCELL_CHANNEL_SPEC_H
