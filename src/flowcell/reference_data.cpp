#include "flowcell/reference_data.h"

namespace brightsi::flowcell {

const std::vector<ReferenceCurve>& fig3_reference_curves() {
  // Digitized approximately from Fig. 3 (see header provenance note).
  // Each curve: gentle activation/ohmic decline from the ~1.43 V Nernst
  // OCV, then the flow-rate-ordered mass-transport plateau, all within the
  // figure's 0-50 mA/cm^2 frame. Points are (current density, voltage),
  // ascending in current; validation compares model current at each
  // reference voltage, mirroring the paper's "within 10 %" claim.
  static const std::vector<ReferenceCurve> curves = {
      {2.5,
       {{1.22, 1.30},
        {3.45, 1.20},
        {5.30, 1.10},
        {5.50, 0.90},
        {5.55, 0.60},
        {5.60, 0.30}}},
      {10.0,
       {{1.85, 1.30},
        {5.00, 1.20},
        {8.50, 1.10},
        {10.70, 1.00},
        {11.50, 0.90},
        {11.60, 0.60},
        {11.70, 0.30}}},
      {60.0,
       {{2.90, 1.30},
        {7.60, 1.20},
        {12.00, 1.10},
        {16.50, 1.00},
        {21.00, 0.90},
        {24.50, 0.80},
        {25.40, 0.70},
        {26.00, 0.50},
        {26.30, 0.30}}},
      {300.0,
       {{4.00, 1.30},
        {9.60, 1.20},
        {15.50, 1.10},
        {20.40, 1.00},
        {26.50, 0.90},
        {34.20, 0.80},
        {40.00, 0.70},
        {44.80, 0.60},
        {47.00, 0.50},
        {49.50, 0.30}}},
  };
  return curves;
}

}  // namespace brightsi::flowcell
