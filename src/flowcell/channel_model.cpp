#include "flowcell/channel_model.h"

#include "flowcell/colaminar_fvm.h"
#include "flowcell/film_model.h"

namespace brightsi::flowcell {

std::unique_ptr<ChannelModel> make_channel_model(const CellGeometry& geometry,
                                                 const electrochem::FlowCellChemistry& chemistry,
                                                 const FvmSettings& settings) {
  geometry.validate();
  if (geometry.electrode_mode == ElectrodeMode::kFlowThrough) {
    return std::make_unique<FilmChannelModel>(geometry, chemistry, settings.axial_steps);
  }
  return std::make_unique<ColaminarChannelModel>(geometry, chemistry, settings);
}

}  // namespace brightsi::flowcell
