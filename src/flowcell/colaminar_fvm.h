// Depth-averaged finite-volume model of a co-laminar redox flow cell.
//
// This is the project's COMSOL replacement (DESIGN.md substitution table).
// The 3-D steady problem (Navier-Stokes + Nernst-Planck + Butler-Volmer,
// paper eqs. 6-12) reduces, at the channel Peclet numbers of the paper, to
// a parabolic transport problem marched along the flow direction:
//
//   u_bar(y) dC/dx = D(T(x)) d2C/dy2     for each redox species,
//
// with the exact rectangular-duct velocity profile depth-averaged over the
// channel height, Butler-Volmer/Nernst wall closure at both electrodes
// (wall_closure.h) and instantaneous annihilation of crossover species at
// the co-laminar interface. Each march step solves one tridiagonal system
// per species (backward Euler, unconditionally stable).
//
// Outputs: total current at a given cell voltage, axial current-density
// profile, outlet composition, crossover loss, fuel utilization and
// conservation diagnostics.
#ifndef BRIGHTSI_FLOWCELL_COLAMINAR_FVM_H
#define BRIGHTSI_FLOWCELL_COLAMINAR_FVM_H

#include <vector>

#include "electrochem/species.h"
#include "flowcell/channel_model.h"
#include "flowcell/channel_solution.h"
#include "flowcell/channel_spec.h"

namespace brightsi::flowcell {

/// Marching FVM for a single co-laminar channel with planar wall
/// electrodes. Requires geometry.electrode_mode == kPlanarWall.
class ColaminarChannelModel final : public ChannelModel {
 public:
  ColaminarChannelModel(CellGeometry geometry, electrochem::FlowCellChemistry chemistry,
                        FvmSettings settings = {});

  /// Solves the channel at a fixed cell voltage.
  [[nodiscard]] ChannelSolution solve_at_voltage(
      double cell_voltage_v, const ChannelOperatingConditions& conditions) const override;

  /// Nernst OCV at the inlet composition and temperature.
  [[nodiscard]] double open_circuit_voltage(
      const ChannelOperatingConditions& conditions) const override;

  [[nodiscard]] const CellGeometry& geometry() const override { return geometry_; }
  [[nodiscard]] const electrochem::FlowCellChemistry& chemistry() const override {
    return chemistry_;
  }
  [[nodiscard]] const FvmSettings& settings() const { return settings_; }

 private:
  CellGeometry geometry_;
  electrochem::FlowCellChemistry chemistry_;
  FvmSettings settings_;
  /// Normalized depth-averaged velocity at each transverse cell center,
  /// scaled so the discrete mean is exactly 1.
  std::vector<double> velocity_shape_;

  void build_velocity_shape();
};

}  // namespace brightsi::flowcell

#endif  // BRIGHTSI_FLOWCELL_COLAMINAR_FVM_H
