#include "flowcell/cell_array.h"

#include <cmath>

#include "electrochem/nernst.h"
#include "numerics/contracts.h"
#include "numerics/root_finding.h"

namespace brightsi::flowcell {

void ArraySpec::validate() const {
  ensure(channel_count > 0, "array channel count must be positive");
  geometry.validate();
  ensure_positive(total_flow_m3_per_s, "array total flow");
  ensure_positive(inlet_temperature_k, "array inlet temperature");
  ensure_non_negative(parasitic_current_density_a_per_m2, "array parasitic current density");
}

ArraySpec power7_array_spec() {
  ArraySpec spec;
  spec.channel_count = 88;                    // Table II
  spec.geometry = power7_channel_geometry();  // 22 mm x 200 um x 400 um
  spec.total_flow_m3_per_s = 676e-6 / 60.0;   // 676 ml/min
  spec.inlet_temperature_k = 300.0;           // 27 C inlet
  spec.validate();
  return spec;
}

FlowCellArray::FlowCellArray(ArraySpec spec, electrochem::FlowCellChemistry chemistry,
                             FvmSettings settings)
    : spec_(spec), channel_model_(make_channel_model(spec.geometry, chemistry, settings)) {
  spec_.validate();
}

ChannelOperatingConditions FlowCellArray::make_conditions(
    const std::vector<double>& temperature_profile) const {
  ChannelOperatingConditions conditions;
  conditions.volumetric_flow_m3_per_s = spec_.per_channel_flow();
  conditions.inlet_temperature_k = spec_.inlet_temperature_k;
  conditions.axial_temperature_k = temperature_profile;
  conditions.parasitic_current_density_a_per_m2 = spec_.parasitic_current_density_a_per_m2;
  return conditions;
}

double FlowCellArray::current_at_voltage(double cell_voltage_v,
                                         const std::vector<double>& shared_profile) const {
  const ChannelSolution sol =
      channel_model_->solve_at_voltage(cell_voltage_v, make_conditions(shared_profile));
  return sol.current_a * spec_.channel_count;
}

double FlowCellArray::current_at_voltage_per_channel(
    double cell_voltage_v, const std::vector<std::vector<double>>& per_channel_profiles) const {
  ensure(static_cast<int>(per_channel_profiles.size()) == spec_.channel_count,
         "per-channel profile count must equal channel count");
  double total = 0.0;
  for (const auto& profile : per_channel_profiles) {
    total += channel_model_->solve_at_voltage(cell_voltage_v, make_conditions(profile)).current_a;
  }
  return total;
}

PolarizationCurve FlowCellArray::sweep(double min_voltage_v, int point_count,
                                       const std::vector<double>& shared_profile) const {
  ensure(point_count >= 2, "array sweep needs at least two points");
  const ChannelOperatingConditions conditions = make_conditions(shared_profile);
  const double ocv = channel_model_->open_circuit_voltage(conditions);
  ensure(min_voltage_v < ocv, "array sweep: min voltage must be below OCV");

  const double v_start = ocv - 1e-4;
  std::vector<PolarizationPoint> points;
  points.reserve(static_cast<std::size_t>(point_count));
  const double electrode_area =
      spec_.geometry.projected_electrode_area_m2() * spec_.channel_count;
  for (int k = 0; k < point_count; ++k) {
    const double v =
        v_start + (min_voltage_v - v_start) * static_cast<double>(k) / (point_count - 1);
    const ChannelSolution sol = channel_model_->solve_at_voltage(v, conditions);
    const double current = sol.current_a * spec_.channel_count;
    points.push_back({v, current, current / electrode_area, current * v});
  }
  return PolarizationCurve(std::move(points));
}

double FlowCellArray::voltage_at_current(double target_current_a, double min_voltage_v,
                                         const std::vector<double>& shared_profile) const {
  ensure_positive(target_current_a, "target current");
  const ChannelOperatingConditions conditions = make_conditions(shared_profile);
  const double ocv = channel_model_->open_circuit_voltage(conditions);

  auto residual = [&](double v) {
    return channel_model_->solve_at_voltage(v, conditions).current_a * spec_.channel_count -
           target_current_a;
  };
  const double hi = ocv - 1e-4;
  if (residual(hi) >= 0.0) {
    return hi;  // target met even at (essentially) open circuit
  }
  if (residual(min_voltage_v) < 0.0) {
    throw std::runtime_error(
        "FlowCellArray::voltage_at_current: target exceeds array capability");
  }
  const auto root = numerics::find_root_brent(residual, min_voltage_v, hi, 1e-6,
                                              1e-4 * target_current_a, 64);
  return root.root;
}

double FlowCellArray::open_circuit_voltage() const {
  return channel_model_->open_circuit_voltage(make_conditions({}));
}

FlowCellArray::Hydraulics FlowCellArray::hydraulics_at_spec_flow() const {
  Hydraulics h;
  const hydraulics::RectangularDuct duct = spec_.geometry.duct();
  const double per_channel = spec_.per_channel_flow();
  h.mean_velocity_m_per_s = duct.mean_velocity(per_channel);
  const double mu = channel_model_->chemistry().electrolyte.dynamic_viscosity_pa_s.at(
      spec_.inlet_temperature_k);
  const double rho =
      channel_model_->chemistry().electrolyte.density_kg_per_m3.at(spec_.inlet_temperature_k);
  h.pressure_drop_pa = duct.pressure_drop_pa(mu, h.mean_velocity_m_per_s);
  h.pressure_gradient_pa_per_m = duct.pressure_gradient_pa_per_m(mu, h.mean_velocity_m_per_s);
  h.reynolds = duct.reynolds(rho, mu, h.mean_velocity_m_per_s);
  return h;
}

}  // namespace brightsi::flowcell
