#include "flowcell/polarization.h"

#include <algorithm>
#include <cmath>

#include "numerics/contracts.h"

namespace brightsi::flowcell {

PolarizationCurve::PolarizationCurve(std::vector<PolarizationPoint> points)
    : points_(std::move(points)) {
  ensure(points_.size() >= 2, "PolarizationCurve needs at least two points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    ensure(points_[i].cell_voltage_v < points_[i - 1].cell_voltage_v,
           "PolarizationCurve voltages must be strictly descending");
  }
}

double PolarizationCurve::current_at_voltage(double v) const {
  ensure(!points_.empty(), "empty polarization curve");
  if (v >= points_.front().cell_voltage_v) {
    return points_.front().current_a;
  }
  if (v <= points_.back().cell_voltage_v) {
    return points_.back().current_a;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (v >= points_[i].cell_voltage_v) {
      const double v0 = points_[i - 1].cell_voltage_v;
      const double v1 = points_[i].cell_voltage_v;
      const double t = (v - v0) / (v1 - v0);
      return points_[i - 1].current_a + t * (points_[i].current_a - points_[i - 1].current_a);
    }
  }
  return points_.back().current_a;
}

double PolarizationCurve::voltage_at_current(double current_a) const {
  ensure(!points_.empty(), "empty polarization curve");
  if (current_a <= points_.front().current_a) {
    return points_.front().cell_voltage_v;
  }
  if (current_a >= points_.back().current_a) {
    return points_.back().cell_voltage_v;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (current_a <= points_[i].current_a) {
      const double i0 = points_[i - 1].current_a;
      const double i1 = points_[i].current_a;
      const double t = (i1 == i0) ? 0.0 : (current_a - i0) / (i1 - i0);
      return points_[i - 1].cell_voltage_v +
             t * (points_[i].cell_voltage_v - points_[i - 1].cell_voltage_v);
    }
  }
  return points_.back().cell_voltage_v;
}

PolarizationPoint PolarizationCurve::max_power_point() const {
  ensure(!points_.empty(), "empty polarization curve");
  return *std::max_element(points_.begin(), points_.end(),
                           [](const PolarizationPoint& a, const PolarizationPoint& b) {
                             return a.power_w < b.power_w;
                           });
}

double PolarizationCurve::open_circuit_estimate_v() const {
  ensure(!points_.empty(), "empty polarization curve");
  return points_.front().cell_voltage_v;
}

PolarizationCurve sweep_polarization(const ChannelModel& model,
                                     const ChannelOperatingConditions& conditions,
                                     double min_voltage_v, int point_count) {
  ensure(point_count >= 2, "sweep_polarization needs at least two points");
  const double ocv = model.open_circuit_voltage(conditions);
  ensure(min_voltage_v < ocv, "sweep_polarization: min voltage must be below OCV");

  // Start marginally below OCV so the first point carries (near) zero
  // current but remains a discharge point.
  const double v_start = ocv - 1e-4;
  std::vector<PolarizationPoint> points;
  points.reserve(static_cast<std::size_t>(point_count));
  for (int k = 0; k < point_count; ++k) {
    const double v = v_start + (min_voltage_v - v_start) * static_cast<double>(k) /
                                   (point_count - 1);
    const ChannelSolution sol = model.solve_at_voltage(v, conditions);
    points.push_back({v, sol.current_a, sol.mean_current_density_a_per_m2, sol.power_w});
  }
  return PolarizationCurve(std::move(points));
}

}  // namespace brightsi::flowcell
