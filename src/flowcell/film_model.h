// Analytic plug-flow film model of the flow cell.
//
// Two roles:
//   * kPlanarWall geometries: classic electrochemical-engineering
//     cross-check of the FVM — plug flow at the mean velocity, a
//     Leveque-type concentration film delta(x) = sqrt(pi D x / v) at each
//     electrode, 1-D bulk depletion along the channel, and the same
//     Butler-Volmer/Nernst/ohmic closure per station. Expected to agree
//     with the FVM at the tens-of-percent level.
//   * kFlowThrough geometries: the primary model. Porous flow-through
//     electrodes contact the bulk stream directly, so the film is replaced
//     by the (large) effective porous-medium mass-transfer coefficient and
//     the per-station utilization cap; transport is stream-availability
//     limited, matching the high-power flow-through cells the paper cites.
#ifndef BRIGHTSI_FLOWCELL_FILM_MODEL_H
#define BRIGHTSI_FLOWCELL_FILM_MODEL_H

#include "flowcell/channel_model.h"

namespace brightsi::flowcell {

/// Plug-flow station model; see file comment for the two electrode modes.
class FilmChannelModel final : public ChannelModel {
 public:
  FilmChannelModel(CellGeometry geometry, electrochem::FlowCellChemistry chemistry,
                   int axial_steps = 200);

  [[nodiscard]] ChannelSolution solve_at_voltage(
      double cell_voltage_v, const ChannelOperatingConditions& conditions) const override;

  [[nodiscard]] double open_circuit_voltage(
      const ChannelOperatingConditions& conditions) const override;

  [[nodiscard]] const CellGeometry& geometry() const override { return geometry_; }
  [[nodiscard]] const electrochem::FlowCellChemistry& chemistry() const override {
    return chemistry_;
  }

 private:
  CellGeometry geometry_;
  electrochem::FlowCellChemistry chemistry_;
  int axial_steps_;
};

}  // namespace brightsi::flowcell

#endif  // BRIGHTSI_FLOWCELL_FILM_MODEL_H
