// Planar geometry primitives for floorplans and field maps. All lengths in
// meters (SI); helpers convert the paper's mm/cm figures at the call site.
#ifndef BRIGHTSI_CHIP_GEOMETRY_H
#define BRIGHTSI_CHIP_GEOMETRY_H

#include <algorithm>

namespace brightsi::chip {

/// Axis-aligned rectangle: origin at the lower-left corner.
struct Rect {
  double x = 0.0;       ///< left edge, m
  double y = 0.0;       ///< bottom edge, m
  double width = 0.0;   ///< m
  double height = 0.0;  ///< m

  [[nodiscard]] double right() const { return x + width; }
  [[nodiscard]] double top() const { return y + height; }
  [[nodiscard]] double area() const { return width * height; }
  [[nodiscard]] double center_x() const { return x + width / 2.0; }
  [[nodiscard]] double center_y() const { return y + height / 2.0; }

  [[nodiscard]] bool contains(double px, double py) const {
    return px >= x && px <= right() && py >= y && py <= top();
  }

  /// True when the interiors overlap (shared edges do not count).
  [[nodiscard]] bool overlaps(const Rect& other) const {
    return x < other.right() && other.x < right() && y < other.top() && other.y < top();
  }

  /// Area of the intersection with `other` (zero when disjoint).
  [[nodiscard]] double intersection_area(const Rect& other) const {
    const double w = std::min(right(), other.right()) - std::max(x, other.x);
    const double h = std::min(top(), other.top()) - std::max(y, other.y);
    return (w > 0.0 && h > 0.0) ? w * h : 0.0;
  }

  /// True when `other` lies fully inside (boundary-touching allowed).
  /// `tolerance` absorbs floating-point rounding of abutting edges.
  [[nodiscard]] bool contains_rect(const Rect& other, double tolerance = 1e-12) const {
    return other.x >= x - tolerance && other.right() <= right() + tolerance &&
           other.y >= y - tolerance && other.top() <= top() + tolerance;
  }
};

/// Millimeter-convenience constructor (the paper quotes block sizes in mm).
[[nodiscard]] inline Rect rect_mm(double x_mm, double y_mm, double width_mm, double height_mm) {
  return Rect{x_mm * 1e-3, y_mm * 1e-3, width_mm * 1e-3, height_mm * 1e-3};
}

/// W/cm^2 -> W/m^2 (the paper quotes power densities in W/cm^2).
[[nodiscard]] inline double w_per_cm2(double value) { return value * 1e4; }

}  // namespace brightsi::chip

#endif  // BRIGHTSI_CHIP_GEOMETRY_H
