#include "chip/workload.h"

#include <cmath>
#include <stdexcept>

#include "numerics/contracts.h"

namespace brightsi::chip {

void WorkloadPhase::validate() const {
  ensure(!name.empty(), "workload phase must be named");
  ensure_positive(duration_s, "phase duration");
  ensure_non_negative(core_activity, "core activity");
  ensure_non_negative(cache_activity, "cache activity");
  ensure_non_negative(logic_activity, "logic activity");
  ensure_non_negative(io_activity, "io activity");
}

WorkloadTrace::WorkloadTrace(std::vector<WorkloadPhase> phases, int repeats)
    : phases_(std::move(phases)), repeats_(repeats) {
  ensure(!phases_.empty(), "workload trace needs at least one phase");
  ensure(repeats >= 1, "workload repeats must be positive");
  for (const auto& phase : phases_) {
    phase.validate();
  }
}

double WorkloadTrace::total_duration_s() const {
  double once = 0.0;
  for (const auto& phase : phases_) {
    once += phase.duration_s;
  }
  return once * repeats_;
}

const WorkloadPhase& WorkloadTrace::phase_at(double t_s) const {
  ensure(!phases_.empty(), "empty workload trace");
  ensure_non_negative(t_s, "time");
  const double total = total_duration_s();
  if (t_s >= total) {
    throw std::out_of_range("WorkloadTrace::phase_at: time beyond the trace");
  }
  double once = total / repeats_;
  double local = std::fmod(t_s, once);
  for (const auto& phase : phases_) {
    if (local < phase.duration_s) {
      return phase;
    }
    local -= phase.duration_s;
  }
  return phases_.back();
}

Floorplan apply_phase(const Power7PowerSpec& spec, const WorkloadPhase& phase) {
  phase.validate();
  Power7PowerSpec scaled = spec;
  scaled.core_w_per_cm2 *= phase.core_activity;
  scaled.cache_w_per_cm2 *= phase.cache_activity;
  scaled.logic_w_per_cm2 *= phase.logic_activity;
  scaled.io_w_per_cm2 *= phase.io_activity;
  return make_power7_floorplan(scaled);
}

WorkloadTrace full_load_trace(double duration_s) {
  return WorkloadTrace({{"full-load", duration_s, 1.0, 1.0, 1.0, 1.0}});
}

WorkloadTrace burst_trace(int repeats) {
  return WorkloadTrace(
      {
          {"idle", 0.6, 0.15, 0.4, 0.5, 0.3},
          {"burst", 1.2, 1.0, 1.0, 1.0, 1.0},
          {"sustain", 1.2, 0.7, 0.9, 0.8, 0.8},
      },
      repeats);
}

WorkloadTrace memory_bound_trace(double duration_s) {
  // Outlook ref. [25]: compute throttled, memory system saturated.
  return WorkloadTrace({{"memory-bound", duration_s, 0.3, 1.0, 0.9, 1.0}});
}

}  // namespace brightsi::chip
