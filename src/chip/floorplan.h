// Block-level floorplan with per-block power densities.
//
// The floorplan is the shared substrate of the PDN model (which blocks load
// which rail) and the thermal model (heat-source map). Blocks must lie
// inside the die outline and be pairwise non-overlapping; area not covered
// by any block dissipates at a configurable background density ("random
// logic" between the named macros).
#ifndef BRIGHTSI_CHIP_FLOORPLAN_H
#define BRIGHTSI_CHIP_FLOORPLAN_H

#include <optional>
#include <string>
#include <vector>

#include "chip/geometry.h"

namespace brightsi::chip {

/// Functional class of a floorplan block; drives rail assignment and
/// workload scaling.
enum class BlockType {
  kCore,
  kL2Cache,
  kL3Cache,
  kLogic,
  kIo,
};

[[nodiscard]] const char* to_string(BlockType type);

/// True for the block types the paper powers from the microfluidic supply
/// (the L2 and L3 cache rail, Section III-A).
[[nodiscard]] inline bool is_cache(BlockType type) {
  return type == BlockType::kL2Cache || type == BlockType::kL3Cache;
}

/// One named macro on the die.
struct Block {
  std::string name;
  BlockType type = BlockType::kLogic;
  Rect footprint;                        ///< meters, within the die outline
  double power_density_w_per_m2 = 0.0;   ///< current operating density

  [[nodiscard]] double power_w() const { return power_density_w_per_m2 * footprint.area(); }
};

class Floorplan {
 public:
  /// Die outline in meters.
  Floorplan(double die_width_m, double die_height_m);

  /// Adds a block; throws std::invalid_argument when it leaves the die or
  /// overlaps an existing block.
  void add_block(Block block);

  [[nodiscard]] double die_width() const { return die_width_m_; }
  [[nodiscard]] double die_height() const { return die_height_m_; }
  [[nodiscard]] double die_area() const { return die_width_m_ * die_height_m_; }

  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  /// Lookup by name; nullptr when absent.
  [[nodiscard]] const Block* find(const std::string& name) const;

  /// Power density for die area not covered by any block.
  void set_background_power_density(double w_per_m2);
  [[nodiscard]] double background_power_density() const { return background_density_w_per_m2_; }

  /// Sets the density of one named block; throws when the name is unknown.
  void set_power_density(const std::string& name, double w_per_m2);

  /// Multiplies the density of every block of `type` by `factor` (DVFS-style
  /// activity scaling).
  void scale_power(BlockType type, double factor);

  /// Sets the density of every block of `type`.
  void set_power_density_for_type(BlockType type, double w_per_m2);

  [[nodiscard]] double area_of_type(BlockType type) const;
  [[nodiscard]] double power_of_type(BlockType type) const;
  /// Sum of L2 + L3 cache block areas (the microfluidic rail's load area).
  [[nodiscard]] double cache_area() const;
  [[nodiscard]] double cache_power() const;

  /// Total block power + background power over uncovered area.
  [[nodiscard]] double total_power() const;
  [[nodiscard]] double covered_area() const;

 private:
  double die_width_m_;
  double die_height_m_;
  double background_density_w_per_m2_ = 0.0;
  std::vector<Block> blocks_;
};

}  // namespace brightsi::chip

#endif  // BRIGHTSI_CHIP_FLOORPLAN_H
