// Workload scenarios: time-phased activity factors per block type, applied
// to a floorplan to drive transient thermal / co-simulation studies.
//
// Includes the paper-motivated presets: the full-load case of Fig. 9, an
// idle/burst/sustain duty cycle, and the "memory-bound microserver"
// scenario of the outlook (ref. [25], DOME microserver: cores throttled,
// caches busy).
#ifndef BRIGHTSI_CHIP_WORKLOAD_H
#define BRIGHTSI_CHIP_WORKLOAD_H

#include <string>
#include <vector>

#include "chip/floorplan.h"
#include "chip/power7.h"

namespace brightsi::chip {

/// Activity multipliers (0..1+) per block class for one phase.
struct WorkloadPhase {
  std::string name;
  double duration_s = 1.0;
  double core_activity = 1.0;
  double cache_activity = 1.0;
  double logic_activity = 1.0;
  double io_activity = 1.0;

  void validate() const;
};

/// A sequence of phases, optionally repeated.
class WorkloadTrace {
 public:
  WorkloadTrace() = default;
  explicit WorkloadTrace(std::vector<WorkloadPhase> phases, int repeats = 1);

  [[nodiscard]] const std::vector<WorkloadPhase>& phases() const { return phases_; }
  [[nodiscard]] int repeats() const { return repeats_; }
  [[nodiscard]] double total_duration_s() const;

  /// The phase active at time `t_s` (cycling through repeats). Throws when
  /// `t_s` exceeds the total duration.
  [[nodiscard]] const WorkloadPhase& phase_at(double t_s) const;

 private:
  std::vector<WorkloadPhase> phases_;
  int repeats_ = 1;
};

/// Floorplan with this phase's activities applied to the given power spec.
[[nodiscard]] Floorplan apply_phase(const Power7PowerSpec& spec, const WorkloadPhase& phase);

/// Presets.
[[nodiscard]] WorkloadTrace full_load_trace(double duration_s = 2.0);
[[nodiscard]] WorkloadTrace burst_trace(int repeats = 2);
/// Memory-bound microserver (outlook ref. [25]): cores at low activity,
/// caches and I/O fully busy.
[[nodiscard]] WorkloadTrace memory_bound_trace(double duration_s = 2.0);

}  // namespace brightsi::chip

#endif  // BRIGHTSI_CHIP_WORKLOAD_H
