// Block-level reconstruction of the IBM POWER7+ floorplan used in the
// paper's case study (Fig. 4 / Fig. 8): a 26.55 mm x 21.34 mm die with
// 8 cores in four corner quadrants (two cores per quadrant), an L2 slice
// beside each core, a large central eDRAM L3 band, logic strips on the left
// edge and I/O columns on the right edge.
//
// Exact macro outlines of the commercial die are not public; this
// reconstruction keeps the published die size, the topology visible in
// Fig. 8, and the paper's power figures:
//   * peak (core) power density 26.7 W/cm^2,
//   * an L2+L3 cache rail that draws 5 A at 1 V (Section III-A). The
//     reconstruction's cache area is 2.46 cm^2, so the default cache
//     density is 5 W / 2.46 cm^2 = 2.03 W/cm^2; the literal 1 W/cm^2 the
//     paper quotes (which with any realistic cache area yields < 3 A — see
//     DESIGN.md "known inconsistencies") is available as
//     `kPaperNominalCacheDensityWPerCm2`.
#ifndef BRIGHTSI_CHIP_POWER7_H
#define BRIGHTSI_CHIP_POWER7_H

#include "chip/floorplan.h"

namespace brightsi::chip {

/// Die outline, Section III of the paper.
inline constexpr double kPower7DieWidthM = 26.55e-3;
inline constexpr double kPower7DieHeightM = 21.34e-3;

/// Paper power figures (W/cm^2).
inline constexpr double kPower7PeakCoreDensityWPerCm2 = 26.7;
inline constexpr double kPaperNominalCacheDensityWPerCm2 = 1.0;
/// Cache rail target of Section III-A: 5 A at 1 V.
inline constexpr double kPaperCacheRailCurrentA = 5.0;
inline constexpr double kPaperCacheRailVoltageV = 1.0;

/// Power densities for the reconstruction. Defaults reproduce the paper's
/// operating point: cores at peak density and a cache rail drawing 5 A at
/// 1 V.
struct Power7PowerSpec {
  double core_w_per_cm2 = kPower7PeakCoreDensityWPerCm2;
  /// Set so cache_power == 5 W over the reconstruction's 2.46 cm^2.
  double cache_w_per_cm2 = 2.031;
  /// Uncore/controller strips (memory + PCIe controllers run hot).
  double logic_w_per_cm2 = 12.0;
  double io_w_per_cm2 = 3.0;
  /// Clock distribution / random logic between the macros.
  double background_w_per_cm2 = 5.0;
};

/// Builds the floorplan. Block names: core0..core7, l2_0..l2_7, l3_top,
/// l3_bot, logic_left, io_right.
[[nodiscard]] Floorplan make_power7_floorplan(const Power7PowerSpec& spec = {});

/// Power densities of a stacked cache/DRAM die (3D-stack upper tiers):
/// the POWER7+ outline reused as memory macros — no hot cores, moderate
/// array and controller densities. Used by the multi-die system configs
/// and the die_count sweep parameter.
[[nodiscard]] Power7PowerSpec memory_die_power_spec();

/// Cache density (W/cm^2) that makes the cache rail draw `current_a` at
/// `voltage_v` given the reconstruction's cache area.
[[nodiscard]] double cache_density_for_rail_current(const Floorplan& floorplan,
                                                    double current_a, double voltage_v);

/// Rail current the caches draw at `voltage_v`: P_cache / V.
[[nodiscard]] double cache_rail_current_a(const Floorplan& floorplan, double voltage_v);

}  // namespace brightsi::chip

#endif  // BRIGHTSI_CHIP_POWER7_H
