#include "chip/floorplan.h"

#include <stdexcept>

#include "numerics/contracts.h"

namespace brightsi::chip {

const char* to_string(BlockType type) {
  switch (type) {
    case BlockType::kCore:
      return "core";
    case BlockType::kL2Cache:
      return "L2";
    case BlockType::kL3Cache:
      return "L3";
    case BlockType::kLogic:
      return "logic";
    case BlockType::kIo:
      return "I/O";
  }
  return "?";
}

Floorplan::Floorplan(double die_width_m, double die_height_m)
    : die_width_m_(die_width_m), die_height_m_(die_height_m) {
  ensure_positive(die_width_m, "die width");
  ensure_positive(die_height_m, "die height");
}

void Floorplan::add_block(Block block) {
  ensure(!block.name.empty(), "block must be named");
  ensure_non_negative(block.power_density_w_per_m2, "block power density");
  const Rect die{0.0, 0.0, die_width_m_, die_height_m_};
  if (!die.contains_rect(block.footprint)) {
    throw std::invalid_argument("block '" + block.name + "' leaves the die outline");
  }
  for (const Block& existing : blocks_) {
    if (existing.footprint.overlaps(block.footprint)) {
      throw std::invalid_argument("block '" + block.name + "' overlaps '" + existing.name + "'");
    }
    if (existing.name == block.name) {
      throw std::invalid_argument("duplicate block name '" + block.name + "'");
    }
  }
  blocks_.push_back(std::move(block));
}

const Block* Floorplan::find(const std::string& name) const {
  for (const Block& b : blocks_) {
    if (b.name == name) {
      return &b;
    }
  }
  return nullptr;
}

void Floorplan::set_background_power_density(double w_per_m2) {
  ensure_non_negative(w_per_m2, "background power density");
  background_density_w_per_m2_ = w_per_m2;
}

void Floorplan::set_power_density(const std::string& name, double w_per_m2) {
  ensure_non_negative(w_per_m2, "block power density");
  for (Block& b : blocks_) {
    if (b.name == name) {
      b.power_density_w_per_m2 = w_per_m2;
      return;
    }
  }
  throw std::invalid_argument("unknown block '" + name + "'");
}

void Floorplan::scale_power(BlockType type, double factor) {
  ensure_non_negative(factor, "power scale factor");
  for (Block& b : blocks_) {
    if (b.type == type) {
      b.power_density_w_per_m2 *= factor;
    }
  }
}

void Floorplan::set_power_density_for_type(BlockType type, double w_per_m2) {
  ensure_non_negative(w_per_m2, "block power density");
  for (Block& b : blocks_) {
    if (b.type == type) {
      b.power_density_w_per_m2 = w_per_m2;
    }
  }
}

double Floorplan::area_of_type(BlockType type) const {
  double area = 0.0;
  for (const Block& b : blocks_) {
    if (b.type == type) {
      area += b.footprint.area();
    }
  }
  return area;
}

double Floorplan::power_of_type(BlockType type) const {
  double power = 0.0;
  for (const Block& b : blocks_) {
    if (b.type == type) {
      power += b.power_w();
    }
  }
  return power;
}

double Floorplan::cache_area() const {
  return area_of_type(BlockType::kL2Cache) + area_of_type(BlockType::kL3Cache);
}

double Floorplan::cache_power() const {
  return power_of_type(BlockType::kL2Cache) + power_of_type(BlockType::kL3Cache);
}

double Floorplan::covered_area() const {
  double area = 0.0;
  for (const Block& b : blocks_) {
    area += b.footprint.area();
  }
  return area;
}

double Floorplan::total_power() const {
  double power = background_density_w_per_m2_ * (die_area() - covered_area());
  for (const Block& b : blocks_) {
    power += b.power_w();
  }
  return power;
}

}  // namespace brightsi::chip
