#include "chip/power7.h"

#include <string>

#include "numerics/contracts.h"

namespace brightsi::chip {
namespace {

// Reconstruction coordinates in mm (see header). Four quadrants of
// 2 cores + 2 L2 slices; central L3 band; logic strip left; I/O column right.
constexpr double kCoreW = 5.5, kCoreH = 4.8;     // 26.4 mm^2 per core
constexpr double kL2W = 3.0, kL2H = 4.8;         // 14.4 mm^2 per slice
constexpr double kRowGap = 0.4;
constexpr double kBottomMargin = 0.27;

// Row base-y positions (bottom pair, then top pair mirrors around mid-die).
constexpr double kRowY0 = kBottomMargin;                  // 0.27
constexpr double kRowY1 = kRowY0 + kCoreH + kRowGap;      // 5.47
constexpr double kRowY2 = 11.07;
constexpr double kRowY3 = kRowY2 + kCoreH + kRowGap;      // 16.27

constexpr double kLogicLeftW = 1.5;
constexpr double kCoreLeftX = kLogicLeftW;                // 1.5
constexpr double kL2LeftX = kCoreLeftX + kCoreW;          // 7.0
constexpr double kL3X = kL2LeftX + kL2W;                  // 10.0
constexpr double kCoreRightX = 16.55;
constexpr double kL2RightX = kCoreRightX + kCoreW;        // 22.05
constexpr double kIoX = kL2RightX + kL2W;                 // 25.05

}  // namespace

Floorplan make_power7_floorplan(const Power7PowerSpec& spec) {
  ensure_non_negative(spec.core_w_per_cm2, "core power density");
  ensure_non_negative(spec.cache_w_per_cm2, "cache power density");

  Floorplan fp(kPower7DieWidthM, kPower7DieHeightM);
  fp.set_background_power_density(w_per_cm2(spec.background_w_per_cm2));

  const double core_density = w_per_cm2(spec.core_w_per_cm2);
  const double cache_density = w_per_cm2(spec.cache_w_per_cm2);
  const double logic_density = w_per_cm2(spec.logic_w_per_cm2);
  const double io_density = w_per_cm2(spec.io_w_per_cm2);

  // Cores and their L2 slices, quadrant by quadrant (BL, TL, BR, TR).
  const double row_y[4] = {kRowY0, kRowY1, kRowY2, kRowY3};
  int core_index = 0;
  for (const double col_x : {kCoreLeftX, kCoreRightX}) {
    const double l2_x = (col_x == kCoreLeftX) ? kL2LeftX : kL2RightX;
    for (int row = 0; row < 4; ++row) {
      const std::string suffix = std::to_string(core_index);
      fp.add_block({"core" + suffix, BlockType::kCore,
                    rect_mm(col_x, row_y[row], kCoreW, kCoreH), core_density});
      fp.add_block({"l2_" + suffix, BlockType::kL2Cache,
                    rect_mm(l2_x, row_y[row], kL2W, kL2H), cache_density});
      ++core_index;
    }
  }

  // Central L3 band, split top/bottom as in Fig. 8.
  const double l3_w = kCoreRightX - kL3X;  // 6.55 mm
  fp.add_block({"l3_bot", BlockType::kL3Cache,
                rect_mm(kL3X, kRowY0, l3_w, kRowY1 + kCoreH - kRowY0), cache_density});
  fp.add_block({"l3_top", BlockType::kL3Cache,
                rect_mm(kL3X, kRowY2, l3_w, kRowY3 + kCoreH - kRowY2), cache_density});

  // Edge strips.
  fp.add_block({"logic_left", BlockType::kLogic,
                rect_mm(0.0, 0.0, kLogicLeftW, 21.34), logic_density});
  fp.add_block({"io_right", BlockType::kIo,
                rect_mm(kIoX, 0.0, 26.55 - kIoX, 21.34), io_density});

  return fp;
}

Power7PowerSpec memory_die_power_spec() {
  Power7PowerSpec spec;
  spec.core_w_per_cm2 = 3.0;        // SRAM/DRAM arrays in the core outlines
  spec.cache_w_per_cm2 = 2.031;     // same array density as the base cache rail
  spec.logic_w_per_cm2 = 4.0;       // bank controllers / repair logic
  spec.io_w_per_cm2 = 2.0;          // TSV drivers
  spec.background_w_per_cm2 = 1.5;  // refresh + leakage
  return spec;
}

double cache_density_for_rail_current(const Floorplan& floorplan, double current_a,
                                      double voltage_v) {
  ensure_positive(current_a, "rail current");
  ensure_positive(voltage_v, "rail voltage");
  const double area = floorplan.cache_area();
  ensure(area > 0.0, "floorplan has no cache blocks");
  return current_a * voltage_v / area;
}

double cache_rail_current_a(const Floorplan& floorplan, double voltage_v) {
  ensure_positive(voltage_v, "rail voltage");
  return floorplan.cache_power() / voltage_v;
}

}  // namespace brightsi::chip
