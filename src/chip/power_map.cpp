#include "chip/power_map.h"

#include <algorithm>
#include <cmath>

#include "numerics/contracts.h"

namespace brightsi::chip {
namespace {

/// Adds `density * overlap_area` of one rectangle into the grid cells it
/// touches. Exact area weighting.
void splat_rect(numerics::Grid2<double>& grid, const Rect& rect, double density,
                double die_width, double die_height) {
  const int nx = grid.nx();
  const int ny = grid.ny();
  const double dx = die_width / nx;
  const double dy = die_height / ny;

  const int ix_begin = std::clamp(static_cast<int>(std::floor(rect.x / dx)), 0, nx - 1);
  const int ix_end = std::clamp(static_cast<int>(std::ceil(rect.right() / dx)), 1, nx);
  const int iy_begin = std::clamp(static_cast<int>(std::floor(rect.y / dy)), 0, ny - 1);
  const int iy_end = std::clamp(static_cast<int>(std::ceil(rect.top() / dy)), 1, ny);

  for (int iy = iy_begin; iy < iy_end; ++iy) {
    for (int ix = ix_begin; ix < ix_end; ++ix) {
      const Rect cell{ix * dx, iy * dy, dx, dy};
      const double overlap = cell.intersection_area(rect);
      if (overlap > 0.0) {
        grid(ix, iy) += density * overlap;
      }
    }
  }
}

}  // namespace

numerics::Grid2<double> rasterize_power_w(const Floorplan& floorplan, int nx, int ny,
                                          const std::function<bool(const Block&)>& include) {
  ensure(nx > 0 && ny > 0, "rasterize_power_w: grid dimensions must be positive");
  numerics::Grid2<double> grid(nx, ny, 0.0);
  for (const Block& block : floorplan.blocks()) {
    if (include && !include(block)) {
      continue;
    }
    splat_rect(grid, block.footprint, block.power_density_w_per_m2, floorplan.die_width(),
               floorplan.die_height());
  }
  return grid;
}

numerics::Grid2<double> rasterize_power_w(const Floorplan& floorplan, int nx, int ny) {
  numerics::Grid2<double> grid = rasterize_power_w(floorplan, nx, ny, nullptr);
  const double background = floorplan.background_power_density();
  if (background > 0.0) {
    // Background covers the whole die; subtract the area already covered by
    // blocks cell-by-cell so the total stays exact.
    const double dx = floorplan.die_width() / nx;
    const double dy = floorplan.die_height() / ny;
    numerics::Grid2<double> covered(nx, ny, 0.0);
    for (const Block& block : floorplan.blocks()) {
      splat_rect(covered, block.footprint, 1.0, floorplan.die_width(), floorplan.die_height());
    }
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const double cell_area = dx * dy;
        const double uncovered = std::max(0.0, cell_area - covered(ix, iy));
        grid(ix, iy) += background * uncovered;
      }
    }
  }
  return grid;
}

numerics::Grid2<double> rasterize_density_w_per_m2(const Floorplan& floorplan, int nx, int ny) {
  numerics::Grid2<double> grid = rasterize_power_w(floorplan, nx, ny);
  const double cell_area = (floorplan.die_width() / nx) * (floorplan.die_height() / ny);
  for (double& v : grid.data()) {
    v /= cell_area;
  }
  return grid;
}

numerics::Grid2<double> rasterize_power_w_on_edges(const Floorplan& floorplan,
                                                   std::span<const double> x_edges,
                                                   std::span<const double> y_edges) {
  ensure(x_edges.size() >= 2 && y_edges.size() >= 2,
         "rasterize_power_w_on_edges: need at least one cell per axis");
  for (std::size_t i = 1; i < x_edges.size(); ++i) {
    ensure(x_edges[i] > x_edges[i - 1], "x_edges must be strictly increasing");
  }
  for (std::size_t i = 1; i < y_edges.size(); ++i) {
    ensure(y_edges[i] > y_edges[i - 1], "y_edges must be strictly increasing");
  }
  const int nx = static_cast<int>(x_edges.size()) - 1;
  const int ny = static_cast<int>(y_edges.size()) - 1;
  numerics::Grid2<double> grid(nx, ny, 0.0);
  const double background = floorplan.background_power_density();

  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const Rect cell{x_edges[static_cast<std::size_t>(ix)],
                      y_edges[static_cast<std::size_t>(iy)],
                      x_edges[static_cast<std::size_t>(ix) + 1] -
                          x_edges[static_cast<std::size_t>(ix)],
                      y_edges[static_cast<std::size_t>(iy) + 1] -
                          y_edges[static_cast<std::size_t>(iy)]};
      double power = 0.0;
      double covered = 0.0;
      for (const Block& block : floorplan.blocks()) {
        const double overlap = cell.intersection_area(block.footprint);
        if (overlap > 0.0) {
          power += block.power_density_w_per_m2 * overlap;
          covered += overlap;
        }
      }
      if (background > 0.0) {
        power += background * std::max(0.0, cell.area() - covered);
      }
      grid(ix, iy) = power;
    }
  }
  return grid;
}

}  // namespace brightsi::chip
