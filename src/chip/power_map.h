// Rasterization of a floorplan's block power onto a regular grid.
//
// The thermal model consumes per-cell heat sources (W) and the PDN model
// per-node current sinks; both come from these maps. Rasterization is
// exact area-overlap weighting, so the grid total equals the floorplan
// total regardless of resolution — a property the tests enforce.
#ifndef BRIGHTSI_CHIP_POWER_MAP_H
#define BRIGHTSI_CHIP_POWER_MAP_H

#include <functional>
#include <span>

#include "chip/floorplan.h"
#include "numerics/grid.h"

namespace brightsi::chip {

/// Per-cell power in W on an nx-by-ny grid covering the die. Cell (0, 0) is
/// the lower-left corner. Background density applies to uncovered area.
[[nodiscard]] numerics::Grid2<double> rasterize_power_w(const Floorplan& floorplan, int nx,
                                                        int ny);

/// Same but filtered: only blocks for which `include` returns true
/// contribute (background is excluded). Used to build the cache-rail
/// current-sink map for the PDN.
[[nodiscard]] numerics::Grid2<double> rasterize_power_w(
    const Floorplan& floorplan, int nx, int ny,
    const std::function<bool(const Block&)>& include);

/// Power density map in W/m^2 (per-cell power divided by cell area).
[[nodiscard]] numerics::Grid2<double> rasterize_density_w_per_m2(const Floorplan& floorplan,
                                                                 int nx, int ny);

/// Rasterization onto a tensor-product grid with arbitrary cell edges
/// (x_edges/y_edges ascending, spanning the die). Used by the thermal model,
/// whose x-columns follow the microchannel/wall pattern. Background density
/// is included. Exact area-overlap weighting: the sum equals
/// floorplan.total_power().
[[nodiscard]] numerics::Grid2<double> rasterize_power_w_on_edges(
    const Floorplan& floorplan, std::span<const double> x_edges,
    std::span<const double> y_edges);

}  // namespace brightsi::chip

#endif  // BRIGHTSI_CHIP_POWER_MAP_H
