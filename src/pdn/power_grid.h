// On-chip power distribution network (PDN) model: the resistive mesh of the
// cache rail that the microfluidic supply feeds through in-package VRMs
// (paper Section III-A, Fig. 5/6/8).
//
// Nodal analysis on a uniform nx-by-ny mesh over the die: every edge
// carries the effective rail resistance (all metal layers lumped into one
// sheet), load blocks stamp current sinks at their nodes, and VRM outputs
// are Thevenin sources (set-point voltage behind an output resistance).
// The resulting SPD system G v = i is solved by Jacobi-preconditioned CG.
#ifndef BRIGHTSI_PDN_POWER_GRID_H
#define BRIGHTSI_PDN_POWER_GRID_H

#include <functional>
#include <vector>

#include "chip/floorplan.h"
#include "numerics/grid.h"
#include "numerics/linear_solvers.h"

namespace brightsi::pdn {

/// A regulated supply injection point on the mesh.
struct VrmTap {
  double x_m = 0.0;           ///< die coordinates of the output node
  double y_m = 0.0;
  double set_point_v = 1.0;   ///< regulated output voltage
  double output_resistance_ohm = 1e-3;
};

/// Mesh + electrical parameters of one rail.
struct PowerGridSpec {
  int nodes_x = 107;  ///< ~250 um pitch over 26.55 mm
  int nodes_y = 86;
  /// Effective sheet resistance of the rail metallization (ohm/square).
  /// The cache rail of the paper is clearly a thin secondary rail: the
  /// Fig. 8 window (0.96-0.995 V at ~5 A) calibrates to ~0.1 ohm/sq with a
  /// 4x4 tap grid at 25 mohm each. (A primary core rail on a full metal
  /// stack would sit at 1-3 mohm/sq.)
  double sheet_resistance_ohm_per_sq = 0.10;
  /// Nominal rail voltage used to convert block power to current sinks.
  double nominal_voltage_v = 1.0;

  void validate() const;
};

/// Result of a rail solve.
struct PowerGridSolution {
  numerics::Grid2<double> node_voltage_v;
  double min_voltage_v = 0.0;
  double max_voltage_v = 0.0;
  double mean_voltage_v = 0.0;
  double total_load_current_a = 0.0;   ///< sum of sink currents drawn
  double total_supply_current_a = 0.0; ///< sum of VRM currents delivered
  double worst_drop_v = 0.0;           ///< max set-point minus min node voltage
  double ohmic_loss_w = 0.0;           ///< dissipated in the mesh + VRM output R
  numerics::SolverReport solver_report;
};

class PowerGrid {
 public:
  /// Mesh over the floorplan's die outline. `load_filter` selects the
  /// blocks this rail feeds (default: the L2/L3 caches, as in the paper).
  PowerGrid(PowerGridSpec spec, const chip::Floorplan& floorplan,
            std::function<bool(const chip::Block&)> load_filter = {});

  /// Solves the rail with the given VRM taps. Loads are constant-current
  /// sinks I = P_block / nominal_voltage (the paper's 5 A at 1 V), split
  /// over the nodes each block covers.
  [[nodiscard]] PowerGridSolution solve(const std::vector<VrmTap>& taps) const;

  /// Constant-power loads: iterates I = P / V(node) to a fixed point
  /// (2-4 iterations in practice).
  [[nodiscard]] PowerGridSolution solve_constant_power(const std::vector<VrmTap>& taps,
                                                       int max_iterations = 8,
                                                       double tolerance_v = 1e-6) const;

  /// Total current the loads draw at the nominal voltage.
  [[nodiscard]] double nominal_load_current_a() const;

  [[nodiscard]] const PowerGridSpec& spec() const { return spec_; }
  [[nodiscard]] const numerics::Grid2<double>& load_current_map() const {
    return load_current_a_;
  }

 private:
  PowerGridSpec spec_;
  double die_width_m_;
  double die_height_m_;
  numerics::Grid2<double> load_current_a_;  ///< per-node sink at nominal V

  [[nodiscard]] PowerGridSolution solve_with_loads(
      const std::vector<VrmTap>& taps, const numerics::Grid2<double>& loads) const;
  [[nodiscard]] int nearest_node_x(double x_m) const;
  [[nodiscard]] int nearest_node_y(double y_m) const;
};

/// Evenly spaced grid of `count_x` x `count_y` VRM taps over the die (the
/// in-package interposer arrangement of Fig. 5).
[[nodiscard]] std::vector<VrmTap> make_vrm_grid(int count_x, int count_y, double die_width_m,
                                                double die_height_m, double set_point_v,
                                                double output_resistance_ohm);

/// Conventional baseline: taps along the die edges only (package C4 rings),
/// emulating off-chip supply entry.
[[nodiscard]] std::vector<VrmTap> make_edge_taps(int count_per_edge, double die_width_m,
                                                 double die_height_m, double set_point_v,
                                                 double output_resistance_ohm);

}  // namespace brightsi::pdn

#endif  // BRIGHTSI_PDN_POWER_GRID_H
