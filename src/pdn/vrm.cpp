#include "pdn/vrm.h"

#include "numerics/contracts.h"

namespace brightsi::pdn {

void VrmSpec::validate() const {
  ensure(efficiency > 0.0 && efficiency <= 1.0, "VRM efficiency must be in (0, 1]");
  ensure_positive(set_point_v, "VRM set-point");
  ensure_positive(output_resistance_ohm, "VRM output resistance");
  ensure(count_x > 0 && count_y > 0, "VRM tap counts must be positive");
  ensure_positive(min_input_voltage_v, "VRM minimum input voltage");
  ensure(max_input_voltage_v > min_input_voltage_v,
         "VRM input window must be non-empty");
}

VrmConversion convert_at_bus(const VrmSpec& spec, double output_power_w,
                             double bus_voltage_v) {
  spec.validate();
  ensure_non_negative(output_power_w, "VRM output power");
  ensure_positive(bus_voltage_v, "bus voltage");
  VrmConversion c;
  c.output_power_w = output_power_w;
  c.input_power_w = output_power_w / spec.efficiency;
  c.input_current_a = c.input_power_w / bus_voltage_v;
  c.loss_w = c.input_power_w - c.output_power_w;
  c.input_in_window = bus_voltage_v >= spec.min_input_voltage_v &&
                      bus_voltage_v <= spec.max_input_voltage_v;
  return c;
}

}  // namespace brightsi::pdn
