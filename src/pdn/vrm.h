// In-package voltage regulator modules (paper Section III-A, Fig. 5/6).
//
// The flow-cell bus voltage follows the electrochemical operating point
// (~1.0-1.6 V depending on load), so regulators translate it to the rail
// set-point. The paper cites on-chip switched-capacitor converters at 86 %
// efficiency [22]; we model the conversion as an efficiency plus a bounded
// input-voltage window, with the regulation itself represented by the
// Thevenin taps of the PowerGrid.
#ifndef BRIGHTSI_PDN_VRM_H
#define BRIGHTSI_PDN_VRM_H

namespace brightsi::pdn {

/// Electrical model of the VRM population feeding one rail.
struct VrmSpec {
  double efficiency = 0.86;            ///< [22]: 4.6 W/mm2 switched-cap, 86 %
  double set_point_v = 1.0;            ///< rail set-point
  double output_resistance_ohm = 25e-3;///< per tap (Fig. 8 calibration)
  int count_x = 4;                    ///< tap columns over the die
  int count_y = 4;                    ///< tap rows
  /// Input window: conversion works while the bus stays inside
  /// [min, max]; outside, the supply is considered failed for this rail.
  double min_input_voltage_v = 0.7;
  double max_input_voltage_v = 2.0;

  void validate() const;
};

/// Input-side demand of the VRM population for a given delivered power.
struct VrmConversion {
  double output_power_w = 0.0;
  double input_power_w = 0.0;   ///< output / efficiency
  double input_current_a = 0.0; ///< at the bus voltage
  double loss_w = 0.0;
  bool input_in_window = true;
};

/// Computes the conversion at `bus_voltage_v` for `output_power_w`.
[[nodiscard]] VrmConversion convert_at_bus(const VrmSpec& spec, double output_power_w,
                                           double bus_voltage_v);

}  // namespace brightsi::pdn

#endif  // BRIGHTSI_PDN_VRM_H
