#include "pdn/power_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "chip/power_map.h"
#include "numerics/contracts.h"
#include "numerics/sparse_matrix.h"

namespace brightsi::pdn {

void PowerGridSpec::validate() const {
  ensure(nodes_x >= 2 && nodes_y >= 2, "power grid needs at least a 2x2 mesh");
  ensure_positive(sheet_resistance_ohm_per_sq, "sheet resistance");
  ensure_positive(nominal_voltage_v, "nominal voltage");
}

PowerGrid::PowerGrid(PowerGridSpec spec, const chip::Floorplan& floorplan,
                     std::function<bool(const chip::Block&)> load_filter)
    : spec_(spec), die_width_m_(floorplan.die_width()), die_height_m_(floorplan.die_height()) {
  spec_.validate();
  if (!load_filter) {
    load_filter = [](const chip::Block& b) { return chip::is_cache(b.type); };
  }
  // Per-node sink currents at the nominal rail voltage: rasterize the
  // filtered block power onto the node grid (cell-centered), divide by V.
  const numerics::Grid2<double> power =
      chip::rasterize_power_w(floorplan, spec_.nodes_x, spec_.nodes_y, load_filter);
  load_current_a_ = numerics::Grid2<double>(spec_.nodes_x, spec_.nodes_y, 0.0);
  for (std::size_t i = 0; i < power.data().size(); ++i) {
    load_current_a_.data()[i] = power.data()[i] / spec_.nominal_voltage_v;
  }
}

double PowerGrid::nominal_load_current_a() const {
  double total = 0.0;
  for (const double i : load_current_a_.data()) {
    total += i;
  }
  return total;
}

int PowerGrid::nearest_node_x(double x_m) const {
  const double pitch = die_width_m_ / spec_.nodes_x;
  const int ix = static_cast<int>(std::floor(x_m / pitch));
  return std::clamp(ix, 0, spec_.nodes_x - 1);
}

int PowerGrid::nearest_node_y(double y_m) const {
  const double pitch = die_height_m_ / spec_.nodes_y;
  const int iy = static_cast<int>(std::floor(y_m / pitch));
  return std::clamp(iy, 0, spec_.nodes_y - 1);
}

PowerGridSolution PowerGrid::solve(const std::vector<VrmTap>& taps) const {
  return solve_with_loads(taps, load_current_a_);
}

PowerGridSolution PowerGrid::solve_constant_power(const std::vector<VrmTap>& taps,
                                                  int max_iterations,
                                                  double tolerance_v) const {
  numerics::Grid2<double> loads = load_current_a_;  // start at nominal
  PowerGridSolution solution = solve_with_loads(taps, loads);
  for (int it = 1; it < max_iterations; ++it) {
    // I_node = P_node / V_node, with P_node = I_nominal * V_nominal.
    for (int iy = 0; iy < spec_.nodes_y; ++iy) {
      for (int ix = 0; ix < spec_.nodes_x; ++ix) {
        const double v = std::max(solution.node_voltage_v(ix, iy), 0.1);
        loads(ix, iy) = load_current_a_(ix, iy) * spec_.nominal_voltage_v / v;
      }
    }
    const PowerGridSolution next = solve_with_loads(taps, loads);
    const double change =
        std::abs(next.min_voltage_v - solution.min_voltage_v) +
        std::abs(next.mean_voltage_v - solution.mean_voltage_v);
    solution = next;
    if (change < tolerance_v) {
      break;
    }
  }
  return solution;
}

PowerGridSolution PowerGrid::solve_with_loads(const std::vector<VrmTap>& taps,
                                              const numerics::Grid2<double>& loads) const {
  ensure(!taps.empty(), "PowerGrid::solve needs at least one VRM tap");
  const int nx = spec_.nodes_x;
  const int ny = spec_.nodes_y;
  const auto node_count = static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  auto index = [nx](int ix, int iy) {
    return static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx) +
           static_cast<std::size_t>(ix);
  };

  // Edge conductances: a uniform mesh of squares has edge resistance equal
  // to the sheet resistance times the edge aspect; with near-square cells
  // the x/y aspect corrections keep the continuum limit exact.
  const double dx = die_width_m_ / nx;
  const double dy = die_height_m_ / ny;
  const double g_x = dy / dx / spec_.sheet_resistance_ohm_per_sq;
  const double g_y = dx / dy / spec_.sheet_resistance_ohm_per_sq;

  numerics::TripletList triplets(node_count * 5 + taps.size());
  std::vector<double> rhs(node_count, 0.0);

  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const std::size_t me = index(ix, iy);
      if (ix + 1 < nx) {
        const std::size_t right = index(ix + 1, iy);
        triplets.add(static_cast<int>(me), static_cast<int>(me), g_x);
        triplets.add(static_cast<int>(right), static_cast<int>(right), g_x);
        triplets.add(static_cast<int>(me), static_cast<int>(right), -g_x);
        triplets.add(static_cast<int>(right), static_cast<int>(me), -g_x);
      }
      if (iy + 1 < ny) {
        const std::size_t up = index(ix, iy + 1);
        triplets.add(static_cast<int>(me), static_cast<int>(me), g_y);
        triplets.add(static_cast<int>(up), static_cast<int>(up), g_y);
        triplets.add(static_cast<int>(me), static_cast<int>(up), -g_y);
        triplets.add(static_cast<int>(up), static_cast<int>(me), -g_y);
      }
      rhs[me] -= loads(ix, iy);  // sinks draw current out of the node
    }
  }

  for (const VrmTap& tap : taps) {
    ensure_positive(tap.output_resistance_ohm, "VRM output resistance");
    const std::size_t node = index(nearest_node_x(tap.x_m), nearest_node_y(tap.y_m));
    const double g = 1.0 / tap.output_resistance_ohm;
    triplets.add(static_cast<int>(node), static_cast<int>(node), g);
    rhs[node] += g * tap.set_point_v;
  }

  const numerics::CsrMatrix matrix = numerics::CsrMatrix::from_triplets(
      static_cast<int>(node_count), static_cast<int>(node_count), triplets);

  std::vector<double> voltages(node_count, spec_.nominal_voltage_v);
  // ILU(0) converges the mesh in ~10x fewer iterations than Jacobi and its
  // factorization is a single O(nnz) pass over the 5-point pattern.
  const numerics::Ilu0Preconditioner precond(matrix);
  numerics::SolverOptions options;
  options.relative_tolerance = 1e-12;
  options.max_iterations = 20000;
  const numerics::SolverReport report =
      numerics::solve_cg(matrix, rhs, voltages, &precond, options);
  if (!report.converged) {
    throw std::runtime_error("PowerGrid::solve: CG did not converge (residual " +
                             std::to_string(report.residual_norm) + ")");
  }

  PowerGridSolution out;
  out.solver_report = report;
  out.node_voltage_v = numerics::Grid2<double>(nx, ny, 0.0);
  out.node_voltage_v.data() = voltages;
  out.min_voltage_v = *std::min_element(voltages.begin(), voltages.end());
  out.max_voltage_v = *std::max_element(voltages.begin(), voltages.end());
  double sum = 0.0;
  for (const double v : voltages) {
    sum += v;
  }
  out.mean_voltage_v = sum / static_cast<double>(voltages.size());
  for (const double i : loads.data()) {
    out.total_load_current_a += i;
  }
  double max_set_point = 0.0;
  for (const VrmTap& tap : taps) {
    const std::size_t node = index(nearest_node_x(tap.x_m), nearest_node_y(tap.y_m));
    const double current = (tap.set_point_v - voltages[node]) / tap.output_resistance_ohm;
    out.total_supply_current_a += current;
    out.ohmic_loss_w += current * current * tap.output_resistance_ohm;
    max_set_point = std::max(max_set_point, tap.set_point_v);
  }
  out.worst_drop_v = max_set_point - out.min_voltage_v;

  // Mesh ohmic loss: sum over edges of G (dV)^2.
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      if (ix + 1 < nx) {
        const double dv =
            out.node_voltage_v(ix, iy) - out.node_voltage_v(ix + 1, iy);
        out.ohmic_loss_w += g_x * dv * dv;
      }
      if (iy + 1 < ny) {
        const double dv =
            out.node_voltage_v(ix, iy) - out.node_voltage_v(ix, iy + 1);
        out.ohmic_loss_w += g_y * dv * dv;
      }
    }
  }
  return out;
}

std::vector<VrmTap> make_vrm_grid(int count_x, int count_y, double die_width_m,
                                  double die_height_m, double set_point_v,
                                  double output_resistance_ohm) {
  ensure(count_x > 0 && count_y > 0, "VRM grid counts must be positive");
  std::vector<VrmTap> taps;
  taps.reserve(static_cast<std::size_t>(count_x) * static_cast<std::size_t>(count_y));
  for (int iy = 0; iy < count_y; ++iy) {
    for (int ix = 0; ix < count_x; ++ix) {
      VrmTap tap;
      tap.x_m = die_width_m * (ix + 0.5) / count_x;
      tap.y_m = die_height_m * (iy + 0.5) / count_y;
      tap.set_point_v = set_point_v;
      tap.output_resistance_ohm = output_resistance_ohm;
      taps.push_back(tap);
    }
  }
  return taps;
}

std::vector<VrmTap> make_edge_taps(int count_per_edge, double die_width_m, double die_height_m,
                                   double set_point_v, double output_resistance_ohm) {
  ensure(count_per_edge > 0, "edge tap count must be positive");
  std::vector<VrmTap> taps;
  taps.reserve(static_cast<std::size_t>(count_per_edge) * 2);
  // Left and right edges (the package ring feeds from the die periphery).
  for (int i = 0; i < count_per_edge; ++i) {
    const double y = die_height_m * (i + 0.5) / count_per_edge;
    taps.push_back({1e-6, y, set_point_v, output_resistance_ohm});
    taps.push_back({die_width_m - 1e-6, y, set_point_v, output_resistance_ohm});
  }
  return taps;
}

}  // namespace brightsi::pdn
