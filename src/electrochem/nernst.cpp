#include "electrochem/nernst.h"

#include <algorithm>
#include <cmath>

#include "electrochem/constants.h"
#include "numerics/contracts.h"

namespace brightsi::electrochem {

double nernst_potential(const RedoxCouple& couple, double oxidized_concentration_mol_per_m3,
                        double reduced_concentration_mol_per_m3, double temperature_k) {
  ensure_positive(temperature_k, "nernst_potential temperature");
  ensure_non_negative(oxidized_concentration_mol_per_m3, "oxidized concentration");
  ensure_non_negative(reduced_concentration_mol_per_m3, "reduced concentration");
  const double c_ox = std::max(oxidized_concentration_mol_per_m3, kConcentrationFloorMolPerM3);
  const double c_red = std::max(reduced_concentration_mol_per_m3, kConcentrationFloorMolPerM3);
  const double rt_over_nf =
      constants::rt_over_f(temperature_k) / static_cast<double>(couple.electrons);
  return couple.standard_potential_v + rt_over_nf * std::log(c_ox / c_red);
}

double open_circuit_voltage(const FlowCellChemistry& chemistry, double temperature_k) {
  const double e_neg = nernst_potential(chemistry.anode.couple,
                                        chemistry.anode.oxidized_inlet_concentration_mol_per_m3,
                                        chemistry.anode.reduced_inlet_concentration_mol_per_m3,
                                        temperature_k);
  const double e_pos = nernst_potential(chemistry.cathode.couple,
                                        chemistry.cathode.oxidized_inlet_concentration_mol_per_m3,
                                        chemistry.cathode.reduced_inlet_concentration_mol_per_m3,
                                        temperature_k);
  return e_pos - e_neg;
}

}  // namespace brightsi::electrochem
