#include "electrochem/species.h"

#include "numerics/contracts.h"

namespace brightsi::electrochem {

void ElectrolyteProperties::validate() const {
  ensure_positive(density_kg_per_m3.reference_value, "electrolyte density");
  ensure_positive(dynamic_viscosity_pa_s.reference_value_pa_s, "electrolyte viscosity");
  ensure_positive(ionic_conductivity_s_per_m.reference_value, "electrolyte conductivity");
  ensure_positive(thermal_conductivity_w_per_m_k, "electrolyte thermal conductivity");
  ensure_positive(volumetric_heat_capacity_j_per_m3_k, "electrolyte heat capacity");
}

void HalfCellSpec::validate() const {
  ensure(!couple.name.empty(), "redox couple must be named");
  ensure(couple.electrons >= 1, "redox couple must transfer at least one electron");
  ensure(couple.anodic_transfer_coefficient > 0.0 && couple.anodic_transfer_coefficient < 1.0,
         "transfer coefficient must lie in (0, 1)");
  ensure_non_negative(oxidized_inlet_concentration_mol_per_m3, "oxidized inlet concentration");
  ensure_non_negative(reduced_inlet_concentration_mol_per_m3, "reduced inlet concentration");
  ensure(oxidized_inlet_concentration_mol_per_m3 > 0.0 ||
             reduced_inlet_concentration_mol_per_m3 > 0.0,
         "at least one redox form must be present at the inlet");
  ensure_positive(kinetic_rate_m_per_s.reference_value, "kinetic rate constant k0");
  ensure_positive(diffusivity_m2_per_s.reference_value, "diffusion coefficient D");
}

void FlowCellChemistry::validate() const {
  anode.validate();
  cathode.validate();
  electrolyte.validate();
  ensure(cathode.couple.standard_potential_v > anode.couple.standard_potential_v,
         "cathode standard potential must exceed anode standard potential "
         "(otherwise the cell cannot discharge)");
}

}  // namespace brightsi::electrochem
