#include "electrochem/butler_volmer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "electrochem/constants.h"
#include "numerics/contracts.h"
#include "numerics/root_finding.h"

namespace brightsi::electrochem {

double exchange_current_density(const HalfCellSpec& half_cell, double oxidized_bulk_mol_per_m3,
                                double reduced_bulk_mol_per_m3, double temperature_k) {
  ensure_non_negative(oxidized_bulk_mol_per_m3, "oxidized bulk concentration");
  ensure_non_negative(reduced_bulk_mol_per_m3, "reduced bulk concentration");
  ensure_positive(temperature_k, "exchange_current_density temperature");
  const double alpha = half_cell.couple.anodic_transfer_coefficient;
  const double k0 = half_cell.kinetic_rate_m_per_s.at(temperature_k);
  const double n = static_cast<double>(half_cell.couple.electrons);
  return n * constants::faraday_c_per_mol * k0 *
         std::pow(oxidized_bulk_mol_per_m3, alpha) *
         std::pow(reduced_bulk_mol_per_m3, 1.0 - alpha);
}

double butler_volmer_current(const ButlerVolmerState& state, double overpotential_v) {
  const double f_rt = constants::f_over_rt(state.temperature_k);
  const double alpha = state.anodic_transfer_coefficient;
  const double anodic = state.reduced_surface_ratio * std::exp(alpha * f_rt * overpotential_v);
  const double cathodic =
      state.oxidized_surface_ratio * std::exp(-(1.0 - alpha) * f_rt * overpotential_v);
  return state.exchange_current_density_a_per_m2 * (anodic - cathodic);
}

double butler_volmer_slope(const ButlerVolmerState& state, double overpotential_v) {
  const double f_rt = constants::f_over_rt(state.temperature_k);
  const double alpha = state.anodic_transfer_coefficient;
  const double anodic = state.reduced_surface_ratio * alpha * f_rt *
                        std::exp(alpha * f_rt * overpotential_v);
  const double cathodic = state.oxidized_surface_ratio * (1.0 - alpha) * f_rt *
                          std::exp(-(1.0 - alpha) * f_rt * overpotential_v);
  return state.exchange_current_density_a_per_m2 * (anodic + cathodic);
}

double overpotential_for_current(const ButlerVolmerState& state,
                                 double current_density_a_per_m2) {
  ensure_positive(state.exchange_current_density_a_per_m2, "exchange current density");
  if (current_density_a_per_m2 > 0.0 && state.reduced_surface_ratio <= 0.0) {
    throw std::invalid_argument(
        "overpotential_for_current: anodic current with zero reduced surface concentration");
  }
  if (current_density_a_per_m2 < 0.0 && state.oxidized_surface_ratio <= 0.0) {
    throw std::invalid_argument(
        "overpotential_for_current: cathodic current with zero oxidized surface concentration");
  }

  const double f_rt = constants::f_over_rt(state.temperature_k);

  // Symmetric kinetics (alpha = 1/2) admit a closed form: with
  // x = exp(f eta / 2),  i/i0 = r_red x - r_ox / x  is a quadratic in x.
  if (state.anodic_transfer_coefficient == 0.5 && state.reduced_surface_ratio > 0.0 &&
      state.oxidized_surface_ratio > 0.0) {
    const double ratio = current_density_a_per_m2 / state.exchange_current_density_a_per_m2;
    const double x = (ratio + std::sqrt(ratio * ratio + 4.0 * state.reduced_surface_ratio *
                                                           state.oxidized_surface_ratio)) /
                     (2.0 * state.reduced_surface_ratio);
    if (x > 0.0 && std::isfinite(x)) {
      return 2.0 / f_rt * std::log(x);
    }
  }

  // General case: damped Newton from the symmetric-kinetics asinh seed.
  const double seed = (2.0 / f_rt) *
                      std::asinh(current_density_a_per_m2 /
                                 (2.0 * state.exchange_current_density_a_per_m2 *
                                  std::max(1e-12, std::min(state.reduced_surface_ratio,
                                                           state.oxidized_surface_ratio))));
  auto fdf = [&](double eta) {
    return std::pair<double, double>(
        butler_volmer_current(state, eta) - current_density_a_per_m2,
        butler_volmer_slope(state, eta));
  };
  const auto result = numerics::find_root_newton(fdf, seed, 1e-14, 128);
  if (!result.converged &&
      std::abs(result.function_value) >
          1e-9 * std::max(1.0, std::abs(current_density_a_per_m2))) {
    throw std::runtime_error("overpotential_for_current: Newton failed to converge");
  }
  return result.root;
}

double mass_transport_overpotential(double surface_to_bulk_ratio, int electrons,
                                    double temperature_k) {
  ensure_positive(surface_to_bulk_ratio, "surface-to-bulk concentration ratio");
  ensure_positive(temperature_k, "mass_transport_overpotential temperature");
  return constants::rt_over_f(temperature_k) / static_cast<double>(electrons) *
         std::log(surface_to_bulk_ratio);
}

}  // namespace brightsi::electrochem
