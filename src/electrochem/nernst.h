// Nernst equilibrium potentials (paper eqs. 4–5) and open-circuit voltage.
#ifndef BRIGHTSI_ELECTROCHEM_NERNST_H
#define BRIGHTSI_ELECTROCHEM_NERNST_H

#include "electrochem/species.h"

namespace brightsi::electrochem {

/// Concentration floor used when evaluating Nernst terms near full depletion
/// of one redox form. The logarithm diverges at zero concentration; the
/// physical cell never reaches exactly zero surface concentration because
/// the current collapses first, so a small positive floor (1e-6 mol/m3 ~
/// 1 nanomolar) keeps the algebra well-posed without affecting results.
inline constexpr double kConcentrationFloorMolPerM3 = 1e-6;

/// Equilibrium potential E = E0 + (RT / nF) ln(C_ox / C_red), eqs. (4)-(5).
/// Concentrations are clamped to kConcentrationFloorMolPerM3.
[[nodiscard]] double nernst_potential(const RedoxCouple& couple,
                                      double oxidized_concentration_mol_per_m3,
                                      double reduced_concentration_mol_per_m3,
                                      double temperature_k);

/// Open-circuit voltage of a full cell at the given *bulk* compositions:
/// U = E_pos - E_neg with both electrodes at `temperature_k`.
[[nodiscard]] double open_circuit_voltage(const FlowCellChemistry& chemistry,
                                          double temperature_k);

}  // namespace brightsi::electrochem

#endif  // BRIGHTSI_ELECTROCHEM_NERNST_H
