// All-vanadium chemistry presets matching the paper's Table I (validation
// cell, parameters from Kjeang 2007 / Rapp 2012) and Table II (POWER7+
// microchannel array, parameters from Rapp 2012 / Al-Fetlawi 2009).
//
// Two parameters the paper does not tabulate are required to close the
// model and are calibrated here (documented in DESIGN.md §2):
//   * ionic conductivity of the supporting electrolyte (ohmic overvoltage) —
//     literature values for vanadium in 2–4 M H2SO4 span 25–80 S/m;
//   * Arrhenius activation energies of k0 and D — taken from Al-Fetlawi
//     2009-range values and tuned so the temperature-sensitivity headline
//     numbers (<= 4 % at nominal flow, up to ~23 % when hot) are reproduced.
#ifndef BRIGHTSI_ELECTROCHEM_VANADIUM_H
#define BRIGHTSI_ELECTROCHEM_VANADIUM_H

#include "electrochem/species.h"

namespace brightsi::electrochem {

/// Table I chemistry: the 33 mm x 2 mm x 150 um co-laminar cell of Kjeang
/// 2007 used to validate the transport model (paper Fig. 3).
///   anode:   V2+/V3+,  E0 = -0.255 V, C*_Ox = 80,  C*_Red = 920 mol/m3,
///            D = 1.7e-10 m2/s, k0 = 2e-5 m/s
///   cathode: VO2+/VO2+, E0 = +0.991 V, C*_Ox = 992, C*_Red = 8 mol/m3,
///            D = 1.3e-10 m2/s, k0 = 1e-5 m/s
///   rho = 1260 kg/m3, mu = 2.53 mPa.s
[[nodiscard]] FlowCellChemistry kjeang2007_validation_chemistry();

/// Table II chemistry: the 88-channel array on the POWER7+.
///   anode:   E0 = -0.255 V, C*_Ox = 1,    C*_Red = 2000 mol/m3,
///            D = 4.13e-10 m2/s, k0 = 5.33e-5 m/s
///   cathode: E0 = +1.0 V,  C*_Ox = 2000, C*_Red = 1 mol/m3,
///            D = 1.26e-10 m2/s, k0 = 4.67e-5 m/s
///   rho = 1260 kg/m3, mu = 2.53 mPa.s, k_f = 0.67 W/(m.K),
///   rho*cp = 4.187e6 J/(m3.K)
[[nodiscard]] FlowCellChemistry power7_array_chemistry();

}  // namespace brightsi::electrochem

#endif  // BRIGHTSI_ELECTROCHEM_VANADIUM_H
