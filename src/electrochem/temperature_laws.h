// Temperature dependence of electrochemical and transport parameters.
//
// The paper (Section II-A, citing Al-Fetlawi 2009 and Rapp 2012) notes that
// the kinetic rate constant k0, the diffusion coefficients D, the
// electrolyte conductivity, density and viscosity are all
// temperature-dependent, and that this coupling is what produces the "up to
// 23 % more power when hot" result. We model:
//
//   * k0(T), D(T)  — Arrhenius laws (Stokes–Einstein reduces to an effective
//                    Arrhenius form over the narrow 27–70 C window),
//   * mu(T)        — Arrhenius (Andrade) law,
//   * sigma(T)     — linear temperature coefficient,
//   * rho(T)       — linear thermal-expansion coefficient.
#ifndef BRIGHTSI_ELECTROCHEM_TEMPERATURE_LAWS_H
#define BRIGHTSI_ELECTROCHEM_TEMPERATURE_LAWS_H

namespace brightsi::electrochem {

/// value(T) = reference * exp( -(Ea/R) * (1/T - 1/T_ref) ).
/// Positive Ea means the value increases with temperature (k0, D), negative
/// models viscosity-like decreases when used with the sign convention of
/// `ArrheniusLaw::at` (viscosity uses its own law below for clarity).
struct ArrheniusLaw {
  double reference_value = 0.0;
  double activation_energy_j_per_mol = 0.0;
  double reference_temperature_k = 300.0;

  /// Evaluates the law at `temperature_k` (must be > 0; checked).
  [[nodiscard]] double at(double temperature_k) const;
};

/// mu(T) = reference * exp( +(Ea/R) * (1/T - 1/T_ref) ): decreases with T
/// for positive Ea (Andrade behaviour of aqueous electrolytes, ~2 %/K).
struct ViscosityLaw {
  double reference_value_pa_s = 0.0;
  double activation_energy_j_per_mol = 16000.0;
  double reference_temperature_k = 300.0;

  [[nodiscard]] double at(double temperature_k) const;
};

/// value(T) = reference * (1 + coefficient * (T - T_ref)).
struct LinearLaw {
  double reference_value = 0.0;
  double coefficient_per_k = 0.0;
  double reference_temperature_k = 300.0;

  [[nodiscard]] double at(double temperature_k) const;
};

}  // namespace brightsi::electrochem

#endif  // BRIGHTSI_ELECTROCHEM_TEMPERATURE_LAWS_H
