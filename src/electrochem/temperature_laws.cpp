#include "electrochem/temperature_laws.h"

#include <cmath>

#include "electrochem/constants.h"
#include "numerics/contracts.h"

namespace brightsi::electrochem {

double ArrheniusLaw::at(double temperature_k) const {
  ensure_positive(temperature_k, "ArrheniusLaw temperature");
  const double r = constants::gas_constant_j_per_mol_k;
  return reference_value *
         std::exp(-(activation_energy_j_per_mol / r) *
                  (1.0 / temperature_k - 1.0 / reference_temperature_k));
}

double ViscosityLaw::at(double temperature_k) const {
  ensure_positive(temperature_k, "ViscosityLaw temperature");
  const double r = constants::gas_constant_j_per_mol_k;
  return reference_value_pa_s *
         std::exp(+(activation_energy_j_per_mol / r) *
                  (1.0 / temperature_k - 1.0 / reference_temperature_k));
}

double LinearLaw::at(double temperature_k) const {
  ensure_positive(temperature_k, "LinearLaw temperature");
  return reference_value * (1.0 + coefficient_per_k * (temperature_k - reference_temperature_k));
}

}  // namespace brightsi::electrochem
