// Redox couples, half-cell specifications and electrolyte bulk properties.
//
// A membrane-less co-laminar flow cell (paper Fig. 2) has two half-cells in
// one channel: the anode stream ("fuel", V2+/V3+ for the all-vanadium
// system) and the cathode stream ("oxidant", VO2+/VO2+). Each half-cell
// carries a redox couple, inlet concentrations of its oxidized and reduced
// forms, reaction kinetics (k0) and species diffusivity, all with
// temperature laws attached.
#ifndef BRIGHTSI_ELECTROCHEM_SPECIES_H
#define BRIGHTSI_ELECTROCHEM_SPECIES_H

#include <string>

#include "electrochem/temperature_laws.h"

namespace brightsi::electrochem {

/// Which electrode a half-cell belongs to.
enum class ElectrodeSide {
  kAnode,    ///< negative electrode; oxidation during discharge (eq. 2)
  kCathode,  ///< positive electrode; reduction during discharge (eq. 3)
};

/// One redox couple Ox + n e- <-> Red at an electrode.
struct RedoxCouple {
  std::string name;
  double standard_potential_v = 0.0;  ///< E0 vs SHE
  int electrons = 1;                  ///< n in eq. (1)
  double anodic_transfer_coefficient = 0.5;  ///< alpha in paper eq. (6)
};

/// Bulk electrolyte properties with temperature laws. Thermal values are
/// those of Table II (used by the thermal model for the coolant).
struct ElectrolyteProperties {
  LinearLaw density_kg_per_m3;            ///< rho(T)
  ViscosityLaw dynamic_viscosity_pa_s;    ///< mu(T)
  LinearLaw ionic_conductivity_s_per_m;   ///< sigma(T), the ohmic medium between electrodes
  double thermal_conductivity_w_per_m_k = 0.0;
  double volumetric_heat_capacity_j_per_m3_k = 0.0;

  /// Validates physical plausibility; throws std::invalid_argument.
  void validate() const;
};

/// A half-cell: couple, inlet composition and rate/transport parameters.
struct HalfCellSpec {
  RedoxCouple couple;
  double oxidized_inlet_concentration_mol_per_m3 = 0.0;  ///< C*_Ox
  double reduced_inlet_concentration_mol_per_m3 = 0.0;   ///< C*_Red
  ArrheniusLaw kinetic_rate_m_per_s;                     ///< k0(T)
  ArrheniusLaw diffusivity_m2_per_s;                     ///< D(T), same for both forms

  /// Validates physical plausibility; throws std::invalid_argument.
  void validate() const;
};

/// Complete chemistry of a co-laminar flow cell: both half-cells plus the
/// shared supporting electrolyte.
struct FlowCellChemistry {
  HalfCellSpec anode;
  HalfCellSpec cathode;
  ElectrolyteProperties electrolyte;

  /// Standard open-circuit voltage E0_pos - E0_neg (1.25 V for vanadium).
  [[nodiscard]] double standard_cell_voltage() const {
    return cathode.couple.standard_potential_v - anode.couple.standard_potential_v;
  }

  void validate() const;
};

}  // namespace brightsi::electrochem

#endif  // BRIGHTSI_ELECTROCHEM_SPECIES_H
