// Physical constants used by the electrochemical and thermal models.
#ifndef BRIGHTSI_ELECTROCHEM_CONSTANTS_H
#define BRIGHTSI_ELECTROCHEM_CONSTANTS_H

namespace brightsi::electrochem::constants {

inline constexpr double faraday_c_per_mol = 96485.33212;      ///< Faraday constant F
inline constexpr double gas_constant_j_per_mol_k = 8.314462618;  ///< universal gas constant R
inline constexpr double celsius_offset_k = 273.15;

/// F / (R T): the exponential scale of electrode kinetics at temperature T.
[[nodiscard]] inline double f_over_rt(double temperature_k) {
  return faraday_c_per_mol / (gas_constant_j_per_mol_k * temperature_k);
}

/// R T / F: "thermal voltage" of one-electron electrochemistry (25.7 mV at 25 C).
[[nodiscard]] inline double rt_over_f(double temperature_k) {
  return gas_constant_j_per_mol_k * temperature_k / faraday_c_per_mol;
}

[[nodiscard]] inline double celsius_to_kelvin(double celsius) {
  return celsius + celsius_offset_k;
}

[[nodiscard]] inline double kelvin_to_celsius(double kelvin) {
  return kelvin - celsius_offset_k;
}

}  // namespace brightsi::electrochem::constants

#endif  // BRIGHTSI_ELECTROCHEM_CONSTANTS_H
