#include "electrochem/reservoir.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "electrochem/constants.h"
#include "electrochem/nernst.h"
#include "numerics/contracts.h"

namespace brightsi::electrochem {

void ReservoirSpec::validate() const {
  ensure_positive(tank_volume_m3, "tank volume");
  ensure_positive(total_vanadium_mol_per_m3, "total vanadium concentration");
  chemistry.validate();
}

double ReservoirSpec::capacity_coulomb() const {
  return constants::faraday_c_per_mol * total_vanadium_mol_per_m3 * tank_volume_m3;
}

ElectrolyteReservoir::ElectrolyteReservoir(ReservoirSpec spec, double initial_soc)
    : spec_(std::move(spec)), soc_(initial_soc) {
  spec_.validate();
  ensure(initial_soc >= 0.001 && initial_soc <= 0.999,
         "initial SOC must lie in [0.001, 0.999]");
}

FlowCellChemistry ElectrolyteReservoir::chemistry_at(double soc) const {
  ensure(soc >= 0.0 && soc <= 1.0, "SOC must lie in [0, 1]");
  FlowCellChemistry c = spec_.chemistry;
  const double charged = std::max(soc, 1e-4) * spec_.total_vanadium_mol_per_m3;
  const double discharged =
      std::max(1.0 - soc, 1e-4) * spec_.total_vanadium_mol_per_m3;
  // Anolyte: charged form is the reduced V2+; catholyte: charged is VO2+.
  c.anode.reduced_inlet_concentration_mol_per_m3 = charged;
  c.anode.oxidized_inlet_concentration_mol_per_m3 = discharged;
  c.cathode.oxidized_inlet_concentration_mol_per_m3 = charged;
  c.cathode.reduced_inlet_concentration_mol_per_m3 = discharged;
  return c;
}

FlowCellChemistry ElectrolyteReservoir::chemistry_at_soc() const { return chemistry_at(soc_); }

double ElectrolyteReservoir::discharge(double current_a, double seconds,
                                       double crossover_current_a) {
  ensure_non_negative(seconds, "discharge duration");
  ensure_non_negative(crossover_current_a, "crossover current");
  const double net = current_a + crossover_current_a;
  const double delta = net * seconds / spec_.capacity_coulomb();
  soc_ = std::clamp(soc_ - delta, 0.0, 1.0);
  return soc_;
}

double ElectrolyteReservoir::runtime_to_floor_s(double current_a, double soc_floor,
                                                double crossover_current_a) const {
  ensure(soc_floor >= 0.0 && soc_floor < soc_, "SOC floor must be below the current SOC");
  const double net = current_a + crossover_current_a;
  if (net <= 0.0) {
    throw std::invalid_argument("runtime_to_floor_s: net discharge current must be positive");
  }
  return (soc_ - soc_floor) * spec_.capacity_coulomb() / net;
}

double ElectrolyteReservoir::ideal_energy_to_floor_j(double soc_floor, double temperature_k,
                                                     int quadrature_steps) const {
  ensure(soc_floor >= 0.0 && soc_floor < soc_, "SOC floor must be below the current SOC");
  ensure(quadrature_steps >= 2, "need at least two quadrature steps");
  // E = integral_{floor}^{soc} U(s) * Q_cap ds, midpoint rule.
  const double span = soc_ - soc_floor;
  const double ds = span / quadrature_steps;
  double energy = 0.0;
  for (int i = 0; i < quadrature_steps; ++i) {
    const double s = soc_floor + (i + 0.5) * ds;
    energy += open_circuit_voltage(chemistry_at(s), temperature_k) * ds;
  }
  return energy * spec_.capacity_coulomb();
}

}  // namespace brightsi::electrochem
