#include "electrochem/vanadium.h"

namespace brightsi::electrochem {
namespace {

constexpr double kReferenceTemperatureK = 300.0;

// Activation energies (J/mol). D follows Stokes-Einstein through the
// electrolyte viscosity (~16 kJ/mol for aqueous H2SO4); k0 of the vanadium
// couples is in the 20-30 kJ/mol range (Al-Fetlawi 2009). These values give
// the paper's observed net sensitivity: <= ~4 % current increase at the
// nominal 676 ml/min flow and up to ~23 % more power when the coolant runs
// hot (48 ml/min or 37 C inlet).
constexpr double kKineticActivationEnergy = 26000.0;
constexpr double kDiffusionActivationEnergy = 20000.0;
constexpr double kViscosityActivationEnergy = 16000.0;

// Ionic conductivity of the vanadium/H2SO4 supporting electrolyte: not
// tabulated in the paper; calibrated within the literature range (see
// header). The validation cell (2 M H2SO4, dilute vanadium) sits higher
// than the concentrated 2000 mol/m3 array electrolyte.
constexpr double kValidationConductivity = 40.0;  // S/m
constexpr double kArrayConductivity = 60.0;       // S/m
constexpr double kConductivityTempCoeff = 0.016;  // +1.6 %/K, vanadium/H2SO4 electrolytes

// Water-like thermal expansion; density effects are secondary here.
constexpr double kDensityTempCoeff = -3e-4;  // per K

ElectrolyteProperties make_electrolyte(double conductivity_s_per_m) {
  ElectrolyteProperties e;
  e.density_kg_per_m3 = {1260.0, kDensityTempCoeff, kReferenceTemperatureK};
  e.dynamic_viscosity_pa_s = {2.53e-3, kViscosityActivationEnergy, kReferenceTemperatureK};
  e.ionic_conductivity_s_per_m = {conductivity_s_per_m, kConductivityTempCoeff,
                                  kReferenceTemperatureK};
  e.thermal_conductivity_w_per_m_k = 0.67;          // Table II
  e.volumetric_heat_capacity_j_per_m3_k = 4.187e6;  // Table II
  return e;
}

}  // namespace

FlowCellChemistry kjeang2007_validation_chemistry() {
  FlowCellChemistry c;

  c.anode.couple = {"V(II)/V(III)", -0.255, 1, 0.5};
  c.anode.oxidized_inlet_concentration_mol_per_m3 = 80.0;   // V3+
  c.anode.reduced_inlet_concentration_mol_per_m3 = 920.0;   // V2+
  c.anode.kinetic_rate_m_per_s = {2.0e-5, kKineticActivationEnergy, kReferenceTemperatureK};
  c.anode.diffusivity_m2_per_s = {1.7e-10, kDiffusionActivationEnergy, kReferenceTemperatureK};

  c.cathode.couple = {"V(IV)/V(V)", 0.991, 1, 0.5};
  c.cathode.oxidized_inlet_concentration_mol_per_m3 = 992.0;  // VO2+
  c.cathode.reduced_inlet_concentration_mol_per_m3 = 8.0;     // VO2+
  c.cathode.kinetic_rate_m_per_s = {1.0e-5, kKineticActivationEnergy, kReferenceTemperatureK};
  c.cathode.diffusivity_m2_per_s = {1.3e-10, kDiffusionActivationEnergy, kReferenceTemperatureK};

  c.electrolyte = make_electrolyte(kValidationConductivity);
  c.validate();
  return c;
}

FlowCellChemistry power7_array_chemistry() {
  FlowCellChemistry c;

  c.anode.couple = {"V(II)/V(III)", -0.255, 1, 0.5};
  c.anode.oxidized_inlet_concentration_mol_per_m3 = 1.0;
  c.anode.reduced_inlet_concentration_mol_per_m3 = 2000.0;
  c.anode.kinetic_rate_m_per_s = {5.33e-5, kKineticActivationEnergy, kReferenceTemperatureK};
  c.anode.diffusivity_m2_per_s = {4.13e-10, kDiffusionActivationEnergy, kReferenceTemperatureK};

  c.cathode.couple = {"V(IV)/V(V)", 1.0, 1, 0.5};
  c.cathode.oxidized_inlet_concentration_mol_per_m3 = 2000.0;
  c.cathode.reduced_inlet_concentration_mol_per_m3 = 1.0;
  c.cathode.kinetic_rate_m_per_s = {4.67e-5, kKineticActivationEnergy, kReferenceTemperatureK};
  c.cathode.diffusivity_m2_per_s = {1.26e-10, kDiffusionActivationEnergy, kReferenceTemperatureK};

  c.electrolyte = make_electrolyte(kArrayConductivity);
  c.validate();
  return c;
}

}  // namespace brightsi::electrochem
