// Electrolyte reservoir and state-of-charge (SOC) model.
//
// Section II of the paper: "Redox flow cells are a type of secondary
// battery which stores energy in the electrolytes instead of the
// electrodes. The independent dimensioning of energy storage capacity
// (size of electrolyte reservoir) and power density (design of the
// electrochemical cell)..." — this module is that independent dimension.
//
// The reservoir tracks the vanadium composition of both tanks as charge is
// drawn (or replenished), exposes the chemistry at any SOC so the channel
// models can be evaluated across the discharge, and answers the system
// questions: how much energy is stored, how long can a load run, how fast
// does crossover self-discharge drift the tanks.
#ifndef BRIGHTSI_ELECTROCHEM_RESERVOIR_H
#define BRIGHTSI_ELECTROCHEM_RESERVOIR_H

#include "electrochem/species.h"

namespace brightsi::electrochem {

/// Sizing of the two electrolyte tanks (symmetric).
struct ReservoirSpec {
  double tank_volume_m3 = 1e-3;                 ///< per side (1 liter default)
  double total_vanadium_mol_per_m3 = 2000.0;    ///< C_V2+C_V3 (= C_V4+C_V5)
  /// Template chemistry providing couples, kinetics and electrolyte
  /// properties; inlet concentrations are overridden by the SOC.
  FlowCellChemistry chemistry;

  void validate() const;

  /// Faradaic capacity of one side in coulombs: F * C_total * V_tank.
  [[nodiscard]] double capacity_coulomb() const;
  /// Capacity in ampere-hours.
  [[nodiscard]] double capacity_ah() const { return capacity_coulomb() / 3600.0; }
};

/// Mutable reservoir state.
class ElectrolyteReservoir {
 public:
  /// Starts at `initial_soc` (fraction of charged species, in [0.001, 0.999]).
  ElectrolyteReservoir(ReservoirSpec spec, double initial_soc = 0.95);

  [[nodiscard]] double state_of_charge() const { return soc_; }
  [[nodiscard]] const ReservoirSpec& spec() const { return spec_; }

  /// Chemistry with inlet concentrations at the current SOC: anolyte
  /// {C_red = s*C, C_ox = (1-s)*C}, catholyte {C_ox = s*C, C_red = (1-s)*C}.
  [[nodiscard]] FlowCellChemistry chemistry_at_soc() const;
  /// Same at an arbitrary SOC (for sweeps without mutating the state).
  [[nodiscard]] FlowCellChemistry chemistry_at(double soc) const;

  /// Draws `current_a` for `seconds` (discharge when positive; charging
  /// when negative). Crossover/self-discharge current can be added on top.
  /// SOC clamps at [0, 1]; returns the SOC actually reached.
  double discharge(double current_a, double seconds, double crossover_current_a = 0.0);

  /// Seconds until the SOC hits `soc_floor` at a constant discharge
  /// current (plus crossover). Throws when the net current is not positive.
  [[nodiscard]] double runtime_to_floor_s(double current_a, double soc_floor,
                                          double crossover_current_a = 0.0) const;

  /// Ideal (Nernst, no overpotentials) stored electrical energy between
  /// the current SOC and `soc_floor`, in joules: integral of OCV(s) dQ.
  [[nodiscard]] double ideal_energy_to_floor_j(double soc_floor,
                                               double temperature_k = 300.0,
                                               int quadrature_steps = 64) const;

 private:
  ReservoirSpec spec_;
  double soc_;
};

}  // namespace brightsi::electrochem

#endif  // BRIGHTSI_ELECTROCHEM_RESERVOIR_H
