// Butler–Volmer electrode kinetics (paper eq. 6, standard form).
//
// Note on the paper's eq. (6): the exponents are printed as exp(a R T eta/F),
// which is dimensionally inconsistent (the argument would carry units of
// V.K.J/C…). The cited references (Bard & Faulkner 2001; Hamann & Vielstich
// 2005) give the standard form exp(a F eta / (R T)), which we implement:
//
//   i = i0 * [ (C_red,s / C_red,b) * exp( +alpha_a F eta / R T )
//            - (C_ox,s  / C_ox,b ) * exp( -(1 - alpha_a) F eta / R T ) ]
//
// with i0 = n F k0 (C_ox,b)^alpha_a (C_red,b)^(1-alpha_a). Positive i is
// anodic (oxidation) current; eta = E_electrode - E_equilibrium(bulk).
// Surface-to-bulk concentration ratios fold the mass-transport overpotential
// (paper eqs. 7–8) into the same expression.
#ifndef BRIGHTSI_ELECTROCHEM_BUTLER_VOLMER_H
#define BRIGHTSI_ELECTROCHEM_BUTLER_VOLMER_H

#include "electrochem/species.h"

namespace brightsi::electrochem {

/// Exchange current density i0 = n F k0 (C_ox)^alpha (C_red)^(1-alpha), in
/// A/m^2, evaluated at the given bulk composition and temperature.
[[nodiscard]] double exchange_current_density(const HalfCellSpec& half_cell,
                                              double oxidized_bulk_mol_per_m3,
                                              double reduced_bulk_mol_per_m3,
                                              double temperature_k);

/// Inputs of a Butler–Volmer evaluation.
struct ButlerVolmerState {
  double exchange_current_density_a_per_m2 = 0.0;  ///< i0
  double anodic_transfer_coefficient = 0.5;        ///< alpha_a
  double temperature_k = 300.0;
  /// Surface/bulk concentration ratios; 1.0 when transport is not limiting.
  double reduced_surface_ratio = 1.0;  ///< C_red,s / C_red,b
  double oxidized_surface_ratio = 1.0; ///< C_ox,s / C_ox,b
};

/// Current density (A/m^2, positive anodic) at overpotential `eta` (V).
[[nodiscard]] double butler_volmer_current(const ButlerVolmerState& state, double overpotential_v);

/// d(i)/d(eta), used by Newton solvers.
[[nodiscard]] double butler_volmer_slope(const ButlerVolmerState& state, double overpotential_v);

/// Inverse relation: the overpotential that produces `current_density`
/// (positive anodic / negative cathodic). Solved by damped Newton from an
/// asinh seed; accurate to ~1e-12 V. Throws when the requested current is
/// unreachable because a surface ratio is zero in the required direction.
[[nodiscard]] double overpotential_for_current(const ButlerVolmerState& state,
                                               double current_density_a_per_m2);

/// Film-model mass-transport overpotential of eq. (7)/(8): the Nernstian
/// shift caused by surface depletion, eta_mt = (RT/nF) ln(ratio) with the
/// sign convention of the paper. Exposed for the analytic model and tests.
[[nodiscard]] double mass_transport_overpotential(double surface_to_bulk_ratio,
                                                  int electrons, double temperature_k);

}  // namespace brightsi::electrochem

#endif  // BRIGHTSI_ELECTROCHEM_BUTLER_VOLMER_H
