#include "opt/objective.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace brightsi::opt {

namespace {

std::string format_bound(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

int metric_index(const std::string& metric, const std::vector<std::string>& metric_names,
                 const char* what) {
  for (std::size_t i = 0; i < metric_names.size(); ++i) {
    if (metric_names[i] == metric) {
      return static_cast<int>(i);
    }
  }
  std::string known;
  for (const std::string& name : metric_names) {
    known += known.empty() ? name : ", " + name;
  }
  throw std::invalid_argument(std::string(what) + " names unknown metric '" + metric +
                              "' (evaluator metrics: " + known + ")");
}

double parse_number(const std::string& text, const std::string& context) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size() || !std::isfinite(value)) {
      throw std::invalid_argument(text);
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(context + ": not a finite number: '" + text + "'");
  }
}

}  // namespace

std::string ObjectiveSpec::describe() const {
  std::string text;
  for (const ObjectiveTerm& term : terms) {
    if (!text.empty()) {
      text += " + ";
    }
    if (term.weight == 1.0) {
      text += "maximize " + term.metric;
    } else if (term.weight == -1.0) {
      text += "minimize " + term.metric;
    } else {
      text += format_bound(term.weight) + "*" + term.metric;
    }
  }
  if (text.empty()) {
    text = "(no objective terms)";
  }
  for (const MetricConstraint& constraint : constraints) {
    const bool has_min = std::isfinite(constraint.min);
    const bool has_max = std::isfinite(constraint.max);
    if (!has_min && !has_max) {
      continue;
    }
    text += text.find(" subject to ") == std::string::npos ? " subject to " : ", ";
    if (has_min && has_max) {
      text += format_bound(constraint.min) + " <= " + constraint.metric +
              " <= " + format_bound(constraint.max);
    } else if (has_max) {
      text += constraint.metric + " <= " + format_bound(constraint.max);
    } else {
      text += constraint.metric + " >= " + format_bound(constraint.min);
    }
  }
  return text;
}

ObjectiveSpec maximize_metric(std::string metric) {
  ObjectiveSpec spec;
  spec.terms.push_back({std::move(metric), 1.0});
  return spec;
}

ObjectiveSpec minimize_metric(std::string metric) {
  ObjectiveSpec spec;
  spec.terms.push_back({std::move(metric), -1.0});
  return spec;
}

ObjectiveTerm parse_objective_term(const std::string& text, double sign) {
  ObjectiveTerm term;
  const auto star = text.find('*');
  term.metric = text.substr(0, star);
  if (term.metric.empty()) {
    throw std::invalid_argument("objective term: expected metric[*weight], got: '" + text +
                                "'");
  }
  double weight = 1.0;
  if (star != std::string::npos) {
    weight = parse_number(text.substr(star + 1), "objective term '" + text + "'");
    if (weight <= 0.0) {
      throw std::invalid_argument("objective term '" + text +
                                  "': weight must be positive (use --minimize to negate)");
    }
  }
  term.weight = sign * weight;
  return term;
}

MetricConstraint parse_metric_bound(const std::string& text, bool upper) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size()) {
    throw std::invalid_argument("constraint: expected metric=value, got: '" + text + "'");
  }
  MetricConstraint constraint;
  constraint.metric = text.substr(0, eq);
  const double value = parse_number(text.substr(eq + 1), "constraint '" + text + "'");
  (upper ? constraint.max : constraint.min) = value;
  return constraint;
}

ResolvedObjective::ResolvedObjective(const ObjectiveSpec& spec,
                                     const std::vector<std::string>& metric_names) {
  if (spec.terms.empty()) {
    throw std::invalid_argument("objective has no terms: nothing to optimize");
  }
  for (const ObjectiveTerm& term : spec.terms) {
    if (term.weight == 0.0 || !std::isfinite(term.weight)) {
      throw std::invalid_argument("objective term '" + term.metric +
                                  "' has a zero or non-finite weight");
    }
    terms_.emplace_back(metric_index(term.metric, metric_names, "objective term"), term.weight);
  }
  for (const MetricConstraint& constraint : spec.constraints) {
    if (!(constraint.min <= constraint.max)) {
      throw std::invalid_argument(
          "constraint on '" + constraint.metric + "' is infeasible: min " +
          format_bound(constraint.min) + " > max " + format_bound(constraint.max));
    }
    constraints_.emplace_back(metric_index(constraint.metric, metric_names, "constraint"),
                              constraint);
  }
  if (spec.pareto_maximize.empty() != spec.pareto_minimize.empty()) {
    throw std::invalid_argument(
        "Pareto pair must name both metrics (maximize + minimize) or neither");
  }
  if (!spec.pareto_maximize.empty()) {
    pareto_maximize_index_ = metric_index(spec.pareto_maximize, metric_names, "Pareto pair");
    pareto_minimize_index_ = metric_index(spec.pareto_minimize, metric_names, "Pareto pair");
  }
}

double ResolvedObjective::score(const std::vector<double>& metrics) const {
  double total = 0.0;
  for (const auto& [index, weight] : terms_) {
    total += weight * metrics[static_cast<std::size_t>(index)];
  }
  return total;
}

bool ResolvedObjective::feasible(const std::vector<double>& metrics) const {
  for (const auto& [index, constraint] : constraints_) {
    const double value = metrics[static_cast<std::size_t>(index)];
    // A NaN metric is explicitly infeasible: it must not depend on which
    // side of the window is checked (NaN fails every ordered comparison,
    // so a hand-reordered `value > max` style test would silently pass it).
    if (std::isnan(value) || !(value >= constraint.min && value <= constraint.max)) {
      return false;
    }
  }
  return true;
}

double ResolvedObjective::constraint_violation(const std::vector<double>& metrics) const {
  double total = 0.0;
  for (const auto& [index, constraint] : constraints_) {
    const double value = metrics[static_cast<std::size_t>(index)];
    if (std::isnan(value)) {
      return std::numeric_limits<double>::infinity();
    }
    if (value < constraint.min) {
      total += constraint.min - value;
    }
    if (value > constraint.max) {
      total += value - constraint.max;
    }
  }
  return total;
}

}  // namespace brightsi::opt
