// Named, ready-to-run optimization studies over the paper's design space:
// channel geometry, flow rate/operating point, and VRM placement — the
// searchable counterparts of the registered sweep plans.
#ifndef BRIGHTSI_OPT_STUDIES_H
#define BRIGHTSI_OPT_STUDIES_H

#include <string>
#include <vector>

#include "opt/optimizer.h"

namespace brightsi::opt {

/// A registry entry: the study name plus a one-line summary for --list.
struct StudyDescription {
  std::string name;
  std::string summary;
};

/// All registered study names with summaries, in presentation order.
[[nodiscard]] const std::vector<StudyDescription>& registered_studies();

/// Builds the named study. Throws std::invalid_argument on an unknown
/// name.
[[nodiscard]] Study make_registered_study(const std::string& name);

}  // namespace brightsi::opt

#endif  // BRIGHTSI_OPT_STUDIES_H
