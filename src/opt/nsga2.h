// NSGA-II-style multi-objective evolutionary optimizer over the sweep
// machinery, with an RBF surrogate pre-screen (opt/surrogate.h).
//
// Where the grid optimizer (opt/optimizer.h) refines one incumbent along
// ≤3 axes, optimize_nsga2 evolves a population across the full mixed
// real/integer search box of a Study: non-dominated sorting with
// constraint domination (feasible beats infeasible; among infeasible the
// smaller total violation wins), crowding-distance diversity, simulated
// binary crossover + polynomial mutation. The two objectives are the
// study's Pareto pair (maximize one metric, minimize the other); the
// scalar ObjectiveSpec score is still computed per row, so the archive,
// incumbent and emitters are shared with the grid optimizer byte for byte.
//
// Each generation is one batched, cache-warm call through
// sweep::BatchEvaluationSession on the ExecutionBackend seam — so a
// population shards and resumes through --store exactly like a sweep, and
// rows stay byte-identical at any thread count. Everything random draws
// from one fixed-seed deterministic generator consumed on the serial
// driver thread: re-running (with a widened budget, against a warm store,
// or after a mid-generation kill) replays the identical candidate
// sequence, with already-stored rows resolved from disk.
#ifndef BRIGHTSI_OPT_NSGA2_H
#define BRIGHTSI_OPT_NSGA2_H

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "opt/optimizer.h"

namespace brightsi::opt {

struct Nsga2Options {
  int budget = 64;           ///< max real evaluator invocations (hard cap)
  int population = 16;       ///< individuals per generation (>= 4)
  int thread_count = 0;      ///< batch workers; 0 = hardware concurrency
  bool reuse_structures = true;
  /// Fixed by default: determinism — not statistical variety — is the
  /// contract. Change it only to study seed sensitivity.
  std::uint64_t seed = 0x5EEDB10C0DE5EEDULL;
  double crossover_probability = 0.9;  ///< per parent pair
  double crossover_eta = 15.0;         ///< SBX distribution index
  double mutation_eta = 20.0;          ///< polynomial-mutation index (rate = 1/dim)
  /// Surrogate pre-screen: each generation proposes screen_factor x
  /// population offspring, ranks them on RBF-predicted objectives and
  /// really evaluates only the best `population`. screen_factor 1 or
  /// surrogate=false disables the screen (every proposal is evaluated).
  bool surrogate = true;
  int screen_factor = 3;
  int surrogate_max_points = 192;  ///< newest archive rows used for training
  /// Execution backend (sweep/execution.h). Null = in-process local pool;
  /// a shard backend persists every evaluated row in an on-disk store, so
  /// a re-run resumes — mid-generation kills included.
  std::shared_ptr<sweep::ExecutionBackend> backend;
};

/// Runs the evolutionary optimizer on a study whose objective carries a
/// Pareto pair (the two objectives). Throws std::invalid_argument on an
/// invalid study, a missing Pareto pair, a budget < 1 or population < 4.
/// The result's pareto_indices are the feasible non-dominated rows of the
/// full archive, ascending in the maximized metric — the same contract as
/// the grid optimizer, so every emitter applies unchanged.
[[nodiscard]] OptResult optimize_nsga2(const Study& study, const Nsga2Options& options = {});

/// 2-D hypervolume of `front` — points as (maximized value, minimized
/// value) — relative to the reference (ref_maximize, ref_minimize): the
/// area dominated between each point and the reference corner. Points not
/// strictly better than the reference in both coordinates contribute
/// nothing. The comparison metric of BENCH_moo.json.
[[nodiscard]] double hypervolume_2d(std::vector<std::pair<double, double>> front,
                                    double ref_maximize, double ref_minimize);

}  // namespace brightsi::opt

#endif  // BRIGHTSI_OPT_NSGA2_H
