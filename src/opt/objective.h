// Objective specifications for design-space optimization: a weighted
// combination of sweep-evaluator metrics to maximize, hard per-metric
// feasibility windows (e.g. peak_t_c <= 86.85 C, i.e. T_max <= 360 K), and
// an optional 2-objective Pareto pair (net power vs peak temperature).
//
// An ObjectiveSpec is plain data naming metrics by their evaluator column
// names; binding it to a concrete evaluator (ResolvedObjective) validates
// the names and resolves indices once, so scoring a candidate is a tight
// loop over term indices.
#ifndef BRIGHTSI_OPT_OBJECTIVE_H
#define BRIGHTSI_OPT_OBJECTIVE_H

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace brightsi::opt {

/// One weighted term of the scalar objective. A positive weight maximizes
/// the metric, a negative weight minimizes it; the optimizer maximizes the
/// weighted sum.
struct ObjectiveTerm {
  std::string metric;
  double weight = 1.0;
};

/// Hard feasibility window on one metric. Candidates outside the window
/// are excluded from incumbency and the Pareto front (they stay in the
/// archive, marked infeasible).
struct MetricConstraint {
  std::string metric;
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();
};

struct ObjectiveSpec {
  std::vector<ObjectiveTerm> terms;
  std::vector<MetricConstraint> constraints;
  /// Optional 2-objective Pareto pair: trade maximizing `pareto_maximize`
  /// against minimizing `pareto_minimize`. Both empty disables front
  /// extraction; setting exactly one is invalid.
  std::string pareto_maximize;
  std::string pareto_minimize;

  /// Human-readable summary, e.g.
  /// "maximize net_w subject to peak_t_c <= 86.85".
  [[nodiscard]] std::string describe() const;
};

/// Single-term conveniences.
[[nodiscard]] ObjectiveSpec maximize_metric(std::string metric);
[[nodiscard]] ObjectiveSpec minimize_metric(std::string metric);

/// Parses "metric" or "metric*weight" into a term (weight defaults to 1;
/// `sign` scales it, -1 for --minimize). Throws std::invalid_argument with
/// a readable message on malformed input.
[[nodiscard]] ObjectiveTerm parse_objective_term(const std::string& text, double sign = 1.0);

/// Parses "metric=value" into a one-sided constraint: an upper bound when
/// `upper` is true (--cap), a lower bound otherwise (--floor). Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] MetricConstraint parse_metric_bound(const std::string& text, bool upper);

/// The objective bound to an evaluator's metric layout: names resolved to
/// indices, spec validated. The constructor throws std::invalid_argument
/// on an unknown metric name, an empty term list, a constraint window with
/// min > max, or a half-specified Pareto pair.
class ResolvedObjective {
 public:
  ResolvedObjective(const ObjectiveSpec& spec, const std::vector<std::string>& metric_names);

  /// Weighted objective value of one metric row (higher is better).
  [[nodiscard]] double score(const std::vector<double>& metrics) const;
  /// True when every constraint window contains its metric. A NaN value
  /// under any constraint is explicitly infeasible, regardless of which
  /// side of the window it would be compared against.
  [[nodiscard]] bool feasible(const std::vector<double>& metrics) const;
  /// Total distance outside the constraint windows (0 when feasible;
  /// +inf when a constrained metric is NaN). The constraint-domination
  /// measure of the evolutionary optimizer: among infeasible candidates,
  /// smaller violation wins.
  [[nodiscard]] double constraint_violation(const std::vector<double>& metrics) const;

  [[nodiscard]] bool has_pareto_pair() const { return pareto_maximize_index_ >= 0; }
  [[nodiscard]] int pareto_maximize_index() const { return pareto_maximize_index_; }
  [[nodiscard]] int pareto_minimize_index() const { return pareto_minimize_index_; }

 private:
  std::vector<std::pair<int, double>> terms_;                   ///< (metric index, weight)
  std::vector<std::pair<int, MetricConstraint>> constraints_;  ///< (metric index, window)
  int pareto_maximize_index_ = -1;
  int pareto_minimize_index_ = -1;
};

}  // namespace brightsi::opt

#endif  // BRIGHTSI_OPT_OBJECTIVE_H
