// Deterministic derivative-free design-space optimizer on top of the sweep
// engine. A Study names the search space (registered sweep parameters with
// bounds) and the ObjectiveSpec; optimize() drives a
// sweep::BatchEvaluationSession as a batch-parallel objective oracle:
// successive axis-grid refinement around the incumbent (each axis pass is
// one batched generation), followed by an optional Nelder–Mead polish of
// the continuous parameters with whatever budget remains.
//
// Everything is seed-free deterministic: candidate generation depends only
// on bounds and previously observed metric values, candidates are archived
// in submission order, ties break toward the earlier evaluation — so the
// emitted CSV/JSON is byte-identical for any thread count, mirroring the
// sweep engine's contract.
#ifndef BRIGHTSI_OPT_OPTIMIZER_H
#define BRIGHTSI_OPT_OPTIMIZER_H

#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "opt/objective.h"
#include "sweep/runner.h"

namespace brightsi::opt {

/// One search dimension: a registered sweep parameter with inclusive
/// bounds. `integer` snaps every candidate to the nearest whole value
/// (tap counts, channel counts).
struct StudyParameter {
  std::string param;
  double lower = 0.0;
  double upper = 0.0;
  bool integer = false;
};

/// A named optimization problem over the sweep machinery.
struct Study {
  std::string name;
  std::string summary;
  core::SystemConfig base;
  sweep::SweepEvaluator evaluator;
  ObjectiveSpec objective;
  std::vector<StudyParameter> parameters;
  /// Overrides stamped onto every candidate before its searched parameters
  /// (a searched parameter with the same name wins). Candidate names are
  /// derived from the searched parameters only, so fixing e.g. the
  /// transient backend leaves archive rows byte-comparable across runs.
  std::vector<std::pair<std::string, double>> fixed;

  /// Throws std::invalid_argument on an empty parameter set, an
  /// unregistered parameter, unordered bounds, or an objective that does
  /// not resolve against the evaluator's metrics.
  void validate() const;
};

struct OptimizerOptions {
  int budget = 64;           ///< max evaluator invocations (hard cap)
  int thread_count = 0;      ///< batch workers; 0 = hardware concurrency
  bool reuse_structures = true;
  int axis_points = 3;       ///< samples per axis per refinement pass (>= 2)
  double shrink = 0.5;       ///< per-pass contraction of the axis half-range
  int max_passes = 16;       ///< refinement passes before polish
  bool nelder_mead = true;   ///< polish continuous parameters with leftover budget
  /// Execution backend for the batch session (sweep/execution.h). Null =
  /// the in-process local backend from thread_count/reuse_structures; a
  /// shard backend gives the study a persistent on-disk result store, so
  /// a re-run (or a widened budget) skips already-evaluated candidates.
  std::shared_ptr<sweep::ExecutionBackend> backend;
};

/// The archive of one optimization run. `archive` holds every evaluated
/// candidate in evaluation order, in the sweep result-row format (so the
/// sweep CSV/JSON writers apply to it directly).
struct OptResult {
  std::string study_name;
  std::string objective_description;
  sweep::SweepResult archive;
  std::vector<double> scores;       ///< per row; -inf when failed or infeasible
  std::vector<bool> feasible;       ///< per row (false when the evaluation failed)
  int best_index = -1;              ///< archive row of the incumbent; -1 = none feasible
  std::vector<int> pareto_indices;  ///< non-dominated rows, ascending in the
                                    ///< maximized metric; empty when no pair configured
  int passes = 0;                   ///< refinement passes executed
  int polish_steps = 0;             ///< Nelder–Mead iterations executed
  int model_builds = 0;             ///< worker structure builds (cache misses)
  std::string algo = "grid";        ///< producing algorithm ("grid", "nsga2")
  int generations = 0;              ///< evolutionary generations (nsga2 only)
  long long surrogate_candidates = 0;  ///< offspring proposed to the pre-screen
  long long surrogate_screened = 0;    ///< offspring the pre-screen rejected

  [[nodiscard]] const sweep::ScenarioResult* best() const;
  [[nodiscard]] long long evaluations() const {
    return static_cast<long long>(archive.rows.size());
  }
};

/// Runs the optimizer. Throws std::invalid_argument on an invalid study or
/// a non-positive budget.
[[nodiscard]] OptResult optimize(const Study& study, const OptimizerOptions& options = {});

/// Clamps `point` to the study's bounds, snaps integer parameters and
/// canonicalizes -0.0 to +0.0 — the coordinate normal form shared by both
/// optimizers, so exact-coordinate dedup, candidate names and the store's
/// content hash all agree on one representation per design.
[[nodiscard]] std::vector<double> snap_study_point(const Study& study,
                                                   std::vector<double> point);

/// The ScenarioSpec of one candidate: the study's fixed overrides, then
/// the searched parameters (which win on collision). The name derives from
/// the searched parameters only, so rows stay byte-comparable across runs
/// that differ in fixed overrides.
[[nodiscard]] sweep::ScenarioSpec make_candidate_spec(const Study& study,
                                                      const std::vector<double>& point);

/// 2-objective non-dominated filter over (maximize metrics[max_index],
/// minimize metrics[min_index]) of the given rows; returns the surviving
/// indices of `row_indices`, sorted ascending by the maximized metric
/// (ties by archive order). Exposed for tests.
[[nodiscard]] std::vector<int> pareto_front(const sweep::SweepResult& archive,
                                            const std::vector<int>& row_indices,
                                            int max_index, int min_index);

/// Archive rows in the sweep CSV format, extended with score / feasible /
/// incumbent / Pareto-membership columns. Byte-identical for any thread
/// count.
void write_opt_csv(std::ostream& os, const OptResult& result);

/// The Pareto-front rows only, in exactly the sweep CSV row format.
void write_pareto_csv(std::ostream& os, const OptResult& result);

/// Study metadata, the best design, the Pareto front and the full archive
/// as one JSON document (timing excluded; deterministic).
void write_opt_json(std::ostream& os, const OptResult& result);

}  // namespace brightsi::opt

#endif  // BRIGHTSI_OPT_OPTIMIZER_H
