#include "opt/surrogate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/dense_matrix.h"

namespace brightsi::opt {

namespace {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

/// Median pairwise distance: the classical shape heuristic. Deterministic
/// (nth_element over exact doubles) and scale-free in the normalized box.
double median_pairwise_distance(const std::vector<std::vector<double>>& points) {
  std::vector<double> distances;
  distances.reserve(points.size() * (points.size() - 1) / 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      distances.push_back(std::sqrt(squared_distance(points[i], points[j])));
    }
  }
  if (distances.empty()) {
    return 0.0;
  }
  const std::size_t mid = distances.size() / 2;
  std::nth_element(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(mid),
                   distances.end());
  return distances[mid];
}

}  // namespace

bool RbfSurrogate::train(const std::vector<std::vector<double>>& points,
                         const std::vector<std::vector<double>>& targets) {
  centers_.clear();
  weights_.clear();
  means_.clear();
  const int n = static_cast<int>(points.size());
  if (n < 2 || targets.size() != points.size()) {
    return false;
  }
  const std::size_t dim = points.front().size();
  if (n < static_cast<int>(dim) + 2) {
    return false;  // under-determined: predictions would be extrapolation noise
  }
  const double shape = median_pairwise_distance(points);
  if (!(shape > 0.0) || !std::isfinite(shape)) {
    return false;  // coincident points
  }
  inv_shape_sq_ = 1.0 / (shape * shape);

  // K_ij = exp(-|x_i - x_j|^2 / c^2), ridged for conditioning: the
  // surrogate is a screen, not a certificate, so a tiny interpolation
  // error is a fair trade for never throwing on a clustered archive.
  numerics::DenseMatrix kernel(n, n);
  constexpr double kRidge = 1e-8;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double k =
          std::exp(-squared_distance(points[static_cast<std::size_t>(i)],
                                     points[static_cast<std::size_t>(j)]) *
                   inv_shape_sq_);
      kernel.at(i, j) = k + (i == j ? kRidge : 0.0);
    }
  }

  const std::size_t columns = targets.front().size();
  std::vector<std::vector<double>> weights(columns);
  std::vector<double> means(columns, 0.0);
  try {
    const numerics::LuFactorization lu(kernel);
    std::vector<double> rhs(static_cast<std::size_t>(n));
    for (std::size_t c = 0; c < columns; ++c) {
      double mean = 0.0;
      for (int i = 0; i < n; ++i) {
        mean += targets[static_cast<std::size_t>(i)][c];
      }
      mean /= static_cast<double>(n);
      for (int i = 0; i < n; ++i) {
        rhs[static_cast<std::size_t>(i)] = targets[static_cast<std::size_t>(i)][c] - mean;
      }
      weights[c].resize(static_cast<std::size_t>(n));
      lu.solve(rhs, weights[c]);
      means[c] = mean;
    }
  } catch (const std::runtime_error&) {
    return false;  // singular despite the ridge: skip this generation's screen
  }
  centers_ = points;
  weights_ = std::move(weights);
  means_ = std::move(means);
  return true;
}

std::vector<double> RbfSurrogate::predict(const std::vector<double>& x) const {
  std::vector<double> prediction(means_);
  for (std::size_t i = 0; i < centers_.size(); ++i) {
    const double k = std::exp(-squared_distance(centers_[i], x) * inv_shape_sq_);
    for (std::size_t c = 0; c < weights_.size(); ++c) {
      prediction[c] += weights_[c][i] * k;
    }
  }
  return prediction;
}

}  // namespace brightsi::opt
