#include "opt/nsga2.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "opt/surrogate.h"

namespace brightsi::opt {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// SplitMix64: tiny, seed-stable and platform-independent. Every random
/// draw of a run comes from one instance consumed on the serial driver
/// thread, so the candidate sequence is a pure function of the seed.
struct Rng {
  std::uint64_t state;

  std::uint64_t next_u64() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1): the top 53 bits, exactly representable.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n).
  std::size_t next_index(std::size_t n) { return static_cast<std::size_t>(next_u64() % n); }
};

/// The two Pareto objectives and the constraint violation of one archive
/// row, with failed evaluations pushed past every infeasible success.
struct RowObjectives {
  double maximize = 0.0;
  double minimize = 0.0;
  double violation = kInfinity;  ///< 0 = feasible; +inf = failed / NaN
};

/// Mutable state of one optimize_nsga2() run. Mirrors the grid
/// optimizer's SearchState: archive rows in evaluation order, exact
/// coordinates deduped, strict-improvement incumbent.
struct EvoState {
  const Study& study;
  ResolvedObjective objective;
  sweep::BatchEvaluationSession session;
  const Nsga2Options& options;

  OptResult result;
  std::vector<std::vector<double>> points;      ///< coordinates per archive row
  std::vector<RowObjectives> row_objectives;    ///< per archive row
  std::map<std::vector<double>, int> seen;
  double best_score = -kInfinity;

  [[nodiscard]] bool budget_exhausted() const {
    return static_cast<int>(result.archive.rows.size()) >= options.budget;
  }
};

RowObjectives classify_row(const EvoState& state, const sweep::ScenarioResult& row) {
  RowObjectives objectives;
  if (row.failed) {
    return objectives;  // violation stays +inf; metrics may be empty
  }
  const double f =
      row.metrics[static_cast<std::size_t>(state.objective.pareto_maximize_index())];
  const double g =
      row.metrics[static_cast<std::size_t>(state.objective.pareto_minimize_index())];
  if (std::isnan(f) || std::isnan(g)) {
    return objectives;  // a NaN objective cannot be ranked: treat as failed
  }
  objectives.maximize = f;
  objectives.minimize = g;
  objectives.violation = state.objective.constraint_violation(row.metrics);
  return objectives;
}

/// Constraint domination (Deb 2002): a feasible point dominates any
/// infeasible one; among infeasible points the smaller violation wins;
/// among feasible points standard Pareto domination applies.
bool dominates(const RowObjectives& a, const RowObjectives& b) {
  const bool a_feasible = a.violation == 0.0;
  const bool b_feasible = b.violation == 0.0;
  if (a_feasible != b_feasible) {
    return a_feasible;
  }
  if (!a_feasible) {
    return a.violation < b.violation;
  }
  const bool no_worse = a.maximize >= b.maximize && a.minimize <= b.minimize;
  const bool strictly_better = a.maximize > b.maximize || a.minimize < b.minimize;
  return no_worse && strictly_better;
}

/// Non-dominated sort of `rows` (archive indices): rank per row, fronts
/// in rank order. O(n^2) comparisons — populations are tens of rows.
std::vector<std::vector<int>> sort_fronts(const EvoState& state, const std::vector<int>& rows,
                                          std::map<int, int>& rank_of) {
  const std::size_t n = rows.size();
  std::vector<std::vector<int>> dominated_by(n);
  std::vector<int> domination_count(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const RowObjectives& a = state.row_objectives[static_cast<std::size_t>(rows[i])];
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      const RowObjectives& b = state.row_objectives[static_cast<std::size_t>(rows[j])];
      if (dominates(a, b)) {
        dominated_by[i].push_back(static_cast<int>(j));
      } else if (dominates(b, a)) {
        ++domination_count[i];
      }
    }
  }

  std::vector<std::vector<int>> fronts;
  std::vector<int> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (domination_count[i] == 0) {
      current.push_back(static_cast<int>(i));
    }
  }
  int rank = 0;
  while (!current.empty()) {
    std::vector<int> next;
    std::vector<int> front_rows;
    for (const int i : current) {
      rank_of[rows[static_cast<std::size_t>(i)]] = rank;
      front_rows.push_back(rows[static_cast<std::size_t>(i)]);
      for (const int j : dominated_by[static_cast<std::size_t>(i)]) {
        if (--domination_count[static_cast<std::size_t>(j)] == 0) {
          next.push_back(j);
        }
      }
    }
    fronts.push_back(std::move(front_rows));
    current = std::move(next);
    std::sort(current.begin(), current.end());  // deterministic intra-front order
    ++rank;
  }
  return fronts;
}

/// Crowding distance within one front: per-objective span-normalized gap
/// to the sorted neighbors, boundaries infinite. Sort ties break on the
/// archive index, so the measure is deterministic.
std::map<int, double> crowding_distances(const EvoState& state, const std::vector<int>& front) {
  std::map<int, double> distance;
  for (const int row : front) {
    distance[row] = 0.0;
  }
  if (front.size() <= 2) {
    for (const int row : front) {
      distance[row] = kInfinity;
    }
    return distance;
  }
  const auto accumulate = [&](auto value_of) {
    std::vector<int> order = front;
    std::sort(order.begin(), order.end(), [&](int x, int y) {
      const double vx = value_of(x);
      const double vy = value_of(y);
      return vx != vy ? vx < vy : x < y;
    });
    const double span = value_of(order.back()) - value_of(order.front());
    distance[order.front()] = kInfinity;
    distance[order.back()] = kInfinity;
    if (span <= 0.0) {
      return;
    }
    for (std::size_t i = 1; i + 1 < order.size(); ++i) {
      if (distance[order[i]] != kInfinity) {
        distance[order[i]] += (value_of(order[i + 1]) - value_of(order[i - 1])) / span;
      }
    }
  };
  accumulate([&](int row) { return state.row_objectives[static_cast<std::size_t>(row)].maximize; });
  accumulate([&](int row) { return state.row_objectives[static_cast<std::size_t>(row)].minimize; });
  accumulate([&](int row) { return state.row_objectives[static_cast<std::size_t>(row)].violation; });
  return distance;
}

/// Binary tournament on (rank asc, crowding desc, archive index asc).
int tournament(Rng& rng, const std::vector<int>& population, const std::map<int, int>& rank_of,
               const std::map<int, double>& crowding) {
  const int a = population[rng.next_index(population.size())];
  const int b = population[rng.next_index(population.size())];
  const int rank_a = rank_of.at(a);
  const int rank_b = rank_of.at(b);
  if (rank_a != rank_b) {
    return rank_a < rank_b ? a : b;
  }
  const double crowd_a = crowding.at(a);
  const double crowd_b = crowding.at(b);
  if (crowd_a != crowd_b) {
    return crowd_a > crowd_b ? a : b;
  }
  return std::min(a, b);
}

/// Box-normalized coordinates in [0, 1] per axis (degenerate axes map
/// to 0): the shared coordinate frame of SBX, mutation and the surrogate.
std::vector<double> normalize(const Study& study, const std::vector<double>& point) {
  std::vector<double> u(point.size());
  for (std::size_t a = 0; a < point.size(); ++a) {
    const double span = study.parameters[a].upper - study.parameters[a].lower;
    u[a] = span > 0.0 ? (point[a] - study.parameters[a].lower) / span : 0.0;
  }
  return u;
}

std::vector<double> denormalize(const Study& study, const std::vector<double>& u) {
  std::vector<double> point(u.size());
  for (std::size_t a = 0; a < u.size(); ++a) {
    const StudyParameter& parameter = study.parameters[a];
    point[a] = parameter.lower + u[a] * (parameter.upper - parameter.lower);
  }
  return point;
}

/// One SBX child in normalized coordinates (Deb & Agrawal 1995). Draws a
/// fixed number of RNG values per axis regardless of branch, keeping the
/// stream position independent of the parents' values.
std::vector<double> sbx_child(Rng& rng, const std::vector<double>& p1,
                              const std::vector<double>& p2, double probability, double eta) {
  std::vector<double> child(p1.size());
  const bool crossover = rng.next_double() < probability;
  for (std::size_t a = 0; a < p1.size(); ++a) {
    const double u = rng.next_double();
    const double pick = rng.next_double();
    if (!crossover) {
      child[a] = p1[a];
      continue;
    }
    const double beta = u <= 0.5 ? std::pow(2.0 * u, 1.0 / (eta + 1.0))
                                 : std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
    const double c1 = 0.5 * ((1.0 + beta) * p1[a] + (1.0 - beta) * p2[a]);
    const double c2 = 0.5 * ((1.0 - beta) * p1[a] + (1.0 + beta) * p2[a]);
    child[a] = std::clamp(pick < 0.5 ? c1 : c2, 0.0, 1.0);
  }
  return child;
}

/// Boundary-aware polynomial mutation in place (rate 1/dim). Like
/// sbx_child, consumes a fixed two draws per axis.
void mutate(Rng& rng, std::vector<double>& u, double eta) {
  const double rate = 1.0 / static_cast<double>(u.size());
  for (double& value : u) {
    const double hit = rng.next_double();
    const double r = rng.next_double();
    if (hit >= rate) {
      continue;
    }
    const double lo = value;        // distance to the lower boundary
    const double hi = 1.0 - value;  // distance to the upper boundary
    double delta = 0.0;
    if (r < 0.5) {
      const double b = 2.0 * r + (1.0 - 2.0 * r) * std::pow(hi, eta + 1.0);
      delta = std::pow(b, 1.0 / (eta + 1.0)) - 1.0;
    } else {
      const double b = 2.0 * (1.0 - r) + 2.0 * (r - 0.5) * std::pow(lo, eta + 1.0);
      delta = 1.0 - std::pow(b, 1.0 / (eta + 1.0));
    }
    value = std::clamp(value + delta, 0.0, 1.0);
  }
}

/// Latin-hypercube initial population: one random axis permutation per
/// dimension, jittered within each stratum — broad coverage from the very
/// first generation, still a pure function of the seed.
std::vector<std::vector<double>> latin_hypercube(Rng& rng, const Study& study, int count) {
  const std::size_t dim = study.parameters.size();
  std::vector<std::vector<std::size_t>> perms(dim);
  for (std::size_t a = 0; a < dim; ++a) {
    perms[a].resize(static_cast<std::size_t>(count));
    for (std::size_t i = 0; i < perms[a].size(); ++i) {
      perms[a][i] = i;
    }
    for (std::size_t i = perms[a].size(); i > 1; --i) {
      std::swap(perms[a][i - 1], perms[a][rng.next_index(i)]);
    }
  }
  std::vector<std::vector<double>> points;
  points.reserve(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < static_cast<std::size_t>(count); ++i) {
    std::vector<double> u(dim);
    for (std::size_t a = 0; a < dim; ++a) {
      u[a] = (static_cast<double>(perms[a][i]) + rng.next_double()) /
             static_cast<double>(count);
    }
    points.push_back(snap_study_point(study, denormalize(study, u)));
  }
  return points;
}

/// Evaluates the fresh prefix of `candidates` that fits the remaining
/// budget — the same submission-order, strict-improvement bookkeeping as
/// the grid optimizer's evaluate_batch, plus the Pareto objectives.
void evaluate_candidates(EvoState& state, const std::vector<std::vector<double>>& candidates) {
  std::vector<sweep::ScenarioSpec> specs;
  std::vector<std::vector<double>> fresh;
  const int archived = static_cast<int>(state.result.archive.rows.size());
  for (const std::vector<double>& point : candidates) {
    if (state.seen.contains(point)) {
      continue;
    }
    if (archived + static_cast<int>(specs.size()) >= state.options.budget) {
      break;
    }
    state.seen.emplace(point, archived + static_cast<int>(specs.size()));
    specs.push_back(make_candidate_spec(state.study, point));
    fresh.push_back(point);
  }
  if (specs.empty()) {
    return;
  }

  std::vector<sweep::ScenarioResult> rows = state.session.evaluate(specs);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const bool ok = !rows[i].failed && state.objective.feasible(rows[i].metrics);
    const double score = ok ? state.objective.score(rows[i].metrics) : -kInfinity;
    state.row_objectives.push_back(classify_row(state, rows[i]));
    state.result.archive.rows.push_back(std::move(rows[i]));
    state.points.push_back(fresh[i]);
    state.result.feasible.push_back(ok);
    state.result.scores.push_back(score);
    if (score > state.best_score) {
      state.best_score = score;
      state.result.best_index = static_cast<int>(state.result.archive.rows.size()) - 1;
    }
  }
}

/// Environmental selection: the best `count` of `rows` by (front rank,
/// crowding distance). The last front that fits is truncated by crowding,
/// ties on the archive index.
std::vector<int> select_survivors(const EvoState& state, const std::vector<int>& rows,
                                  int count) {
  std::map<int, int> rank_of;
  const std::vector<std::vector<int>> fronts = sort_fronts(state, rows, rank_of);
  std::vector<int> survivors;
  for (const std::vector<int>& front : fronts) {
    if (static_cast<int>(survivors.size() + front.size()) <= count) {
      survivors.insert(survivors.end(), front.begin(), front.end());
      continue;
    }
    const std::map<int, double> crowding = crowding_distances(state, front);
    std::vector<int> order = front;
    std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
      const double cx = crowding.at(x);
      const double cy = crowding.at(y);
      return cx != cy ? cx > cy : x < y;
    });
    for (const int row : order) {
      if (static_cast<int>(survivors.size()) >= count) {
        break;
      }
      survivors.push_back(row);
    }
    break;
  }
  std::sort(survivors.begin(), survivors.end());
  return survivors;
}

/// Trains the surrogate on the newest non-failed archive rows (normalized
/// coordinates against the raw Pareto objectives). False when the archive
/// is too small or degenerate — the caller then skips the screen.
bool train_surrogate(const EvoState& state, RbfSurrogate& surrogate) {
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> targets;
  const std::size_t total = state.result.archive.rows.size();
  const std::size_t cap = static_cast<std::size_t>(std::max(1, state.options.surrogate_max_points));
  const std::size_t start = total > cap ? total - cap : 0;
  for (std::size_t i = start; i < total; ++i) {
    const RowObjectives& objectives = state.row_objectives[i];
    if (objectives.violation == kInfinity) {
      continue;  // failed / NaN rows carry no objective signal
    }
    inputs.push_back(normalize(state.study, state.points[i]));
    targets.push_back({objectives.maximize, objectives.minimize});
  }
  return surrogate.train(inputs, targets);
}

/// Ranks `pool` on surrogate-predicted objectives and keeps the best
/// `count`: non-dominated sort plus crowding on the predictions, exactly
/// the selection pressure the real evaluation would apply.
std::vector<std::vector<double>> screen_pool(const EvoState& state,
                                             const RbfSurrogate& surrogate,
                                             const std::vector<std::vector<double>>& pool,
                                             int count) {
  struct Predicted {
    std::size_t pool_index;
    RowObjectives objectives;
  };
  std::vector<Predicted> predicted;
  predicted.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const std::vector<double> y = surrogate.predict(normalize(state.study, pool[i]));
    predicted.push_back({i, {y[0], y[1], 0.0}});
  }
  // Reuse the domination machinery on a synthetic index space: a simple
  // O(n^2) rank (count of dominators) plus a per-objective crowding proxy
  // keeps this self-contained and deterministic.
  const std::size_t n = predicted.size();
  std::vector<int> dominators(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && dominates(predicted[j].objectives, predicted[i].objectives)) {
        ++dominators[i];
      }
    }
  }
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (dominators[x] != dominators[y]) {
      return dominators[x] < dominators[y];
    }
    return x < y;  // proposal order: earlier offspring win ties
  });
  std::vector<std::vector<double>> kept;
  kept.reserve(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < n && static_cast<int>(kept.size()) < count; ++i) {
    kept.push_back(pool[order[i]]);
  }
  return kept;
}

}  // namespace

OptResult optimize_nsga2(const Study& study, const Nsga2Options& options) {
  study.validate();
  if (options.budget < 1) {
    throw std::invalid_argument("nsga2 budget must be at least 1");
  }
  if (options.population < 4) {
    throw std::invalid_argument("nsga2 population must be at least 4");
  }

  EvoState state{study,
                 ResolvedObjective(study.objective, study.evaluator.metrics),
                 sweep::BatchEvaluationSession(study.base, study.evaluator,
                                               {options.thread_count, options.reuse_structures},
                                               options.backend),
                 options,
                 {},
                 {},
                 {},
                 {},
                 -kInfinity};
  if (!state.objective.has_pareto_pair()) {
    throw std::invalid_argument("study '" + study.name +
                                "' has no Pareto pair; nsga2 needs two objectives");
  }
  state.result.algo = "nsga2";
  state.result.study_name = study.name;
  state.result.objective_description = study.objective.describe();
  state.result.archive.plan_name = study.name;
  state.result.archive.evaluator_name = study.evaluator.name;
  state.result.archive.metric_names = study.evaluator.metrics;
  state.result.archive.thread_count = state.session.thread_count();
  for (const StudyParameter& parameter : study.parameters) {
    state.result.archive.override_names.push_back(parameter.param);
  }

  Rng rng{options.seed};
  const int population_size = std::min(options.population, options.budget);

  // Generation 0: Latin-hypercube coverage of the box. Snapping and exact
  // dedup may collapse strata (integer axes); top up with uniform draws.
  std::vector<std::vector<double>> initial = latin_hypercube(rng, study, population_size);
  {
    std::map<std::vector<double>, int> unique;
    std::vector<std::vector<double>> deduped;
    for (std::vector<double>& point : initial) {
      if (unique.emplace(point, 0).second) {
        deduped.push_back(std::move(point));
      }
    }
    int attempts = 0;
    const int attempt_cap = 64 * population_size;
    while (static_cast<int>(deduped.size()) < population_size && attempts++ < attempt_cap) {
      std::vector<double> u(study.parameters.size());
      for (double& value : u) {
        value = rng.next_double();
      }
      std::vector<double> point = snap_study_point(study, denormalize(study, u));
      if (unique.emplace(point, 0).second) {
        deduped.push_back(std::move(point));
      }
    }
    initial = std::move(deduped);
  }
  evaluate_candidates(state, initial);

  // Population = archive indices of the current survivors.
  std::vector<int> population(state.result.archive.rows.size());
  for (std::size_t i = 0; i < population.size(); ++i) {
    population[i] = static_cast<int>(i);
  }

  RbfSurrogate surrogate;
  while (!state.budget_exhausted() && !population.empty()) {
    std::map<int, int> rank_of;
    const std::vector<std::vector<int>> fronts = sort_fronts(state, population, rank_of);
    std::map<int, double> crowding;
    for (const std::vector<int>& front : fronts) {
      for (const auto& [row, distance] : crowding_distances(state, front)) {
        crowding[row] = distance;
      }
    }

    const bool screening = options.surrogate && options.screen_factor > 1 &&
                           train_surrogate(state, surrogate);
    const int want = screening ? population_size * options.screen_factor : population_size;

    // Propose offspring, deduping against everything already evaluated
    // and against this generation's own pool.
    std::vector<std::vector<double>> pool;
    std::map<std::vector<double>, int> in_pool;
    int attempts = 0;
    const int attempt_cap = 30 * want;
    while (static_cast<int>(pool.size()) < want && attempts++ < attempt_cap) {
      const int parent1 = tournament(rng, population, rank_of, crowding);
      const int parent2 = tournament(rng, population, rank_of, crowding);
      std::vector<double> u = sbx_child(
          rng, normalize(study, state.points[static_cast<std::size_t>(parent1)]),
          normalize(study, state.points[static_cast<std::size_t>(parent2)]),
          options.crossover_probability, options.crossover_eta);
      mutate(rng, u, options.mutation_eta);
      std::vector<double> point = snap_study_point(study, denormalize(study, u));
      if (state.seen.contains(point) || in_pool.contains(point)) {
        continue;
      }
      in_pool.emplace(point, 0);
      pool.push_back(std::move(point));
    }
    if (pool.empty()) {
      break;  // the reachable design space is exhausted
    }

    std::vector<std::vector<double>> offspring;
    if (screening) {
      state.result.surrogate_candidates += static_cast<long long>(pool.size());
      offspring = screen_pool(state, surrogate, pool, population_size);
      state.result.surrogate_screened +=
          static_cast<long long>(pool.size()) - static_cast<long long>(offspring.size());
    } else {
      offspring = std::move(pool);
      if (static_cast<int>(offspring.size()) > population_size) {
        offspring.resize(static_cast<std::size_t>(population_size));
      }
    }

    const int before = static_cast<int>(state.result.archive.rows.size());
    evaluate_candidates(state, offspring);
    const int after = static_cast<int>(state.result.archive.rows.size());
    if (after == before) {
      break;  // budget exhausted before any offspring could run
    }
    ++state.result.generations;

    std::vector<int> merged = population;
    for (int row = before; row < after; ++row) {
      merged.push_back(row);
    }
    population = select_survivors(state, merged, population_size);
  }

  std::vector<int> feasible_rows;
  for (std::size_t i = 0; i < state.result.archive.rows.size(); ++i) {
    if (state.result.feasible[i]) {
      feasible_rows.push_back(static_cast<int>(i));
    }
  }
  state.result.pareto_indices =
      pareto_front(state.result.archive, feasible_rows,
                   state.objective.pareto_maximize_index(),
                   state.objective.pareto_minimize_index());
  state.result.model_builds = state.session.model_build_count();
  state.result.archive.exec = state.session.execution_stats();
  return std::move(state.result);
}

double hypervolume_2d(std::vector<std::pair<double, double>> front, double ref_maximize,
                      double ref_minimize) {
  // Keep only points strictly better than the reference in both
  // coordinates, sweep them in descending maximized value and accumulate
  // the dominated staircase area.
  std::erase_if(front, [&](const std::pair<double, double>& p) {
    return !(p.first > ref_maximize) || !(p.second < ref_minimize);
  });
  std::sort(front.begin(), front.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  double hypervolume = 0.0;
  double previous_min = ref_minimize;
  for (const auto& [f, g] : front) {
    if (g >= previous_min) {
      continue;  // dominated by an earlier (larger-f) point
    }
    hypervolume += (f - ref_maximize) * (previous_min - g);
    previous_min = g;
  }
  return hypervolume;
}

}  // namespace brightsi::opt
