#include "opt/studies.h"

#include <stdexcept>

#include "sweep/evaluators.h"

namespace brightsi::opt {

namespace {

/// The paper's T_max <= 360 K junction cap, in the evaluators' Celsius
/// metric.
constexpr double kPeakCapC = 360.0 - 273.15;

MetricConstraint peak_temperature_cap() {
  MetricConstraint cap;
  cap.metric = "peak_t_c";
  cap.max = kPeakCapC;
  return cap;
}

/// Channel sizing + operating point against deliverable net power, under
/// the junction-temperature cap: the searchable counterpart of the
/// ablation_geometry sweep plan (same array design-point metrics, plus the
/// steady thermal solve that prices each candidate's peak temperature).
Study channel_geometry_study() {
  Study study;
  study.name = "channel_geometry";
  study.summary =
      "channel gap/height, flow and inlet-T vs net power, T_peak <= 360 K cap";
  study.base = core::power7_system_config();
  study.base.thermal_grid.axial_cells = 16;
  study.evaluator = sweep::array_thermal_evaluator();
  study.objective = maximize_metric("net_w");
  study.objective.constraints.push_back(peak_temperature_cap());
  study.objective.pareto_maximize = "net_w";
  study.objective.pareto_minimize = "peak_t_c";
  study.parameters = {
      {"channel_gap_um", 100.0, 400.0, false},
      {"channel_height_um", 200.0, 800.0, false},
      {"flow_ml_min", 48.0, 2000.0, false},
      {"inlet_c", 27.0, 60.0, false},
  };
  return study;
}

/// Flow rate and inlet temperature through the full co-simulation: net
/// power after pumping and VRM losses, peak temperature capped — the
/// searchable operating_grid.
Study flow_rate_study() {
  Study study;
  study.name = "flow_rate";
  study.summary =
      "co-simulated flow x inlet-T vs net power, T_peak <= 360 K cap (Pareto front)";
  study.base = core::power7_system_config();
  study.base.thermal_grid.axial_cells = 16;
  study.evaluator = sweep::cosim_evaluator();
  study.objective = maximize_metric("net_w");
  study.objective.constraints.push_back(peak_temperature_cap());
  study.objective.pareto_maximize = "net_w";
  study.objective.pareto_minimize = "peak_t_c";
  study.parameters = {
      {"flow_ml_min", 48.0, 2000.0, false},
      {"inlet_c", 27.0, 60.0, false},
  };
  return study;
}

/// VRM population sizing on the cache rail: worst-case rail voltage vs tap
/// count and per-tap output resistance (integer tap grid).
Study vrm_placement_study() {
  Study study;
  study.name = "vrm_placement";
  study.summary =
      "VRM tap grid and output resistance vs cache-rail integrity (min rail V)";
  study.base = core::power7_system_config();
  study.evaluator = sweep::rail_integrity_evaluator();
  study.objective = maximize_metric("rail_min_v");
  study.objective.pareto_maximize = "rail_min_v";
  study.objective.pareto_minimize = "tap_count";
  study.parameters = {
      {"vrm_grid_n", 1.0, 8.0, true},
      {"vrm_r_mohm", 5.0, 100.0, false},
  };
  return study;
}

/// How deep can the stack go? Die count, pump flow and cooling-layer
/// height against net power under the same junction cap — the searchable
/// counterpart of the stack_3d sweep plan. Every candidate is a full
/// co-simulation with the interlayer flow split.
Study stack_depth_study() {
  Study study;
  study.name = "stack_depth";
  study.summary =
      "3D-stack depth: dies x flow x cooling-layer height vs net power, T cap";
  study.base = core::power7_system_config();
  study.base.thermal_grid.axial_cells = 8;  // stacked solves are much larger
  study.base.fvm.axial_steps = 60;
  study.evaluator = sweep::stack_evaluator();
  study.objective = maximize_metric("net_w");
  study.objective.constraints.push_back(peak_temperature_cap());
  study.objective.pareto_maximize = "net_w";
  study.objective.pareto_minimize = "peak_t_c";
  study.parameters = {
      {"die_count", 1.0, 3.0, true},
      {"flow_ml_min", 200.0, 2000.0, false},
      {"stack_channel_height_um", 200.0, 800.0, false},
  };
  return study;
}

/// The full stacked-cooling trade space for the evolutionary optimizer:
/// stack depth, interlayer split, channel sizing and operating point in
/// one mixed real/integer box. Too many axes for per-axis grid refinement
/// to cover — the motivating study of --algo nsga2.
Study stack_pareto_study() {
  Study study;
  study.name = "stack_pareto";
  study.summary =
      "full 3D-stack trade space: dies x interlayer x channels x operating point, "
      "net power vs peak-T front under the 360 K cap";
  study.base = core::power7_system_config();
  study.base.thermal_grid.axial_cells = 8;  // stacked solves are much larger
  study.base.fvm.axial_steps = 60;
  study.evaluator = sweep::stack_evaluator();
  study.objective = maximize_metric("net_w");
  study.objective.constraints.push_back(peak_temperature_cap());
  study.objective.pareto_maximize = "net_w";
  study.objective.pareto_minimize = "peak_t_c";
  study.parameters = {
      {"die_count", 1.0, 3.0, true},
      {"interlayer", 0.0, 1.0, true},
      {"flow_ml_min", 200.0, 2000.0, false},
      {"stack_channel_height_um", 200.0, 800.0, false},
      {"channel_gap_um", 100.0, 400.0, false},
      {"inlet_c", 27.0, 60.0, false},
  };
  return study;
}

/// Rack-level delivery + cooling geometry through the full co-simulation:
/// VRM tap grid and output resistance against coolant channel height and
/// flow — the conversion/pumping-loss trade at one operating point.
Study rack_geometry_study() {
  Study study;
  study.name = "rack_geometry";
  study.summary =
      "rack delivery + cooling: VRM grid/resistance x channel height x flow, "
      "net power vs peak-T front under the cap";
  study.base = core::power7_system_config();
  study.base.thermal_grid.axial_cells = 16;
  study.evaluator = sweep::cosim_evaluator();
  study.objective = maximize_metric("net_w");
  study.objective.constraints.push_back(peak_temperature_cap());
  study.objective.pareto_maximize = "net_w";
  study.objective.pareto_minimize = "peak_t_c";
  study.parameters = {
      {"vrm_grid_n", 1.0, 8.0, true},
      {"vrm_r_mohm", 5.0, 100.0, false},
      {"channel_height_um", 200.0, 800.0, false},
      {"flow_ml_min", 48.0, 2000.0, false},
  };
  return study;
}

/// Fleet rack topology: how many chips fit on how many shared loops, cut
/// into how many serial segments, at what loop flow — maximizing rack
/// capacity against pumping cost under the per-chip junction cap, with
/// temperature-dependent coolant pricing the serial inlet rise. A mixed
/// integer/real box made for --algo nsga2 (chips vs peak-T front).
Study rack_topology_study() {
  Study study;
  study.name = "rack_topology";
  study.summary =
      "fleet rack topology: chips x loops x segments x loop flow, capacity vs "
      "pump power under the 360 K cap";
  study.base = core::power7_system_config();
  study.base.thermal_grid.axial_cells = 8;  // N chip solves per candidate
  study.evaluator = sweep::fleet_evaluator();
  study.objective.terms = {{"chips", 1.0}, {"pump_w", -0.01}};
  study.objective.constraints.push_back(peak_temperature_cap());
  study.objective.pareto_maximize = "chips";
  study.objective.pareto_minimize = "peak_t_c";
  study.parameters = {
      {"rack_chips", 2.0, 12.0, true},
      {"rack_loops", 1.0, 2.0, true},
      {"rack_segments", 1.0, 4.0, true},
      {"rack_flow_ml_min", 200.0, 2000.0, false},
  };
  study.fixed = {{"coolant_temp_dep", 1.0}};
  return study;
}

}  // namespace

const std::vector<StudyDescription>& registered_studies() {
  static const std::vector<StudyDescription> studies = {
      {"channel_geometry",
       "channel gap/height, flow and inlet-T vs net power under the 360 K cap"},
      {"flow_rate",
       "co-simulated flow x inlet-T operating point; net power vs peak-T Pareto front"},
      {"vrm_placement",
       "VRM tap grid and output resistance vs cache-rail integrity"},
      {"stack_depth",
       "3D-stack depth: dies x flow x cooling-layer height vs net power under the cap"},
      {"stack_pareto",
       "full 3D-stack trade space (6 mixed axes); the evolutionary optimizer's home study"},
      {"rack_geometry",
       "VRM grid/resistance x channel height x flow through the full co-simulation"},
      {"rack_topology",
       "fleet rack: chips x loops x segments x loop flow, capacity vs pump power"},
  };
  return studies;
}

Study make_registered_study(const std::string& name) {
  if (name == "channel_geometry") {
    return channel_geometry_study();
  }
  if (name == "flow_rate") {
    return flow_rate_study();
  }
  if (name == "vrm_placement") {
    return vrm_placement_study();
  }
  if (name == "stack_depth") {
    return stack_depth_study();
  }
  if (name == "stack_pareto") {
    return stack_pareto_study();
  }
  if (name == "rack_geometry") {
    return rack_geometry_study();
  }
  if (name == "rack_topology") {
    return rack_topology_study();
  }
  throw std::invalid_argument("unknown optimization study: " + name);
}

}  // namespace brightsi::opt
