// Radial-basis-function surrogate over evaluated design points: the cheap
// pre-screen of the evolutionary optimizer. Trained on the archive of real
// evaluations (the same rows a --store directory persists), it predicts
// each objective of a proposed offspring so one generation can triage a
// large candidate pool down to the few designs worth a real co-simulation
// — the surrogate-assisted pattern of the multi-chip cooling-channel
// optimization literature (see PAPERS.md).
//
// Everything is deterministic: Gaussian kernel with a median-distance
// shape parameter, ridge-regularized dense solve (numerics/dense_matrix),
// no randomness — so the optimizer's byte-identity contract survives the
// surrogate unchanged.
#ifndef BRIGHTSI_OPT_SURROGATE_H
#define BRIGHTSI_OPT_SURROGATE_H

#include <vector>

namespace brightsi::opt {

class RbfSurrogate {
 public:
  RbfSurrogate() = default;

  /// Fits one interpolant per target column on `points` (rows of equal
  /// dimension; the optimizer passes box-normalized coordinates) against
  /// `targets` (one row per point, every row the same width). Returns
  /// false — leaving the surrogate untrained — when there are fewer than
  /// dim + 2 points, the points are all coincident, or the regularized
  /// kernel system is numerically singular; the caller then skips the
  /// pre-screen for that generation.
  bool train(const std::vector<std::vector<double>>& points,
             const std::vector<std::vector<double>>& targets);

  [[nodiscard]] bool trained() const { return !weights_.empty(); }
  [[nodiscard]] int target_count() const { return static_cast<int>(weights_.size()); }

  /// Predicted target row at `x` (same dimension as the training points).
  /// Must not be called untrained.
  [[nodiscard]] std::vector<double> predict(const std::vector<double>& x) const;

 private:
  std::vector<std::vector<double>> centers_;
  std::vector<std::vector<double>> weights_;  ///< per target column, size n
  std::vector<double> means_;                 ///< per target column (trend term)
  double inv_shape_sq_ = 1.0;                 ///< 1 / c^2 of exp(-r^2 / c^2)
};

}  // namespace brightsi::opt

#endif  // BRIGHTSI_OPT_SURROGATE_H
