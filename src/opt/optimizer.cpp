#include "opt/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>

#include "core/report.h"
#include "sweep/scenario.h"

namespace brightsi::opt {

std::vector<double> snap_study_point(const Study& study, std::vector<double> point) {
  for (std::size_t a = 0; a < study.parameters.size(); ++a) {
    const StudyParameter& parameter = study.parameters[a];
    double value = std::clamp(point[a], parameter.lower, parameter.upper);
    if (parameter.integer) {
      value = std::clamp(std::round(value), std::ceil(parameter.lower),
                         std::floor(parameter.upper));
    }
    if (value == 0.0) {
      // Canonicalize -0.0: the exact-coordinate dedup, the candidate name
      // and the store's content hash must all see one zero.
      value = 0.0;
    }
    point[a] = value;
  }
  return point;
}

sweep::ScenarioSpec make_candidate_spec(const Study& study, const std::vector<double>& point) {
  sweep::ScenarioSpec spec;
  for (const auto& [param, value] : study.fixed) {
    spec.set(param, value);
  }
  for (std::size_t a = 0; a < study.parameters.size(); ++a) {
    spec.set(study.parameters[a].param, point[a]);
    if (!spec.name.empty()) {
      spec.name += " ";
    }
    spec.name += study.parameters[a].param + "=" + sweep::format_sweep_value(point[a]);
  }
  return spec;
}

namespace {

constexpr double kNegativeInfinity = -std::numeric_limits<double>::infinity();

/// Mutable state of one optimize() run: the session, the archive under
/// construction and the dedup map from exact candidate coordinates to
/// archive row. Candidate points are keyed on their exact doubles, so a
/// point is never evaluated twice and never consumes budget twice.
struct SearchState {
  const Study& study;
  ResolvedObjective objective;
  sweep::BatchEvaluationSession session;
  const OptimizerOptions& options;

  OptResult result;
  std::vector<std::vector<double>> points;  ///< coordinates per archive row
  std::map<std::vector<double>, int> seen;
  double best_score = kNegativeInfinity;

  [[nodiscard]] bool budget_exhausted() const {
    return static_cast<int>(result.archive.rows.size()) >= options.budget;
  }
};

/// Evaluates the fresh (unseen) prefix of `candidates` that fits the
/// remaining budget, appending rows to the archive in submission order and
/// updating the incumbent (strict improvement only, so ties keep the
/// earlier evaluation — deterministic for any thread count).
void evaluate_batch(SearchState& state, const std::vector<std::vector<double>>& candidates) {
  std::vector<sweep::ScenarioSpec> specs;
  std::vector<std::vector<double>> fresh;
  const int archived = static_cast<int>(state.result.archive.rows.size());
  for (const std::vector<double>& point : candidates) {
    if (state.seen.contains(point)) {
      continue;
    }
    if (archived + static_cast<int>(specs.size()) >= state.options.budget) {
      break;
    }
    state.seen.emplace(point, archived + static_cast<int>(specs.size()));
    specs.push_back(make_candidate_spec(state.study, point));
    fresh.push_back(point);
  }
  if (specs.empty()) {
    return;
  }

  std::vector<sweep::ScenarioResult> rows = state.session.evaluate(specs);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const bool ok = !rows[i].failed && state.objective.feasible(rows[i].metrics);
    const double score = ok ? state.objective.score(rows[i].metrics) : kNegativeInfinity;
    state.result.archive.rows.push_back(std::move(rows[i]));
    state.points.push_back(fresh[i]);
    state.result.feasible.push_back(ok);
    state.result.scores.push_back(score);
    if (score > state.best_score) {
      state.best_score = score;
      state.result.best_index = static_cast<int>(state.result.archive.rows.size()) - 1;
    }
  }
}

/// Score of one point, evaluating it if unseen; nullopt when the budget is
/// exhausted before it could be evaluated.
std::optional<double> evaluate_point(SearchState& state, const std::vector<double>& point) {
  auto it = state.seen.find(point);
  if (it == state.seen.end()) {
    evaluate_batch(state, {point});
    it = state.seen.find(point);
    if (it == state.seen.end()) {
      return std::nullopt;
    }
  }
  return state.result.scores[static_cast<std::size_t>(it->second)];
}

/// The point refinement continues from: the incumbent, or the first
/// evaluated point while nothing is feasible yet.
const std::vector<double>& anchor_point(const SearchState& state) {
  return state.result.best_index >= 0
             ? state.points[static_cast<std::size_t>(state.result.best_index)]
             : state.points.front();
}

/// Successive grid refinement: per pass, sweep each axis with
/// `axis_points` samples spanning the current half-range around the
/// incumbent (each axis a batched generation), then contract the ranges.
void refine(SearchState& state) {
  const std::vector<StudyParameter>& parameters = state.study.parameters;
  std::vector<double> half(parameters.size());
  for (std::size_t a = 0; a < parameters.size(); ++a) {
    half[a] = (parameters[a].upper - parameters[a].lower) / 2.0;
  }

  for (int pass = 0; pass < state.options.max_passes && !state.budget_exhausted(); ++pass) {
    for (std::size_t a = 0; a < parameters.size() && !state.budget_exhausted(); ++a) {
      const std::vector<double> anchor = anchor_point(state);
      const double lo = std::max(parameters[a].lower, anchor[a] - half[a]);
      const double hi = std::min(parameters[a].upper, anchor[a] + half[a]);
      std::vector<std::vector<double>> candidates;
      const int k = std::max(2, state.options.axis_points);
      for (int i = 0; i < k; ++i) {
        std::vector<double> point = anchor;
        point[a] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(k - 1);
        candidates.push_back(snap_study_point(state.study, std::move(point)));
      }
      evaluate_batch(state, candidates);
    }
    ++state.result.passes;

    bool any_resolvable = false;
    for (std::size_t a = 0; a < parameters.size(); ++a) {
      half[a] *= state.options.shrink;
      const double resolution =
          parameters[a].integer ? 0.5 : (parameters[a].upper - parameters[a].lower) * 1e-9;
      any_resolvable = any_resolvable || half[a] >= resolution;
    }
    if (!any_resolvable) {
      break;
    }
  }
}

/// Nelder–Mead polish over the continuous parameters (integer coordinates
/// pinned at the incumbent), spending whatever budget remains. Candidates
/// are clamped to bounds; repeats hit the archive cache and cost nothing.
void polish(SearchState& state) {
  if (state.result.best_index < 0 || state.budget_exhausted()) {
    return;
  }
  std::vector<std::size_t> axes;
  for (std::size_t a = 0; a < state.study.parameters.size(); ++a) {
    if (!state.study.parameters[a].integer) {
      axes.push_back(a);
    }
  }
  if (axes.empty()) {
    return;
  }

  struct Vertex {
    std::vector<double> point;
    double score = kNegativeInfinity;
  };
  std::vector<Vertex> simplex;
  const std::vector<double> origin = anchor_point(state);
  simplex.push_back({origin, state.best_score});
  for (const std::size_t a : axes) {
    const StudyParameter& parameter = state.study.parameters[a];
    const double step = (parameter.upper - parameter.lower) * 0.05;
    std::vector<double> point = origin;
    point[a] += point[a] + step <= parameter.upper ? step : -step;
    point = snap_study_point(state.study, std::move(point));
    const std::optional<double> score = evaluate_point(state, point);
    if (!score.has_value()) {
      return;
    }
    simplex.push_back({std::move(point), *score});
  }

  const auto order = [&]() {
    std::stable_sort(simplex.begin(), simplex.end(),
                     [](const Vertex& x, const Vertex& y) { return x.score > y.score; });
  };
  const int step_cap = std::max(32, state.options.budget);
  for (int step = 0; step < step_cap && !state.budget_exhausted(); ++step) {
    order();
    Vertex& worst = simplex.back();
    if (simplex.front().score - worst.score <=
        1e-12 * (1.0 + std::abs(simplex.front().score))) {
      break;
    }
    std::vector<double> centroid(origin.size(), 0.0);
    for (std::size_t v = 0; v + 1 < simplex.size(); ++v) {
      for (const std::size_t a : axes) {
        centroid[a] += simplex[v].point[a];
      }
    }
    for (const std::size_t a : axes) {
      centroid[a] /= static_cast<double>(simplex.size() - 1);
    }
    const auto blend = [&](double towards) {
      std::vector<double> point = worst.point;
      for (const std::size_t a : axes) {
        point[a] = centroid[a] + towards * (centroid[a] - worst.point[a]);
      }
      return snap_study_point(state.study, std::move(point));
    };

    const std::vector<double> reflected = blend(1.0);
    const std::optional<double> reflected_score = evaluate_point(state, reflected);
    if (!reflected_score.has_value()) {
      break;
    }
    ++state.result.polish_steps;
    if (*reflected_score > simplex.front().score) {
      const std::vector<double> expanded = blend(2.0);
      const std::optional<double> expanded_score = evaluate_point(state, expanded);
      if (expanded_score.has_value() && *expanded_score > *reflected_score) {
        worst = {expanded, *expanded_score};
      } else {
        worst = {reflected, *reflected_score};
      }
      continue;
    }
    if (*reflected_score > simplex[simplex.size() - 2].score) {
      worst = {reflected, *reflected_score};
      continue;
    }
    const std::vector<double> contracted = blend(-0.5);
    const std::optional<double> contracted_score = evaluate_point(state, contracted);
    if (contracted_score.has_value() && *contracted_score > worst.score) {
      worst = {contracted, *contracted_score};
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t v = 1; v < simplex.size(); ++v) {
      std::vector<double> point = simplex[v].point;
      for (const std::size_t a : axes) {
        point[a] = simplex.front().point[a] + 0.5 * (point[a] - simplex.front().point[a]);
      }
      point = snap_study_point(state.study, std::move(point));
      const std::optional<double> score = evaluate_point(state, point);
      if (!score.has_value()) {
        return;
      }
      simplex[v] = {std::move(point), *score};
    }
  }
}

std::vector<std::vector<std::string>> formatted_archive_rows(const OptResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.archive.rows.size());
  for (std::size_t i = 0; i < result.archive.rows.size(); ++i) {
    std::vector<std::string> cells = format_sweep_row(result.archive, result.archive.rows[i]);
    cells.push_back(result.feasible[i] ? sweep::format_sweep_value(result.scores[i])
                                       : std::string());
    cells.push_back(result.feasible[i] ? "1" : "0");
    cells.push_back(static_cast<int>(i) == result.best_index ? "1" : "0");
    const bool on_front = std::find(result.pareto_indices.begin(),
                                    result.pareto_indices.end(),
                                    static_cast<int>(i)) != result.pareto_indices.end();
    cells.push_back(on_front ? "1" : "0");
    rows.push_back(std::move(cells));
  }
  return rows;
}

std::vector<std::string> opt_headers(const OptResult& result) {
  std::vector<std::string> headers = sweep_row_headers(result.archive);
  headers.insert(headers.end(), {"score", "feasible", "incumbent", "pareto"});
  return headers;
}

}  // namespace

void Study::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("study has no name");
  }
  if (!evaluator.fn) {
    throw std::invalid_argument("study '" + name + "' has no evaluator");
  }
  if (parameters.empty()) {
    throw std::invalid_argument("study '" + name + "' has an empty parameter set");
  }
  for (std::size_t a = 0; a < parameters.size(); ++a) {
    const StudyParameter& parameter = parameters[a];
    if (sweep::find_parameter(parameter.param) == nullptr) {
      throw std::invalid_argument("study '" + name + "': unknown sweep parameter '" +
                                  parameter.param + "'");
    }
    for (std::size_t b = 0; b < a; ++b) {
      if (parameters[b].param == parameter.param) {
        throw std::invalid_argument("study '" + name + "': duplicate parameter '" +
                                    parameter.param + "'");
      }
    }
    if (!std::isfinite(parameter.lower) || !std::isfinite(parameter.upper) ||
        !(parameter.lower <= parameter.upper)) {
      throw std::invalid_argument("study '" + name + "': parameter '" + parameter.param +
                                  "' has unordered or non-finite bounds");
    }
    if (parameter.integer && std::ceil(parameter.lower) > std::floor(parameter.upper)) {
      throw std::invalid_argument("study '" + name + "': parameter '" + parameter.param +
                                  "' has no integer inside its bounds");
    }
  }
  for (const auto& [param, value] : fixed) {
    (void)value;
    if (sweep::find_parameter(param) == nullptr) {
      throw std::invalid_argument("study '" + name + "': unknown fixed parameter '" +
                                  param + "'");
    }
  }
  (void)ResolvedObjective(objective, evaluator.metrics);  // throws on a bad objective
}

const sweep::ScenarioResult* OptResult::best() const {
  return best_index >= 0 ? &archive.rows[static_cast<std::size_t>(best_index)] : nullptr;
}

OptResult optimize(const Study& study, const OptimizerOptions& options) {
  study.validate();
  if (options.budget < 1) {
    throw std::invalid_argument("optimizer budget must be at least 1");
  }

  SearchState state{
      study,
      ResolvedObjective(study.objective, study.evaluator.metrics),
      sweep::BatchEvaluationSession(study.base, study.evaluator,
                                    {options.thread_count, options.reuse_structures},
                                    options.backend),
      options,
      {},
      {},
      {},
      kNegativeInfinity};
  state.result.study_name = study.name;
  state.result.objective_description = study.objective.describe();
  state.result.archive.plan_name = study.name;
  state.result.archive.evaluator_name = study.evaluator.name;
  state.result.archive.metric_names = study.evaluator.metrics;
  state.result.archive.thread_count = state.session.thread_count();
  for (const StudyParameter& parameter : study.parameters) {
    state.result.archive.override_names.push_back(parameter.param);
  }

  // Generation 0: the center of the box.
  std::vector<double> center(study.parameters.size());
  for (std::size_t a = 0; a < study.parameters.size(); ++a) {
    center[a] = (study.parameters[a].lower + study.parameters[a].upper) / 2.0;
  }
  evaluate_batch(state, {snap_study_point(study, std::move(center))});

  refine(state);
  if (options.nelder_mead) {
    polish(state);
  }

  if (state.objective.has_pareto_pair()) {
    std::vector<int> candidates;
    for (std::size_t i = 0; i < state.result.archive.rows.size(); ++i) {
      if (state.result.feasible[i]) {
        candidates.push_back(static_cast<int>(i));
      }
    }
    state.result.pareto_indices =
        pareto_front(state.result.archive, candidates, state.objective.pareto_maximize_index(),
                     state.objective.pareto_minimize_index());
  }
  state.result.model_builds = state.session.model_build_count();
  state.result.archive.exec = state.session.execution_stats();
  return std::move(state.result);
}

std::vector<int> pareto_front(const sweep::SweepResult& archive,
                              const std::vector<int>& row_indices, int max_index,
                              int min_index) {
  const auto value = [&](int row, int metric) {
    return archive.rows[static_cast<std::size_t>(row)].metrics[static_cast<std::size_t>(metric)];
  };
  std::vector<int> front;
  for (const int candidate : row_indices) {
    bool dominated = false;
    for (const int other : row_indices) {
      if (other == candidate) {
        continue;
      }
      const bool no_worse = value(other, max_index) >= value(candidate, max_index) &&
                            value(other, min_index) <= value(candidate, min_index);
      const bool strictly_better = value(other, max_index) > value(candidate, max_index) ||
                                   value(other, min_index) < value(candidate, min_index);
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      front.push_back(candidate);
    }
  }
  std::stable_sort(front.begin(), front.end(), [&](int x, int y) {
    return value(x, max_index) < value(y, max_index);
  });
  return front;
}

void write_opt_csv(std::ostream& os, const OptResult& result) {
  core::write_table_csv(os, opt_headers(result), formatted_archive_rows(result));
}

void write_pareto_csv(std::ostream& os, const OptResult& result) {
  sweep::SweepResult front;
  front.plan_name = result.archive.plan_name;
  front.evaluator_name = result.archive.evaluator_name;
  front.metric_names = result.archive.metric_names;
  front.override_names = result.archive.override_names;
  for (const int index : result.pareto_indices) {
    front.rows.push_back(result.archive.rows[static_cast<std::size_t>(index)]);
  }
  write_sweep_csv(os, front);
}

void write_opt_json(std::ostream& os, const OptResult& result) {
  const std::vector<std::string> headers = opt_headers(result);
  std::vector<bool> numeric(headers.size(), true);
  numeric.front() = false;  // scenario name
  // The error column sits at the end of the embedded sweep-row header set,
  // before the appended opt columns.
  numeric[sweep_row_headers(result.archive).size() - 1] = false;

  const std::vector<std::vector<std::string>> rows = formatted_archive_rows(result);
  os << "{\n"
     << "  \"study\": \"" << core::json_escape(result.study_name) << "\",\n"
     << "  \"algo\": \"" << core::json_escape(result.algo) << "\",\n"
     << "  \"objective\": \"" << core::json_escape(result.objective_description) << "\",\n"
     << "  \"evaluator\": \"" << core::json_escape(result.archive.evaluator_name) << "\",\n"
     << "  \"evaluations\": " << result.evaluations() << ",\n"
     << "  \"passes\": " << result.passes << ",\n"
     << "  \"polish_steps\": " << result.polish_steps << ",\n"
     << "  \"generations\": " << result.generations << ",\n"
     << "  \"surrogate_candidates\": " << result.surrogate_candidates << ",\n"
     << "  \"surrogate_screened\": " << result.surrogate_screened << ",\n"
     << "  \"best_index\": " << result.best_index << ",\n"
     << "  \"best\": ";
  if (result.best_index >= 0) {
    const std::vector<std::string>& best =
        rows[static_cast<std::size_t>(result.best_index)];
    os << "{";
    for (std::size_t c = 0; c < headers.size(); ++c) {
      os << (c == 0 ? "" : ", ") << '"' << core::json_escape(headers[c]) << "\": ";
      if (numeric[c]) {
        os << (best[c].empty() ? "null" : best[c]);
      } else {
        os << '"' << core::json_escape(best[c]) << '"';
      }
    }
    os << "},\n";
  } else {
    os << "null,\n";
  }
  os << "  \"pareto_indices\": [";
  for (std::size_t i = 0; i < result.pareto_indices.size(); ++i) {
    os << (i == 0 ? "" : ", ") << result.pareto_indices[i];
  }
  os << "],\n"
     << "  \"rows\": ";
  core::write_records_json(os, headers, numeric, rows);
  os << "}\n";
}

}  // namespace brightsi::opt
