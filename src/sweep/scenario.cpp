#include "sweep/scenario.h"

#include <stdexcept>

namespace brightsi::sweep {

void ScenarioSpec::set(const std::string& param, double value) {
  for (auto& [name, existing] : overrides) {
    if (name == param) {
      existing = value;
      return;
    }
  }
  overrides.emplace_back(param, value);
}

std::optional<double> ScenarioSpec::get(const std::string& param) const {
  for (const auto& [name, value] : overrides) {
    if (name == param) {
      return value;
    }
  }
  return std::nullopt;
}

const std::vector<ParameterInfo>& parameter_registry() {
  static const std::vector<ParameterInfo> registry = {
      {"flow_ml_min", "total electrolyte flow through the array (ml/min)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.total_flow_m3_per_s = v * 1e-6 / 60.0;
       }},
      {"inlet_c", "electrolyte inlet temperature (deg C)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.inlet_temperature_k = v + 273.15;
       }},
      {"channel_gap_um", "anode-to-cathode electrode gap (um)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.geometry.electrode_gap_m = v * 1e-6;
       }},
      {"channel_height_um", "channel etch depth / electrode height (um)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.geometry.channel_height_m = v * 1e-6;
       }},
      {"channel_length_mm", "channel flow length (mm)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.geometry.channel_length_m = v * 1e-3;
       }},
      {"channel_count", "number of parallel channels in the array",
       [](core::SystemConfig& c, double v) {
         c.array_spec.channel_count = static_cast<int>(v);
       }},
      {"channel_groups", "channel groups sharing one axial temperature profile",
       [](core::SystemConfig& c, double v) {
         c.channel_groups = static_cast<int>(v);
       }},
      {"axial_cells", "thermal-grid cells along the flow direction",
       [](core::SystemConfig& c, double v) {
         c.thermal_grid.axial_cells = static_cast<int>(v);
       },
       /*thermal_structural=*/true},
      {"pump_efficiency", "hydraulic pump efficiency (0, 1]",
       [](core::SystemConfig& c, double v) { c.pump_efficiency = v; }},
      {"power_scale", "multiplier on every floorplan power density (workload knob)",
       [](core::SystemConfig& c, double v) {
         c.power_spec.core_w_per_cm2 *= v;
         c.power_spec.cache_w_per_cm2 *= v;
         c.power_spec.logic_w_per_cm2 *= v;
         c.power_spec.io_w_per_cm2 *= v;
         c.power_spec.background_w_per_cm2 *= v;
       }},
      {"vrm_count_x", "VRM tap columns over the die",
       [](core::SystemConfig& c, double v) {
         c.vrm_spec.count_x = static_cast<int>(v);
       }},
      {"vrm_count_y", "VRM tap rows over the die",
       [](core::SystemConfig& c, double v) {
         c.vrm_spec.count_y = static_cast<int>(v);
       }},
      {"vrm_grid_n", "square VRM tap grid: sets both count_x and count_y",
       [](core::SystemConfig& c, double v) {
         c.vrm_spec.count_x = static_cast<int>(v);
         c.vrm_spec.count_y = static_cast<int>(v);
       }},
      {"vrm_r_mohm", "per-tap VRM output resistance (mohm)",
       [](core::SystemConfig& c, double v) {
         c.vrm_spec.output_resistance_ohm = v * 1e-3;
       }},
      {"vrm_set_point_v", "regulated rail set-point voltage (V)",
       [](core::SystemConfig& c, double v) { c.vrm_spec.set_point_v = v; }},
      {"vrm_efficiency", "VRM conversion efficiency (0, 1]",
       [](core::SystemConfig& c, double v) { c.vrm_spec.efficiency = v; }},
      {"max_cosim_iterations", "fixed-point iteration cap of the co-simulation",
       [](core::SystemConfig& c, double v) {
         c.max_cosim_iterations = static_cast<int>(v);
       }},
      // Evaluator-consumed parameter: the conventional edge-fed PDN baseline
      // has no SystemConfig field; rail_integrity_evaluator() reads it off
      // the scenario directly.
      {"edge_taps_per_side", "edge-fed baseline: VRM taps per die edge (rail evaluator)",
       nullptr},
      // Evaluator-consumed mission parameters: a MissionConfig wraps the
      // SystemConfig, so its knobs have no SystemConfig field either;
      // mission_evaluator() reads them off the scenario directly.
      {"tank_ml", "electrolyte tank volume per side (mL; mission evaluator)", nullptr},
      {"mission_dt_s", "nominal mission transient step (s; mission evaluator)", nullptr},
      {"initial_soc", "mission starting state of charge (mission evaluator)", nullptr},
      {"workload_kind",
       "mission workload trace: 0=full-load, 1=idle/burst/sustain, 2=memory-bound "
       "(mission evaluator)",
       nullptr},
      {"workload_repeats", "repeats of the mission workload trace (mission evaluator)",
       nullptr},
  };
  return registry;
}

const ParameterInfo* find_parameter(const std::string& name) {
  for (const ParameterInfo& info : parameter_registry()) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

core::SystemConfig apply_scenario(const core::SystemConfig& base,
                                  const ScenarioSpec& scenario) {
  core::SystemConfig config = base;
  for (const auto& [param, value] : scenario.overrides) {
    const ParameterInfo* info = find_parameter(param);
    if (info == nullptr) {
      throw std::invalid_argument("unknown sweep parameter: " + param);
    }
    if (info->apply) {
      info->apply(config, value);
    }
  }
  return config;
}

}  // namespace brightsi::sweep
