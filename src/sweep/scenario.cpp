#include "sweep/scenario.h"

#include <algorithm>
#include <stdexcept>
#include <variant>

namespace brightsi::sweep {

namespace {

/// Introspection of the current stack so the 3D-stack parameters compose
/// in any override order: each rebuild reads the knobs it does not set
/// from the configuration's present stack.
int stack_die_count(const thermal::StackSpec& stack) {
  return std::max(1, stack.source_layer_count());
}

bool stack_is_interlayer(const thermal::StackSpec& stack) {
  // One channel layer per die = interlayer cooling; fewer = top-only.
  return stack.channel_layer_count() >= stack.source_layer_count();
}

int stack_bulk_z_cells(const thermal::StackSpec& stack) {
  // The bulk layer of a die is the non-source solid below the top cap —
  // matched positionally (not by z_cells) so a stack_layers=1 override
  // survives later rebuilds.
  for (std::size_t i = 0; i + 1 < stack.layers.size(); ++i) {
    if (const auto* solid = std::get_if<thermal::SolidLayerSpec>(&stack.layers[i])) {
      if (!solid->has_heat_source) {
        return solid->z_cells;
      }
    }
  }
  return 3;
}

double stack_channel_height_m(const thermal::StackSpec& stack) {
  const thermal::MicrochannelLayerSpec* channel = stack.bottom_channel_layer();
  return channel != nullptr ? channel->layer_height_m
                            : thermal::MicrochannelLayerSpec{}.layer_height_m;
}

void set_channel_heights(core::SystemConfig& config, double height_m) {
  for (thermal::StackLayer& layer : config.stack.layers) {
    if (auto* channel = std::get_if<thermal::MicrochannelLayerSpec>(&layer)) {
      channel->layer_height_m = height_m;
    }
  }
  // The bottom cooling layer IS the flow cell, so its etch depth drives
  // the electrochemical/hydraulic channel model too.
  config.array_spec.geometry.channel_height_m = height_m;
}

/// Replaces the stack with a multi_die_stack and sizes the per-die
/// workload list to match (upper dies default to the cache/DRAM preset;
/// existing upper-die specs are preserved). The current stack's channel
/// height is carried over, so the stack knobs compose in any override
/// order.
void rebuild_stack(core::SystemConfig& config, int die_count, bool interlayer,
                   int bulk_z_cells) {
  const double channel_height_m = stack_channel_height_m(config.stack);
  config.stack = thermal::multi_die_stack(die_count, interlayer, bulk_z_cells);
  config.upper_die_power.resize(static_cast<std::size_t>(die_count - 1),
                                chip::memory_die_power_spec());
  for (thermal::StackLayer& layer : config.stack.layers) {
    if (auto* channel = std::get_if<thermal::MicrochannelLayerSpec>(&layer)) {
      channel->layer_height_m = channel_height_m;
    }
  }
}

/// Shared applier of die_count / interlayer / stack_layers: every stack
/// override of the scenario is read jointly (falling back to the current
/// stack for absent knobs), so the rebuild is idempotent and immune to
/// override order — in particular, interlayer=0 on a single-die stack (an
/// unrepresentable intermediate) is not lost when die_count applies later.
void apply_stack_rebuild(core::SystemConfig& config, double, const ScenarioSpec& scenario) {
  const int dies = static_cast<int>(
      scenario.get("die_count").value_or(stack_die_count(config.stack)));
  const bool interlayer =
      scenario.get("interlayer")
          .value_or(stack_is_interlayer(config.stack) ? 1.0 : 0.0) != 0.0;
  const int bulk_z = static_cast<int>(
      scenario.get("stack_layers").value_or(stack_bulk_z_cells(config.stack)));
  rebuild_stack(config, dies, interlayer, bulk_z);
}

/// power_scale applier: every die of the stack scales, so stacked dies
/// must exist first — when the scenario also carries stack overrides, the
/// (idempotent) joint rebuild runs before scaling, making the pair immune
/// to override order (the custom CLI puts --set before --grid axes).
void apply_power_scale(core::SystemConfig& config, double factor,
                       const ScenarioSpec& scenario) {
  if (scenario.get("die_count") || scenario.get("interlayer") ||
      scenario.get("stack_layers")) {
    apply_stack_rebuild(config, 0.0, scenario);
  }
  auto scale = [factor](chip::Power7PowerSpec& spec) {
    spec.core_w_per_cm2 *= factor;
    spec.cache_w_per_cm2 *= factor;
    spec.logic_w_per_cm2 *= factor;
    spec.io_w_per_cm2 *= factor;
    spec.background_w_per_cm2 *= factor;
  };
  scale(config.power_spec);
  for (chip::Power7PowerSpec& upper : config.upper_die_power) {
    scale(upper);
  }
}

}  // namespace

void ScenarioSpec::set(const std::string& param, double value) {
  for (auto& [name, existing] : overrides) {
    if (name == param) {
      existing = value;
      return;
    }
  }
  overrides.emplace_back(param, value);
}

std::optional<double> ScenarioSpec::get(const std::string& param) const {
  for (const auto& [name, value] : overrides) {
    if (name == param) {
      return value;
    }
  }
  return std::nullopt;
}

const std::vector<ParameterInfo>& parameter_registry() {
  static const std::vector<ParameterInfo> registry = {
      {"flow_ml_min", "total electrolyte flow through the array (ml/min)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.total_flow_m3_per_s = v * 1e-6 / 60.0;
       }},
      {"inlet_c", "electrolyte inlet temperature (deg C)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.inlet_temperature_k = v + 273.15;
       }},
      {"channel_gap_um", "anode-to-cathode electrode gap (um)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.geometry.electrode_gap_m = v * 1e-6;
       }},
      {"channel_height_um", "channel etch depth / electrode height (um)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.geometry.channel_height_m = v * 1e-6;
       }},
      {"channel_length_mm", "channel flow length (mm)",
       [](core::SystemConfig& c, double v) {
         c.array_spec.geometry.channel_length_m = v * 1e-3;
       }},
      {"channel_count", "number of parallel channels in the array",
       [](core::SystemConfig& c, double v) {
         c.array_spec.channel_count = static_cast<int>(v);
       }},
      {"channel_groups", "channel groups sharing one axial temperature profile",
       [](core::SystemConfig& c, double v) {
         c.channel_groups = static_cast<int>(v);
       }},
      {"axial_cells", "thermal-grid cells along the flow direction",
       [](core::SystemConfig& c, double v) {
         c.thermal_grid.axial_cells = static_cast<int>(v);
       },
       /*thermal_structural=*/true},
      {"die_count", "dies in the 3D stack (rebuilds a multi-die stack + per-die workload)",
       nullptr, /*thermal_structural=*/true, apply_stack_rebuild},
      {"interlayer", "1 = microchannel layer above every die, 0 = top-die cooling only",
       nullptr, /*thermal_structural=*/true, apply_stack_rebuild},
      {"stack_layers", "z-cells per die bulk layer (3D-stack vertical resolution)",
       nullptr, /*thermal_structural=*/true, apply_stack_rebuild},
      {"stack_channel_height_um",
       "cooling-layer etch depth, every stack layer + the flow-cell channels (um)",
       [](core::SystemConfig& c, double v) { set_channel_heights(c, v * 1e-6); },
       /*thermal_structural=*/true},
      {"solver", "thermal preconditioner: 0 = ILU(0)+BiCGSTAB, 1 = geometric multigrid",
       [](core::SystemConfig& c, double v) {
         c.thermal_grid.solver_config.kind = v != 0.0 ? thermal::SolverKind::kMultigrid
                                                      : thermal::SolverKind::kIlu0;
       },
       /*thermal_structural=*/true},
      {"pump_efficiency", "hydraulic pump efficiency (0, 1]",
       [](core::SystemConfig& c, double v) { c.pump_efficiency = v; }},
      {"power_scale", "multiplier on every die's power densities (workload knob)",
       nullptr, /*thermal_structural=*/false, apply_power_scale},
      {"vrm_count_x", "VRM tap columns over the die",
       [](core::SystemConfig& c, double v) {
         c.vrm_spec.count_x = static_cast<int>(v);
       }},
      {"vrm_count_y", "VRM tap rows over the die",
       [](core::SystemConfig& c, double v) {
         c.vrm_spec.count_y = static_cast<int>(v);
       }},
      {"vrm_grid_n", "square VRM tap grid: sets both count_x and count_y",
       [](core::SystemConfig& c, double v) {
         c.vrm_spec.count_x = static_cast<int>(v);
         c.vrm_spec.count_y = static_cast<int>(v);
       }},
      {"vrm_r_mohm", "per-tap VRM output resistance (mohm)",
       [](core::SystemConfig& c, double v) {
         c.vrm_spec.output_resistance_ohm = v * 1e-3;
       }},
      {"vrm_set_point_v", "regulated rail set-point voltage (V)",
       [](core::SystemConfig& c, double v) { c.vrm_spec.set_point_v = v; }},
      {"vrm_efficiency", "VRM conversion efficiency (0, 1]",
       [](core::SystemConfig& c, double v) { c.vrm_spec.efficiency = v; }},
      {"max_cosim_iterations", "fixed-point iteration cap of the co-simulation",
       [](core::SystemConfig& c, double v) {
         c.max_cosim_iterations = static_cast<int>(v);
       }},
      // Evaluator-consumed parameter: the conventional edge-fed PDN baseline
      // has no SystemConfig field; rail_integrity_evaluator() reads it off
      // the scenario directly.
      {"edge_taps_per_side", "edge-fed baseline: VRM taps per die edge (rail evaluator)",
       nullptr},
      // Evaluator-consumed mission parameters: a MissionConfig wraps the
      // SystemConfig, so its knobs have no SystemConfig field either;
      // mission_evaluator() reads them off the scenario directly.
      // tank_ml / initial_soc feed the reservoir and bus side only — the
      // thermal trajectory is bitwise unaffected (run_mission's stepping
      // reads neither), so they are flagged mission_thermal_invariant and
      // scenarios differing only here share one recorded trajectory.
      {"tank_ml", "electrolyte tank volume per side (mL; mission evaluator)", nullptr,
       /*thermal_structural=*/false, nullptr, /*mission_thermal_invariant=*/true},
      {"mission_dt_s", "nominal mission transient step (s; mission evaluator)", nullptr},
      {"initial_soc", "mission starting state of charge (mission evaluator)", nullptr,
       /*thermal_structural=*/false, nullptr, /*mission_thermal_invariant=*/true},
      {"workload_kind",
       "mission workload trace: 0=full-load, 1=idle/burst/sustain, 2=memory-bound "
       "(mission evaluator)",
       nullptr},
      {"workload_repeats", "repeats of the mission workload trace (mission evaluator)",
       nullptr},
      // Thermal-structural so rom and full rows never share a per-worker
      // cache slot (the reduced model's solve history lives with the
      // engine, but the cache key must still separate the two backends).
      {"transient",
       "thermal stepping backend: 0 = full grid solve, 1 = certified reduced-order "
       "(mission evaluator)",
       nullptr, /*thermal_structural=*/true},
      // Evaluator-consumed fleet parameters: a RackSpec wraps N SystemConfigs
      // (fleet/rack.h), so the rack knobs have no single-chip field; the
      // fleet evaluators read them off the scenario directly.
      {"rack_chips", "chips in the demo rack (fleet evaluators)", nullptr},
      {"rack_loops", "shared coolant loops of the rack (fleet evaluators)", nullptr},
      {"rack_segments", "serial segments per coolant loop (fleet evaluators)", nullptr},
      {"rack_hetero",
       "1 = every odd chip is the two-die interlayer stack (fleet evaluators)", nullptr},
      {"rack_blocked", "first N chips blocked: valve closed, powered off "
       "(fleet evaluators)",
       nullptr},
      {"rack_flow_ml_min", "coolant flow per rack loop (ml/min; fleet evaluators)",
       nullptr},
      {"rack_inlet_c", "rack loop inlet temperature (deg C; fleet evaluators)", nullptr},
      {"coolant_temp_dep",
       "1 = temperature-dependent coolant viscosity/conductivity along the loops "
       "(fleet evaluators)",
       nullptr},
      {"rack_stagger_s", "per-chip workload stagger: chip i offset i*s "
       "(fleet_replay evaluator)",
       nullptr},
      {"rack_dt_s", "fleet replay transient step (s; fleet_replay evaluator)", nullptr},
      {"rack_steps", "fleet replay step count (fleet_replay evaluator)", nullptr},
  };
  return registry;
}

const ParameterInfo* find_parameter(const std::string& name) {
  for (const ParameterInfo& info : parameter_registry()) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

core::SystemConfig apply_scenario(const core::SystemConfig& base,
                                  const ScenarioSpec& scenario) {
  core::SystemConfig config = base;
  for (const auto& [param, value] : scenario.overrides) {
    const ParameterInfo* info = find_parameter(param);
    if (info == nullptr) {
      throw std::invalid_argument("unknown sweep parameter: " + param);
    }
    if (info->apply_with_scenario) {
      info->apply_with_scenario(config, value, scenario);
    } else if (info->apply) {
      info->apply(config, value);
    }
  }
  return config;
}

}  // namespace brightsi::sweep
