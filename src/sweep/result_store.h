// Persistent, content-addressed result store: the per-worker
// ThermalModelCache generalized one level up, to a cross-run, cross-process
// cache of evaluated sweep rows keyed by scenario hash.
//
// On-disk layout of a store directory:
//   meta.bin                      scope the store is keyed to (plan name,
//                                 evaluator, metric columns) + the salt
//   records-<tag>-<pid>-<n>.log   append-only evaluated rows, one framed
//                                 record per row (core/binfile.h), one
//                                 file per writer so concurrent processes
//                                 never interleave bytes
//   journal-<tag>-<pid>-<n>.log   append-only run events (begin/end,
//                                 lease steals) — an audit trail, never
//                                 an input to result bytes
//   leases/<hash>.lease           advisory claim of an in-flight row
//
// Concurrency model: evaluation is deterministic, so duplicated work is
// harmless — two processes that race on a row append byte-identical
// records and the loader dedups by hash. Leases are therefore purely an
// optimization (avoid re-evaluating in-flight rows) and a liveness
// mechanism (an orphaned lease older than the timeout is stolen), never a
// correctness requirement. Each append is flushed before the lease is
// released: the store itself is the per-row completion checkpoint that
// makes kill-and-resume work.
#ifndef BRIGHTSI_SWEEP_RESULT_STORE_H
#define BRIGHTSI_SWEEP_RESULT_STORE_H

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sweep/runner.h"
#include "sweep/scenario_hash.h"

namespace brightsi::sweep {

/// The identity a store is scoped to. Opening a store with a different
/// scope than it was created with throws — a cache hit across plans,
/// evaluators or metric layouts would be silent corruption.
struct StoreScope {
  std::string scope;      ///< plan or study name
  std::string evaluator;  ///< evaluator name
  std::vector<std::string> metrics;

  [[nodiscard]] std::uint64_t salt() const {
    return store_salt(scope, evaluator, metrics);
  }
};

/// One event of a journal file, surfaced for tests and `brightsi_merge
/// --check`.
struct JournalEvent {
  std::string event;
  std::string detail;
};

class ResultStore {
 public:
  /// Opens the store directory, creating directory + meta.bin when
  /// `create` allows it. Validates an existing meta.bin against `scope`
  /// and throws std::runtime_error (naming the store path) on a missing
  /// store (create == false), a scope mismatch, or a corrupt/incompatible
  /// meta file. `writer_tag` distinguishes this writer's log files.
  ResultStore(std::string dir, StoreScope scope, bool create = true,
              std::string writer_tag = "w");

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const StoreScope& scope() const { return scope_; }
  [[nodiscard]] std::uint64_t salt() const { return salt_; }

  /// Re-scans every record log in the directory into the in-memory index
  /// (picking up rows appended by other processes). One torn record at
  /// the tail of a log is dropped silently — that is the kill signature —
  /// while corruption anywhere else throws with the offending file named.
  /// Returns the number of distinct rows indexed.
  std::size_t reload();

  /// The stored row for `hash`, or nullptr. Thread-safe against append().
  [[nodiscard]] const ScenarioResult* find(const ScenarioHash& hash) const;

  [[nodiscard]] std::size_t size() const;

  /// Appends one evaluated row to this writer's record log and flushes it
  /// — the durable per-row checkpoint — then indexes it. Thread-safe.
  void append(const ScenarioHash& hash, const ScenarioResult& row);

  /// Rows appended through this instance (not counting loaded ones).
  [[nodiscard]] long long appended_count() const;

  // ------------------------------------------------------------- leases
  /// Claims `hash` for evaluation. Returns true when the lease file was
  /// created (fresh, or after stealing one older than `timeout_s`; sets
  /// *stolen in the latter case). With `create_if_absent` false only an
  /// expired lease is taken over — the probe the shard backend uses on
  /// rows owned by *other* shards, so it helps crashed peers without
  /// hijacking work they simply have not started. A lease whose mtime
  /// lies in the future (clock skew, copied store directories) counts as
  /// expired, never as eternally fresh. Thread-safe.
  bool try_claim(const ScenarioHash& hash, double timeout_s, bool create_if_absent,
                 bool* stolen = nullptr);

  /// Releases a claim made by try_claim (idempotent).
  void release(const ScenarioHash& hash);

  // ------------------------------------------------------------ journal
  /// Appends one (event, detail) record to this writer's journal log.
  void journal(std::string_view event, std::string_view detail);

 private:
  void load_log(const std::string& path);
  std::ofstream& records_stream_locked();
  [[nodiscard]] std::string lease_path(const ScenarioHash& hash) const;

  std::string dir_;
  StoreScope scope_;
  std::uint64_t salt_ = 0;
  std::string writer_name_;  ///< "<tag>-<pid>-<n>", shared by both logs

  mutable std::mutex mutex_;
  std::unordered_map<ScenarioHash, ScenarioResult, ScenarioHashHasher> index_;
  std::ofstream records_;
  std::ofstream journal_;
  long long appended_ = 0;
};

/// Reads every event of one journal file (header-validated, crc-checked;
/// a torn tail record is dropped, other damage throws).
[[nodiscard]] std::vector<JournalEvent> read_journal_file(const std::string& path,
                                                          std::uint64_t expected_salt);

/// All journal events across a store directory, grouped per file in
/// filename order.
[[nodiscard]] std::vector<std::pair<std::string, std::vector<JournalEvent>>>
read_store_journals(const std::string& store_dir, std::uint64_t expected_salt);

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_RESULT_STORE_H
