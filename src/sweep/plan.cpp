#include "sweep/plan.h"

#include <cstdio>
#include <stdexcept>

namespace brightsi::sweep {

std::string format_value(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

void SweepPlan::add(ScenarioSpec scenario) {
  scenarios.push_back(std::move(scenario));
}

void SweepPlan::add_list(const std::string& param, const std::vector<double>& values,
                         const std::string& name_prefix) {
  for (const double value : values) {
    ScenarioSpec scenario;
    scenario.name = name_prefix.empty() ? param + "=" + format_value(value)
                                        : name_prefix + " " + format_value(value);
    scenario.set(param, value);
    scenarios.push_back(std::move(scenario));
  }
}

void SweepPlan::add_grid(const std::vector<GridAxis>& axes,
                         const std::vector<std::pair<std::string, double>>& common) {
  if (axes.empty()) {
    return;
  }
  for (const GridAxis& axis : axes) {
    if (axis.values.empty()) {
      return;  // empty axis -> empty product
    }
  }
  std::vector<std::size_t> index(axes.size(), 0);
  while (true) {
    ScenarioSpec scenario;
    for (const auto& [param, value] : common) {
      scenario.set(param, value);
    }
    std::string name;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const double value = axes[a].values[index[a]];
      scenario.set(axes[a].param, value);
      if (!name.empty()) {
        name += " ";
      }
      name += axes[a].param + "=" + format_value(value);
    }
    scenario.name = name;
    scenarios.push_back(std::move(scenario));

    // Row-major increment: last axis varies fastest.
    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++index[a] < axes[a].values.size()) {
        break;
      }
      index[a] = 0;
      if (a == 0) {
        return;
      }
    }
  }
}

void SweepPlan::validate() const {
  if (!evaluator.fn) {
    throw std::invalid_argument("sweep plan '" + name + "' has no evaluator");
  }
  if (evaluator.metrics.empty()) {
    throw std::invalid_argument("sweep plan '" + name + "' evaluator declares no metrics");
  }
  for (const ScenarioSpec& scenario : scenarios) {
    const core::SystemConfig config = apply_scenario(base, scenario);
    config.validate();
  }
}

}  // namespace brightsi::sweep
