#include "sweep/evaluators.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "chip/power7.h"
#include "core/cosim.h"
#include "core/mission.h"
#include "fleet/rack.h"
#include "flowcell/cell_array.h"
#include "hydraulics/pump.h"
#include "pdn/power_grid.h"
#include "sweep/scenario.h"
#include "sweep/scenario_hash.h"
#include "thermal/model.h"

namespace brightsi::sweep {

namespace {

/// The mission workload presets selectable from a numeric scenario
/// parameter (sweep values are doubles).
chip::WorkloadTrace mission_workload(int kind, int repeats) {
  chip::WorkloadTrace base;
  switch (kind) {
    case 0:
      base = chip::full_load_trace();
      break;
    case 1:
      base = chip::burst_trace(1);
      break;
    case 2:
      base = chip::memory_bound_trace();
      break;
    default:
      throw std::invalid_argument("workload_kind must be 0, 1 or 2, got " +
                                  std::to_string(kind));
  }
  return chip::WorkloadTrace(base.phases(), repeats);
}

/// The demo rack implied by a scenario's evaluator-consumed fleet knobs
/// (all registered with a null `apply` in parameter_registry()).
fleet::RackSpec rack_from_scenario(const core::SystemConfig& config,
                                   const ScenarioSpec& scenario) {
  fleet::RackSpec rack = fleet::make_demo_rack(
      config, static_cast<int>(scenario.get("rack_chips").value_or(4.0)),
      static_cast<int>(scenario.get("rack_loops").value_or(1.0)),
      static_cast<int>(scenario.get("rack_segments").value_or(2.0)),
      scenario.get("rack_hetero").value_or(0.0) != 0.0,
      static_cast<int>(scenario.get("rack_blocked").value_or(0.0)));
  rack.loop_flow_m3_per_s = scenario.get("rack_flow_ml_min").value_or(676.0) * 1e-6 / 60.0;
  rack.loop_inlet_temperature_k = scenario.get("rack_inlet_c").value_or(26.85) + 273.15;
  rack.coolant_laws.temperature_dependent =
      scenario.get("coolant_temp_dep").value_or(0.0) != 0.0;
  // Re-price relative to the loop inlet, so the first segment of every loop
  // sees exactly the reference coolant even with the laws enabled.
  rack.coolant_laws.reference_temperature_k = rack.loop_inlet_temperature_k;
  const double stagger_s = scenario.get("rack_stagger_s").value_or(0.0);
  for (std::size_t i = 0; i < rack.chips.size(); ++i) {
    rack.chips[i].workload_offset_s = static_cast<double>(i) * stagger_s;
  }
  return rack;
}

}  // namespace

SweepEvaluator cosim_evaluator() {
  SweepEvaluator evaluator;
  evaluator.name = "cosim";
  evaluator.metrics = {
      "iterations",     "converged",        "peak_t_c",      "coolant_out_c",
      "bus_v",          "array_current_a",  "array_power_w", "vrm_loss_w",
      "dp_bar",         "pump_w",           "net_w",         "iso_current_a",
      "coupled_current_a", "thermal_gain_pct", "rail_min_v", "rail_worst_drop_v",
  };
  evaluator.fn = [](const core::SystemConfig& config, const ScenarioSpec& scenario,
                    WorkerState& worker) {
    const core::IntegratedMpsocSystem system(
        config, worker.thermal_models.model_for(config, scenario));
    const core::CoSimReport report = system.run();
    return std::vector<double>{
        static_cast<double>(report.iterations),
        report.converged ? 1.0 : 0.0,
        report.peak_temperature_c,
        report.mean_coolant_outlet_c,
        report.supply.bus_voltage_v,
        report.supply.array_current_a,
        report.supply.array_power_w,
        report.supply.vrm_loss_w,
        report.pressure_drop_bar,
        report.pumping_power_w,
        report.net_power_w,
        report.isothermal_current_a,
        report.coupled_current_a,
        report.thermal_current_gain * 100.0,
        report.grid.min_voltage_v,
        report.grid.worst_drop_v,
    };
  };
  return evaluator;
}

SweepEvaluator array_power_evaluator() {
  SweepEvaluator evaluator;
  evaluator.name = "array";
  evaluator.metrics = {"current_1v_a", "power_density_w_cm2", "dp_bar", "pump_w", "net_w"};
  evaluator.fn = [](const core::SystemConfig& config, const ScenarioSpec&, WorkerState&) {
    const flowcell::FlowCellArray array(config.array_spec, config.chemistry, config.fvm);
    const flowcell::ArraySpec& spec = config.array_spec;
    const double area_cm2 =
        spec.geometry.projected_electrode_area_m2() * spec.channel_count * 1e4;
    const double current = array.current_at_voltage(1.0, {spec.inlet_temperature_k});
    const auto hydraulics = array.hydraulics_at_spec_flow();
    const double pump = hydraulics::pumping_power_w(
        hydraulics.pressure_drop_pa, spec.total_flow_m3_per_s, config.pump_efficiency);
    return std::vector<double>{
        current,
        current / area_cm2,
        hydraulics.pressure_drop_pa / 1e5,
        pump,
        current - pump,
    };
  };
  return evaluator;
}

SweepEvaluator array_thermal_evaluator() {
  SweepEvaluator evaluator;
  evaluator.name = "array_thermal";
  evaluator.metrics = {"current_1v_a", "power_density_w_cm2", "dp_bar", "pump_w",
                       "net_w",        "peak_t_c",            "coolant_out_c"};
  evaluator.fn = [array = array_power_evaluator()](const core::SystemConfig& config,
                                                   const ScenarioSpec& scenario,
                                                   WorkerState& worker) {
    std::vector<double> metrics = array.fn(config, scenario, worker);

    const auto model = worker.thermal_models.model_for(config, scenario);
    thermal::OperatingPoint op;
    op.total_flow_m3_per_s = config.array_spec.total_flow_m3_per_s;
    op.inlet_temperature_k = config.array_spec.inlet_temperature_k;
    const thermal::ThermalSolution sol =
        model->solve_steady(chip::make_power7_floorplan(config.power_spec), op);
    metrics.push_back(sol.peak_temperature_k - 273.15);
    metrics.push_back(sol.mean_outlet_k(op.inlet_temperature_k) - 273.15);
    return metrics;
  };
  return evaluator;
}

SweepEvaluator rail_integrity_evaluator() {
  SweepEvaluator evaluator;
  evaluator.name = "rail";
  evaluator.metrics = {"tap_count",    "rail_min_v",   "rail_max_v",      "rail_mean_v",
                       "worst_drop_v", "ohmic_loss_w", "supply_current_a"};
  evaluator.fn = [](const core::SystemConfig& config, const ScenarioSpec& scenario,
                    WorkerState&) {
    const chip::Floorplan floorplan = chip::make_power7_floorplan(config.power_spec);
    const pdn::PowerGrid grid(config.grid_spec, floorplan);
    std::vector<pdn::VrmTap> taps;
    if (const auto per_edge = scenario.get("edge_taps_per_side")) {
      taps = pdn::make_edge_taps(static_cast<int>(*per_edge), floorplan.die_width(),
                                 floorplan.die_height(), config.vrm_spec.set_point_v,
                                 config.vrm_spec.output_resistance_ohm);
    } else {
      taps = pdn::make_vrm_grid(config.vrm_spec.count_x, config.vrm_spec.count_y,
                                floorplan.die_width(), floorplan.die_height(),
                                config.vrm_spec.set_point_v,
                                config.vrm_spec.output_resistance_ohm);
    }
    const pdn::PowerGridSolution solution = grid.solve(taps);
    return std::vector<double>{
        static_cast<double>(taps.size()),
        solution.min_voltage_v,
        solution.max_voltage_v,
        solution.mean_voltage_v,
        solution.worst_drop_v,
        solution.ohmic_loss_w,
        solution.total_supply_current_a,
    };
  };
  return evaluator;
}

SweepEvaluator mission_evaluator() {
  SweepEvaluator evaluator;
  evaluator.name = "mission";
  evaluator.metrics = {"steps",          "final_soc", "soc_drop",       "energy_j",
                       "max_peak_c",     "supply_ok", "supply_ok_frac", "min_bus_v"};
  evaluator.fn = [](const core::SystemConfig& config, const ScenarioSpec& scenario,
                    WorkerState& worker) {
    core::MissionConfig mission;
    mission.system = config;
    mission.workload = mission_workload(
        static_cast<int>(scenario.get("workload_kind").value_or(1.0)),
        static_cast<int>(scenario.get("workload_repeats").value_or(1.0)));
    mission.reservoir.tank_volume_m3 = scenario.get("tank_ml").value_or(5.0) * 1e-6;
    mission.reservoir.total_vanadium_mol_per_m3 = 2001.0;
    mission.reservoir.chemistry = config.chemistry;
    mission.initial_soc = scenario.get("initial_soc").value_or(0.95);
    mission.dt_s = scenario.get("mission_dt_s").value_or(0.1);
    mission.transient_backend = scenario.get("transient").value_or(0.0) != 0.0
                                    ? thermal::TransientBackend::kRom
                                    : thermal::TransientBackend::kFull;

    // The mission's thermal trajectory ignores the electrochemical knobs
    // (tank_ml, initial_soc), so scenarios that differ only in those replay
    // one recorded trajectory (bit-identical to a full run) instead of
    // re-running the transient solve.
    const std::string trajectory_key = mission_trajectory_key(scenario);
    core::MissionResult result;
    if (const core::MissionThermalTrajectory* recorded =
            worker.mission_trajectories.find(trajectory_key)) {
      result = core::run_mission(mission, nullptr, nullptr, nullptr, recorded);
    } else {
      core::MissionThermalTrajectory trajectory;
      result = core::run_mission(mission, worker.thermal_models.model_for(config, scenario),
                                 nullptr, &trajectory, nullptr);
      worker.mission_trajectories.insert(trajectory_key, std::move(trajectory));
    }
    int supply_ok_count = 0;
    double min_bus_v = result.samples.empty() ? 0.0 : result.samples.front().bus_voltage_v;
    for (const core::MissionSample& sample : result.samples) {
      supply_ok_count += sample.supply_ok ? 1 : 0;
      min_bus_v = std::min(min_bus_v, sample.bus_voltage_v);
    }
    return std::vector<double>{
        static_cast<double>(result.steps),
        result.final_soc,
        mission.initial_soc - result.final_soc,
        result.energy_delivered_j,
        result.max_peak_temperature_c,
        result.supply_always_ok ? 1.0 : 0.0,
        static_cast<double>(supply_ok_count) /
            static_cast<double>(result.samples.size()),
        min_bus_v,
    };
  };
  return evaluator;
}

SweepEvaluator stack_evaluator() {
  SweepEvaluator evaluator;
  evaluator.name = "stack";
  evaluator.metrics = {"dies",          "channel_layers", "converged",
                       "peak_t_c",      "coolant_out_c",  "net_w",
                       "pump_w",        "bus_v",          "bottom_flow_frac",
                       "flow_frac_min", "flow_frac_max",  "fluid_heat_w"};
  evaluator.fn = [](const core::SystemConfig& config, const ScenarioSpec& scenario,
                    WorkerState& worker) {
    const core::IntegratedMpsocSystem system(
        config, worker.thermal_models.model_for(config, scenario));
    const core::CoSimReport report = system.run();
    double frac_min = 1.0;
    double frac_max = 0.0;
    for (const core::ChannelLayerReport& layer : report.layer_flows) {
      frac_min = std::min(frac_min, layer.fraction);
      frac_max = std::max(frac_max, layer.fraction);
    }
    return std::vector<double>{
        static_cast<double>(report.die_count),
        static_cast<double>(report.layer_flows.size()),
        report.converged ? 1.0 : 0.0,
        report.peak_temperature_c,
        report.mean_coolant_outlet_c,
        report.net_power_w,
        report.pumping_power_w,
        report.supply.bus_voltage_v,
        report.layer_flows.empty() ? 0.0 : report.layer_flows.front().fraction,
        frac_min,
        frac_max,
        report.thermal.fluid_heat_absorbed_w,
    };
  };
  return evaluator;
}

SweepEvaluator fleet_evaluator() {
  SweepEvaluator evaluator;
  evaluator.name = "fleet";
  evaluator.metrics = {"chips",           "loops",           "blocked",
                       "peak_t_c",        "loop_out_c",      "max_inlet_rise_c",
                       "inlet_monotonic", "pump_w",          "fluid_heat_w",
                       "flow_frac_min",   "flow_frac_max",   "energy_err"};
  evaluator.fn = [](const core::SystemConfig& config, const ScenarioSpec& scenario,
                    WorkerState&) {
    const fleet::RackSpec rack = rack_from_scenario(config, scenario);
    const fleet::RackSolveResult result = fleet::solve_rack_steady(rack);
    int blocked = 0;
    double frac_min = 1.0;
    double frac_max = 0.0;
    for (const fleet::RackChipResult& c : result.chips) {
      if (c.blocked) {
        ++blocked;
        continue;
      }
      frac_min = std::min(frac_min, c.flow_fraction);
      frac_max = std::max(frac_max, c.flow_fraction);
    }
    double loop_out_k = 0.0;
    for (const fleet::RackLoopResult& loop : result.loops) {
      loop_out_k = std::max(loop_out_k, loop.outlet_temperature_k);
    }
    return std::vector<double>{
        static_cast<double>(result.chips.size()),
        static_cast<double>(result.loops.size()),
        static_cast<double>(blocked),
        result.peak_temperature_k - 273.15,
        loop_out_k - 273.15,
        result.max_inlet_rise_k,
        result.inlet_monotonic ? 1.0 : 0.0,
        result.pump_power_w,
        result.heat_absorbed_w,
        frac_min,
        frac_max,
        result.energy_balance_rel_error,
    };
  };
  return evaluator;
}

SweepEvaluator fleet_replay_evaluator() {
  SweepEvaluator evaluator;
  evaluator.name = "fleet_replay";
  evaluator.metrics = {"chips",   "steps",      "sim_s",
                       "max_peak_c", "mean_pump_w", "heat_kj",
                       "max_inlet_rise_c", "inlet_monotonic"};
  evaluator.fn = [](const core::SystemConfig& config, const ScenarioSpec& scenario,
                    WorkerState&) {
    const fleet::RackSpec rack = rack_from_scenario(config, scenario);
    fleet::FleetReplayOptions options;
    options.trace = mission_workload(
        static_cast<int>(scenario.get("workload_kind").value_or(1.0)),
        static_cast<int>(scenario.get("workload_repeats").value_or(1.0)));
    options.dt_s = scenario.get("rack_dt_s").value_or(0.05);
    options.steps = static_cast<int>(scenario.get("rack_steps").value_or(20.0));
    const fleet::FleetReplayResult result = fleet::replay_fleet_trace(rack, options);
    return std::vector<double>{
        static_cast<double>(rack.chips.size()),
        static_cast<double>(result.steps),
        result.sim_time_s,
        result.max_peak_temperature_k - 273.15,
        result.mean_pump_power_w,
        result.heat_absorbed_j / 1e3,
        result.max_inlet_rise_k,
        result.inlet_monotonic ? 1.0 : 0.0,
    };
  };
  return evaluator;
}

SweepEvaluator make_evaluator(const std::string& name) {
  if (name == "cosim") {
    return cosim_evaluator();
  }
  if (name == "array") {
    return array_power_evaluator();
  }
  if (name == "array_thermal") {
    return array_thermal_evaluator();
  }
  if (name == "rail") {
    return rail_integrity_evaluator();
  }
  if (name == "mission") {
    return mission_evaluator();
  }
  if (name == "stack") {
    return stack_evaluator();
  }
  if (name == "fleet") {
    return fleet_evaluator();
  }
  if (name == "fleet_replay") {
    return fleet_replay_evaluator();
  }
  throw std::invalid_argument("unknown evaluator: " + name +
                              " (expected cosim, array, array_thermal, rail, mission, "
                              "stack, fleet or fleet_replay)");
}

}  // namespace brightsi::sweep
