// Evaluators turn one resolved scenario into a row of named metrics. The
// three built-ins cover the repo's ablation workloads: the full
// electro-thermal co-simulation, the isothermal array design point (bench
// ablation_geometry) and the cache-rail integrity solve (bench
// ablation_vrm_placement).
#ifndef BRIGHTSI_SWEEP_EVALUATORS_H
#define BRIGHTSI_SWEEP_EVALUATORS_H

#include <functional>
#include <string>
#include <vector>

#include "core/system_config.h"
#include "sweep/system_cache.h"

namespace brightsi::sweep {

/// A metric extractor: `fn` returns one value per entry of `metrics`, in
/// order. It receives the resolved SystemConfig, the raw scenario (for
/// evaluator-consumed parameters like edge_taps_per_side) and the calling
/// worker's mutable state — the structure cache that lets consecutive
/// scenarios differing only in operating-point parameters reuse the
/// assembled thermal model.
struct SweepEvaluator {
  std::string name;
  std::vector<std::string> metrics;
  std::function<std::vector<double>(const core::SystemConfig&, const ScenarioSpec&,
                                    WorkerState&)>
      fn;
};

/// Full fixed-point co-simulation (IntegratedMpsocSystem::run). Metrics:
/// convergence, peak/coolant temperatures, supply operating point,
/// hydraulics, net power and the thermal current gain.
[[nodiscard]] SweepEvaluator cosim_evaluator();

/// Isothermal array design point at 1 V: current, deliverable power density
/// per electrode area, pressure drop, pumping power and net power — the
/// ablation_geometry bench columns.
[[nodiscard]] SweepEvaluator array_power_evaluator();

/// The array design point plus a steady conjugate thermal solve at the
/// scenario's operating point (worker's cached thermal model): the array
/// metrics extended with peak die and mean coolant-outlet temperature.
/// This is the oracle of the channel-geometry optimization study — net
/// power comparable to the array evaluator, temperatures available for
/// hard caps like T_peak <= 360 K.
[[nodiscard]] SweepEvaluator array_thermal_evaluator();

/// Cache-rail integrity for a VRM population: solves the PDN with either a
/// distributed tap grid (vrm_count_x x vrm_count_y) or, when the scenario
/// sets edge_taps_per_side, the conventional edge-fed baseline.
[[nodiscard]] SweepEvaluator rail_integrity_evaluator();

/// Full transient mission (core/run_mission) through the shared transient
/// engine: tank endurance, delivered energy, peak temperature and supply
/// feasibility. Mission knobs ride on evaluator-consumed scenario
/// parameters (tank_ml, mission_dt_s, initial_soc, workload_kind,
/// workload_repeats); the worker's thermal-model cache is reused across
/// scenarios that share thermal structure.
[[nodiscard]] SweepEvaluator mission_evaluator();

/// Full co-simulation of a (possibly multi-die) 3D stack with the
/// stack-level observables: die/channel-layer counts, peak and coolant
/// temperatures, net power, and the equal-pressure-drop flow split across
/// the cooling layers (bottom-layer and extreme fractions, so the column
/// set stays fixed while the layer count varies across scenarios).
[[nodiscard]] SweepEvaluator stack_evaluator();

/// Steady solve of a fleet rack (fleet/rack.h) built from the scenario's
/// evaluator-consumed rack knobs (rack_chips, rack_loops, rack_segments,
/// rack_hetero, rack_blocked, rack_flow_ml_min, rack_inlet_c,
/// coolant_temp_dep): fleet peak/outlet temperatures, the serial inlet
/// rise and its monotonicity, pump power, flow-fraction extremes across
/// the live chip branches, and the loop energy-balance residual.
[[nodiscard]] SweepEvaluator fleet_evaluator();

/// Staggered workload-trace replay across the rack (workload_kind /
/// workload_repeats / rack_stagger_s / rack_dt_s / rack_steps): transient
/// fleet peaks, mean pump power and integrated coolant heat pickup.
[[nodiscard]] SweepEvaluator fleet_replay_evaluator();

/// Built-in evaluator by name ("cosim", "array", "array_thermal", "rail",
/// "mission", "stack", "fleet", "fleet_replay"); throws
/// std::invalid_argument on anything else.
[[nodiscard]] SweepEvaluator make_evaluator(const std::string& name);

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_EVALUATORS_H
