#include "sweep/system_cache.h"

#include <cstdio>
#include <utility>

#include "chip/power7.h"
#include "numerics/contracts.h"

namespace brightsi::sweep {

namespace {

/// The scenario's thermal-structural overrides as a canonical string key.
/// Override order is preserved — scenarios of one plan stamp their axes in
/// a fixed order, and a spurious order difference merely costs one rebuild,
/// never a wrong hit (the fingerprint would differ).
std::string fingerprint_of(const ScenarioSpec& scenario) {
  std::string key;
  for (const auto& [param, value] : scenario.overrides) {
    const ParameterInfo* info = find_parameter(param);
    if (info != nullptr && info->thermal_structural) {
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
      key += param;
      key += '=';
      key += buffer;
      key += ';';
    }
  }
  return key;
}

}  // namespace

std::shared_ptr<const thermal::ThermalModel> ThermalModelCache::model_for(
    const core::SystemConfig& config, const ScenarioSpec& scenario) {
  const std::string fingerprint = fingerprint_of(scenario);
  if (!enabled_ || model_ == nullptr || fingerprint != fingerprint_) {
    const chip::Floorplan floorplan = chip::make_power7_floorplan(config.power_spec);
    model_ = std::make_shared<const thermal::ThermalModel>(
        config.stack, floorplan.die_width(), floorplan.die_height(), config.thermal_grid);
    fingerprint_ = fingerprint;
    ++build_count_;
  }
  // Defensive cross-check: a structural parameter whose registry entry
  // forgot the thermal_structural flag would silently hand back a stale
  // model. The model records its constructor inputs, so the comparison is
  // exact (and O(stack layers) cheap).
  ensure(model_->stack() == config.stack && model_->settings() == config.thermal_grid,
         "thermal model cache: fingerprint missed a structural parameter");
  return model_;
}

const core::MissionThermalTrajectory* MissionTrajectoryCache::find(const std::string& key) {
  if (!enabled_) {
    return nullptr;
  }
  const auto it = trajectories_.find(key);
  if (it == trajectories_.end()) {
    return nullptr;
  }
  ++hit_count_;
  return &it->second;
}

void MissionTrajectoryCache::insert(const std::string& key,
                                    core::MissionThermalTrajectory trajectory) {
  if (!enabled_) {
    return;
  }
  trajectories_.insert_or_assign(key, std::move(trajectory));
}

}  // namespace brightsi::sweep
