// Canonical byte-stable serialization + content hashing of ScenarioSpecs:
// the identity layer of the on-disk result store and the shard assignment.
//
// Canonicalization rules (docs/ARCHITECTURE.md, "Execution backends &
// result store"):
//   * overrides are sorted by parameter name — apply order is documented
//     order-immune, so two scenarios that set the same (param, value)
//     pairs in different orders are the same evaluation;
//   * values travel as raw little-endian IEEE-754 bit patterns, never as
//     formatted text — the hash distinguishes exactly the doubles the
//     evaluator would see, with one canonicalization: -0.0 serializes as
//     +0.0, because the two zeros are indistinguishable to every consumer
//     of a scenario value and must not produce distinct store rows;
//   * strings are u32-length-prefixed (no separator ambiguity);
//   * the scenario name participates in the store key (a row is one named
//     plan entry), and the store salt folds in the plan name, evaluator
//     name, metric columns and format version, so a store can never serve
//     rows to the wrong plan or an incompatible build.
#ifndef BRIGHTSI_SWEEP_SCENARIO_HASH_H
#define BRIGHTSI_SWEEP_SCENARIO_HASH_H

#include <cstdint>
#include <string>
#include <string_view>

#include "sweep/evaluators.h"
#include "sweep/scenario.h"

namespace brightsi::sweep {

/// Format version of the canonical serialization + store record layout.
/// Bump on any change to either; the salt folds it in, so an old store is
/// cleanly rejected instead of silently misread.
inline constexpr std::uint32_t kStoreFormatVersion = 1;

/// 128-bit content hash (two salted FNV-1a-64 passes, the second chained
/// on the first). Not cryptographic — collision odds across a sweep's
/// scenario count are negligible, and the store cross-checks the scenario
/// name on every hit.
struct ScenarioHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const ScenarioHash&, const ScenarioHash&) = default;
  friend auto operator<=>(const ScenarioHash&, const ScenarioHash&) = default;

  /// 32 lowercase hex chars (hi then lo) — lease/journal file naming.
  [[nodiscard]] std::string hex() const;

  /// The shard that owns this scenario: lo mod shard_count.
  [[nodiscard]] int shard_of(int shard_count) const {
    return static_cast<int>(lo % static_cast<std::uint64_t>(shard_count));
  }
};

struct ScenarioHashHasher {
  [[nodiscard]] std::size_t operator()(const ScenarioHash& hash) const {
    return static_cast<std::size_t>(hash.lo ^ (hash.hi * 0x9E3779B97F4A7C15ULL));
  }
};

/// Canonical bytes of the scenario under the rules above. With
/// `include_name` false only the sorted overrides are serialized (the
/// form the mission trajectory key builds on).
[[nodiscard]] std::string canonical_scenario_bytes(const ScenarioSpec& scenario,
                                                   bool include_name = true);

/// Salted 128-bit FNV-1a over arbitrary bytes.
[[nodiscard]] ScenarioHash hash_bytes(std::string_view bytes, std::uint64_t salt);

/// hash_bytes over canonical_scenario_bytes(scenario, true).
[[nodiscard]] ScenarioHash hash_scenario(const ScenarioSpec& scenario, std::uint64_t salt);

/// The store salt for a (plan, evaluator) scope: folds the plan name, the
/// evaluator name, every metric column and kStoreFormatVersion. Two runs
/// agree on row hashes iff they agree on this salt.
[[nodiscard]] std::uint64_t store_salt(const std::string& plan_name,
                                       const std::string& evaluator_name,
                                       const std::vector<std::string>& metric_names);

/// Key of the per-worker mission thermal-trajectory cache: the canonical
/// bytes of every override that is not flagged mission_thermal_invariant
/// in the parameter registry (tank sizing and starting SOC shift the
/// electrochemical side only — the thermal trajectory is bitwise
/// unaffected, so scenarios differing only there share one recording).
[[nodiscard]] std::string mission_trajectory_key(const ScenarioSpec& scenario);

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_SCENARIO_HASH_H
