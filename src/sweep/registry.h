// Named, ready-to-run sweep plans. The first three re-express existing
// one-off bench mains (ablation_geometry, temp_sensitivity,
// ablation_vrm_placement) as data: same design points, same metrics, but
// runnable on every core through the SweepRunner.
#ifndef BRIGHTSI_SWEEP_REGISTRY_H
#define BRIGHTSI_SWEEP_REGISTRY_H

#include <string>
#include <vector>

#include "sweep/plan.h"

namespace brightsi::sweep {

/// A registry entry: the plan name plus a one-line summary for --list.
struct PlanDescription {
  std::string name;
  std::string summary;
};

/// All registered plan names with summaries, in presentation order.
[[nodiscard]] const std::vector<PlanDescription>& registered_plans();

/// Builds the named plan (scenarios fully expanded). Throws
/// std::invalid_argument on an unknown name.
[[nodiscard]] SweepPlan make_registered_plan(const std::string& name);

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_REGISTRY_H
