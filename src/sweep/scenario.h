// Named parameter overrides on a SystemConfig: the unit of work of a
// design-space sweep. A ScenarioSpec is a list of (parameter, value)
// overrides applied on top of a base configuration; the legal parameter
// names live in a registry so plans stay typo-safe and the CLI can list
// them.
#ifndef BRIGHTSI_SWEEP_SCENARIO_H
#define BRIGHTSI_SWEEP_SCENARIO_H

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/system_config.h"

namespace brightsi::sweep {

/// One point of a design-space sweep: a human-readable name plus ordered
/// (parameter, value) overrides on the plan's base SystemConfig.
struct ScenarioSpec {
  std::string name;
  std::vector<std::pair<std::string, double>> overrides;

  /// Appends the override, or replaces the value if `param` is already set.
  void set(const std::string& param, double value);
  [[nodiscard]] std::optional<double> get(const std::string& param) const;
};

/// A sweepable parameter. `apply` rewrites the SystemConfig; it is null for
/// parameters consumed directly by an evaluator (e.g. the edge-fed VRM
/// baseline, which has no SystemConfig field).
struct ParameterInfo {
  std::string name;
  std::string description;
  std::function<void(core::SystemConfig&, double)> apply;
  /// True when the parameter changes the *structure* of the assembled
  /// thermal operator (grid, stack, die outline) rather than an
  /// operating-point coefficient. The sweep's per-worker structure cache
  /// (sweep/system_cache.h) keys on exactly these overrides, so a
  /// parameter that grows a thermal-structural effect must set this flag —
  /// the cache cross-checks the invariants it can and throws on a miss.
  bool thermal_structural = false;
  /// For parameters whose effect depends on sibling overrides (the 3D
  /// stack knobs: a rebuilt stack must honor every stack override of the
  /// scenario, not just the one being applied): receives the full
  /// scenario and takes precedence over `apply`.
  std::function<void(core::SystemConfig&, double, const ScenarioSpec&)> apply_with_scenario =
      nullptr;
  /// True when the parameter provably cannot change the mission's thermal
  /// trajectory (it feeds the electrochemical/bus side only: tank sizing,
  /// starting SOC). The per-worker mission trajectory cache
  /// (sweep/system_cache.h) keys on every override *except* these, so
  /// scenarios differing only here replay one recorded trajectory instead
  /// of re-stepping the transient engine. Default false = conservative.
  bool mission_thermal_invariant = false;
};

/// All legal scenario parameters, in presentation order.
[[nodiscard]] const std::vector<ParameterInfo>& parameter_registry();

/// Looks up a parameter; nullptr when `name` is not registered.
[[nodiscard]] const ParameterInfo* find_parameter(const std::string& name);

/// Applies the scenario's overrides to a copy of `base`. Throws
/// std::invalid_argument on an unregistered parameter name.
[[nodiscard]] core::SystemConfig apply_scenario(const core::SystemConfig& base,
                                                const ScenarioSpec& scenario);

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_SCENARIO_H
