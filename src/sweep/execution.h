// The execution seam under SweepRunner::run and opt::BatchEvaluationSession:
// a backend turns (base config, evaluator, scenario list) into result rows
// in scenario order.
//
//   local  — the in-process worker pool (the historical behaviour): one
//            persistent WorkerState per thread, rows byte-identical at any
//            thread count.
//   shard  — the local pool wrapped in a content-addressed on-disk result
//            store (sweep/result_store.h): rows already stored are filled
//            without evaluation; fresh rows owned by this shard
//            (hash mod shard_count) are claimed via the lease protocol,
//            evaluated and appended (per-row checkpoint); orphaned leases
//            of other shards are stolen; everything else is left pending
//            for its owner. Separate processes/hosts pointed at one store
//            directory cooperate and resume interrupted sweeps.
//
// The determinism contract is the repo's standing invariant extended one
// level up: because evaluation is a pure function of (base, scenario), the
// union of stored rows — and therefore the merged CSV/JSON — is
// byte-identical at any shard count x thread count, including after a
// kill-and-resume cycle.
#ifndef BRIGHTSI_SWEEP_EXECUTION_H
#define BRIGHTSI_SWEEP_EXECUTION_H

#include <memory>
#include <string>
#include <vector>

#include "sweep/plan.h"
#include "sweep/runner.h"

namespace brightsi::sweep {

// ExecutionStats lives in sweep/runner.h (SweepResult embeds it).

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual int thread_count() const = 0;

  /// Evaluates (or resolves from the store) every scenario, writing
  /// `rows` in scenario order. Per-scenario exceptions become failed rows.
  /// Worker state persists across calls, so successive optimizer
  /// generations keep their structure caches warm.
  virtual void execute(const core::SystemConfig& base, const SweepEvaluator& evaluator,
                       const std::vector<ScenarioSpec>& scenarios,
                       std::vector<ScenarioResult>& rows) = 0;

  [[nodiscard]] virtual ExecutionStats stats() const = 0;

  /// Thermal-model structure builds across all workers (the session-level
  /// cache-hit accounting the optimizer reports).
  [[nodiscard]] int model_build_count() const { return stats().model_builds; }
};

/// The in-process thread pool (thread count and reuse from `options`).
[[nodiscard]] std::unique_ptr<ExecutionBackend> make_local_backend(SweepOptions options = {});

struct ShardOptions {
  std::string store_dir;        ///< result-store directory (required)
  std::string scope;            ///< plan/study name the store is keyed to
  int shard_index = 0;          ///< this instance's shard, in [0, shard_count)
  int shard_count = 1;
  /// A lease older than this is considered orphaned (holder crashed) and
  /// may be stolen by any shard.
  double lease_timeout_s = 60.0;
  /// Stop after this many fresh evaluations (< 0 = unlimited). Row-limit
  /// injection: simulates a killed sweep for resume tests without
  /// touching signal handling.
  long long row_limit = -1;
  /// Take over other shards' rows whose lease is orphaned. Rows another
  /// shard has simply not started stay pending for their owner either way.
  bool steal_orphaned_leases = true;
  SweepOptions local;           ///< the worker pool under the shard logic
};

/// The shard backend. Throws on invalid shard bounds or an empty
/// store_dir; store scope validation happens on first execute() (when the
/// evaluator is known).
[[nodiscard]] std::unique_ptr<ExecutionBackend> make_shard_backend(ShardOptions options);

/// Merges a store back into canonical plan order: every scenario of
/// `plan` resolved against the store at `store_dir` (which must exist and
/// match the plan's scope). Missing rows throw unless `allow_missing`,
/// in which case they become pending rows. The returned result feeds the
/// standard CSV/JSON writers, byte-identical to an uninterrupted
/// single-process run — this is tools/brightsi_merge.
[[nodiscard]] SweepResult assemble_from_store(const SweepPlan& plan,
                                              const std::string& store_dir,
                                              bool allow_missing = false);

/// Evaluates one scenario against `base` — the shared per-row body of
/// every backend (exceptions become a failed row; timing recorded).
[[nodiscard]] ScenarioResult evaluate_scenario(const core::SystemConfig& base,
                                               const SweepEvaluator& evaluator,
                                               const ScenarioSpec& scenario,
                                               WorkerState& worker);

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_EXECUTION_H
