// Per-worker reuse of expensively-assembled model structure across the
// scenarios of a sweep. Scenarios that differ only in operating-point
// parameters (flow, inlet temperature, power density, VRM electrical
// settings) share one assembled ThermalModel — grid build plus operator
// sparsity pattern — keyed by the scenario's thermal-structural overrides
// (ParameterInfo::thermal_structural).
//
// Result rows are byte-identical with and without reuse (sweep_test proves
// it): a shared model is bitwise the model the scenario would have built
// itself, and IntegratedMpsocSystem::run() carries no state across runs.
#ifndef BRIGHTSI_SWEEP_SYSTEM_CACHE_H
#define BRIGHTSI_SWEEP_SYSTEM_CACHE_H

#include <map>
#include <memory>
#include <string>

#include "core/mission.h"
#include "core/system_config.h"
#include "sweep/scenario.h"

namespace brightsi::sweep {

/// Caches the most recently built thermal model. Single-threaded — one
/// instance per worker thread — and intentionally depth-1: plans emit
/// scenarios with equal structure adjacently (grids vary the last axis
/// fastest), so one slot already captures nearly all reuse.
class ThermalModelCache {
 public:
  explicit ThermalModelCache(bool enabled = true) : enabled_(enabled) {}

  /// The assembled thermal model for `config`: the cached one when the
  /// scenario's thermal-structural fingerprint matches the previous call's,
  /// otherwise a fresh build (which replaces the cache slot). With caching
  /// disabled every call builds fresh.
  [[nodiscard]] std::shared_ptr<const thermal::ThermalModel> model_for(
      const core::SystemConfig& config, const ScenarioSpec& scenario);

  /// Models built so far — lets tests assert reuse actually happened.
  [[nodiscard]] int build_count() const { return build_count_; }

 private:
  bool enabled_;
  std::string fingerprint_;
  std::shared_ptr<const thermal::ThermalModel> model_;
  int build_count_ = 0;
};

/// Caches recorded mission thermal trajectories keyed by the scenario's
/// mission-thermal-relevant overrides (sweep/scenario_hash.h's
/// mission_trajectory_key). Scenarios that differ only in electrochemical
/// knobs (tank size, initial SOC — ParameterInfo::mission_thermal_invariant)
/// replay one recorded trajectory instead of re-running the transient
/// thermal solve, which dominates mission cost.
///
/// Single-threaded, one instance per worker. A full map rather than a
/// depth-1 slot: mission plans put the electrochemical axis outermost, so
/// scenarios sharing a trajectory are far apart in plan order. Valid only
/// while the worker evaluates against one base config — the runner
/// guarantees that (fresh workers per SweepRunner::run; a fixed base per
/// BatchEvaluationSession).
class MissionTrajectoryCache {
 public:
  explicit MissionTrajectoryCache(bool enabled = true) : enabled_(enabled) {}

  /// The recorded trajectory for `key`, or nullptr when absent (or the
  /// cache is disabled). A hit is counted — lets tests assert replays
  /// actually happened.
  [[nodiscard]] const core::MissionThermalTrajectory* find(const std::string& key);

  /// Stores a recorded trajectory (no-op when disabled).
  void insert(const std::string& key, core::MissionThermalTrajectory trajectory);

  [[nodiscard]] int hit_count() const { return hit_count_; }
  [[nodiscard]] std::size_t size() const { return trajectories_.size(); }

 private:
  bool enabled_;
  std::map<std::string, core::MissionThermalTrajectory> trajectories_;
  int hit_count_ = 0;
};

/// Mutable per-worker state handed to every evaluator invocation of one
/// sweep run. Owned by the runner; never shared between threads.
struct WorkerState {
  explicit WorkerState(bool reuse_structures = true)
      : thermal_models(reuse_structures), mission_trajectories(reuse_structures) {}

  ThermalModelCache thermal_models;
  MissionTrajectoryCache mission_trajectories;
};

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_SYSTEM_CACHE_H
