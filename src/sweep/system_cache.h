// Per-worker reuse of expensively-assembled model structure across the
// scenarios of a sweep. Scenarios that differ only in operating-point
// parameters (flow, inlet temperature, power density, VRM electrical
// settings) share one assembled ThermalModel — grid build plus operator
// sparsity pattern — keyed by the scenario's thermal-structural overrides
// (ParameterInfo::thermal_structural).
//
// Result rows are byte-identical with and without reuse (sweep_test proves
// it): a shared model is bitwise the model the scenario would have built
// itself, and IntegratedMpsocSystem::run() carries no state across runs.
#ifndef BRIGHTSI_SWEEP_SYSTEM_CACHE_H
#define BRIGHTSI_SWEEP_SYSTEM_CACHE_H

#include <memory>
#include <string>

#include "core/system_config.h"
#include "sweep/scenario.h"

namespace brightsi::sweep {

/// Caches the most recently built thermal model. Single-threaded — one
/// instance per worker thread — and intentionally depth-1: plans emit
/// scenarios with equal structure adjacently (grids vary the last axis
/// fastest), so one slot already captures nearly all reuse.
class ThermalModelCache {
 public:
  explicit ThermalModelCache(bool enabled = true) : enabled_(enabled) {}

  /// The assembled thermal model for `config`: the cached one when the
  /// scenario's thermal-structural fingerprint matches the previous call's,
  /// otherwise a fresh build (which replaces the cache slot). With caching
  /// disabled every call builds fresh.
  [[nodiscard]] std::shared_ptr<const thermal::ThermalModel> model_for(
      const core::SystemConfig& config, const ScenarioSpec& scenario);

  /// Models built so far — lets tests assert reuse actually happened.
  [[nodiscard]] int build_count() const { return build_count_; }

 private:
  bool enabled_;
  std::string fingerprint_;
  std::shared_ptr<const thermal::ThermalModel> model_;
  int build_count_ = 0;
};

/// Mutable per-worker state handed to every evaluator invocation of one
/// sweep run. Owned by the runner; never shared between threads.
struct WorkerState {
  explicit WorkerState(bool reuse_structures = true) : thermal_models(reuse_structures) {}

  ThermalModelCache thermal_models;
};

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_SYSTEM_CACHE_H
