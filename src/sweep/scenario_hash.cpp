#include "sweep/scenario_hash.h"

#include <algorithm>
#include <cstdio>

#include "core/binfile.h"

namespace brightsi::sweep {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ULL;

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Raw IEEE-754 bits with -0.0 canonicalized to +0.0: the two zeros
/// compare equal everywhere a scenario value is consumed, so siblings
/// differing only in zero sign must hash identically — otherwise a
/// -0.0-valued candidate misses the store row its +0.0 twin already paid
/// for and gets evaluated twice.
void put_canonical_f64(std::string& out, double value) {
  core::put_f64(out, value == 0.0 ? 0.0 : value);
}

/// Overrides sorted by parameter name (stable, so a pathological duplicate
/// keeps its relative order), serialized name-then-raw-bits.
void put_sorted_overrides(std::string& out,
                          const std::vector<std::pair<std::string, double>>& overrides) {
  std::vector<const std::pair<std::string, double>*> sorted;
  sorted.reserve(overrides.size());
  for (const auto& entry : overrides) {
    sorted.push_back(&entry);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto* a, const auto* b) { return a->first < b->first; });
  core::put_u32(out, static_cast<std::uint32_t>(sorted.size()));
  for (const auto* entry : sorted) {
    core::put_bytes(out, entry->first);
    put_canonical_f64(out, entry->second);
  }
}

}  // namespace

std::string ScenarioHash::hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(hi), static_cast<unsigned long long>(lo));
  return buffer;
}

std::string canonical_scenario_bytes(const ScenarioSpec& scenario, bool include_name) {
  std::string bytes;
  core::put_u8(bytes, include_name ? 1 : 0);
  if (include_name) {
    core::put_bytes(bytes, scenario.name);
  }
  put_sorted_overrides(bytes, scenario.overrides);
  return bytes;
}

ScenarioHash hash_bytes(std::string_view bytes, std::uint64_t salt) {
  ScenarioHash hash;
  hash.lo = fnv1a(bytes, kFnvOffset ^ salt);
  hash.hi = fnv1a(bytes, (kFnvOffset + 0x9E3779B97F4A7C15ULL) ^ hash.lo);
  return hash;
}

ScenarioHash hash_scenario(const ScenarioSpec& scenario, std::uint64_t salt) {
  return hash_bytes(canonical_scenario_bytes(scenario, /*include_name=*/true), salt);
}

std::uint64_t store_salt(const std::string& plan_name, const std::string& evaluator_name,
                         const std::vector<std::string>& metric_names) {
  std::string signature;
  core::put_u32(signature, kStoreFormatVersion);
  core::put_bytes(signature, plan_name);
  core::put_bytes(signature, evaluator_name);
  core::put_u32(signature, static_cast<std::uint32_t>(metric_names.size()));
  for (const std::string& metric : metric_names) {
    core::put_bytes(signature, metric);
  }
  return fnv1a(signature, kFnvOffset);
}

std::string mission_trajectory_key(const ScenarioSpec& scenario) {
  ScenarioSpec thermal_only;
  for (const auto& override_entry : scenario.overrides) {
    const ParameterInfo* info = find_parameter(override_entry.first);
    // Unregistered names cannot reach an evaluator (apply_scenario throws
    // first); keep them in the key anyway so the cache stays conservative.
    if (info == nullptr || !info->mission_thermal_invariant) {
      thermal_only.overrides.push_back(override_entry);
    }
  }
  return canonical_scenario_bytes(thermal_only, /*include_name=*/false);
}

}  // namespace brightsi::sweep
