#include "sweep/execution.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "sweep/result_store.h"
#include "sweep/scenario_hash.h"

namespace brightsi::sweep {

namespace {

/// Spawns one thread per worker (capped by the item count) over an
/// atomic-index loop; thread t carries workers[t], so a persistent worker
/// vector keeps its structure caches across calls. The calling thread
/// participates as worker 0.
template <typename Fn>
void run_worker_pool(std::vector<WorkerState>& workers, std::size_t item_count, Fn&& fn) {
  std::atomic<std::size_t> next{0};
  auto loop = [&](WorkerState& state) {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= item_count) {
        return;
      }
      fn(i, state);
    }
  };
  const std::size_t thread_count = std::min(workers.size(), item_count);
  std::vector<std::thread> pool;
  pool.reserve(thread_count > 0 ? thread_count - 1 : 0);
  for (std::size_t t = 1; t < thread_count; ++t) {
    pool.emplace_back(loop, std::ref(workers[t]));
  }
  if (!workers.empty()) {
    loop(workers[0]);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

void sum_worker_caches(const std::vector<WorkerState>& workers, ExecutionStats& stats) {
  stats.model_builds = 0;
  stats.trajectory_hits = 0;
  for (const WorkerState& worker : workers) {
    stats.model_builds += worker.thermal_models.build_count();
    stats.trajectory_hits += worker.mission_trajectories.hit_count();
  }
}

class LocalBackend final : public ExecutionBackend {
 public:
  explicit LocalBackend(SweepOptions options)
      : workers_(static_cast<std::size_t>(resolve_thread_count(options)),
                 WorkerState(options.reuse_structures)) {}

  [[nodiscard]] const char* name() const override { return "local"; }
  [[nodiscard]] int thread_count() const override {
    return static_cast<int>(workers_.size());
  }

  void execute(const core::SystemConfig& base, const SweepEvaluator& evaluator,
               const std::vector<ScenarioSpec>& scenarios,
               std::vector<ScenarioResult>& rows) override {
    rows.resize(scenarios.size());
    run_worker_pool(workers_, scenarios.size(), [&](std::size_t i, WorkerState& state) {
      rows[i] = evaluate_scenario(base, evaluator, scenarios[i], state);
    });
    stats_.scheduled += static_cast<long long>(scenarios.size());
    stats_.evaluated += static_cast<long long>(scenarios.size());
  }

  [[nodiscard]] ExecutionStats stats() const override {
    ExecutionStats stats = stats_;
    sum_worker_caches(workers_, stats);
    return stats;
  }

 private:
  std::vector<WorkerState> workers_;
  ExecutionStats stats_;
};

class ShardBackend final : public ExecutionBackend {
 public:
  explicit ShardBackend(ShardOptions options)
      : options_(std::move(options)),
        workers_(static_cast<std::size_t>(resolve_thread_count(options_.local)),
                 WorkerState(options_.local.reuse_structures)) {
    if (options_.store_dir.empty()) {
      throw std::invalid_argument("shard backend needs a store directory");
    }
    if (options_.shard_count < 1 || options_.shard_index < 0 ||
        options_.shard_index >= options_.shard_count) {
      throw std::invalid_argument(
          "shard index must lie in [0, shard_count): got " +
          std::to_string(options_.shard_index) + "/" +
          std::to_string(options_.shard_count));
    }
  }

  [[nodiscard]] const char* name() const override { return "shard"; }
  [[nodiscard]] int thread_count() const override {
    return static_cast<int>(workers_.size());
  }

  void execute(const core::SystemConfig& base, const SweepEvaluator& evaluator,
               const std::vector<ScenarioSpec>& scenarios,
               std::vector<ScenarioResult>& rows) override {
    if (store_ == nullptr) {
      // The scope is only complete once the evaluator is known; the store
      // throws here if the directory belongs to a different plan.
      store_ = std::make_unique<ResultStore>(
          options_.store_dir, StoreScope{options_.scope, evaluator.name, evaluator.metrics},
          /*create=*/true, "s" + std::to_string(options_.shard_index));
    }
    store_->reload();  // pick up rows stored by peers and previous runs
    store_->journal("run_begin", options_.scope + " shard " +
                                     std::to_string(options_.shard_index) + "/" +
                                     std::to_string(options_.shard_count) + " rows=" +
                                     std::to_string(scenarios.size()));

    rows.assign(scenarios.size(), ScenarioResult{});
    std::vector<ScenarioHash> hashes(scenarios.size());
    std::vector<std::size_t> work;  // my rows in plan order, then foreign rows
    std::vector<std::size_t> foreign;
    long long hits = 0;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      hashes[i] = hash_scenario(scenarios[i], store_->salt());
      if (adopt_stored(scenarios[i], hashes[i], rows[i])) {
        ++hits;
      } else if (hashes[i].shard_of(options_.shard_count) == options_.shard_index) {
        work.push_back(i);
      } else {
        foreign.push_back(i);
      }
    }
    work.insert(work.end(), foreign.begin(), foreign.end());

    std::atomic<long long> reserved{0};
    std::atomic<long long> evaluated{0};
    std::atomic<long long> stolen_leases{0};
    std::atomic<long long> pending{0};
    run_worker_pool(workers_, work.size(), [&](std::size_t k, WorkerState& state) {
      const std::size_t i = work[k];
      const ScenarioSpec& scenario = scenarios[i];
      const ScenarioHash& hash = hashes[i];
      const int owner = hash.shard_of(options_.shard_count);
      const bool mine = owner == options_.shard_index;
      auto leave_pending = [&](const std::string& reason) {
        rows[i].name = scenario.name;
        rows[i].overrides = scenario.overrides;
        rows[i].failed = true;
        rows[i].error = "pending: " + reason;
        rows[i].metrics.assign(evaluator.metrics.size(), 0.0);
        pending.fetch_add(1);
      };
      if (!mine && !options_.steal_orphaned_leases) {
        leave_pending("owned by shard " + std::to_string(owner));
        return;
      }
      if (options_.row_limit >= 0 && reserved.fetch_add(1) >= options_.row_limit) {
        leave_pending("row limit reached");
        return;
      }
      // Claim before evaluating. Own rows create a fresh lease (and steal
      // an orphaned one — e.g. our own previous, killed run); foreign rows
      // are only taken over when their lease is orphaned, so live peers
      // keep their partition.
      bool stolen = false;
      if (!store_->try_claim(hash, options_.lease_timeout_s, /*create_if_absent=*/mine,
                             &stolen)) {
        leave_pending(mine ? "lease held by a peer"
                           : "owned by shard " + std::to_string(owner));
        return;
      }
      if (stolen) {
        stolen_leases.fetch_add(1);
        store_->journal("lease_steal", scenario.name);
      }
      ScenarioResult row = evaluate_scenario(base, evaluator, scenario, state);
      store_->append(hash, row);  // durable before the lease drops
      store_->release(hash);
      rows[i] = std::move(row);
      evaluated.fetch_add(1);
    });

    stats_.scheduled += static_cast<long long>(scenarios.size());
    stats_.evaluated += evaluated.load();
    stats_.store_hits += hits;
    stats_.leases_stolen += stolen_leases.load();
    stats_.pending += pending.load();
    store_->journal("run_end", "evaluated=" + std::to_string(evaluated.load()) +
                                   " hits=" + std::to_string(hits) + " stolen=" +
                                   std::to_string(stolen_leases.load()) + " pending=" +
                                   std::to_string(pending.load()));
  }

  [[nodiscard]] ExecutionStats stats() const override {
    ExecutionStats stats = stats_;
    sum_worker_caches(workers_, stats);
    return stats;
  }

 private:
  /// Fills `row` from the store when present. The stored name must match
  /// the scenario's — the cross-check that turns an (astronomically
  /// unlikely) hash collision into a loud failure instead of silent
  /// row corruption.
  bool adopt_stored(const ScenarioSpec& scenario, const ScenarioHash& hash,
                    ScenarioResult& row) {
    const ScenarioResult* hit = store_->find(hash);
    if (hit == nullptr) {
      return false;
    }
    if (hit->name != scenario.name) {
      throw std::runtime_error("result store " + store_->dir() +
                               ": hash collision or corrupt index (stored row '" +
                               hit->name + "' vs scenario '" + scenario.name + "')");
    }
    row = *hit;
    return true;
  }

  ShardOptions options_;
  std::vector<WorkerState> workers_;
  std::unique_ptr<ResultStore> store_;
  ExecutionStats stats_;
};

}  // namespace

ScenarioResult evaluate_scenario(const core::SystemConfig& base,
                                 const SweepEvaluator& evaluator,
                                 const ScenarioSpec& scenario, WorkerState& worker) {
  ScenarioResult row;
  row.name = scenario.name;
  row.overrides = scenario.overrides;
  const auto start = std::chrono::steady_clock::now();
  try {
    const core::SystemConfig config = apply_scenario(base, scenario);
    config.validate();
    row.metrics = evaluator.fn(config, scenario, worker);
    if (row.metrics.size() != evaluator.metrics.size()) {
      throw std::logic_error("evaluator '" + evaluator.name +
                             "' returned a mismatched metric count");
    }
  } catch (const std::exception& e) {
    row.failed = true;
    row.error = e.what();
    row.metrics.assign(evaluator.metrics.size(), 0.0);
  }
  row.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return row;
}

std::unique_ptr<ExecutionBackend> make_local_backend(SweepOptions options) {
  return std::make_unique<LocalBackend>(options);
}

std::unique_ptr<ExecutionBackend> make_shard_backend(ShardOptions options) {
  return std::make_unique<ShardBackend>(std::move(options));
}

SweepResult assemble_from_store(const SweepPlan& plan, const std::string& store_dir,
                                bool allow_missing) {
  ResultStore store(store_dir, StoreScope{plan.name, plan.evaluator.name, plan.evaluator.metrics},
                    /*create=*/false, "merge");
  store.reload();

  SweepResult result;
  result.plan_name = plan.name;
  result.evaluator_name = plan.evaluator.name;
  result.metric_names = plan.evaluator.metrics;
  result.override_names = collect_override_names(plan);
  result.thread_count = 1;
  result.backend = "merge";
  result.rows.reserve(plan.scenarios.size());

  std::size_t missing = 0;
  std::string first_missing;
  for (const ScenarioSpec& scenario : plan.scenarios) {
    const ScenarioHash hash = hash_scenario(scenario, store.salt());
    const ScenarioResult* hit = store.find(hash);
    ScenarioResult row;
    if (hit != nullptr) {
      if (hit->name != scenario.name) {
        throw std::runtime_error("result store " + store_dir +
                                 ": hash collision or corrupt index (stored row '" +
                                 hit->name + "' vs scenario '" + scenario.name + "')");
      }
      row = *hit;
      ++result.exec.store_hits;
    } else {
      if (first_missing.empty()) {
        first_missing = scenario.name;
      }
      ++missing;
      row.name = scenario.name;
      row.overrides = scenario.overrides;
      row.failed = true;
      row.error = "pending: not in the store";
      row.metrics.assign(plan.evaluator.metrics.size(), 0.0);
      ++result.exec.pending;
    }
    result.exec.scheduled += 1;
    result.rows.push_back(std::move(row));
  }
  if (missing > 0 && !allow_missing) {
    throw std::runtime_error(
        "result store " + store_dir + " is missing " + std::to_string(missing) + " of " +
        std::to_string(plan.scenarios.size()) + " rows (first: '" + first_missing +
        "') — run the remaining shards or pass --allow-missing");
  }
  return result;
}

}  // namespace brightsi::sweep
