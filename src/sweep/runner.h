// Executes every scenario of a SweepPlan through an execution backend
// (sweep/execution.h). Scenarios are independent (each builds its own
// system from the resolved config), so the result values are identical
// for any thread count — and, through the shard backend's result store,
// for any shard count — with results stored in plan order regardless of
// completion order. Per-scenario wall time is recorded separately from
// the result rows so CSV output stays byte-identical across runs.
//
// Each worker carries a WorkerState (sweep/system_cache.h) across its
// scenarios: consecutive scenarios that differ only in operating-point
// parameters reuse the assembled thermal model, and mission scenarios
// that differ only in electrochemical knobs replay one recorded thermal
// trajectory. Reuse never changes result bytes — sweep_test cross-checks
// cached vs uncached rows at 1 and N threads.
#ifndef BRIGHTSI_SWEEP_RUNNER_H
#define BRIGHTSI_SWEEP_RUNNER_H

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sweep/plan.h"
#include "sweep/system_cache.h"

namespace brightsi::sweep {

class ExecutionBackend;  // sweep/execution.h

struct ScenarioResult {
  std::string name;
  std::vector<std::pair<std::string, double>> overrides;
  std::vector<double> metrics;  ///< aligned with the evaluator's metric names
  bool failed = false;
  std::string error;          ///< exception message when failed
  double elapsed_s = 0.0;     ///< timing only; excluded from result rows
};

/// Work accounting of one execution backend, accumulated across calls.
struct ExecutionStats {
  long long scheduled = 0;      ///< rows handed to the backend
  long long evaluated = 0;      ///< fresh evaluator invocations
  long long store_hits = 0;     ///< rows filled from the result store
  long long leases_stolen = 0;  ///< orphaned leases reclaimed
  long long pending = 0;        ///< rows left for other shards / cut by row limit
  int model_builds = 0;         ///< thermal structure builds across workers
  int trajectory_hits = 0;      ///< mission trajectory-cache replays
};

struct SweepResult {
  std::string plan_name;
  std::string evaluator_name;
  std::vector<std::string> metric_names;
  std::vector<std::string> override_names;  ///< ordered union across scenarios
  std::vector<ScenarioResult> rows;         ///< in plan order
  int thread_count = 1;
  double wall_time_s = 0.0;
  std::string backend = "local";  ///< executing backend ("local", "shard", "merge")
  ExecutionStats exec;            ///< backend work accounting (timing-like; not emitted)

  [[nodiscard]] int failure_count() const;
  [[nodiscard]] double scenarios_per_second() const;
};

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency.
  int thread_count = 0;
  /// Per-worker reuse of assembled model structure (and recorded mission
  /// trajectories) across scenarios. Result rows are byte-identical either
  /// way; disable to cross-check that invariant or to bound memory.
  bool reuse_structures = true;
};

/// The options' thread count with 0 resolved to hardware concurrency
/// (never less than 1). Shared by SweepRunner and BatchEvaluationSession.
[[nodiscard]] int resolve_thread_count(const SweepOptions& options);

/// Ordered union of override names across the plan's scenarios (first
/// appearance wins) — the override column set of the result table.
[[nodiscard]] std::vector<std::string> collect_override_names(const SweepPlan& plan);

class SweepRunner {
 public:
  /// In-process execution (the local backend), one fresh worker pool per
  /// run() call.
  explicit SweepRunner(SweepOptions options = {});

  /// Execution through an injected backend (e.g. make_shard_backend);
  /// worker state persists in the backend across run() calls.
  explicit SweepRunner(std::shared_ptr<ExecutionBackend> backend);

  /// Runs every scenario of the plan. Per-scenario exceptions become failed
  /// rows (error message captured) rather than aborting the sweep.
  [[nodiscard]] SweepResult run(const SweepPlan& plan) const;

  [[nodiscard]] int resolved_thread_count() const;

 private:
  SweepOptions options_;
  std::shared_ptr<ExecutionBackend> backend_;  ///< null = fresh local per run
};

/// Persistent batched-evaluation session: the optimizer-facing entry point
/// of the sweep engine. Where SweepRunner::run expands a full plan,
/// evaluate() takes an explicit candidate list — and the backend's
/// per-worker states (thermal-model structure cache) survive across
/// calls, so successive optimizer generations reuse assembled operators
/// exactly like consecutive scenarios of one sweep do. Results are in
/// candidate order and byte-identical for any thread count.
class BatchEvaluationSession {
 public:
  /// `backend` null selects the local backend built from `options`; a
  /// shard backend gives the session a persistent cross-run result store.
  BatchEvaluationSession(core::SystemConfig base, SweepEvaluator evaluator,
                         SweepOptions options = {},
                         std::shared_ptr<ExecutionBackend> backend = nullptr);

  /// Evaluates every candidate against the session's base config. Rows
  /// come back in candidate order; per-candidate exceptions become failed
  /// rows, exactly as in SweepRunner::run.
  [[nodiscard]] std::vector<ScenarioResult> evaluate(
      const std::vector<ScenarioSpec>& candidates);

  [[nodiscard]] const core::SystemConfig& base() const { return base_; }
  [[nodiscard]] const SweepEvaluator& evaluator() const { return evaluator_; }
  [[nodiscard]] int thread_count() const;
  /// Evaluator invocations so far (all evaluate() calls; store hits count
  /// — they answered an invocation).
  [[nodiscard]] long long evaluation_count() const { return evaluations_; }
  /// Thermal-model structure builds across all workers; the gap to
  /// evaluation_count() is the session's cache-hit count.
  [[nodiscard]] int model_build_count() const;
  /// Backend work accounting (store hits vs fresh evaluations).
  [[nodiscard]] ExecutionStats execution_stats() const;

 private:
  core::SystemConfig base_;
  SweepEvaluator evaluator_;
  std::shared_ptr<ExecutionBackend> backend_;
  long long evaluations_ = 0;
};

/// Shortest decimal representation that parses back to exactly `value` —
/// the cell formatting of the sweep CSV/JSON emitters.
[[nodiscard]] std::string format_sweep_value(double value);

/// Header cells of the result table: scenario, override columns, metric
/// columns, error.
[[nodiscard]] std::vector<std::string> sweep_row_headers(const SweepResult& result);

/// Formatted cells of one result row, aligned with sweep_row_headers():
/// name, overrides (blank where unset), metrics (blank on failure), error.
[[nodiscard]] std::vector<std::string> format_sweep_row(const SweepResult& result,
                                                        const ScenarioResult& row);

/// Deterministic result rows: scenario name, override columns (blank where
/// a scenario does not set the parameter), metric columns, and an error
/// column. Byte-identical for any thread count.
void write_sweep_csv(std::ostream& os, const SweepResult& result);

/// Same rows as JSON records, wrapped with plan/evaluator metadata (which
/// excludes timing, keeping the emission deterministic).
void write_sweep_json(std::ostream& os, const SweepResult& result);

/// Per-scenario wall time plus the sweep totals (non-deterministic by
/// nature; kept separate from the result rows).
void write_sweep_timing_csv(std::ostream& os, const SweepResult& result);

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_RUNNER_H
