// Executes every scenario of a SweepPlan across a worker pool. Scenarios
// are independent (each builds its own system from the resolved config), so
// the result values are identical for any thread count; results are stored
// in plan order regardless of completion order. Per-scenario wall time is
// recorded separately from the result rows so CSV output stays
// byte-identical across thread counts.
//
// Each worker carries a WorkerState (sweep/system_cache.h) across its
// scenarios: consecutive scenarios that differ only in operating-point
// parameters reuse the assembled thermal model. Reuse never changes result
// bytes — sweep_test cross-checks cached vs uncached rows at 1 and N
// threads.
#ifndef BRIGHTSI_SWEEP_RUNNER_H
#define BRIGHTSI_SWEEP_RUNNER_H

#include <ostream>
#include <string>
#include <vector>

#include "sweep/plan.h"

namespace brightsi::sweep {

struct ScenarioResult {
  std::string name;
  std::vector<std::pair<std::string, double>> overrides;
  std::vector<double> metrics;  ///< aligned with the evaluator's metric names
  bool failed = false;
  std::string error;          ///< exception message when failed
  double elapsed_s = 0.0;     ///< timing only; excluded from result rows
};

struct SweepResult {
  std::string plan_name;
  std::string evaluator_name;
  std::vector<std::string> metric_names;
  std::vector<std::string> override_names;  ///< ordered union across scenarios
  std::vector<ScenarioResult> rows;         ///< in plan order
  int thread_count = 1;
  double wall_time_s = 0.0;

  [[nodiscard]] int failure_count() const;
  [[nodiscard]] double scenarios_per_second() const;
};

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency.
  int thread_count = 0;
  /// Per-worker reuse of assembled model structure across scenarios.
  /// Result rows are byte-identical either way; disable to cross-check
  /// that invariant or to bound per-worker memory.
  bool reuse_structures = true;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs every scenario of the plan. Per-scenario exceptions become failed
  /// rows (error message captured) rather than aborting the sweep.
  [[nodiscard]] SweepResult run(const SweepPlan& plan) const;

  [[nodiscard]] int resolved_thread_count() const;

 private:
  SweepOptions options_;
};

/// Deterministic result rows: scenario name, override columns (blank where
/// a scenario does not set the parameter), metric columns, and an error
/// column. Byte-identical for any thread count.
void write_sweep_csv(std::ostream& os, const SweepResult& result);

/// Same rows as JSON records, wrapped with plan/evaluator metadata (which
/// excludes timing, keeping the emission deterministic).
void write_sweep_json(std::ostream& os, const SweepResult& result);

/// Per-scenario wall time plus the sweep totals (non-deterministic by
/// nature; kept separate from the result rows).
void write_sweep_timing_csv(std::ostream& os, const SweepResult& result);

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_RUNNER_H
