#include "sweep/result_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "core/binfile.h"

namespace brightsi::sweep {

namespace fs = std::filesystem;

namespace {

// Shared versioned binary header (core/binfile.h) per file kind. All four
// carry the store's scenario-hash salt, so a file can never be read
// against the wrong scope.
constexpr std::string_view kMetaMagic = "BSIMETA1";
constexpr std::string_view kRecordsMagic = "BSISTOR1";
constexpr std::string_view kJournalMagic = "BSIJRNL1";
constexpr std::string_view kLeaseMagic = "BSILEAS1";

[[noreturn]] void fail(const std::string& where, const std::string& detail) {
  throw std::runtime_error(where + ": " + detail);
}

/// "<tag>-<pid>-<n>": unique per ResultStore instance, so two writers
/// (processes or sequential opens) never share an append stream.
std::string make_writer_name(const std::string& tag) {
  static std::atomic<int> next_writer{0};
  return tag + "-" + std::to_string(::getpid()) + "-" +
         std::to_string(next_writer.fetch_add(1));
}

std::string row_payload(const ScenarioHash& hash, const ScenarioResult& row) {
  std::string payload;
  core::put_u64(payload, hash.hi);
  core::put_u64(payload, hash.lo);
  core::put_bytes(payload, row.name);
  core::put_u32(payload, static_cast<std::uint32_t>(row.overrides.size()));
  for (const auto& [param, value] : row.overrides) {
    core::put_bytes(payload, param);
    core::put_f64(payload, value);
  }
  core::put_u8(payload, row.failed ? 1 : 0);
  core::put_bytes(payload, row.error);
  core::put_u32(payload, static_cast<std::uint32_t>(row.metrics.size()));
  for (const double metric : row.metrics) {
    core::put_f64(payload, metric);
  }
  return payload;
}

std::pair<ScenarioHash, ScenarioResult> parse_row(std::string_view payload,
                                                  const std::string& what) {
  core::ByteReader in(payload, what);
  ScenarioHash hash;
  hash.hi = in.u64();
  hash.lo = in.u64();
  ScenarioResult row;
  row.name = in.bytes();
  const std::uint32_t override_count = in.u32();
  row.overrides.reserve(override_count);
  for (std::uint32_t i = 0; i < override_count; ++i) {
    std::string param = in.bytes();
    const double value = in.f64();
    row.overrides.emplace_back(std::move(param), value);
  }
  row.failed = in.u8() != 0;
  row.error = in.bytes();
  const std::uint32_t metric_count = in.u32();
  row.metrics.reserve(metric_count);
  for (std::uint32_t i = 0; i < metric_count; ++i) {
    row.metrics.push_back(in.f64());
  }
  // elapsed_s is deliberately not stored: a cache hit took no evaluator
  // time, and the result rows exclude timing by contract anyway.
  return {hash, std::move(row)};
}

std::vector<std::string> sorted_logs(const std::string& dir, const std::string& prefix) {
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".log") == 0) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

ResultStore::ResultStore(std::string dir, StoreScope scope, bool create,
                         std::string writer_tag)
    : dir_(std::move(dir)), scope_(std::move(scope)), salt_(scope_.salt()),
      writer_name_(make_writer_name(writer_tag)) {
  const std::string meta_path = dir_ + "/meta.bin";
  if (!fs::exists(meta_path)) {
    if (!create) {
      fail(dir_, "no result store here (missing meta.bin)");
    }
    fs::create_directories(dir_ + "/leases");
    // Written to a per-process temp name first, then renamed: concurrent
    // creators race benignly (both write identical bytes for one scope).
    std::string meta = core::make_binfile_header(kMetaMagic, kStoreFormatVersion, salt_);
    std::string payload;
    core::put_bytes(payload, scope_.scope);
    core::put_bytes(payload, scope_.evaluator);
    core::put_u32(payload, static_cast<std::uint32_t>(scope_.metrics.size()));
    for (const std::string& metric : scope_.metrics) {
      core::put_bytes(payload, metric);
    }
    core::put_record(meta, payload);
    const std::string tmp_path = meta_path + "." + writer_name_ + ".tmp";
    core::write_file_bytes(tmp_path, meta);
    std::error_code ec;
    fs::rename(tmp_path, meta_path, ec);
    if (ec) {
      fs::remove(tmp_path, ec);
      fail(meta_path, "cannot create store metadata: " + ec.message());
    }
    return;
  }

  // Validate the existing store against our scope before touching rows.
  fs::create_directories(dir_ + "/leases");
  const std::string meta = core::read_file_bytes(meta_path);
  core::ByteReader in(meta, meta_path);
  const core::BinfileHeader header =
      core::read_binfile_header(in, kMetaMagic, kStoreFormatVersion);
  std::string_view payload;
  if (core::read_record(in, payload) != core::RecordStatus::kOk) {
    fail(meta_path, "truncated store metadata");
  }
  core::ByteReader meta_in(payload, meta_path);
  const std::string found_scope = meta_in.bytes();
  const std::string found_evaluator = meta_in.bytes();
  std::vector<std::string> found_metrics(meta_in.u32());
  for (std::string& metric : found_metrics) {
    metric = meta_in.bytes();
  }
  if (found_scope != scope_.scope || found_evaluator != scope_.evaluator ||
      found_metrics != scope_.metrics || header.salt != salt_) {
    fail(dir_, "result store belongs to plan '" + found_scope + "' / evaluator '" +
                   found_evaluator + "' (" + std::to_string(found_metrics.size()) +
                   " metrics), not to plan '" + scope_.scope + "' / evaluator '" +
                   scope_.evaluator + "' (" + std::to_string(scope_.metrics.size()) +
                   " metrics) — refusing to mix results");
  }
}

std::size_t ResultStore::reload() {
  const std::vector<std::string> logs = sorted_logs(dir_, "records-");
  std::lock_guard<std::mutex> lock(mutex_);
  index_.clear();
  for (const std::string& path : logs) {
    load_log(path);
  }
  return index_.size();
}

void ResultStore::load_log(const std::string& path) {
  const std::string bytes = core::read_file_bytes(path);
  core::ByteReader in(bytes, path);
  core::read_binfile_header(in, kRecordsMagic, kStoreFormatVersion);
  while (in.remaining() > 0) {
    std::string_view payload;
    if (core::read_record(in, payload) == core::RecordStatus::kTruncated) {
      // Torn tail: the writer died mid-append. Every earlier record is
      // intact (crc-verified), so the row simply counts as not stored.
      break;
    }
    auto [hash, row] = parse_row(payload, path);
    // Duplicate hashes across logs are byte-identical by determinism;
    // last-in wins arbitrarily and harmlessly.
    index_[hash] = std::move(row);
  }
}

const ScenarioResult* ResultStore::find(const ScenarioHash& hash) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  return it != index_.end() ? &it->second : nullptr;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::ofstream& ResultStore::records_stream_locked() {
  if (!records_.is_open()) {
    const std::string path = dir_ + "/records-" + writer_name_ + ".log";
    records_.open(path, std::ios::binary | std::ios::app);
    if (!records_) {
      fail(path, "cannot open record log for append");
    }
    records_ << core::make_binfile_header(kRecordsMagic, kStoreFormatVersion, salt_);
  }
  return records_;
}

void ResultStore::append(const ScenarioHash& hash, const ScenarioResult& row) {
  std::string framed;
  core::put_record(framed, row_payload(hash, row));
  std::lock_guard<std::mutex> lock(mutex_);
  std::ofstream& out = records_stream_locked();
  out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out.flush();  // the durable per-row checkpoint
  if (!out) {
    fail(dir_, "write error appending to the record log");
  }
  ScenarioResult stored = row;
  stored.elapsed_s = 0.0;
  index_[hash] = std::move(stored);
  ++appended_;
}

long long ResultStore::appended_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::string ResultStore::lease_path(const ScenarioHash& hash) const {
  return dir_ + "/leases/" + hash.hex() + ".lease";
}

bool ResultStore::try_claim(const ScenarioHash& hash, double timeout_s,
                            bool create_if_absent, bool* stolen) {
  if (stolen != nullptr) {
    *stolen = false;
  }
  const std::string path = lease_path(hash);
  auto create_exclusive = [&]() -> bool {
    // O_EXCL makes creation the atomic claim, across processes and hosts
    // on a shared filesystem.
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
      return false;
    }
    const std::string header =
        core::make_binfile_header(kLeaseMagic, kStoreFormatVersion, salt_) + writer_name_;
    // A short write only weakens the debug value of the lease body; the
    // claim is the file's existence.
    (void)!::write(fd, header.data(), header.size());
    ::close(fd);
    return true;
  };

  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return create_if_absent ? create_exclusive() : false;
  }
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) {
    // Raced with a release; treat as absent.
    return create_if_absent ? create_exclusive() : false;
  }
  const auto age = fs::file_time_type::clock::now() - mtime;
  const double age_s = std::chrono::duration<double>(age).count();
  // A negative age means the lease's mtime is in the future (clock skew
  // between hosts on a shared filesystem, or a copied store directory).
  // Such a lease would look "fresh" forever and orphan its row; treat it
  // as expired so it can still be stolen.
  if (age_s >= 0.0 && age_s <= timeout_s) {
    return false;  // freshly held by a live writer
  }
  // Orphaned: the holder outlived its timeout without storing the row.
  fs::remove(path, ec);
  if (create_exclusive()) {
    if (stolen != nullptr) {
      *stolen = true;
    }
    return true;
  }
  return false;  // another stealer won the race
}

void ResultStore::release(const ScenarioHash& hash) {
  std::error_code ec;
  fs::remove(lease_path(hash), ec);
}

void ResultStore::journal(std::string_view event, std::string_view detail) {
  std::string payload;
  core::put_bytes(payload, event);
  core::put_bytes(payload, detail);
  std::string framed;
  core::put_record(framed, payload);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!journal_.is_open()) {
    const std::string path = dir_ + "/journal-" + writer_name_ + ".log";
    journal_.open(path, std::ios::binary | std::ios::app);
    if (!journal_) {
      fail(path, "cannot open journal for append");
    }
    journal_ << core::make_binfile_header(kJournalMagic, kStoreFormatVersion, salt_);
  }
  journal_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  journal_.flush();
}

std::vector<JournalEvent> read_journal_file(const std::string& path,
                                            std::uint64_t expected_salt) {
  const std::string bytes = core::read_file_bytes(path);
  core::ByteReader in(bytes, path);
  const core::BinfileHeader header =
      core::read_binfile_header(in, kJournalMagic, kStoreFormatVersion);
  if (header.salt != expected_salt) {
    fail(path, "journal belongs to a different store scope (salt mismatch)");
  }
  std::vector<JournalEvent> events;
  while (in.remaining() > 0) {
    std::string_view payload;
    if (core::read_record(in, payload) == core::RecordStatus::kTruncated) {
      break;
    }
    core::ByteReader event_in(payload, path);
    JournalEvent event;
    event.event = event_in.bytes();
    event.detail = event_in.bytes();
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<std::pair<std::string, std::vector<JournalEvent>>> read_store_journals(
    const std::string& store_dir, std::uint64_t expected_salt) {
  std::vector<std::pair<std::string, std::vector<JournalEvent>>> journals;
  for (const std::string& path : sorted_logs(store_dir, "journal-")) {
    journals.emplace_back(path, read_journal_file(path, expected_salt));
  }
  return journals;
}

}  // namespace brightsi::sweep
