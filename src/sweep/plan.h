// A SweepPlan expands grids and lists of parameter values into the flat
// scenario vector a SweepRunner executes: base configuration + evaluator +
// scenarios.
#ifndef BRIGHTSI_SWEEP_PLAN_H
#define BRIGHTSI_SWEEP_PLAN_H

#include <string>
#include <utility>
#include <vector>

#include "sweep/evaluators.h"
#include "sweep/scenario.h"

namespace brightsi::sweep {

/// One axis of a cartesian grid expansion.
struct GridAxis {
  std::string param;
  std::vector<double> values;
};

struct SweepPlan {
  std::string name;
  core::SystemConfig base;  ///< scenarios override from here
  SweepEvaluator evaluator;
  std::vector<ScenarioSpec> scenarios;

  /// Appends one fully-specified scenario.
  void add(ScenarioSpec scenario);

  /// Appends one scenario per value of `param` (a 1-D list sweep). Scenario
  /// names are auto-generated as "param=value" unless `name_prefix` is set,
  /// in which case they become "<name_prefix> value".
  void add_list(const std::string& param, const std::vector<double>& values,
                const std::string& name_prefix = "");

  /// Appends the full cartesian product of the axes (row-major: the last
  /// axis varies fastest), auto-naming each scenario from its coordinates.
  /// `common` overrides are prepended to every expanded scenario.
  void add_grid(const std::vector<GridAxis>& axes,
                const std::vector<std::pair<std::string, double>>& common = {});

  /// Validates every scenario against the parameter registry (and applies
  /// it to `base` to surface config-level errors early). Throws on the
  /// first invalid scenario.
  void validate() const;
};

/// Formats a value the way auto-generated scenario names do (shortest
/// round-trip, e.g. "676", "0.5").
[[nodiscard]] std::string format_value(double value);

}  // namespace brightsi::sweep

#endif  // BRIGHTSI_SWEEP_PLAN_H
