#include "sweep/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "core/report.h"

namespace brightsi::sweep {

namespace {

/// Ordered union of override names across scenarios (first appearance
/// wins) — the override column set of the result table.
std::vector<std::string> collect_override_names(const SweepPlan& plan) {
  std::vector<std::string> names;
  for (const ScenarioSpec& scenario : plan.scenarios) {
    for (const auto& [param, value] : scenario.overrides) {
      (void)value;
      bool known = false;
      for (const std::string& existing : names) {
        if (existing == param) {
          known = true;
          break;
        }
      }
      if (!known) {
        names.push_back(param);
      }
    }
  }
  return names;
}

/// Shared worker loop of SweepRunner::run and BatchEvaluationSession:
/// evaluates `scenarios` against `base`, writing rows in scenario order.
/// Spawns one thread per entry of `workers` (capped by the scenario
/// count); thread t carries workers[t], so a persistent `workers` vector
/// keeps its structure caches across calls.
void evaluate_scenarios(const core::SystemConfig& base, const SweepEvaluator& evaluator,
                        const std::vector<ScenarioSpec>& scenarios,
                        std::vector<ScenarioResult>& rows, std::vector<WorkerState>& workers) {
  rows.resize(scenarios.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&](WorkerState& state) {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scenarios.size()) {
        return;
      }
      const ScenarioSpec& scenario = scenarios[i];
      ScenarioResult& row = rows[i];
      row.name = scenario.name;
      row.overrides = scenario.overrides;
      const auto start = std::chrono::steady_clock::now();
      try {
        const core::SystemConfig config = apply_scenario(base, scenario);
        config.validate();
        row.metrics = evaluator.fn(config, scenario, state);
        if (row.metrics.size() != evaluator.metrics.size()) {
          throw std::logic_error("evaluator '" + evaluator.name +
                                 "' returned a mismatched metric count");
        }
      } catch (const std::exception& e) {
        row.failed = true;
        row.error = e.what();
        row.metrics.assign(evaluator.metrics.size(), 0.0);
      }
      row.elapsed_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start).count();
    }
  };

  const std::size_t thread_count = std::min(workers.size(), scenarios.size());
  std::vector<std::thread> pool;
  pool.reserve(thread_count > 0 ? thread_count - 1 : 0);
  for (std::size_t t = 1; t < thread_count; ++t) {
    pool.emplace_back(worker, std::ref(workers[t]));
  }
  if (!workers.empty()) {
    worker(workers[0]);  // this thread participates
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

}  // namespace

std::string format_sweep_value(double value) { return core::format_shortest(value); }

std::vector<std::string> format_sweep_row(const SweepResult& result,
                                          const ScenarioResult& row) {
  std::vector<std::string> cells;
  cells.reserve(1 + result.override_names.size() + result.metric_names.size() + 1);
  cells.push_back(row.name);
  for (const std::string& param : result.override_names) {
    std::string cell;
    for (const auto& [name, value] : row.overrides) {
      if (name == param) {
        cell = format_sweep_value(value);
        break;
      }
    }
    cells.push_back(std::move(cell));
  }
  for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
    cells.push_back(row.failed ? std::string() : format_sweep_value(row.metrics[m]));
  }
  cells.push_back(row.failed ? row.error : std::string());
  return cells;
}

std::vector<std::string> sweep_row_headers(const SweepResult& result) {
  std::vector<std::string> headers;
  headers.reserve(1 + result.override_names.size() + result.metric_names.size() + 1);
  headers.push_back("scenario");
  headers.insert(headers.end(), result.override_names.begin(), result.override_names.end());
  headers.insert(headers.end(), result.metric_names.begin(), result.metric_names.end());
  headers.push_back("error");
  return headers;
}

int SweepResult::failure_count() const {
  int failures = 0;
  for (const ScenarioResult& row : rows) {
    failures += row.failed ? 1 : 0;
  }
  return failures;
}

double SweepResult::scenarios_per_second() const {
  return wall_time_s > 0.0 ? static_cast<double>(rows.size()) / wall_time_s : 0.0;
}

int resolve_thread_count(const SweepOptions& options) {
  if (options.thread_count > 0) {
    return options.thread_count;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

int SweepRunner::resolved_thread_count() const { return resolve_thread_count(options_); }

SweepResult SweepRunner::run(const SweepPlan& plan) const {
  if (!plan.evaluator.fn) {
    throw std::invalid_argument("sweep plan '" + plan.name + "' has no evaluator");
  }
  SweepResult result;
  result.plan_name = plan.name;
  result.evaluator_name = plan.evaluator.name;
  result.metric_names = plan.evaluator.metrics;
  result.override_names = collect_override_names(plan);
  result.thread_count = resolved_thread_count();

  const auto sweep_start = std::chrono::steady_clock::now();
  std::vector<WorkerState> workers(static_cast<std::size_t>(result.thread_count),
                                   WorkerState(options_.reuse_structures));
  evaluate_scenarios(plan.base, plan.evaluator, plan.scenarios, result.rows, workers);
  result.wall_time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - sweep_start).count();
  return result;
}

BatchEvaluationSession::BatchEvaluationSession(core::SystemConfig base,
                                               SweepEvaluator evaluator, SweepOptions options)
    : base_(std::move(base)), evaluator_(std::move(evaluator)) {
  if (!evaluator_.fn) {
    throw std::invalid_argument("batch evaluation session has no evaluator");
  }
  workers_.assign(static_cast<std::size_t>(resolve_thread_count(options)),
                  WorkerState(options.reuse_structures));
}

std::vector<ScenarioResult> BatchEvaluationSession::evaluate(
    const std::vector<ScenarioSpec>& candidates) {
  std::vector<ScenarioResult> rows;
  evaluate_scenarios(base_, evaluator_, candidates, rows, workers_);
  evaluations_ += static_cast<long long>(candidates.size());
  return rows;
}

int BatchEvaluationSession::model_build_count() const {
  int builds = 0;
  for (const WorkerState& worker : workers_) {
    builds += worker.thermal_models.build_count();
  }
  return builds;
}

void write_sweep_csv(std::ostream& os, const SweepResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size());
  for (const ScenarioResult& row : result.rows) {
    rows.push_back(format_sweep_row(result, row));
  }
  core::write_table_csv(os, sweep_row_headers(result), rows);
}

void write_sweep_json(std::ostream& os, const SweepResult& result) {
  const std::vector<std::string> headers = sweep_row_headers(result);
  std::vector<bool> numeric(headers.size(), true);
  numeric.front() = false;  // scenario name
  numeric.back() = false;   // error message
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size());
  for (const ScenarioResult& row : result.rows) {
    rows.push_back(format_sweep_row(result, row));
  }
  os << "{\n"
     << "  \"plan\": \"" << core::json_escape(result.plan_name) << "\",\n"
     << "  \"evaluator\": \"" << core::json_escape(result.evaluator_name) << "\",\n"
     << "  \"scenario_count\": " << result.rows.size() << ",\n"
     << "  \"rows\": ";
  core::write_records_json(os, headers, numeric, rows);
  os << "}\n";
}

void write_sweep_timing_csv(std::ostream& os, const SweepResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size() + 1);
  for (const ScenarioResult& row : result.rows) {
    rows.push_back({row.name, format_sweep_value(row.elapsed_s)});
  }
  rows.push_back({"TOTAL (wall, " + std::to_string(result.thread_count) + " threads)",
                  format_sweep_value(result.wall_time_s)});
  core::write_table_csv(os, {"scenario", "elapsed_s"}, rows);
}

}  // namespace brightsi::sweep
