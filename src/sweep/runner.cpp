#include "sweep/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "core/report.h"

namespace brightsi::sweep {

namespace {

/// Shortest exact decimal representation: %.17g round-trips every double,
/// but prefer the shortest form that still parses back to the same value so
/// CSV/JSON stay readable.
std::string format_metric(double value) {
  char buffer[40];
  for (const int precision : {9, 12, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    double parsed = 0.0;
    if (std::sscanf(buffer, "%lf", &parsed) == 1 && parsed == value) {
      break;
    }
  }
  return buffer;
}

/// Ordered union of override names across scenarios (first appearance
/// wins) — the override column set of the result table.
std::vector<std::string> collect_override_names(const SweepPlan& plan) {
  std::vector<std::string> names;
  for (const ScenarioSpec& scenario : plan.scenarios) {
    for (const auto& [param, value] : scenario.overrides) {
      (void)value;
      bool known = false;
      for (const std::string& existing : names) {
        if (existing == param) {
          known = true;
          break;
        }
      }
      if (!known) {
        names.push_back(param);
      }
    }
  }
  return names;
}

/// One result row as formatted cells: name, overrides (blank when unset),
/// metrics (blank on failure), error.
std::vector<std::string> format_row(const SweepResult& result, const ScenarioResult& row) {
  std::vector<std::string> cells;
  cells.reserve(1 + result.override_names.size() + result.metric_names.size() + 1);
  cells.push_back(row.name);
  for (const std::string& param : result.override_names) {
    std::string cell;
    for (const auto& [name, value] : row.overrides) {
      if (name == param) {
        cell = format_metric(value);
        break;
      }
    }
    cells.push_back(std::move(cell));
  }
  for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
    cells.push_back(row.failed ? std::string() : format_metric(row.metrics[m]));
  }
  cells.push_back(row.failed ? row.error : std::string());
  return cells;
}

std::vector<std::string> result_headers(const SweepResult& result) {
  std::vector<std::string> headers;
  headers.reserve(1 + result.override_names.size() + result.metric_names.size() + 1);
  headers.push_back("scenario");
  headers.insert(headers.end(), result.override_names.begin(), result.override_names.end());
  headers.insert(headers.end(), result.metric_names.begin(), result.metric_names.end());
  headers.push_back("error");
  return headers;
}

}  // namespace

int SweepResult::failure_count() const {
  int failures = 0;
  for (const ScenarioResult& row : rows) {
    failures += row.failed ? 1 : 0;
  }
  return failures;
}

double SweepResult::scenarios_per_second() const {
  return wall_time_s > 0.0 ? static_cast<double>(rows.size()) / wall_time_s : 0.0;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

int SweepRunner::resolved_thread_count() const {
  if (options_.thread_count > 0) {
    return options_.thread_count;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

SweepResult SweepRunner::run(const SweepPlan& plan) const {
  if (!plan.evaluator.fn) {
    throw std::invalid_argument("sweep plan '" + plan.name + "' has no evaluator");
  }
  SweepResult result;
  result.plan_name = plan.name;
  result.evaluator_name = plan.evaluator.name;
  result.metric_names = plan.evaluator.metrics;
  result.override_names = collect_override_names(plan);
  result.thread_count = resolved_thread_count();
  result.rows.resize(plan.scenarios.size());

  const auto sweep_start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    WorkerState state(options_.reuse_structures);
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= plan.scenarios.size()) {
        return;
      }
      const ScenarioSpec& scenario = plan.scenarios[i];
      ScenarioResult& row = result.rows[i];
      row.name = scenario.name;
      row.overrides = scenario.overrides;
      const auto start = std::chrono::steady_clock::now();
      try {
        const core::SystemConfig config = apply_scenario(plan.base, scenario);
        config.validate();
        row.metrics = plan.evaluator.fn(config, scenario, state);
        if (row.metrics.size() != plan.evaluator.metrics.size()) {
          throw std::logic_error("evaluator '" + plan.evaluator.name +
                                 "' returned a mismatched metric count");
        }
      } catch (const std::exception& e) {
        row.failed = true;
        row.error = e.what();
        row.metrics.assign(plan.evaluator.metrics.size(), 0.0);
      }
      row.elapsed_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start).count();
    }
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(result.thread_count, plan.scenarios.size()));
  std::vector<std::thread> pool;
  pool.reserve(workers > 0 ? workers - 1 : 0);
  for (int t = 1; t < workers; ++t) {
    pool.emplace_back(worker);
  }
  worker();  // this thread participates
  for (std::thread& t : pool) {
    t.join();
  }
  result.wall_time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - sweep_start).count();
  return result;
}

void write_sweep_csv(std::ostream& os, const SweepResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size());
  for (const ScenarioResult& row : result.rows) {
    rows.push_back(format_row(result, row));
  }
  core::write_table_csv(os, result_headers(result), rows);
}

void write_sweep_json(std::ostream& os, const SweepResult& result) {
  const std::vector<std::string> headers = result_headers(result);
  std::vector<bool> numeric(headers.size(), true);
  numeric.front() = false;  // scenario name
  numeric.back() = false;   // error message
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size());
  for (const ScenarioResult& row : result.rows) {
    rows.push_back(format_row(result, row));
  }
  os << "{\n"
     << "  \"plan\": \"" << core::json_escape(result.plan_name) << "\",\n"
     << "  \"evaluator\": \"" << core::json_escape(result.evaluator_name) << "\",\n"
     << "  \"scenario_count\": " << result.rows.size() << ",\n"
     << "  \"rows\": ";
  core::write_records_json(os, headers, numeric, rows);
  os << "}\n";
}

void write_sweep_timing_csv(std::ostream& os, const SweepResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size() + 1);
  for (const ScenarioResult& row : result.rows) {
    rows.push_back({row.name, format_metric(row.elapsed_s)});
  }
  rows.push_back({"TOTAL (wall, " + std::to_string(result.thread_count) + " threads)",
                  format_metric(result.wall_time_s)});
  core::write_table_csv(os, {"scenario", "elapsed_s"}, rows);
}

}  // namespace brightsi::sweep
