#include "sweep/runner.h"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "core/report.h"
#include "sweep/execution.h"

namespace brightsi::sweep {

std::vector<std::string> collect_override_names(const SweepPlan& plan) {
  std::vector<std::string> names;
  for (const ScenarioSpec& scenario : plan.scenarios) {
    for (const auto& [param, value] : scenario.overrides) {
      (void)value;
      bool known = false;
      for (const std::string& existing : names) {
        if (existing == param) {
          known = true;
          break;
        }
      }
      if (!known) {
        names.push_back(param);
      }
    }
  }
  return names;
}

std::string format_sweep_value(double value) { return core::format_shortest(value); }

std::vector<std::string> format_sweep_row(const SweepResult& result,
                                          const ScenarioResult& row) {
  std::vector<std::string> cells;
  cells.reserve(1 + result.override_names.size() + result.metric_names.size() + 1);
  cells.push_back(row.name);
  for (const std::string& param : result.override_names) {
    std::string cell;
    for (const auto& [name, value] : row.overrides) {
      if (name == param) {
        cell = format_sweep_value(value);
        break;
      }
    }
    cells.push_back(std::move(cell));
  }
  for (std::size_t m = 0; m < result.metric_names.size(); ++m) {
    cells.push_back(row.failed ? std::string() : format_sweep_value(row.metrics[m]));
  }
  cells.push_back(row.failed ? row.error : std::string());
  return cells;
}

std::vector<std::string> sweep_row_headers(const SweepResult& result) {
  std::vector<std::string> headers;
  headers.reserve(1 + result.override_names.size() + result.metric_names.size() + 1);
  headers.push_back("scenario");
  headers.insert(headers.end(), result.override_names.begin(), result.override_names.end());
  headers.insert(headers.end(), result.metric_names.begin(), result.metric_names.end());
  headers.push_back("error");
  return headers;
}

int SweepResult::failure_count() const {
  int failures = 0;
  for (const ScenarioResult& row : rows) {
    failures += row.failed ? 1 : 0;
  }
  return failures;
}

double SweepResult::scenarios_per_second() const {
  return wall_time_s > 0.0 ? static_cast<double>(rows.size()) / wall_time_s : 0.0;
}

int resolve_thread_count(const SweepOptions& options) {
  if (options.thread_count > 0) {
    return options.thread_count;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

SweepRunner::SweepRunner(std::shared_ptr<ExecutionBackend> backend)
    : backend_(std::move(backend)) {
  if (backend_ == nullptr) {
    throw std::invalid_argument("sweep runner needs a non-null execution backend");
  }
}

int SweepRunner::resolved_thread_count() const {
  return backend_ != nullptr ? backend_->thread_count() : resolve_thread_count(options_);
}

SweepResult SweepRunner::run(const SweepPlan& plan) const {
  if (!plan.evaluator.fn) {
    throw std::invalid_argument("sweep plan '" + plan.name + "' has no evaluator");
  }
  SweepResult result;
  result.plan_name = plan.name;
  result.evaluator_name = plan.evaluator.name;
  result.metric_names = plan.evaluator.metrics;
  result.override_names = collect_override_names(plan);

  // An injected backend persists across run() calls; the default local
  // backend is rebuilt per run (fresh caches, the historical behaviour).
  std::shared_ptr<ExecutionBackend> backend = backend_;
  if (backend == nullptr) {
    backend = make_local_backend(options_);
  }
  result.thread_count = backend->thread_count();
  result.backend = backend->name();

  const auto sweep_start = std::chrono::steady_clock::now();
  backend->execute(plan.base, plan.evaluator, plan.scenarios, result.rows);
  result.wall_time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - sweep_start).count();
  result.exec = backend->stats();
  return result;
}

BatchEvaluationSession::BatchEvaluationSession(core::SystemConfig base,
                                               SweepEvaluator evaluator, SweepOptions options,
                                               std::shared_ptr<ExecutionBackend> backend)
    : base_(std::move(base)), evaluator_(std::move(evaluator)),
      backend_(std::move(backend)) {
  if (!evaluator_.fn) {
    throw std::invalid_argument("batch evaluation session has no evaluator");
  }
  if (backend_ == nullptr) {
    backend_ = make_local_backend(options);
  }
}

std::vector<ScenarioResult> BatchEvaluationSession::evaluate(
    const std::vector<ScenarioSpec>& candidates) {
  std::vector<ScenarioResult> rows;
  backend_->execute(base_, evaluator_, candidates, rows);
  evaluations_ += static_cast<long long>(candidates.size());
  return rows;
}

int BatchEvaluationSession::thread_count() const { return backend_->thread_count(); }

int BatchEvaluationSession::model_build_count() const {
  return backend_->model_build_count();
}

ExecutionStats BatchEvaluationSession::execution_stats() const {
  return backend_->stats();
}

void write_sweep_csv(std::ostream& os, const SweepResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size());
  for (const ScenarioResult& row : result.rows) {
    rows.push_back(format_sweep_row(result, row));
  }
  core::write_table_csv(os, sweep_row_headers(result), rows);
}

void write_sweep_json(std::ostream& os, const SweepResult& result) {
  const std::vector<std::string> headers = sweep_row_headers(result);
  std::vector<bool> numeric(headers.size(), true);
  numeric.front() = false;  // scenario name
  numeric.back() = false;   // error message
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size());
  for (const ScenarioResult& row : result.rows) {
    rows.push_back(format_sweep_row(result, row));
  }
  os << "{\n"
     << "  \"plan\": \"" << core::json_escape(result.plan_name) << "\",\n"
     << "  \"evaluator\": \"" << core::json_escape(result.evaluator_name) << "\",\n"
     << "  \"scenario_count\": " << result.rows.size() << ",\n"
     << "  \"rows\": ";
  core::write_records_json(os, headers, numeric, rows);
  os << "}\n";
}

void write_sweep_timing_csv(std::ostream& os, const SweepResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size() + 1);
  for (const ScenarioResult& row : result.rows) {
    rows.push_back({row.name, format_sweep_value(row.elapsed_s)});
  }
  rows.push_back({"TOTAL (wall, " + std::to_string(result.thread_count) + " threads)",
                  format_sweep_value(result.wall_time_s)});
  core::write_table_csv(os, {"scenario", "elapsed_s"}, rows);
}

}  // namespace brightsi::sweep
