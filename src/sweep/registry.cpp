#include "sweep/registry.h"

#include <stdexcept>

namespace brightsi::sweep {

namespace {

/// bench/ablation_geometry as data: the Section IV outlook sweep of channel
/// dimensions, flow rate and inlet temperature, evaluated at the isothermal
/// 1 V design point.
SweepPlan geometry_plan() {
  SweepPlan plan;
  plan.name = "ablation_geometry";
  plan.base = core::power7_system_config();
  plan.evaluator = array_power_evaluator();
  // The bench's explicit design points: every scenario pins all four knobs
  // so rows are self-describing.
  auto point = [&](double gap_um, double height_um, double flow_ml_min, double inlet_c) {
    ScenarioSpec scenario;
    scenario.name = "gap=" + format_value(gap_um) + " h=" + format_value(height_um) +
                    " q=" + format_value(flow_ml_min) + " t=" + format_value(inlet_c);
    scenario.set("channel_gap_um", gap_um);
    scenario.set("channel_height_um", height_um);
    scenario.set("flow_ml_min", flow_ml_min);
    scenario.set("inlet_c", inlet_c);
    plan.add(std::move(scenario));
  };
  for (const double gap : {100.0, 200.0, 400.0}) {
    point(gap, 400.0, 676.0, 27.0);
  }
  for (const double height : {200.0, 400.0, 800.0}) {
    point(200.0, height, 676.0, 27.0);
  }
  for (const double flow : {48.0, 200.0, 676.0, 2000.0}) {
    point(200.0, 400.0, flow, 27.0);
  }
  for (const double t : {27.0, 37.0, 47.0, 60.0}) {
    point(200.0, 400.0, 676.0, t);
  }
  return plan;
}

/// bench/temp_sensitivity as data: the Section III-B coupled cases (nominal
/// flow, starved flow, warm inlet) through the full co-simulation.
SweepPlan temperature_plan() {
  SweepPlan plan;
  plan.name = "temp_sensitivity";
  plan.base = core::power7_system_config();
  plan.base.thermal_grid.axial_cells = 16;  // the bench's resolution
  plan.evaluator = cosim_evaluator();
  auto coupled = [&](const std::string& name, double flow_ml_min, double inlet_c) {
    ScenarioSpec scenario;
    scenario.name = name;
    scenario.set("flow_ml_min", flow_ml_min);
    scenario.set("inlet_c", inlet_c);
    plan.add(std::move(scenario));
  };
  coupled("coupled 676 ml/min, 27 C inlet", 676.0, 27.0);
  coupled("coupled 48 ml/min, 27 C inlet", 48.0, 27.0);
  coupled("coupled 676 ml/min, 37 C inlet", 676.0, 37.0);
  return plan;
}

/// bench/ablation_vrm_placement as data: distributed tap grids vs the
/// edge-fed baseline vs output resistance, on the cache rail.
SweepPlan vrm_placement_plan() {
  SweepPlan plan;
  plan.name = "ablation_vrm_placement";
  plan.base = core::power7_system_config();
  plan.evaluator = rail_integrity_evaluator();
  for (const double n : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    ScenarioSpec scenario;
    scenario.name = "distributed " + format_value(n) + "x" + format_value(n);
    scenario.set("vrm_grid_n", n);
    scenario.set("vrm_r_mohm", 25.0);
    plan.add(std::move(scenario));
  }
  for (const double per_edge : {4.0, 8.0, 16.0}) {
    ScenarioSpec scenario;
    scenario.name = "edge-fed " + format_value(per_edge) + "/side";
    scenario.set("edge_taps_per_side", per_edge);
    scenario.set("vrm_r_mohm", 25.0);
    plan.add(std::move(scenario));
  }
  for (const double r_mohm : {5.0, 25.0, 100.0}) {
    ScenarioSpec scenario;
    scenario.name = "distributed 4x4, R=" + format_value(r_mohm) + " mohm";
    scenario.set("vrm_grid_n", 4.0);
    scenario.set("vrm_r_mohm", r_mohm);
    plan.add(std::move(scenario));
  }
  return plan;
}

/// A full co-simulated flow x inlet-temperature grid — the design-space
/// product the one-off benches only sample.
SweepPlan operating_grid_plan() {
  SweepPlan plan;
  plan.name = "operating_grid";
  plan.base = core::power7_system_config();
  plan.base.thermal_grid.axial_cells = 16;
  plan.evaluator = cosim_evaluator();
  plan.add_grid({{"flow_ml_min", {48.0, 200.0, 676.0}},
                 {"inlet_c", {27.0, 37.0, 47.0}}});
  return plan;
}

/// Mission-level endurance map: tank volume x workload trace x flow rate x
/// step size, each scenario a full transient mission through the shared
/// transient engine. The non-divisible 0.07 s step exercises the
/// phase-aligned scheduler's residual steps on every run.
SweepPlan mission_endurance_plan() {
  SweepPlan plan;
  plan.name = "mission_endurance";
  plan.base = core::power7_system_config();
  plan.base.thermal_grid.axial_cells = 8;  // mission steps solve many operators
  plan.base.fvm.axial_steps = 60;
  plan.evaluator = mission_evaluator();
  plan.add_grid({{"tank_ml", {2.0, 20.0}},
                 {"workload_kind", {0.0, 1.0}},
                 {"flow_ml_min", {676.0, 200.0}},
                 {"mission_dt_s", {0.1, 0.07}}});
  return plan;
}

/// Multi-die 3D-stack design space: die count x pump flow x cooling-layer
/// height, every scenario a full co-simulation with the equal-pressure-drop
/// flow split across the interlayer cooling layers. Two extra scenarios pin
/// the two-die top-only-cooling baseline against its interlayer twin.
SweepPlan stack_3d_plan() {
  SweepPlan plan;
  plan.name = "stack_3d";
  plan.base = core::power7_system_config();
  plan.base.thermal_grid.axial_cells = 8;  // stacked solves are much larger
  plan.base.fvm.axial_steps = 60;
  plan.evaluator = stack_evaluator();
  plan.add_grid({{"die_count", {1.0, 2.0, 3.0}},
                 {"flow_ml_min", {676.0, 1352.0}},
                 {"stack_channel_height_um", {400.0, 800.0}}});
  for (const double interlayer : {1.0, 0.0}) {
    ScenarioSpec scenario;
    scenario.name = interlayer != 0.0 ? "2 dies, interlayer cooling"
                                      : "2 dies, top-only cooling";
    scenario.set("die_count", 2.0);
    scenario.set("interlayer", interlayer);
    scenario.set("flow_ml_min", 676.0);
    plan.add(std::move(scenario));
  }
  return plan;
}

/// Fleet-level rack design space: rack size x serial segmentation x
/// temperature-dependent coolant, every scenario a steady solve of the
/// whole rack's coupled loops. Named extras pin the heterogeneous
/// (mixed one-/two-die) rack and a blocked-branch failure injection whose
/// live plenum neighbors inherit the flow.
SweepPlan fleet_rack_plan() {
  SweepPlan plan;
  plan.name = "fleet_rack";
  plan.base = core::power7_system_config();
  plan.base.thermal_grid.axial_cells = 8;  // N chips solve per scenario
  plan.evaluator = fleet_evaluator();
  plan.add_grid({{"rack_chips", {4.0, 8.0}},
                 {"rack_segments", {2.0, 4.0}},
                 {"coolant_temp_dep", {0.0, 1.0}}});
  {
    ScenarioSpec scenario;
    scenario.name = "8 chips, 2 loops, heterogeneous";
    scenario.set("rack_chips", 8.0);
    scenario.set("rack_loops", 2.0);
    scenario.set("rack_segments", 2.0);
    scenario.set("rack_hetero", 1.0);
    scenario.set("coolant_temp_dep", 1.0);
    plan.add(std::move(scenario));
  }
  {
    ScenarioSpec scenario;
    scenario.name = "8 chips, 1 blocked branch";
    scenario.set("rack_chips", 8.0);
    scenario.set("rack_segments", 4.0);
    scenario.set("rack_blocked", 1.0);
    plan.add(std::move(scenario));
  }
  return plan;
}

/// Staggered fleet workload replay: rack size x per-chip stagger x
/// workload trace, every scenario a transient replay re-walking the
/// shared-loop coupling each step.
SweepPlan fleet_mission_plan() {
  SweepPlan plan;
  plan.name = "fleet_mission";
  plan.base = core::power7_system_config();
  plan.base.thermal_grid.axial_cells = 8;  // chips x steps transient solves
  plan.evaluator = fleet_replay_evaluator();
  plan.add_grid({{"rack_chips", {2.0, 4.0}},
                 {"rack_stagger_s", {0.0, 0.5}},
                 {"workload_kind", {0.0, 1.0}}});
  return plan;
}

}  // namespace

const std::vector<PlanDescription>& registered_plans() {
  static const std::vector<PlanDescription> plans = {
      {"ablation_geometry",
       "channel gap/height, flow and inlet-T vs deliverable power density (bench E9)"},
      {"temp_sensitivity",
       "co-simulated thermal feedback on the generated power (bench E8)"},
      {"ablation_vrm_placement",
       "VRM count/placement/resistance vs cache-rail integrity (bench E12)"},
      {"operating_grid",
       "co-simulated flow x inlet-temperature operating grid (3x3)"},
      {"mission_endurance",
       "transient mission endurance map: tank x workload x flow x dt"},
      {"stack_3d",
       "multi-die 3D stacks: dies x flow x channel height, interlayer flow split"},
      {"fleet_rack",
       "rack-level shared coolant loops: chips x segments x coolant laws, steady"},
      {"fleet_mission",
       "staggered fleet workload replay: chips x stagger x trace, transient"},
  };
  return plans;
}

SweepPlan make_registered_plan(const std::string& name) {
  if (name == "ablation_geometry") {
    return geometry_plan();
  }
  if (name == "temp_sensitivity") {
    return temperature_plan();
  }
  if (name == "ablation_vrm_placement") {
    return vrm_placement_plan();
  }
  if (name == "operating_grid") {
    return operating_grid_plan();
  }
  if (name == "mission_endurance") {
    return mission_endurance_plan();
  }
  if (name == "stack_3d") {
    return stack_3d_plan();
  }
  if (name == "fleet_rack") {
    return fleet_rack_plan();
  }
  if (name == "fleet_mission") {
    return fleet_mission_plan();
  }
  throw std::invalid_argument("unknown sweep plan: " + name);
}

}  // namespace brightsi::sweep
