#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "numerics/contracts.h"

namespace brightsi::core {
namespace {

// Shade ramp from cold to hot.
constexpr const char* kShades = " .:-=+*#%@";
constexpr int kShadeCount = 10;

}  // namespace

numerics::Grid2<double> downsample(const numerics::Grid2<double>& field, int max_cols,
                                   int max_rows) {
  ensure(max_cols > 0 && max_rows > 0, "downsample target must be positive");
  const int nx = std::min(field.nx(), max_cols);
  const int ny = std::min(field.ny(), max_rows);
  numerics::Grid2<double> out(nx, ny, 0.0);
  numerics::Grid2<int> counts(nx, ny, 0);
  for (int iy = 0; iy < field.ny(); ++iy) {
    for (int ix = 0; ix < field.nx(); ++ix) {
      const int ox = std::min(nx - 1, ix * nx / field.nx());
      const int oy = std::min(ny - 1, iy * ny / field.ny());
      out(ox, oy) += field(ix, iy);
      counts(ox, oy) += 1;
    }
  }
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      if (counts(ix, iy) > 0) {
        out(ix, iy) /= counts(ix, iy);
      }
    }
  }
  return out;
}

void print_ascii_map(std::ostream& os, const numerics::Grid2<double>& field,
                     const std::string& title, const std::string& unit, int max_cols,
                     int max_rows) {
  const numerics::Grid2<double> map = downsample(field, max_cols, max_rows);
  double lo = map(0, 0);
  double hi = map(0, 0);
  for (const double v : map.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  os << title << "  [" << TextTable::num(lo) << " " << unit << " = ' ' ... "
     << TextTable::num(hi) << " " << unit << " = '@']\n";
  const double span = (hi > lo) ? hi - lo : 1.0;
  for (int iy = map.ny() - 1; iy >= 0; --iy) {
    os << "  ";
    for (int ix = 0; ix < map.nx(); ++ix) {
      const int shade = std::clamp(
          static_cast<int>((map(ix, iy) - lo) / span * (kShadeCount - 1) + 0.5), 0,
          kShadeCount - 1);
      os << kShades[shade];
    }
    os << "\n";
  }
}

void write_field_csv(std::ostream& os, const numerics::Grid2<double>& field, double width_m,
                     double height_m) {
  os << "x_mm,y_mm,value\n";
  for (int iy = 0; iy < field.ny(); ++iy) {
    for (int ix = 0; ix < field.nx(); ++ix) {
      const double x = (ix + 0.5) * width_m / field.nx() * 1e3;
      const double y = (iy + 0.5) * height_m / field.ny() * 1e3;
      os << x << "," << y << "," << field(ix, iy) << "\n";
    }
  }
}

void write_series_csv(std::ostream& os, const std::vector<std::string>& headers,
                      const std::vector<std::vector<double>>& columns) {
  ensure(!columns.empty() && headers.size() == columns.size(),
         "write_series_csv: header/column mismatch");
  const std::size_t rows = columns.front().size();
  for (const auto& column : columns) {
    ensure(column.size() == rows, "write_series_csv: ragged columns");
  }
  for (std::size_t i = 0; i < headers.size(); ++i) {
    os << headers[i] << (i + 1 < headers.size() ? "," : "\n");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      os << columns[c][r] << (c + 1 < columns.size() ? "," : "\n");
    }
  }
}

namespace {

/// RFC 4180: quote a cell when it contains a separator, quote or newline.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) {
    return cell;
  }
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void write_table_csv(std::ostream& os, const std::vector<std::string>& headers,
                     const std::vector<std::vector<std::string>>& rows) {
  ensure(!headers.empty(), "write_table_csv: empty header");
  for (std::size_t i = 0; i < headers.size(); ++i) {
    os << csv_escape(headers[i]) << (i + 1 < headers.size() ? "," : "\n");
  }
  for (const auto& row : rows) {
    ensure(row.size() == headers.size(), "write_table_csv: ragged row");
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]) << (c + 1 < row.size() ? "," : "\n");
    }
  }
}

std::string format_shortest(double value) {
  // %.17g round-trips every double, but prefer the shortest form that still
  // parses back to the same value so emitted tables stay readable.
  char buffer[40];
  for (const int precision : {9, 12, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    double parsed = 0.0;
    if (std::sscanf(buffer, "%lf", &parsed) == 1 && parsed == value) {
      break;
    }
  }
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

void write_records_json(std::ostream& os, const std::vector<std::string>& headers,
                        const std::vector<bool>& numeric,
                        const std::vector<std::vector<std::string>>& rows) {
  ensure(numeric.size() == headers.size(), "write_records_json: numeric mask mismatch");
  os << "[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    ensure(row.size() == headers.size(), "write_records_json: ragged row");
    os << (r == 0 ? "\n" : ",\n") << "  {";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ", ") << '"' << json_escape(headers[c]) << "\": ";
      if (numeric[c]) {
        os << (row[c].empty() ? "null" : row[c]);
      } else {
        os << '"' << json_escape(row[c]) << '"';
      }
    }
    os << "}";
  }
  os << (rows.empty() ? "]\n" : "\n]\n");
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  ensure(cells.size() == headers_.size(), "TextTable row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "  ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << "  " << rule << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string write_results_file(const std::string& name,
                               const std::function<void(std::ostream&)>& writer) {
  ensure(!name.empty() && name.find("..") == std::string::npos,
         "results file name must be a plain relative name");
  try {
    std::filesystem::create_directories("results");
    const std::string path = "results/" + name;
    std::ofstream out(path);
    if (!out) {
      return {};
    }
    writer(out);
    return path;
  } catch (const std::filesystem::filesystem_error&) {
    return {};
  }
}

bool emit_to_sink(const std::string& path, const char* what,
                  const std::function<void(std::ostream&)>& writer) {
  if (path == "-") {
    writer(std::cout);
    return true;
  }
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s file '%s'\n", what, path.c_str());
    return false;
  }
  writer(file);
  std::fprintf(stderr, "wrote %s to %s\n", what, path.c_str());
  return true;
}

}  // namespace brightsi::core
