// The paper's primary contribution as an executable artifact: the joint
// electro-thermal-electrical simulation of an MPSoC powered and cooled by
// an integrated microfluidic fuel-cell array.
//
// One `run()` performs the fixed-point loop:
//   power map -> thermal solve -> per-channel coolant temperature profiles
//   -> non-isothermal array polarization -> supply operating point against
//   the VRM input demand -> cache-rail IR-drop map -> convergence check.
// The loop couples in both directions: chip heat warms the electrolyte,
// which (Arrhenius kinetics + Stokes-Einstein diffusivity + conductivity)
// changes the generated power — the effect behind the paper's 4 % / 23 %
// temperature-sensitivity findings.
#ifndef BRIGHTSI_CORE_COSIM_H
#define BRIGHTSI_CORE_COSIM_H

#include <memory>
#include <vector>

#include "core/system_config.h"
#include "flowcell/polarization.h"
#include "thermal/solve_context.h"

namespace brightsi::core {

/// Supply-side operating point of the flow-cell bus.
struct SupplyOperatingPoint {
  bool feasible = false;        ///< array can source the VRM input demand
  double bus_voltage_v = 0.0;   ///< cell voltage of the (parallel) array
  double array_current_a = 0.0;
  double array_power_w = 0.0;   ///< = VRM input power when feasible
  double vrm_output_power_w = 0.0;
  double vrm_loss_w = 0.0;
  bool vrm_window_ok = false;   ///< bus voltage within the converter window
};

/// Flow and heat report of one microchannel layer of the stack (the pump
/// total splits across parallel layers at equal pressure drop).
struct ChannelLayerReport {
  double flow_ml_min = 0.0;
  double fraction = 1.0;         ///< share of the pump total
  double heat_absorbed_w = 0.0;
  double outlet_mean_c = 0.0;
};

/// Complete co-simulation result.
struct CoSimReport {
  int iterations = 0;
  bool converged = false;

  thermal::ThermalSolution thermal;
  double peak_temperature_c = 0.0;
  double mean_coolant_outlet_c = 0.0;

  /// Per-channel-layer flow split, bottom to top (one entry for the paper's
  /// single-die package; one per cooling layer for 3D stacks).
  std::vector<ChannelLayerReport> layer_flows;
  int die_count = 1;

  SupplyOperatingPoint supply;
  pdn::PowerGridSolution grid;

  /// Hydraulics at the configured flow.
  double mean_velocity_m_per_s = 0.0;
  double pressure_drop_bar = 0.0;
  double pressure_gradient_bar_per_cm = 0.0;
  double pumping_power_w = 0.0;

  /// Generated electrical power minus pumping power (the paper's headline
  /// energy balance: 6 W generated vs 4.4 W pumping).
  double net_power_w = 0.0;

  /// Array current at the rail-equivalent fixed potential, isothermal vs
  /// thermally-coupled — the paper's "up to 4 %" metric.
  double isothermal_current_a = 0.0;
  double coupled_current_a = 0.0;
  double thermal_current_gain = 0.0;  ///< coupled/isothermal - 1

  /// Thermal solver work spent inside this run (solve-context stats delta):
  /// the observable behind the assemble-once / warm-start speedup.
  int thermal_solves = 0;
  long long thermal_iterations = 0;          ///< BiCGSTAB iterations, summed
  double thermal_assembly_time_s = 0.0;      ///< coefficient fill + CSR refill
  double thermal_setup_time_s = 0.0;         ///< preconditioner factor/hierarchy refresh
  double thermal_solve_time_s = 0.0;         ///< time iterating inside the Krylov solver
};

class IntegratedMpsocSystem {
 public:
  explicit IntegratedMpsocSystem(SystemConfig config);

  /// Builds the system around an already-assembled thermal model (shared
  /// across systems whose scenarios differ only in operating-point
  /// parameters — the sweep structure cache). The model must match the
  /// config's thermal grid and stack; a null pointer builds one internally.
  IntegratedMpsocSystem(SystemConfig config,
                        std::shared_ptr<const thermal::ThermalModel> thermal_model);

  /// Runs the fixed-point co-simulation at the configured operating point.
  /// One thermal solve context is carried across the fixed-point
  /// iterations (warm starts), and reset on entry so repeated runs are
  /// reproducible. Deterministic, but not reentrant: concurrent run()
  /// calls on one instance must be externally serialized (sweep workers
  /// each own their system).
  [[nodiscard]] CoSimReport run() const;

  /// Array polarization sweep under the co-simulated (non-isothermal)
  /// channel temperature profiles of a converged run.
  [[nodiscard]] flowcell::PolarizationCurve array_sweep_with_thermal_feedback(
      double min_voltage_v, int point_count) const;

  /// Array current at `cell_voltage_v` with the thermally-coupled channel
  /// profiles (grouped evaluation).
  [[nodiscard]] double array_current_with_profiles(
      double cell_voltage_v, const std::vector<std::vector<double>>& group_profiles) const;

  [[nodiscard]] const SystemConfig& config() const { return config_; }
  /// The primary (bottom) die's floorplan.
  [[nodiscard]] const chip::Floorplan& floorplan() const { return floorplans_.front(); }
  /// All die floorplans, bottom to top (size = stack heat-source layers).
  [[nodiscard]] const std::vector<chip::Floorplan>& floorplans() const { return floorplans_; }
  [[nodiscard]] const thermal::ThermalModel& thermal_model() const { return *thermal_model_; }
  [[nodiscard]] const flowcell::FlowCellArray& array() const { return *array_; }
  [[nodiscard]] const pdn::PowerGrid& power_grid() const { return *power_grid_; }
  /// The electrochemical array's share of the pump total flow (the bottom
  /// channel layer's equal-pressure-drop fraction; 1 for single-layer
  /// stacks).
  [[nodiscard]] double electro_flow_fraction() const { return electro_flow_fraction_; }

  /// Averages the 88 per-channel profiles into config.channel_groups
  /// group profiles.
  [[nodiscard]] std::vector<std::vector<double>> group_channel_profiles(
      const std::vector<std::vector<double>>& per_channel) const;

 private:
  SystemConfig config_;
  std::vector<chip::Floorplan> floorplans_;  ///< [0] = primary die
  /// Array spec actually driving the electrochemistry: the configured spec
  /// with total flow scaled to the bottom channel layer's share. Bitwise
  /// the configured spec for single-layer stacks.
  flowcell::ArraySpec electro_array_spec_;
  double electro_flow_fraction_ = 1.0;
  std::shared_ptr<const thermal::ThermalModel> thermal_model_;
  /// Mutable solve state behind the const run(): reset per run, so the
  /// cache/warm-start machinery never leaks across runs.
  mutable std::unique_ptr<thermal::ThermalSolveContext> thermal_context_;
  std::unique_ptr<flowcell::FlowCellArray> array_;
  std::unique_ptr<pdn::PowerGrid> power_grid_;

  [[nodiscard]] SupplyOperatingPoint solve_supply(
      double vrm_output_power_w,
      const std::vector<std::vector<double>>& group_profiles) const;
};

}  // namespace brightsi::core

#endif  // BRIGHTSI_CORE_COSIM_H
