#include "core/cosim.h"

#include <algorithm>
#include <cmath>

#include "electrochem/constants.h"
#include "hydraulics/pump.h"
#include "numerics/contracts.h"
#include "numerics/root_finding.h"

namespace brightsi::core {

namespace ec = brightsi::electrochem;

IntegratedMpsocSystem::IntegratedMpsocSystem(SystemConfig config)
    : IntegratedMpsocSystem(std::move(config), nullptr) {}

IntegratedMpsocSystem::IntegratedMpsocSystem(
    SystemConfig config, std::shared_ptr<const thermal::ThermalModel> thermal_model)
    : config_(std::move(config)) {
  config_.validate();
  floorplans_.push_back(chip::make_power7_floorplan(config_.power_spec));
  for (const chip::Power7PowerSpec& upper : config_.upper_die_power) {
    floorplans_.push_back(chip::make_power7_floorplan(upper));
  }
  const chip::Floorplan& primary = floorplans_.front();
  if (thermal_model != nullptr) {
    // The shared model must have been built from exactly this config's
    // structural inputs; anything less (shape-only checks) would accept a
    // model with different layer materials or discretization.
    ensure(thermal_model->stack() == config_.stack &&
               thermal_model->settings() == config_.thermal_grid &&
               thermal_model->die_width_m() == primary.die_width() &&
               thermal_model->die_height_m() == primary.die_height(),
           "shared thermal model does not match the configured stack/grid");
    thermal_model_ = std::move(thermal_model);
  } else {
    thermal_model_ = std::make_shared<const thermal::ThermalModel>(
        config_.stack, primary.die_width(), primary.die_height(), config_.thermal_grid);
  }
  thermal_context_ = std::make_unique<thermal::ThermalSolveContext>(*thermal_model_);

  // The electrochemistry lives in the bottom channel layer; with interlayer
  // cooling above it, only that layer's equal-pressure-drop share of the
  // pump total flows through the flow cells. Single-layer stacks keep the
  // configured spec bitwise (fraction exactly 1).
  electro_array_spec_ = config_.array_spec;
  if (thermal_model_->channel_layer_count() > 1) {
    const std::vector<double> layer_flows =
        thermal_model_->layer_flow_split(config_.thermal_operating_point());
    electro_flow_fraction_ = layer_flows.front() / config_.array_spec.total_flow_m3_per_s;
    electro_array_spec_.total_flow_m3_per_s = layer_flows.front();
  }
  array_ = std::make_unique<flowcell::FlowCellArray>(electro_array_spec_, config_.chemistry,
                                                     config_.fvm);
  power_grid_ = std::make_unique<pdn::PowerGrid>(config_.grid_spec, primary);
  ensure(thermal_model_->channel_count() == config_.array_spec.channel_count,
         "thermal stack and array disagree on the channel count");
}

std::vector<std::vector<double>> IntegratedMpsocSystem::group_channel_profiles(
    const std::vector<std::vector<double>>& per_channel) const {
  const int groups = config_.channel_groups;
  const int per_group = config_.array_spec.channel_count / groups;
  ensure(static_cast<int>(per_channel.size()) == config_.array_spec.channel_count,
         "profile count mismatch");
  std::vector<std::vector<double>> grouped(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    const std::size_t samples = per_channel[static_cast<std::size_t>(g * per_group)].size();
    std::vector<double> mean(samples, 0.0);
    for (int c = g * per_group; c < (g + 1) * per_group; ++c) {
      const auto& profile = per_channel[static_cast<std::size_t>(c)];
      ensure(profile.size() == samples, "inconsistent profile lengths");
      for (std::size_t i = 0; i < samples; ++i) {
        mean[i] += profile[i];
      }
    }
    for (double& v : mean) {
      v /= per_group;
    }
    grouped[static_cast<std::size_t>(g)] = std::move(mean);
  }
  return grouped;
}

double IntegratedMpsocSystem::array_current_with_profiles(
    double cell_voltage_v, const std::vector<std::vector<double>>& group_profiles) const {
  const int groups = config_.channel_groups;
  const int per_group = config_.array_spec.channel_count / groups;
  ensure(static_cast<int>(group_profiles.size()) == groups, "group profile count mismatch");

  const flowcell::ChannelModel& model = array_->channel_model();
  double total = 0.0;
  for (const auto& profile : group_profiles) {
    flowcell::ChannelOperatingConditions conditions;
    conditions.volumetric_flow_m3_per_s = electro_array_spec_.per_channel_flow();
    conditions.inlet_temperature_k = electro_array_spec_.inlet_temperature_k;
    conditions.axial_temperature_k = profile;
    conditions.parasitic_current_density_a_per_m2 =
        config_.array_spec.parasitic_current_density_a_per_m2;
    total += model.solve_at_voltage(cell_voltage_v, conditions).current_a * per_group;
  }
  return total;
}

SupplyOperatingPoint IntegratedMpsocSystem::solve_supply(
    double vrm_output_power_w, const std::vector<std::vector<double>>& group_profiles) const {
  SupplyOperatingPoint op;
  op.vrm_output_power_w = vrm_output_power_w;
  const double input_power = vrm_output_power_w / config_.vrm_spec.efficiency;
  op.vrm_loss_w = input_power - vrm_output_power_w;

  const double ocv = array_->open_circuit_voltage();

  // The stable operating point is the highest bus voltage where the array
  // sources the VRM input power: P_array(V) = V * I_array(V) rises from 0
  // at OCV as V decreases; find the first crossing with input_power.
  auto surplus = [&](double v) {
    return v * array_current_with_profiles(v, group_profiles) - input_power;
  };

  const double v_hi = ocv - 1e-3;
  if (surplus(v_hi) >= 0.0) {
    op.bus_voltage_v = v_hi;  // demand met at (essentially) open circuit
  } else {
    // Scan downward for a bracketing voltage (the maximum-power point of
    // the array bounds the search).
    double v_lo = v_hi;
    bool bracketed = false;
    for (double v = v_hi - 0.05; v >= 0.2; v -= 0.05) {
      if (surplus(v) >= 0.0) {
        v_lo = v;
        bracketed = true;
        break;
      }
    }
    if (!bracketed) {
      op.feasible = false;
      return op;  // array cannot deliver this power at any sane voltage
    }
    const auto root = numerics::find_root_brent(surplus, v_lo, v_hi, 1e-5,
                                                1e-3 * std::max(input_power, 1.0), 64);
    op.bus_voltage_v = root.root;
  }
  op.array_current_a = array_current_with_profiles(op.bus_voltage_v, group_profiles);
  op.array_power_w = op.bus_voltage_v * op.array_current_a;
  op.feasible = true;
  op.vrm_window_ok = op.bus_voltage_v >= config_.vrm_spec.min_input_voltage_v &&
                     op.bus_voltage_v <= config_.vrm_spec.max_input_voltage_v;
  return op;
}

CoSimReport IntegratedMpsocSystem::run() const {
  CoSimReport report;

  // Cold-start the carried context so every run of the same system yields
  // identical results; warm starts apply only across this run's iterations.
  thermal_context_->reset();
  const thermal::ThermalSolveContext::Stats stats_before = thermal_context_->stats();

  const thermal::OperatingPoint thermal_op = config_.thermal_operating_point();

  // One power map per die for the thermal solves (the primary die's map
  // plus any stacked upper dies).
  std::vector<const chip::Floorplan*> die_floorplans;
  die_floorplans.reserve(floorplans_.size());
  for (const chip::Floorplan& floorplan : floorplans_) {
    die_floorplans.push_back(&floorplan);
  }
  report.die_count = static_cast<int>(floorplans_.size());

  // The cache rail is the VRM output demand (constant across iterations:
  // the caches run at their configured density).
  const double rail_power = floorplans_.front().cache_power();

  std::vector<std::vector<double>> group_profiles;  // empty = isothermal
  std::vector<std::vector<double>> supplied_profiles;
  double previous_peak = 0.0;
  for (int it = 1; it <= config_.max_cosim_iterations; ++it) {
    report.iterations = it;

    report.thermal = thermal_context_->solve_steady(die_floorplans, thermal_op);
    group_profiles = group_channel_profiles(report.thermal.channel_fluid_axial_k());
    // The supply operating point is a pure function of the profiles (the
    // rail demand is constant), so an iteration whose thermal field
    // reproduced the previous one bit-for-bit reuses the previous solve —
    // the common case once the fixed point is reached.
    if (it == 1 || group_profiles != supplied_profiles) {
      report.supply = solve_supply(rail_power, group_profiles);
      supplied_profiles = group_profiles;
    }

    if (std::abs(report.thermal.peak_temperature_k - previous_peak) <
        config_.temperature_tolerance_k) {
      report.converged = true;
      break;
    }
    previous_peak = report.thermal.peak_temperature_k;
    // Power map is temperature-independent in this configuration, so the
    // loop converges once the thermal field is self-consistent; a second
    // iteration re-checks with identical inputs. (Throttling variants
    // mutate the floorplan and genuinely iterate.)
  }

  report.peak_temperature_c =
      ec::constants::kelvin_to_celsius(report.thermal.peak_temperature_k);
  report.mean_coolant_outlet_c = ec::constants::kelvin_to_celsius(
      report.thermal.mean_outlet_k(config_.array_spec.inlet_temperature_k));

  // Per-layer flow split report (one row per microchannel layer).
  for (const thermal::ChannelLayerSolution& layer : report.thermal.channel_layers) {
    ChannelLayerReport row;
    row.flow_ml_min = layer.flow_m3_per_s * 60.0 * 1e6;
    row.fraction = layer.flow_fraction;
    row.heat_absorbed_w = layer.heat_absorbed_w;
    row.outlet_mean_c = ec::constants::kelvin_to_celsius(
        layer.mean_outlet_k(config_.array_spec.inlet_temperature_k));
    report.layer_flows.push_back(row);
  }

  // Cache-rail IR-drop map (Fig. 8) with the calibrated tap grid.
  const chip::Floorplan& primary = floorplans_.front();
  const auto taps = pdn::make_vrm_grid(
      config_.vrm_spec.count_x, config_.vrm_spec.count_y, primary.die_width(),
      primary.die_height(), config_.vrm_spec.set_point_v,
      config_.vrm_spec.output_resistance_ohm);
  report.grid = power_grid_->solve(taps);

  // Hydraulics + energy balance.
  const auto hydraulics = array_->hydraulics_at_spec_flow();
  report.mean_velocity_m_per_s = hydraulics.mean_velocity_m_per_s;
  report.pressure_drop_bar = hydraulics.pressure_drop_pa / 1e5;
  report.pressure_gradient_bar_per_cm = hydraulics.pressure_gradient_pa_per_m / 1e7;
  report.pumping_power_w = hydraulics::pumping_power_w(
      hydraulics.pressure_drop_pa, config_.array_spec.total_flow_m3_per_s,
      config_.pump_efficiency);
  report.net_power_w = report.supply.array_power_w - report.pumping_power_w;

  // Temperature-sensitivity metric at the rail-equivalent potential.
  const double probe_voltage = config_.vrm_spec.set_point_v;
  report.isothermal_current_a = array_->current_at_voltage(probe_voltage);
  report.coupled_current_a = array_current_with_profiles(probe_voltage, group_profiles);
  report.thermal_current_gain =
      (report.isothermal_current_a > 0.0)
          ? report.coupled_current_a / report.isothermal_current_a - 1.0
          : 0.0;

  const thermal::ThermalSolveContext::Stats& stats_after = thermal_context_->stats();
  report.thermal_solves = stats_after.solves - stats_before.solves;
  report.thermal_iterations = stats_after.iterations - stats_before.iterations;
  report.thermal_assembly_time_s =
      stats_after.assembly_time_s - stats_before.assembly_time_s;
  report.thermal_setup_time_s =
      stats_after.precond_setup_time_s - stats_before.precond_setup_time_s;
  report.thermal_solve_time_s = stats_after.solve_time_s - stats_before.solve_time_s;
  return report;
}

flowcell::PolarizationCurve IntegratedMpsocSystem::array_sweep_with_thermal_feedback(
    double min_voltage_v, int point_count) const {
  ensure(point_count >= 2, "sweep needs at least two points");
  const CoSimReport report = run();
  const auto group_profiles =
      group_channel_profiles(report.thermal.channel_fluid_axial_k());

  const double ocv = array_->open_circuit_voltage();
  const double v_start = ocv - 1e-4;
  const double electrode_area = config_.array_spec.geometry.projected_electrode_area_m2() *
                                config_.array_spec.channel_count;
  std::vector<flowcell::PolarizationPoint> points;
  points.reserve(static_cast<std::size_t>(point_count));
  for (int k = 0; k < point_count; ++k) {
    const double v =
        v_start + (min_voltage_v - v_start) * static_cast<double>(k) / (point_count - 1);
    const double current = array_current_with_profiles(v, group_profiles);
    points.push_back({v, current, current / electrode_area, current * v});
  }
  return flowcell::PolarizationCurve(std::move(points));
}

}  // namespace brightsi::core
