// Configuration of the full integrated system: MPSoC + microfluidic
// fuel-cell array + in-package VRMs + power grid + thermal package.
#ifndef BRIGHTSI_CORE_SYSTEM_CONFIG_H
#define BRIGHTSI_CORE_SYSTEM_CONFIG_H

#include "chip/power7.h"
#include "electrochem/species.h"
#include "flowcell/cell_array.h"
#include "pdn/power_grid.h"
#include "pdn/vrm.h"
#include "thermal/model.h"
#include "thermal/stack.h"

namespace brightsi::core {

/// Everything needed to instantiate an IntegratedMpsocSystem. Obtain the
/// paper's case study from `power7_system_config()` and tweak from there.
struct SystemConfig {
  chip::Power7PowerSpec power_spec;
  /// Per-die workload of the dies stacked above the primary one, bottom to
  /// top (same outline as the primary die). Size must equal the stack's
  /// heat-source layer count minus one; empty for single-die stacks.
  std::vector<chip::Power7PowerSpec> upper_die_power;
  flowcell::ArraySpec array_spec;
  electrochem::FlowCellChemistry chemistry;
  flowcell::FvmSettings fvm;
  thermal::StackSpec stack;
  thermal::ThermalGridSettings thermal_grid;
  pdn::PowerGridSpec grid_spec;
  pdn::VrmSpec vrm_spec;

  double pump_efficiency = 0.5;  ///< paper Section III-B

  /// Channels grouped for the non-isothermal array evaluation: channels in
  /// a group share one (averaged) axial temperature profile. 88 must be
  /// divisible by this.
  int channel_groups = 8;

  int max_cosim_iterations = 8;
  double temperature_tolerance_k = 0.05;

  void validate() const;

  /// The thermal operating point this config implies: spec flow and inlet
  /// temperature, with the coolant properties evaluated from the
  /// electrolyte chemistry at the inlet temperature. The single source of
  /// truth for every thermal solve driver (cosim, missions, layer-split
  /// queries) — the per-layer flow split must see exactly the coolant the
  /// solves use.
  [[nodiscard]] thermal::OperatingPoint thermal_operating_point() const;

  /// The operating point of this chip as one branch of a shared coolant
  /// loop (fleet/rack.h): the loop hands the chip `flow` at `inlet_k`, and
  /// the loop's coolant laws re-price the transport properties at that
  /// inlet. With the laws disabled (the default) the coolant is exactly
  /// thermal_operating_point()'s — the constant-property contract that
  /// keeps single-chip results bit-identical.
  [[nodiscard]] thermal::OperatingPoint loop_operating_point(
      double flow_m3_per_s, double inlet_temperature_k,
      const thermal::CoolantPropertyLaws& laws) const;
};

/// The paper's case study: POWER7+ floorplan at full load, Table II array
/// at 676 ml/min / 300 K, Fig. 8 PDN calibration, 50 % pump.
[[nodiscard]] SystemConfig power7_system_config();

/// The two-die 3D stack: the POWER7+ core die under a cache/DRAM die, with
/// an interlayer microchannel layer above each die
/// (thermal::two_die_stack). The pump total flow splits across the two
/// channel layers at equal pressure drop.
[[nodiscard]] SystemConfig two_die_system_config();

}  // namespace brightsi::core

#endif  // BRIGHTSI_CORE_SYSTEM_CONFIG_H
