#include "core/binfile.h"

#include <array>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace brightsi::core {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& detail) {
  throw std::runtime_error(what + ": " + detail);
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_bytes(std::string& out, std::string_view bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

std::string make_binfile_header(std::string_view magic, std::uint32_t format_version,
                                std::uint64_t salt) {
  if (magic.size() != kBinfileMagicBytes) {
    throw std::logic_error("binfile magic must be exactly 8 bytes");
  }
  std::string header;
  header.reserve(kBinfileMagicBytes + 12);
  header.append(magic);
  put_u32(header, format_version);
  put_u64(header, salt);
  return header;
}

void put_record(std::string& out, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_u32(out, crc32(payload));
}

void ByteReader::require(std::size_t n, const char* field) const {
  if (remaining() < n) {
    fail(what_, std::string("truncated file (need ") + std::to_string(n) +
                    " more bytes for " + field + ", have " +
                    std::to_string(remaining()) + " at offset " + std::to_string(pos_) +
                    ")");
  }
}

std::uint8_t ByteReader::u8() {
  require(1, "u8");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  require(4, "u32");
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_++])) << shift;
  }
  return value;
}

std::uint64_t ByteReader::u64() {
  require(8, "u64");
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++])) << shift;
  }
  return value;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::bytes() {
  const std::uint32_t length = u32();
  require(length, "byte string");
  std::string value(data_.substr(pos_, length));
  pos_ += length;
  return value;
}

std::string_view ByteReader::raw(std::size_t n) {
  require(n, "raw bytes");
  const std::string_view slice = data_.substr(pos_, n);
  pos_ += n;
  return slice;
}

BinfileHeader read_binfile_header(ByteReader& in, std::string_view magic,
                                  std::uint32_t expected_version) {
  in.require(kBinfileMagicBytes + 12, "file header");
  const std::string_view found = in.raw(kBinfileMagicBytes);
  if (found != magic) {
    fail(in.what(), "not a " + std::string(magic) + " file (bad magic)");
  }
  BinfileHeader header;
  header.format_version = in.u32();
  if (header.format_version != expected_version) {
    fail(in.what(), "format version " + std::to_string(header.format_version) +
                        ", expected " + std::to_string(expected_version) +
                        " — written by an incompatible version, refusing to read");
  }
  header.salt = in.u64();
  return header;
}

RecordStatus read_record(ByteReader& in, std::string_view& payload) {
  // A frame that runs past end-of-buffer is a torn tail write (the process
  // died mid-append); report it instead of throwing so the caller can drop
  // just that record.
  if (in.remaining() < 4) {
    return RecordStatus::kTruncated;
  }
  const std::uint32_t length = in.u32();
  if (in.remaining() < static_cast<std::size_t>(length) + 4) {
    return RecordStatus::kTruncated;
  }
  payload = in.raw(length);
  const std::uint32_t stored_crc = in.u32();
  const std::uint32_t computed_crc = crc32(payload);
  if (stored_crc != computed_crc) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "corrupt record (crc mismatch: stored %08x, computed %08x)", stored_crc,
                  computed_crc);
    fail(in.what(), detail);
  }
  return RecordStatus::kOk;
}

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    fail(path, "cannot open file for reading");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) {
    fail(path, "read error");
  }
  return std::move(buffer).str();
}

void write_file_bytes(const std::string& path, std::string_view bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    fail(path, "cannot open file for writing");
  }
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) {
    fail(path, "write error");
  }
}

}  // namespace brightsi::core
