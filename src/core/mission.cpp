#include "core/mission.h"

#include <cmath>
#include <memory>

#include "electrochem/constants.h"
#include "flowcell/cell_array.h"
#include "numerics/contracts.h"
#include "numerics/root_finding.h"
#include "pdn/vrm.h"
#include "thermal/solve_context.h"

namespace brightsi::core {

namespace ec = brightsi::electrochem;
namespace fc = brightsi::flowcell;
namespace th = brightsi::thermal;

void MissionConfig::validate() const {
  system.validate();
  reservoir.validate();
  ensure(initial_soc > 0.0 && initial_soc < 1.0, "initial SOC in (0, 1)");
  ensure_positive(dt_s, "mission step");
  ensure_positive(soc_rebuild_threshold, "SOC rebuild threshold");
  ensure(workload.total_duration_s() > 0.0, "mission needs a workload");
}

namespace {

/// Operating point of the array against a constant-power rail demand, with
/// a simple 3-point axial temperature profile. Returns {V, I, ok}.
struct BusPoint {
  double voltage_v = 0.0;
  double current_a = 0.0;
  bool ok = false;
};

BusPoint solve_bus(const fc::FlowCellArray& array, const pdn::VrmSpec& vrm,
                   double rail_power_w, double inlet_k, double outlet_k) {
  const std::vector<double> profile = {inlet_k, (inlet_k + outlet_k) / 2.0, outlet_k};
  const double input_power = rail_power_w / vrm.efficiency;
  const double ocv = array.open_circuit_voltage();

  auto surplus = [&](double v) {
    return v * array.current_at_voltage(v, profile) - input_power;
  };
  BusPoint point;
  const double v_hi = ocv - 1e-3;
  if (v_hi <= 0.3) {
    return point;  // reservoir effectively dead
  }
  if (surplus(v_hi) >= 0.0) {
    point.voltage_v = v_hi;
  } else {
    double v_lo = 0.0;
    for (double v = v_hi - 0.05; v >= 0.3; v -= 0.05) {
      if (surplus(v) >= 0.0) {
        v_lo = v;
        break;
      }
    }
    if (v_lo == 0.0) {
      return point;  // demand exceeds capability
    }
    point.voltage_v =
        numerics::find_root_brent(surplus, v_lo, v_hi, 1e-5, 1e-3 * input_power, 64).root;
  }
  point.current_a = array.current_at_voltage(point.voltage_v, profile);
  point.ok = point.voltage_v >= vrm.min_input_voltage_v &&
             point.voltage_v <= vrm.max_input_voltage_v;
  return point;
}

}  // namespace

MissionResult run_mission(const MissionConfig& config) {
  config.validate();
  const SystemConfig& sys = config.system;

  // Thermal model shared across the mission; one solve context carries the
  // assembled operator and warm starts across every transient step.
  const chip::Floorplan reference_floorplan = chip::make_power7_floorplan(sys.power_spec);
  th::ThermalModel thermal(sys.stack, reference_floorplan.die_width(),
                           reference_floorplan.die_height(), sys.thermal_grid);
  th::ThermalSolveContext thermal_context(thermal);
  th::OperatingPoint op;
  op.total_flow_m3_per_s = sys.array_spec.total_flow_m3_per_s;
  op.inlet_temperature_k = sys.array_spec.inlet_temperature_k;
  op.coolant.thermal_conductivity_w_per_m_k =
      sys.chemistry.electrolyte.thermal_conductivity_w_per_m_k;
  op.coolant.volumetric_heat_capacity_j_per_m3_k =
      sys.chemistry.electrolyte.volumetric_heat_capacity_j_per_m3_k;
  op.coolant.density_kg_per_m3 =
      sys.chemistry.electrolyte.density_kg_per_m3.at(op.inlet_temperature_k);
  op.coolant.dynamic_viscosity_pa_s =
      sys.chemistry.electrolyte.dynamic_viscosity_pa_s.at(op.inlet_temperature_k);

  // Reservoir seeded with the system chemistry as the template.
  ec::ReservoirSpec tank_spec = config.reservoir;
  tank_spec.chemistry = sys.chemistry;
  ec::ElectrolyteReservoir reservoir(tank_spec, config.initial_soc);

  // Array rebuilt lazily as the SOC drifts.
  double array_soc = reservoir.state_of_charge();
  auto array = std::make_unique<fc::FlowCellArray>(sys.array_spec,
                                                   reservoir.chemistry_at_soc(), sys.fvm);

  MissionResult result;
  auto state = thermal.uniform_state(op.inlet_temperature_k);
  const int steps = static_cast<int>(config.workload.total_duration_s() / config.dt_s);
  result.samples.reserve(static_cast<std::size_t>(steps));

  for (int step = 0; step < steps; ++step) {
    const double t = (step + 0.5) * config.dt_s;
    const chip::WorkloadPhase& phase = config.workload.phase_at(t);
    const chip::Floorplan floorplan = chip::apply_phase(sys.power_spec, phase);

    const th::ThermalSolution sol =
        thermal_context.step_transient(state, floorplan, op, config.dt_s);
    state = sol.temperature_k;
    double outlet_mean = op.inlet_temperature_k;
    if (!sol.channel_outlet_k.empty()) {
      outlet_mean = 0.0;
      for (const double v : sol.channel_outlet_k) {
        outlet_mean += v;
      }
      outlet_mean /= static_cast<double>(sol.channel_outlet_k.size());
    }

    // Refresh the electrochemical model when the tanks drifted enough.
    if (std::abs(reservoir.state_of_charge() - array_soc) > config.soc_rebuild_threshold) {
      array_soc = reservoir.state_of_charge();
      array = std::make_unique<fc::FlowCellArray>(sys.array_spec,
                                                  reservoir.chemistry_at(array_soc), sys.fvm);
    }

    const BusPoint bus = solve_bus(*array, sys.vrm_spec, floorplan.cache_power(),
                                   op.inlet_temperature_k, outlet_mean);
    if (bus.ok) {
      reservoir.discharge(bus.current_a, config.dt_s);
      result.energy_delivered_j += bus.voltage_v * bus.current_a * config.dt_s;
    } else {
      result.supply_always_ok = false;
    }

    MissionSample sample;
    sample.time_s = (step + 1) * config.dt_s;
    sample.phase = phase.name;
    sample.peak_temperature_c =
        ec::constants::kelvin_to_celsius(sol.peak_temperature_k);
    sample.mean_outlet_c = ec::constants::kelvin_to_celsius(outlet_mean);
    sample.state_of_charge = reservoir.state_of_charge();
    sample.bus_voltage_v = bus.voltage_v;
    sample.bus_current_a = bus.current_a;
    sample.supply_ok = bus.ok;
    result.max_peak_temperature_c =
        std::max(result.max_peak_temperature_c, sample.peak_temperature_c);
    result.samples.push_back(std::move(sample));
  }
  result.final_soc = reservoir.state_of_charge();
  return result;
}

}  // namespace brightsi::core
