#include "core/mission.h"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/binfile.h"
#include "electrochem/constants.h"
#include "flowcell/cell_array.h"
#include "numerics/contracts.h"
#include "numerics/root_finding.h"
#include "pdn/vrm.h"
#include "thermal/transient.h"

namespace brightsi::core {

namespace ec = brightsi::electrochem;
namespace fc = brightsi::flowcell;
namespace th = brightsi::thermal;

void MissionConfig::validate() const {
  system.validate();
  reservoir.validate();
  ensure(initial_soc > 0.0 && initial_soc < 1.0, "initial SOC in (0, 1)");
  ensure_positive(dt_s, "mission step");
  ensure_positive(soc_rebuild_threshold, "SOC rebuild threshold");
  ensure(sample_stride >= 1, "mission sample stride must be >= 1");
  ensure(workload.total_duration_s() > 0.0, "mission needs a workload");
  ensure(dt_s <= workload.total_duration_s(),
         "mission step exceeds the workload duration (the mission would record nothing)");
}

namespace {

/// Operating point of the array against a constant-power rail demand, with
/// a simple 3-point axial temperature profile. Returns {V, I, ok}.
struct BusPoint {
  double voltage_v = 0.0;
  double current_a = 0.0;
  bool ok = false;
};

BusPoint solve_bus(const fc::FlowCellArray& array, const pdn::VrmSpec& vrm,
                   double rail_power_w, double inlet_k, double outlet_k) {
  const std::vector<double> profile = {inlet_k, (inlet_k + outlet_k) / 2.0, outlet_k};
  const double input_power = rail_power_w / vrm.efficiency;
  const double ocv = array.open_circuit_voltage();

  auto surplus = [&](double v) {
    return v * array.current_at_voltage(v, profile) - input_power;
  };
  BusPoint point;
  const double v_hi = ocv - 1e-3;
  if (v_hi <= 0.3) {
    return point;  // reservoir effectively dead
  }
  if (surplus(v_hi) >= 0.0) {
    point.voltage_v = v_hi;
  } else {
    double v_lo = 0.0;
    for (double v = v_hi - 0.05; v >= 0.3; v -= 0.05) {
      if (surplus(v) >= 0.0) {
        v_lo = v;
        break;
      }
    }
    if (v_lo == 0.0) {
      return point;  // demand exceeds capability
    }
    point.voltage_v =
        numerics::find_root_brent(surplus, v_lo, v_hi, 1e-5, 1e-3 * input_power, 64).root;
  }
  point.current_a = array.current_at_voltage(point.voltage_v, profile);
  point.ok = point.voltage_v >= vrm.min_input_voltage_v &&
             point.voltage_v <= vrm.max_input_voltage_v;
  return point;
}

}  // namespace

MissionResult run_mission(const MissionConfig& config) {
  return run_mission(config, nullptr, nullptr);
}

MissionResult run_mission(const MissionConfig& config,
                          std::shared_ptr<const thermal::ThermalModel> thermal_model,
                          const numerics::Grid3<double>* initial_thermal_state,
                          MissionThermalTrajectory* record,
                          const MissionThermalTrajectory* replay) {
  config.validate();
  ensure(record == nullptr || replay == nullptr,
         "run_mission: record and replay are mutually exclusive");
  const SystemConfig& sys = config.system;
  const th::OperatingPoint op = sys.thermal_operating_point();

  // Reservoir seeded with the system chemistry as the template.
  ec::ReservoirSpec tank_spec = config.reservoir;
  tank_spec.chemistry = sys.chemistry;
  ec::ElectrolyteReservoir reservoir(tank_spec, config.initial_soc);

  // The electrochemistry sees only the bottom channel layer's share of the
  // pump total when interlayer cooling splits the flow (bitwise the
  // configured spec for single-layer stacks). On replay the recorded split
  // is used, so no thermal model is needed at all.
  fc::ArraySpec electro_spec = sys.array_spec;
  double electro_flow_override = replay != nullptr ? replay->electro_flow_m3_per_s : 0.0;

  MissionResult result;

  // The electrochemical half of one mission step — shared verbatim between
  // the live engine callback and the trajectory replay loop, which is what
  // makes replayed results bit-identical to a full run.
  std::unique_ptr<fc::FlowCellArray> array;
  double array_soc = reservoir.state_of_charge();
  auto process_step = [&](const MissionThermalStep& step) {
    // Refresh the electrochemical model when the tanks drifted enough.
    if (std::abs(reservoir.state_of_charge() - array_soc) > config.soc_rebuild_threshold) {
      array_soc = reservoir.state_of_charge();
      array = std::make_unique<fc::FlowCellArray>(electro_spec,
                                                  reservoir.chemistry_at(array_soc), sys.fvm);
    }

    const BusPoint bus = solve_bus(*array, sys.vrm_spec, step.rail_power_w,
                                   op.inlet_temperature_k, step.mean_outlet_k);
    if (bus.ok) {
      reservoir.discharge(bus.current_a, step.dt_s);
      result.energy_delivered_j += bus.voltage_v * bus.current_a * step.dt_s;
    } else {
      result.supply_always_ok = false;
    }

    const double peak_c = ec::constants::kelvin_to_celsius(step.peak_temperature_k);
    result.max_peak_temperature_c = std::max(result.max_peak_temperature_c, peak_c);
    result.final_soc = reservoir.state_of_charge();

    if (!step.sampled) {
      return;
    }
    MissionSample sample;
    sample.time_s = step.t_end_s;
    sample.dt_s = step.dt_s;
    sample.phase = step.phase;
    sample.peak_temperature_c = peak_c;
    sample.mean_outlet_c = ec::constants::kelvin_to_celsius(step.mean_outlet_k);
    sample.state_of_charge = reservoir.state_of_charge();
    sample.bus_voltage_v = bus.voltage_v;
    sample.bus_current_a = bus.current_a;
    sample.supply_ok = bus.ok;
    result.samples.push_back(std::move(sample));
  };

  if (replay != nullptr) {
    if (electro_flow_override > 0.0) {
      electro_spec.total_flow_m3_per_s = electro_flow_override;
    }
    array = std::make_unique<fc::FlowCellArray>(electro_spec, reservoir.chemistry_at_soc(),
                                                sys.fvm);
    result.samples.reserve(replay->steps.size());
    for (const MissionThermalStep& step : replay->steps) {
      process_step(step);
    }
    result.final_state = replay->final_state;
    result.steps = replay->engine_steps;
    result.thermal_iterations = replay->thermal_iterations;
    result.thermal_assembly_time_s = replay->thermal_assembly_time_s;
    result.thermal_setup_time_s = replay->thermal_setup_time_s;
    result.thermal_solve_time_s = replay->thermal_solve_time_s;
    result.rom_steps = replay->rom_steps;
    result.rom_fallbacks = replay->rom_fallbacks;
    result.rom_basis_size = replay->rom_basis_size;
    result.rom_build_time_s = replay->rom_build_time_s;
    result.rom_max_bound_k = replay->rom_max_bound_k;
    result.rom_cumulative_bound_k = replay->rom_cumulative_bound_k;
    return result;
  }

  // Thermal model shared across the mission (built here unless the caller
  // hands one in, e.g. the sweep's per-worker cache); the transient engine
  // carries one solve context across every step.
  const chip::Floorplan reference_floorplan = chip::make_power7_floorplan(sys.power_spec);
  if (thermal_model == nullptr) {
    thermal_model = std::make_shared<const th::ThermalModel>(
        sys.stack, reference_floorplan.die_width(), reference_floorplan.die_height(),
        sys.thermal_grid);
  } else {
    ensure(thermal_model->stack() == sys.stack &&
               thermal_model->settings() == sys.thermal_grid,
           "run_mission: shared thermal model does not match the system config");
  }
  if (thermal_model->channel_layer_count() > 1) {
    electro_flow_override = thermal_model->layer_flow_split(op).front();
    electro_spec.total_flow_m3_per_s = electro_flow_override;
  }
  array = std::make_unique<fc::FlowCellArray>(electro_spec, reservoir.chemistry_at_soc(),
                                              sys.fvm);

  th::TransientEngineOptions engine_options;
  engine_options.schedule.dt_s = config.dt_s;
  engine_options.schedule.align_phase_boundaries = config.align_phase_boundaries;
  engine_options.sample_stride = config.sample_stride;
  engine_options.initial_state = initial_thermal_state;
  engine_options.backend = config.transient_backend;
  engine_options.rom = config.rom;
  for (const chip::Power7PowerSpec& upper : sys.upper_die_power) {
    engine_options.upper_die_floorplans.push_back(chip::make_power7_floorplan(upper));
  }
  th::TransientEngine engine(*thermal_model, op, engine_options);

  result.samples.reserve(
      static_cast<std::size_t>(config.workload.total_duration_s() / config.dt_s) /
          static_cast<std::size_t>(config.sample_stride) +
      2);

  // The floorplan hook runs right before each solve; stash the rail demand
  // so the step callback does not rebuild the floorplan.
  double rail_power_w = 0.0;
  auto floorplan_for = [&](const chip::WorkloadPhase& phase, const th::TransientStep&) {
    chip::Floorplan floorplan = chip::apply_phase(sys.power_spec, phase);
    rail_power_w = floorplan.cache_power();
    return floorplan;
  };

  engine.run(config.workload, floorplan_for, [&](const th::TransientEngine::StepView& view) {
    MissionThermalStep step;
    step.t_end_s = view.step.t_end_s;
    step.dt_s = view.step.dt_s();
    step.phase = view.phase.name;
    step.rail_power_w = rail_power_w;
    step.peak_temperature_k = view.solution.peak_temperature_k;
    step.mean_outlet_k = view.mean_outlet_k;
    step.sampled = view.sampled;
    process_step(step);
    if (record != nullptr) {
      record->steps.push_back(std::move(step));
    }
  });

  result.final_state = engine.take_state();
  result.steps = engine.steps_taken();
  const th::ThermalSolveContext::Stats& stats = engine.thermal_stats();
  result.thermal_iterations = stats.iterations;
  result.thermal_assembly_time_s = stats.assembly_time_s;
  result.thermal_setup_time_s = stats.precond_setup_time_s;
  result.thermal_solve_time_s = stats.solve_time_s;
  if (engine.rom() != nullptr) {
    const th::RomStats& rom = engine.rom()->stats();
    result.rom_steps = rom.rom_steps;
    result.rom_fallbacks = rom.full_steps;
    result.rom_basis_size = rom.basis_size;
    result.rom_build_time_s = rom.build_time_s;
    result.rom_max_bound_k = rom.max_accepted_bound_k;
    result.rom_cumulative_bound_k = rom.cumulative_bound_k;
  }
  if (record != nullptr) {
    record->final_state = result.final_state;
    record->electro_flow_m3_per_s = electro_flow_override;
    record->engine_steps = result.steps;
    record->thermal_iterations = result.thermal_iterations;
    record->thermal_assembly_time_s = result.thermal_assembly_time_s;
    record->thermal_setup_time_s = result.thermal_setup_time_s;
    record->thermal_solve_time_s = result.thermal_solve_time_s;
    record->rom_steps = result.rom_steps;
    record->rom_fallbacks = result.rom_fallbacks;
    record->rom_basis_size = result.rom_basis_size;
    record->rom_build_time_s = result.rom_build_time_s;
    record->rom_max_bound_k = result.rom_max_bound_k;
    record->rom_cumulative_bound_k = result.rom_cumulative_bound_k;
  }
  return result;
}

namespace {

constexpr char kCheckpointMagic[] = "BSICKPT1";
constexpr std::uint32_t kCheckpointFormatVersion = 1;

}  // namespace

void save_mission_checkpoint(const std::string& path, const numerics::Grid3<double>& state,
                             double soc) {
  ensure(state.size() > 0, "mission checkpoint needs a non-empty thermal field");
  std::string out = make_binfile_header(kCheckpointMagic, kCheckpointFormatVersion,
                                        /*salt=*/0);
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(state.nx()));
  put_u32(payload, static_cast<std::uint32_t>(state.ny()));
  put_u32(payload, static_cast<std::uint32_t>(state.nz()));
  put_f64(payload, soc);
  for (const double value : state.data()) {
    put_f64(payload, value);
  }
  put_record(out, payload);
  write_file_bytes(path, out);
}

MissionCheckpoint load_mission_checkpoint(const std::string& path) {
  const std::string bytes = read_file_bytes(path);
  ByteReader reader(bytes, "mission checkpoint " + path);
  (void)read_binfile_header(reader, kCheckpointMagic, kCheckpointFormatVersion);
  std::string_view payload;
  if (read_record(reader, payload) != RecordStatus::kOk) {
    throw std::runtime_error("mission checkpoint " + path + ": truncated record");
  }
  ByteReader body(payload, "mission checkpoint " + path);
  const std::uint32_t nx = body.u32();
  const std::uint32_t ny = body.u32();
  const std::uint32_t nz = body.u32();
  MissionCheckpoint checkpoint;
  checkpoint.soc = body.f64();
  ensure(nx > 0 && ny > 0 && nz > 0 && static_cast<std::uint64_t>(nx) * ny * nz <= (1u << 28),
         "mission checkpoint " + path + ": implausible grid dimensions");
  checkpoint.state = numerics::Grid3<double>(static_cast<int>(nx), static_cast<int>(ny),
                                             static_cast<int>(nz));
  body.require(checkpoint.state.size() * sizeof(double), "thermal field");
  for (double& value : checkpoint.state.data()) {
    value = body.f64();
  }
  return checkpoint;
}

}  // namespace brightsi::core
