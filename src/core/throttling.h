// Bright-silicon governor: how much of the compute can run, given thermal
// and supply-integrity constraints?
//
// The paper's motivation (Section I) is that conventional power delivery
// and cooling force cores dark. This module quantifies it: a bisection on
// the core activity factor finds the largest sustained activity that keeps
// (a) the die below a temperature limit and (b) the supervised rail above
// its droop limit. Comparing the integrated microfluidic package against a
// conventional air-cooled, edge-fed package yields the bright-vs-dark
// ablation (EXPERIMENTS.md E10).
#ifndef BRIGHTSI_CORE_THROTTLING_H
#define BRIGHTSI_CORE_THROTTLING_H

#include <functional>

#include "chip/power7.h"
#include "pdn/power_grid.h"
#include "thermal/model.h"

namespace brightsi::core {

/// Operating constraints of the governor.
struct ThrottleConstraints {
  double max_junction_c = 85.0;   ///< thermal throttle point
  double min_rail_voltage_v = 0.95;  ///< droop limit on the supervised rail
};

/// Environment handed to the governor.
struct ThrottleEnvironment {
  const thermal::ThermalModel* thermal_model = nullptr;
  thermal::OperatingPoint thermal_op;
  const pdn::PowerGridSpec* grid_spec = nullptr;      ///< supervised rail
  std::vector<pdn::VrmTap> taps;
  chip::Power7PowerSpec power_spec;                   ///< at activity 1.0
  /// Which blocks the supervised rail feeds (default: every block — the
  /// conventional core rail; the integrated scenario supervises caches).
  std::function<bool(const chip::Block&)> rail_filter;
};

/// Result of the activity search.
struct ThrottleResult {
  double max_activity = 0.0;         ///< largest feasible core activity in [0, 1]
  double peak_temperature_c = 0.0;   ///< at that activity
  double min_rail_voltage_v = 0.0;
  bool thermally_limited = false;    ///< binding constraint
  bool voltage_limited = false;
  double bright_power_w = 0.0;       ///< total chip power at max_activity
};

/// Bisects core activity in [0, 1] to the feasibility boundary (tolerance
/// `activity_tolerance`). Activity scales the core power density only
/// (caches/logic stay at spec), mirroring DVFS on the compute clusters.
[[nodiscard]] ThrottleResult find_max_core_activity(const ThrottleEnvironment& env,
                                                    const ThrottleConstraints& constraints,
                                                    double activity_tolerance = 0.01);

}  // namespace brightsi::core

#endif  // BRIGHTSI_CORE_THROTTLING_H
