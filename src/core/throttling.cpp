#include "core/throttling.h"

#include <cmath>

#include "electrochem/constants.h"
#include "numerics/contracts.h"
#include "thermal/solve_context.h"

namespace brightsi::core {
namespace {

struct Evaluation {
  double peak_c = 0.0;
  double min_rail_v = 0.0;
  bool feasible = false;
};

// The bisection re-solves the same operator at slightly different power
// maps, so one solve context is carried across evaluations: the matrix
// pattern, ILU(0) storage and Krylov workspace are reused and each solve
// warm-starts from the previous activity's field.
Evaluation evaluate_activity(thermal::ThermalSolveContext& thermal_context,
                             const ThrottleEnvironment& env,
                             const ThrottleConstraints& constraints, double activity) {
  chip::Power7PowerSpec spec = env.power_spec;
  spec.core_w_per_cm2 *= activity;
  const chip::Floorplan floorplan = chip::make_power7_floorplan(spec);

  Evaluation eval;
  const thermal::ThermalSolution thermal =
      thermal_context.solve_steady(floorplan, env.thermal_op);
  eval.peak_c = electrochem::constants::kelvin_to_celsius(thermal.peak_temperature_k);

  pdn::PowerGrid grid(*env.grid_spec, floorplan,
                      env.rail_filter ? env.rail_filter
                                      : [](const chip::Block&) { return true; });
  const pdn::PowerGridSolution rail = grid.solve(env.taps);
  eval.min_rail_v = rail.min_voltage_v;

  eval.feasible = eval.peak_c <= constraints.max_junction_c &&
                  eval.min_rail_v >= constraints.min_rail_voltage_v;
  return eval;
}

}  // namespace

ThrottleResult find_max_core_activity(const ThrottleEnvironment& env,
                                      const ThrottleConstraints& constraints,
                                      double activity_tolerance) {
  ensure(env.thermal_model != nullptr, "throttle environment needs a thermal model");
  ensure(env.grid_spec != nullptr, "throttle environment needs a grid spec");
  ensure(!env.taps.empty(), "throttle environment needs supply taps");
  ensure_positive(activity_tolerance, "activity tolerance");

  ThrottleResult result;
  thermal::ThermalSolveContext thermal_context(*env.thermal_model);

  Evaluation at_full = evaluate_activity(thermal_context, env, constraints, 1.0);
  if (at_full.feasible) {
    result.max_activity = 1.0;
    result.peak_temperature_c = at_full.peak_c;
    result.min_rail_voltage_v = at_full.min_rail_v;
  } else {
    double lo = 0.0;
    double hi = 1.0;
    Evaluation at_best{};
    while (hi - lo > activity_tolerance) {
      const double mid = 0.5 * (lo + hi);
      const Evaluation eval = evaluate_activity(thermal_context, env, constraints, mid);
      if (eval.feasible) {
        lo = mid;
        at_best = eval;
      } else {
        hi = mid;
      }
    }
    result.max_activity = lo;
    result.peak_temperature_c = at_best.peak_c;
    result.min_rail_voltage_v = at_best.min_rail_v;
  }

  // Identify the binding constraint just above the boundary.
  const Evaluation above = evaluate_activity(
      thermal_context, env, constraints,
      std::min(1.0, result.max_activity + 2 * activity_tolerance));
  result.thermally_limited = above.peak_c > constraints.max_junction_c;
  result.voltage_limited = above.min_rail_v < constraints.min_rail_voltage_v;

  chip::Power7PowerSpec spec = env.power_spec;
  spec.core_w_per_cm2 *= result.max_activity;
  result.bright_power_w = chip::make_power7_floorplan(spec).total_power();
  return result;
}

}  // namespace brightsi::core
