// Plain-text reporting helpers shared by the benches and examples:
// fixed-width tables, coarse ASCII heat/voltage maps and CSV emitters for
// the figures the paper plots.
#ifndef BRIGHTSI_CORE_REPORT_H
#define BRIGHTSI_CORE_REPORT_H

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "numerics/grid.h"

namespace brightsi::core {

/// Renders `field` as a coarse ASCII map (down-sampled to at most
/// `max_cols` x `max_rows`), annotated with the value range. Row 0 of the
/// grid prints at the bottom (die coordinates). `unit` labels the legend.
void print_ascii_map(std::ostream& os, const numerics::Grid2<double>& field,
                     const std::string& title, const std::string& unit, int max_cols = 64,
                     int max_rows = 24);

/// Down-samples a field by box-averaging into an at-most max_cols x
/// max_rows grid (used by print_ascii_map; exposed for CSV emitters).
[[nodiscard]] numerics::Grid2<double> downsample(const numerics::Grid2<double>& field,
                                                 int max_cols, int max_rows);

/// Writes an (x, y, value) CSV of a field with physical coordinates.
void write_field_csv(std::ostream& os, const numerics::Grid2<double>& field, double width_m,
                     double height_m);

/// Writes series columns: header then rows.
void write_series_csv(std::ostream& os, const std::vector<std::string>& headers,
                      const std::vector<std::vector<double>>& columns);

/// Writes a CSV of pre-formatted string cells (header row then data rows).
/// Cells containing commas, quotes or newlines are quoted per RFC 4180.
void write_table_csv(std::ostream& os, const std::vector<std::string>& headers,
                     const std::vector<std::vector<std::string>>& rows);

/// Escapes `text` for embedding inside a JSON string literal (no quotes
/// added).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Shortest decimal representation that parses back to exactly `value` —
/// the cell formatting shared by the sweep/opt emitters and the golden
/// figure tables.
[[nodiscard]] std::string format_shortest(double value);

/// Writes a JSON array of records: one object per row keyed by `headers`.
/// Cells flagged in `numeric` are emitted raw (caller guarantees they are
/// valid JSON numbers, or empty — emitted as null); others are quoted and
/// escaped.
void write_records_json(std::ostream& os, const std::vector<std::string>& headers,
                        const std::vector<bool>& numeric,
                        const std::vector<std::vector<std::string>>& rows);

/// Writes a results artifact to `results/<name>` (creating the directory
/// next to the working directory), using `writer` to produce the content.
/// Returns the path written, or an empty string if the filesystem refused
/// (benches treat artifacts as best-effort).
std::string write_results_file(const std::string& name,
                               const std::function<void(std::ostream&)>& writer);

/// CLI sink helper shared by the tools/ drivers: writes through `writer`
/// to stdout when `path` is "-", else to the file at `path` (with a
/// "wrote <what> to <path>" note on stderr). Returns false — after an
/// error message — when the file cannot be opened.
bool emit_to_sink(const std::string& path, const char* what,
                  const std::function<void(std::ostream&)>& writer);

/// A minimal fixed-width table printer.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// Formats a double with `precision` significant decimals.
  [[nodiscard]] static std::string num(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace brightsi::core

#endif  // BRIGHTSI_CORE_REPORT_H
