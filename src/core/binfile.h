// Shared framing for the repo's binary files: the sweep result store, the
// sweep journal and mission checkpoint files all open with one versioned
// header (8-byte magic + u32 format version + u64 scenario-hash salt) and
// carry their payloads in u32-length + crc32 framed records.
//
// Everything is little-endian and byte-exact: doubles travel as their raw
// IEEE-754 bit patterns, so a value read back is bitwise the value written
// — the foundation of the store's byte-identical merged output.
//
// Readers never exhibit UB on a damaged file: every accessor
// bounds-checks and throws std::runtime_error with a diagnostic naming
// the file and the failure (truncated / bad magic / wrong version / crc
// mismatch).
#ifndef BRIGHTSI_CORE_BINFILE_H
#define BRIGHTSI_CORE_BINFILE_H

#include <cstdint>
#include <string>
#include <string_view>

namespace brightsi::core {

/// Magic strings are exactly this long (no NUL terminator on disk).
inline constexpr std::size_t kBinfileMagicBytes = 8;

// ------------------------------------------------------------- writers
// Append little-endian primitives to a byte buffer. Buffers are written
// to disk in one piece, so a torn write can only truncate, never
// interleave.

void put_u8(std::string& out, std::uint8_t value);
void put_u32(std::string& out, std::uint32_t value);
void put_u64(std::string& out, std::uint64_t value);
/// Raw IEEE-754 bits — bitwise round-trip, including -0.0 and subnormals.
void put_f64(std::string& out, double value);
/// u32 length + payload bytes.
void put_bytes(std::string& out, std::string_view bytes);

/// The shared versioned header: magic (kBinfileMagicBytes) + u32 format
/// version + u64 salt. `magic` must be exactly kBinfileMagicBytes long.
[[nodiscard]] std::string make_binfile_header(std::string_view magic,
                                              std::uint32_t format_version,
                                              std::uint64_t salt);

/// Appends one framed record: u32 payload length, payload, u32 crc32 of
/// the payload.
void put_record(std::string& out, std::string_view payload);

// ------------------------------------------------------------- readers

/// Bounds-checked little-endian cursor over a loaded byte buffer. `what`
/// names the file in every diagnostic.
class ByteReader {
 public:
  ByteReader(std::string_view data, std::string what)
      : data_(data), what_(std::move(what)) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  /// u32 length + payload, as written by put_bytes.
  [[nodiscard]] std::string bytes();
  /// Raw slice of exactly `n` bytes.
  [[nodiscard]] std::string_view raw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] const std::string& what() const { return what_; }

  /// Throws "<what>: truncated file (...)" unless `n` more bytes exist.
  void require(std::size_t n, const char* field) const;

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  std::string what_;
};

struct BinfileHeader {
  std::uint32_t format_version = 0;
  std::uint64_t salt = 0;
};

/// Reads and validates the shared header: throws on a short buffer, a
/// magic mismatch ("not a ... file") or a format-version mismatch
/// ("written by an incompatible version").
BinfileHeader read_binfile_header(ByteReader& in, std::string_view magic,
                                  std::uint32_t expected_version);

/// Outcome of reading one framed record at the reader's position.
enum class RecordStatus {
  kOk,        ///< payload read and crc-verified
  kTruncated  ///< the frame runs past end-of-buffer (torn tail write)
};

/// Reads one framed record written by put_record. A frame that extends
/// past the end of the buffer returns kTruncated (the caller decides
/// whether a torn tail is tolerable); a complete frame whose crc does not
/// match throws "<what>: corrupt record (crc mismatch ...)".
RecordStatus read_record(ByteReader& in, std::string_view& payload);

// ----------------------------------------------------------------- misc

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// Whole file as a byte string; throws std::runtime_error when the file
/// cannot be opened or read.
[[nodiscard]] std::string read_file_bytes(const std::string& path);

/// Writes `bytes` to `path` (truncating); throws on failure.
void write_file_bytes(const std::string& path, std::string_view bytes);

}  // namespace brightsi::core

#endif  // BRIGHTSI_CORE_BINFILE_H
