// Mission simulation: the integrated system run through time.
//
// Couples every piece of the library: a WorkloadTrace drives the transient
// thermal model; the coolant outlet temperature feeds the electrochemistry;
// the cache rail draws its phase-dependent power from the flow-cell array
// through the VRMs; and the electrolyte reservoir integrates the drawn
// charge, so the state of charge (and with it the available OCV and
// current) evolves over the mission. This answers the system-level
// question behind the paper's flow-battery framing: for how long, and
// under what workloads, can the electrolyte loop actually carry the rail?
//
// Stepping goes through the shared TransientEngine (thermal/transient.h):
// phase-boundary-aligned steps that always cover the full trace duration,
// one solve context across the mission, and a final_state/final_soc
// checkpoint that seeds a resumed follow-up mission.
#ifndef BRIGHTSI_CORE_MISSION_H
#define BRIGHTSI_CORE_MISSION_H

#include <memory>
#include <string>
#include <vector>

#include "chip/workload.h"
#include "core/system_config.h"
#include "electrochem/reservoir.h"
#include "thermal/transient.h"

namespace brightsi::core {

/// Mission setup.
struct MissionConfig {
  SystemConfig system;                   ///< the integrated platform
  chip::WorkloadTrace workload;          ///< phases to run through
  electrochem::ReservoirSpec reservoir;  ///< tank sizing (chemistry ignored;
                                         ///< the system chemistry is used)
  double initial_soc = 0.95;
  double dt_s = 0.1;                     ///< nominal transient step
  /// SOC resolution for rebuilding the electrochemical model (the array is
  /// re-instantiated when the SOC moved by more than this).
  double soc_rebuild_threshold = 0.02;
  /// Record every Nth step (the final step is always recorded); reservoir
  /// and energy integration always run every step.
  int sample_stride = 1;
  /// Snap steps to workload phase edges (thermal/transient.h). Disabling
  /// runs plain dt_s steps through phase boundaries; the trace end is
  /// still covered exactly either way.
  bool align_phase_boundaries = true;
  /// Thermal stepping backend: the full-grid solve (default, bit-stable)
  /// or the certified reduced-order model (thermal/rom.h).
  thermal::TransientBackend transient_backend = thermal::TransientBackend::kFull;
  thermal::RomOptions rom;  ///< used only when transient_backend == kRom

  void validate() const;
};

/// One recorded step.
struct MissionSample {
  double time_s = 0.0;
  double dt_s = 0.0;  ///< this step's actual length (residual steps are shorter)
  std::string phase;
  double peak_temperature_c = 0.0;
  double mean_outlet_c = 0.0;
  double state_of_charge = 0.0;
  double bus_voltage_v = 0.0;
  double bus_current_a = 0.0;
  bool supply_ok = false;  ///< rail demand met within the VRM window
};

/// Whole-mission outcome.
struct MissionResult {
  std::vector<MissionSample> samples;
  double final_soc = 0.0;
  double max_peak_temperature_c = 0.0;  ///< over every step, sampled or not
  bool supply_always_ok = true;
  double energy_delivered_j = 0.0;  ///< bus-side integral of V*I dt

  /// Checkpoint: the final thermal field. With final_soc, seeds a resumed
  /// mission (pass as initial_thermal_state, set initial_soc = final_soc).
  numerics::Grid3<double> final_state;

  /// Work counters for perf reporting (bench/mission_throughput).
  long long steps = 0;
  long long thermal_iterations = 0;      ///< BiCGSTAB iterations, summed
  double thermal_assembly_time_s = 0.0;  ///< coefficient fill + CSR refill
  double thermal_setup_time_s = 0.0;     ///< preconditioner factor/hierarchy refresh
  double thermal_solve_time_s = 0.0;     ///< time iterating inside the Krylov solver

  // Reduced-order backend counters (all zero on the full backend) — the
  // certificate trail surfaced into BENCH_mission.json and sweep rows.
  long long rom_steps = 0;            ///< steps served by the reduced solve
  long long rom_fallbacks = 0;        ///< full-solve fallbacks (basis enrichments)
  int rom_basis_size = 0;             ///< largest basis across step lengths
  double rom_build_time_s = 0.0;      ///< operator assembly + basis enrichment
  double rom_max_bound_k = 0.0;       ///< worst accepted certified error bound
  double rom_cumulative_bound_k = 0.0;  ///< trajectory-accumulated bound
};

/// One step of a recorded mission thermal trajectory: everything the
/// electrochemical side of the mission loop consumes from the thermal side.
struct MissionThermalStep {
  double t_end_s = 0.0;
  double dt_s = 0.0;
  std::string phase;
  double rail_power_w = 0.0;        ///< cache-rail demand of this step's phase
  double peak_temperature_k = 0.0;
  double mean_outlet_k = 0.0;
  bool sampled = false;             ///< this step produced a MissionSample
};

/// A mission's full thermal trajectory. The thermal side of run_mission is
/// a pure function of the workload and the thermal/power configuration —
/// it never reads the reservoir or the array — so a recorded trajectory
/// replays bit-identically for any electrochemical variation (tank size,
/// initial SOC) of the same mission. The sweep's per-worker trajectory
/// cache (sweep/system_cache.h) exploits exactly this.
struct MissionThermalTrajectory {
  std::vector<MissionThermalStep> steps;
  numerics::Grid3<double> final_state;  ///< thermal field after the last step
  /// Bottom channel layer's flow share for the electrochemistry when
  /// interlayer cooling splits the pump total; 0 = use the configured spec.
  double electro_flow_m3_per_s = 0.0;
  long long engine_steps = 0;

  // Work counters of the recorded run, copied into replayed results so
  // perf reports stay meaningful (timings are the recording run's).
  long long thermal_iterations = 0;
  double thermal_assembly_time_s = 0.0;
  double thermal_setup_time_s = 0.0;
  double thermal_solve_time_s = 0.0;
  long long rom_steps = 0;
  long long rom_fallbacks = 0;
  int rom_basis_size = 0;
  double rom_build_time_s = 0.0;
  double rom_max_bound_k = 0.0;
  double rom_cumulative_bound_k = 0.0;
};

/// Runs the mission. Throws only on configuration errors; supply
/// infeasibility is reported per sample, not thrown.
[[nodiscard]] MissionResult run_mission(const MissionConfig& config);

/// As above, with an externally assembled thermal model (per-worker sweep
/// caches share one across scenarios; it must match config.system's stack
/// and grid settings) and an optional thermal-field checkpoint to resume
/// from. Either argument may be null/absent.
///
/// `record`, when non-null, captures the thermal trajectory of this run.
/// `replay`, when non-null, skips the thermal solve entirely — no thermal
/// model is built — and drives the electrochemical loop from the recorded
/// steps instead; the caller must guarantee the trajectory was recorded
/// under an identical workload and thermal/power configuration (only
/// electrochemical knobs may differ). Results are bit-identical to a full
/// run. `record` and `replay` are mutually exclusive.
[[nodiscard]] MissionResult run_mission(
    const MissionConfig& config, std::shared_ptr<const thermal::ThermalModel> thermal_model,
    const numerics::Grid3<double>* initial_thermal_state = nullptr,
    MissionThermalTrajectory* record = nullptr,
    const MissionThermalTrajectory* replay = nullptr);

/// A saved mission ending: the thermal-field checkpoint plus the final
/// state of charge — everything a follow-up mission needs to resume
/// (initial_thermal_state + initial_soc).
struct MissionCheckpoint {
  numerics::Grid3<double> state;
  double soc = 0.0;
};

/// Writes the checkpoint in the shared versioned binary framing
/// (core/binfile.h, magic "BSICKPT1"): header, then one CRC-framed record
/// of dimensions, SOC and the raw field. Throws on I/O failure.
void save_mission_checkpoint(const std::string& path, const numerics::Grid3<double>& state,
                             double soc);

/// Reads a checkpoint back. Throws on a missing/truncated/corrupt file or
/// a format-version mismatch — never returns garbage.
[[nodiscard]] MissionCheckpoint load_mission_checkpoint(const std::string& path);

}  // namespace brightsi::core

#endif  // BRIGHTSI_CORE_MISSION_H
