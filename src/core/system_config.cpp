#include "core/system_config.h"

#include "electrochem/vanadium.h"
#include "numerics/contracts.h"

namespace brightsi::core {

void SystemConfig::validate() const {
  array_spec.validate();
  chemistry.validate();
  fvm.validate();
  stack.validate();
  ensure(stack.source_layer_count() == 1 + static_cast<int>(upper_die_power.size()),
         "stack has " + std::to_string(stack.source_layer_count()) +
             " heat-source layers but the config describes " +
             std::to_string(1 + upper_die_power.size()) +
             " dies (primary + upper_die_power)");
  grid_spec.validate();
  vrm_spec.validate();
  ensure(pump_efficiency > 0.0 && pump_efficiency <= 1.0, "pump efficiency in (0, 1]");
  ensure(channel_groups > 0, "channel_groups must be positive");
  ensure(array_spec.channel_count % channel_groups == 0,
         "channel count must divide evenly into groups");
  ensure(max_cosim_iterations >= 1, "max_cosim_iterations");
  ensure_positive(temperature_tolerance_k, "temperature tolerance");
}

thermal::OperatingPoint SystemConfig::thermal_operating_point() const {
  thermal::OperatingPoint op;
  op.total_flow_m3_per_s = array_spec.total_flow_m3_per_s;
  op.inlet_temperature_k = array_spec.inlet_temperature_k;
  op.coolant.thermal_conductivity_w_per_m_k =
      chemistry.electrolyte.thermal_conductivity_w_per_m_k;
  op.coolant.volumetric_heat_capacity_j_per_m3_k =
      chemistry.electrolyte.volumetric_heat_capacity_j_per_m3_k;
  op.coolant.density_kg_per_m3 =
      chemistry.electrolyte.density_kg_per_m3.at(array_spec.inlet_temperature_k);
  op.coolant.dynamic_viscosity_pa_s =
      chemistry.electrolyte.dynamic_viscosity_pa_s.at(array_spec.inlet_temperature_k);
  return op;
}

thermal::OperatingPoint SystemConfig::loop_operating_point(
    double flow_m3_per_s, double inlet_temperature_k,
    const thermal::CoolantPropertyLaws& laws) const {
  thermal::OperatingPoint op = thermal_operating_point();
  op.total_flow_m3_per_s = flow_m3_per_s;
  op.inlet_temperature_k = inlet_temperature_k;
  op.coolant = laws.at(op.coolant, inlet_temperature_k);
  return op;
}

SystemConfig power7_system_config() {
  SystemConfig config;
  config.power_spec = chip::Power7PowerSpec{};
  config.array_spec = flowcell::power7_array_spec();
  config.chemistry = electrochem::power7_array_chemistry();
  config.stack = thermal::power7_microchannel_stack();
  config.grid_spec = pdn::PowerGridSpec{};
  config.vrm_spec = pdn::VrmSpec{};
  config.validate();
  return config;
}

SystemConfig two_die_system_config() {
  SystemConfig config = power7_system_config();
  config.stack = thermal::two_die_stack();
  config.upper_die_power = {chip::memory_die_power_spec()};
  config.validate();
  return config;
}

}  // namespace brightsi::core
