#include "core/system_config.h"

#include "electrochem/vanadium.h"
#include "numerics/contracts.h"

namespace brightsi::core {

void SystemConfig::validate() const {
  array_spec.validate();
  chemistry.validate();
  fvm.validate();
  stack.validate();
  grid_spec.validate();
  vrm_spec.validate();
  ensure(pump_efficiency > 0.0 && pump_efficiency <= 1.0, "pump efficiency in (0, 1]");
  ensure(channel_groups > 0, "channel_groups must be positive");
  ensure(array_spec.channel_count % channel_groups == 0,
         "channel count must divide evenly into groups");
  ensure(max_cosim_iterations >= 1, "max_cosim_iterations");
  ensure_positive(temperature_tolerance_k, "temperature tolerance");
}

SystemConfig power7_system_config() {
  SystemConfig config;
  config.power_spec = chip::Power7PowerSpec{};
  config.array_spec = flowcell::power7_array_spec();
  config.chemistry = electrochem::power7_array_chemistry();
  config.stack = thermal::power7_microchannel_stack();
  config.grid_spec = pdn::PowerGridSpec{};
  config.vrm_spec = pdn::VrmSpec{};
  config.validate();
  return config;
}

}  // namespace brightsi::core
