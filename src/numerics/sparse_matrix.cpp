#include "numerics/sparse_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "numerics/contracts.h"

namespace brightsi::numerics {

CsrMatrix CsrMatrix::from_triplets(int rows, int cols, const TripletList& triplets) {
  ensure(rows > 0 && cols > 0, "CsrMatrix dimensions must be positive");
  for (const Triplet& t : triplets.entries()) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      throw std::invalid_argument("CsrMatrix triplet index (" + std::to_string(t.row) + "," +
                                  std::to_string(t.col) + ") outside " + std::to_string(rows) +
                                  "x" + std::to_string(cols));
    }
    ensure_finite(t.value, "CsrMatrix triplet value");
  }

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;

  // Count entries per row, including duplicates for now.
  std::vector<int> counts(static_cast<std::size_t>(rows) + 1, 0);
  for (const Triplet& t : triplets.entries()) {
    ++counts[static_cast<std::size_t>(t.row) + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  std::vector<int> col_tmp(triplets.size());
  std::vector<double> val_tmp(triplets.size());
  {
    std::vector<int> cursor(counts.begin(), counts.end() - 1);
    for (const Triplet& t : triplets.entries()) {
      const int slot = cursor[static_cast<std::size_t>(t.row)]++;
      col_tmp[static_cast<std::size_t>(slot)] = t.col;
      val_tmp[static_cast<std::size_t>(slot)] = t.value;
    }
  }

  // Sort each row by column and merge duplicates.
  m.row_offsets_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.column_indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::vector<int> order;
  for (int r = 0; r < rows; ++r) {
    const int begin = counts[static_cast<std::size_t>(r)];
    const int end = counts[static_cast<std::size_t>(r) + 1];
    order.resize(static_cast<std::size_t>(end - begin));
    std::iota(order.begin(), order.end(), begin);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return col_tmp[static_cast<std::size_t>(a)] < col_tmp[static_cast<std::size_t>(b)]; });
    int last_col = -1;
    for (const int idx : order) {
      const int c = col_tmp[static_cast<std::size_t>(idx)];
      const double v = val_tmp[static_cast<std::size_t>(idx)];
      if (c == last_col) {
        m.values_.back() += v;
      } else {
        m.column_indices_.push_back(c);
        m.values_.push_back(v);
        last_col = c;
      }
    }
    m.row_offsets_[static_cast<std::size_t>(r) + 1] = static_cast<int>(m.values_.size());
  }
  return m;
}

void CsrMatrix::refill_from_triplets(const TripletList& triplets,
                                     std::vector<int>* slot_cache) {
  const std::vector<Triplet>& entries = triplets.entries();
  std::fill(values_.begin(), values_.end(), 0.0);

  if (slot_cache != nullptr && !slot_cache->empty()) {
    ensure(slot_cache->size() == entries.size(),
           "CsrMatrix::refill_from_triplets: slot cache does not match the triplet sequence");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      ensure_finite(entries[i].value, "CsrMatrix triplet value");
      values_[static_cast<std::size_t>((*slot_cache)[i])] += entries[i].value;
    }
    return;
  }

  if (slot_cache != nullptr) {
    slot_cache->reserve(entries.size());
  }
  for (const Triplet& t : entries) {
    if (t.row < 0 || t.row >= rows_ || t.col < 0 || t.col >= cols_) {
      throw std::invalid_argument("CsrMatrix triplet index (" + std::to_string(t.row) + "," +
                                  std::to_string(t.col) + ") outside " + std::to_string(rows_) +
                                  "x" + std::to_string(cols_));
    }
    ensure_finite(t.value, "CsrMatrix triplet value");
    const int begin = row_offsets_[static_cast<std::size_t>(t.row)];
    const int end = row_offsets_[static_cast<std::size_t>(t.row) + 1];
    const auto first = column_indices_.begin() + begin;
    const auto last = column_indices_.begin() + end;
    const auto it = std::lower_bound(first, last, t.col);
    if (it == last || *it != t.col) {
      throw std::invalid_argument("CsrMatrix::refill_from_triplets: (" + std::to_string(t.row) +
                                  "," + std::to_string(t.col) +
                                  ") is not in the sparsity pattern");
    }
    const int slot = static_cast<int>(it - column_indices_.begin());
    values_[static_cast<std::size_t>(slot)] += t.value;
    if (slot_cache != nullptr) {
      slot_cache->push_back(slot);
    }
  }
}

void CsrMatrix::copy_values_from(const CsrMatrix& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_ || other.row_offsets_ != row_offsets_ ||
      other.column_indices_ != column_indices_) {
    throw std::invalid_argument(
        "CsrMatrix::copy_values_from: source pattern differs from this matrix's");
  }
  values_ = other.values_;
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  ensure(static_cast<int>(x.size()) == cols_, "CsrMatrix::multiply: x size mismatch");
  ensure(static_cast<int>(y.size()) == rows_, "CsrMatrix::multiply: y size mismatch");
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const int begin = row_offsets_[static_cast<std::size_t>(r)];
    const int end = row_offsets_[static_cast<std::size_t>(r) + 1];
    for (int k = begin; k < end; ++k) {
      sum += values_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(column_indices_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

double CsrMatrix::residual(std::span<const double> b, std::span<const double> x,
                           std::span<double> r) const {
  ensure(static_cast<int>(b.size()) == rows_, "CsrMatrix::residual: b size mismatch");
  multiply(x, r);
  double norm_sq = 0.0;
  for (int i = 0; i < rows_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    r[idx] = b[idx] - r[idx];
    norm_sq += r[idx] * r[idx];
  }
  return std::sqrt(norm_sq);
}

std::vector<double> CsrMatrix::diagonal() const {
  ensure(rows_ == cols_, "CsrMatrix::diagonal requires a square matrix");
  std::vector<double> d(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const int begin = row_offsets_[static_cast<std::size_t>(r)];
    const int end = row_offsets_[static_cast<std::size_t>(r) + 1];
    for (int k = begin; k < end; ++k) {
      if (column_indices_[static_cast<std::size_t>(k)] == r) {
        d[static_cast<std::size_t>(r)] = values_[static_cast<std::size_t>(k)];
        break;
      }
    }
  }
  return d;
}

double CsrMatrix::at(int row, int col) const {
  ensure(row >= 0 && row < rows_ && col >= 0 && col < cols_, "CsrMatrix::at: index out of range");
  const int begin = row_offsets_[static_cast<std::size_t>(row)];
  const int end = row_offsets_[static_cast<std::size_t>(row) + 1];
  const auto first = column_indices_.begin() + begin;
  const auto last = column_indices_.begin() + end;
  const auto it = std::lower_bound(first, last, col);
  if (it != last && *it == col) {
    return values_[static_cast<std::size_t>(it - column_indices_.begin())];
  }
  return 0.0;
}

bool CsrMatrix::is_symmetric(double tolerance) const {
  if (rows_ != cols_) {
    return false;
  }
  for (int r = 0; r < rows_; ++r) {
    const int begin = row_offsets_[static_cast<std::size_t>(r)];
    const int end = row_offsets_[static_cast<std::size_t>(r) + 1];
    for (int k = begin; k < end; ++k) {
      const int c = column_indices_[static_cast<std::size_t>(k)];
      if (std::abs(values_[static_cast<std::size_t>(k)] - at(c, r)) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace brightsi::numerics
