#include "numerics/linear_solvers.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "numerics/contracts.h"

namespace brightsi::numerics {
namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a[i] * b[i];
  }
  return s;
}

double norm(std::span<const double> a) { return std::sqrt(dot(a, a)); }

// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void identity_apply(std::span<const double> r, std::span<double> z) {
  std::copy(r.begin(), r.end(), z.begin());
}

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

void KrylovWorkspace::resize(std::size_t n) {
  for (std::vector<double>* vec : {&r, &r0, &p, &v, &s, &t, &phat, &shat}) {
    vec->resize(n);
  }
}

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) {
  inverse_diagonal_ = a.diagonal();
  for (double& d : inverse_diagonal_) {
    d = (d != 0.0) ? 1.0 / d : 1.0;
  }
}

void JacobiPreconditioner::apply(std::span<const double> r, std::span<double> z) const {
  ensure(r.size() == inverse_diagonal_.size() && z.size() == r.size(),
         "JacobiPreconditioner::apply size mismatch");
  for (std::size_t i = 0; i < r.size(); ++i) {
    z[i] = r[i] * inverse_diagonal_[i];
  }
}

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a) {
  ensure(a.rows() == a.cols(), "Ilu0Preconditioner requires a square matrix");
  n_ = a.rows();
  row_offsets_ = a.row_offsets();
  column_indices_ = a.column_indices();
  diagonal_position_.assign(static_cast<std::size_t>(n_), -1);

  for (int r = 0; r < n_; ++r) {
    for (int k = row_offsets_[static_cast<std::size_t>(r)];
         k < row_offsets_[static_cast<std::size_t>(r) + 1]; ++k) {
      if (column_indices_[static_cast<std::size_t>(k)] == r) {
        diagonal_position_[static_cast<std::size_t>(r)] = k;
      }
    }
    if (diagonal_position_[static_cast<std::size_t>(r)] < 0) {
      throw std::runtime_error("Ilu0Preconditioner: structurally zero diagonal at row " +
                               std::to_string(r));
    }
  }
  factorize(a);
}

void Ilu0Preconditioner::refactor(const CsrMatrix& a) {
  if (a.rows() != n_ || a.cols() != n_ || a.non_zeros() != column_indices_.size() ||
      a.row_offsets() != row_offsets_ || a.column_indices() != column_indices_) {
    throw std::invalid_argument(
        "Ilu0Preconditioner::refactor: matrix pattern differs from the factored one");
  }
  factorize(a);
}

void Ilu0Preconditioner::factorize(const CsrMatrix& a) {
  values_ = a.values();

  // IKJ-variant ILU(0): for each row i, eliminate against previous rows k
  // that appear in i's sparsity pattern.
  position_scratch_.assign(static_cast<std::size_t>(n_), -1);
  std::vector<int>& position_of_column = position_scratch_;
  for (int i = 0; i < n_; ++i) {
    const int row_begin = row_offsets_[static_cast<std::size_t>(i)];
    const int row_end = row_offsets_[static_cast<std::size_t>(i) + 1];
    for (int k = row_begin; k < row_end; ++k) {
      position_of_column[static_cast<std::size_t>(column_indices_[static_cast<std::size_t>(k)])] = k;
    }
    for (int k = row_begin; k < row_end; ++k) {
      const int col = column_indices_[static_cast<std::size_t>(k)];
      if (col >= i) {
        break;  // columns are sorted; only strictly-lower part is eliminated
      }
      const double pivot = values_[static_cast<std::size_t>(
          diagonal_position_[static_cast<std::size_t>(col)])];
      if (pivot == 0.0) {
        throw std::runtime_error("Ilu0Preconditioner: zero pivot at row " + std::to_string(col));
      }
      const double factor = values_[static_cast<std::size_t>(k)] / pivot;
      values_[static_cast<std::size_t>(k)] = factor;
      // Subtract factor * U-part of row `col` from row i (pattern-limited).
      for (int kk = diagonal_position_[static_cast<std::size_t>(col)] + 1;
           kk < row_offsets_[static_cast<std::size_t>(col) + 1]; ++kk) {
        const int target_col = column_indices_[static_cast<std::size_t>(kk)];
        const int pos = position_of_column[static_cast<std::size_t>(target_col)];
        if (pos >= 0) {
          values_[static_cast<std::size_t>(pos)] -=
              factor * values_[static_cast<std::size_t>(kk)];
        }
      }
    }
    for (int k = row_begin; k < row_end; ++k) {
      position_of_column[static_cast<std::size_t>(column_indices_[static_cast<std::size_t>(k)])] = -1;
    }
  }
}

void Ilu0Preconditioner::apply(std::span<const double> r, std::span<double> z) const {
  ensure(static_cast<int>(r.size()) == n_ && static_cast<int>(z.size()) == n_,
         "Ilu0Preconditioner::apply size mismatch");
  // Forward solve L y = r (unit diagonal L).
  for (int i = 0; i < n_; ++i) {
    double sum = r[static_cast<std::size_t>(i)];
    for (int k = row_offsets_[static_cast<std::size_t>(i)];
         k < diagonal_position_[static_cast<std::size_t>(i)]; ++k) {
      sum -= values_[static_cast<std::size_t>(k)] *
             z[static_cast<std::size_t>(column_indices_[static_cast<std::size_t>(k)])];
    }
    z[static_cast<std::size_t>(i)] = sum;
  }
  // Backward solve U z = y.
  for (int i = n_ - 1; i >= 0; --i) {
    double sum = z[static_cast<std::size_t>(i)];
    for (int k = diagonal_position_[static_cast<std::size_t>(i)] + 1;
         k < row_offsets_[static_cast<std::size_t>(i) + 1]; ++k) {
      sum -= values_[static_cast<std::size_t>(k)] *
             z[static_cast<std::size_t>(column_indices_[static_cast<std::size_t>(k)])];
    }
    z[static_cast<std::size_t>(i)] =
        sum / values_[static_cast<std::size_t>(diagonal_position_[static_cast<std::size_t>(i)])];
  }
}

namespace {

SolverReport run_cg(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                    const Preconditioner* preconditioner, const SolverOptions& options,
                    KrylovWorkspace& ws) {
  ensure(a.rows() == a.cols(), "solve_cg requires a square matrix");
  const auto n = static_cast<std::size_t>(a.rows());
  ensure(b.size() == n && x.size() == n, "solve_cg size mismatch");

  ws.resize(n);
  std::vector<double>& r = ws.r;
  std::vector<double>& z = ws.phat;  // CG's preconditioned residual
  std::vector<double>& p = ws.p;
  std::vector<double>& ap = ws.v;  // CG's A*p
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
  }
  const double b_norm = norm(b);
  const double target = std::max(options.relative_tolerance * b_norm, options.absolute_tolerance);

  SolverReport report;
  report.residual_norm = norm(r);
  if (report.residual_norm <= target) {
    report.converged = true;
    return report;
  }

  if (preconditioner != nullptr) {
    preconditioner->apply(r, z);
  } else {
    identity_apply(r, z);
  }
  std::copy(z.begin(), z.end(), p.begin());
  double rho = dot(r, z);

  for (int it = 1; it <= options.max_iterations; ++it) {
    a.multiply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap == 0.0) {
      break;  // breakdown
    }
    const double alpha = rho / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    report.iterations = it;
    report.residual_norm = norm(r);
    if (report.residual_norm <= target) {
      report.converged = true;
      return report;
    }
    if (preconditioner != nullptr) {
      preconditioner->apply(r, z);
    } else {
      identity_apply(r, z);
    }
    const double rho_next = dot(r, z);
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = z[i] + beta * p[i];
    }
  }
  return report;
}

SolverReport run_bicgstab(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                          const Preconditioner* preconditioner, const SolverOptions& options,
                          KrylovWorkspace& ws) {
  ensure(a.rows() == a.cols(), "solve_bicgstab requires a square matrix");
  const auto n = static_cast<std::size_t>(a.rows());
  ensure(b.size() == n && x.size() == n, "solve_bicgstab size mismatch");

  ws.resize(n);
  std::vector<double>& r = ws.r;
  std::vector<double>& r0 = ws.r0;
  std::vector<double>& p = ws.p;
  std::vector<double>& v = ws.v;
  std::vector<double>& s = ws.s;
  std::vector<double>& t = ws.t;
  std::vector<double>& phat = ws.phat;
  std::vector<double>& shat = ws.shat;
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
  }
  std::copy(r.begin(), r.end(), r0.begin());

  const double b_norm = norm(b);
  const double target = std::max(options.relative_tolerance * b_norm, options.absolute_tolerance);

  SolverReport report;
  report.residual_norm = norm(r);
  if (report.residual_norm <= target) {
    report.converged = true;
    return report;
  }

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  for (int it = 1; it <= options.max_iterations; ++it) {
    const double rho_next = dot(r0, r);
    if (rho_next == 0.0) {
      break;  // breakdown
    }
    if (it == 1) {
      std::copy(r.begin(), r.end(), p.begin());
    } else {
      const double beta = (rho_next / rho) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    rho = rho_next;

    if (preconditioner != nullptr) {
      preconditioner->apply(p, phat);
    } else {
      identity_apply(p, phat);
    }
    a.multiply(phat, v);
    const double r0_v = dot(r0, v);
    if (r0_v == 0.0) {
      break;
    }
    alpha = rho / r0_v;
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = r[i] - alpha * v[i];
    }
    report.iterations = it;
    if (norm(s) <= target) {
      axpy(alpha, phat, x);
      report.residual_norm = norm(s);
      report.converged = true;
      return report;
    }

    if (preconditioner != nullptr) {
      preconditioner->apply(s, shat);
    } else {
      identity_apply(s, shat);
    }
    a.multiply(shat, t);
    const double t_t = dot(t, t);
    if (t_t == 0.0) {
      break;
    }
    omega = dot(t, s) / t_t;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    report.residual_norm = norm(r);
    if (report.residual_norm <= target) {
      report.converged = true;
      return report;
    }
    if (omega == 0.0) {
      break;
    }
  }
  return report;
}

}  // namespace

SolverReport solve_cg(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                      const Preconditioner* preconditioner, const SolverOptions& options,
                      KrylovWorkspace* workspace) {
  const auto start = std::chrono::steady_clock::now();
  KrylovWorkspace local;
  SolverReport report =
      run_cg(a, b, x, preconditioner, options, workspace != nullptr ? *workspace : local);
  report.solve_time_s = seconds_since(start);
  return report;
}

SolverReport solve_bicgstab(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                            const Preconditioner* preconditioner, const SolverOptions& options,
                            KrylovWorkspace* workspace) {
  const auto start = std::chrono::steady_clock::now();
  KrylovWorkspace local;
  SolverReport report =
      run_bicgstab(a, b, x, preconditioner, options, workspace != nullptr ? *workspace : local);
  report.solve_time_s = seconds_since(start);
  return report;
}

}  // namespace brightsi::numerics
