// Preconditioned Krylov solvers for the sparse systems assembled by the
// thermal (nonsymmetric: upwind advection) and PDN (SPD nodal) models.
//
//  * solve_cg        — conjugate gradients, for symmetric positive definite A
//  * solve_bicgstab  — BiCGSTAB, for general nonsymmetric A
//
// Both accept an optional preconditioner (Jacobi or ILU(0)); both return the
// iteration count and final residual so callers can assert convergence.
#ifndef BRIGHTSI_NUMERICS_LINEAR_SOLVERS_H
#define BRIGHTSI_NUMERICS_LINEAR_SOLVERS_H

#include <memory>
#include <span>
#include <vector>

#include "numerics/sparse_matrix.h"

namespace brightsi::numerics {

/// Convergence controls shared by the Krylov solvers.
struct SolverOptions {
  double relative_tolerance = 1e-10;  ///< stop when ||r|| <= rel_tol * ||b||
  double absolute_tolerance = 1e-14;  ///< ... or ||r|| <= abs_tol
  int max_iterations = 5000;
};

/// Outcome of a linear solve. `converged` is false on breakdown or when the
/// iteration budget was exhausted; `x` then holds the best iterate found.
struct SolverReport {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
};

/// Interface for left preconditioners: z = M^{-1} r.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;
};

/// Diagonal (Jacobi) preconditioner. Zero diagonal entries pass through.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(std::span<const double> r, std::span<double> z) const override;

 private:
  std::vector<double> inverse_diagonal_;
};

/// Incomplete LU factorization with zero fill-in on the sparsity pattern of A.
/// Well suited to the 7-point finite-volume stencils used in this project.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  /// Throws std::runtime_error when a zero pivot is encountered.
  explicit Ilu0Preconditioner(const CsrMatrix& a);
  void apply(std::span<const double> r, std::span<double> z) const override;

 private:
  int n_ = 0;
  std::vector<int> row_offsets_;
  std::vector<int> column_indices_;
  std::vector<double> values_;          // merged L (unit diagonal implied) and U
  std::vector<int> diagonal_position_;  // index of the diagonal entry per row
};

/// Conjugate gradient for SPD systems. `x` carries the initial guess in and
/// the solution out.
SolverReport solve_cg(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                      const Preconditioner* preconditioner = nullptr,
                      const SolverOptions& options = {});

/// BiCGSTAB for general square systems. `x` carries the initial guess in and
/// the solution out.
SolverReport solve_bicgstab(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                            const Preconditioner* preconditioner = nullptr,
                            const SolverOptions& options = {});

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_LINEAR_SOLVERS_H
