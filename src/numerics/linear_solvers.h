// Preconditioned Krylov solvers for the sparse systems assembled by the
// thermal (nonsymmetric: upwind advection) and PDN (SPD nodal) models.
//
//  * solve_cg        — conjugate gradients, for symmetric positive definite A
//  * solve_bicgstab  — BiCGSTAB, for general nonsymmetric A
//
// Both accept an optional preconditioner (Jacobi or ILU(0)); both return the
// iteration count and final residual so callers can assert convergence.
#ifndef BRIGHTSI_NUMERICS_LINEAR_SOLVERS_H
#define BRIGHTSI_NUMERICS_LINEAR_SOLVERS_H

#include <memory>
#include <span>
#include <vector>

#include "numerics/sparse_matrix.h"

namespace brightsi::numerics {

/// Convergence controls shared by the Krylov solvers.
struct SolverOptions {
  double relative_tolerance = 1e-10;  ///< stop when ||r|| <= rel_tol * ||b||
  double absolute_tolerance = 1e-14;  ///< ... or ||r|| <= abs_tol
  int max_iterations = 5000;

  friend bool operator==(const SolverOptions&, const SolverOptions&) = default;
};

/// Outcome of a linear solve. `converged` is false on breakdown or when the
/// iteration budget was exhausted; `x` then holds the best iterate found.
struct SolverReport {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
  double solve_time_s = 0.0;  ///< wall time iterating inside the solver
  /// Wall time preparing the preconditioner for this solve (ILU
  /// factorization or multigrid hierarchy refresh). Filled by callers that
  /// own the preconditioner lifecycle (the solve contexts); the solvers
  /// themselves leave it zero.
  double setup_time_s = 0.0;
};

/// Reusable scratch vectors for the Krylov solvers, so repeated solves on a
/// fixed-size system stop allocating their temporaries per call. One
/// workspace serves both solvers (CG maps z -> phat and Ap -> v); the
/// vectors are resized lazily, which is a no-op when the dimension repeats.
struct KrylovWorkspace {
  std::vector<double> r, r0, p, v, s, t, phat, shat;
  void resize(std::size_t n);
};

/// Interface for left preconditioners: z = M^{-1} r.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;
};

/// Diagonal (Jacobi) preconditioner. Zero diagonal entries pass through.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(std::span<const double> r, std::span<double> z) const override;

 private:
  std::vector<double> inverse_diagonal_;
};

/// Incomplete LU factorization with zero fill-in on the sparsity pattern of A.
/// Well suited to the 7-point finite-volume stencils used in this project.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  /// Throws std::runtime_error when a zero pivot is encountered.
  explicit Ilu0Preconditioner(const CsrMatrix& a);
  void apply(std::span<const double> r, std::span<double> z) const override;

  /// Redoes the numeric factorization for new coefficients of `a`, which
  /// must have the same sparsity pattern as the matrix this preconditioner
  /// was built from (checked). Reuses all allocations — the per-solve path
  /// of a solve context. Throws std::runtime_error on a zero pivot and
  /// std::invalid_argument on a pattern mismatch.
  void refactor(const CsrMatrix& a);

 private:
  void factorize(const CsrMatrix& a);

  int n_ = 0;
  std::vector<int> row_offsets_;
  std::vector<int> column_indices_;
  std::vector<double> values_;          // merged L (unit diagonal implied) and U
  std::vector<int> diagonal_position_;  // index of the diagonal entry per row
  std::vector<int> position_scratch_;   // column -> slot map reused per row
};

/// Conjugate gradient for SPD systems. `x` carries the initial guess in and
/// the solution out. `workspace` (optional) supplies the scratch vectors;
/// when null a local workspace is allocated for the call.
SolverReport solve_cg(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                      const Preconditioner* preconditioner = nullptr,
                      const SolverOptions& options = {},
                      KrylovWorkspace* workspace = nullptr);

/// BiCGSTAB for general square systems. `x` carries the initial guess in and
/// the solution out. `workspace` as in solve_cg.
SolverReport solve_bicgstab(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                            const Preconditioner* preconditioner = nullptr,
                            const SolverOptions& options = {},
                            KrylovWorkspace* workspace = nullptr);

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_LINEAR_SOLVERS_H
