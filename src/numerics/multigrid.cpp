#include "numerics/multigrid.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "numerics/contracts.h"

namespace brightsi::numerics {

namespace {

/// r = b - A x with the coefficient array supplied separately, so the
/// mixed-precision path can read the float mirror (promoted to double in
/// the accumulation) through the same kernel.
template <typename ValueT>
void residual_kernel(const std::vector<int>& offsets, const std::vector<int>& columns,
                     const std::vector<ValueT>& values, const std::vector<double>& x,
                     const std::vector<double>& b, std::vector<double>& r) {
  const int n = static_cast<int>(b.size());
  for (int i = 0; i < n; ++i) {
    double sum = b[static_cast<std::size_t>(i)];
    const int begin = offsets[static_cast<std::size_t>(i)];
    const int end = offsets[static_cast<std::size_t>(i) + 1];
    for (int k = begin; k < end; ++k) {
      sum -= static_cast<double>(values[static_cast<std::size_t>(k)]) *
             x[static_cast<std::size_t>(columns[static_cast<std::size_t>(k)])];
    }
    r[static_cast<std::size_t>(i)] = sum;
  }
}

/// Slice centers from slice thicknesses (prefix midpoints).
std::vector<double> centers_of(const std::vector<double>& thicknesses) {
  std::vector<double> centers(thicknesses.size());
  double bottom = 0.0;
  for (std::size_t i = 0; i < thicknesses.size(); ++i) {
    centers[i] = bottom + thicknesses[i] / 2.0;
    bottom += thicknesses[i];
  }
  return centers;
}

}  // namespace

MultigridPreconditioner::MultigridPreconditioner(const CsrMatrix& a, int plane_cells,
                                                 std::vector<double> z_thicknesses,
                                                 const MultigridOptions& options)
    : options_(options), plane_(plane_cells) {
  ensure(a.rows() == a.cols(), "MultigridPreconditioner requires a square matrix");
  ensure(plane_cells > 0, "MultigridPreconditioner: plane_cells must be positive");
  ensure(!z_thicknesses.empty(), "MultigridPreconditioner: no z slices");
  for (const double dz : z_thicknesses) {
    ensure_positive(dz, "MultigridPreconditioner z thickness");
  }
  if (a.rows() != plane_cells * static_cast<int>(z_thicknesses.size())) {
    throw std::invalid_argument(
        "MultigridPreconditioner: matrix dimension " + std::to_string(a.rows()) +
        " is not plane_cells * z_count = " + std::to_string(plane_cells) + " * " +
        std::to_string(z_thicknesses.size()));
  }
  ensure(options_.pre_smooth_sweeps >= 0 && options_.post_smooth_sweeps >= 0 &&
             options_.pre_smooth_sweeps + options_.post_smooth_sweeps > 0,
         "MultigridOptions: need at least one smoothing sweep per cycle");
  ensure_positive(options_.jacobi_damping, "MultigridOptions jacobi_damping");
  ensure(options_.coarse_sweeps >= 1, "MultigridOptions: coarse_sweeps must be >= 1");
  ensure(options_.max_levels >= 1, "MultigridOptions: max_levels must be >= 1");
  build_hierarchy(a, std::move(z_thicknesses));
}

void MultigridPreconditioner::build_hierarchy(const CsrMatrix& a,
                                              std::vector<double> z_thicknesses) {
  levels_.emplace_back();
  levels_.front().a = a;
  levels_.front().z = static_cast<int>(z_thicknesses.size());

  // Aggregate z-slice pairs until a single slice remains (or the depth cap
  // trips): coarse slice j spans fine slices {2j, 2j+1}. Interpolation is
  // linear between aggregate centers, computed from the physical
  // thicknesses so non-uniform stacks coarsen by geometry, not by index.
  while (levels_.back().z > 1 && static_cast<int>(levels_.size()) < options_.max_levels) {
    Level& fine = levels_.back();
    const int zf = fine.z;
    const int zc = (zf + 1) / 2;

    std::vector<double> coarse_thicknesses(static_cast<std::size_t>(zc), 0.0);
    for (int i = 0; i < zf; ++i) {
      coarse_thicknesses[static_cast<std::size_t>(i / 2)] +=
          z_thicknesses[static_cast<std::size_t>(i)];
    }
    const std::vector<double> fine_centers = centers_of(z_thicknesses);
    const std::vector<double> coarse_centers = centers_of(coarse_thicknesses);

    fine.z_interp.resize(static_cast<std::size_t>(zf));
    for (int i = 0; i < zf; ++i) {
      ZInterpolation& interp = fine.z_interp[static_cast<std::size_t>(i)];
      const double c = fine_centers[static_cast<std::size_t>(i)];
      // Bracketing coarse centers; inject outside the first/last center.
      int lo = i / 2;
      if (c < coarse_centers[static_cast<std::size_t>(lo)]) {
        --lo;
      }
      if (lo < 0 || lo + 1 >= zc) {
        const int only = std::clamp(lo, 0, zc - 1);
        interp = {only, only, 1.0, 0.0};
        continue;
      }
      const double c_lo = coarse_centers[static_cast<std::size_t>(lo)];
      const double c_hi = coarse_centers[static_cast<std::size_t>(lo) + 1];
      const double w_hi = (c - c_lo) / (c_hi - c_lo);
      interp = {lo, lo + 1, 1.0 - w_hi, w_hi};
    }

    levels_.emplace_back();
    levels_.back().z = zc;
    const int coarse_level = static_cast<int>(levels_.size()) - 1;
    galerkin_fill(coarse_level);
    z_thicknesses = std::move(coarse_thicknesses);
  }

  for (Level& level : levels_) {
    const auto n = static_cast<std::size_t>(level.a.rows());
    level.x.assign(n, 0.0);
    level.b.assign(n, 0.0);
    level.r.assign(n, 0.0);
    refresh_level(static_cast<int>(&level - levels_.data()));
  }
  Level& coarsest = levels_.back();
  coarsest.t.assign(static_cast<std::size_t>(coarsest.a.rows()), 0.0);
  coarse_ilu_ = std::make_unique<Ilu0Preconditioner>(coarsest.a);
  // The triplet buffer only serves the pattern build; refactor() goes
  // through the slot plans. Free it (it peaks at 4x the largest level's
  // nonzero count) rather than carrying it for the hierarchy's lifetime.
  galerkin_triplets_ = TripletList();
}

void MultigridPreconditioner::galerkin_fill(int coarse_level) {
  // A_c = P^T A_f P, stamped sparsely: every fine nonzero A_f(i, j)
  // scatters through the (at most 2x2) product of the row's and column's
  // z-interpolation stencils. The fine CSR traversal order is
  // deterministic and pattern-fixed, so the triplet sequence is identical
  // on every call — which is what lets refactor() reuse the slot cache.
  Level& coarse = levels_[static_cast<std::size_t>(coarse_level)];
  const Level& fine = levels_[static_cast<std::size_t>(coarse_level) - 1];
  const CsrMatrix& af = fine.a;
  const std::vector<int>& offsets = af.row_offsets();
  const std::vector<int>& columns = af.column_indices();
  const std::vector<double>& values = af.values();

  galerkin_triplets_.clear();
  for (int i = 0; i < af.rows(); ++i) {
    const ZInterpolation& wi = fine.z_interp[static_cast<std::size_t>(i / plane_)];
    const int pi = i % plane_;
    for (int k = offsets[static_cast<std::size_t>(i)];
         k < offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = columns[static_cast<std::size_t>(k)];
      const ZInterpolation& wj = fine.z_interp[static_cast<std::size_t>(j / plane_)];
      const int pj = j % plane_;
      const double v = values[static_cast<std::size_t>(k)];
      galerkin_triplets_.add(wi.coarse_a * plane_ + pi, wj.coarse_a * plane_ + pj,
                             wi.weight_a * wj.weight_a * v);
      galerkin_triplets_.add(wi.coarse_a * plane_ + pi, wj.coarse_b * plane_ + pj,
                             wi.weight_a * wj.weight_b * v);
      galerkin_triplets_.add(wi.coarse_b * plane_ + pi, wj.coarse_a * plane_ + pj,
                             wi.weight_b * wj.weight_a * v);
      galerkin_triplets_.add(wi.coarse_b * plane_ + pi, wj.coarse_b * plane_ + pj,
                             wi.weight_b * wj.weight_b * v);
    }
  }

  const int nc = coarse.z * plane_;
  coarse.a = CsrMatrix::from_triplets(nc, nc, galerkin_triplets_);
  // The populated slot cache doubles as the refactor-time gather plan: four
  // destination slots per fine nonzero, in the stamp order above.
  coarse.a.refill_from_triplets(galerkin_triplets_, &coarse.scatter_plan);
}

void MultigridPreconditioner::galerkin_refill(int coarse_level) {
  // Numerically identical to galerkin_fill + refill_from_triplets — the
  // same weight products are accumulated in the same order — but through
  // the precomputed slot plan, so the refactor hot path is one gather pass
  // over the fine nonzeros with no triplet stamping or slot searches.
  Level& coarse = levels_[static_cast<std::size_t>(coarse_level)];
  const Level& fine = levels_[static_cast<std::size_t>(coarse_level) - 1];
  const CsrMatrix& af = fine.a;
  const std::vector<int>& offsets = af.row_offsets();
  const std::vector<int>& columns = af.column_indices();
  const std::vector<double>& values = af.values();
  const std::vector<int>& plan = coarse.scatter_plan;
  std::vector<double>& coarse_values = coarse.a.mutable_values();
  std::fill(coarse_values.begin(), coarse_values.end(), 0.0);

  std::size_t slot = 0;
  for (int i = 0; i < af.rows(); ++i) {
    const ZInterpolation& wi = fine.z_interp[static_cast<std::size_t>(i / plane_)];
    for (int k = offsets[static_cast<std::size_t>(i)];
         k < offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const ZInterpolation& wj = fine.z_interp[static_cast<std::size_t>(
          columns[static_cast<std::size_t>(k)] / plane_)];
      const double v = values[static_cast<std::size_t>(k)];
      coarse_values[static_cast<std::size_t>(plan[slot])] += wi.weight_a * wj.weight_a * v;
      coarse_values[static_cast<std::size_t>(plan[slot + 1])] +=
          wi.weight_a * wj.weight_b * v;
      coarse_values[static_cast<std::size_t>(plan[slot + 2])] +=
          wi.weight_b * wj.weight_a * v;
      coarse_values[static_cast<std::size_t>(plan[slot + 3])] +=
          wi.weight_b * wj.weight_b * v;
      slot += 4;
    }
  }
}

void MultigridPreconditioner::refresh_level(int level_index) {
  Level& level = levels_[static_cast<std::size_t>(level_index)];
  level.inverse_diagonal = level.a.diagonal();
  for (double& d : level.inverse_diagonal) {
    d = (d != 0.0) ? 1.0 / d : 1.0;
  }
  if (options_.mixed_precision && level_index > 0) {
    const std::vector<double>& values = level.a.values();
    level.values_f32.assign(values.begin(), values.end());
  }
}

void MultigridPreconditioner::refactor(const CsrMatrix& a) {
  // copy_values_from performs the pattern check (and throws on mismatch).
  levels_.front().a.copy_values_from(a);
  refresh_level(0);
  for (int l = 1; l < level_count(); ++l) {
    galerkin_refill(l);
    refresh_level(l);
  }
  coarse_ilu_->refactor(levels_.back().a);
}

void MultigridPreconditioner::smooth(const Level& level, int sweeps,
                                     bool x_is_zero) const {
  // Damped Jacobi: x += w D^{-1} (b - A x), residual computed against the
  // whole old iterate (two passes), so the sweep is a stationary linear
  // operation regardless of unknown ordering.
  const bool f32 = options_.mixed_precision && !level.values_f32.empty();
  int sweep = 0;
  if (x_is_zero && sweeps > 0) {
    // With x == 0 the residual is b itself, so the first sweep needs no
    // matvec — same result, one pass over the matrix saved per level.
    for (std::size_t i = 0; i < level.x.size(); ++i) {
      level.x[i] = options_.jacobi_damping * level.inverse_diagonal[i] * level.b[i];
    }
    sweep = 1;
  }
  for (; sweep < sweeps; ++sweep) {
    if (f32) {
      residual_kernel(level.a.row_offsets(), level.a.column_indices(), level.values_f32,
                      level.x, level.b, level.r);
    } else {
      residual_kernel(level.a.row_offsets(), level.a.column_indices(), level.a.values(),
                      level.x, level.b, level.r);
    }
    for (std::size_t i = 0; i < level.x.size(); ++i) {
      level.x[i] += options_.jacobi_damping * level.inverse_diagonal[i] * level.r[i];
    }
  }
}

void MultigridPreconditioner::residual_to_coarse(int fine_level) const {
  const Level& fine = levels_[static_cast<std::size_t>(fine_level)];
  const Level& coarse = levels_[static_cast<std::size_t>(fine_level) + 1];
  const bool f32 = options_.mixed_precision && !fine.values_f32.empty();
  if (f32) {
    residual_kernel(fine.a.row_offsets(), fine.a.column_indices(), fine.values_f32, fine.x,
                    fine.b, fine.r);
  } else {
    residual_kernel(fine.a.row_offsets(), fine.a.column_indices(), fine.a.values(), fine.x,
                    fine.b, fine.r);
  }
  std::fill(coarse.b.begin(), coarse.b.end(), 0.0);
  for (int fz = 0; fz < fine.z; ++fz) {
    const ZInterpolation& w = fine.z_interp[static_cast<std::size_t>(fz)];
    const double* r = fine.r.data() + static_cast<std::size_t>(fz) * plane_;
    double* ba = coarse.b.data() + static_cast<std::size_t>(w.coarse_a) * plane_;
    double* bb = coarse.b.data() + static_cast<std::size_t>(w.coarse_b) * plane_;
    for (int p = 0; p < plane_; ++p) {
      ba[p] += w.weight_a * r[p];
    }
    if (w.weight_b != 0.0) {
      for (int p = 0; p < plane_; ++p) {
        bb[p] += w.weight_b * r[p];
      }
    }
  }
}

void MultigridPreconditioner::correct_from_coarse(int fine_level) const {
  const Level& fine = levels_[static_cast<std::size_t>(fine_level)];
  const Level& coarse = levels_[static_cast<std::size_t>(fine_level) + 1];
  for (int fz = 0; fz < fine.z; ++fz) {
    const ZInterpolation& w = fine.z_interp[static_cast<std::size_t>(fz)];
    double* x = fine.x.data() + static_cast<std::size_t>(fz) * plane_;
    const double* xa = coarse.x.data() + static_cast<std::size_t>(w.coarse_a) * plane_;
    const double* xb = coarse.x.data() + static_cast<std::size_t>(w.coarse_b) * plane_;
    for (int p = 0; p < plane_; ++p) {
      x[p] += w.weight_a * xa[p] + w.weight_b * xb[p];
    }
  }
}

void MultigridPreconditioner::coarse_solve() const {
  // Fixed-count ILU(0) iterative refinement: x_{k+1} = x_k + M^{-1}(b - A x_k)
  // with x_0 = M^{-1} b. A fixed sweep count keeps the whole V-cycle a
  // stationary linear operator (an inner Krylov solve would not).
  const Level& level = levels_.back();
  coarse_ilu_->apply(level.b, level.x);
  for (int sweep = 1; sweep < options_.coarse_sweeps; ++sweep) {
    residual_kernel(level.a.row_offsets(), level.a.column_indices(), level.a.values(),
                    level.x, level.b, level.r);
    coarse_ilu_->apply(level.r, level.t);
    for (std::size_t i = 0; i < level.x.size(); ++i) {
      level.x[i] += level.t[i];
    }
  }
}

void MultigridPreconditioner::apply(std::span<const double> r, std::span<double> z) const {
  const Level& finest = levels_.front();
  ensure(r.size() == finest.b.size() && z.size() == r.size(),
         "MultigridPreconditioner::apply size mismatch");
  std::copy(r.begin(), r.end(), finest.b.begin());

  const int coarsest = level_count() - 1;
  for (int l = 0; l < coarsest; ++l) {
    const Level& level = levels_[static_cast<std::size_t>(l)];
    std::fill(level.x.begin(), level.x.end(), 0.0);
    smooth(level, options_.pre_smooth_sweeps, /*x_is_zero=*/true);
    residual_to_coarse(l);
  }
  coarse_solve();
  for (int l = coarsest - 1; l >= 0; --l) {
    correct_from_coarse(l);
    smooth(levels_[static_cast<std::size_t>(l)], options_.post_smooth_sweeps);
  }
  std::copy(finest.x.begin(), finest.x.end(), z.begin());
}

const CsrMatrix& MultigridPreconditioner::matrix(int level) const {
  ensure(level >= 0 && level < level_count(), "MultigridPreconditioner: level out of range");
  return levels_[static_cast<std::size_t>(level)].a;
}

int MultigridPreconditioner::z_count(int level) const {
  ensure(level >= 0 && level < level_count(), "MultigridPreconditioner: level out of range");
  return levels_[static_cast<std::size_t>(level)].z;
}

const std::vector<MultigridPreconditioner::ZInterpolation>&
MultigridPreconditioner::interpolation(int level) const {
  ensure(level >= 0 && level + 1 < level_count(),
         "MultigridPreconditioner: no interpolation below the coarsest level");
  return levels_[static_cast<std::size_t>(level)].z_interp;
}

}  // namespace brightsi::numerics
