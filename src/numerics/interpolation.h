// Piecewise-linear interpolation tables.
//
// Used for Nusselt-number vs aspect-ratio data (Shah & London), digitized
// polarization reference curves, and workload traces. X values must be
// strictly increasing; out-of-range behaviour is selectable.
#ifndef BRIGHTSI_NUMERICS_INTERPOLATION_H
#define BRIGHTSI_NUMERICS_INTERPOLATION_H

#include <span>
#include <vector>

namespace brightsi::numerics {

/// Behaviour for queries outside the tabulated range.
enum class ExtrapolationPolicy {
  kClamp,        ///< return the boundary value
  kLinear,       ///< extend the end segments linearly
  kThrow,        ///< throw std::out_of_range
};

class PiecewiseLinearTable {
 public:
  PiecewiseLinearTable() = default;
  /// Throws std::invalid_argument unless xs is strictly increasing and
  /// matches ys in size (>= 2 points).
  PiecewiseLinearTable(std::vector<double> xs, std::vector<double> ys,
                       ExtrapolationPolicy policy = ExtrapolationPolicy::kClamp);

  [[nodiscard]] double operator()(double x) const { return evaluate(x); }
  [[nodiscard]] double evaluate(double x) const;

  [[nodiscard]] double x_min() const { return xs_.front(); }
  [[nodiscard]] double x_max() const { return xs_.back(); }
  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] const std::vector<double>& xs() const { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const { return ys_; }

  /// Inverse query on a strictly monotone table (either direction); solves
  /// y = value and returns x. Throws when the table is not monotone in y or
  /// the value is outside the range under kThrow policy semantics.
  [[nodiscard]] double inverse(double y) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  ExtrapolationPolicy policy_ = ExtrapolationPolicy::kClamp;
};

/// Trapezoid-rule integral of samples ys(xs); sizes must match, xs increasing.
double trapezoid_integral(std::span<const double> xs, std::span<const double> ys);

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_INTERPOLATION_H
