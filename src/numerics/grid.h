// Dense 2-D / 3-D field containers with (i, j[, k]) indexing.
//
// These hold temperature fields, voltage maps and power maps. Indices are
// bounds-checked in debug builds only (hot loops), while the checked `at`
// accessors validate always.
#ifndef BRIGHTSI_NUMERICS_GRID_H
#define BRIGHTSI_NUMERICS_GRID_H

#include <cassert>
#include <vector>

#include "numerics/contracts.h"

namespace brightsi::numerics {

namespace detail {
/// Validates grid dimensions before any allocation happens.
inline std::size_t checked_cell_count(long long a, long long b, long long c,
                                      const char* what) {
  ensure(a > 0 && b > 0 && c > 0, std::string(what) + " dimensions must be positive");
  return static_cast<std::size_t>(a) * static_cast<std::size_t>(b) *
         static_cast<std::size_t>(c);
}
}  // namespace detail

/// Row-major 2-D grid: index (ix, iy) with ix fastest (x-major rows).
template <typename T>
class Grid2 {
 public:
  Grid2() = default;
  Grid2(int nx, int ny, T fill = T{})
      : nx_(nx), ny_(ny), data_(detail::checked_cell_count(nx, ny, 1, "Grid2"), fill) {}

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] T& operator()(int ix, int iy) {
    assert(in_range(ix, iy));
    return data_[index(ix, iy)];
  }
  [[nodiscard]] const T& operator()(int ix, int iy) const {
    assert(in_range(ix, iy));
    return data_[index(ix, iy)];
  }

  [[nodiscard]] T& at(int ix, int iy) {
    ensure(in_range(ix, iy), "Grid2::at out of range");
    return data_[index(ix, iy)];
  }
  [[nodiscard]] const T& at(int ix, int iy) const {
    ensure(in_range(ix, iy), "Grid2::at out of range");
    return data_[index(ix, iy)];
  }

  [[nodiscard]] bool in_range(int ix, int iy) const {
    return ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_;
  }
  [[nodiscard]] std::size_t index(int ix, int iy) const {
    return static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(ix);
  }

  [[nodiscard]] std::vector<T>& data() { return data_; }
  [[nodiscard]] const std::vector<T>& data() const { return data_; }

  void fill(const T& value) { data_.assign(data_.size(), value); }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> data_;
};

/// 3-D grid: index (ix, iy, iz), ix fastest, iz slowest (layer-major).
template <typename T>
class Grid3 {
 public:
  Grid3() = default;
  Grid3(int nx, int ny, int nz, T fill = T{})
      : nx_(nx), ny_(ny), nz_(nz),
        data_(detail::checked_cell_count(nx, ny, nz, "Grid3"), fill) {}

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] T& operator()(int ix, int iy, int iz) {
    assert(in_range(ix, iy, iz));
    return data_[index(ix, iy, iz)];
  }
  [[nodiscard]] const T& operator()(int ix, int iy, int iz) const {
    assert(in_range(ix, iy, iz));
    return data_[index(ix, iy, iz)];
  }

  [[nodiscard]] T& at(int ix, int iy, int iz) {
    ensure(in_range(ix, iy, iz), "Grid3::at out of range");
    return data_[index(ix, iy, iz)];
  }
  [[nodiscard]] const T& at(int ix, int iy, int iz) const {
    ensure(in_range(ix, iy, iz), "Grid3::at out of range");
    return data_[index(ix, iy, iz)];
  }

  [[nodiscard]] bool in_range(int ix, int iy, int iz) const {
    return ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_ && iz >= 0 && iz < nz_;
  }
  [[nodiscard]] std::size_t index(int ix, int iy, int iz) const {
    return (static_cast<std::size_t>(iz) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(iy)) *
               static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(ix);
  }

  [[nodiscard]] std::vector<T>& data() { return data_; }
  [[nodiscard]] const std::vector<T>& data() const { return data_; }

  void fill(const T& value) { data_.assign(data_.size(), value); }

 private:
  int nx_ = 0;
  int ny_ = 0;
  int nz_ = 0;
  std::vector<T> data_;
};

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_GRID_H
