// Small dense matrix with LU factorization (partial pivoting).
//
// Used as the reference solver in tests and for the few genuinely dense
// sub-problems in the project (VRM Thevenin reductions, polynomial fits in
// reporting). Not intended for large systems — use CsrMatrix + Krylov there.
#ifndef BRIGHTSI_NUMERICS_DENSE_MATRIX_H
#define BRIGHTSI_NUMERICS_DENSE_MATRIX_H

#include <span>
#include <vector>

namespace brightsi::numerics {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols, double fill = 0.0);

  /// Identity of dimension n.
  static DenseMatrix identity(int n);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  [[nodiscard]] double& at(int r, int c);
  [[nodiscard]] double at(int r, int c) const;

  /// y = A * x (sizes checked).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Returns A * B.
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting; throws std::runtime_error on a
/// numerically singular matrix.
class LuFactorization {
 public:
  explicit LuFactorization(const DenseMatrix& a);

  /// Solves A x = b. b and x may alias.
  void solve(std::span<const double> b, std::span<double> x) const;

  /// Determinant of A (product of pivots with sign).
  [[nodiscard]] double determinant() const;

 private:
  int n_ = 0;
  std::vector<double> lu_;      // packed L\U, row-major
  std::vector<int> pivots_;     // row permutation
  int permutation_sign_ = 1;
};

/// Convenience: solve a dense system in one call.
std::vector<double> solve_dense(const DenseMatrix& a, std::span<const double> b);

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_DENSE_MATRIX_H
