#include "numerics/interpolation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/contracts.h"

namespace brightsi::numerics {

PiecewiseLinearTable::PiecewiseLinearTable(std::vector<double> xs, std::vector<double> ys,
                                           ExtrapolationPolicy policy)
    : xs_(std::move(xs)), ys_(std::move(ys)), policy_(policy) {
  ensure(xs_.size() >= 2, "PiecewiseLinearTable needs at least two points");
  ensure(xs_.size() == ys_.size(), "PiecewiseLinearTable xs/ys size mismatch");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    ensure(xs_[i] > xs_[i - 1], "PiecewiseLinearTable xs must be strictly increasing");
  }
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    ensure_finite(xs_[i], "PiecewiseLinearTable x");
    ensure_finite(ys_[i], "PiecewiseLinearTable y");
  }
}

double PiecewiseLinearTable::evaluate(double x) const {
  ensure(!xs_.empty(), "PiecewiseLinearTable is empty");
  if (x < xs_.front() || x > xs_.back()) {
    switch (policy_) {
      case ExtrapolationPolicy::kClamp:
        return (x < xs_.front()) ? ys_.front() : ys_.back();
      case ExtrapolationPolicy::kLinear:
        break;  // fall through to segment interpolation on the end segment
      case ExtrapolationPolicy::kThrow:
        throw std::out_of_range("PiecewiseLinearTable: x=" + std::to_string(x) +
                                " outside [" + std::to_string(xs_.front()) + ", " +
                                std::to_string(xs_.back()) + "]");
    }
  }
  std::size_t hi = static_cast<std::size_t>(
      std::upper_bound(xs_.begin(), xs_.end(), x) - xs_.begin());
  hi = std::clamp<std::size_t>(hi, 1, xs_.size() - 1);
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

double PiecewiseLinearTable::inverse(double y) const {
  ensure(!ys_.empty(), "PiecewiseLinearTable is empty");
  const bool increasing = ys_.back() > ys_.front();
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    const bool step_up = ys_[i] > ys_[i - 1];
    if (step_up != increasing || ys_[i] == ys_[i - 1]) {
      throw std::runtime_error("PiecewiseLinearTable::inverse requires strictly monotone ys");
    }
  }
  const double y_lo = increasing ? ys_.front() : ys_.back();
  const double y_hi = increasing ? ys_.back() : ys_.front();
  if (y < y_lo || y > y_hi) {
    // Clamp like evaluate() under kClamp; throw otherwise.
    if (policy_ == ExtrapolationPolicy::kThrow) {
      throw std::out_of_range("PiecewiseLinearTable::inverse: y outside range");
    }
    return (y < y_lo) == increasing ? xs_.front() : xs_.back();
  }
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    const double a = ys_[i - 1];
    const double b = ys_[i];
    const bool inside = increasing ? (y >= a && y <= b) : (y <= a && y >= b);
    if (inside) {
      const double t = (b == a) ? 0.0 : (y - a) / (b - a);
      return xs_[i - 1] + t * (xs_[i] - xs_[i - 1]);
    }
  }
  return xs_.back();
}

double trapezoid_integral(std::span<const double> xs, std::span<const double> ys) {
  ensure(xs.size() == ys.size(), "trapezoid_integral size mismatch");
  ensure(xs.size() >= 2, "trapezoid_integral needs at least two samples");
  double sum = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    ensure(xs[i] > xs[i - 1], "trapezoid_integral xs must be increasing");
    sum += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  }
  return sum;
}

}  // namespace brightsi::numerics
