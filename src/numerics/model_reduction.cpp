#include "numerics/model_reduction.h"

#include <cmath>

#include "numerics/contracts.h"

namespace brightsi::numerics {

namespace {

double norm2(std::span<const double> v) {
  double sum = 0.0;
  for (const double x : v) {
    sum += x * x;
  }
  return std::sqrt(sum);
}

}  // namespace

bool OrthonormalBasis::append(std::span<const double> vector, double drop_tolerance) {
  ensure(vector.size() == dimension_, "OrthonormalBasis::append: wrong dimension");
  ensure(drop_tolerance >= 0.0, "OrthonormalBasis::append: negative drop tolerance");
  const double original_norm = norm2(vector);
  if (!(original_norm > 0.0)) {
    return false;  // the zero vector (or NaN) spans nothing
  }
  std::vector<double> candidate(vector.begin(), vector.end());
  // Modified Gram-Schmidt, run twice: the second sweep removes the
  // components the first one left behind through cancellation, keeping the
  // basis orthonormal to roundoff ("twice is enough", Giraud et al.).
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (const std::vector<double>& column : columns_) {
      double h = 0.0;
      for (std::size_t i = 0; i < dimension_; ++i) {
        h += column[i] * candidate[i];
      }
      for (std::size_t i = 0; i < dimension_; ++i) {
        candidate[i] -= h * column[i];
      }
    }
  }
  const double remainder_norm = norm2(candidate);
  if (!(remainder_norm > drop_tolerance * original_norm)) {
    return false;  // numerically inside the current span
  }
  const double inverse = 1.0 / remainder_norm;
  for (double& x : candidate) {
    x *= inverse;
  }
  columns_.push_back(std::move(candidate));
  // Repack the row-major mirror (the old stride is gone, so every row
  // moves). O(dimension * size) per append — the same order as the MGS
  // sweep above, and paid only when the basis grows.
  const std::size_t k = columns_.size();
  packed_.resize(dimension_ * k);
  for (std::size_t i = 0; i < dimension_; ++i) {
    double* row = packed_.data() + i * k;
    for (std::size_t j = 0; j < k; ++j) {
      row[j] = columns_[j][i];
    }
  }
  return true;
}

void OrthonormalBasis::project(std::span<const double> x,
                               std::span<double> coefficients) const {
  ensure(x.size() == dimension_ && coefficients.size() == columns_.size(),
         "OrthonormalBasis::project: size mismatch");
  const std::size_t k = columns_.size();
  for (std::size_t j = 0; j < k; ++j) {
    coefficients[j] = 0.0;
  }
  for (std::size_t i = 0; i < dimension_; ++i) {
    const double xi = x[i];
    const double* row = packed_.data() + i * k;
    for (std::size_t j = 0; j < k; ++j) {
      coefficients[j] += row[j] * xi;
    }
  }
}

void OrthonormalBasis::lift(std::span<const double> coefficients,
                            std::span<double> x) const {
  ensure(x.size() == dimension_ && coefficients.size() == columns_.size(),
         "OrthonormalBasis::lift: size mismatch");
  const std::size_t k = columns_.size();
  for (std::size_t i = 0; i < dimension_; ++i) {
    const double* row = packed_.data() + i * k;
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      sum += row[j] * coefficients[j];
    }
    x[i] = sum;
  }
}

int block_arnoldi_expand(OrthonormalBasis& basis,
                         std::span<const std::vector<double>> seeds, int moments,
                         int max_size, double drop_tolerance,
                         const SubspaceApplyFn& apply) {
  ensure(max_size >= 1, "block_arnoldi_expand: max_size must be >= 1");
  ensure(moments >= 0, "block_arnoldi_expand: moments must be >= 0");
  int added = 0;
  std::vector<int> wave;  // column indices accepted in the current round
  for (const std::vector<double>& seed : seeds) {
    if (basis.size() >= max_size) {
      break;
    }
    if (basis.append(seed, drop_tolerance)) {
      wave.push_back(basis.size() - 1);
      ++added;
    }
  }
  std::vector<double> image(basis.dimension(), 0.0);
  for (int moment = 0; moment < moments && !wave.empty(); ++moment) {
    std::vector<int> next_wave;
    for (const int j : wave) {
      if (basis.size() >= max_size) {
        break;
      }
      apply(basis.column(j), image);
      if (basis.append(image, drop_tolerance)) {
        next_wave.push_back(basis.size() - 1);
        ++added;
      }
    }
    wave = std::move(next_wave);
  }
  return added;
}

}  // namespace brightsi::numerics
