// Scalar root finding: Brent's method (bracketing, superlinear) and damped
// Newton. Brent is the closure solver of the Butler–Volmer wall condition in
// the channel FVM, so it is templated on the callable to keep the per-cell
// cost free of std::function overhead.
#ifndef BRIGHTSI_NUMERICS_ROOT_FINDING_H
#define BRIGHTSI_NUMERICS_ROOT_FINDING_H

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

namespace brightsi::numerics {

/// Result of a scalar root search.
struct RootResult {
  double root = 0.0;
  double function_value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Brent's method on [a, b]. Requires f(a) and f(b) of opposite sign (or one
/// of them zero); throws std::invalid_argument otherwise. Converges to
/// |b - a| <= x_tolerance or |f| <= f_tolerance.
template <typename F>
RootResult find_root_brent(F&& f, double a, double b, double x_tolerance = 1e-12,
                           double f_tolerance = 0.0, int max_iterations = 128) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) {
    return {a, 0.0, 0, true};
  }
  if (fb == 0.0) {
    return {b, 0.0, 0, true};
  }
  if ((fa > 0.0) == (fb > 0.0)) {
    throw std::invalid_argument("find_root_brent: root not bracketed, f(a)=" +
                                std::to_string(fa) + " f(b)=" + std::to_string(fb));
  }

  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;

  RootResult result;
  for (int it = 1; it <= max_iterations; ++it) {
    result.iterations = it;
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) +
                       0.5 * x_tolerance;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 || std::abs(fb) <= f_tolerance) {
      result.root = b;
      result.function_value = fb;
      result.converged = true;
      return result;
    }
    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) {
        q = -q;
      } else {
        p = -p;
      }
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
  }
  result.root = b;
  result.function_value = fb;
  result.converged = false;
  return result;
}

/// Damped Newton iteration from `x0`. `fdf` returns {f(x), f'(x)}. Falls
/// back to halving the step while the residual does not decrease.
template <typename FDF>
RootResult find_root_newton(FDF&& fdf, double x0, double x_tolerance = 1e-12,
                            int max_iterations = 64) {
  RootResult result;
  double x = x0;
  auto [fx, dfx] = fdf(x);
  for (int it = 1; it <= max_iterations; ++it) {
    result.iterations = it;
    if (dfx == 0.0 || !std::isfinite(dfx)) {
      break;
    }
    double step = fx / dfx;
    double x_next = x - step;
    auto [f_next, df_next] = fdf(x_next);
    int damping = 0;
    while (std::isfinite(f_next) && std::abs(f_next) > std::abs(fx) && damping < 20) {
      step *= 0.5;
      x_next = x - step;
      std::tie(f_next, df_next) = fdf(x_next);
      ++damping;
    }
    const double dx = std::abs(x_next - x);
    x = x_next;
    fx = f_next;
    dfx = df_next;
    if (dx <= x_tolerance * (1.0 + std::abs(x))) {
      result.converged = true;
      break;
    }
  }
  result.root = x;
  result.function_value = fx;
  return result;
}

/// Expands [a, b] geometrically around the seed interval until f changes
/// sign; returns the bracket. Throws when no sign change is found within
/// `max_expansions` doublings.
template <typename F>
std::pair<double, double> bracket_root(F&& f, double a, double b, int max_expansions = 60) {
  if (a > b) {
    std::swap(a, b);
  }
  double fa = f(a);
  double fb = f(b);
  for (int i = 0; i < max_expansions; ++i) {
    if ((fa > 0.0) != (fb > 0.0) || fa == 0.0 || fb == 0.0) {
      return {a, b};
    }
    const double width = b - a;
    if (std::abs(fa) < std::abs(fb)) {
      a -= width;
      fa = f(a);
    } else {
      b += width;
      fb = f(b);
    }
  }
  throw std::runtime_error("bracket_root: no sign change found");
}

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_ROOT_FINDING_H
