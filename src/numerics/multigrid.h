// Geometric multigrid preconditioner for the z-layered tensor-product
// operators assembled by the thermal model: semicoarsening in z (the
// direction of strong coupling — thin dies and channel slices make the
// vertical conductances dominate), damped-Jacobi smoothing in the plane,
// Galerkin coarse operators (A_c = P^T A P) and an ILU(0)
// iterative-refinement solve on the coarsest level.
//
// The fine operator must be lexicographic with x fastest and z slowest:
// cell (ix, iy, iz) lives at row (iz * ny + iy) * nx + ix, i.e. the grid
// is `z_count` stacked planes of `plane_cells` cells each. Restriction and
// prolongation act on whole planes: P = P_z (x) I_plane, where P_z
// linearly interpolates between the centers of aggregated z-slice pairs —
// the z-cell thicknesses (straight from the StackSpec layer structure)
// supply the interpolation weights, so grossly non-uniform stacks (10 um
// active planes over 650 um bulk) coarsen sensibly.
//
// One apply() runs a single V-cycle with a zero initial guess. The
// hierarchy is truncated by default (MultigridOptions::max_levels): the
// coarsest level keeps a few z-slices and is solved with ILU(0) iterative
// refinement, which handles the coolant advection chains that the plane
// smoother cannot. Every ingredient (Jacobi sweeps, Galerkin correction,
// fixed refinement count) is a stationary linear operation, so the
// preconditioner is a fixed linear operator — safe for BiCGSTAB/CG — and
// fully deterministic.
//
// Like Ilu0Preconditioner, the hierarchy's sparsity structure is built
// once; `refactor(a)` redoes only the numeric work (Galerkin products,
// smoother diagonals, coarse ILU factorization) for new coefficients on
// the same pattern. apply() uses per-level scratch vectors, so a
// preconditioner is single-threaded state: one per solve context, never
// shared across threads.
#ifndef BRIGHTSI_NUMERICS_MULTIGRID_H
#define BRIGHTSI_NUMERICS_MULTIGRID_H

#include <memory>
#include <span>
#include <vector>

#include "numerics/linear_solvers.h"
#include "numerics/sparse_matrix.h"

namespace brightsi::numerics {

/// Cycle and smoothing controls of the multigrid hierarchy.
struct MultigridOptions {
  int pre_smooth_sweeps = 1;        ///< damped-Jacobi sweeps before coarsening
  int post_smooth_sweeps = 1;       ///< ... and after the coarse correction
  double jacobi_damping = 0.7;      ///< under-relaxation of the Jacobi smoother
  /// ILU(0) iterative-refinement sweeps on the coarsest level (a fixed
  /// count keeps the cycle a stationary linear operator).
  int coarse_sweeps = 4;
  /// Hierarchy depth cap (z halves per level). Coarsening stops at one
  /// z-slice or after this many levels, whichever comes first — and the
  /// cap matters: the coarsest level is solved with refined ILU(0), which
  /// is a far stronger solve than Jacobi smoothing when the coarse grid
  /// still holds a few z-slices (it resolves the fluid advection chains
  /// the plane smoother cannot). Empirically a truncated hierarchy nearly
  /// halves the Krylov iteration count versus coarsening all the way to
  /// z = 1, at a modest coarse-factorization cost, and makes the count
  /// essentially independent of stack height. Raise the cap to study
  /// textbook full coarsening.
  int max_levels = 5;
  /// Store the coarse-level (level >= 1) operators and transfer weights in
  /// single precision: the inner cycle reads float coefficients (promoted
  /// to double in the accumulations) while the outer Krylov iteration
  /// stays in double. Halves the hierarchy's memory traffic; the
  /// preconditioner is still a fixed linear operator, just a slightly
  /// different one, so outer results agree within solver tolerance.
  bool mixed_precision = false;

  friend bool operator==(const MultigridOptions&, const MultigridOptions&) = default;
};

/// Z-semicoarsening geometric multigrid V-cycle as a left preconditioner.
class MultigridPreconditioner final : public Preconditioner {
 public:
  /// Builds the full hierarchy for `a`, which must be square of dimension
  /// plane_cells * z_thicknesses.size() (checked). `z_thicknesses` holds
  /// the physical thickness of each z-slice, bottom to top — pass
  /// ThermalModel::z_cell_thicknesses(), or uniform values for an
  /// isotropic grid. Throws std::invalid_argument on a dimension mismatch
  /// and std::runtime_error when the coarsest ILU(0) hits a zero pivot.
  MultigridPreconditioner(const CsrMatrix& a, int plane_cells,
                          std::vector<double> z_thicknesses,
                          const MultigridOptions& options = {});

  /// z = V_cycle(r): one V(pre, post) cycle from a zero initial guess.
  void apply(std::span<const double> r, std::span<double> z) const override;

  /// Redoes the numeric work (Galerkin triple products level by level,
  /// Jacobi diagonals, coarse ILU(0) refactorization) for new coefficients
  /// of `a`, which must have the sparsity pattern the hierarchy was built
  /// from (checked). No allocation on the hot path. Throws
  /// std::invalid_argument on a pattern mismatch.
  void refactor(const CsrMatrix& a);

  /// Hierarchy introspection (tests, docs, bench reporting).
  [[nodiscard]] int level_count() const { return static_cast<int>(levels_.size()); }
  /// The level-l operator: level 0 is (a copy of) the fine matrix.
  [[nodiscard]] const CsrMatrix& matrix(int level) const;
  /// z-slice count of level `level`.
  [[nodiscard]] int z_count(int level) const;
  /// Prolongation weights from level+1 (coarse) into `level` (fine): one
  /// two-point stencil per fine z-slice of `level` (the points coincide
  /// where the transfer injects). P acts plane-wise: fine cell
  /// (p, fz) receives weight_a * coarse(p, coarse_a) + weight_b *
  /// coarse(p, coarse_b). Valid for level < level_count() - 1.
  struct ZInterpolation {
    int coarse_a = 0, coarse_b = 0;  ///< coarse z indices (equal when injecting)
    double weight_a = 1.0, weight_b = 0.0;
  };
  [[nodiscard]] const std::vector<ZInterpolation>& interpolation(int level) const;

 private:
  struct Level {
    CsrMatrix a;                        // Galerkin operator of this level
    std::vector<float> values_f32;      // mixed precision: level >= 1 coefficients
    std::vector<double> inverse_diagonal;
    std::vector<ZInterpolation> z_interp;  // this level's slices -> level+1
    int z = 0;                          // z-slices on this level
    // Scratch for the V-cycle (apply() is const, state is per-instance).
    mutable std::vector<double> x, b, r, t;
    // RAP gather plan: destination CSR slot of each of the four weight
    // products of each fine nonzero, in fine-traversal stamp order. Built
    // once from the triplet path's slot cache; refactor() then refreshes
    // the coarse coefficients as a single gather pass, no re-stamping.
    std::vector<int> scatter_plan;
  };

  void build_hierarchy(const CsrMatrix& a, std::vector<double> z_thicknesses);
  void galerkin_fill(int coarse_level);    // build: RAP via triplet stamping
  void galerkin_refill(int coarse_level);  // refactor: RAP via the slot plan
  void refresh_level(int level);           // diagonals + f32 mirror
  /// x += w D^-1 (b - A x); `x_is_zero` skips the first residual matvec
  /// (r == b when x == 0), which is bit-identical and one pass cheaper.
  void smooth(const Level& level, int sweeps, bool x_is_zero = false) const;
  void residual_to_coarse(int fine_level) const;       // b_{l+1} = P^T (b_l - A_l x_l)
  void correct_from_coarse(int fine_level) const;      // x_l += P x_{l+1}
  void coarse_solve() const;

  MultigridOptions options_;
  int plane_ = 0;
  std::vector<Level> levels_;
  std::unique_ptr<Ilu0Preconditioner> coarse_ilu_;
  TripletList galerkin_triplets_;  // build-time stamping buffer (freed after)
};

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_MULTIGRID_H
