// Compressed sparse row matrix with a COO (triplet) assembly path.
//
// This is the workhorse container for the thermal RC network, the PDN nodal
// matrix and the reference discretizations in tests. Assembly happens via
// `TripletList` (duplicate entries are summed, as is conventional for
// finite-volume/nodal stamping), after which the CSR form supports matvec,
// row traversal and diagonal extraction. When the sparsity pattern is fixed
// across solves (the assemble-once discipline of the solve contexts),
// `refill_from_triplets` updates the coefficients in place without
// re-sorting or reallocating.
#ifndef BRIGHTSI_NUMERICS_SPARSE_MATRIX_H
#define BRIGHTSI_NUMERICS_SPARSE_MATRIX_H

#include <cstddef>
#include <span>
#include <vector>

namespace brightsi::numerics {

/// One (row, col, value) contribution to a sparse matrix under assembly.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// Growable list of stamped contributions; duplicates are summed on build.
class TripletList {
 public:
  TripletList() = default;
  /// Pre-reserves storage for `expected_entries` stamps.
  explicit TripletList(std::size_t expected_entries) { entries_.reserve(expected_entries); }

  /// Adds `value` at (row, col). Negative indices are rejected at build time.
  void add(int row, int col, double value) { entries_.push_back({row, col, value}); }

  /// Drops every entry but keeps the allocation, so a stamping buffer can be
  /// reused across solves.
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<Triplet>& entries() const { return entries_; }

 private:
  std::vector<Triplet> entries_;
};

/// Square-or-rectangular sparse matrix in CSR format. The pattern is fixed
/// at build time; coefficients may be refreshed in place.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds a rows x cols matrix from stamped triplets; duplicate (r,c)
  /// entries are summed. Throws std::invalid_argument on out-of-range
  /// indices or non-finite values.
  static CsrMatrix from_triplets(int rows, int cols, const TripletList& triplets);

  /// Reuse path for a fixed sparsity pattern: zeroes the stored values and
  /// scatters `triplets` into them (duplicates summed), without touching the
  /// structure. Throws std::invalid_argument when a triplet's (row, col) is
  /// not part of the pattern or its value is non-finite.
  ///
  /// `slot_cache` (optional) skips the per-entry position search on repeat
  /// fills: an empty cache is populated with the destination slot of each
  /// triplet; a populated one is trusted to come from an earlier call with
  /// the *identical* (row, col) sequence — only the length is re-checked —
  /// which holds for deterministic stampers like ThermalModel::fill_operator.
  void refill_from_triplets(const TripletList& triplets,
                            std::vector<int>* slot_cache = nullptr);

  /// Copies the coefficient values of `other`, which must have this
  /// matrix's exact sparsity pattern (checked). The in-place update path
  /// for consumers that mirror a matrix whose pattern is fixed across
  /// solves (e.g. the finest level of a multigrid hierarchy). Throws
  /// std::invalid_argument on a pattern mismatch.
  void copy_values_from(const CsrMatrix& other);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t non_zeros() const { return values_.size(); }

  /// y = A * x. Sizes must match (checked).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// r = b - A * x, returning the Euclidean norm of r.
  double residual(std::span<const double> b, std::span<const double> x,
                  std::span<double> r) const;

  /// Returns the diagonal (zero where absent). Matrix must be square.
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Value at (row, col); zero when the entry is not stored.
  [[nodiscard]] double at(int row, int col) const;

  /// Raw CSR access for preconditioners and row traversal.
  [[nodiscard]] const std::vector<int>& row_offsets() const { return row_offsets_; }
  [[nodiscard]] const std::vector<int>& column_indices() const { return column_indices_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Mutable coefficient storage, for assemblers that refresh values in
  /// place through a precomputed slot mapping (the multigrid Galerkin
  /// refresh bypasses the triplet path this way). The structure arrays
  /// stay private: the pattern cannot be modified.
  [[nodiscard]] std::vector<double>& mutable_values() { return values_; }

  /// True when A equals its transpose within `tolerance` (square only).
  [[nodiscard]] bool is_symmetric(double tolerance = 1e-12) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_offsets_;     // size rows_ + 1
  std::vector<int> column_indices_;  // size nnz, ascending within each row
  std::vector<double> values_;       // size nnz
};

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_SPARSE_MATRIX_H
