#include "numerics/dense_matrix.h"

#include <cmath>
#include <stdexcept>

#include "numerics/contracts.h"

namespace brightsi::numerics {

DenseMatrix::DenseMatrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill) {
  ensure(rows > 0 && cols > 0, "DenseMatrix dimensions must be positive");
}

DenseMatrix DenseMatrix::identity(int n) {
  DenseMatrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    m.at(i, i) = 1.0;
  }
  return m;
}

double& DenseMatrix::at(int r, int c) {
  ensure(r >= 0 && r < rows_ && c >= 0 && c < cols_, "DenseMatrix::at out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

double DenseMatrix::at(int r, int c) const {
  ensure(r >= 0 && r < rows_ && c >= 0 && c < cols_, "DenseMatrix::at out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

void DenseMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  ensure(static_cast<int>(x.size()) == cols_ && static_cast<int>(y.size()) == rows_,
         "DenseMatrix::multiply size mismatch");
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int c = 0; c < cols_; ++c) {
      sum += at(r, c) * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  ensure(cols_ == other.rows_, "DenseMatrix::multiply inner dimension mismatch");
  DenseMatrix out(rows_, other.cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      const double a_rk = at(r, k);
      if (a_rk == 0.0) {
        continue;
      }
      for (int c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a_rk * other.at(k, c);
      }
    }
  }
  return out;
}

LuFactorization::LuFactorization(const DenseMatrix& a) {
  ensure(a.rows() == a.cols(), "LuFactorization requires a square matrix");
  n_ = a.rows();
  lu_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  pivots_.resize(static_cast<std::size_t>(n_));
  for (int r = 0; r < n_; ++r) {
    for (int c = 0; c < n_; ++c) {
      lu_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(c)] = a.at(r, c);
    }
  }

  auto entry = [&](int r, int c) -> double& {
    return lu_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(c)];
  };

  for (int k = 0; k < n_; ++k) {
    int pivot_row = k;
    double pivot_mag = std::abs(entry(k, k));
    for (int r = k + 1; r < n_; ++r) {
      if (std::abs(entry(r, k)) > pivot_mag) {
        pivot_mag = std::abs(entry(r, k));
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) {
      throw std::runtime_error("LuFactorization: matrix is numerically singular at column " +
                               std::to_string(k));
    }
    pivots_[static_cast<std::size_t>(k)] = pivot_row;
    if (pivot_row != k) {
      permutation_sign_ = -permutation_sign_;
      for (int c = 0; c < n_; ++c) {
        std::swap(entry(k, c), entry(pivot_row, c));
      }
    }
    for (int r = k + 1; r < n_; ++r) {
      entry(r, k) /= entry(k, k);
      const double factor = entry(r, k);
      for (int c = k + 1; c < n_; ++c) {
        entry(r, c) -= factor * entry(k, c);
      }
    }
  }
}

void LuFactorization::solve(std::span<const double> b, std::span<double> x) const {
  ensure(static_cast<int>(b.size()) == n_ && static_cast<int>(x.size()) == n_,
         "LuFactorization::solve size mismatch");
  if (x.data() != b.data()) {
    std::copy(b.begin(), b.end(), x.begin());
  }
  auto entry = [&](int r, int c) {
    return lu_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(c)];
  };
  for (int k = 0; k < n_; ++k) {
    std::swap(x[static_cast<std::size_t>(k)],
              x[static_cast<std::size_t>(pivots_[static_cast<std::size_t>(k)])]);
  }
  for (int r = 1; r < n_; ++r) {
    double sum = x[static_cast<std::size_t>(r)];
    for (int c = 0; c < r; ++c) {
      sum -= entry(r, c) * x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(r)] = sum;
  }
  for (int r = n_ - 1; r >= 0; --r) {
    double sum = x[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n_; ++c) {
      sum -= entry(r, c) * x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(r)] = sum / entry(r, r);
  }
}

double LuFactorization::determinant() const {
  double det = permutation_sign_;
  for (int k = 0; k < n_; ++k) {
    det *= lu_[static_cast<std::size_t>(k) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(k)];
  }
  return det;
}

std::vector<double> solve_dense(const DenseMatrix& a, std::span<const double> b) {
  LuFactorization lu(a);
  std::vector<double> x(b.size());
  lu.solve(b, x);
  return x;
}

}  // namespace brightsi::numerics
