// Thomas-algorithm tridiagonal solver with reusable workspace.
//
// The co-laminar channel FVM marches thousands of implicit steps, each of
// which solves one tridiagonal system per transported species; the class
// form keeps the scratch arrays alive across calls so the inner loop is
// allocation-free.
#ifndef BRIGHTSI_NUMERICS_TRIDIAGONAL_H
#define BRIGHTSI_NUMERICS_TRIDIAGONAL_H

#include <span>
#include <vector>

namespace brightsi::numerics {

/// Solves A x = d for tridiagonal A given by (lower, diag, upper) bands.
/// lower[0] and upper[n-1] are ignored. Throws on size mismatch or when a
/// pivot underflows (non-diagonally-dominant degenerate input).
class TridiagonalSolver {
 public:
  TridiagonalSolver() = default;
  /// Pre-sizes the workspace for systems of dimension `n`.
  explicit TridiagonalSolver(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    scratch_c_.resize(n);
    scratch_d_.resize(n);
  }

  /// In/out: `rhs` holds d on entry and the solution x on return.
  void solve(std::span<const double> lower, std::span<const double> diag,
             std::span<const double> upper, std::span<double> rhs);

 private:
  std::vector<double> scratch_c_;
  std::vector<double> scratch_d_;
};

/// Convenience one-shot wrapper around TridiagonalSolver.
void solve_tridiagonal(std::span<const double> lower, std::span<const double> diag,
                       std::span<const double> upper, std::span<double> rhs);

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_TRIDIAGONAL_H
