#include "numerics/statistics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "numerics/contracts.h"

namespace brightsi::numerics {

Summary summarize(std::span<const double> values) {
  ensure(!values.empty(), "summarize: empty input");
  Summary s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (const double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) {
    var += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

double percentile(std::span<const double> values, double p) {
  ensure(!values.empty(), "percentile: empty input");
  ensure(p >= 0.0 && p <= 100.0, "percentile: p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double max_abs_difference(std::span<const double> a, std::span<const double> b) {
  ensure(a.size() == b.size(), "max_abs_difference size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

double max_relative_error(std::span<const double> a, std::span<const double> b, double floor) {
  ensure(a.size() == b.size(), "max_relative_error size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max(std::abs(b[i]), floor);
    m = std::max(m, std::abs(a[i] - b[i]) / denom);
  }
  return m;
}

}  // namespace brightsi::numerics
