// Small descriptive-statistics helpers for reporting on field maps
// (temperature, voltage) and benchmark result series.
#ifndef BRIGHTSI_NUMERICS_STATISTICS_H
#define BRIGHTSI_NUMERICS_STATISTICS_H

#include <span>

namespace brightsi::numerics {

/// Summary of a sample set.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  std::size_t count = 0;
};

/// Computes min/max/mean/stddev of `values` (must be non-empty).
Summary summarize(std::span<const double> values);

/// Linear-interpolated percentile in [0, 100] of `values` (copied & sorted).
double percentile(std::span<const double> values, double p);

/// Max |a[i] - b[i]| over equally-sized spans.
double max_abs_difference(std::span<const double> a, std::span<const double> b);

/// Max relative error |a-b| / max(|b|, floor) over equally-sized spans;
/// `floor` guards against division by ~0 reference values.
double max_relative_error(std::span<const double> a, std::span<const double> b,
                          double floor = 1e-30);

}  // namespace brightsi::numerics

#endif  // BRIGHTSI_NUMERICS_STATISTICS_H
