// Lightweight contract checking used across the project.
//
// Public API entry points validate their preconditions with `ensure` /
// `ensure_positive` / `ensure_finite` (these throw std::invalid_argument so
// misuse is reported to callers), while internal invariants use plain
// assert. This follows the Core Guidelines split between interface
// contracts (I.5/I.6) and implementation assertions.
#ifndef BRIGHTSI_NUMERICS_CONTRACTS_H
#define BRIGHTSI_NUMERICS_CONTRACTS_H

#include <cmath>
#include <stdexcept>
#include <string>

namespace brightsi {

/// Throws std::invalid_argument with `message` when `condition` is false.
inline void ensure(bool condition, const std::string& message) {
  if (!condition) {
    throw std::invalid_argument(message);
  }
}

/// Requires `value > 0` (and finite); `name` identifies the offending parameter.
inline void ensure_positive(double value, const std::string& name) {
  if (!(value > 0.0) || !std::isfinite(value)) {
    throw std::invalid_argument(name + " must be positive and finite, got " +
                                std::to_string(value));
  }
}

/// Requires `value >= 0` (and finite).
inline void ensure_non_negative(double value, const std::string& name) {
  if (value < 0.0 || !std::isfinite(value)) {
    throw std::invalid_argument(name + " must be non-negative and finite, got " +
                                std::to_string(value));
  }
}

/// Requires a finite value (rejects NaN and infinities).
inline void ensure_finite(double value, const std::string& name) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument(name + " must be finite, got " + std::to_string(value));
  }
}

}  // namespace brightsi

#endif  // BRIGHTSI_NUMERICS_CONTRACTS_H
