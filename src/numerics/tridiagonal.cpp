#include "numerics/tridiagonal.h"

#include <cmath>
#include <stdexcept>

#include "numerics/contracts.h"

namespace brightsi::numerics {

void TridiagonalSolver::solve(std::span<const double> lower, std::span<const double> diag,
                              std::span<const double> upper, std::span<double> rhs) {
  const std::size_t n = diag.size();
  ensure(n > 0, "TridiagonalSolver: empty system");
  ensure(lower.size() == n && upper.size() == n && rhs.size() == n,
         "TridiagonalSolver: band size mismatch");
  if (scratch_c_.size() < n) {
    resize(n);
  }

  double pivot = diag[0];
  if (pivot == 0.0 || !std::isfinite(pivot)) {
    throw std::runtime_error("TridiagonalSolver: zero or non-finite pivot at row 0");
  }
  scratch_c_[0] = upper[0] / pivot;
  scratch_d_[0] = rhs[0] / pivot;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = diag[i] - lower[i] * scratch_c_[i - 1];
    if (pivot == 0.0 || !std::isfinite(pivot)) {
      throw std::runtime_error("TridiagonalSolver: zero or non-finite pivot at row " +
                               std::to_string(i));
    }
    scratch_c_[i] = upper[i] / pivot;
    scratch_d_[i] = (rhs[i] - lower[i] * scratch_d_[i - 1]) / pivot;
  }
  rhs[n - 1] = scratch_d_[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    rhs[i] = scratch_d_[i] - scratch_c_[i] * rhs[i + 1];
  }
}

void solve_tridiagonal(std::span<const double> lower, std::span<const double> diag,
                       std::span<const double> upper, std::span<double> rhs) {
  TridiagonalSolver solver(diag.size());
  solver.solve(lower, diag, upper, rhs);
}

}  // namespace brightsi::numerics
