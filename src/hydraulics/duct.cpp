#include "hydraulics/duct.h"

#include <algorithm>
#include <cmath>

#include "numerics/contracts.h"
#include "numerics/interpolation.h"

namespace brightsi::hydraulics {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// cosh(x)/cosh(x_max) evaluated without overflow for large arguments.
double cosh_ratio(double x, double x_max) {
  x = std::abs(x);
  x_max = std::abs(x_max);
  if (x_max < 30.0) {
    return std::cosh(x) / std::cosh(x_max);
  }
  // cosh(x)/cosh(xm) = e^{x-xm} (1+e^{-2x}) / (1+e^{-2xm})
  return std::exp(x - x_max) * (1.0 + std::exp(-2.0 * x)) / (1.0 + std::exp(-2.0 * x_max));
}

/// Shah & London fully developed laminar Nusselt numbers, H1 boundary
/// condition (four walls heated), indexed by aspect ratio min/max.
const numerics::PiecewiseLinearTable& nusselt_h1_table() {
  static const numerics::PiecewiseLinearTable table(
      {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0},
      {8.235, 6.785, 5.738, 4.990, 4.472, 4.123, 3.740, 3.608});
  return table;
}

}  // namespace

RectangularDuct::RectangularDuct(double width_m, double height_m, double length_m)
    : width_m_(width_m), height_m_(height_m), length_m_(length_m) {
  ensure_positive(width_m, "duct width");
  ensure_positive(height_m, "duct height");
  ensure_positive(length_m, "duct length");
}

double RectangularDuct::aspect_ratio() const {
  return std::min(width_m_, height_m_) / std::max(width_m_, height_m_);
}

double RectangularDuct::friction_factor_reynolds() const {
  const double a = aspect_ratio();
  // Shah & London (1978) polynomial fit; Fanning friction factor basis.
  return 24.0 * (1.0 - 1.3553 * a + 1.9467 * a * a - 1.7012 * a * a * a +
                 0.9564 * a * a * a * a - 0.2537 * a * a * a * a * a);
}

double RectangularDuct::pressure_drop_pa(double dynamic_viscosity_pa_s,
                                         double mean_velocity_m_per_s) const {
  return pressure_gradient_pa_per_m(dynamic_viscosity_pa_s, mean_velocity_m_per_s) * length_m_;
}

double RectangularDuct::pressure_gradient_pa_per_m(double dynamic_viscosity_pa_s,
                                                   double mean_velocity_m_per_s) const {
  ensure_positive(dynamic_viscosity_pa_s, "dynamic viscosity");
  ensure_non_negative(mean_velocity_m_per_s, "mean velocity");
  const double dh = hydraulic_diameter();
  return 2.0 * friction_factor_reynolds() * dynamic_viscosity_pa_s * mean_velocity_m_per_s /
         (dh * dh);
}

double RectangularDuct::mean_velocity(double volumetric_flow_m3_per_s) const {
  ensure_non_negative(volumetric_flow_m3_per_s, "volumetric flow");
  return volumetric_flow_m3_per_s / cross_section_area();
}

double RectangularDuct::reynolds(double density_kg_per_m3, double dynamic_viscosity_pa_s,
                                 double mean_velocity_m_per_s) const {
  ensure_positive(density_kg_per_m3, "density");
  ensure_positive(dynamic_viscosity_pa_s, "dynamic viscosity");
  return density_kg_per_m3 * mean_velocity_m_per_s * hydraulic_diameter() /
         dynamic_viscosity_pa_s;
}

double RectangularDuct::nusselt_h1() const { return nusselt_h1_table()(aspect_ratio()); }

double RectangularDuct::hydraulic_conductance(double dynamic_viscosity_pa_s) const {
  ensure_positive(dynamic_viscosity_pa_s, "dynamic viscosity");
  const double dh = hydraulic_diameter();
  return cross_section_area() * dh * dh /
         (2.0 * friction_factor_reynolds() * dynamic_viscosity_pa_s * length_m_);
}

DuctVelocityProfile::DuctVelocityProfile(const RectangularDuct& duct, int series_terms)
    : half_width_(duct.width() / 2.0), half_height_(duct.height() / 2.0),
      terms_(series_terms) {
  ensure(series_terms >= 1, "DuctVelocityProfile needs at least one series term");

  // Pre-compute the depth-averaged series coefficients:
  //   ubar(y) ~ sum_i (-1)^((i-1)/2) / i^3 * [1 - (2a/(i pi b)) tanh(i pi b / 2a)]
  //             * cos(i pi y / 2a),   i odd.
  depth_avg_coeff_.reserve(static_cast<std::size_t>(terms_));
  double mean_raw = 0.0;
  for (int t = 0; t < terms_; ++t) {
    const int i = 2 * t + 1;
    const double arg = static_cast<double>(i) * kPi * half_height_ / (2.0 * half_width_);
    const double bracket = 1.0 - (2.0 * half_width_ /
                                  (static_cast<double>(i) * kPi * half_height_)) *
                                     std::tanh(arg);
    const double sign = (t % 2 == 0) ? 1.0 : -1.0;
    const double coeff = sign * bracket / (static_cast<double>(i) * i * i);
    depth_avg_coeff_.push_back(coeff);
    // Mean over y of coeff * cos(i pi y / 2a) on [-a, a]: coeff * 2 sign /(i pi)*2 ... :
    //   (1/2a) \int cos(i pi y / 2a) dy = (2/(i pi)) * (-1)^((i-1)/2)
    mean_raw += coeff * (2.0 / (static_cast<double>(i) * kPi)) * sign;
  }
  ensure(mean_raw > 0.0, "DuctVelocityProfile: degenerate series mean");
  normalization_ = 1.0 / mean_raw;
}

double DuctVelocityProfile::raw_at(double y_centered, double z_centered) const {
  double sum = 0.0;
  for (int t = 0; t < terms_; ++t) {
    const int i = 2 * t + 1;
    const double k = static_cast<double>(i) * kPi / (2.0 * half_width_);
    const double sign = (t % 2 == 0) ? 1.0 : -1.0;
    const double z_term = 1.0 - cosh_ratio(k * z_centered, k * half_height_);
    sum += sign * z_term * std::cos(k * y_centered) / (static_cast<double>(i) * i * i);
  }
  return sum;
}

double DuctVelocityProfile::raw_depth_averaged(double y_centered) const {
  double sum = 0.0;
  for (int t = 0; t < terms_; ++t) {
    const int i = 2 * t + 1;
    const double k = static_cast<double>(i) * kPi / (2.0 * half_width_);
    sum += depth_avg_coeff_[static_cast<std::size_t>(t)] * std::cos(k * y_centered);
  }
  return sum;
}

double DuctVelocityProfile::normalized_at(double y_m, double z_m) const {
  ensure(y_m >= 0.0 && y_m <= 2.0 * half_width_, "DuctVelocityProfile: y outside duct");
  ensure(z_m >= 0.0 && z_m <= 2.0 * half_height_, "DuctVelocityProfile: z outside duct");
  // The raw_at series mean over the cross-section differs from the
  // depth-averaged mean only through z-integration, which the bracket in
  // the depth-averaged coefficients performs exactly; normalization_ was
  // derived for the depth-averaged series and applies to both because
  // raw_depth_averaged(y) == (1/2b) \int raw_at(y, z) dz by construction.
  return std::max(0.0, raw_at(y_m - half_width_, z_m - half_height_)) * normalization_;
}

double DuctVelocityProfile::depth_averaged(double y_m) const {
  ensure(y_m >= 0.0 && y_m <= 2.0 * half_width_, "DuctVelocityProfile: y outside duct");
  return std::max(0.0, raw_depth_averaged(y_m - half_width_)) * normalization_;
}

double DuctVelocityProfile::max_over_mean() const {
  return raw_at(0.0, 0.0) * normalization_ /
         // depth-averaged normalization vs pointwise: the centerline value
         // uses the full 2-D series, whose mean equals the depth-averaged
         // mean, so the same normalization applies.
         1.0;
}

}  // namespace brightsi::hydraulics
