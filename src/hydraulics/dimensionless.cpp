#include "hydraulics/dimensionless.h"

#include <cmath>

namespace brightsi::hydraulics {

double film_boundary_layer_thickness(double diffusivity, double axial_position,
                                     double mean_velocity) {
  ensure_positive(diffusivity, "diffusivity");
  ensure_non_negative(axial_position, "axial position");
  ensure_positive(mean_velocity, "mean velocity");
  constexpr double kPi = 3.14159265358979323846;
  return std::sqrt(kPi * diffusivity * axial_position / mean_velocity);
}

}  // namespace brightsi::hydraulics
