// Flow distribution across a parallel microchannel array fed from common
// inlet/outlet plena. For identical channels the split is uniform; for
// heterogeneous channels (e.g. blocked or resized ones in failure-injection
// studies) the split follows the laminar hydraulic conductances, since all
// channels see the same plenum-to-plenum pressure difference.
#ifndef BRIGHTSI_HYDRAULICS_MANIFOLD_H
#define BRIGHTSI_HYDRAULICS_MANIFOLD_H

#include <span>
#include <string>
#include <vector>

#include "hydraulics/duct.h"

namespace brightsi::hydraulics {

/// Result of distributing a total flow over parallel channels.
struct ManifoldSplit {
  std::vector<double> per_channel_flow_m3_per_s;
  double common_pressure_drop_pa = 0.0;
};

/// Splits `total_flow` across `ducts` (all seeing the same dp). Throws when
/// `ducts` is empty or the flow is negative.
[[nodiscard]] ManifoldSplit split_by_conductance(double total_flow_m3_per_s,
                                                 std::span<const RectangularDuct> ducts,
                                                 double dynamic_viscosity_pa_s);

/// Uniform split across `channel_count` identical channels.
[[nodiscard]] std::vector<double> split_uniform(double total_flow_m3_per_s, int channel_count);

/// A group of `channel_count` identical parallel ducts — one microchannel
/// layer of a 3D stack, fed from the same inlet/outlet plena as every
/// other layer. `channel_count == 0` marks a blocked group (valve closed /
/// channels clogged in failure-injection studies): it takes exactly zero
/// flow. `name` feeds the all-blocked diagnostic; empty names fall back to
/// positional "group<i>" labels.
struct ParallelChannelGroup {
  RectangularDuct duct;
  int channel_count = 1;
  std::string name;
};

/// Result of distributing a pump's total flow over parallel groups.
struct GroupSplit {
  std::vector<double> per_group_flow_m3_per_s;  ///< one entry per group
  std::vector<double> fraction;                 ///< per-group share of the total
  double common_pressure_drop_pa = 0.0;
};

/// Splits `total_flow` across parallel channel groups so every group sees
/// the same plenum-to-plenum pressure drop: solves sum_i Q_i(dp) = Q_total
/// for dp with the project root finder, where Q_i(dp) follows each group's
/// laminar conductance. Blocked (zero-conductance) groups receive exactly
/// zero flow and never enter the root-finder bracket. Deterministic;
/// throws on an empty group list, a negative channel count, a negative
/// flow, or an all-blocked set (the error names the blocked groups).
[[nodiscard]] GroupSplit split_equal_pressure(double total_flow_m3_per_s,
                                              std::span<const ParallelChannelGroup> groups,
                                              double dynamic_viscosity_pa_s);

/// A named parallel branch off a rack's common supply/return plena: one
/// chip's cooling layers, seen from the rack manifold as a single
/// conductance (the layers share the chip's plenum pair, so they are in
/// parallel). An empty group list — or one whose groups are all blocked —
/// is a blocked branch: it takes exactly zero flow.
struct ParallelBranch {
  std::string name;
  std::vector<ParallelChannelGroup> groups;

  /// Sum of the groups' laminar conductances (m^3/s per Pa); 0 = blocked.
  [[nodiscard]] double conductance(double dynamic_viscosity_pa_s) const;
};

/// split_equal_pressure generalized from layers-within-a-stack to
/// chips-within-a-rack: distributes one loop's flow across the chips'
/// branches at a common plenum-to-plenum pressure drop. Same contract as
/// the group overload; the all-blocked error names the branches.
[[nodiscard]] GroupSplit split_equal_pressure(double total_flow_m3_per_s,
                                              std::span<const ParallelBranch> branches,
                                              double dynamic_viscosity_pa_s);

}  // namespace brightsi::hydraulics

#endif  // BRIGHTSI_HYDRAULICS_MANIFOLD_H
