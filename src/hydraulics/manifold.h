// Flow distribution across a parallel microchannel array fed from common
// inlet/outlet plena. For identical channels the split is uniform; for
// heterogeneous channels (e.g. blocked or resized ones in failure-injection
// studies) the split follows the laminar hydraulic conductances, since all
// channels see the same plenum-to-plenum pressure difference.
#ifndef BRIGHTSI_HYDRAULICS_MANIFOLD_H
#define BRIGHTSI_HYDRAULICS_MANIFOLD_H

#include <span>
#include <vector>

#include "hydraulics/duct.h"

namespace brightsi::hydraulics {

/// Result of distributing a total flow over parallel channels.
struct ManifoldSplit {
  std::vector<double> per_channel_flow_m3_per_s;
  double common_pressure_drop_pa = 0.0;
};

/// Splits `total_flow` across `ducts` (all seeing the same dp). Throws when
/// `ducts` is empty or the flow is negative.
[[nodiscard]] ManifoldSplit split_by_conductance(double total_flow_m3_per_s,
                                                 std::span<const RectangularDuct> ducts,
                                                 double dynamic_viscosity_pa_s);

/// Uniform split across `channel_count` identical channels.
[[nodiscard]] std::vector<double> split_uniform(double total_flow_m3_per_s, int channel_count);

/// A group of `channel_count` identical parallel ducts — one microchannel
/// layer of a 3D stack, fed from the same inlet/outlet plena as every
/// other layer.
struct ParallelChannelGroup {
  RectangularDuct duct;
  int channel_count = 1;
};

/// Result of distributing a pump's total flow over parallel groups.
struct GroupSplit {
  std::vector<double> per_group_flow_m3_per_s;  ///< one entry per group
  std::vector<double> fraction;                 ///< per-group share of the total
  double common_pressure_drop_pa = 0.0;
};

/// Splits `total_flow` across parallel channel groups so every group sees
/// the same plenum-to-plenum pressure drop: solves sum_i Q_i(dp) = Q_total
/// for dp with the project root finder, where Q_i(dp) follows each group's
/// laminar conductance. Deterministic; throws on an empty group list, a
/// non-positive group, or a negative flow.
[[nodiscard]] GroupSplit split_equal_pressure(double total_flow_m3_per_s,
                                              std::span<const ParallelChannelGroup> groups,
                                              double dynamic_viscosity_pa_s);

}  // namespace brightsi::hydraulics

#endif  // BRIGHTSI_HYDRAULICS_MANIFOLD_H
