// Flow distribution across a parallel microchannel array fed from common
// inlet/outlet plena. For identical channels the split is uniform; for
// heterogeneous channels (e.g. blocked or resized ones in failure-injection
// studies) the split follows the laminar hydraulic conductances, since all
// channels see the same plenum-to-plenum pressure difference.
#ifndef BRIGHTSI_HYDRAULICS_MANIFOLD_H
#define BRIGHTSI_HYDRAULICS_MANIFOLD_H

#include <span>
#include <vector>

#include "hydraulics/duct.h"

namespace brightsi::hydraulics {

/// Result of distributing a total flow over parallel channels.
struct ManifoldSplit {
  std::vector<double> per_channel_flow_m3_per_s;
  double common_pressure_drop_pa = 0.0;
};

/// Splits `total_flow` across `ducts` (all seeing the same dp). Throws when
/// `ducts` is empty or the flow is negative.
[[nodiscard]] ManifoldSplit split_by_conductance(double total_flow_m3_per_s,
                                                 std::span<const RectangularDuct> ducts,
                                                 double dynamic_viscosity_pa_s);

/// Uniform split across `channel_count` identical channels.
[[nodiscard]] std::vector<double> split_uniform(double total_flow_m3_per_s, int channel_count);

}  // namespace brightsi::hydraulics

#endif  // BRIGHTSI_HYDRAULICS_MANIFOLD_H
