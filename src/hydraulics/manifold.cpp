#include "hydraulics/manifold.h"

#include "numerics/contracts.h"

namespace brightsi::hydraulics {

ManifoldSplit split_by_conductance(double total_flow_m3_per_s,
                                   std::span<const RectangularDuct> ducts,
                                   double dynamic_viscosity_pa_s) {
  ensure(!ducts.empty(), "split_by_conductance: no channels");
  ensure_non_negative(total_flow_m3_per_s, "total flow");
  double total_conductance = 0.0;
  std::vector<double> conductances;
  conductances.reserve(ducts.size());
  for (const RectangularDuct& d : ducts) {
    const double g = d.hydraulic_conductance(dynamic_viscosity_pa_s);
    conductances.push_back(g);
    total_conductance += g;
  }
  ensure(total_conductance > 0.0, "split_by_conductance: zero total conductance");

  ManifoldSplit split;
  split.common_pressure_drop_pa = total_flow_m3_per_s / total_conductance;
  split.per_channel_flow_m3_per_s.reserve(ducts.size());
  for (const double g : conductances) {
    split.per_channel_flow_m3_per_s.push_back(g * split.common_pressure_drop_pa);
  }
  return split;
}

std::vector<double> split_uniform(double total_flow_m3_per_s, int channel_count) {
  ensure(channel_count > 0, "split_uniform: channel count must be positive");
  ensure_non_negative(total_flow_m3_per_s, "total flow");
  return std::vector<double>(static_cast<std::size_t>(channel_count),
                             total_flow_m3_per_s / channel_count);
}

}  // namespace brightsi::hydraulics
