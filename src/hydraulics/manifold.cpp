#include "hydraulics/manifold.h"

#include <cmath>
#include <string>

#include "numerics/contracts.h"
#include "numerics/root_finding.h"

namespace brightsi::hydraulics {

namespace {

/// The equal-dp solve shared by the group and branch overloads: given the
/// per-entry laminar conductances, finds the common plenum-to-plenum dp
/// whose summed flows reproduce the total. Zero-conductance entries
/// contribute nothing to the bracket or the surplus sum, so a blocked
/// entry can never poison the root finder; an all-blocked set throws
/// `what` + the names of the blocked entries instead of dividing by zero.
GroupSplit solve_equal_pressure(double total_flow_m3_per_s,
                                const std::vector<double>& conductances,
                                const std::vector<std::string>& names, const char* what) {
  double total_conductance = 0.0;
  for (const double g : conductances) {
    ensure(std::isfinite(g) && g >= 0.0,
           std::string(what) + ": conductance must be finite and non-negative");
    total_conductance += g;
  }
  if (total_conductance <= 0.0) {
    std::string blocked;
    for (std::size_t i = 0; i < names.size(); ++i) {
      blocked += (i == 0 ? "" : ", ");
      blocked += names[i].empty() ? "group" + std::to_string(i) : names[i];
    }
    throw std::invalid_argument(std::string(what) +
                                ": zero total conductance (all blocked): " + blocked);
  }

  GroupSplit split;
  if (total_flow_m3_per_s == 0.0) {
    split.per_group_flow_m3_per_s.assign(conductances.size(), 0.0);
    split.fraction.assign(conductances.size(), 0.0);
    return split;
  }

  // Every live entry sees the plenum-to-plenum dp; find the dp whose
  // summed flows reproduce the pump total. For the laminar conductance law
  // this is linear in dp, but the bracketing root solve keeps the split
  // correct for any monotone per-entry flow law swapped in later.
  auto flow_surplus = [&](double dp) {
    double flow = 0.0;
    for (const double g : conductances) {
      flow += g * dp;
    }
    return flow - total_flow_m3_per_s;
  };
  const double dp_linear = total_flow_m3_per_s / total_conductance;
  const auto root = numerics::find_root_brent(flow_surplus, 0.0, 2.0 * dp_linear,
                                              1e-12 * dp_linear,
                                              1e-12 * total_flow_m3_per_s, 64);
  split.common_pressure_drop_pa = root.root;
  split.per_group_flow_m3_per_s.reserve(conductances.size());
  split.fraction.reserve(conductances.size());
  for (const double g : conductances) {
    split.per_group_flow_m3_per_s.push_back(g * split.common_pressure_drop_pa);
    split.fraction.push_back(g / total_conductance);
  }
  return split;
}

}  // namespace

ManifoldSplit split_by_conductance(double total_flow_m3_per_s,
                                   std::span<const RectangularDuct> ducts,
                                   double dynamic_viscosity_pa_s) {
  ensure(!ducts.empty(), "split_by_conductance: no channels");
  ensure_non_negative(total_flow_m3_per_s, "total flow");
  double total_conductance = 0.0;
  std::vector<double> conductances;
  conductances.reserve(ducts.size());
  for (const RectangularDuct& d : ducts) {
    const double g = d.hydraulic_conductance(dynamic_viscosity_pa_s);
    // A degenerate duct (infinite viscosity, zero geometry) must read as
    // blocked — zero flow — not feed a NaN/inf into the dp division.
    ensure(std::isfinite(g) && g >= 0.0,
           "split_by_conductance: conductance must be finite and non-negative");
    conductances.push_back(g);
    total_conductance += g;
  }
  ensure(total_conductance > 0.0,
         "split_by_conductance: zero total conductance (every channel blocked)");

  ManifoldSplit split;
  split.common_pressure_drop_pa = total_flow_m3_per_s / total_conductance;
  split.per_channel_flow_m3_per_s.reserve(ducts.size());
  for (const double g : conductances) {
    split.per_channel_flow_m3_per_s.push_back(g * split.common_pressure_drop_pa);
  }
  return split;
}

std::vector<double> split_uniform(double total_flow_m3_per_s, int channel_count) {
  ensure(channel_count > 0, "split_uniform: channel count must be positive");
  ensure_non_negative(total_flow_m3_per_s, "total flow");
  return std::vector<double>(static_cast<std::size_t>(channel_count),
                             total_flow_m3_per_s / channel_count);
}

double ParallelBranch::conductance(double dynamic_viscosity_pa_s) const {
  double total = 0.0;
  for (const ParallelChannelGroup& group : groups) {
    ensure(group.channel_count >= 0, "branch channel count must be non-negative");
    total += group.channel_count * group.duct.hydraulic_conductance(dynamic_viscosity_pa_s);
  }
  return total;
}

GroupSplit split_equal_pressure(double total_flow_m3_per_s,
                                std::span<const ParallelChannelGroup> groups,
                                double dynamic_viscosity_pa_s) {
  ensure(!groups.empty(), "split_equal_pressure: no channel groups");
  ensure_non_negative(total_flow_m3_per_s, "total flow");
  ensure_positive(dynamic_viscosity_pa_s, "dynamic viscosity");

  std::vector<double> conductances;
  std::vector<std::string> names;
  conductances.reserve(groups.size());
  names.reserve(groups.size());
  for (const ParallelChannelGroup& group : groups) {
    ensure(group.channel_count >= 0,
           "split_equal_pressure: channel count must be non-negative");
    conductances.push_back(group.channel_count *
                           group.duct.hydraulic_conductance(dynamic_viscosity_pa_s));
    names.push_back(group.name);
  }
  return solve_equal_pressure(total_flow_m3_per_s, conductances, names,
                              "split_equal_pressure");
}

GroupSplit split_equal_pressure(double total_flow_m3_per_s,
                                std::span<const ParallelBranch> branches,
                                double dynamic_viscosity_pa_s) {
  ensure(!branches.empty(), "split_equal_pressure: no branches");
  ensure_non_negative(total_flow_m3_per_s, "total flow");
  ensure_positive(dynamic_viscosity_pa_s, "dynamic viscosity");

  std::vector<double> conductances;
  std::vector<std::string> names;
  conductances.reserve(branches.size());
  names.reserve(branches.size());
  for (const ParallelBranch& branch : branches) {
    conductances.push_back(branch.conductance(dynamic_viscosity_pa_s));
    names.push_back(branch.name);
  }
  return solve_equal_pressure(total_flow_m3_per_s, conductances, names,
                              "split_equal_pressure");
}

}  // namespace brightsi::hydraulics
