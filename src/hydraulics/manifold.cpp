#include "hydraulics/manifold.h"

#include "numerics/contracts.h"
#include "numerics/root_finding.h"

namespace brightsi::hydraulics {

ManifoldSplit split_by_conductance(double total_flow_m3_per_s,
                                   std::span<const RectangularDuct> ducts,
                                   double dynamic_viscosity_pa_s) {
  ensure(!ducts.empty(), "split_by_conductance: no channels");
  ensure_non_negative(total_flow_m3_per_s, "total flow");
  double total_conductance = 0.0;
  std::vector<double> conductances;
  conductances.reserve(ducts.size());
  for (const RectangularDuct& d : ducts) {
    const double g = d.hydraulic_conductance(dynamic_viscosity_pa_s);
    conductances.push_back(g);
    total_conductance += g;
  }
  ensure(total_conductance > 0.0, "split_by_conductance: zero total conductance");

  ManifoldSplit split;
  split.common_pressure_drop_pa = total_flow_m3_per_s / total_conductance;
  split.per_channel_flow_m3_per_s.reserve(ducts.size());
  for (const double g : conductances) {
    split.per_channel_flow_m3_per_s.push_back(g * split.common_pressure_drop_pa);
  }
  return split;
}

std::vector<double> split_uniform(double total_flow_m3_per_s, int channel_count) {
  ensure(channel_count > 0, "split_uniform: channel count must be positive");
  ensure_non_negative(total_flow_m3_per_s, "total flow");
  return std::vector<double>(static_cast<std::size_t>(channel_count),
                             total_flow_m3_per_s / channel_count);
}

GroupSplit split_equal_pressure(double total_flow_m3_per_s,
                                std::span<const ParallelChannelGroup> groups,
                                double dynamic_viscosity_pa_s) {
  ensure(!groups.empty(), "split_equal_pressure: no channel groups");
  ensure_non_negative(total_flow_m3_per_s, "total flow");
  ensure_positive(dynamic_viscosity_pa_s, "dynamic viscosity");

  std::vector<double> conductances;
  conductances.reserve(groups.size());
  double total_conductance = 0.0;
  for (const ParallelChannelGroup& group : groups) {
    ensure(group.channel_count > 0, "split_equal_pressure: channel count must be positive");
    const double g = group.channel_count * group.duct.hydraulic_conductance(
                                               dynamic_viscosity_pa_s);
    conductances.push_back(g);
    total_conductance += g;
  }
  ensure(total_conductance > 0.0, "split_equal_pressure: zero total conductance");

  GroupSplit split;
  if (total_flow_m3_per_s == 0.0) {
    split.per_group_flow_m3_per_s.assign(groups.size(), 0.0);
    split.fraction.assign(groups.size(), 0.0);
    return split;
  }

  // Every group sees the plenum-to-plenum dp; find the dp whose summed
  // group flows reproduce the pump total. For the laminar conductance law
  // this is linear in dp, but the bracketing root solve keeps the split
  // correct for any monotone per-group flow law swapped in later.
  auto flow_surplus = [&](double dp) {
    double flow = 0.0;
    for (const double g : conductances) {
      flow += g * dp;
    }
    return flow - total_flow_m3_per_s;
  };
  const double dp_linear = total_flow_m3_per_s / total_conductance;
  const auto root = numerics::find_root_brent(flow_surplus, 0.0, 2.0 * dp_linear,
                                              1e-12 * dp_linear,
                                              1e-12 * total_flow_m3_per_s, 64);
  split.common_pressure_drop_pa = root.root;
  split.per_group_flow_m3_per_s.reserve(groups.size());
  split.fraction.reserve(groups.size());
  for (const double g : conductances) {
    split.per_group_flow_m3_per_s.push_back(g * split.common_pressure_drop_pa);
    split.fraction.push_back(g / total_conductance);
  }
  return split;
}

}  // namespace brightsi::hydraulics
