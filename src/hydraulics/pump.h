// Pumping power (paper Section III-B): P = dp * Vdot / eta_p with the 50 %
// pump efficiency the paper assumes, plus optional minor (inlet/outlet
// plenum) losses.
#ifndef BRIGHTSI_HYDRAULICS_PUMP_H
#define BRIGHTSI_HYDRAULICS_PUMP_H

namespace brightsi::hydraulics {

/// Hydraulic pumping power in W for a pressure rise `delta_p` (Pa) at flow
/// `volumetric_flow` (m^3/s) with pump efficiency in (0, 1].
[[nodiscard]] double pumping_power_w(double delta_p_pa, double volumetric_flow_m3_per_s,
                                     double pump_efficiency);

/// Minor loss dp = K * rho v^2 / 2 for a loss coefficient K (entrance,
/// exit, manifold turns). Used to model the plenum contributions that pure
/// straight-channel Darcy-Weisbach misses.
[[nodiscard]] double minor_loss_pa(double loss_coefficient, double density_kg_per_m3,
                                   double velocity_m_per_s);

}  // namespace brightsi::hydraulics

#endif  // BRIGHTSI_HYDRAULICS_PUMP_H
