// Dimensionless groups used across the transport models.
#ifndef BRIGHTSI_HYDRAULICS_DIMENSIONLESS_H
#define BRIGHTSI_HYDRAULICS_DIMENSIONLESS_H

#include "numerics/contracts.h"

namespace brightsi::hydraulics {

/// Re = rho v L / mu.
[[nodiscard]] inline double reynolds_number(double density, double velocity,
                                            double characteristic_length, double viscosity) {
  ensure_positive(viscosity, "viscosity");
  return density * velocity * characteristic_length / viscosity;
}

/// Sc = mu / (rho D).
[[nodiscard]] inline double schmidt_number(double viscosity, double density,
                                           double diffusivity) {
  ensure_positive(density, "density");
  ensure_positive(diffusivity, "diffusivity");
  return viscosity / (density * diffusivity);
}

/// Mass-transfer Peclet number Pe = v L / D.
[[nodiscard]] inline double peclet_mass(double velocity, double characteristic_length,
                                        double diffusivity) {
  ensure_positive(diffusivity, "diffusivity");
  return velocity * characteristic_length / diffusivity;
}

/// Pr = mu cp / k with cp volumetric (J/m^3 K): Pr = mu * cp_vol / (rho k).
[[nodiscard]] inline double prandtl_number(double viscosity, double volumetric_heat_capacity,
                                           double density, double thermal_conductivity) {
  ensure_positive(density, "density");
  ensure_positive(thermal_conductivity, "thermal conductivity");
  return viscosity * volumetric_heat_capacity / (density * thermal_conductivity);
}

/// Laminar hydrodynamic entrance length ~ 0.05 Re Dh.
[[nodiscard]] inline double hydrodynamic_entrance_length(double reynolds,
                                                         double hydraulic_diameter) {
  return 0.05 * reynolds * hydraulic_diameter;
}

/// Concentration boundary-layer thickness of the Leveque/plug film model at
/// axial position x: delta = sqrt(pi D x / v). Used by the analytic film
/// model and as a sanity scale in tests.
[[nodiscard]] double film_boundary_layer_thickness(double diffusivity, double axial_position,
                                                   double mean_velocity);

}  // namespace brightsi::hydraulics

#endif  // BRIGHTSI_HYDRAULICS_DIMENSIONLESS_H
