#include "hydraulics/pump.h"

#include "numerics/contracts.h"

namespace brightsi::hydraulics {

double pumping_power_w(double delta_p_pa, double volumetric_flow_m3_per_s,
                       double pump_efficiency) {
  ensure_non_negative(delta_p_pa, "pressure drop");
  ensure_non_negative(volumetric_flow_m3_per_s, "volumetric flow");
  ensure(pump_efficiency > 0.0 && pump_efficiency <= 1.0,
         "pump efficiency must be in (0, 1]");
  return delta_p_pa * volumetric_flow_m3_per_s / pump_efficiency;
}

double minor_loss_pa(double loss_coefficient, double density_kg_per_m3,
                     double velocity_m_per_s) {
  ensure_non_negative(loss_coefficient, "loss coefficient");
  ensure_positive(density_kg_per_m3, "density");
  ensure_non_negative(velocity_m_per_s, "velocity");
  return loss_coefficient * density_kg_per_m3 * velocity_m_per_s * velocity_m_per_s / 2.0;
}

}  // namespace brightsi::hydraulics
