// Laminar flow in rectangular microchannels.
//
// Covers everything the paper's hydraulic statements need: hydraulic
// diameter, the Shah–London friction correlation f*Re(aspect), the
// Darcy–Weisbach pressure drop, fully developed laminar Nusselt numbers
// (H1 boundary condition) and the exact Poiseuille velocity profile series
// used by the co-laminar transport FVM.
#ifndef BRIGHTSI_HYDRAULICS_DUCT_H
#define BRIGHTSI_HYDRAULICS_DUCT_H

#include <vector>

namespace brightsi::hydraulics {

/// A straight rectangular duct. `width` is the electrode-gap direction (y)
/// in flow-cell usage; `height` is the etch depth (z); flow runs along
/// `length` (x).
class RectangularDuct {
 public:
  RectangularDuct(double width_m, double height_m, double length_m);

  [[nodiscard]] double width() const { return width_m_; }
  [[nodiscard]] double height() const { return height_m_; }
  [[nodiscard]] double length() const { return length_m_; }

  [[nodiscard]] double cross_section_area() const { return width_m_ * height_m_; }
  [[nodiscard]] double wetted_perimeter() const { return 2.0 * (width_m_ + height_m_); }
  [[nodiscard]] double hydraulic_diameter() const {
    return 4.0 * cross_section_area() / wetted_perimeter();
  }
  /// min(width, height) / max(width, height), in (0, 1].
  [[nodiscard]] double aspect_ratio() const;

  /// Fanning friction factor times Reynolds number for fully developed
  /// laminar flow (Shah & London polynomial; 14.23 for a square duct,
  /// 24 in the parallel-plate limit).
  [[nodiscard]] double friction_factor_reynolds() const;

  /// Fully developed pressure drop over `length`:
  /// dp = 2 (f Re) mu v L / Dh^2 (laminar Darcy–Weisbach).
  [[nodiscard]] double pressure_drop_pa(double dynamic_viscosity_pa_s,
                                        double mean_velocity_m_per_s) const;

  /// Pressure gradient dp/dx in Pa/m at the given viscosity and velocity.
  [[nodiscard]] double pressure_gradient_pa_per_m(double dynamic_viscosity_pa_s,
                                                  double mean_velocity_m_per_s) const;

  /// Mean velocity for a volumetric flow rate (m^3/s).
  [[nodiscard]] double mean_velocity(double volumetric_flow_m3_per_s) const;

  /// Re = rho v Dh / mu.
  [[nodiscard]] double reynolds(double density_kg_per_m3, double dynamic_viscosity_pa_s,
                                double mean_velocity_m_per_s) const;

  /// Fully developed laminar Nusselt number, four-wall H1 boundary
  /// condition, interpolated from the Shah & London table by aspect ratio.
  [[nodiscard]] double nusselt_h1() const;

  /// Laminar hydraulic conductance Q / dp = A Dh^2 / (2 fRe mu L).
  [[nodiscard]] double hydraulic_conductance(double dynamic_viscosity_pa_s) const;

 private:
  double width_m_;
  double height_m_;
  double length_m_;
};

/// Exact rectangular-duct Poiseuille profile (cosh/cos double series),
/// normalized so the cross-section mean is 1. Coordinates are measured from
/// one corner: y in [0, width], z in [0, height].
class DuctVelocityProfile {
 public:
  /// `series_terms` odd terms are used (51 is plenty for <1e-10 error at
  /// the aspect ratios of this project).
  explicit DuctVelocityProfile(const RectangularDuct& duct, int series_terms = 51);

  /// u(y, z) / v_mean.
  [[nodiscard]] double normalized_at(double y_m, double z_m) const;

  /// Depth-averaged profile (1/H) \int u dz / v_mean as a function of y.
  /// This is the 1-D profile the co-laminar FVM transports against.
  [[nodiscard]] double depth_averaged(double y_m) const;

  /// Peak-to-mean velocity ratio (2.096 for a square duct, 1.5 for plates).
  [[nodiscard]] double max_over_mean() const;

 private:
  double half_width_;   // a: y in [-a, a] internally
  double half_height_;  // b: z in [-b, b] internally
  int terms_;
  double normalization_ = 1.0;          // converts raw series to mean-1 units
  std::vector<double> depth_avg_coeff_; // per odd term, for depth_averaged()

  [[nodiscard]] double raw_at(double y_centered, double z_centered) const;
  [[nodiscard]] double raw_depth_averaged(double y_centered) const;
};

}  // namespace brightsi::hydraulics

#endif  // BRIGHTSI_HYDRAULICS_DUCT_H
