// Tests of the persistence layer behind the shardable sweep service: the
// shared binary framing (core/binfile.h), canonical scenario hashing, the
// content-addressed result store with its lease protocol, mission
// checkpoint files, and the execution backends' byte-identity contract
// across shard counts, thread counts and kill-and-resume cycles.
//
// Every negative-path test feeds deliberately damaged bytes through the
// readers — they must throw a descriptive std::runtime_error, never crash
// or read out of bounds (the sanitize CI job runs this suite under
// ASan/UBSan).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/binfile.h"
#include "core/mission.h"
#include "sweep/execution.h"
#include "sweep/registry.h"
#include "sweep/result_store.h"
#include "sweep/runner.h"
#include "sweep/scenario_hash.h"

namespace co = brightsi::core;
namespace fs = std::filesystem;
namespace sw = brightsi::sweep;

namespace {

std::string csv_of(const sw::SweepResult& result) {
  std::stringstream stream;
  sw::write_sweep_csv(stream, result);
  return stream.str();
}

/// A fresh, empty directory path under the test temp dir.
std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("brightsi_store_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// An 8-row plan over the (fast, thermal-solve-free) array evaluator.
sw::SweepPlan small_array_grid() {
  sw::SweepPlan plan;
  plan.name = "store_grid";
  plan.base = co::power7_system_config();
  plan.evaluator = sw::array_power_evaluator();
  plan.add_grid({{"flow_ml_min", {48.0, 200.0, 400.0, 676.0}},
                 {"channel_gap_um", {150.0, 250.0}}});
  return plan;
}

sw::StoreScope scope_of(const sw::SweepPlan& plan) {
  return sw::StoreScope{plan.name, plan.evaluator.name, plan.evaluator.metrics};
}

/// The record logs of a store directory, in filename order.
std::vector<fs::path> record_logs(const std::string& dir) {
  std::vector<fs::path> logs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("records-", 0) == 0) {
      logs.push_back(entry.path());
    }
  }
  std::sort(logs.begin(), logs.end());
  return logs;
}

// ----------------------------------------------------------- core/binfile

TEST(Binfile, PrimitivesRoundTripBitwise) {
  std::string out;
  co::put_u8(out, 0xAB);
  co::put_u32(out, 0xDEADBEEFu);
  co::put_u64(out, 0x0123456789ABCDEFull);
  co::put_f64(out, -0.0);
  co::put_f64(out, 5e-324);  // smallest subnormal
  co::put_bytes(out, "hello");

  co::ByteReader in(out, "test buffer");
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  const double neg_zero = in.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // -0.0 survives, not just its value
  EXPECT_EQ(in.f64(), 5e-324);
  EXPECT_EQ(in.bytes(), "hello");
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(Binfile, Crc32MatchesTheIeeeTestVector) {
  EXPECT_EQ(co::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(co::crc32(""), 0u);
}

TEST(Binfile, ReaderThrowsOnTruncationInsteadOfOverreading) {
  const std::string four_bytes("\x01\x02\x03\x04", 4);
  co::ByteReader in(four_bytes, "short file");
  EXPECT_THROW((void)in.u64(), std::runtime_error);

  std::string claims_more;
  co::put_u32(claims_more, 100);  // length prefix promising 100 bytes
  co::ByteReader lying(claims_more, "lying file");
  EXPECT_THROW((void)lying.bytes(), std::runtime_error);
}

TEST(Binfile, HeaderRejectsWrongMagicAndVersion) {
  const std::string header = co::make_binfile_header("BSISTOR1", 3, 0x1234);
  {
    co::ByteReader in(header, "store file");
    const co::BinfileHeader parsed = co::read_binfile_header(in, "BSISTOR1", 3);
    EXPECT_EQ(parsed.format_version, 3u);
    EXPECT_EQ(parsed.salt, 0x1234u);
  }
  {
    co::ByteReader in(header, "store file");
    EXPECT_THROW((void)co::read_binfile_header(in, "BSIJRNL1", 3), std::runtime_error);
  }
  {
    co::ByteReader in(header, "store file");
    try {
      (void)co::read_binfile_header(in, "BSISTOR1", 4);
      FAIL() << "version mismatch must throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("incompatible"), std::string::npos) << e.what();
    }
  }
  {
    const std::string stub = header.substr(0, 6);  // shorter than the magic
    co::ByteReader in(stub, "stub file");
    EXPECT_THROW((void)co::read_binfile_header(in, "BSISTOR1", 3), std::runtime_error);
  }
}

TEST(Binfile, RecordTornTailVsMidStreamCorruption) {
  std::string out;
  co::put_record(out, "payload-one");
  co::put_record(out, "payload-two");

  {
    co::ByteReader in(out, "log");
    std::string_view payload;
    EXPECT_EQ(co::read_record(in, payload), co::RecordStatus::kOk);
    EXPECT_EQ(payload, "payload-one");
    EXPECT_EQ(co::read_record(in, payload), co::RecordStatus::kOk);
    EXPECT_EQ(payload, "payload-two");
  }
  {
    // A frame running past end-of-buffer is a torn tail, not corruption.
    const std::string torn = out.substr(0, out.size() - 3);
    co::ByteReader in(torn, "log");
    std::string_view payload;
    EXPECT_EQ(co::read_record(in, payload), co::RecordStatus::kOk);
    EXPECT_EQ(co::read_record(in, payload), co::RecordStatus::kTruncated);
  }
  {
    // A bit flip inside a complete frame is corruption and must throw.
    std::string corrupt = out;
    corrupt[6] ^= 0x01;  // inside "payload-one"
    co::ByteReader in(corrupt, "log");
    std::string_view payload;
    EXPECT_THROW((void)co::read_record(in, payload), std::runtime_error);
  }
}

// ------------------------------------------------------- scenario hashing

TEST(ScenarioHash, DeterministicAndOrderInsensitive) {
  sw::ScenarioSpec ab;
  ab.name = "row";
  ab.set("flow_ml_min", 200.0);
  ab.set("inlet_c", 27.0);
  sw::ScenarioSpec ba;
  ba.name = "row";
  ba.set("inlet_c", 27.0);
  ba.set("flow_ml_min", 200.0);

  const sw::ScenarioHash h1 = sw::hash_scenario(ab, 42);
  EXPECT_EQ(h1, sw::hash_scenario(ab, 42));  // deterministic
  EXPECT_EQ(h1, sw::hash_scenario(ba, 42));  // override order canonicalized
  EXPECT_NE(h1, sw::hash_scenario(ab, 43));  // salt participates

  sw::ScenarioSpec renamed = ab;
  renamed.name = "other row";
  EXPECT_NE(h1, sw::hash_scenario(renamed, 42));  // name participates

  sw::ScenarioSpec retuned = ab;
  retuned.set("flow_ml_min", 200.0000000001);
  EXPECT_NE(h1, sw::hash_scenario(retuned, 42));  // value bits participate
}

TEST(ScenarioHash, CanonicalizesNegativeZeroButKeepsOtherBitPatterns) {
  // 0.0 and -0.0 compare equal everywhere a parameter value is consumed,
  // so they must name the same evaluation: a -0.0 produced by snapped
  // optimizer arithmetic must not fork a second store row for the same
  // physical design.
  sw::ScenarioSpec pos;
  pos.name = "z";
  pos.set("inlet_c", 0.0);
  sw::ScenarioSpec neg;
  neg.name = "z";
  neg.set("inlet_c", -0.0);
  EXPECT_EQ(sw::hash_scenario(pos, 7), sw::hash_scenario(neg, 7));

  // Every other bit pattern still hashes by raw IEEE-754 bits: values a
  // printf would round together stay distinct evaluations.
  sw::ScenarioSpec nearby = pos;
  nearby.set("inlet_c", 5e-324);  // smallest subnormal: != 0.0
  EXPECT_NE(sw::hash_scenario(pos, 7), sw::hash_scenario(nearby, 7));
}

TEST(ScenarioHash, HexIs32LowercaseChars) {
  const sw::ScenarioHash hash{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  EXPECT_EQ(hash.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(sw::ScenarioHash{}.hex(), std::string(32, '0'));
}

TEST(ScenarioHash, ShardAssignmentPartitionsThePlan) {
  const sw::SweepPlan plan = sw::make_registered_plan("ablation_geometry");
  const std::uint64_t salt = scope_of(plan).salt();
  int counts[3] = {0, 0, 0};
  for (const sw::ScenarioSpec& scenario : plan.scenarios) {
    const int shard = sw::hash_scenario(scenario, salt).shard_of(3);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 3);
    ++counts[shard];
  }
  EXPECT_EQ(counts[0] + counts[1] + counts[2],
            static_cast<int>(plan.scenarios.size()));
}

TEST(ScenarioHash, StoreSaltSeparatesScopesAndFormatVersions) {
  const std::vector<std::string> metrics = {"a", "b"};
  const std::uint64_t salt = sw::store_salt("plan", "eval", metrics);
  EXPECT_EQ(salt, sw::store_salt("plan", "eval", metrics));
  EXPECT_NE(salt, sw::store_salt("other", "eval", metrics));
  EXPECT_NE(salt, sw::store_salt("plan", "other", metrics));
  EXPECT_NE(salt, sw::store_salt("plan", "eval", {"a", "c"}));
  EXPECT_NE(salt, sw::store_salt("plan", "eval", {"b", "a"}));  // order matters
}

TEST(ScenarioHash, MissionTrajectoryKeyIgnoresElectrochemicalKnobs) {
  sw::ScenarioSpec small_tank;
  small_tank.name = "tank=2";
  small_tank.set("flow_ml_min", 200.0);
  small_tank.set("tank_ml", 2.0);
  small_tank.set("initial_soc", 0.9);
  sw::ScenarioSpec big_tank;
  big_tank.name = "tank=50";
  big_tank.set("flow_ml_min", 200.0);
  big_tank.set("tank_ml", 50.0);
  big_tank.set("initial_soc", 0.5);

  // Same thermal trajectory: tank and SOC are mission_thermal_invariant
  // (and the name never participates).
  EXPECT_EQ(sw::mission_trajectory_key(small_tank), sw::mission_trajectory_key(big_tank));

  sw::ScenarioSpec other_flow = small_tank;
  other_flow.set("flow_ml_min", 48.0);
  EXPECT_NE(sw::mission_trajectory_key(small_tank), sw::mission_trajectory_key(other_flow));

  sw::ScenarioSpec other_dt = small_tank;
  other_dt.set("mission_dt_s", 0.07);
  EXPECT_NE(sw::mission_trajectory_key(small_tank), sw::mission_trajectory_key(other_dt));
}

// ----------------------------------------------------------- result store

TEST(ResultStore, AppendReloadFindRoundTrip) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("roundtrip");
  sw::ResultStore store(dir, scope_of(plan));

  sw::ScenarioResult row;
  row.name = plan.scenarios[0].name;
  row.overrides = plan.scenarios[0].overrides;
  row.metrics = {1.5, -0.0, 3.25, 0.0, 5e-324};
  const sw::ScenarioHash hash = sw::hash_scenario(plan.scenarios[0], store.salt());
  store.append(hash, row);
  EXPECT_EQ(store.appended_count(), 1);

  // A second instance (fresh process, conceptually) sees the row bitwise.
  sw::ResultStore reader(dir, scope_of(plan), /*create=*/false, "r");
  EXPECT_EQ(reader.reload(), 1u);
  const sw::ScenarioResult* hit = reader.find(hash);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->name, row.name);
  EXPECT_EQ(hit->overrides, row.overrides);
  ASSERT_EQ(hit->metrics.size(), row.metrics.size());
  for (std::size_t i = 0; i < row.metrics.size(); ++i) {
    EXPECT_EQ(hit->metrics[i], row.metrics[i]);
  }
  EXPECT_TRUE(std::signbit(hit->metrics[1]));  // -0.0 survived the disk trip
  EXPECT_FALSE(hit->failed);
  EXPECT_EQ(reader.find(sw::ScenarioHash{1, 2}), nullptr);
}

TEST(ResultStore, FailedRowsPersistTheirError) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("failed_rows");
  sw::ResultStore store(dir, scope_of(plan));
  sw::ScenarioResult row;
  row.name = "broken";
  row.failed = true;
  row.error = "channel groups must divide the channel count";
  row.metrics.assign(plan.evaluator.metrics.size(), 0.0);
  store.append(sw::ScenarioHash{9, 9}, row);

  store.reload();
  const sw::ScenarioResult* hit = store.find(sw::ScenarioHash{9, 9});
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->failed);
  EXPECT_EQ(hit->error, row.error);
}

TEST(ResultStore, MissingStoreAndScopeMismatchThrow) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("scope");
  EXPECT_THROW(sw::ResultStore(dir, scope_of(plan), /*create=*/false),
               std::runtime_error);

  sw::ResultStore store(dir, scope_of(plan));  // creates meta.bin

  sw::StoreScope other_plan = scope_of(plan);
  other_plan.scope = "some_other_plan";
  EXPECT_THROW(sw::ResultStore(dir, other_plan), std::runtime_error);

  sw::StoreScope other_metrics = scope_of(plan);
  other_metrics.metrics.push_back("extra");
  EXPECT_THROW(sw::ResultStore(dir, other_metrics), std::runtime_error);
}

TEST(ResultStore, TornTailIsDroppedButMidFileCorruptionThrows) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("damage");
  const std::uint64_t salt = scope_of(plan).salt();
  {
    sw::ResultStore store(dir, scope_of(plan));
    for (int i = 0; i < 2; ++i) {
      sw::ScenarioResult row;
      row.name = plan.scenarios[static_cast<std::size_t>(i)].name;
      row.metrics.assign(plan.evaluator.metrics.size(), static_cast<double>(i));
      store.append(sw::hash_scenario(plan.scenarios[static_cast<std::size_t>(i)], salt),
                   row);
    }
  }
  const std::vector<fs::path> logs = record_logs(dir);
  ASSERT_EQ(logs.size(), 1u);
  const std::string intact = co::read_file_bytes(logs[0].string());

  // Chop a few bytes off the tail: the kill signature. The last row is
  // lost, the store stays readable.
  co::write_file_bytes(logs[0].string(), std::string(intact, 0, intact.size() - 3));
  {
    sw::ResultStore store(dir, scope_of(plan), /*create=*/false, "r");
    EXPECT_EQ(store.reload(), 1u);
  }

  // Flip a byte inside the FIRST record: real corruption, loud failure.
  std::string corrupt = intact;
  corrupt[30] ^= 0x40;
  co::write_file_bytes(logs[0].string(), corrupt);
  {
    sw::ResultStore store(dir, scope_of(plan), /*create=*/false, "r");
    EXPECT_THROW((void)store.reload(), std::runtime_error);
  }

  // A wrong-magic record log is rejected by name, not silently skipped.
  co::write_file_bytes(logs[0].string(),
                       co::make_binfile_header("BSIJRNL1", 1, salt));
  {
    sw::ResultStore store(dir, scope_of(plan), /*create=*/false, "r");
    EXPECT_THROW((void)store.reload(), std::runtime_error);
  }
}

TEST(ResultStore, LeaseClaimReleaseAndSteal) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("leases");
  sw::ResultStore store(dir, scope_of(plan));
  const sw::ScenarioHash hash{0xAA, 0xBB};

  bool stolen = false;
  EXPECT_TRUE(store.try_claim(hash, 60.0, /*create_if_absent=*/true, &stolen));
  EXPECT_FALSE(stolen);
  // Held and fresh: a second claim fails, whether or not it may create.
  EXPECT_FALSE(store.try_claim(hash, 60.0, /*create_if_absent=*/true));
  EXPECT_FALSE(store.try_claim(hash, 60.0, /*create_if_absent=*/false));

  store.release(hash);
  store.release(hash);  // idempotent
  // Absent + probe-only (a foreign shard's row): no claim.
  EXPECT_FALSE(store.try_claim(hash, 60.0, /*create_if_absent=*/false));
  EXPECT_TRUE(store.try_claim(hash, 60.0, /*create_if_absent=*/true));

  // An expired lease is stolen even probe-only — the crashed-peer rescue.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  stolen = false;
  EXPECT_TRUE(store.try_claim(hash, 0.02, /*create_if_absent=*/false, &stolen));
  EXPECT_TRUE(stolen);
  store.release(hash);
}

TEST(ResultStore, LeaseWithFutureMtimeIsStolenNotHeldForever) {
  // Clock skew between hosts on a shared filesystem — or a store directory
  // copied with timestamps — can leave a lease file whose mtime is ahead
  // of this host's clock. Its age computes negative; before the clamp such
  // a lease looked "fresh" forever and orphaned its row.
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("future_lease");
  sw::ResultStore store(dir, scope_of(plan));
  const sw::ScenarioHash hash{0xCC, 0xDD};

  ASSERT_TRUE(store.try_claim(hash, 60.0, /*create_if_absent=*/true));
  const fs::path lease = fs::path(dir) / "leases" / (hash.hex() + ".lease");
  ASSERT_TRUE(fs::exists(lease));

  // Forward-date the lease a full hour: a fresh claim must steal it even
  // with a generous timeout, not wait the skew out.
  fs::last_write_time(lease, fs::file_time_type::clock::now() + std::chrono::hours(1));
  bool stolen = false;
  EXPECT_TRUE(store.try_claim(hash, 60.0, /*create_if_absent=*/false, &stolen));
  EXPECT_TRUE(stolen);

  // Back-date it past the timeout: the ordinary crashed-peer steal.
  fs::last_write_time(lease, fs::file_time_type::clock::now() - std::chrono::hours(1));
  stolen = false;
  EXPECT_TRUE(store.try_claim(hash, 60.0, /*create_if_absent=*/false, &stolen));
  EXPECT_TRUE(stolen);

  // Sanity: a just-claimed lease (mtime ~now) is still honored.
  EXPECT_FALSE(store.try_claim(hash, 60.0, /*create_if_absent=*/false));
  store.release(hash);
}

TEST(ResultStore, JournalRoundTripsEvents) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("journal");
  const std::uint64_t salt = scope_of(plan).salt();
  {
    sw::ResultStore store(dir, scope_of(plan));
    store.journal("run_begin", "shard 0/2");
    store.journal("lease_steal", "flow_ml_min=48");
    store.journal("run_end", "evaluated=4");
  }
  const auto journals = sw::read_store_journals(dir, salt);
  ASSERT_EQ(journals.size(), 1u);
  const std::vector<sw::JournalEvent>& events = journals[0].second;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].event, "run_begin");
  EXPECT_EQ(events[0].detail, "shard 0/2");
  EXPECT_EQ(events[1].event, "lease_steal");
  EXPECT_EQ(events[2].event, "run_end");
  // A journal of a different store (wrong salt) is rejected.
  EXPECT_THROW((void)sw::read_store_journals(dir, salt + 1), std::runtime_error);
}

// ----------------------------------------------------- mission checkpoint

TEST(MissionCheckpoint, RoundTripsBitwise) {
  brightsi::numerics::Grid3<double> state(3, 2, 2);
  state(0, 0, 0) = -0.0;
  state(1, 0, 0) = 5e-324;
  state(2, 1, 1) = 351.0625;
  const std::string path = temp_dir("ckpt") + ".bin";
  co::save_mission_checkpoint(path, state, 0.8125);

  const co::MissionCheckpoint loaded = co::load_mission_checkpoint(path);
  EXPECT_EQ(loaded.soc, 0.8125);
  ASSERT_EQ(loaded.state.nx(), 3);
  ASSERT_EQ(loaded.state.ny(), 2);
  ASSERT_EQ(loaded.state.nz(), 2);
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_EQ(loaded.state.data()[i], state.data()[i]) << i;
  }
  EXPECT_TRUE(std::signbit(loaded.state(0, 0, 0)));
  fs::remove(path);
}

TEST(MissionCheckpoint, RejectsDamagedFiles) {
  const std::string dir = temp_dir("ckpt_bad");
  fs::create_directories(dir);
  const std::string missing = dir + "/missing.bin";
  EXPECT_THROW((void)co::load_mission_checkpoint(missing), std::runtime_error);

  const std::string wrong_magic = dir + "/wrong.bin";
  co::write_file_bytes(wrong_magic, co::make_binfile_header("BSISTOR1", 1, 0));
  EXPECT_THROW((void)co::load_mission_checkpoint(wrong_magic), std::runtime_error);

  brightsi::numerics::Grid3<double> state(2, 2, 2, 300.0);
  const std::string good = dir + "/good.bin";
  co::save_mission_checkpoint(good, state, 0.5);
  const std::string intact = co::read_file_bytes(good);
  for (const std::size_t keep : {std::size_t{5}, std::size_t{21}, intact.size() - 4}) {
    const std::string truncated_path = dir + "/trunc.bin";
    co::write_file_bytes(truncated_path, std::string(intact, 0, keep));
    EXPECT_THROW((void)co::load_mission_checkpoint(truncated_path), std::runtime_error)
        << "kept " << keep << " bytes";
  }
  std::string corrupt = intact;
  corrupt[40] ^= 0x01;  // inside the framed payload -> crc mismatch
  const std::string corrupt_path = dir + "/corrupt.bin";
  co::write_file_bytes(corrupt_path, corrupt);
  EXPECT_THROW((void)co::load_mission_checkpoint(corrupt_path), std::runtime_error);
}

// ------------------------------------------------------ execution backends

TEST(ExecutionBackend, LocalBackendMatchesPlainRunner) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string reference = csv_of(sw::SweepRunner({2}).run(plan));
  const sw::SweepRunner runner(sw::make_local_backend({2}));
  const sw::SweepResult result = runner.run(plan);
  EXPECT_EQ(csv_of(result), reference);
  EXPECT_EQ(result.backend, "local");
  EXPECT_EQ(result.exec.evaluated, 8);
  EXPECT_EQ(result.exec.store_hits, 0);
}

TEST(ExecutionBackend, ShardedRunsMergeByteIdenticalAtAnyShardAndThreadCount) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string reference = csv_of(sw::SweepRunner({1}).run(plan));

  for (const int shard_count : {1, 2, 3}) {
    for (const int threads : {1, 4}) {
      const std::string dir = temp_dir("shards_" + std::to_string(shard_count) + "_" +
                                       std::to_string(threads));
      long long evaluated = 0;
      for (int index = 0; index < shard_count; ++index) {
        sw::ShardOptions options;
        options.store_dir = dir;
        options.scope = plan.name;
        options.shard_index = index;
        options.shard_count = shard_count;
        options.steal_orphaned_leases = false;  // strict partition: no overlap
        options.local = {threads, true};
        const sw::SweepRunner runner(sw::make_shard_backend(options));
        const sw::SweepResult partial = runner.run(plan);
        EXPECT_EQ(partial.backend, "shard");
        evaluated += partial.exec.evaluated;
      }
      // Strict partitioning: every row evaluated exactly once across shards.
      EXPECT_EQ(evaluated, 8) << shard_count << " shards, " << threads << " threads";
      const sw::SweepResult merged = sw::assemble_from_store(plan, dir);
      EXPECT_EQ(csv_of(merged), reference)
          << shard_count << " shards, " << threads << " threads";
      EXPECT_EQ(merged.backend, "merge");
    }
  }
}

TEST(ExecutionBackend, SequentialShardsStealNothingButFinishEverything) {
  // With steal enabled (the default), a later shard takes over rows whose
  // owner never ran — here shard 1 runs first, so it leaves shard 0's rows
  // pending (their leases were never created, nothing to steal), then
  // shard 0 completes the store.
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("steal_pending");

  sw::ShardOptions one;
  one.store_dir = dir;
  one.scope = plan.name;
  one.shard_index = 1;
  one.shard_count = 2;
  one.local = {2, true};
  const sw::SweepResult first = sw::SweepRunner(sw::make_shard_backend(one)).run(plan);
  EXPECT_GT(first.exec.pending, 0);
  EXPECT_GT(first.failure_count(), 0);  // pending rows read as failed rows
  for (const sw::ScenarioResult& row : first.rows) {
    if (row.failed) {
      EXPECT_EQ(row.error.rfind("pending: ", 0), 0u) << row.error;
    }
  }

  sw::ShardOptions zero = one;
  zero.shard_index = 0;
  const sw::SweepResult second = sw::SweepRunner(sw::make_shard_backend(zero)).run(plan);
  EXPECT_EQ(second.exec.pending, 0);
  EXPECT_EQ(second.failure_count(), 0);
  EXPECT_EQ(second.exec.store_hits + second.exec.evaluated, 8);
  EXPECT_EQ(csv_of(second), csv_of(sw::SweepRunner({1}).run(plan)));
}

TEST(ExecutionBackend, KillAndResumeReproducesTheUninterruptedRun) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string reference = csv_of(sw::SweepRunner({1}).run(plan));
  const std::string dir = temp_dir("resume");

  // "Kill" after 3 fresh evaluations (row-limit injection).
  sw::ShardOptions limited;
  limited.store_dir = dir;
  limited.scope = plan.name;
  limited.row_limit = 3;
  limited.local = {2, true};
  const sw::SweepResult killed = sw::SweepRunner(sw::make_shard_backend(limited)).run(plan);
  EXPECT_EQ(killed.exec.evaluated, 3);
  EXPECT_EQ(killed.exec.pending, 5);
  EXPECT_THROW((void)sw::assemble_from_store(plan, dir), std::runtime_error);
  const sw::SweepResult partial = sw::assemble_from_store(plan, dir, /*allow_missing=*/true);
  EXPECT_EQ(partial.exec.pending, 5);

  // Resume against the same store: only the missing rows are evaluated.
  sw::ShardOptions resume = limited;
  resume.row_limit = -1;
  const sw::SweepResult resumed = sw::SweepRunner(sw::make_shard_backend(resume)).run(plan);
  EXPECT_EQ(resumed.exec.store_hits, 3);
  EXPECT_EQ(resumed.exec.evaluated, 5);
  EXPECT_EQ(csv_of(resumed), reference);
  EXPECT_EQ(csv_of(sw::assemble_from_store(plan, dir)), reference);
}

TEST(ExecutionBackend, WarmStoreSkipsEveryEvaluation) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("warm");
  sw::ShardOptions options;
  options.store_dir = dir;
  options.scope = plan.name;
  options.local = {2, true};
  (void)sw::SweepRunner(sw::make_shard_backend(options)).run(plan);

  const sw::SweepResult warm = sw::SweepRunner(sw::make_shard_backend(options)).run(plan);
  EXPECT_EQ(warm.exec.evaluated, 0);
  EXPECT_EQ(warm.exec.store_hits, 8);
  EXPECT_EQ(csv_of(warm), csv_of(sw::SweepRunner({1}).run(plan)));
}

TEST(ExecutionBackend, StoreRefusesAForeignPlan) {
  const sw::SweepPlan plan = small_array_grid();
  const std::string dir = temp_dir("foreign");
  sw::ShardOptions options;
  options.store_dir = dir;
  options.scope = plan.name;
  options.local = {1, true};
  (void)sw::SweepRunner(sw::make_shard_backend(options)).run(plan);

  // Same directory, different plan: the scope check must fire (on the
  // first execute, where the evaluator completes the scope).
  sw::SweepPlan other = small_array_grid();
  other.name = "another_plan";
  sw::ShardOptions reuse = options;
  reuse.scope = other.name;
  const sw::SweepRunner runner(sw::make_shard_backend(reuse));
  EXPECT_THROW((void)runner.run(other), std::runtime_error);
  EXPECT_THROW((void)sw::assemble_from_store(other, dir), std::runtime_error);
}

TEST(ExecutionBackend, ShardOptionsValidateBounds) {
  sw::ShardOptions no_dir;
  EXPECT_THROW((void)sw::make_shard_backend(no_dir), std::invalid_argument);

  sw::ShardOptions bad_index;
  bad_index.store_dir = temp_dir("bounds");
  bad_index.shard_index = 2;
  bad_index.shard_count = 2;
  EXPECT_THROW((void)sw::make_shard_backend(bad_index), std::invalid_argument);
  bad_index.shard_index = -1;
  EXPECT_THROW((void)sw::make_shard_backend(bad_index), std::invalid_argument);
}

}  // namespace
