// Tests of the flow-cell transport models: wall closure, the co-laminar
// marching FVM (conservation, convergence, limiting behaviour), the film
// model, polarization utilities, the channel array and the Fig. 3
// reference validation (the paper's "within 10 %" claim).
#include <cmath>

#include <gtest/gtest.h>

#include "electrochem/nernst.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "flowcell/channel_model.h"
#include "flowcell/colaminar_fvm.h"
#include "flowcell/film_model.h"
#include "flowcell/polarization.h"
#include "flowcell/reference_data.h"
#include "flowcell/wall_closure.h"

namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;

namespace {

fc::FvmSettings fast_settings() {
  fc::FvmSettings s;
  s.transverse_cells = 60;
  s.axial_steps = 80;
  return s;
}

fc::ChannelOperatingConditions validation_conditions(double ul_per_min) {
  fc::ChannelOperatingConditions c;
  c.volumetric_flow_m3_per_s = ul_per_min * 1e-9 / 60.0;
  c.inlet_temperature_k = 300.0;
  return c;
}

const fc::ColaminarChannelModel& validation_model_fast() {
  static const fc::ColaminarChannelModel model(fc::kjeang2007_geometry(),
                                               ec::kjeang2007_validation_chemistry(),
                                               fast_settings());
  return model;
}

// ------------------------------------------------------------- wall closure
fc::ClosureParameters basic_closure() {
  fc::ClosureParameters p;
  p.temperature_k = 300.0;
  p.anode_exchange_current_a_per_m2 = 500.0;
  p.cathode_exchange_current_a_per_m2 = 100.0;
  p.anode_standard_potential_v = -0.255;
  p.cathode_standard_potential_v = 0.991;
  p.anode_wall_mass_transfer_m_per_s = 1e-4;
  p.cathode_wall_mass_transfer_m_per_s = 1e-4;
  p.area_specific_resistance_ohm_m2 = 5e-5;
  return p;
}

fc::WallConcentrations healthy_wall() { return {920.0, 80.0, 992.0, 8.0}; }

TEST(WallClosure, ZeroCurrentAtLocalOcv) {
  const auto p = basic_closure();
  const auto w = healthy_wall();
  const ec::RedoxCouple an{"", p.anode_standard_potential_v, 1, 0.5};
  const ec::RedoxCouple cat{"", p.cathode_standard_potential_v, 1, 0.5};
  const double ocv = ec::nernst_potential(cat, w.cathode_oxidized, w.cathode_reduced, 300.0) -
                     ec::nernst_potential(an, w.anode_oxidized, w.anode_reduced, 300.0);
  const auto r = fc::solve_wall_current(p, w, ocv);
  EXPECT_NEAR(r.total_current_density, 0.0, 1e-3);
  EXPECT_NEAR(r.local_open_circuit_v, ocv, 1e-9);
}

TEST(WallClosure, CurrentIncreasesAsVoltageDrops) {
  const auto p = basic_closure();
  const auto w = healthy_wall();
  double last = 0.0;
  for (const double v : {1.3, 1.1, 0.9, 0.7}) {
    const auto r = fc::solve_wall_current(p, w, v);
    EXPECT_GT(r.total_current_density, last);
    last = r.total_current_density;
  }
}

TEST(WallClosure, ClampsAtTransportLimit) {
  auto p = basic_closure();
  p.anode_wall_mass_transfer_m_per_s = 1e-6;  // starve the anode
  const auto w = healthy_wall();
  const auto r = fc::solve_wall_current(p, w, 0.1);
  EXPECT_TRUE(r.clamped);
  const double i_lim = 0.999 * 96485.0 * 1e-6 * w.anode_reduced;
  EXPECT_NEAR(r.total_current_density, i_lim, i_lim * 0.01);
}

TEST(WallClosure, MassCapBindsWhenTighterThanTransport) {
  auto p = basic_closure();
  p.anodic_mass_cap_a_per_m2 = 50.0;
  const auto r = fc::solve_wall_current(p, healthy_wall(), 0.1);
  EXPECT_TRUE(r.clamped);
  EXPECT_NEAR(r.total_current_density, 50.0, 1e-9);
}

TEST(WallClosure, NegativeCurrentWhenVoltageAboveOcv) {
  const auto p = basic_closure();
  const auto w = healthy_wall();
  const auto r = fc::solve_wall_current(p, w, 1.6);  // above local OCV ~1.43
  EXPECT_LT(r.total_current_density, 0.0);
}

TEST(WallClosure, ParasiticCurrentReducesExternal) {
  auto p = basic_closure();
  p.parasitic_current_density_a_per_m2 = 25.0;
  const auto w = healthy_wall();
  const auto r = fc::solve_wall_current(p, w, 1.0);
  EXPECT_NEAR(r.total_current_density - r.external_current_density, 25.0, 1e-9);
}

TEST(WallClosure, DepletedStationCarriesNoCurrent) {
  const auto p = basic_closure();
  const fc::WallConcentrations dead{0.0, 0.0, 0.0, 0.0};
  const auto r = fc::solve_wall_current(p, dead, 0.5);
  EXPECT_DOUBLE_EQ(r.total_current_density, 0.0);
}

TEST(WallClosure, OhmicResistanceLowersCurrent) {
  auto lo = basic_closure();
  auto hi = basic_closure();
  hi.area_specific_resistance_ohm_m2 = 20.0 * lo.area_specific_resistance_ohm_m2;
  const auto w = healthy_wall();
  EXPECT_GT(fc::solve_wall_current(lo, w, 0.9).total_current_density,
            fc::solve_wall_current(hi, w, 0.9).total_current_density);
}

// ---------------------------------------------------------------- geometry
TEST(ChannelSpec, PresetsValidate) {
  EXPECT_NO_THROW(fc::kjeang2007_geometry().validate());
  EXPECT_NO_THROW(fc::power7_channel_geometry().validate());
}

TEST(ChannelSpec, Power7ChannelIsFlowThrough) {
  EXPECT_EQ(fc::power7_channel_geometry().electrode_mode, fc::ElectrodeMode::kFlowThrough);
  EXPECT_EQ(fc::kjeang2007_geometry().electrode_mode, fc::ElectrodeMode::kPlanarWall);
}

TEST(ChannelSpec, ProjectedAreaMatchesPaper) {
  const auto g = fc::power7_channel_geometry();
  EXPECT_NEAR(g.projected_electrode_area_m2(), 22e-3 * 400e-6, 1e-12);
  EXPECT_NEAR(g.cross_section_area_m2(), 8e-8, 1e-15);
}

TEST(ChannelSpec, TemperatureProfileInterpolation) {
  fc::ChannelOperatingConditions c;
  c.volumetric_flow_m3_per_s = 1e-9;
  c.inlet_temperature_k = 300.0;
  c.axial_temperature_k = {300.0, 310.0, 320.0};
  EXPECT_DOUBLE_EQ(c.temperature_at(0.0), 300.0);
  EXPECT_DOUBLE_EQ(c.temperature_at(0.5), 310.0);
  EXPECT_DOUBLE_EQ(c.temperature_at(1.0), 320.0);
  EXPECT_DOUBLE_EQ(c.temperature_at(0.25), 305.0);
  c.axial_temperature_k.clear();
  EXPECT_DOUBLE_EQ(c.temperature_at(0.7), 300.0);
}

TEST(ChannelSpec, FvmSettingsValidation) {
  fc::FvmSettings s;
  s.transverse_cells = 4;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

// --------------------------------------------------------------------- FVM
TEST(ColaminarFvm, RejectsFlowThroughGeometry) {
  EXPECT_THROW(fc::ColaminarChannelModel(fc::power7_channel_geometry(),
                                         ec::power7_array_chemistry()),
               std::invalid_argument);
}

TEST(ColaminarFvm, OcvMatchesNernst) {
  const auto& model = validation_model_fast();
  const auto cond = validation_conditions(60.0);
  EXPECT_NEAR(model.open_circuit_voltage(cond), 1.434, 2e-3);
}

class FvmConservation : public ::testing::TestWithParam<double> {};

TEST_P(FvmConservation, VanadiumIsConservedAtEveryVoltage) {
  // Property: electrode reactions and crossover annihilation preserve
  // total vanadium molar flow.
  const auto& model = validation_model_fast();
  const auto sol = model.solve_at_voltage(GetParam(), validation_conditions(60.0));
  EXPECT_LT(sol.vanadium_balance_error, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Voltages, FvmConservation,
                         ::testing::Values(1.35, 1.2, 1.0, 0.8, 0.5, 0.2));

TEST(ColaminarFvm, PolarizationIsMonotone) {
  const auto& model = validation_model_fast();
  const auto cond = validation_conditions(60.0);
  double last = -1.0;
  for (const double v : {1.35, 1.25, 1.15, 1.05, 0.95, 0.85, 0.75}) {
    const double i = model.solve_at_voltage(v, cond).current_a;
    EXPECT_GT(i, last);
    last = i;
  }
}

TEST(ColaminarFvm, LimitingCurrentOrderedByFlow) {
  const auto& model = validation_model_fast();
  double last = 0.0;
  for (const double flow : {2.5, 10.0, 60.0, 300.0}) {
    const double i = model.solve_at_voltage(0.2, validation_conditions(flow)).current_a;
    EXPECT_GT(i, last);
    last = i;
  }
}

TEST(ColaminarFvm, LimitingCurrentScalesRoughlySqrtFlow) {
  const auto& model = validation_model_fast();
  const double i1 = model.solve_at_voltage(0.2, validation_conditions(10.0)).current_a;
  const double i4 = model.solve_at_voltage(0.2, validation_conditions(40.0)).current_a;
  EXPECT_NEAR(i4 / i1, 2.0, 0.35);  // boundary-layer scaling window
}

TEST(ColaminarFvm, CurrentNearZeroJustBelowOcv) {
  const auto& model = validation_model_fast();
  const auto cond = validation_conditions(60.0);
  const double ocv = model.open_circuit_voltage(cond);
  const auto sol = model.solve_at_voltage(ocv - 1e-5, cond);
  EXPECT_LT(std::abs(sol.mean_current_density_a_per_m2), 1.0);
}

TEST(ColaminarFvm, GridConvergence) {
  // The marching scheme converges first-order in the transverse spacing;
  // the default grid sits within ~5 % of a 2x refinement away from the
  // limiting cliff and ~10 % at it (quantified in bench/ablation_convergence).
  const fc::ColaminarChannelModel md(fc::kjeang2007_geometry(),
                                     ec::kjeang2007_validation_chemistry());  // default
  fc::FvmSettings fine;
  fine.transverse_cells = 240;
  fine.axial_steps = 400;
  const fc::ColaminarChannelModel mf(fc::kjeang2007_geometry(),
                                     ec::kjeang2007_validation_chemistry(), fine);
  const auto cond = validation_conditions(60.0);
  for (const double v : {1.2, 0.9}) {
    const double id = md.solve_at_voltage(v, cond).current_a;
    const double iq = mf.solve_at_voltage(v, cond).current_a;
    EXPECT_NEAR(id / iq, 1.0, 0.05) << "at V = " << v;
  }
  const double id = md.solve_at_voltage(0.5, cond).current_a;
  const double iq = mf.solve_at_voltage(0.5, cond).current_a;
  EXPECT_NEAR(id / iq, 1.0, 0.12);  // limiting region converges slowest
}

TEST(ColaminarFvm, TemperatureRaisesCurrentAtFixedVoltage) {
  const auto& model = validation_model_fast();
  auto cold = validation_conditions(60.0);
  auto hot = validation_conditions(60.0);
  hot.axial_temperature_k = {320.0};
  const double i_cold = model.solve_at_voltage(1.0, cold).current_a;
  const double i_hot = model.solve_at_voltage(1.0, hot).current_a;
  EXPECT_GT(i_hot, i_cold);
}

TEST(ColaminarFvm, FuelUtilizationBounded) {
  const auto& model = validation_model_fast();
  const auto sol = model.solve_at_voltage(0.2, validation_conditions(2.5));
  EXPECT_GT(sol.fuel_utilization, 0.1);  // slow flow converts a lot
  EXPECT_LE(sol.fuel_utilization, 1.0);
}

TEST(ColaminarFvm, AxialCurrentDecaysDownstream) {
  // Depleting boundary layers make the local current fall along the channel.
  const auto& model = validation_model_fast();
  const auto sol = model.solve_at_voltage(0.5, validation_conditions(60.0));
  ASSERT_GT(sol.axial_current_density_a_per_m2.size(), 10u);
  EXPECT_GT(sol.axial_current_density_a_per_m2[2],
            sol.axial_current_density_a_per_m2.back());
}

TEST(ColaminarFvm, OutletProfilesHaveExpectedShape) {
  const auto& model = validation_model_fast();
  const auto sol = model.solve_at_voltage(0.9, validation_conditions(60.0));
  const auto& v2 = sol.outlet_concentration_mol_per_m3[fc::kAnodeReduced];
  ASSERT_EQ(static_cast<int>(v2.size()), 60);
  // Fuel still rich mid-anolyte, depleted near the anode wall.
  EXPECT_GT(v2[15], v2[0]);
  // Oxidant side carries no fuel beyond the interdiffusion zone.
  EXPECT_LT(v2.back(), 1.0);
}

TEST(ColaminarFvm, CrossoverLossPositiveAndBounded) {
  // At low flow the interdiffusion zone is wide, so crossover can rival
  // the delivered current; it can never exceed the fuel the stream carries.
  const auto& model = validation_model_fast();
  const auto cond = validation_conditions(10.0);
  const auto sol = model.solve_at_voltage(0.9, cond);
  EXPECT_GT(sol.crossover_current_a, 0.0);
  const double faradaic_limit =
      96485.0 * 920.0 * cond.volumetric_flow_m3_per_s / 2.0;  // anolyte V2+ content
  EXPECT_LT(sol.crossover_current_a, faradaic_limit);
  // The interdiffusion zone scales as sqrt(D L / v): in absolute terms the
  // crossover grows ~sqrt(flow), but as a fraction of the fuel carried it
  // shrinks with flow.
  const auto fast_cond = validation_conditions(300.0);
  const auto fast = model.solve_at_voltage(0.9, fast_cond);
  EXPECT_GT(fast.crossover_current_a, sol.crossover_current_a);
  const double fast_faradaic = 96485.0 * 920.0 * fast_cond.volumetric_flow_m3_per_s / 2.0;
  EXPECT_LT(fast.crossover_current_a / fast_faradaic,
            sol.crossover_current_a / faradaic_limit);
}

TEST(ColaminarFvm, ParasiticCurrentDepressesDeliveredCurrent) {
  const auto& model = validation_model_fast();
  auto clean = validation_conditions(60.0);
  auto leaky = validation_conditions(60.0);
  leaky.parasitic_current_density_a_per_m2 = 5.0;
  const double i_clean = model.solve_at_voltage(1.2, clean).current_a;
  const double i_leaky = model.solve_at_voltage(1.2, leaky).current_a;
  EXPECT_LT(i_leaky, i_clean);
}

// ------------------------------------------------------------- film model
TEST(FilmModel, AgreesWithFvmWithinModelSpread) {
  // The plug-flow film model is a coarser physical reduction; require
  // same-order agreement in the ohmic-to-transport transition region.
  const fc::FilmChannelModel film(fc::kjeang2007_geometry(),
                                  ec::kjeang2007_validation_chemistry(), 120);
  const auto& fvm = validation_model_fast();
  const auto cond = validation_conditions(60.0);
  for (const double v : {1.2, 0.9}) {
    const double i_film = film.solve_at_voltage(v, cond).current_a;
    const double i_fvm = fvm.solve_at_voltage(v, cond).current_a;
    EXPECT_GT(i_film / i_fvm, 0.5) << "V = " << v;
    EXPECT_LT(i_film / i_fvm, 2.2) << "V = " << v;
  }
}

TEST(FilmModel, FlowThroughModeRemovesTransportPlateau) {
  // Same geometry, planar vs flow-through electrodes: the planar cell
  // pins a growing share of stations at the boundary-layer limit while
  // the flow-through cell stays kinetics/ohmic limited and carries more
  // current everywhere.
  auto planar = fc::power7_channel_geometry();
  planar.electrode_mode = fc::ElectrodeMode::kPlanarWall;
  const fc::FilmChannelModel planar_model(planar, ec::power7_array_chemistry(), 120);
  const fc::FilmChannelModel ft_model(fc::power7_channel_geometry(),
                                      ec::power7_array_chemistry(), 120);
  fc::ChannelOperatingConditions cond;
  cond.volumetric_flow_m3_per_s = 676e-6 / 60.0 / 88.0;
  cond.inlet_temperature_k = 300.0;
  const auto sol_planar = planar_model.solve_at_voltage(0.4, cond);
  const auto sol_ft = ft_model.solve_at_voltage(0.4, cond);
  EXPECT_GT(sol_ft.current_a, 1.3 * sol_planar.current_a);
  EXPECT_GT(sol_planar.clamped_station_fraction, 0.1);  // transport-pinned tail
  EXPECT_DOUBLE_EQ(sol_ft.clamped_station_fraction, 0.0);
}

TEST(FilmModel, FlowThroughUtilizationBound) {
  // Current can never exceed the Faradaic content of the streams.
  const fc::FilmChannelModel model(fc::power7_channel_geometry(),
                                   ec::power7_array_chemistry(), 120);
  fc::ChannelOperatingConditions cond;
  cond.volumetric_flow_m3_per_s = 676e-6 / 60.0 / 88.0;
  cond.inlet_temperature_k = 300.0;
  const double faradaic_limit = 96485.0 * 2000.0 * cond.volumetric_flow_m3_per_s / 2.0;
  const auto sol = model.solve_at_voltage(0.05, cond);
  EXPECT_LT(sol.current_a, faradaic_limit);
  EXPECT_LE(sol.fuel_utilization, 1.0);
}

TEST(FilmModel, HotterElectrolyteMakesMorePower) {
  const fc::FilmChannelModel model(fc::power7_channel_geometry(),
                                   ec::power7_array_chemistry(), 120);
  fc::ChannelOperatingConditions cold;
  cold.volumetric_flow_m3_per_s = 676e-6 / 60.0 / 88.0;
  cold.inlet_temperature_k = 300.0;
  auto hot = cold;
  hot.axial_temperature_k = {310.15};
  EXPECT_GT(model.solve_at_voltage(1.0, hot).power_w,
            model.solve_at_voltage(1.0, cold).power_w);
}

// ------------------------------------------------------------ polarization
TEST(Polarization, SweepIsWellFormed) {
  const auto& model = validation_model_fast();
  const auto curve = fc::sweep_polarization(model, validation_conditions(60.0), 0.3, 12);
  ASSERT_EQ(curve.points().size(), 12u);
  for (std::size_t i = 1; i < curve.points().size(); ++i) {
    EXPECT_LT(curve.points()[i].cell_voltage_v, curve.points()[i - 1].cell_voltage_v);
    EXPECT_GE(curve.points()[i].current_a, curve.points()[i - 1].current_a - 1e-9);
  }
}

TEST(Polarization, InterpolationRoundTrip) {
  const auto& model = validation_model_fast();
  const auto curve = fc::sweep_polarization(model, validation_conditions(60.0), 0.3, 15);
  const double v_probe = 1.0;
  const double i = curve.current_at_voltage(v_probe);
  EXPECT_NEAR(curve.voltage_at_current(i), v_probe, 0.05);
}

TEST(Polarization, MaxPowerPointIsInterior) {
  const auto& model = validation_model_fast();
  const auto curve = fc::sweep_polarization(model, validation_conditions(60.0), 0.2, 20);
  const auto mpp = curve.max_power_point();
  EXPECT_GT(mpp.power_w, curve.points().front().power_w);
  EXPECT_GT(mpp.power_w, curve.points().back().power_w);
}

TEST(Polarization, RejectsUnsortedCurves) {
  std::vector<fc::PolarizationPoint> pts = {{1.0, 0.0, 0.0, 0.0}, {1.2, 1.0, 0.0, 1.2}};
  EXPECT_THROW(fc::PolarizationCurve{pts}, std::invalid_argument);
}

TEST(Polarization, ClampsOutsideSweepRange) {
  std::vector<fc::PolarizationPoint> pts = {{1.2, 0.0, 0.0, 0.0}, {0.8, 2.0, 0.0, 1.6}};
  const fc::PolarizationCurve curve(pts);
  EXPECT_DOUBLE_EQ(curve.current_at_voltage(1.5), 0.0);
  EXPECT_DOUBLE_EQ(curve.current_at_voltage(0.5), 2.0);
}

// ------------------------------------------------------------------- array
TEST(CellArray, SpecMatchesTableII) {
  const auto spec = fc::power7_array_spec();
  EXPECT_EQ(spec.channel_count, 88);
  EXPECT_NEAR(spec.total_flow_m3_per_s, 676e-6 / 60.0, 1e-12);
  EXPECT_DOUBLE_EQ(spec.inlet_temperature_k, 300.0);
  EXPECT_NEAR(spec.per_channel_flow(), 676e-6 / 60.0 / 88.0, 1e-15);
}

TEST(CellArray, CurrentScalesWithChannelCount) {
  auto spec1 = fc::power7_array_spec();
  spec1.channel_count = 44;
  spec1.total_flow_m3_per_s /= 2.0;  // same per-channel flow
  const fc::FlowCellArray half(spec1, ec::power7_array_chemistry());
  const fc::FlowCellArray full(fc::power7_array_spec(), ec::power7_array_chemistry());
  EXPECT_NEAR(full.current_at_voltage(1.0), 2.0 * half.current_at_voltage(1.0), 1e-6);
}

TEST(CellArray, PaperHeadlineSixAmpsAtOneVolt) {
  // Fig. 7: the 88-channel array sources ~6 A at 1 V.
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  EXPECT_NEAR(array.current_at_voltage(1.0), 6.0, 0.25);
}

TEST(CellArray, VoltageAtCurrentInverts) {
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  const double v = array.voltage_at_current(6.0);
  EXPECT_NEAR(array.current_at_voltage(v), 6.0, 0.05);
}

TEST(CellArray, VoltageAtCurrentThrowsBeyondCapability) {
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  EXPECT_THROW((void)array.voltage_at_current(1e4), std::runtime_error);
}

TEST(CellArray, SweepMatchesPointQueries) {
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  const auto curve = array.sweep(0.4, 14);
  EXPECT_NEAR(curve.current_at_voltage(1.0), array.current_at_voltage(1.0), 0.2);
}

TEST(CellArray, PerChannelProfilesSumLikeUniform) {
  auto spec = fc::power7_array_spec();
  spec.channel_count = 4;
  spec.total_flow_m3_per_s = 4.0 * fc::power7_array_spec().per_channel_flow();
  const fc::FlowCellArray array(spec, ec::power7_array_chemistry());
  const std::vector<std::vector<double>> profiles(4, std::vector<double>{300.0});
  EXPECT_NEAR(array.current_at_voltage_per_channel(1.0, profiles),
              array.current_at_voltage(1.0), 1e-9);
  const std::vector<std::vector<double>> wrong_count(3, std::vector<double>{300.0});
  EXPECT_THROW((void)array.current_at_voltage_per_channel(1.0, wrong_count),
               std::invalid_argument);
}

TEST(CellArray, HydraulicsMatchPaperVelocity) {
  const fc::FlowCellArray array(fc::power7_array_spec(), ec::power7_array_chemistry());
  const auto h = array.hydraulics_at_spec_flow();
  // Paper quotes ~1.4 m/s average velocity; exact per-channel arithmetic
  // with Table II values gives 1.6 m/s.
  EXPECT_NEAR(h.mean_velocity_m_per_s, 1.6, 0.02);
  EXPECT_GT(h.reynolds, 100.0);
  EXPECT_LT(h.reynolds, 2000.0);  // laminar, as the membrane-less cell needs
}

// -------------------------------------------------- Fig. 3 validation data
TEST(ReferenceData, FourFlowRatesPresent) {
  const auto& curves = fc::fig3_reference_curves();
  ASSERT_EQ(curves.size(), 4u);
  EXPECT_DOUBLE_EQ(curves[0].flow_rate_ul_per_min, 2.5);
  EXPECT_DOUBLE_EQ(curves[3].flow_rate_ul_per_min, 300.0);
}

TEST(ReferenceData, CurvesMonotoneInCurrentAndVoltage) {
  for (const auto& curve : fc::fig3_reference_curves()) {
    for (std::size_t i = 1; i < curve.points.size(); ++i) {
      EXPECT_GT(curve.points[i].current_density_ma_per_cm2,
                curve.points[i - 1].current_density_ma_per_cm2);
      EXPECT_LT(curve.points[i].cell_voltage_v, curve.points[i - 1].cell_voltage_v);
    }
  }
}

TEST(ReferenceData, LimitingCurrentsOrderedByFlow) {
  const auto& curves = fc::fig3_reference_curves();
  for (std::size_t i = 1; i < curves.size(); ++i) {
    EXPECT_GT(curves[i].points.back().current_density_ma_per_cm2,
              curves[i - 1].points.back().current_density_ma_per_cm2);
  }
}

TEST(Fig3Validation, ModelMatchesReferenceWithinTenPercent) {
  // The paper's validation claim (Section II-B): the transport model
  // reproduces the reference polarization data within 10 % at all four
  // flow rates. Default-resolution model, exactly like the bench.
  const fc::ColaminarChannelModel model(fc::kjeang2007_geometry(),
                                        ec::kjeang2007_validation_chemistry());
  for (const auto& curve : fc::fig3_reference_curves()) {
    const auto cond = validation_conditions(curve.flow_rate_ul_per_min);
    for (const auto& point : curve.points) {
      const auto sol = model.solve_at_voltage(point.cell_voltage_v, cond);
      const double i_model = sol.mean_current_density_a_per_m2 / 10.0;  // mA/cm^2
      const double err = std::abs(i_model - point.current_density_ma_per_cm2) /
                         point.current_density_ma_per_cm2;
      EXPECT_LT(err, 0.10) << "flow " << curve.flow_rate_ul_per_min << " uL/min at "
                           << point.cell_voltage_v << " V: model " << i_model
                           << " vs reference " << point.current_density_ma_per_cm2;
    }
  }
}

// ------------------------------------------------------------ channel model
TEST(ChannelModelFactory, PicksImplementationByMode) {
  const auto planar = fc::make_channel_model(fc::kjeang2007_geometry(),
                                             ec::kjeang2007_validation_chemistry());
  EXPECT_NE(dynamic_cast<const fc::ColaminarChannelModel*>(planar.get()), nullptr);
  const auto ft = fc::make_channel_model(fc::power7_channel_geometry(),
                                         ec::power7_array_chemistry());
  EXPECT_NE(dynamic_cast<const fc::FilmChannelModel*>(ft.get()), nullptr);
}

}  // namespace
