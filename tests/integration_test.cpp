// Cross-module integration scenarios: end-to-end consistency between the
// flow-cell supply, the thermal package and the PDN, plus failure
// injection (blocked channels, starved flow, broken VRM populations).
#include <cmath>

#include <gtest/gtest.h>

#include "core/cosim.h"
#include "core/system_config.h"
#include "electrochem/vanadium.h"
#include "flowcell/cell_array.h"
#include "hydraulics/manifold.h"
#include "hydraulics/pump.h"
#include "pdn/vrm.h"
#include "thermal/model.h"

namespace co = brightsi::core;
namespace fc = brightsi::flowcell;
namespace ec = brightsi::electrochem;
namespace hy = brightsi::hydraulics;
namespace th = brightsi::thermal;
namespace ch = brightsi::chip;

namespace {

co::SystemConfig fast_config() {
  co::SystemConfig config = co::power7_system_config();
  config.thermal_grid.axial_cells = 8;
  config.fvm.axial_steps = 80;
  config.channel_groups = 4;
  return config;
}

// --------------------------------------------------- paper headline numbers
TEST(Integration, PaperHeadlineChain) {
  // One pass over every headline claim, end to end, from a single config.
  co::IntegratedMpsocSystem system(fast_config());
  const auto r = system.run();

  // (1) Array sources ~6 A at 1 V (Fig. 7).
  EXPECT_NEAR(system.array().current_at_voltage(1.0), 6.0, 0.25);
  // (2) Cache rail: 5 W at 1 V (Section III-A) is deliverable.
  EXPECT_TRUE(r.supply.feasible);
  // (3) Whole die cooled to a low-40s peak (Fig. 9).
  EXPECT_LT(r.peak_temperature_c, 43.0);
  // (4) Generation beats pumping (Section III-B energy argument).
  EXPECT_GT(r.net_power_w, 0.0);
  // (5) Rail integrity window (Fig. 8).
  EXPECT_GT(r.grid.min_voltage_v, 0.95);
}

TEST(Integration, SupplyAndDemandBookkeepingConsistent) {
  co::IntegratedMpsocSystem system(fast_config());
  const auto r = system.run();
  // Array power = rail power / VRM efficiency (when feasible); the
  // operating-point solve tolerates ~0.1 % on the power match.
  EXPECT_NEAR(r.supply.array_power_w,
              r.supply.vrm_output_power_w + r.supply.vrm_loss_w, 0.02);
  EXPECT_NEAR(r.supply.array_power_w * 0.86, r.supply.vrm_output_power_w, 0.05);
  // Net power = array power - pumping power.
  EXPECT_NEAR(r.net_power_w, r.supply.array_power_w - r.pumping_power_w, 1e-9);
}

TEST(Integration, ThermalProfilesFeedElectrochemistry) {
  co::IntegratedMpsocSystem system(fast_config());
  const auto r = system.run();
  // Channel profiles exist, warm downstream, and the coupled current
  // exceeds the isothermal one (warmer electrolyte helps).
  ASSERT_EQ(r.thermal.channel_fluid_axial_k().size(), 88u);
  EXPECT_GT(r.coupled_current_a, r.isothermal_current_a);
}

// -------------------------------------------------------- failure injection
TEST(FailureInjection, ReducedFlowHeatsAndStillConverges) {
  // The paper's 48 ml/min "hot coolant" case: order-of-magnitude less flow
  // heats the die markedly but the co-simulation still converges, and the
  // generated power rises (Section III-B).
  auto config = fast_config();
  config.array_spec.total_flow_m3_per_s = 48e-6 / 60.0;
  co::IntegratedMpsocSystem starved(config);
  const auto hot = starved.run();
  EXPECT_TRUE(hot.converged);

  co::IntegratedMpsocSystem nominal(fast_config());
  const auto base = nominal.run();
  EXPECT_GT(hot.peak_temperature_c, base.peak_temperature_c + 5.0);
  EXPECT_GT(hot.thermal_current_gain, base.thermal_current_gain);
}

TEST(FailureInjection, BlockedChannelsShiftFlowToSurvivors) {
  // A blocked channel's flow redistributes: survivors each carry more and
  // the plenum pressure rises.
  std::vector<hy::RectangularDuct> healthy(8, hy::RectangularDuct(200e-6, 400e-6, 22e-3));
  const double total = 8e-6;
  const auto base = hy::split_by_conductance(total, healthy, 2.53e-3);

  std::vector<hy::RectangularDuct> degraded = healthy;
  degraded[0] = hy::RectangularDuct(20e-6, 400e-6, 22e-3);  // 90 % blocked
  const auto after = hy::split_by_conductance(total, degraded, 2.53e-3);
  EXPECT_LT(after.per_channel_flow_m3_per_s[0], base.per_channel_flow_m3_per_s[0] / 10.0);
  EXPECT_GT(after.per_channel_flow_m3_per_s[1], base.per_channel_flow_m3_per_s[1]);
  EXPECT_GT(after.common_pressure_drop_pa, base.common_pressure_drop_pa);
  double sum = 0.0;
  for (const double q : after.per_channel_flow_m3_per_s) {
    sum += q;
  }
  EXPECT_NEAR(sum, total, total * 1e-12);
}

TEST(FailureInjection, LostChannelsDegradeArrayGracefully) {
  // Electrically losing channels scales the array current down
  // proportionally (channels are parallel).
  auto spec = fc::power7_array_spec();
  const fc::FlowCellArray full(spec, ec::power7_array_chemistry());
  spec.channel_count = 66;  // 25 % of channels lost
  spec.total_flow_m3_per_s *= 66.0 / 88.0;
  const fc::FlowCellArray degraded(spec, ec::power7_array_chemistry());
  EXPECT_NEAR(degraded.current_at_voltage(1.0) / full.current_at_voltage(1.0), 0.75, 1e-3);
}

TEST(FailureInjection, VrmWindowViolationDetected) {
  // If the bus had to sag below the converter window the report flags it.
  auto config = fast_config();
  config.vrm_spec.min_input_voltage_v = 1.4;  // unrealistic window
  co::IntegratedMpsocSystem system(config);
  const auto r = system.run();
  EXPECT_TRUE(r.supply.feasible);
  EXPECT_FALSE(r.supply.vrm_window_ok);
}

TEST(FailureInjection, PumpDegradationErodesNetGain) {
  co::IntegratedMpsocSystem system(fast_config());
  const auto r = system.run();
  const double degraded_pump = hy::pumping_power_w(
      r.pressure_drop_bar * 1e5, fast_config().array_spec.total_flow_m3_per_s, 0.1);
  EXPECT_GT(degraded_pump, r.pumping_power_w);
  // Even a 10 %-efficient pump keeps the balance positive at this flow.
  EXPECT_GT(r.supply.array_power_w, degraded_pump);
}

// ----------------------------------------------------------- cross checks
TEST(Integration, ThermalModelAndArrayAgreeOnGeometry) {
  const auto config = fast_config();
  th::ThermalModel model(config.stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM,
                         config.thermal_grid);
  EXPECT_EQ(model.channel_count(), config.array_spec.channel_count);
  const th::MicrochannelLayerSpec* channel_layer = config.stack.bottom_channel_layer();
  ASSERT_NE(channel_layer, nullptr);
  EXPECT_DOUBLE_EQ(channel_layer->channel_width_m,
                   config.array_spec.geometry.electrode_gap_m);
  EXPECT_DOUBLE_EQ(channel_layer->layer_height_m,
                   config.array_spec.geometry.channel_height_m);
}

TEST(Integration, CoolantPropertiesFlowFromChemistryToThermal) {
  const auto config = fast_config();
  EXPECT_DOUBLE_EQ(config.chemistry.electrolyte.thermal_conductivity_w_per_m_k, 0.67);
  EXPECT_DOUBLE_EQ(config.chemistry.electrolyte.volumetric_heat_capacity_j_per_m3_k,
                   4.187e6);
}

TEST(Integration, IsothermalCosimMatchesStandaloneArray) {
  // With a cold chip (zero power), the co-simulated array current at the
  // probe voltage equals the isothermal standalone value.
  auto config = fast_config();
  config.power_spec.core_w_per_cm2 = 0.0;
  config.power_spec.cache_w_per_cm2 = 1e-6;  // keep a nonzero rail demand
  config.power_spec.logic_w_per_cm2 = 0.0;
  config.power_spec.io_w_per_cm2 = 0.0;
  config.power_spec.background_w_per_cm2 = 0.0;
  co::IntegratedMpsocSystem system(config);
  const auto r = system.run();
  EXPECT_NEAR(r.coupled_current_a, r.isothermal_current_a,
              std::abs(r.isothermal_current_a) * 5e-3);
}

}  // namespace
