// Tests of the compact thermal model: analytic limits, conservation
// properties, monotonicity in flow/power, transient convergence to steady
// state and the POWER7+ microchannel stack.
#include <algorithm>
#include <cmath>
#include <functional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "chip/power7.h"
#include "thermal/model.h"
#include "thermal/solve_context.h"
#include "thermal/stack.h"

namespace th = brightsi::thermal;
namespace ch = brightsi::chip;

namespace {

constexpr double kFlow = 676e-6 / 60.0;
constexpr double kInlet = 300.15;

th::ThermalModel::GridSettings coarse_grid() {
  th::ThermalModel::GridSettings g;
  g.axial_cells = 8;
  g.solid_stack_x_cells = 24;
  return g;
}

/// Uniform-power floorplan helper.
ch::Floorplan uniform_floorplan(double total_power_w) {
  ch::Floorplan fp(ch::kPower7DieWidthM, ch::kPower7DieHeightM);
  fp.add_block({"blanket", ch::BlockType::kLogic,
                {0.0, 0.0, ch::kPower7DieWidthM, ch::kPower7DieHeightM},
                total_power_w / (ch::kPower7DieWidthM * ch::kPower7DieHeightM)});
  return fp;
}

th::OperatingPoint nominal_op() {
  th::OperatingPoint op;
  op.total_flow_m3_per_s = kFlow;
  op.inlet_temperature_k = kInlet;
  return op;
}

/// Asserts that `fn` throws std::invalid_argument whose message contains
/// `expected` — the validate() contract is that errors name the offending
/// layer.
template <typename Fn>
void expect_invalid_with(const Fn& fn, const std::string& expected) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument containing '" << expected << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
        << "message was: " << e.what();
  }
}

// ------------------------------------------------------------------- stacks
TEST(Stack, Power7StackValidates) {
  EXPECT_NO_THROW(th::power7_microchannel_stack().validate());
  EXPECT_NO_THROW(th::power7_conventional_stack().validate());
}

TEST(Stack, Power7StackShape) {
  const auto stack = th::power7_microchannel_stack();
  ASSERT_TRUE(stack.has_channels());
  EXPECT_EQ(stack.channel_layer_count(), 1);
  EXPECT_EQ(stack.source_layer_count(), 1);
  const th::MicrochannelLayerSpec* channel = stack.bottom_channel_layer();
  ASSERT_NE(channel, nullptr);
  EXPECT_EQ(channel->channel_count, 88);
  EXPECT_DOUBLE_EQ(channel->channel_width_m, 200e-6);
  EXPECT_DOUBLE_EQ(channel->layer_height_m, 400e-6);
  EXPECT_TRUE(std::get<th::SolidLayerSpec>(stack.layers.front()).has_heat_source);
}

TEST(Stack, RejectsSourcelessStack) {
  auto stack = th::power7_microchannel_stack();
  std::get<th::SolidLayerSpec>(stack.layers.front()).has_heat_source = false;
  expect_invalid_with([&] { stack.validate(); }, "no layer carries the heat sources");
}

TEST(Stack, ConventionalStackHasTopFilm) {
  const auto stack = th::power7_conventional_stack(2500.0, 318.15);
  EXPECT_FALSE(stack.has_channels());
  EXPECT_DOUBLE_EQ(stack.top_heat_transfer_w_per_m2_k, 2500.0);
}

TEST(Stack, RejectsZeroOrNegativeThicknessNamingTheLayer) {
  auto stack = th::power7_microchannel_stack();
  std::get<th::SolidLayerSpec>(stack.layers[1]).thickness_m = 0.0;
  expect_invalid_with([&] { stack.validate(); }, "bulk_si");
  std::get<th::SolidLayerSpec>(stack.layers[1]).thickness_m = -1e-6;
  expect_invalid_with([&] { stack.validate(); }, "layer thickness (bulk_si)");
}

TEST(Stack, RejectsChannelWiderThanPitchNamingTheLayer) {
  auto stack = th::power7_microchannel_stack();
  stack.bottom_channel_layer()->interior_wall_width_m = 0.0;
  expect_invalid_with([&] { stack.validate(); },
                      "channel wider than pitch (microchannel)");
  stack.bottom_channel_layer()->interior_wall_width_m = -5e-6;
  expect_invalid_with([&] { stack.validate(); }, "channel wider than pitch");
}

TEST(Stack, RejectsZeroZCellsNamingTheLayer) {
  auto stack = th::power7_microchannel_stack();
  std::get<th::SolidLayerSpec>(stack.layers[1]).z_cells = 0;
  expect_invalid_with([&] { stack.validate(); }, "layer z_cells (bulk_si)");

  auto channel_stack = th::power7_microchannel_stack();
  channel_stack.bottom_channel_layer()->z_cells = 0;
  expect_invalid_with([&] { channel_stack.validate(); },
                      "channel layer z_cells (microchannel)");
}

TEST(Stack, RejectsAdjacentChannelLayersNamingBoth) {
  auto stack = th::power7_microchannel_stack();
  th::MicrochannelLayerSpec second = *stack.bottom_channel_layer();
  second.name = "extra_channel";
  // Insert right after the existing channel layer (before the cap).
  stack.layers.insert(stack.layers.end() - 1, second);
  expect_invalid_with(
      [&] { stack.validate(); },
      "adjacent channel layers 'microchannel' and 'extra_channel'");
}

TEST(Stack, RejectsChannelLayerAtTheBottom) {
  th::StackSpec stack;
  stack.add(th::MicrochannelLayerSpec{});
  stack.add(th::SolidLayerSpec{"die", 500e-6, 2, th::silicon(), true});
  expect_invalid_with([&] { stack.validate(); }, "cannot be the bottom layer");
}

TEST(Stack, RejectsMisalignedChannelPatternsAcrossLayers) {
  auto stack = th::two_die_stack();
  auto* channels = stack.bottom_channel_layer();
  channels->channel_count = 44;  // upper layer still has 88
  expect_invalid_with([&] { stack.validate(); }, "does not match the channel pattern");
}

TEST(Stack, MultiDieFactoryShapes) {
  const auto two = th::two_die_stack();
  EXPECT_EQ(two.source_layer_count(), 2);
  EXPECT_EQ(two.channel_layer_count(), 2);

  const auto top_only = th::multi_die_stack(3, /*interlayer_cooling=*/false);
  EXPECT_EQ(top_only.source_layer_count(), 3);
  EXPECT_EQ(top_only.channel_layer_count(), 1);

  const auto single = th::multi_die_stack(1);
  EXPECT_EQ(single.source_layer_count(), 1);
  EXPECT_EQ(single.channel_layer_count(), 1);
}

// --------------------------------------------------------------- grid build
TEST(ThermalModel, GridFollowsChannelPattern) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  EXPECT_EQ(model.channel_count(), 88);
  // edge wall + 88 channels + 87 interior walls + edge wall
  EXPECT_EQ(model.nx(), 177);
  EXPECT_EQ(model.ny(), 8);
  EXPECT_NEAR(model.x_edges().back(), ch::kPower7DieWidthM, 1e-12);
}

TEST(ThermalModel, RejectsChannelPatternWiderThanDie) {
  auto stack = th::power7_microchannel_stack();
  stack.bottom_channel_layer()->channel_count = 200;
  EXPECT_THROW(th::ThermalModel(stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM),
               std::invalid_argument);
}

// ---------------------------------------------------------- analytic limits
TEST(ThermalModel, ZeroPowerStaysAtInlet) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = uniform_floorplan(0.0);
  const auto sol = model.solve_steady(fp, nominal_op());
  EXPECT_NEAR(sol.peak_temperature_k, kInlet, 1e-6);
}

TEST(ThermalModel, CaloricBalanceMatchesAnalyticOutletRise) {
  // Property: with adiabatic walls, T_out_mean = T_in + Q / (rho cp Vdot).
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  for (const double power : {20.0, 66.0, 120.0}) {
    const auto fp = uniform_floorplan(power);
    const auto sol = model.solve_steady(fp, nominal_op());
    const double expected_rise = power / (4.187e6 * kFlow);
    double outlet_mean = 0.0;
    for (const double t : sol.channel_outlet_k()) {
      outlet_mean += t;
    }
    outlet_mean /= static_cast<double>(sol.channel_outlet_k().size());
    // The z-averaged outlet sample slightly differs from the flow-weighted
    // mixed mean; the energy balance itself is exact.
    EXPECT_NEAR(outlet_mean - kInlet, expected_rise, 0.25 * expected_rise + 0.02);
    EXPECT_LT(sol.energy_balance_error, 1e-6) << "power " << power;
  }
}

TEST(ThermalModel, EnergyBalanceOnRealFloorplan) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  EXPECT_LT(sol.energy_balance_error, 1e-6);
  EXPECT_NEAR(sol.fluid_heat_absorbed_w, fp.total_power(), fp.total_power() * 1e-5);
}

TEST(ThermalModel, MoreFlowRunsCooler) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  auto op = nominal_op();
  const auto nominal = model.solve_steady(fp, op);
  op.total_flow_m3_per_s = kFlow / 4.0;
  const auto starved = model.solve_steady(fp, op);
  EXPECT_GT(starved.peak_temperature_k, nominal.peak_temperature_k + 1.0);
}

TEST(ThermalModel, MorePowerRunsHotterProportionally) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto sol1 = model.solve_steady(uniform_floorplan(30.0), nominal_op());
  const auto sol2 = model.solve_steady(uniform_floorplan(60.0), nominal_op());
  const double rise1 = sol1.peak_temperature_k - kInlet;
  const double rise2 = sol2.peak_temperature_k - kInlet;
  EXPECT_NEAR(rise2 / rise1, 2.0, 0.02);  // linear system
}

TEST(ThermalModel, HotterInletShiftsFieldUniformly) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  auto op = nominal_op();
  const auto base = model.solve_steady(fp, op);
  op.inlet_temperature_k = kInlet + 10.0;
  const auto hot = model.solve_steady(fp, op);
  EXPECT_NEAR(hot.peak_temperature_k - base.peak_temperature_k, 10.0, 1e-3);
}

TEST(ThermalModel, PeakSitsOverACoreNearOutlet) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  EXPECT_EQ(sol.peak_iz, 0);                     // source plane
  EXPECT_GE(sol.peak_iy, model.ny() / 2);        // downstream half
  // Peak x within a core column span (cores occupy 1.5-7.0 / 16.55-22.05 mm).
  const double x = model.x_edges()[static_cast<std::size_t>(sol.peak_ix)];
  const bool in_left = x > 1.2e-3 && x < 7.2e-3;
  const bool in_right = x > 16.3e-3 && x < 22.3e-3;
  EXPECT_TRUE(in_left || in_right) << "peak at x = " << x;
}

TEST(ThermalModel, Fig9OperatingPointLandsNearPaperPeak)
{
  // Paper Fig. 9: 41 C peak at full load, 676 ml/min, 27 C inlet. Our
  // reconstruction lands in the upper-30s; assert the reproduced band.
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM);
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  const double peak_c = sol.peak_temperature_k - 273.15;
  EXPECT_GT(peak_c, 33.0);
  EXPECT_LT(peak_c, 43.0);
}

TEST(ThermalModel, BlockTemperaturesOrdered) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  double core_mean = 0.0, cache_mean = 0.0;
  int cores = 0, caches = 0;
  for (const auto& bt : sol.block_temperatures) {
    if (bt.name.rfind("core", 0) == 0) {
      core_mean += bt.mean_k;
      ++cores;
    } else if (bt.name.rfind("l2", 0) == 0 || bt.name.rfind("l3", 0) == 0) {
      cache_mean += bt.mean_k;
      ++caches;
    }
    EXPECT_GE(bt.max_k, bt.mean_k - 1e-9);
  }
  EXPECT_GT(core_mean / cores, cache_mean / caches + 2.0);  // cores run hotter
}

TEST(ThermalModel, ChannelProfilesMonotoneDownstream) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  ASSERT_EQ(sol.channel_fluid_axial_k().size(), 88u);
  // Fluid warms along the channel under every core column.
  const auto& profile = sol.channel_fluid_axial_k()[10];
  EXPECT_GT(profile.back(), profile.front());
  EXPECT_GE(profile.front(), kInlet - 1e-9);
}

// ------------------------------------------------------------- conventional
TEST(ThermalModel, ConventionalStackMuchHotterAtFullLoad) {
  const th::ThermalModel liquid(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                                ch::kPower7DieHeightM, coarse_grid());
  const th::ThermalModel air(th::power7_conventional_stack(), ch::kPower7DieWidthM,
                             ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto cold = liquid.solve_steady(fp, nominal_op());
  th::OperatingPoint air_op;  // no coolant; top film handles it
  const auto hot = air.solve_steady(fp, air_op);
  EXPECT_GT(hot.peak_temperature_k, cold.peak_temperature_k + 20.0);
  EXPECT_LT(hot.energy_balance_error, 1e-6);
}

TEST(ThermalModel, SolidStackNeedsTopFilm) {
  auto stack = th::power7_conventional_stack();
  stack.top_heat_transfer_w_per_m2_k = 0.0;
  const th::ThermalModel model(stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM,
                               coarse_grid());
  const auto fp = uniform_floorplan(50.0);
  th::OperatingPoint op;
  EXPECT_THROW(model.solve_steady(fp, op), std::invalid_argument);
}

// ---------------------------------------------------------------- transient
TEST(ThermalModel, TransientConvergesToSteadyState) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  const auto steady = model.solve_steady(fp, op);

  auto state = model.uniform_state(kInlet);
  double peak = 0.0;
  for (int step = 0; step < 40; ++step) {
    const auto sol = model.step_transient(state, fp, op, 0.05);
    state = sol.temperature_k;
    peak = sol.peak_temperature_k;
  }
  EXPECT_NEAR(peak, steady.peak_temperature_k, 0.15);
}

TEST(ThermalModel, TransientStepMovesTowardSteady) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  auto state = model.uniform_state(kInlet);
  const auto after = model.step_transient(state, fp, op, 0.01);
  EXPECT_GT(after.peak_temperature_k, kInlet);
  const auto steady = model.solve_steady(fp, op);
  EXPECT_LT(after.peak_temperature_k, steady.peak_temperature_k + 1e-6);
}

TEST(ThermalModel, TransientRejectsBadInputs) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  auto state = model.uniform_state(kInlet);
  EXPECT_THROW(model.step_transient(state, fp, nominal_op(), 0.0), std::invalid_argument);
  const auto wrong = brightsi::numerics::Grid3<double>(2, 2, 2, kInlet);
  EXPECT_THROW(model.step_transient(wrong, fp, nominal_op(), 0.1), std::invalid_argument);
}

// ------------------------------------------------------------ solve context
TEST(SolveContext, WarmStartMatchesColdStartWithinSolverTolerance) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  const auto cold = model.solve_steady(fp, op);

  th::ThermalSolveContext context(model);
  const auto first = context.solve_steady(fp, op);
  const auto warm = context.solve_steady(fp, op);  // warm-started repeat

  // The first context solve is bitwise the one-shot solve.
  EXPECT_DOUBLE_EQ(first.peak_temperature_k, cold.peak_temperature_k);
  // The warm repeat agrees with the cold solve to (well within) the solver
  // tolerance, and needs essentially no iterations.
  double max_abs_difference = 0.0;
  for (std::size_t i = 0; i < cold.temperature_k.data().size(); ++i) {
    max_abs_difference = std::max(
        max_abs_difference, std::abs(warm.temperature_k.data()[i] -
                                     cold.temperature_k.data()[i]));
  }
  EXPECT_LT(max_abs_difference, 1e-6);
  EXPECT_LE(warm.solver_report.iterations, first.solver_report.iterations / 4);
  EXPECT_EQ(context.stats().solves, 2);
}

TEST(SolveContext, WarmStartTracksOperatingPointChanges) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  th::ThermalSolveContext context(model);
  auto op = nominal_op();
  (void)context.solve_steady(fp, op);

  // A different operating point solved warm must match its own cold solve,
  // not drift toward the previous one.
  op.total_flow_m3_per_s = kFlow / 2.0;
  const auto warm = context.solve_steady(fp, op);
  const auto cold = model.solve_steady(fp, op);
  EXPECT_NEAR(warm.peak_temperature_k, cold.peak_temperature_k, 1e-6);
  EXPECT_LT(warm.energy_balance_error, 1e-6);
}

TEST(SolveContext, ResetRestoresColdStartExactly) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  th::ThermalSolveContext context(model);
  const auto first = context.solve_steady(fp, op);
  (void)context.solve_steady(fp, op);
  context.reset();
  const auto after_reset = context.solve_steady(fp, op);
  // Cold solves are deterministic, so reset reproduces the first solve
  // bit-for-bit (the sweep cache's byte-identity guarantee rests on this).
  EXPECT_EQ(after_reset.temperature_k.data(), first.temperature_k.data());
  EXPECT_EQ(after_reset.solver_report.iterations, first.solver_report.iterations);
}

TEST(SolveContext, TransientStepsMatchTheOneShotPath) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();

  auto state_one_shot = model.uniform_state(kInlet);
  auto state_context = model.uniform_state(kInlet);
  th::ThermalSolveContext context(model);
  for (int step = 0; step < 5; ++step) {
    const auto a = model.step_transient(state_one_shot, fp, op, 0.05);
    const auto b = context.step_transient(state_context, fp, op, 0.05);
    state_one_shot = a.temperature_k;
    state_context = b.temperature_k;
    ASSERT_EQ(state_context.data(), state_one_shot.data()) << "step " << step;
  }
}

TEST(SolveContext, MixedSteadyAndTransientSolvesShareOneContext) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  th::ThermalSolveContext context(model);
  const auto steady = context.solve_steady(fp, op);
  // A transient step from the steady field stays put (it is the fixed point
  // of the backward-Euler map), even through the mode switch.
  const auto step = context.step_transient(steady.temperature_k, fp, op, 0.05);
  EXPECT_NEAR(step.peak_temperature_k, steady.peak_temperature_k, 1e-6);
  const auto steady_again = context.solve_steady(fp, op);
  EXPECT_NEAR(steady_again.peak_temperature_k, steady.peak_temperature_k, 1e-6);
}

TEST(SolveContext, NonConvergenceReportsResidualAndIterations) {
  auto settings = coarse_grid();
  settings.solver.max_iterations = 1;
  settings.solver.relative_tolerance = 1e-300;
  settings.solver.absolute_tolerance = 0.0;
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, settings);
  const auto fp = ch::make_power7_floorplan();
  auto state = model.uniform_state(kInlet);
  for (const auto& attempt :
       {std::function<void()>([&] { (void)model.solve_steady(fp, nominal_op()); }),
        std::function<void()>([&] { (void)model.step_transient(state, fp, nominal_op(), 0.05); })}) {
    try {
      attempt();
      FAIL() << "expected non-convergence";
    } catch (const std::runtime_error& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("residual"), std::string::npos) << message;
      EXPECT_NE(message.find("iterations"), std::string::npos) << message;
    }
  }
}

// -------------------------------------------------------------- validation
TEST(ThermalModel, OperatingPointValidation) {
  th::OperatingPoint op;
  op.total_flow_m3_per_s = 0.0;
  EXPECT_THROW(op.validate(true), std::invalid_argument);
  EXPECT_NO_THROW(op.validate(false));
}

// ------------------------------------------------------------ multi-die 3D
TEST(MultiDie, SingleFloorplanApiMatchesSpanApiBitwise) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto one = model.solve_steady(fp, nominal_op());
  const ch::Floorplan* floorplans[] = {&fp};
  const auto span_solution =
      model.solve_steady(std::span<const ch::Floorplan* const>(floorplans),
                         nominal_op());
  EXPECT_EQ(one.temperature_k.data(), span_solution.temperature_k.data());
  EXPECT_EQ(one.peak_temperature_k, span_solution.peak_temperature_k);
  ASSERT_EQ(span_solution.channel_layers.size(), 1u);
  EXPECT_DOUBLE_EQ(span_solution.channel_layers.front().flow_fraction, 1.0);
}

TEST(MultiDie, SingleFloorplanApiRejectsMultiDieStacks) {
  const th::ThermalModel model(th::two_die_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  EXPECT_EQ(model.die_count(), 2);
  EXPECT_EQ(model.channel_layer_count(), 2);
  EXPECT_THROW((void)model.solve_steady(ch::make_power7_floorplan(), nominal_op()),
               std::invalid_argument);
}

TEST(MultiDie, TwoDieSolveConservesEnergyAndSplitsFlow) {
  const th::ThermalModel model(th::two_die_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto core_die = ch::make_power7_floorplan();
  const auto memory_die = ch::make_power7_floorplan(ch::memory_die_power_spec());
  const ch::Floorplan* floorplans[] = {&core_die, &memory_die};
  const auto sol = model.solve_steady(floorplans, nominal_op());

  EXPECT_NEAR(sol.total_power_w, core_die.total_power() + memory_die.total_power(), 1e-9);
  EXPECT_LT(sol.energy_balance_error, 1e-6);

  // Equal-geometry layers split the pump flow evenly and absorb all power.
  ASSERT_EQ(sol.channel_layers.size(), 2u);
  double split_total = 0.0;
  double heat_total = 0.0;
  for (const th::ChannelLayerSolution& layer : sol.channel_layers) {
    EXPECT_NEAR(layer.flow_fraction, 0.5, 1e-9);
    split_total += layer.flow_m3_per_s;
    heat_total += layer.heat_absorbed_w;
  }
  EXPECT_NEAR(split_total, kFlow, kFlow * 1e-9);
  EXPECT_NEAR(heat_total, sol.fluid_heat_absorbed_w, 1e-9);

  // One active-layer map per die; hot core die peaks above the memory die.
  ASSERT_EQ(sol.die_maps_k.size(), 2u);
  double peak_die0 = 0.0, peak_die1 = 0.0;
  for (int iy = 0; iy < model.ny(); ++iy) {
    for (int ix = 0; ix < model.nx(); ++ix) {
      peak_die0 = std::max(peak_die0, sol.die_maps_k[0](ix, iy));
      peak_die1 = std::max(peak_die1, sol.die_maps_k[1](ix, iy));
    }
  }
  EXPECT_GT(peak_die0, peak_die1);

  // Upper-die blocks are reported with the die prefix.
  bool found_prefixed = false;
  for (const th::BlockTemperature& block : sol.block_temperatures) {
    found_prefixed = found_prefixed || block.name.rfind("die1:", 0) == 0;
  }
  EXPECT_TRUE(found_prefixed);
}

TEST(MultiDie, TallerChannelLayerTakesMoreFlow) {
  auto stack = th::two_die_stack();
  // Make the upper cooling layer twice as tall: lower hydraulic resistance.
  auto channels = stack.channel_layers();
  ASSERT_EQ(channels.size(), 2u);
  for (th::StackLayer& layer : stack.layers) {
    if (auto* channel = std::get_if<th::MicrochannelLayerSpec>(&layer)) {
      if (channel->name == "cool1") {
        channel->layer_height_m = 800e-6;
      }
    }
  }
  const th::ThermalModel model(stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM,
                               coarse_grid());
  const auto split = model.layer_flow_split(nominal_op());
  ASSERT_EQ(split.size(), 2u);
  EXPECT_GT(split[1], split[0] * 2.0);  // conductance grows superlinearly in height
  EXPECT_NEAR(split[0] + split[1], kFlow, kFlow * 1e-9);
}

TEST(MultiDie, InterlayerCoolingBeatsTopOnlyCoolingAtEqualPressureDrop) {
  // The hydraulically fair comparison: two parallel cooling layers pass
  // twice the flow at the same plenum-to-plenum pressure drop, so the
  // interlayer stack gets 2x the pump flow of the top-only baseline (each
  // layer then carries exactly the baseline's per-layer flow).
  const auto core_die = ch::make_power7_floorplan();
  const auto memory_die = ch::make_power7_floorplan(ch::memory_die_power_spec());
  const ch::Floorplan* floorplans[] = {&core_die, &memory_die};

  const th::ThermalModel interlayer(th::multi_die_stack(2, true), ch::kPower7DieWidthM,
                                    ch::kPower7DieHeightM, coarse_grid());
  const th::ThermalModel top_only(th::multi_die_stack(2, false), ch::kPower7DieWidthM,
                                  ch::kPower7DieHeightM, coarse_grid());
  auto double_flow = nominal_op();
  double_flow.total_flow_m3_per_s = 2.0 * kFlow;
  const auto cool = interlayer.solve_steady(floorplans, double_flow);
  const auto hot = top_only.solve_steady(floorplans, nominal_op());
  EXPECT_LT(cool.peak_temperature_k, hot.peak_temperature_k);
  EXPECT_LT(cool.energy_balance_error, 1e-6);
  EXPECT_LT(hot.energy_balance_error, 1e-6);
}

TEST(MultiDie, TransientConvergesToSteadyOnTwoDieStack) {
  const th::ThermalModel model(th::two_die_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto core_die = ch::make_power7_floorplan();
  const auto memory_die = ch::make_power7_floorplan(ch::memory_die_power_spec());
  const std::vector<const ch::Floorplan*> floorplans = {&core_die, &memory_die};
  const auto op = nominal_op();
  const auto steady = model.solve_steady(floorplans, op);

  th::ThermalSolveContext context(model);
  auto state = model.uniform_state(kInlet);
  double peak = 0.0;
  for (int step = 0; step < 40; ++step) {
    const auto sol = context.step_transient(state, floorplans, op, 0.05);
    state = sol.temperature_k;
    peak = sol.peak_temperature_k;
  }
  EXPECT_NEAR(peak, steady.peak_temperature_k, 0.2);
}


// --------------------------------------------------------------- multigrid

th::ThermalModel::GridSettings mg_grid() {
  th::ThermalModel::GridSettings g = coarse_grid();
  g.solver_config.kind = th::SolverKind::kMultigrid;
  return g;
}

TEST(SolverConfig, DefaultIsIlu0) {
  // The golden fig9 / sweep byte-identity guarantees hang off this default.
  const th::ThermalGridSettings settings;
  EXPECT_EQ(settings.solver_config.kind, th::SolverKind::kIlu0);
  EXPECT_FALSE(settings.solver_config.multigrid.mixed_precision);
}

TEST(SolverConfig, ParseAndNameRoundTrip) {
  EXPECT_EQ(th::parse_solver_kind("ilu0"), th::SolverKind::kIlu0);
  EXPECT_EQ(th::parse_solver_kind("mg"), th::SolverKind::kMultigrid);
  EXPECT_STREQ(th::solver_kind_name(th::SolverKind::kIlu0), "ilu0");
  EXPECT_STREQ(th::solver_kind_name(th::SolverKind::kMultigrid), "mg");
  EXPECT_THROW((void)th::parse_solver_kind("cholesky"), std::invalid_argument);
}

TEST(SolverConfig, ZCellThicknessesMatchTheStack) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const std::vector<double> dz = model.z_cell_thicknesses();
  ASSERT_EQ(static_cast<int>(dz.size()), model.nz());
  double total = 0.0;
  for (const double h : dz) {
    EXPECT_GT(h, 0.0);
    total += h;
  }
  double expected = 0.0;
  for (const th::StackLayer& layer : model.stack().layers) {
    if (const auto* solid = std::get_if<th::SolidLayerSpec>(&layer)) {
      expected += solid->thickness_m;
    } else {
      expected += std::get<th::MicrochannelLayerSpec>(layer).layer_height_m;
    }
  }
  EXPECT_NEAR(total, expected, 1e-12);
}

TEST(SolverConfig, MultigridMatchesIlu0OnSingleDie) {
  const auto fp = ch::make_power7_floorplan();
  const th::ThermalModel ilu_model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                                   ch::kPower7DieHeightM, coarse_grid());
  const th::ThermalModel mg_model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                                  ch::kPower7DieHeightM, mg_grid());
  const auto ilu = ilu_model.solve_steady(fp, nominal_op());
  const auto mg = mg_model.solve_steady(fp, nominal_op());
  ASSERT_TRUE(ilu.solver_report.converged);
  ASSERT_TRUE(mg.solver_report.converged);
  // Same operator, same tolerance, different preconditioner: solutions
  // agree to solver tolerance (fields span ~30 K above inlet).
  EXPECT_NEAR(mg.peak_temperature_k, ilu.peak_temperature_k, 1e-6);
  const auto& ti = ilu.temperature_k.data();
  const auto& tm = mg.temperature_k.data();
  ASSERT_EQ(ti.size(), tm.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < ti.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(ti[i] - tm[i]));
  }
  EXPECT_LT(max_diff, 1e-6);
}

TEST(SolverConfig, MultigridMatchesIlu0OnThreeDieStack) {
  const th::StackSpec stack = th::multi_die_stack(/*die_count=*/3);
  const auto core_die = ch::make_power7_floorplan();
  const auto memory_die = ch::make_power7_floorplan(ch::memory_die_power_spec());
  const ch::Floorplan* floorplans[] = {&core_die, &memory_die, &memory_die};

  const th::ThermalModel ilu_model(stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM,
                                   coarse_grid());
  const th::ThermalModel mg_model(stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM,
                                  mg_grid());
  const auto ilu = ilu_model.solve_steady(floorplans, nominal_op());
  const auto mg = mg_model.solve_steady(floorplans, nominal_op());
  ASSERT_TRUE(ilu.solver_report.converged);
  ASSERT_TRUE(mg.solver_report.converged);
  EXPECT_NEAR(mg.peak_temperature_k, ilu.peak_temperature_k, 1e-6);
  EXPECT_NEAR(mg.fluid_heat_absorbed_w, ilu.fluid_heat_absorbed_w,
              1e-6 * std::max(1.0, std::abs(ilu.fluid_heat_absorbed_w)));
  // The report surfaces the setup/iterate split for both paths.
  EXPECT_GE(mg.solver_report.setup_time_s, 0.0);
  EXPECT_GE(ilu.solver_report.setup_time_s, 0.0);
}

TEST(SolverConfig, MixedPrecisionCycleMatchesWithinSolverTolerance) {
  th::ThermalModel::GridSettings f32 = mg_grid();
  f32.solver_config.multigrid.mixed_precision = true;
  const auto fp = ch::make_power7_floorplan();
  const th::ThermalModel mg_model(th::two_die_stack(), ch::kPower7DieWidthM,
                                  ch::kPower7DieHeightM, mg_grid());
  const th::ThermalModel f32_model(th::two_die_stack(), ch::kPower7DieWidthM,
                                   ch::kPower7DieHeightM, f32);
  const auto memory_die = ch::make_power7_floorplan(ch::memory_die_power_spec());
  const ch::Floorplan* floorplans[] = {&fp, &memory_die};
  const auto full = mg_model.solve_steady(floorplans, nominal_op());
  const auto mixed = f32_model.solve_steady(floorplans, nominal_op());
  ASSERT_TRUE(mixed.solver_report.converged);
  EXPECT_NEAR(mixed.peak_temperature_k, full.peak_temperature_k, 1e-5);
}

TEST(SolverConfig, MultigridTransientStepMatchesIlu0) {
  const auto fp = ch::make_power7_floorplan();
  const th::ThermalModel ilu_model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                                   ch::kPower7DieHeightM, coarse_grid());
  const th::ThermalModel mg_model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                                  ch::kPower7DieHeightM, mg_grid());
  const auto state = ilu_model.uniform_state(kInlet);
  const auto ilu = ilu_model.step_transient(state, fp, nominal_op(), 1e-3);
  const auto mg = mg_model.step_transient(state, fp, nominal_op(), 1e-3);
  ASSERT_TRUE(mg.solver_report.converged);
  EXPECT_NEAR(mg.peak_temperature_k, ilu.peak_temperature_k, 1e-6);
}

}  // namespace
