// Tests of the compact thermal model: analytic limits, conservation
// properties, monotonicity in flow/power, transient convergence to steady
// state and the POWER7+ microchannel stack.
#include <cmath>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "chip/power7.h"
#include "thermal/model.h"
#include "thermal/solve_context.h"
#include "thermal/stack.h"

namespace th = brightsi::thermal;
namespace ch = brightsi::chip;

namespace {

constexpr double kFlow = 676e-6 / 60.0;
constexpr double kInlet = 300.15;

th::ThermalModel::GridSettings coarse_grid() {
  th::ThermalModel::GridSettings g;
  g.axial_cells = 8;
  g.solid_stack_x_cells = 24;
  return g;
}

/// Uniform-power floorplan helper.
ch::Floorplan uniform_floorplan(double total_power_w) {
  ch::Floorplan fp(ch::kPower7DieWidthM, ch::kPower7DieHeightM);
  fp.add_block({"blanket", ch::BlockType::kLogic,
                {0.0, 0.0, ch::kPower7DieWidthM, ch::kPower7DieHeightM},
                total_power_w / (ch::kPower7DieWidthM * ch::kPower7DieHeightM)});
  return fp;
}

th::OperatingPoint nominal_op() {
  th::OperatingPoint op;
  op.total_flow_m3_per_s = kFlow;
  op.inlet_temperature_k = kInlet;
  return op;
}

// ------------------------------------------------------------------- stacks
TEST(Stack, Power7StackValidates) {
  EXPECT_NO_THROW(th::power7_microchannel_stack().validate());
  EXPECT_NO_THROW(th::power7_conventional_stack().validate());
}

TEST(Stack, Power7StackShape) {
  const auto stack = th::power7_microchannel_stack();
  ASSERT_TRUE(stack.has_channels());
  EXPECT_EQ(stack.channel_layer->channel_count, 88);
  EXPECT_DOUBLE_EQ(stack.channel_layer->channel_width_m, 200e-6);
  EXPECT_DOUBLE_EQ(stack.channel_layer->layer_height_m, 400e-6);
  EXPECT_TRUE(stack.layers_below.front().has_heat_source);
}

TEST(Stack, RejectsSourcelessStack) {
  auto stack = th::power7_microchannel_stack();
  stack.layers_below.front().has_heat_source = false;
  EXPECT_THROW(stack.validate(), std::invalid_argument);
}

TEST(Stack, ConventionalStackHasTopFilm) {
  const auto stack = th::power7_conventional_stack(2500.0, 318.15);
  EXPECT_FALSE(stack.has_channels());
  EXPECT_DOUBLE_EQ(stack.top_heat_transfer_w_per_m2_k, 2500.0);
}

// --------------------------------------------------------------- grid build
TEST(ThermalModel, GridFollowsChannelPattern) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  EXPECT_EQ(model.channel_count(), 88);
  // edge wall + 88 channels + 87 interior walls + edge wall
  EXPECT_EQ(model.nx(), 177);
  EXPECT_EQ(model.ny(), 8);
  EXPECT_NEAR(model.x_edges().back(), ch::kPower7DieWidthM, 1e-12);
}

TEST(ThermalModel, RejectsChannelPatternWiderThanDie) {
  auto stack = th::power7_microchannel_stack();
  stack.channel_layer->channel_count = 200;
  EXPECT_THROW(th::ThermalModel(stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM),
               std::invalid_argument);
}

// ---------------------------------------------------------- analytic limits
TEST(ThermalModel, ZeroPowerStaysAtInlet) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = uniform_floorplan(0.0);
  const auto sol = model.solve_steady(fp, nominal_op());
  EXPECT_NEAR(sol.peak_temperature_k, kInlet, 1e-6);
}

TEST(ThermalModel, CaloricBalanceMatchesAnalyticOutletRise) {
  // Property: with adiabatic walls, T_out_mean = T_in + Q / (rho cp Vdot).
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  for (const double power : {20.0, 66.0, 120.0}) {
    const auto fp = uniform_floorplan(power);
    const auto sol = model.solve_steady(fp, nominal_op());
    const double expected_rise = power / (4.187e6 * kFlow);
    double outlet_mean = 0.0;
    for (const double t : sol.channel_outlet_k) {
      outlet_mean += t;
    }
    outlet_mean /= static_cast<double>(sol.channel_outlet_k.size());
    // The z-averaged outlet sample slightly differs from the flow-weighted
    // mixed mean; the energy balance itself is exact.
    EXPECT_NEAR(outlet_mean - kInlet, expected_rise, 0.25 * expected_rise + 0.02);
    EXPECT_LT(sol.energy_balance_error, 1e-6) << "power " << power;
  }
}

TEST(ThermalModel, EnergyBalanceOnRealFloorplan) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  EXPECT_LT(sol.energy_balance_error, 1e-6);
  EXPECT_NEAR(sol.fluid_heat_absorbed_w, fp.total_power(), fp.total_power() * 1e-5);
}

TEST(ThermalModel, MoreFlowRunsCooler) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  auto op = nominal_op();
  const auto nominal = model.solve_steady(fp, op);
  op.total_flow_m3_per_s = kFlow / 4.0;
  const auto starved = model.solve_steady(fp, op);
  EXPECT_GT(starved.peak_temperature_k, nominal.peak_temperature_k + 1.0);
}

TEST(ThermalModel, MorePowerRunsHotterProportionally) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto sol1 = model.solve_steady(uniform_floorplan(30.0), nominal_op());
  const auto sol2 = model.solve_steady(uniform_floorplan(60.0), nominal_op());
  const double rise1 = sol1.peak_temperature_k - kInlet;
  const double rise2 = sol2.peak_temperature_k - kInlet;
  EXPECT_NEAR(rise2 / rise1, 2.0, 0.02);  // linear system
}

TEST(ThermalModel, HotterInletShiftsFieldUniformly) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  auto op = nominal_op();
  const auto base = model.solve_steady(fp, op);
  op.inlet_temperature_k = kInlet + 10.0;
  const auto hot = model.solve_steady(fp, op);
  EXPECT_NEAR(hot.peak_temperature_k - base.peak_temperature_k, 10.0, 1e-3);
}

TEST(ThermalModel, PeakSitsOverACoreNearOutlet) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  EXPECT_EQ(sol.peak_iz, 0);                     // source plane
  EXPECT_GE(sol.peak_iy, model.ny() / 2);        // downstream half
  // Peak x within a core column span (cores occupy 1.5-7.0 / 16.55-22.05 mm).
  const double x = model.x_edges()[static_cast<std::size_t>(sol.peak_ix)];
  const bool in_left = x > 1.2e-3 && x < 7.2e-3;
  const bool in_right = x > 16.3e-3 && x < 22.3e-3;
  EXPECT_TRUE(in_left || in_right) << "peak at x = " << x;
}

TEST(ThermalModel, Fig9OperatingPointLandsNearPaperPeak)
{
  // Paper Fig. 9: 41 C peak at full load, 676 ml/min, 27 C inlet. Our
  // reconstruction lands in the upper-30s; assert the reproduced band.
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM);
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  const double peak_c = sol.peak_temperature_k - 273.15;
  EXPECT_GT(peak_c, 33.0);
  EXPECT_LT(peak_c, 43.0);
}

TEST(ThermalModel, BlockTemperaturesOrdered) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  double core_mean = 0.0, cache_mean = 0.0;
  int cores = 0, caches = 0;
  for (const auto& bt : sol.block_temperatures) {
    if (bt.name.rfind("core", 0) == 0) {
      core_mean += bt.mean_k;
      ++cores;
    } else if (bt.name.rfind("l2", 0) == 0 || bt.name.rfind("l3", 0) == 0) {
      cache_mean += bt.mean_k;
      ++caches;
    }
    EXPECT_GE(bt.max_k, bt.mean_k - 1e-9);
  }
  EXPECT_GT(core_mean / cores, cache_mean / caches + 2.0);  // cores run hotter
}

TEST(ThermalModel, ChannelProfilesMonotoneDownstream) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto sol = model.solve_steady(fp, nominal_op());
  ASSERT_EQ(sol.channel_fluid_axial_k.size(), 88u);
  // Fluid warms along the channel under every core column.
  const auto& profile = sol.channel_fluid_axial_k[10];
  EXPECT_GT(profile.back(), profile.front());
  EXPECT_GE(profile.front(), kInlet - 1e-9);
}

// ------------------------------------------------------------- conventional
TEST(ThermalModel, ConventionalStackMuchHotterAtFullLoad) {
  const th::ThermalModel liquid(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                                ch::kPower7DieHeightM, coarse_grid());
  const th::ThermalModel air(th::power7_conventional_stack(), ch::kPower7DieWidthM,
                             ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto cold = liquid.solve_steady(fp, nominal_op());
  th::OperatingPoint air_op;  // no coolant; top film handles it
  const auto hot = air.solve_steady(fp, air_op);
  EXPECT_GT(hot.peak_temperature_k, cold.peak_temperature_k + 20.0);
  EXPECT_LT(hot.energy_balance_error, 1e-6);
}

TEST(ThermalModel, SolidStackNeedsTopFilm) {
  auto stack = th::power7_conventional_stack();
  stack.top_heat_transfer_w_per_m2_k = 0.0;
  const th::ThermalModel model(stack, ch::kPower7DieWidthM, ch::kPower7DieHeightM,
                               coarse_grid());
  const auto fp = uniform_floorplan(50.0);
  th::OperatingPoint op;
  EXPECT_THROW(model.solve_steady(fp, op), std::invalid_argument);
}

// ---------------------------------------------------------------- transient
TEST(ThermalModel, TransientConvergesToSteadyState) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  const auto steady = model.solve_steady(fp, op);

  auto state = model.uniform_state(kInlet);
  double peak = 0.0;
  for (int step = 0; step < 40; ++step) {
    const auto sol = model.step_transient(state, fp, op, 0.05);
    state = sol.temperature_k;
    peak = sol.peak_temperature_k;
  }
  EXPECT_NEAR(peak, steady.peak_temperature_k, 0.15);
}

TEST(ThermalModel, TransientStepMovesTowardSteady) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  auto state = model.uniform_state(kInlet);
  const auto after = model.step_transient(state, fp, op, 0.01);
  EXPECT_GT(after.peak_temperature_k, kInlet);
  const auto steady = model.solve_steady(fp, op);
  EXPECT_LT(after.peak_temperature_k, steady.peak_temperature_k + 1e-6);
}

TEST(ThermalModel, TransientRejectsBadInputs) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  auto state = model.uniform_state(kInlet);
  EXPECT_THROW(model.step_transient(state, fp, nominal_op(), 0.0), std::invalid_argument);
  const auto wrong = brightsi::numerics::Grid3<double>(2, 2, 2, kInlet);
  EXPECT_THROW(model.step_transient(wrong, fp, nominal_op(), 0.1), std::invalid_argument);
}

// ------------------------------------------------------------ solve context
TEST(SolveContext, WarmStartMatchesColdStartWithinSolverTolerance) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  const auto cold = model.solve_steady(fp, op);

  th::ThermalSolveContext context(model);
  const auto first = context.solve_steady(fp, op);
  const auto warm = context.solve_steady(fp, op);  // warm-started repeat

  // The first context solve is bitwise the one-shot solve.
  EXPECT_DOUBLE_EQ(first.peak_temperature_k, cold.peak_temperature_k);
  // The warm repeat agrees with the cold solve to (well within) the solver
  // tolerance, and needs essentially no iterations.
  double max_abs_difference = 0.0;
  for (std::size_t i = 0; i < cold.temperature_k.data().size(); ++i) {
    max_abs_difference = std::max(
        max_abs_difference, std::abs(warm.temperature_k.data()[i] -
                                     cold.temperature_k.data()[i]));
  }
  EXPECT_LT(max_abs_difference, 1e-6);
  EXPECT_LE(warm.solver_report.iterations, first.solver_report.iterations / 4);
  EXPECT_EQ(context.stats().solves, 2);
}

TEST(SolveContext, WarmStartTracksOperatingPointChanges) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  th::ThermalSolveContext context(model);
  auto op = nominal_op();
  (void)context.solve_steady(fp, op);

  // A different operating point solved warm must match its own cold solve,
  // not drift toward the previous one.
  op.total_flow_m3_per_s = kFlow / 2.0;
  const auto warm = context.solve_steady(fp, op);
  const auto cold = model.solve_steady(fp, op);
  EXPECT_NEAR(warm.peak_temperature_k, cold.peak_temperature_k, 1e-6);
  EXPECT_LT(warm.energy_balance_error, 1e-6);
}

TEST(SolveContext, ResetRestoresColdStartExactly) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  th::ThermalSolveContext context(model);
  const auto first = context.solve_steady(fp, op);
  (void)context.solve_steady(fp, op);
  context.reset();
  const auto after_reset = context.solve_steady(fp, op);
  // Cold solves are deterministic, so reset reproduces the first solve
  // bit-for-bit (the sweep cache's byte-identity guarantee rests on this).
  EXPECT_EQ(after_reset.temperature_k.data(), first.temperature_k.data());
  EXPECT_EQ(after_reset.solver_report.iterations, first.solver_report.iterations);
}

TEST(SolveContext, TransientStepsMatchTheOneShotPath) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();

  auto state_one_shot = model.uniform_state(kInlet);
  auto state_context = model.uniform_state(kInlet);
  th::ThermalSolveContext context(model);
  for (int step = 0; step < 5; ++step) {
    const auto a = model.step_transient(state_one_shot, fp, op, 0.05);
    const auto b = context.step_transient(state_context, fp, op, 0.05);
    state_one_shot = a.temperature_k;
    state_context = b.temperature_k;
    ASSERT_EQ(state_context.data(), state_one_shot.data()) << "step " << step;
  }
}

TEST(SolveContext, MixedSteadyAndTransientSolvesShareOneContext) {
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, coarse_grid());
  const auto fp = ch::make_power7_floorplan();
  const auto op = nominal_op();
  th::ThermalSolveContext context(model);
  const auto steady = context.solve_steady(fp, op);
  // A transient step from the steady field stays put (it is the fixed point
  // of the backward-Euler map), even through the mode switch.
  const auto step = context.step_transient(steady.temperature_k, fp, op, 0.05);
  EXPECT_NEAR(step.peak_temperature_k, steady.peak_temperature_k, 1e-6);
  const auto steady_again = context.solve_steady(fp, op);
  EXPECT_NEAR(steady_again.peak_temperature_k, steady.peak_temperature_k, 1e-6);
}

TEST(SolveContext, NonConvergenceReportsResidualAndIterations) {
  auto settings = coarse_grid();
  settings.solver.max_iterations = 1;
  settings.solver.relative_tolerance = 1e-300;
  settings.solver.absolute_tolerance = 0.0;
  const th::ThermalModel model(th::power7_microchannel_stack(), ch::kPower7DieWidthM,
                               ch::kPower7DieHeightM, settings);
  const auto fp = ch::make_power7_floorplan();
  auto state = model.uniform_state(kInlet);
  for (const auto& attempt :
       {std::function<void()>([&] { (void)model.solve_steady(fp, nominal_op()); }),
        std::function<void()>([&] { (void)model.step_transient(state, fp, nominal_op(), 0.05); })}) {
    try {
      attempt();
      FAIL() << "expected non-convergence";
    } catch (const std::runtime_error& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("residual"), std::string::npos) << message;
      EXPECT_NE(message.find("iterations"), std::string::npos) << message;
    }
  }
}

// -------------------------------------------------------------- validation
TEST(ThermalModel, OperatingPointValidation) {
  th::OperatingPoint op;
  op.total_flow_m3_per_s = 0.0;
  EXPECT_THROW(op.validate(true), std::invalid_argument);
  EXPECT_NO_THROW(op.validate(false));
}

}  // namespace
